package expmodel

import (
	"upcxx/internal/des"
)

// Fig 4 model: weak scaling of blocking distributed-hash-table insertion
// (landing-zone variant). Every rank repeatedly performs the paper's
// blocking insert — an RPC of make_lz to a random home rank followed by
// an rput of the value — and the model simulates the full pipeline per
// operation, including CPU contention at the home rank (incoming RPC
// handlers compete with the target's own inserts for its one core) and
// the intra-node fast path. At P == 1 the paper's serial baseline (plain
// map, no UPC++ calls) applies.

// DHTConfig describes one weak-scaling data point.
type DHTConfig struct {
	M              Machine
	P              int
	ElemSize       int
	InsertsPerRank int
	Seed           uint64
}

// DHTResult reports the simulated aggregate throughput.
type DHTResult struct {
	P         int
	ElemSize  int
	Makespan  float64 // seconds
	Aggregate float64 // inserts/sec across the job
	PerRank   float64 // inserts/sec/rank
}

// serialInsertCost is the measured-scale cost of a local map insert plus
// the value copy (the serial baseline's whole iteration).
func (m Machine) serialInsertCost(elem int) float64 {
	return m.cpu(mapInsert) + m.copyCost(elem)
}

// SimulateDHT runs the weak-scaling model for one (P, elemSize) point.
func SimulateDHT(cfg DHTConfig) DHTResult {
	m := cfg.M
	if cfg.P == 1 {
		t := float64(cfg.InsertsPerRank) * m.serialInsertCost(cfg.ElemSize)
		return DHTResult{
			P: 1, ElemSize: cfg.ElemSize, Makespan: t,
			Aggregate: float64(cfg.InsertsPerRank) / t,
			PerRank:   float64(cfg.InsertsPerRank) / t,
		}
	}
	sim := des.NewSim()
	rng := des.NewRNG(cfg.Seed ^ 0xdeadbeef)
	cpu := make([]des.Resource, cfg.P)
	nic := make([]des.Resource, cfg.P)
	node := func(r int) int { return r / m.RanksPerNode }

	done := 0
	var makespan float64
	var issue func(r, k int, at float64)

	// One blocking landing-zone insert from rank r starting no earlier
	// than at. The rank's CPU is busy only for the software segments;
	// while blocked on the wire it serves incoming handlers (modeled by
	// the Resource bookings from other ranks' events).
	issue = func(r, k int, at float64) {
		if k >= cfg.InsertsPerRank {
			done++
			if at > makespan {
				makespan = at
			}
			return
		}
		tgt := rng.Intn(cfg.P)
		if tgt == r {
			tgt = (tgt + 1) % cfg.P
		}
		intra := node(r) == node(tgt)
		keyMsg := 48 // key + header + dist-object id

		// 1. Inject the make_lz RPC.
		_, injEnd := cpu[r].Acquire(at, m.cpu(rpcInject)+m.overhead(keyMsg, intra))
		_, nicEnd := nic[r].Acquire(injEnd, m.gap(keyMsg, intra))
		arrival := nicEnd + m.lat(keyMsg, intra)

		// 2. Home-rank handler: dispatch, allocate the landing zone,
		// insert into the local map, inject the reply.
		sim.At(arrival, func() {
			hDur := m.cpu(rpcHandler) + m.cpu(segAlloc) + m.cpu(mapInsert) +
				m.overhead(16, intra)
			_, hEnd := cpu[tgt].Acquire(sim.Now(), hDur)
			_, rNicEnd := nic[tgt].Acquire(hEnd, m.gap(16, intra))
			replyArr := rNicEnd + m.lat(16, intra)

			// 3. Initiator: future fulfillment + rput injection.
			sim.At(replyArr, func() {
				iDur := m.cpu(futureFulfill) + m.cpu(rpcInject) +
					m.overhead(cfg.ElemSize, intra)
				_, iEnd := cpu[r].Acquire(sim.Now(), iDur)
				_, pNicEnd := nic[r].Acquire(iEnd, m.gap(cfg.ElemSize, intra))
				// 4. Remote completion ack (NIC to NIC, no target CPU).
				ackArr := pNicEnd + m.lat(cfg.ElemSize, intra) +
					m.gap(0, intra) + m.lat(0, intra)
				sim.At(ackArr, func() {
					_, end := cpu[r].Acquire(sim.Now(), m.cpu(futureFulfill))
					issue(r, k+1, end)
				})
			})
		})
	}

	for r := 0; r < cfg.P; r++ {
		issue(r, 0, 0)
	}
	sim.Run()
	total := float64(cfg.P * cfg.InsertsPerRank)
	return DHTResult{
		P: cfg.P, ElemSize: cfg.ElemSize, Makespan: makespan,
		Aggregate: total / makespan,
		PerRank:   total / makespan / float64(cfg.P),
	}
}

// Fig4ProcessCounts returns the paper's weak-scaling x axis up to max
// (1, 2, 4, ... powers of two, then the partition's full size).
func Fig4ProcessCounts(max int) []int {
	var out []int
	for p := 1; p <= max; p *= 2 {
		out = append(out, p)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
