// Package expmodel evaluates the paper's experiments at scale. Each
// figure has a model driver that reuses the repository's real structural
// code (front trees, proportional mappings, message matrices, protocol
// constants) and charges calibrated costs — either in closed form (Fig 3)
// or inside the deterministic discrete-event simulator (Figs 4, 8, 9),
// which is how this reproduction reaches the paper's 2048–34816 process
// scales on one machine (DESIGN.md §4, substitution 4). Small process
// counts are cross-checked against real runs on the in-process runtime.
package expmodel

import (
	"time"

	"upcxx/internal/gasnet"
	"upcxx/internal/mpi"
)

// Machine bundles the calibrated parameters of one Cori partition.
type Machine struct {
	Name         string
	RanksPerNode int
	Net          *gasnet.LogGP
	Proto        mpi.Protocol
	// CPUScale multiplies software (CPU-side) costs; KNL's slow in-order
	// cores run runtime code ~3x slower than Haswell's.
	CPUScale float64
	// FlopSecs is the single-core time per fused multiply-add in the
	// dense kernels (mini-symPACK factorization).
	FlopSecs float64
}

// Haswell models the Cori Haswell partition (32 ranks/node in the
// paper's application runs).
func Haswell() Machine {
	return Machine{
		Name:         "Cori Haswell",
		RanksPerNode: 32,
		Net:          gasnet.Aries(),
		Proto:        mpi.DefaultProtocol(),
		CPUScale:     1.0,
		FlopSecs:     2.5e-10,
	}
}

// KNL models the Cori KNL partition (68 ranks/node).
func KNL() Machine {
	p := mpi.DefaultProtocol()
	p.SendOverhead *= 3
	p.RecvOverhead *= 3
	p.MatchCost *= 3
	p.RMAPutBase *= 3
	p.RMAFlushBase *= 3
	p.RMAFlushSync *= 2
	return Machine{
		Name:         "Cori KNL",
		RanksPerNode: 68,
		Net:          gasnet.AriesKNL(),
		Proto:        p,
		CPUScale:     3.0,
		FlopSecs:     1.0e-9,
	}
}

func secs(d time.Duration) float64 { return d.Seconds() }

// Wire primitives in seconds. intra selects the shared-memory path.

func (m Machine) overhead(n int, intra bool) float64 { return secs(m.Net.Overhead(n, intra)) }
func (m Machine) gap(n int, intra bool) float64      { return secs(m.Net.Gap(n, intra)) }
func (m Machine) lat(n int, intra bool) float64      { return secs(m.Net.Latency(n, intra)) }

// cpu scales a Haswell-calibrated software cost to this machine.
func (m Machine) cpu(d time.Duration) float64 { return secs(d) * m.CPUScale }

// Common runtime software costs (Haswell-calibrated; scaled by CPUScale).
const (
	// rpcInject is the initiator-side cost of serializing and injecting
	// one small RPC beyond the conduit overhead.
	rpcInject = 220 * time.Nanosecond
	// rpcHandler is the target-side cost of dispatching an RPC body.
	rpcHandler = 180 * time.Nanosecond
	// futureFulfill is the cost of satisfying a promise/future chain.
	futureFulfill = 60 * time.Nanosecond
	// mapInsert is a hash-map insert of a small entry.
	mapInsert = 150 * time.Nanosecond
	// segAlloc is a shared-segment allocation (the DHT landing zone).
	segAlloc = 200 * time.Nanosecond
	// packEntry / accumEntry are the extend-add per-entry costs.
	packEntryCost  = 3 * time.Nanosecond
	accumEntryCost = 3 * time.Nanosecond
	// eventOverhead is the extra v0.1 bookkeeping per async+event pair.
	eventOverhead = 90 * time.Nanosecond
	// memBW is the CPU-side copy bandwidth for serialization, bytes/sec.
	memBWBytesPerSec = 8e9
)

// copyCost returns the CPU time to run n bytes through a serializer.
func (m Machine) copyCost(n int) float64 {
	return float64(n) / memBWBytesPerSec * m.CPUScale
}
