package expmodel

import (
	"testing"

	"upcxx/internal/matgen"
	"upcxx/internal/sparse"
)

// These tests assert the *shape* claims of the paper's figures against
// the models — who wins, by roughly what factor, where the crossovers
// fall — which is the reproduction contract for experiments that need
// hardware we must simulate (see EXPERIMENTS.md).

func TestFig3aLatencyShape(t *testing.T) {
	m := Haswell()
	// UPC++ must win at every size (the paper's blanket claim: advantage
	// present through at least 4MB).
	for _, n := range Fig3Sizes() {
		up, mp := m.UPCXXPutLatency(n), m.MPIPutLatency(n)
		if mp <= up {
			t.Errorf("size %d: MPI latency %.3gus <= UPC++ %.3gus", n, mp*1e6, up*1e6)
		}
	}
	// Under 256 B: modest advantage (paper: >5% on average).
	small := 0.0
	count := 0
	for n := 8; n < 256; n *= 2 {
		small += m.MPIPutLatency(n)/m.UPCXXPutLatency(n) - 1
		count++
	}
	if avg := small / float64(count); avg < 0.05 || avg > 0.20 {
		t.Errorf("sub-256B average advantage = %.1f%%, want ~5-20%%", avg*100)
	}
	// 256 B - 1 KB: large advantage (paper: >25% on average).
	mid := 0.0
	count = 0
	for _, n := range []int{256, 512, 1024} {
		mid += m.MPIPutLatency(n)/m.UPCXXPutLatency(n) - 1
		count++
	}
	if avg := mid / float64(count); avg < 0.25 {
		t.Errorf("256B-1KB average advantage = %.1f%%, want >25%%", avg*100)
	}
	// At 4MB the absolute advantage persists but is relatively small.
	if ratio := m.MPIPutLatency(4<<20) / m.UPCXXPutLatency(4<<20); ratio > 1.10 {
		t.Errorf("4MB ratio = %.3f, wire time should dominate", ratio)
	}
}

func TestFig3bBandwidthShape(t *testing.T) {
	m := Haswell()
	// Comparable at small sizes (within ~20%).
	for _, n := range []int{8, 64, 512} {
		r := m.UPCXXFloodBW(n) / m.MPIFloodBW(n)
		if r < 0.95 || r > 1.25 {
			t.Errorf("size %d: bw ratio %.2f, want near parity", n, r)
		}
	}
	// Mid-size dip: UPC++ delivers >25% more at 8KB (paper: over 33%).
	if r := m.UPCXXFloodBW(8<<10) / m.MPIFloodBW(8<<10); r < 1.25 {
		t.Errorf("8KB bw ratio = %.2f, want > 1.25", r)
	}
	// The dip is the maximum gap in the 1KB-256KB band.
	peak := 0.0
	peakAt := 0
	for _, n := range Fig3Sizes() {
		r := m.UPCXXFloodBW(n) / m.MPIFloodBW(n)
		if r > peak {
			peak, peakAt = r, n
		}
	}
	if peakAt < 1<<10 || peakAt > 256<<10 {
		t.Errorf("peak gap at %d bytes, want within 1KB-256KB", peakAt)
	}
	// Converged again at 1MB+ (within 5%).
	for _, n := range []int{1 << 20, 4 << 20} {
		r := m.UPCXXFloodBW(n) / m.MPIFloodBW(n)
		if r > 1.05 {
			t.Errorf("size %d: bw ratio %.3f, want converged", n, r)
		}
	}
}

func TestFig4WeakScalingShape(t *testing.T) {
	m := Haswell()
	const elem = 1 << 10
	const inserts = 150
	rate := map[int]float64{}
	for _, p := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		res := SimulateDHT(DHTConfig{M: m, P: p, ElemSize: elem, InsertsPerRank: inserts, Seed: 42})
		rate[p] = res.Aggregate
		if res.Aggregate <= 0 {
			t.Fatalf("P=%d: non-positive rate", p)
		}
	}
	// Initial drop from serial to parallel (paper: "as expected, an
	// initial decline from one to two processes").
	if rate[2] >= rate[1] {
		t.Errorf("no 1->2 drop: %.3g -> %.3g inserts/s", rate[1], rate[2])
	}
	// Within and just past a node (P <= 64) the shared-memory fast path
	// still lifts the average (the paper marks the node boundary with a
	// dotted line); by P=256 the inter-node mix dominates, and from there
	// weak scaling must be near-linear: allow 10% per-process degradation
	// across a further 4x scale-up.
	perProc256 := rate[256] / 256
	perProc1024 := rate[1024] / 1024
	if perProc1024 < 0.90*perProc256 {
		t.Errorf("weak scaling broke: %.3g -> %.3g inserts/s/proc", perProc256, perProc1024)
	}
	// Aggregate grows near-linearly past the node boundary.
	if rate[1024] < 3.6*rate[256] {
		t.Errorf("aggregate at 1024 procs only %.2fx of 256-proc rate", rate[1024]/rate[256])
	}
}

func TestFig4KNLSlower(t *testing.T) {
	h := SimulateDHT(DHTConfig{M: Haswell(), P: 16, ElemSize: 4096, InsertsPerRank: 100, Seed: 1})
	k := SimulateDHT(DHTConfig{M: KNL(), P: 16, ElemSize: 4096, InsertsPerRank: 100, Seed: 1})
	if k.Aggregate >= h.Aggregate {
		t.Errorf("KNL (%.3g/s) should be slower than Haswell (%.3g/s)", k.Aggregate, h.Aggregate)
	}
}

var fig8TreeCache *sparse.FrontTree

func fig8Plan(t *testing.T, p int) *sparse.EAddPlan {
	t.Helper()
	if fig8TreeCache == nil {
		prob := matgen.Generate("fig8test", matgen.Grid3D{NX: 24, NY: 24, NZ: 24}, 32)
		tree := sparse.Amalgamate(sparse.BuildFrontTree(prob.A, 0), 0.3)
		if err := tree.Validate(); err != nil {
			t.Fatal(err)
		}
		fig8TreeCache = tree
	}
	return sparse.NewEAddPlan(fig8TreeCache, p, 16)
}

func TestFig8OrderingAtScale(t *testing.T) {
	m := Haswell()
	for _, p := range []int{64, 256} {
		plan := fig8Plan(t, p)
		up := SimulateEAddUPCXX(m, plan)
		a2a := SimulateEAddA2A(m, plan)
		p2p := SimulateEAddP2P(m, plan)
		if up <= 0 || a2a <= 0 || p2p <= 0 {
			t.Fatalf("P=%d: non-positive time (%g %g %g)", p, up, a2a, p2p)
		}
		// The paper's ordering at scale: UPC++ < Alltoallv < P2P.
		if up >= a2a {
			t.Errorf("P=%d: UPC++ %.4gs not faster than Alltoallv %.4gs", p, up, a2a)
		}
		if a2a >= p2p {
			t.Errorf("P=%d: Alltoallv %.4gs not faster than P2P %.4gs", p, a2a, p2p)
		}
	}
}

func TestFig8StrongScalingImproves(t *testing.T) {
	m := Haswell()
	t1 := SimulateEAddUPCXX(m, fig8Plan(t, 1))
	t64 := SimulateEAddUPCXX(m, fig8Plan(t, 64))
	if t64 >= t1 {
		t.Errorf("no strong scaling: P=1 %.4gs, P=64 %.4gs", t1, t64)
	}
}

func TestFig9NearIdentical(t *testing.T) {
	m := Haswell()
	prob := matgen.Generate("fig9test", matgen.Grid3D{NX: 12, NY: 12, NZ: 12}, 16)
	tree := sparse.Amalgamate(sparse.BuildFrontTree(prob.A, 0), 0.3)
	worst := 0.0
	for _, p := range []int{4, 16, 64, 256} {
		v1 := SimulateSymPACK(m, tree, p, V1)
		v01 := SimulateSymPACK(m, tree, p, V01)
		if v1 <= 0 || v01 <= 0 {
			t.Fatalf("P=%d: non-positive times", p)
		}
		diff := v01/v1 - 1
		if diff < -0.02 {
			t.Errorf("P=%d: v0.1 (%.4gs) notably faster than v1.0 (%.4gs)", p, v01, v1)
		}
		if diff > worst {
			worst = diff
		}
	}
	// Paper: performance nearly identical; v1.0 ahead by at most ~7.2%.
	if worst > 0.15 {
		t.Errorf("worst v0.1 penalty %.1f%%, want < 15%%", worst*100)
	}
}

func TestProcessCountHelpers(t *testing.T) {
	pc := Fig4ProcessCounts(34816)
	if pc[0] != 1 || pc[len(pc)-1] != 34816 {
		t.Errorf("Fig4ProcessCounts = %v", pc)
	}
	if got := Fig8ProcessCounts(); got[len(got)-1] != 2048 {
		t.Errorf("Fig8ProcessCounts = %v", got)
	}
	if got := Fig9ProcessCounts(); got[len(got)-1] != 1024 {
		t.Errorf("Fig9ProcessCounts = %v", got)
	}
}
