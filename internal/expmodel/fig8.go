package expmodel

import (
	"sort"

	"upcxx/internal/des"
	"upcxx/internal/sparse"
)

// Fig 8 model: strong scaling of the extend-add operation. The model
// consumes the real structural plan (front tree, proportional mapping,
// block-cyclic message matrix from internal/sparse) and simulates the
// three communication strategies' timing:
//
//   - UPC++ RPC: every (child, src, dst) message launched asynchronously
//     across the whole tree, no level synchronization.
//   - MPI Alltoallv: per-level collective — a Bruck-style size exchange
//     (the Theta(P) cost every collective pays regardless of payload)
//     plus the pairwise data exchange, with level barriers.
//   - MPI P2P: per-message Isend/Irecv with matching costs and a Waitall
//     per level.

// frontMsg is one (child, src->dst) message extracted from the plan.
type frontMsg struct {
	front    int
	src, dst int32
	count    int
}

func planMessages(plan *sparse.EAddPlan) [][]frontMsg {
	byLevel := make([][]frontMsg, len(plan.ByLevel))
	for f := range plan.T.Fronts {
		if plan.T.Fronts[f].Parent < 0 {
			continue
		}
		level := plan.T.Fronts[f].Level
		var msgs []frontMsg
		for key, cnt := range plan.Msgs[f] {
			msgs = append(msgs, frontMsg{front: f, src: key[0], dst: key[1], count: cnt})
		}
		sort.Slice(msgs, func(i, j int) bool {
			a, b := msgs[i], msgs[j]
			if a.src != b.src {
				return a.src < b.src
			}
			return a.dst < b.dst
		})
		byLevel[level] = append(byLevel[level], msgs...)
	}
	return byLevel
}

func (m Machine) intra(a, b int32) bool {
	return int(a)/m.RanksPerNode == int(b)/m.RanksPerNode
}

// SimulateEAddUPCXX returns the modeled wall time (seconds) of the UPC++
// variant for the given plan.
func SimulateEAddUPCXX(m Machine, plan *sparse.EAddPlan) float64 {
	sim := des.NewSim()
	cpu := make([]des.Resource, plan.P)
	nic := make([]des.Resource, plan.P)
	makespan := 0.0
	observe := func(t float64) {
		if t > makespan {
			makespan = t
		}
	}
	// Initiator side: packing and injection, in front order, fully
	// asynchronous across levels.
	byLevel := planMessages(plan)
	for level := len(byLevel) - 1; level >= 1; level-- {
		for _, msg := range byLevel[level] {
			msg := msg
			size := msg.count * 16
			packT := float64(msg.count) * m.cpu(packEntryCost)
			if msg.src == msg.dst {
				// Local extend-add: no wire, just pack + accumulate.
				_, end := cpu[msg.src].Acquire(0,
					packT+float64(msg.count)*m.cpu(accumEntryCost))
				observe(end)
				continue
			}
			intra := m.intra(msg.src, msg.dst)
			injT := m.cpu(rpcInject) + m.overhead(size, intra)
			_, cpuEnd := cpu[msg.src].Acquire(0, packT+injT)
			_, nicEnd := nic[msg.src].Acquire(cpuEnd, m.gap(size, intra))
			arrival := nicEnd + m.lat(size, intra)
			sim.At(arrival, func() {
				hDur := m.cpu(rpcHandler) + float64(msg.count)*m.cpu(accumEntryCost)
				_, hEnd := cpu[msg.dst].Acquire(sim.Now(), hDur)
				ackArr := hEnd + m.gap(16, intra) + m.lat(16, intra)
				sim.At(ackArr, func() {
					_, end := cpu[msg.src].Acquire(sim.Now(), m.cpu(futureFulfill))
					observe(end)
				})
			})
		}
	}
	sim.Run()
	return makespan
}

// SimulateEAddA2A returns the modeled wall time of the MPI Alltoallv
// variant (STRUMPACK's strategy): per level, each parent front's process
// group runs an Alltoallv — a Bruck-style size exchange over the group
// (the Theta(g log g) cost every collective pays regardless of payload)
// plus the pairwise data exchange — and the level completes when the
// slowest group does (the collective's implicit synchronization).
func SimulateEAddA2A(m Machine, plan *sparse.EAddPlan) float64 {
	byLevel := planMessages(plan)
	t := 0.0
	for level := len(byLevel) - 1; level >= 1; level-- {
		if len(byLevel[level]) == 0 {
			continue
		}
		// Group messages by parent front: each parent group runs its own
		// collective. A rank belonging to several groups at one level
		// (small P) performs their exchanges back to back, so work
		// accumulates per rank across groups; the level ends when the
		// busiest rank finishes.
		byParent := map[int][]frontMsg{}
		for _, msg := range byLevel[level] {
			parent := plan.T.Fronts[msg.front].Parent
			byParent[parent] = append(byParent[parent], msg)
		}
		work := map[int32]float64{}
		for parent, msgs := range byParent {
			lo, hi := plan.Map.Range(parent)
			g := int(hi - lo)
			// Size exchange over the group: ceil(log2 g) Bruck rounds of
			// g*8/2 bytes, paid by every group member.
			sizeEx := 0.0
			for r := 0; (1 << r) < g; r++ {
				n := g * 4
				sizeEx += m.cpu(m.Proto.SendOverhead) + m.overhead(n, false) +
					m.gap(n, false) + m.lat(n, false)
			}
			for q := lo; q < hi; q++ {
				work[q] += sizeEx
			}
			// Per-rank pack, wire and accumulate work within the group.
			sendBytes := map[[2]int32]int{}
			for _, msg := range msgs {
				work[msg.src] += float64(msg.count) * m.cpu(packEntryCost)
				if msg.src == msg.dst {
					// Local contribution: accumulate without the wire.
					work[msg.src] += float64(msg.count) * m.cpu(accumEntryCost)
					continue
				}
				sendBytes[[2]int32{msg.src, msg.dst}] += msg.count * 16
				work[msg.dst] += float64(msg.count)*m.cpu(accumEntryCost) +
					m.cpu(m.Proto.MatchCost)
			}
			for key, bytes := range sendBytes {
				intra := m.intra(key[0], key[1])
				work[key[0]] += m.cpu(m.Proto.SendOverhead) +
					m.overhead(bytes, intra) + m.gap(bytes, intra)
				work[key[1]] += m.cpu(m.Proto.RecvOverhead) + m.copyCost(bytes)
			}
		}
		levelTime := m.lat(0, false)
		for _, w := range work {
			if w > levelTime {
				levelTime = w
			}
		}
		t += levelTime
	}
	return t
}

// SimulateEAddP2P returns the modeled wall time of the MPI
// point-to-point variant (MUMPS's strategy): one message per
// (child, src, dst), received through a Probe + Recv loop. Because the
// receiver discovers messages by probing, every arrival lands in the
// unexpected queue (an extra copy) and matching is serialized on the
// receiving rank — the per-message software costs that make this variant
// fall behind at scale. Rendezvous transfers add a handshake round trip.
func SimulateEAddP2P(m Machine, plan *sparse.EAddPlan) float64 {
	byLevel := planMessages(plan)
	t := 0.0
	for level := len(byLevel) - 1; level >= 1; level-- {
		if len(byLevel[level]) == 0 {
			continue
		}
		sim := des.NewSim()
		cpu := make([]des.Resource, plan.P)
		nic := make([]des.Resource, plan.P)
		queued := make([]int, plan.P) // unexpected-queue depth per rank
		levelEnd := 0.0
		observe := func(x float64) {
			if x > levelEnd {
				levelEnd = x
			}
		}
		// Every probe/match traverses the unexpected queue linearly; under
		// congestion the scans compound (the classic MPI matching-queue
		// cost, physically present in internal/mpi's linear scan as well).
		const queueScan = 40 * 1e-9
		for _, msg := range byLevel[level] {
			msg := msg
			size := msg.count * 16
			packT := float64(msg.count) * m.cpu(packEntryCost)
			if msg.src == msg.dst {
				_, end := cpu[msg.src].Acquire(0,
					packT+float64(msg.count)*m.cpu(accumEntryCost))
				observe(end)
				continue
			}
			intra := m.intra(msg.src, msg.dst)
			sendT := m.cpu(m.Proto.SendOverhead) + m.overhead(size, intra)
			_, cpuEnd := cpu[msg.src].Acquire(0, packT+sendT)
			rendezvous := size > m.Proto.EagerMax
			_, nicEnd := nic[msg.src].Acquire(cpuEnd, m.gap(size, intra))
			arrival := nicEnd + m.lat(size, intra)
			if rendezvous {
				// RTS/GET/DONE adds a round trip before the payload moves.
				arrival += 2 * m.lat(0, intra)
			}
			sim.At(arrival, func() {
				queued[msg.dst]++
				// Probe-matched arrival: queue scan, unexpected-queue
				// copy, probe + recv software, then the accumulate
				// traversal.
				hDur := m.cpu(m.Proto.MatchCost) + m.cpu(m.Proto.RecvOverhead) +
					float64(queued[msg.dst])*queueScan*m.CPUScale +
					m.copyCost(size) +
					float64(msg.count)*m.cpu(accumEntryCost)
				_, hEnd := cpu[msg.dst].Acquire(sim.Now(), hDur)
				sim.At(hEnd, func() { queued[msg.dst]-- })
				observe(hEnd)
			})
		}
		sim.Run()
		t += levelEnd + m.lat(0, false) // Waitall settling
	}
	return t
}

// Fig8ProcessCounts is the paper's strong-scaling x axis.
func Fig8ProcessCounts() []int {
	return []int{1, 4, 32, 64, 128, 256, 512, 1024, 2048}
}
