package expmodel

import (
	"upcxx/internal/des"
	"upcxx/internal/sparse"
)

// Fig 9 model: strong scaling of the mini-symPACK multifrontal Cholesky
// under the two API generations. Both variants execute the identical
// numeric task DAG (factor fronts bottom-up, ship contribution blocks to
// parent owners); they differ exactly where the paper says the APIs
// differ:
//
//   - v1.0 (futures/promises/RPC): a front factors as soon as its
//     children's contributions have arrived, in readiness order — the
//     completion-handler chaining of §IV-D2.
//   - v0.1 (asyncs/events): each rank waits on its owned fronts in fixed
//     tree order (events cannot chain work, so the original symPACK
//     spins per front), and every async+event pair carries extra
//     bookkeeping overhead.
//
// The expectation from the paper: near-identical curves, v1.0 ahead by a
// few percent at larger process counts (mean gap 0.7%, max 7.2%).

// SymPACKVariant selects the API generation to model.
type SymPACKVariant int

const (
	// V1 is UPC++ v1.0 (futures + RPC).
	V1 SymPACKVariant = iota
	// V01 is predecessor v0.1 (events + asyncs).
	V01
)

func (v SymPACKVariant) String() string {
	if v == V01 {
		return "UPC++ v0.1"
	}
	return "UPC++ v1.0"
}

// SimulateSymPACK returns the modeled factorization wall time (seconds)
// of the mini-symPACK for the given tree and process count.
func SimulateSymPACK(m Machine, t *sparse.FrontTree, p int, variant SymPACKVariant) float64 {
	mapping := sparse.ProportionalMap(t, p)
	sim := des.NewSim()
	cpu := make([]des.Resource, p)
	nf := len(t.Fronts)

	remain := make([]int, nf)
	ready := make([]float64, nf)
	factored := make([]bool, nf)
	makespan := 0.0
	observe := func(x float64) {
		if x > makespan {
			makespan = x
		}
	}

	// v0.1 in-order gating: each rank's owned fronts in ascending order;
	// a front may not factor before its predecessor on the same rank.
	ownedIdx := make([][]int, p)
	nextOwned := make([]int, p)
	for f := 0; f < nf; f++ {
		o := mapping.Owner(f)
		ownedIdx[o] = append(ownedIdx[o], f)
		remain[f] = len(t.Fronts[f].Children)
	}

	// frontSpeedup models the 2D block-cyclic dense factorization of a
	// front over its process group (the full symPACK distributes fronts
	// over grids; the in-repo mini-symPACK maps one owner per front, so
	// its strong scaling saturates much earlier — see EXPERIMENTS.md).
	// Parallelism is capped by the front's block count and discounted by
	// a communication-efficiency factor.
	frontSpeedup := func(f int) float64 {
		lo, hi := mapping.Range(f)
		g := float64(hi - lo)
		if g <= 1 {
			return 1
		}
		nb := float64((len(t.Fronts[f].Rows) + 63) / 64)
		useful := nb * nb
		if g > useful {
			g = useful
		}
		if g < 1 {
			return 1
		}
		return 1 + (g-1)*0.7
	}

	var tryFactor func(f int)
	factorNow := func(f int) {
		owner := mapping.Owner(f)
		fr := &t.Fronts[f]
		factorT := fr.Cost * m.FlopSecs / frontSpeedup(f)
		_, fEnd := cpu[owner].Acquire(ready[f], factorT)
		factored[f] = true
		observe(fEnd)
		// v0.1: the rank may now move to its next owned front.
		if variant == V01 {
			nextOwned[owner]++
			if k := nextOwned[owner]; k < len(ownedIdx[owner]) {
				nf2 := ownedIdx[owner][k]
				if remain[nf2] == 0 && !factored[nf2] {
					tryFactor(nf2)
				}
			}
		}
		if fr.Parent < 0 || fr.CBSize() == 0 {
			return
		}
		// Ship the contribution block to the parent's owner.
		cb := fr.CBSize()
		bytes := cb*(cb+1)/2*8 + cb*4
		pOwner := mapping.Owner(fr.Parent)
		intra := m.intra(owner, pOwner)
		sendT := m.cpu(rpcInject) + m.overhead(bytes, intra)
		if variant == V01 {
			sendT += m.cpu(eventOverhead)
		}
		_, sEnd := cpu[owner].Acquire(fEnd, sendT)
		arrival := sEnd + m.gap(bytes, intra) + m.lat(bytes, intra)
		parent := fr.Parent
		sim.At(arrival, func() {
			hDur := m.cpu(rpcHandler) + m.copyCost(bytes)
			_, hEnd := cpu[pOwner].Acquire(sim.Now(), hDur)
			remain[parent]--
			if ready[parent] < hEnd {
				ready[parent] = hEnd
			}
			if remain[parent] == 0 {
				tryFactor(parent)
			}
		})
	}

	tryFactor = func(f int) {
		owner := mapping.Owner(f)
		if variant == V01 {
			// Only the rank's next unfactored owned front may proceed.
			k := nextOwned[owner]
			if k >= len(ownedIdx[owner]) || ownedIdx[owner][k] != f {
				return
			}
		}
		factorNow(f)
	}

	// Seed: leaves are ready at time zero.
	for f := 0; f < nf; f++ {
		if remain[f] == 0 {
			tryFactor(f)
		}
	}
	sim.Run()
	// v0.1 sweep: a rank whose next-in-order front became ready only
	// after later fronts must still pick it up; the event loop above
	// handles it through nextOwned advancing, but guard against a stall.
	for f := 0; f < nf; f++ {
		if !factored[f] {
			// Force remaining fronts in order (ready times already
			// final).
			factorNow(f)
		}
	}
	return makespan
}

// Fig9ProcessCounts is the paper's x axis for the symPACK comparison.
func Fig9ProcessCounts() []int {
	return []int{4, 16, 32, 128, 256, 512, 1024}
}
