package expmodel

import "upcxx/internal/stats"

// Fig 3 closed-form model: the latency and bandwidth of blocking and
// flooded RMA puts for UPC++ (direct conduit injection) versus MPI-3 RMA
// (Cray-MPICH-style FMA/BTE software path plus win-flush
// synchronization). These formulas are the analytical mirror of what the
// real-time benchmark in cmd/rma-bench measures on the simulated conduit;
// the bench cross-checks them.

// Fig3Sizes is the paper's transfer-size sweep (8 B .. 4 MB).
func Fig3Sizes() []int {
	var sizes []int
	for n := 8; n <= 4<<20; n *= 2 {
		sizes = append(sizes, n)
	}
	return sizes
}

// UPCXXPutLatency returns the modeled blocking rput round trip in
// seconds: injection overhead, NIC serialization, wire, and the ack.
func (m Machine) UPCXXPutLatency(n int) float64 {
	return m.overhead(n, false) + m.gap(n, false) + m.lat(n, false) +
		m.gap(0, false) + m.lat(0, false) +
		m.cpu(futureFulfill)
}

// MPIPutLatency returns the modeled MPI_Put + MPI_Win_flush round trip:
// the same conduit wire as UPC++, plus the MPI software path (put base
// cost, banded FMA per-byte CPU, flush bookkeeping and — for transfers of
// 256 B and up — the flush completion-synchronization wait).
func (m Machine) MPIPutLatency(n int) float64 {
	sw := m.overhead(n, false) +
		m.cpu(m.Proto.RMAPutBase) + m.Proto.PutCPUBytes(n).Seconds()*m.CPUScale +
		m.cpu(m.Proto.RMAFlushBase)
	if n >= 256 {
		sw += m.cpu(m.Proto.RMAFlushSync)
	}
	return sw + m.gap(n, false) + m.lat(n, false) + m.gap(0, false) + m.lat(0, false)
}

// UPCXXFloodBW returns the modeled steady-state flood put bandwidth in
// bytes/sec: the pipeline is bound by the slower of CPU injection and NIC
// serialization.
func (m Machine) UPCXXFloodBW(n int) float64 {
	perMsg := maxf(m.overhead(n, false)+m.cpu(futureFulfill), m.gap(n, false))
	return float64(n) / perMsg
}

// MPIFloodBW returns the modeled MPI_Put flood bandwidth (aggregate
// IMB-RMA mode: one flush per window, so only the per-put software path
// charges per message).
func (m Machine) MPIFloodBW(n int) float64 {
	sw := m.overhead(n, false) +
		m.cpu(m.Proto.RMAPutBase) + m.Proto.PutCPUBytes(n).Seconds()*m.CPUScale
	nic := m.gap(n, false)
	// Chunked injection for transfers beyond the internal pipeline chunk.
	if n > m.Proto.RMAChunk {
		chunks := (n + m.Proto.RMAChunk - 1) / m.Proto.RMAChunk
		nic = float64(chunks) * m.gap(m.Proto.RMAChunk, false)
	}
	perMsg := maxf(sw, nic)
	return float64(n) / perMsg
}

// SignalNotifyLatency returns the modeled time from injecting a
// signaling put (remote_cx::as_rpc riding the transfer) to the
// notification body running at the target: one one-way message — the
// notification is enqueued at the destination the instant the data
// lands, costing only the handler dispatch on top of the wire.
func (m Machine) SignalNotifyLatency(n int) float64 {
	return m.overhead(n, false) + m.gap(n, false) + m.lat(n, false) +
		m.cpu(rpcHandler)
}

// PutRPCNotifyLatency returns the modeled time for the pre-completion-
// object idiom delivering the same event: a blocking rput (full round
// trip — the initiator must observe remote visibility before it may
// notify), then a fire-and-forget notification RPC crossing the wire
// once more. Exactly one round trip more than SignalNotifyLatency's
// one-way piggyback, which is the saving EXPERIMENTS.md quantifies.
func (m Machine) PutRPCNotifyLatency(n int) float64 {
	notify := m.cpu(rpcInject) + m.overhead(32, false) + m.gap(32, false) + m.lat(32, false) +
		m.cpu(rpcHandler)
	return m.UPCXXPutLatency(n) + notify
}

// RPCFFNotifyLatency returns the modeled one-way rpc_ff latency for a
// size-byte argument payload: serialize and inject, cross the wire once,
// dispatch the body at the target. The cheapest way to move work plus
// data when no acknowledgment is needed.
func (m Machine) RPCFFNotifyLatency(n int) float64 {
	return m.cpu(rpcInject) + m.overhead(n, false) + m.gap(n, false) + m.lat(n, false) +
		m.cpu(rpcHandler)
}

// RPCRoundTripLatency returns the modeled blocking rpc round trip for a
// size-byte argument payload and a small reply: the rpc_ff path out, the
// body dispatch, then the reply injection and its wire hop back, and the
// initiator-side future fulfillment.
func (m Machine) RPCRoundTripLatency(n int) float64 {
	const replyBytes = 16
	return m.RPCFFNotifyLatency(n) +
		m.cpu(rpcInject) + m.overhead(replyBytes, false) +
		m.gap(replyBytes, false) + m.lat(replyBytes, false) +
		m.cpu(futureFulfill)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Fig3aModel produces the modeled round-trip put latency series
// (microseconds) for both runtimes.
func Fig3aModel(m Machine) []*stats.Series {
	up := &stats.Series{Name: "UPC++ rput"}
	mp := &stats.Series{Name: "MPI RMA put+flush"}
	for _, n := range Fig3Sizes() {
		up.Add(float64(n), m.UPCXXPutLatency(n)*1e6)
		mp.Add(float64(n), m.MPIPutLatency(n)*1e6)
	}
	return []*stats.Series{up, mp}
}

// Fig3bModel produces the modeled flood put bandwidth series (GB/s).
func Fig3bModel(m Machine) []*stats.Series {
	up := &stats.Series{Name: "UPC++ rput flood"}
	mp := &stats.Series{Name: "MPI RMA Unidir_put"}
	for _, n := range Fig3Sizes() {
		up.Add(float64(n), m.UPCXXFloodBW(n)/1e9)
		mp.Add(float64(n), m.MPIFloodBW(n)/1e9)
	}
	return []*stats.Series{up, mp}
}
