// Package stats provides the timing, aggregation and table-formatting
// helpers shared by the benchmark drivers that regenerate the paper's
// figures.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is a set of repeated measurements of one configuration.
type Sample struct {
	Values []float64

	// sorted caches an ascending copy of Values for quantile queries. It
	// is valid only while sortedGen matches gen: every mutator bumps gen,
	// so a reset-and-refill to the same length (which a pure length check
	// would mistake for a settled sample) still invalidates the cache.
	sorted    []float64
	gen       uint64
	sortedGen uint64
}

// Add appends a measurement.
func (s *Sample) Add(v float64) {
	s.Values = append(s.Values, v)
	s.gen++
}

// Reset discards all measurements, keeping capacity for reuse.
func (s *Sample) Reset() {
	s.Values = s.Values[:0]
	s.gen++
}

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.Values) }

// Min returns the smallest measurement (best-of-N, as the paper's
// microbenchmarks report), or NaN if empty.
func (s *Sample) Min() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measurement, or NaN if empty.
func (s *Sample) Max() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean (the paper's application benchmarks
// report means of 10 runs), or NaN if empty.
func (s *Sample) Mean() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Stddev returns the sample standard deviation, or 0 for fewer than two
// measurements.
func (s *Sample) Stddev() float64 {
	n := len(s.Values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.Values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation, or NaN if empty. The sorted order is cached, so a
// sweep of quantile queries over a settled sample sorts once instead of
// once per call.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	// The length check covers samples whose Values were populated
	// directly (struct literals) without going through a mutator.
	if s.sortedGen != s.gen || len(s.sorted) != len(s.Values) {
		s.sorted = append(s.sorted[:0], s.Values...)
		sort.Float64s(s.sorted)
		s.sortedGen = s.gen
	}
	sorted := s.sorted
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Series is a named sequence of (x, y) points, e.g. one line on a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// YAt returns the y value for the given x, or NaN if absent.
func (s *Series) YAt(x float64) float64 {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// Table renders a set of series sharing an x axis as an aligned text table,
// mirroring one figure from the paper.
type Table struct {
	Title  string
	XLabel string
	XFmt   func(float64) string // defaults to %g
	YFmt   func(float64) string // defaults to %.4g
	Series []*Series
}

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) {
	xfmt := t.XFmt
	if xfmt == nil {
		xfmt = func(v float64) string { return fmt.Sprintf("%g", v) }
	}
	yfmt := t.YFmt
	if yfmt == nil {
		yfmt = func(v float64) string { return fmt.Sprintf("%.4g", v) }
	}
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range t.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	header := append([]string{t.XLabel}, func() []string {
		names := make([]string, len(t.Series))
		for i, s := range t.Series {
			names[i] = s.Name
		}
		return names
	}()...)
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{xfmt(x)}
		for _, s := range t.Series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				row = append(row, "-")
			} else {
				row = append(row, yfmt(y))
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		fmt.Fprintln(w, b.String())
		if ri == 0 {
			fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths)))
		}
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w
	}
	return total + 2*(len(widths)-1)
}

// BytesHuman formats a byte count with binary units (8B, 4KB, 2MB, 1GB).
func BytesHuman(n int) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Timer measures wall-clock durations.
type Timer struct{ start time.Time }

// StartTimer begins a measurement.
func StartTimer() Timer { return Timer{start: time.Now()} }

// ElapsedSeconds returns seconds since the timer started.
func (t Timer) ElapsedSeconds() float64 { return time.Since(t.start).Seconds() }

// Elapsed returns the duration since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// GeoMean returns the geometric mean of vs, or NaN if empty or any value is
// non-positive.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return math.NaN()
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Speedup returns base/alt, the factor by which alt beats base when alt is
// a time (lower is better).
func Speedup(base, alt float64) float64 { return base / alt }
