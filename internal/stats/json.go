package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// TableRow is one x position of a TableData with the y value of every
// series at that x; a series with no point there carries nil.
type TableRow struct {
	X float64    `json:"x"`
	Y []*float64 `json:"y"`
}

// TableData is the machine-readable form of a Table: the same union of
// x values and series columns Fprint renders, as JSON-friendly rows.
type TableData struct {
	Title  string     `json:"title"`
	XLabel string     `json:"xlabel"`
	Series []string   `json:"series"`
	Rows   []TableRow `json:"rows"`
}

// Data converts the table to its machine-readable form. NaN y values
// (series without a point at some x) become nulls, since JSON has no
// NaN literal.
func (t *Table) Data() TableData {
	d := TableData{Title: t.Title, XLabel: t.XLabel}
	for _, s := range t.Series {
		d.Series = append(d.Series, s.Name)
	}
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range t.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := TableRow{X: x}
		for _, s := range t.Series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				row.Y = append(row.Y, nil)
			} else {
				v := y
				row.Y = append(row.Y, &v)
			}
		}
		d.Rows = append(d.Rows, row)
	}
	return d
}

// BenchReport is the top-level schema of a BENCH_<tool>.json file: the
// tool name, the configuration it ran under, and every table it
// printed, so CI can archive figures without scraping stdout.
type BenchReport struct {
	Tool   string         `json:"tool"`
	Config map[string]any `json:"config,omitempty"`
	Tables []TableData    `json:"tables"`
}

// WriteBenchJSON writes a BenchReport for the given tables to path
// (conventionally BENCH_<tool>.json), creating or truncating it.
func WriteBenchJSON(path, tool string, config map[string]any, tables []*Table) error {
	rep := BenchReport{Tool: tool, Config: config}
	for _, t := range tables {
		rep.Tables = append(rep.Tables, t.Data())
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return fmt.Errorf("stats: encoding %s report: %w", tool, err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("stats: writing %s: %w", path, err)
	}
	return nil
}
