package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Mean()) || !math.IsNaN(s.Max()) {
		t.Error("empty sample should yield NaN")
	}
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Mean(); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if s.Stddev() <= 0 {
		t.Errorf("stddev = %v", s.Stddev())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
}

// TestPercentileFreshAfterSameLengthRefill pins the quantile cache's
// generation keying: a reset-and-refill back to the same length must not
// serve quantiles of the old values (a cache validated only by
// len(sorted) == len(Values) did exactly that).
func TestPercentileFreshAfterSameLengthRefill(t *testing.T) {
	var s Sample
	for i := 1; i <= 9; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 5 {
		t.Fatalf("initial median = %v, want 5", got)
	}
	s.Reset()
	for i := 101; i <= 109; i++ {
		s.Add(float64(i))
	}
	if s.N() != 9 {
		t.Fatalf("refilled N = %d, want 9", s.N())
	}
	if got := s.Percentile(50); got != 105 {
		t.Errorf("post-refill median = %v, want 105 (stale cache?)", got)
	}
	if got := s.Percentile(0); got != 101 {
		t.Errorf("post-refill p0 = %v, want 101", got)
	}
	// Mid-refill partial state must also be fresh.
	s.Reset()
	s.Add(7)
	if got := s.Percentile(100); got != 7 {
		t.Errorf("post-reset single-value p100 = %v, want 7", got)
	}
}

func TestQuickPercentileBounds(t *testing.T) {
	f := func(vs []float64, p float64) bool {
		if len(vs) == 0 {
			return true
		}
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p = math.Mod(math.Abs(p), 100)
		s := Sample{Values: vs}
		got := s.Percentile(p)
		sorted := append([]float64(nil), vs...)
		sort.Float64s(sorted)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Name: "a"}
	a.Add(1, 10)
	a.Add(2, 20)
	b := &Series{Name: "b"}
	b.Add(2, 200)
	b.Add(4, 400)
	if a.YAt(2) != 20 || !math.IsNaN(a.YAt(3)) {
		t.Error("YAt wrong")
	}
	tab := &Table{Title: "t", XLabel: "x", Series: []*Series{a, b}}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"t\n", "x", "a", "b", "10", "200", "400", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestBytesHuman(t *testing.T) {
	cases := map[int]string{
		8:       "8B",
		1024:    "1KB",
		8192:    "8KB",
		1 << 20: "1MB",
		4 << 20: "4MB",
		1000:    "1000B",
	}
	for n, want := range cases {
		if got := BytesHuman(n); got != want {
			t.Errorf("BytesHuman(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestGeoMeanAndSpeedup(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean = %v", got)
	}
	if !math.IsNaN(GeoMean(nil)) || !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("invalid geomean should be NaN")
	}
	if got := Speedup(10, 5); got != 2 {
		t.Errorf("speedup = %v", got)
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	time.Sleep(5 * time.Millisecond)
	if tm.ElapsedSeconds() < 0.004 {
		t.Errorf("elapsed = %v", tm.Elapsed())
	}
}
