// Package upcxx01 reimplements the programming interface of the
// predecessor UPC++ v0.1 (Zheng et al., IPDPS 2014), which the paper
// compares against in §V-A and Fig 9: event-based completion and
// async(place)(fn, args) remote task launch, with no return values, no
// completion chaining, and explicit event-object lifetime management.
//
// It is layered over the v1.0 runtime (internal/core) the way the paper's
// symPACK port is layered over v1.0: each v0.1 construct maps to the v1.0
// feature that subsumes it (async -> rpc, event -> promise), plus the
// extra bookkeeping the old model forced on users. Fig 9's experiment —
// the same solver written against both APIs — runs both layers over the
// identical conduit.
package upcxx01

import (
	"fmt"

	core "upcxx/internal/core"
	"upcxx/internal/serial"
)

// Runtime is one rank's view of the v0.1 library.
type Runtime struct {
	rk *core.Rank
}

// Wrap adapts a v1.0 rank to the v0.1 interface.
func Wrap(rk *core.Rank) *Runtime { return &Runtime{rk: rk} }

// MyRank returns this process's rank (v0.1 myrank()).
func (r *Runtime) MyRank() int32 { return r.rk.Me() }

// Ranks returns the job size (v0.1 ranks()).
func (r *Runtime) Ranks() int32 { return r.rk.N() }

// Rank exposes the underlying v1.0 rank for interoperability.
func (r *Runtime) Rank() *core.Rank { return r.rk }

// Advance polls the progress engine (v0.1 advance()).
func (r *Runtime) Advance() { r.rk.Progress() }

// Barrier blocks until all ranks arrive (v0.1 barrier()).
func (r *Runtime) Barrier() { r.rk.Barrier() }

// Event is the v0.1 completion object: a bare counter carrying readiness
// information only — no value, in contrast to v1.0 futures (the semantic
// gap §V-A highlights). The user owns the event's lifetime and must not
// reuse it while operations are pending against it.
type Event struct {
	rt      *Runtime
	pending int
}

// NewEvent creates an event with no pending operations.
func NewEvent(rt *Runtime) *Event { return &Event{rt: rt} }

// incref registers one pending operation.
func (e *Event) incref() { e.pending++ }

// decref signals one completed operation.
func (e *Event) decref() {
	e.pending--
	if e.pending < 0 {
		panic("upcxx01: event over-signaled")
	}
}

// Done reports whether all registered operations have completed.
func (e *Event) Done() bool { return e.pending == 0 }

// Wait spins progress until the event is signaled (v0.1 event::wait()).
func (e *Event) Wait() {
	for e.pending > 0 {
		e.rt.rk.Progress()
	}
}

// Async launches fn for execution on the target rank (v0.1
// async(place)(fn)). fn cannot return a value; if e is non-nil it is
// signaled after the remote execution completes (round-trip
// acknowledgment, as v0.1 events required).
func (r *Runtime) Async(target int32, e *Event, fn func(rt *Runtime)) {
	if e == nil {
		core.RPCFF0(r.rk, target, func(trk *core.Rank) { fn(Wrap(trk)) })
		return
	}
	e.incref()
	ack := core.RPC0(r.rk, target, func(trk *core.Rank) core.Unit {
		fn(Wrap(trk))
		return core.Unit{}
	})
	core.ThenDo(ack, func(core.Unit) { e.decref() })
}

// AsyncArg is Async with one serialized argument.
func AsyncArg[A any](r *Runtime, target int32, e *Event, fn func(rt *Runtime, a A), arg A) {
	if e == nil {
		core.RPCFF(r.rk, target, func(trk *core.Rank, a A) { fn(Wrap(trk), a) }, arg)
		return
	}
	e.incref()
	ack := core.RPC(r.rk, target, func(trk *core.Rank, a A) core.Unit {
		fn(Wrap(trk), a)
		return core.Unit{}
	}, arg)
	core.ThenDo(ack, func(core.Unit) { e.decref() })
}

// Allocate reserves n elements in this rank's shared segment (v0.1
// allocate<T>()).
func Allocate[T serial.Scalar](r *Runtime, n int) core.GPtr[T] {
	return core.MustNewArray[T](r.rk, n)
}

// Deallocate frees a local shared allocation.
func Deallocate[T serial.Scalar](r *Runtime, p core.GPtr[T]) {
	if err := core.Delete(r.rk, p); err != nil {
		panic(fmt.Sprintf("upcxx01: %v", err))
	}
}

// CopyAsync starts a v0.1 async_copy between global memory locations,
// signaling e (if non-nil) at completion. v0.1 copies could not chain
// further work — the event is the only completion mechanism.
func CopyAsync[T serial.Scalar](r *Runtime, src, dst core.GPtr[T], n int, e *Event) {
	f := core.CopyGG(r.rk, src, dst, n)
	if e != nil {
		e.incref()
		core.ThenDo(f, func(core.Unit) { e.decref() })
	}
}

// Copy is the blocking v0.1 copy().
func Copy[T serial.Scalar](r *Runtime, src, dst core.GPtr[T], n int) {
	core.CopyGG(r.rk, src, dst, n).Wait()
}

// PutBlocking writes local data to global memory and waits — the blocking
// RMA pattern the v0.1 hash-table needed (§V-A: "a blocking remote
// allocation and a blocking RMA").
func PutBlocking[T serial.Scalar](r *Runtime, src []T, dst core.GPtr[T]) {
	core.RPut(r.rk, src, dst).Wait()
}

// GetBlocking reads global memory into a local buffer and waits.
func GetBlocking[T serial.Scalar](r *Runtime, src core.GPtr[T], dst []T) {
	core.RGet(r.rk, src, dst).Wait()
}
