package upcxx01

import (
	"sync/atomic"
	"testing"

	core "upcxx/internal/core"
)

func TestAsyncWithEvent(t *testing.T) {
	var hits atomic.Int32
	core.Run(4, func(rk *core.Rank) {
		rt := Wrap(rk)
		if rt.MyRank() != rk.Me() || rt.Ranks() != 4 {
			t.Errorf("identity mismatch")
		}
		e := NewEvent(rt)
		target := (rt.MyRank() + 1) % rt.Ranks()
		rt.Async(target, e, func(trt *Runtime) {
			if trt.MyRank() != target {
				t.Errorf("async ran on %d, want %d", trt.MyRank(), target)
			}
			hits.Add(1)
		})
		e.Wait()
		if !e.Done() {
			t.Error("event not done after Wait")
		}
		rt.Barrier()
	})
	if hits.Load() != 4 {
		t.Fatalf("hits = %d", hits.Load())
	}
}

func TestAsyncArgFireAndForget(t *testing.T) {
	core.Run(2, func(rk *core.Rank) {
		rt := Wrap(rk)
		cell := Allocate[uint64](rt, 1)
		_ = core.NewDistObject(rk, cell)
		rt.Barrier()
		if rt.MyRank() == 0 {
			AsyncArg(rt, 1, nil, func(trt *Runtime, v uint64) {
				p, _ := core.LookupDist[core.GPtr[uint64]](trt.Rank(), 0)
				core.Local(trt.Rank(), *p.Value(), 1)[0] = v
			}, uint64(31337))
		}
		if rt.MyRank() == 1 {
			for core.Local(rk, cell, 1)[0] != 31337 {
				rt.Advance()
			}
		}
		rt.Barrier()
	})
}

func TestEventMultipleOps(t *testing.T) {
	core.Run(3, func(rk *core.Rank) {
		rt := Wrap(rk)
		e := NewEvent(rt)
		var done atomic.Int32
		for i := int32(0); i < 6; i++ {
			rt.Async((rk.Me()+1+i)%rk.N(), e, func(*Runtime) { done.Add(1) })
		}
		e.Wait()
		// Each rank's closure increments its own counter (captured state
		// is shared by reference with the remote execution): after the
		// event, all 6 of this rank's asyncs have run and acknowledged.
		if done.Load() != 6 {
			t.Errorf("done = %d", done.Load())
		}
		rt.Barrier()
	})
}

func TestCopyAndBlockingRMA(t *testing.T) {
	core.Run(2, func(rk *core.Rank) {
		rt := Wrap(rk)
		mine := Allocate[float64](rt, 8)
		loc := core.Local(rk, mine, 8)
		for i := range loc {
			loc[i] = float64(int(rk.Me())*10 + i)
		}
		_ = core.NewDistObject(rk, mine)
		rt.Barrier()
		if rk.Me() == 0 {
			theirs := core.FetchDist[core.GPtr[float64]](rk, 0, 1).Wait()
			// Blocking get (v0.1 style).
			buf := make([]float64, 8)
			GetBlocking(rt, theirs, buf)
			if buf[3] != 13 {
				t.Errorf("GetBlocking = %v", buf)
			}
			// Blocking put.
			PutBlocking(rt, []float64{-1}, theirs)
			// Async copy local->remote with event.
			e := NewEvent(rt)
			CopyAsync(rt, mine.Add(1), theirs.Add(1), 2, e)
			e.Wait()
			GetBlocking(rt, theirs, buf)
			if buf[0] != -1 || buf[1] != 1 || buf[2] != 2 {
				t.Errorf("after copies: %v", buf)
			}
		}
		rt.Barrier()
		Deallocate(rt, mine)
		rt.Barrier()
	})
}

func TestEventOverSignalPanics(t *testing.T) {
	core.Run(1, func(rk *core.Rank) {
		rt := Wrap(rk)
		e := NewEvent(rt)
		defer func() {
			if recover() == nil {
				t.Error("over-signal should panic")
			}
		}()
		e.decref()
	})
}
