package upcxx

import (
	"fmt"
	"sync/atomic"

	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
	"upcxx/internal/serial"
)

// Completion objects (paper §III; UPC++ v1.0 spec §7): every communication
// operation exposes up to three events, each of which the initiator may
// request through a completion descriptor —
//
//   - operation completion (OpDone): the whole operation is finished; for a
//     put, the data is globally visible at the target.
//   - source completion (SourceDone): the initiator-side source buffer may
//     be reused. Puts only — a copy's source is a global pointer read when
//     the hop chain reaches it, not an initiator-local buffer. This conduit
//     captures put source buffers eagerly, so the event fires as soon as
//     the operation has been handed to the conduit.
//   - remote completion (RemoteDone): the data is visible in the
//     destination segment, observed *at the destination*. Deliverable
//     target-side as an RPC (the signaling put) and initiator-side as a
//     future/promise/LPC keyed off the conduit ack, which this conduit only
//     returns after remote visibility — including the destination DMA hop
//     for device-kind memory.
//
// Each requested event is delivered as a future (…AsFuture), into a
// caller-supplied promise (…AsPromise), as an LPC onto a chosen persona
// (…AsLPC), or — for the remote event only — as an RPC executed at the
// target after the data lands (RemoteCxAsRPC). Descriptors compose: pass
// any set of them to the …With entry points (RPutWith, RGetWith, CopyWith,
// the vector/indexed/strided variants, the collective …With calls, and
// RPCWith/RPCFFWith), which all feed the single internal injection path,
// Rank.inject.
//
// Deliveries are persona-addressed (paper §II: personas are the unit of
// completion affinity). By default every initiator-side event lands on
// the persona that would naturally own it — futures and promises on the
// initiating persona, target-side RPCs on the target's execution persona.
// The On combinator (and the …On constructors) redirect any delivery to
// a *named* persona instead: a future created by OpCxAsFutureOn(p) is
// owned by p and only consumable from the goroutine holding p; an LPC
// runs in p's queue; a RemoteCxAsRPC body lands on a named persona of
// the *target* rank — the signaling-put notification a worker persona
// harvests directly in progress-thread mode.

// CxEvent identifies one of the three completion events of an operation.
type CxEvent uint8

const (
	// OpDone is operation completion (upcxx operation_cx).
	OpDone CxEvent = iota
	// SourceDone is source-buffer completion (upcxx source_cx).
	SourceDone
	// RemoteDone is remote completion at the destination (upcxx remote_cx).
	RemoteDone
)

// String returns the event mnemonic.
func (ev CxEvent) String() string {
	switch ev {
	case OpDone:
		return "operation_cx"
	case SourceDone:
		return "source_cx"
	case RemoteDone:
		return "remote_cx"
	default:
		return fmt.Sprintf("cx_event(%d)", uint8(ev))
	}
}

type cxKind uint8

const (
	cxFuture cxKind = iota
	cxPromise
	cxLPC
	cxRPC
)

// cxBody marks the RPCBodyOn pseudo-descriptor: not a completion event at
// all, but the execution-persona address of an RPC *body*. The RPC entry
// points peel it off (splitBodyPersona) before completion-plan resolution;
// cxPlan.add rejects it on every other operation.
const cxBody cxKind = 0xFF

func (k cxKind) String() string {
	switch k {
	case cxFuture:
		return "as_future"
	case cxPromise:
		return "as_promise"
	case cxLPC:
		return "as_lpc"
	case cxRPC:
		return "as_rpc"
	case cxBody:
		return "rpc_body_on"
	default:
		return fmt.Sprintf("cx_kind(%d)", uint8(k))
	}
}

// Cx is one completion descriptor: an event paired with a delivery
// method. Construct them with the OpCx…/SourceCx…/RemoteCx… functions and
// pass any combination to a …With communication entry point. A Cx is a
// value; it may be built ahead of the call, but a descriptor carrying a
// promise or RPC payload should be passed to exactly one operation.
type Cx struct {
	ev   CxEvent
	kind cxKind

	prom *Promise[Unit] // cxPromise
	pers *Persona       // delivery persona (nil: the descriptor's default)
	fn   func()         // cxLPC body

	rpcArgs []byte       // cxRPC serialized arguments
	rpcInv  rpcFFInvoker // cxRPC invoker (code reference)
	rpcName string       // cxRPC registry name for cross-process dispatch ("" unregistered)
}

// On returns a copy of the descriptor addressed to persona p instead of
// its default delivery persona. For futures, the produced future is owned
// by p (created as if by NewPromiseOn) and must only be consumed from the
// goroutine holding p; for promises, p must be the persona that owns the
// promise (create it with NewPromiseOn); for LPCs, fn runs in p's queue;
// for RemoteCxAsRPC, p names a persona of the *target* rank and the body
// is delivered to its LPC queue instead of the target's execution
// persona. The persona pointer travels as a code reference, like RPC
// function values — valid everywhere because SPMD ranks share one
// process.
func (cx Cx) On(p *Persona) Cx {
	if p == nil {
		panic("upcxx: Cx.On(nil persona)")
	}
	cx.pers = p
	return cx
}

// RPCBodyOn names the target-rank persona an RPC *body* executes on,
// overriding the default routing to the target's execution persona (the
// progress persona in progress-thread mode, the master persona otherwise).
// Valid only on RPCWith, RPCFutWith, and RPCFFWith; any other operation
// rejects it. Unlike the completion descriptors it rides alongside, it
// names no event — it addresses the request's execution itself, letting an
// initiator deliver work straight into a worker persona's LPC queue with
// no target-side re-dispatch. The persona pointer travels as a code
// reference, like RPC function values; no wire field is added. p must
// belong to the target rank, validated at injection.
func RPCBodyOn(p *Persona) Cx {
	if p == nil {
		panic("upcxx: RPCBodyOn(nil persona)")
	}
	return Cx{kind: cxBody, pers: p}
}

// OpCxAsFuture requests operation completion as a future, returned in
// CxFutures.Op — the default completion of every operation.
func OpCxAsFuture() Cx { return Cx{ev: OpDone, kind: cxFuture} }

// OpCxAsPromise registers operation completion as one anonymous
// dependency on p, discharged when the operation completes — the paper's
// flood-bandwidth idiom (§IV-B).
func OpCxAsPromise(p *Promise[Unit]) Cx { return Cx{ev: OpDone, kind: cxPromise, prom: p} }

// OpCxAsLPC delivers operation completion by running fn as an LPC on
// persona pers (nil: the initiating goroutine's current persona).
func OpCxAsLPC(pers *Persona, fn func()) Cx { return Cx{ev: OpDone, kind: cxLPC, pers: pers, fn: fn} }

// OpCxAsFutureOn requests operation completion as a future owned by the
// named persona p: only the goroutine holding p may consume it. The
// persona-addressed form of OpCxAsFuture (equivalent to
// OpCxAsFuture().On(p)).
func OpCxAsFutureOn(p *Persona) Cx { return OpCxAsFuture().On(p) }

// SourceCxAsFutureOn requests source completion as a future owned by the
// named persona p (puts and RPC argument buffers only).
func SourceCxAsFutureOn(p *Persona) Cx { return SourceCxAsFuture().On(p) }

// RemoteCxAsFutureOn requests remote completion as an initiator-side
// future owned by the named persona p.
func RemoteCxAsFutureOn(p *Persona) Cx { return RemoteCxAsFuture().On(p) }

// SourceCxAsFuture requests source completion as a future
// (CxFutures.Source). Source descriptors are valid on puts only.
func SourceCxAsFuture() Cx { return Cx{ev: SourceDone, kind: cxFuture} }

// SourceCxAsPromise registers source completion on p (puts only).
func SourceCxAsPromise(p *Promise[Unit]) Cx { return Cx{ev: SourceDone, kind: cxPromise, prom: p} }

// SourceCxAsLPC delivers source completion as an LPC on pers (puts only).
func SourceCxAsLPC(pers *Persona, fn func()) Cx {
	return Cx{ev: SourceDone, kind: cxLPC, pers: pers, fn: fn}
}

// RemoteCxAsFuture requests remote completion as an initiator-side future
// (CxFutures.Remote): it readies once the data is known to be visible in
// the destination segment.
func RemoteCxAsFuture() Cx { return Cx{ev: RemoteDone, kind: cxFuture} }

// RemoteCxAsPromise registers remote completion on p.
func RemoteCxAsPromise(p *Promise[Unit]) Cx { return Cx{ev: RemoteDone, kind: cxPromise, prom: p} }

// RemoteCxAsLPC delivers remote completion as an LPC on pers.
func RemoteCxAsLPC(pers *Persona, fn func()) Cx {
	return Cx{ev: RemoteDone, kind: cxLPC, pers: pers, fn: fn}
}

// RemoteCxAsRPC attaches fn(arg) to the *remote* completion of a put,
// copy, collective, or RPC: it executes at the destination rank, on its
// execution persona (or a persona named with On), strictly after the
// transferred data is visible in the destination segment (for device
// destinations, after the final DMA hop; for RPC, at the request's
// landing). This is the signaling put: the notification piggybacks on the
// transfer itself, with no extra round trip. arg is serialized at
// descriptor construction; fn travels as a code reference, exactly like
// an RPCFF body.
func RemoteCxAsRPC[A any](fn func(*Rank, A), arg A) Cx {
	inv := rpcFFInvoker(func(trk *Rank, src Intrank, args []byte) {
		var a A
		mustUnmarshal(args, &a)
		fn(trk, a)
	})
	return Cx{ev: RemoteDone, kind: cxRPC, rpcArgs: mustMarshal(arg), rpcInv: inv,
		rpcName: registeredName(fn)}
}

// remoteCxAux is the opaque code-reference half of a target-side
// remote-completion notification: the body invoker plus the target-rank
// persona it is addressed to (nil: the target's execution persona). It
// travels as the conduit AM's aux, never as payload bytes.
type remoteCxAux struct {
	inv  rpcFFInvoker
	pers *Persona
	name string // registry name for cross-process dispatch ("" in-process)
}

// runRemoteBody delivers one target-side remote-completion body at this
// rank: to the named persona's LPC queue when the descriptor was
// addressed with On, to the rank's execution persona otherwise. Callers
// invoke it only after the owning transfer's data is visible locally.
func (rk *Rank) runRemoteBody(aux remoteCxAux, initiator Intrank, args []byte) {
	if rk.ro != nil {
		rk.ro.Completion(obs.EvRemote, obs.ViaRPC)
	}
	if aux.pers != nil {
		if aux.pers.rk != rk {
			panic(fmt.Sprintf("upcxx: rank %d: remote-cx persona %v belongs to rank %d",
				rk.me, aux.pers, aux.pers.rk.me))
		}
		aux.pers.LPC(func() { aux.inv(rk, initiator, args) })
		return
	}
	rk.execBody(func() { aux.inv(rk, initiator, args) })
}

// CxFutures carries the futures produced by …AsFuture descriptors of one
// operation. Only the fields whose events were requested as futures are
// valid (Future.Valid reports which).
type CxFutures struct {
	Op     Future[Unit]
	Source Future[Unit]
	Remote Future[Unit]
}

// cxDelivery is one initiator-side completion delivery: fn runs as an LPC
// on pers, which is resolved once at descriptor registration (futures and
// promises deliver to their owning persona, explicit LPCs to the persona
// they name). ev and via identify the delivery in the completion matrix
// for the introspection counters.
type cxDelivery struct {
	pers *Persona
	fn   func()
	ev   CxEvent
	via  cxKind
}

// cxPlan is the resolved completion set of one logical operation — the
// cxSet side of the inject(op, cxSet) pair. One plan may span several
// conduit operations (a vector put's fragments); events aggregate across
// them: source fires once every fragment's buffer is captured, operation
// and remote fire once every fragment has completed.
type cxPlan struct {
	rk   *Rank
	futs CxFutures

	op, src, rem []cxDelivery

	// Remote-RPC notification. For a single-fragment put/copy the AM is
	// handed to the conduit, which fires it at the destination when the
	// final hop lands; a multi-fragment batch to one destination shares a
	// counted AM that the conduit enqueues when the *last-landing*
	// fragment arrives (no initiator-side gating round trip). Only a
	// batch with no put/copy carrier at all falls back to shipping the
	// notification as a plain AM from opDone. Collectives fire it
	// member-side through collRemoteLocal instead.
	remoteAM   *gasnet.RemoteAM
	remotePeer Intrank

	nops atomic.Int64 // outstanding conduit operations

	// Observability identity of the logical operation: obsTag carries the
	// inject timestamp, kind, and (when traced) the op's trace ID; set by
	// inject (or the collectives engine) only when stats are enabled.
	// The inject→op-complete histogram records on the plan's final edge —
	// here rather than in the conduit so the edge covers multi-fragment
	// batches and the RPC round trip, whose completion fires from the
	// reply continuation, not a conduit ack.
	obsTag   obs.OpTag
	obsBytes int
}

// obsArm stamps the plan with its operation's observability identity.
func (c *cxPlan) obsArm(tag obs.OpTag, bytes int) {
	c.obsTag = tag
	c.obsBytes = bytes
}

// obsDone records the operation-complete edge (histogram + trace event)
// if the plan was armed.
func (c *cxPlan) obsDone() {
	if c.obsTag.Rec != nil {
		c.obsTag.Rec.OpDone(c.obsTag, c.obsBytes)
	}
}

// newCxPlan resolves descriptors against one operation. kind names the
// operation for validation; remotePeer is the destination rank a gated
// remote RPC would be sent to (-1 when the operation has no single
// destination — remote descriptors then panic).
func newCxPlan(rk *Rank, kind opKind, remotePeer Intrank, cxs []Cx) *cxPlan {
	c := &cxPlan{rk: rk, remotePeer: remotePeer}
	if len(cxs) == 0 {
		cxs = []Cx{OpCxAsFuture()}
	}
	for _, cx := range cxs {
		c.add(kind, cx)
	}
	// A collective plan is born here rather than through inject, so the
	// whole-operation observability edge (one Ops[KindColl] count and the
	// inject→complete latency sample recorded by collOpDone) is armed at
	// plan construction. The lowered tree hops are counted separately as
	// KindCollRound by the collectives engine.
	if kind == opColl && rk.ro != nil {
		c.obsArm(rk.ro.OpStart(obs.KindColl, 0), 0)
	}
	return c
}

// add validates one descriptor against the operation kind and registers
// its delivery.
func (c *cxPlan) add(kind opKind, cx Cx) {
	if cx.kind == cxBody {
		// RPCBodyOn is peeled off by the RPC entry points before plan
		// resolution; seeing one here means it was passed to an operation
		// that has no body to address.
		panic(fmt.Sprintf("upcxx: RPCBodyOn is valid only on RPC entry points, not a %s", kind))
	}
	switch cx.ev {
	case SourceDone:
		// Only puts and RPCs have an initiator-local source buffer (a
		// put's source bytes, an RPC's argument serialization). A copy's
		// source is a global pointer — possibly remote, and read by the
		// conduit only when the hop chain reaches it — so a source event
		// at injection time would license overwriting bytes still to be
		// read.
		if kind != opPut && kind != opRPC {
			panic(fmt.Sprintf("upcxx: %s requested on a %s, which has no local source buffer", cx.ev, kind))
		}
	case RemoteDone:
		if kind == opGet || kind == opAMO {
			panic(fmt.Sprintf("upcxx: %s requested on a %s, which has no remote-completion event", cx.ev, kind))
		}
		if kind == opColl && cx.kind != cxRPC {
			// A collective's "remote" side is every member; the only
			// deliverable event is the member-side RPC fired when the
			// collective's data lands locally. An initiator-side
			// remote future/promise/LPC would need an ack wave (a
			// second barrier) to mean anything.
			panic(fmt.Sprintf("upcxx: %s on a collective is deliverable only as_rpc (fired at each member when the data lands)", cx.ev))
		}
		if kind == opRPC && cx.kind != cxRPC {
			// An RPC's remote event is the request's landing at the
			// target. A fire-and-forget message carries no acknowledgment
			// to ride back, so initiator-side delivery would need an
			// extra wire message; the target-side as_rpc form is the one
			// landing event both RPC shapes share.
			panic(fmt.Sprintf("upcxx: %s on an rpc is deliverable only as_rpc (fired at the target when the request lands)", cx.ev))
		}
		if c.remotePeer < 0 {
			panic(fmt.Sprintf("upcxx: %s requires a single destination rank (vector operations with mixed destinations cannot carry one)", cx.ev))
		}
	}
	if cx.kind == cxRPC {
		if cx.ev != RemoteDone {
			panic(fmt.Sprintf("upcxx: %s cannot be delivered as_rpc (only remote_cx executes at the target)", cx.ev))
		}
		if c.remoteAM != nil {
			panic("upcxx: at most one remote_cx as_rpc per operation (compose the work inside one function)")
		}
		if cx.pers != nil && cx.pers.rk.me != c.remotePeer {
			// For puts/copies/RPCs remotePeer is the destination rank; for
			// collectives it is this member itself (the descriptor fires
			// locally when the payload lands here).
			panic(fmt.Sprintf("upcxx: remote_cx as_rpc persona %v belongs to rank %d, but the notification fires at rank %d",
				cx.pers, cx.pers.rk.me, c.remotePeer))
		}
		c.remoteAM = &gasnet.RemoteAM{
			Handler: c.rk.w.amRemote,
			Payload: encodeRemoteCx(c.rk.me, cx.rpcArgs),
			Aux:     remoteCxAux{inv: cx.rpcInv, pers: cx.pers, name: cx.rpcName},
		}
		return
	}
	if cx.pers != nil && cx.pers.rk != c.rk {
		panic(fmt.Sprintf("upcxx: %s %s delivery persona %v belongs to rank %d, not initiating rank %d",
			cx.ev, cx.kind, cx.pers, cx.pers.rk.me, c.rk.me))
	}
	var d cxDelivery
	switch cx.kind {
	case cxFuture:
		fut := c.eventFuture(cx.ev)
		if fut.Valid() {
			panic(fmt.Sprintf("upcxx: duplicate %s as_future descriptor", cx.ev))
		}
		var p *Promise[Unit]
		if cx.pers != nil {
			// Persona-addressed future: owned by the named persona, so
			// only the goroutine holding it may consume the future.
			p = NewPromiseOn[Unit](c.rk, cx.pers)
		} else {
			p = NewPromise[Unit](c.rk)
		}
		*fut = p.Future()
		d = cxDelivery{pers: p.c.pers, fn: func() { p.fulfillOwnedResult(Unit{}) }}
	case cxPromise:
		p := cx.prom
		if p == nil {
			panic(fmt.Sprintf("upcxx: %s as_promise with nil promise", cx.ev))
		}
		if cx.pers != nil && cx.pers != p.c.pers {
			// Promise state is only ever touched from its owning persona;
			// rerouting the fulfillment elsewhere would race the owner.
			panic(fmt.Sprintf("upcxx: %s as_promise addressed to %v, but the promise is owned by %v (create it with NewPromiseOn)",
				cx.ev, cx.pers, p.c.pers))
		}
		p.RequireAnonymous(1)
		d = cxDelivery{pers: p.c.pers, fn: func() { p.fulfillAnon(1, true) }}
	case cxLPC:
		pers := cx.pers
		if pers == nil {
			pers = c.rk.currentPersona()
		}
		d = cxDelivery{pers: pers, fn: cx.fn}
	default:
		panic(fmt.Sprintf("upcxx: unknown completion delivery %d", cx.kind))
	}
	d.ev, d.via = cx.ev, cx.kind
	switch cx.ev {
	case OpDone:
		c.op = append(c.op, d)
	case SourceDone:
		c.src = append(c.src, d)
	case RemoteDone:
		c.rem = append(c.rem, d)
	default:
		panic(fmt.Sprintf("upcxx: unknown completion event %d", cx.ev))
	}
}

// eventFuture returns the CxFutures slot of ev.
func (c *cxPlan) eventFuture(ev CxEvent) *Future[Unit] {
	switch ev {
	case OpDone:
		return &c.futs.Op
	case SourceDone:
		return &c.futs.Source
	default:
		return &c.futs.Remote
	}
}

// takeConduitAM hands the remote-RPC notification to the conduit:
// inject calls it once per batch and attaches the AM to every put/copy
// fragment (counted, so the last-landing fragment enqueues it at the
// target). Subsequent calls see nil; a batch with no carrier leaves the
// AM in place for opDone's plain-AM fallback.
func (c *cxPlan) takeConduitAM() *gasnet.RemoteAM {
	am := c.remoteAM
	c.remoteAM = nil
	return am
}

// collRemoteLocal fires a collective's member-side remote-RPC
// descriptor on the calling goroutine — the rank's execution persona,
// reached from the arrival path strictly after the collective's data has
// landed locally (post-DMA for device operands) — or routes it to the
// named persona the descriptor was addressed to. Idempotent: the
// descriptor fires at most once per collective.
func (c *cxPlan) collRemoteLocal() {
	am := c.remoteAM
	if am == nil {
		return
	}
	c.remoteAM = nil
	initiator, args, err := decodeRemoteCx(am.Payload)
	if err != nil {
		panic(fmt.Sprintf("upcxx: rank %d corrupt collective remote-cx payload: %v", c.rk.me, err))
	}
	aux := am.Aux.(remoteCxAux)
	if c.rk.ro != nil {
		c.rk.ro.Completion(obs.EvRemote, obs.ViaRPC)
	}
	if aux.pers != nil {
		aux.pers.LPC(func() { aux.inv(c.rk, initiator, args) })
		return
	}
	aux.inv(c.rk, initiator, args)
}

// collOpDone delivers a collective's operation completions to their
// initiating personas (the collective analogue of the last opDone).
func (c *cxPlan) collOpDone() {
	c.obsDone()
	c.deliver(c.op)
}

// deliver routes one bucket of completions, each to its persona's LPC
// queue, counting each delivery in the completion matrix. Delivery is
// always by LPC: the firing goroutine is whichever one harvested the
// conduit completion, and futures/promises must only be touched from
// their owning persona (the fulfillOwned fast path in future.go relies
// on exactly this routing).
func (c *cxPlan) deliver(ds []cxDelivery) {
	ro := c.rk.ro
	if len(ds) == 1 {
		d := ds[0]
		if ro != nil {
			ro.Completion(obs.CxEvent(d.ev), obs.CxVia(d.via))
		}
		d.pers.LPC(d.fn)
		return
	}
	// Group runs of same-persona deliveries into LPCBatch pushes: one CAS
	// and one doorbell ring per run instead of per completion. Batched
	// operations fan many completions into one plan, so the common case
	// is one run covering the whole bucket.
	for i := 0; i < len(ds); {
		j := i + 1
		for j < len(ds) && ds[j].pers == ds[i].pers {
			j++
		}
		fns := make([]func(), 0, j-i)
		for k := i; k < j; k++ {
			if ro != nil {
				ro.Completion(obs.CxEvent(ds[k].ev), obs.CxVia(ds[k].via))
			}
			fns = append(fns, ds[k].fn)
		}
		ds[i].pers.LPCBatch(fns)
		i = j
	}
}

// sourceDone fires source completions; called once per plan, after every
// fragment has been handed to the conduit (which captures source buffers
// eagerly).
func (c *cxPlan) sourceDone() { c.deliver(c.src) }

// opDone notes one fragment's completion; the last one fires operation
// and remote completions. Conduit acks imply remote visibility in this
// conduit, so initiator-side remote deliveries ride the same edge. A
// remote RPC still held here belongs to a batch with no put/copy
// carrier; it ships now as one one-way AM.
func (c *cxPlan) opDone() {
	if c.nops.Add(-1) != 0 {
		return
	}
	if c.remoteAM != nil {
		am := c.remoteAM
		c.remoteAM = nil
		c.rk.ep.AMTag(gasnetRank(c.remotePeer), am.Handler, am.Payload, am.Aux, c.obsTag)
	}
	c.obsDone()
	c.deliver(c.rem)
	c.deliver(c.op)
}

// --- remote-cx wire form -------------------------------------------------

// The remote-cx AM payload is self-describing:
//
//	| magic 0xC7 | version 1 | initiator u32 LE | arglen uvarint | args |
//
// The initiator rank rides in the payload (not only in the conduit
// envelope) so the notification body can learn who signaled it even when
// relayed, and the explicit arglen pins the args span. decodeRemoteCx
// rejects anything malformed — FuzzRemoteCxWire hammers it with hostile
// bytes and checks the canonical round-trip property.

const (
	remoteCxMagic   = 0xC7
	remoteCxVersion = 1
)

// encodeRemoteCx builds the remote-cx AM payload.
func encodeRemoteCx(initiator Intrank, args []byte) []byte {
	e := serial.NewEncoder(make([]byte, 0, 16+len(args)))
	e.PutU8(remoteCxMagic)
	e.PutU8(remoteCxVersion)
	e.PutU32(uint32(initiator))
	e.PutUvarint(uint64(len(args)))
	e.PutRaw(args)
	return e.Bytes()
}

// decodeRemoteCx parses and validates a remote-cx AM payload.
func decodeRemoteCx(b []byte) (initiator Intrank, args []byte, err error) {
	d := serial.NewDecoder(b)
	magic := d.U8()
	version := d.U8()
	init := d.U32()
	alen := d.Uvarint()
	if d.Err() != nil {
		return 0, nil, d.Err()
	}
	if magic != remoteCxMagic {
		return 0, nil, fmt.Errorf("remote-cx AM: bad magic %#x", magic)
	}
	if version != remoteCxVersion {
		return 0, nil, fmt.Errorf("remote-cx AM: unsupported version %d", version)
	}
	if init > 1<<31-1 {
		return 0, nil, fmt.Errorf("remote-cx AM: initiator rank %d out of range", init)
	}
	if alen != uint64(d.Remaining()) {
		return 0, nil, fmt.Errorf("remote-cx AM: argument length %d does not match remaining %d bytes", alen, d.Remaining())
	}
	args = d.Raw(int(alen))
	if err := d.Finish(); err != nil {
		return 0, nil, err
	}
	return Intrank(init), args, nil
}

// handleRemoteCx is the conduit AM handler for remote-completion RPCs. It
// runs at the destination of a put/copy; the conduit enqueues it only
// after the transferred bytes are in place, so the body observes them.
// Like every incoming RPC, the body executes on the rank's durable
// execution persona — or on the named persona the descriptor was
// addressed to with On.
func (w *World) handleRemoteCx(ep *gasnet.Endpoint, src gasnet.Rank, payload []byte, aux any) {
	trk := w.ranks[ep.Rank()]
	initiator, args, err := decodeRemoteCx(payload)
	if err != nil {
		panic(fmt.Sprintf("upcxx: rank %d malformed remote-cx AM from %d: %v", trk.me, src, err))
	}
	trk.runRemoteBody(aux.(remoteCxAux), initiator, args)
}
