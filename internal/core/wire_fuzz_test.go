package upcxx

import (
	"bytes"
	"testing"

	"upcxx/internal/serial"
)

// Fuzz targets for the kind-tagged GPtr wire form. The seed corpus runs
// as ordinary unit tests on every `go test`; CI additionally runs each
// target with -fuzz for a short smoke window (see Makefile fuzz-smoke).

// gptrValid mirrors the wire-form invariants: nil is owner < 0; live
// pointers must have a consistent kind/device pair.
func gptrValid(owner int32, kind uint8, dev uint16) bool {
	if owner < 0 {
		return true // nil pointer; remaining fields are don't-care on decode
	}
	switch MemKind(kind) {
	case KindHost:
		return dev == 0
	case KindDevice:
		return dev != 0
	default:
		return false
	}
}

// FuzzGPtrWire round-trips arbitrarily field-stuffed global pointers:
// valid combinations must survive Marshal/Unmarshal unchanged, invalid
// ones must be rejected at encode time (forged pointers never reach the
// wire).
func FuzzGPtrWire(f *testing.F) {
	f.Add(int32(0), uint8(0), uint16(0), uint64(0))         // host, rank 0
	f.Add(int32(3), uint8(1), uint16(1), uint64(4096))      // device 1
	f.Add(int32(-1), uint8(0), uint16(0), uint64(0))        // nil
	f.Add(int32(7), uint8(1), uint16(65535), uint64(1<<40)) // max device id
	f.Add(int32(2), uint8(0), uint16(5), uint64(64))        // forged: host+dev
	f.Add(int32(2), uint8(1), uint16(0), uint64(64))        // forged: dev+0
	f.Add(int32(9), uint8(200), uint16(1), uint64(8))       // unknown kind
	f.Fuzz(func(t *testing.T, owner int32, kind uint8, dev uint16, off uint64) {
		p := GPtr[int32]{Owner: owner, Kind: MemKind(kind), Dev: dev, Off: off}
		b, err := serial.Marshal(p)
		if !gptrValid(owner, kind, dev) {
			if err == nil {
				t.Fatalf("marshal of invalid %v succeeded", p)
			}
			return
		}
		if err != nil {
			t.Fatalf("marshal %v: %v", p, err)
		}
		var q GPtr[int32]
		if err := serial.Unmarshal(b, &q); err != nil {
			t.Fatalf("unmarshal %v: %v", p, err)
		}
		if q != p {
			t.Fatalf("round trip %v -> %v", p, q)
		}
	})
}

// FuzzRemoteCxWire hammers the remote-cx AM header decoder with hostile
// bytes: it must never panic, never accept a payload whose declared
// argument length disagrees with the actual span, and anything it does
// accept must re-encode to the identical canonical bytes. Valid encodes
// must round-trip.
func FuzzRemoteCxWire(f *testing.F) {
	f.Add(encodeRemoteCx(0, nil))
	f.Add(encodeRemoteCx(3, []byte{1, 2, 3}))
	f.Add(encodeRemoteCx(1<<31-1, bytes.Repeat([]byte{0xaa}, 64)))
	f.Add([]byte{})
	f.Add([]byte{0xc7})
	f.Add([]byte{0xc7, 1, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge uvarint arglen
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		initiator, args, err := decodeRemoteCx(data)
		if err != nil {
			return
		}
		if initiator < 0 {
			t.Fatalf("decoder accepted negative initiator %d from % x", initiator, data)
		}
		re := encodeRemoteCx(initiator, args)
		if !bytes.Equal(re, data) {
			t.Fatalf("wire form not canonical: % x -> (%d, % x) -> % x", data, initiator, args, re)
		}
	})
}

// FuzzRPCWire hammers the versioned RPC wire header (kind/seq/src + args
// + embedded remote-cx payload) with hostile bytes: the decoder must
// never panic, never accept an unknown kind, an out-of-range sender, a
// sequence-carrying fire-and-forget message, or a reply with a remote-cx
// payload, and anything it does accept must re-encode to the identical
// canonical bytes.
func FuzzRPCWire(f *testing.F) {
	f.Add(encodeRPCMsg(rpcMsg{kind: rpcReqKind, seq: 0, src: 0}))
	f.Add(encodeRPCMsg(rpcMsg{kind: rpcReqKind, seq: 7, src: 3, args: []byte{1, 2, 3}}))
	f.Add(encodeRPCMsg(rpcMsg{kind: rpcReplyKind, seq: 1 << 40, src: 1<<31 - 1,
		args: bytes.Repeat([]byte{0xaa}, 64)}))
	f.Add(encodeRPCMsg(rpcMsg{kind: rpcFFKind, src: 2, args: []byte{5},
		rem: encodeRemoteCx(2, []byte{9, 9})}))
	f.Add(encodeRPCMsg(rpcMsg{kind: rpcReqKind, seq: 3, src: 1,
		rem: encodeRemoteCx(1, nil)}))
	f.Add([]byte{})
	f.Add([]byte{rpcMagic})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	// Hostile: huge uvarint argument length on a well-formed prefix.
	hostile := encodeRPCMsg(rpcMsg{kind: rpcReqKind, seq: 1, src: 0})
	hostile = append(hostile[:15], 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeRPCMsg(data)
		if err != nil {
			return
		}
		if m.kind == 0 || m.kind > rpcKindMax {
			t.Fatalf("decoder accepted unknown kind %d from % x", m.kind, data)
		}
		if m.src > 1<<31-1 {
			t.Fatalf("decoder accepted out-of-range sender %d from % x", m.src, data)
		}
		if m.kind == rpcFFKind && m.seq != 0 {
			t.Fatalf("decoder accepted fire-and-forget with sequence %d from % x", m.seq, data)
		}
		if m.kind == rpcReplyKind && len(m.rem) > 0 {
			t.Fatalf("decoder accepted reply with remote-cx payload from % x", data)
		}
		re := encodeRPCMsg(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("wire form not canonical: % x -> %+v -> % x", data, m, re)
		}
	})
}

// FuzzCollWire hammers the collective wire header (team/seq/kind/round/
// src + payload) with hostile bytes: the decoder must never panic, never
// accept an unknown kind, round, or out-of-range sender, and anything it
// does accept must re-encode to the identical canonical bytes.
func FuzzCollWire(f *testing.F) {
	f.Add(encodeCollMsg(collMsg{team: 0, seq: 0, kind: collBarrier, round: collRoundUp}))
	f.Add(encodeCollMsg(collMsg{team: 7, seq: 3, kind: collBcast, round: collRoundDown, src: 2, data: []byte{1, 2, 3}}))
	f.Add(encodeCollMsg(collMsg{team: 1 << 40, seq: 1 << 20, kind: collLand, round: collRoundUp,
		src: 1<<31 - 1, data: bytes.Repeat([]byte{0xaa}, 64)}))
	f.Add(encodeCollMsg(collMsg{team: 9, seq: 1, kind: collAddr, round: collRoundDown, src: 5,
		data: encodeCollAddr(collBufAddr{kind: 1, dev: 2, off: 4096})}))
	f.Add([]byte{})
	f.Add([]byte{collMagic})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	// Unknown kind 200 plus a huge uvarint payload length.
	hostile := encodeCollMsg(collMsg{team: 1, seq: 1, kind: collReduce, round: 0, src: 0})
	hostile[18] = 200
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeCollMsg(data)
		if err != nil {
			return
		}
		if m.kind == 0 || m.kind > collKindMax {
			t.Fatalf("decoder accepted unknown kind %d from % x", m.kind, data)
		}
		if m.round > collRoundDown {
			t.Fatalf("decoder accepted unknown round %d from % x", m.round, data)
		}
		if m.src > 1<<31-1 {
			t.Fatalf("decoder accepted out-of-range sender %d from % x", m.src, data)
		}
		re := encodeCollMsg(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("wire form not canonical: % x -> %+v -> % x", data, m, re)
		}
	})
}

// FuzzGPtrDecode throws arbitrary bytes at the GPtr decoder: it must
// never accept a kind-mismatched pointer, and anything it does accept
// must re-encode to the identical canonical bytes.
func FuzzGPtrDecode(f *testing.F) {
	seed, _ := serial.Marshal(GPtr[float64]{Owner: 1, Kind: KindDevice, Dev: 2, Off: 128})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 19))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p GPtr[float64]
		if err := serial.Unmarshal(data, &p); err != nil {
			return
		}
		if !p.IsNil() && !gptrValid(int32(p.Owner), uint8(p.Kind), p.Dev) {
			t.Fatalf("decoder accepted inconsistent pointer %v from % x", p, data)
		}
		re, err := serial.Marshal(p)
		if err != nil {
			t.Fatalf("re-encode of accepted %v: %v", p, err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("wire form not canonical: % x -> %v -> % x", data, p, re)
		}
	})
}

// FuzzRPCBatchWire hammers the batched-RPC wire frame (count-prefixed
// entry list plus one embedded remote-cx payload) with hostile bytes: the
// decoder must never panic, never accept an empty batch, an unknown entry
// kind, a sequence-carrying fire-and-forget entry, a batch mixing replies
// with requests, or a reply batch carrying a remote-cx payload — and
// anything it does accept must re-encode to the identical canonical
// bytes, the same stream Flush assembles fragment-wise.
func FuzzRPCBatchWire(f *testing.F) {
	f.Add(encodeRPCBatchMsg(rpcBatchMsg{src: 0, entries: []rpcBatchEntry{
		{kind: rpcReqKind, seq: 0}}}))
	f.Add(encodeRPCBatchMsg(rpcBatchMsg{src: 3, entries: []rpcBatchEntry{
		{kind: rpcReqKind, seq: 7, args: []byte{1, 2, 3}},
		{kind: rpcFFKind, args: []byte{9}},
		{kind: rpcReqKind, seq: 8}}}))
	f.Add(encodeRPCBatchMsg(rpcBatchMsg{src: 1<<31 - 1, entries: []rpcBatchEntry{
		{kind: rpcReplyKind, seq: 1 << 40, args: bytes.Repeat([]byte{0xaa}, 64)},
		{kind: rpcReplyKind, seq: 2}}}))
	f.Add(encodeRPCBatchMsg(rpcBatchMsg{src: 2, entries: []rpcBatchEntry{
		{kind: rpcReqKind, seq: 1}},
		rem: encodeRemoteCx(2, []byte{5, 5})}))
	f.Add([]byte{})
	f.Add([]byte{rpcBatchMagic})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	// Hostile: huge uvarint entry count on a well-formed prefix.
	hostile := []byte{rpcBatchMagic, rpcBatchVersion, 0, 0, 0, 0,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeRPCBatchMsg(data)
		if err != nil {
			return
		}
		if len(m.entries) == 0 {
			t.Fatalf("decoder accepted empty batch from % x", data)
		}
		if m.src > 1<<31-1 {
			t.Fatalf("decoder accepted out-of-range sender %d from % x", m.src, data)
		}
		replies, requests := 0, 0
		for _, en := range m.entries {
			if en.kind == 0 || en.kind > rpcKindMax {
				t.Fatalf("decoder accepted unknown entry kind %d from % x", en.kind, data)
			}
			if en.kind == rpcFFKind && en.seq != 0 {
				t.Fatalf("decoder accepted fire-and-forget entry with sequence %d from % x", en.seq, data)
			}
			if en.kind == rpcReplyKind {
				replies++
			} else {
				requests++
			}
		}
		if replies > 0 && requests > 0 {
			t.Fatalf("decoder accepted mixed-direction batch from % x", data)
		}
		if replies > 0 && len(m.rem) > 0 {
			t.Fatalf("decoder accepted reply batch with remote-cx payload from % x", data)
		}
		re := encodeRPCBatchMsg(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("wire form not canonical: % x -> %+v -> % x", data, m, re)
		}
	})
}
