package upcxx

// SPMD function registry: the bridge that lets RPC bodies cross process
// boundaries. In-process worlds ship invoker closures by reference
// (valid because every rank shares one address space); a real transport
// cannot — so functions that participate in cross-process RPC are
// registered once, at init time, under their stable runtime name
// (package path + function name, identical in every rank because SPMD
// ranks run one binary). The wire then carries the *name*; the
// receiving rank looks up the same entry and runs the same body.
//
// Register package-level, non-generic functions: closures have no
// stable identity across processes, and distinct generic
// instantiations may share one code pointer under GC shape stenciling,
// which would alias their registry entries.

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"

	"upcxx/internal/serial"
)

// fnEntry holds every invoker form derivable from one registered
// function. Forms the function's signature cannot take stay nil.
type fnEntry struct {
	inv   rpcInvoker      // round-trip request body (replies inline or deferred)
	ffInv rpcFFInvoker    // fire-and-forget / remote-cx body
	bInv  rpcBatchInvoker // batched round-trip body (returns result bytes)
}

var fnReg = struct {
	sync.RWMutex
	byName map[string]*fnEntry
	byPtr  map[uintptr]string
}{
	byName: make(map[string]*fnEntry),
	byPtr:  make(map[uintptr]string),
}

func fnName(fn any) string {
	v := reflect.ValueOf(fn)
	if v.Kind() != reflect.Func {
		panic(fmt.Sprintf("upcxx: Register of non-function %T", fn))
	}
	rf := runtime.FuncForPC(v.Pointer())
	if rf == nil {
		panic("upcxx: Register of unresolvable function")
	}
	return rf.Name()
}

func registerEntry(fn any, build func() fnEntry) string {
	name := fnName(fn)
	ent := build()
	fnReg.Lock()
	fnReg.byName[name] = &ent
	fnReg.byPtr[reflect.ValueOf(fn).Pointer()] = name
	fnReg.Unlock()
	return name
}

// registeredName returns fn's registry name, or "" when unregistered.
func registeredName(fn any) string {
	v := reflect.ValueOf(fn)
	if v.Kind() != reflect.Func {
		return ""
	}
	fnReg.RLock()
	name := fnReg.byPtr[v.Pointer()]
	fnReg.RUnlock()
	return name
}

func lookupFn(name string) (*fnEntry, error) {
	fnReg.RLock()
	ent := fnReg.byName[name]
	fnReg.RUnlock()
	if ent == nil {
		return nil, fmt.Errorf("upcxx: RPC names unregistered function %q — every rank must RegisterRPC/RegisterRPCFF/RegisterRPCFut it at init time", name)
	}
	return ent, nil
}

// RegisterRPC registers a round-trip RPC body for cross-process
// dispatch and returns its wire name. Call from init() (or any point
// before the function first crosses a process boundary) with a
// package-level, non-generic function; registration is process-global.
func RegisterRPC[A, R any](fn func(*Rank, A) R) string {
	return registerEntry(fn, func() fnEntry {
		return fnEntry{
			inv: func(trk *Rank, src Intrank, seq uint64, args []byte) {
				var a A
				mustUnmarshal(args, &a)
				trk.replyTo(src, seq, mustMarshal(fn(trk, a)))
			},
			bInv: func(trk *Rank, src Intrank, args []byte) []byte {
				var a A
				mustUnmarshal(args, &a)
				return mustMarshal(fn(trk, a))
			},
		}
	})
}

// RegisterRPC2 registers a two-argument round-trip RPC body for
// cross-process dispatch and returns its wire name.
func RegisterRPC2[A, B, R any](fn func(*Rank, A, B) R) string {
	return registerEntry(fn, func() fnEntry {
		return fnEntry{
			inv: func(trk *Rank, src Intrank, seq uint64, args []byte) {
				var a A
				var b B
				n, err := serial.DecodeInto(args, &a)
				if err != nil {
					panic(fmt.Sprintf("upcxx: RPC2 first argument decode: %v", err))
				}
				mustUnmarshal(args[n:], &b)
				trk.replyTo(src, seq, mustMarshal(fn(trk, a, b)))
			},
		}
	})
}

// RegisterRPCFF registers a fire-and-forget RPC body (also the form
// remote-completion RemoteCxAsRPC bodies take) for cross-process
// dispatch and returns its wire name.
func RegisterRPCFF[A any](fn func(*Rank, A)) string {
	return registerEntry(fn, func() fnEntry {
		return fnEntry{
			ffInv: func(trk *Rank, src Intrank, args []byte) {
				var a A
				mustUnmarshal(args, &a)
				fn(trk, a)
			},
		}
	})
}

// RegisterRPCFut registers a future-returning (deferred-reply) RPC body
// for cross-process dispatch and returns its wire name.
func RegisterRPCFut[A, R any](fn func(*Rank, A) Future[R]) string {
	return registerEntry(fn, func() fnEntry {
		return fnEntry{
			inv: func(trk *Rank, src Intrank, seq uint64, args []byte) {
				var a A
				mustUnmarshal(args, &a)
				inner := fn(trk, a)
				reply := func() {
					inner.c.onReady(func(r R) {
						trk.replyTo(src, seq, mustMarshal(r))
					})
				}
				if inner.c.pers == nil || inner.c.pers.onOwnerGoroutine() {
					reply()
				} else {
					inner.c.pers.LPC(reply)
				}
			},
		}
	})
}

// wireName resolves fn's registry name when this rank is part of a
// multi-process (real-transport) world; in-process worlds ship invoker
// closures by reference and need no name. Unregistered functions yield
// "" — an error surfaces only if the message actually leaves the
// process (self-RPC stays nameless and legal).
func (rk *Rank) wireName(fn any) string {
	if rk.w == nil || !rk.w.dist {
		return ""
	}
	return registeredName(fn)
}

// --- AuxCodec: rpcAux / rpcBatchAux / remoteCxAux over the wire ----------

// distAuxCodec serializes the aux tokens that ride conduit AMs. Wire
// form: `tag u8 | ...`:
//
//	1 = rpcAux:      invName string | remName string ("" = none)
//	2 = rpcBatchAux: count uvarint | count×{kind u8 | name string} | remName string
//	3 = remoteCxAux: name string
//
// Persona addresses (bodyPers, rem.pers) are process-local pointers and
// cannot cross; encoding them is an error, as is an unregistered
// (empty-name) function.
type distAuxCodec struct{}

func auxNameErr(what string) error {
	return fmt.Errorf("upcxx: %s cannot cross a process boundary unregistered — register a package-level function with RegisterRPC/RegisterRPC2/RegisterRPCFF/RegisterRPCFut (closures and the RPC0/RPCFF0/RPCFF2 variants are in-process only)", what)
}

func (distAuxCodec) EncodeAux(aux any) ([]byte, error) {
	e := serial.NewEncoder(make([]byte, 0, 48))
	switch a := aux.(type) {
	case rpcAux:
		if a.bodyPers != nil {
			return nil, fmt.Errorf("upcxx: persona-addressed RPC body (RPCBodyOn) cannot cross a process boundary")
		}
		if a.invName == "" {
			return nil, auxNameErr("RPC body function")
		}
		if a.rem.pers != nil {
			return nil, fmt.Errorf("upcxx: persona-addressed remote-cx (On) cannot cross a process boundary")
		}
		if a.rem.inv != nil && a.rem.name == "" {
			return nil, auxNameErr("remote-completion (RemoteCxAsRPC) function")
		}
		e.PutU8(1)
		e.PutString(a.invName)
		e.PutString(a.rem.name)
	case rpcBatchAux:
		if a.rem.pers != nil {
			return nil, fmt.Errorf("upcxx: persona-addressed remote-cx (On) cannot cross a process boundary")
		}
		if a.rem.inv != nil && a.rem.name == "" {
			return nil, auxNameErr("remote-completion (RemoteCxAsRPC) function")
		}
		e.PutU8(2)
		e.PutUvarint(uint64(len(a.bodies)))
		for _, body := range a.bodies {
			if body.name == "" {
				return nil, auxNameErr("batched RPC body function")
			}
			kind := rpcReqKind
			if body.ffInv != nil {
				kind = rpcFFKind
			}
			e.PutU8(kind)
			e.PutString(body.name)
		}
		e.PutString(a.rem.name)
	case remoteCxAux:
		if a.pers != nil {
			return nil, fmt.Errorf("upcxx: persona-addressed remote-cx (On) cannot cross a process boundary")
		}
		if a.name == "" {
			return nil, auxNameErr("remote-completion (RemoteCxAsRPC) function")
		}
		e.PutU8(3)
		e.PutString(a.name)
	default:
		return nil, fmt.Errorf("upcxx: aux token %T cannot cross a process boundary", aux)
	}
	return e.Bytes(), nil
}

func (distAuxCodec) DecodeAux(b []byte) (any, error) {
	d := serial.NewDecoder(b)
	tag := d.U8()
	switch tag {
	case 1:
		invName := d.String()
		remName := d.String()
		if err := d.Finish(); err != nil {
			return nil, err
		}
		ent, err := lookupFn(invName)
		if err != nil {
			return nil, err
		}
		a := rpcAux{inv: ent.inv, ffInv: ent.ffInv, invName: invName}
		if remName != "" {
			rent, err := lookupFn(remName)
			if err != nil {
				return nil, err
			}
			a.rem = remoteCxAux{inv: rent.ffInv, name: remName}
		}
		return a, nil
	case 2:
		count := d.Uvarint()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if count > uint64(d.Remaining()) {
			return nil, fmt.Errorf("upcxx: batch aux body count %d exceeds remaining bytes", count)
		}
		a := rpcBatchAux{bodies: make([]batchBodyAux, 0, count)}
		for i := uint64(0); i < count; i++ {
			kind := d.U8()
			name := d.String()
			if d.Err() != nil {
				return nil, d.Err()
			}
			ent, err := lookupFn(name)
			if err != nil {
				return nil, err
			}
			switch kind {
			case rpcReqKind:
				a.bodies = append(a.bodies, batchBodyAux{inv: ent.bInv, name: name})
			case rpcFFKind:
				a.bodies = append(a.bodies, batchBodyAux{ffInv: ent.ffInv, name: name})
			default:
				return nil, fmt.Errorf("upcxx: batch aux entry %d has kind %d", i, kind)
			}
		}
		remName := d.String()
		if err := d.Finish(); err != nil {
			return nil, err
		}
		if remName != "" {
			rent, err := lookupFn(remName)
			if err != nil {
				return nil, err
			}
			a.rem = remoteCxAux{inv: rent.ffInv, name: remName}
		}
		return a, nil
	case 3:
		name := d.String()
		if err := d.Finish(); err != nil {
			return nil, err
		}
		ent, err := lookupFn(name)
		if err != nil {
			return nil, err
		}
		return remoteCxAux{inv: ent.ffInv, name: name}, nil
	default:
		return nil, fmt.Errorf("upcxx: unknown aux tag %d", tag)
	}
}
