package upcxx

import (
	"fmt"

	"upcxx/internal/gasnet"
	"upcxx/internal/serial"
)

// Remote atomics (upcxx::atomic_domain): read-modify-write operations on
// 64-bit words in shared segments, executed by the target NIC without
// target CPU attentiveness — the Aries offload the paper credits for
// latency and scalability in lock-free data structures. All operations are
// non-blocking and return futures.

// amoOp issues one offloaded atomic through the single injection path
// (Rank.inject); the previous value is delivered to the initiating
// persona as the operation-completion payload.
func (rk *Rank) amoOp(owner Intrank, off uint64, op gasnet.AMOOp, a, b uint64) Future[uint64] {
	p := NewPromise[uint64](rk)
	var old uint64
	// The conduit's onOld hook stores the fetched value before the
	// completion LPC is enqueued; the enqueue orders the write for the
	// owning persona's drain.
	cx := &cxPlan{rk: rk, remotePeer: owner}
	cx.op = []cxDelivery{{pers: p.c.pers, fn: func() { p.fulfillOwnedResult(old) }}}
	rk.inject([]rmaOp{{
		kind:    opAMO,
		dstPeer: owner,
		dstOff:  off,
		amo:     op,
		amoA:    a,
		amoB:    b,
		onOld:   func(v uint64) { old = v },
	}}, cx)
	return p.Future()
}

// amoOpPtr validates the target pointer and issues the atomic. Atomic
// domains operate on host memory only: the NIC's AMO unit cannot reach
// device segments (real memory-kinds runtimes have the same restriction).
func amoOpPtr[T serial.Scalar](rk *Rank, p GPtr[T], op gasnet.AMOOp, a, b uint64) Future[uint64] {
	if p.IsNil() {
		panic("upcxx: atomic operation on nil GPtr")
	}
	if p.segID("atomic") != gasnet.HostSeg {
		panic(fmt.Sprintf("upcxx: atomic operation on %v: atomic domains require host-kind memory", p))
	}
	return rk.amoOp(p.Owner, p.Off, op, a, b)
}

// AtomicU64 is an atomic domain over uint64 shared objects.
type AtomicU64 struct{ rk *Rank }

// NewAtomicU64 creates the uint64 atomic domain for this rank.
func NewAtomicU64(rk *Rank) *AtomicU64 { return &AtomicU64{rk: rk} }

// Load atomically reads the remote word.
func (a *AtomicU64) Load(p GPtr[uint64]) Future[uint64] {
	return amoOpPtr(a.rk, p, gasnet.AMOLoad, 0, 0)
}

// Store atomically writes v to the remote word.
func (a *AtomicU64) Store(p GPtr[uint64], v uint64) Future[Unit] {
	return Then(amoOpPtr(a.rk, p, gasnet.AMOStore, v, 0), func(uint64) Unit { return Unit{} })
}

// FetchAdd atomically adds v, returning the previous value.
func (a *AtomicU64) FetchAdd(p GPtr[uint64], v uint64) Future[uint64] {
	return amoOpPtr(a.rk, p, gasnet.AMOAdd, v, 0)
}

// FetchAnd atomically ANDs v, returning the previous value.
func (a *AtomicU64) FetchAnd(p GPtr[uint64], v uint64) Future[uint64] {
	return amoOpPtr(a.rk, p, gasnet.AMOAnd, v, 0)
}

// FetchOr atomically ORs v, returning the previous value.
func (a *AtomicU64) FetchOr(p GPtr[uint64], v uint64) Future[uint64] {
	return amoOpPtr(a.rk, p, gasnet.AMOOr, v, 0)
}

// FetchXor atomically XORs v, returning the previous value.
func (a *AtomicU64) FetchXor(p GPtr[uint64], v uint64) Future[uint64] {
	return amoOpPtr(a.rk, p, gasnet.AMOXor, v, 0)
}

// CompareExchange atomically stores desired if the word equals expected,
// returning the previous value (success iff result == expected).
func (a *AtomicU64) CompareExchange(p GPtr[uint64], expected, desired uint64) Future[uint64] {
	return amoOpPtr(a.rk, p, gasnet.AMOCompSwap, expected, desired)
}

// AtomicI64 is an atomic domain over int64 shared objects, adding the
// signed min/max operations Aries offloads.
type AtomicI64 struct{ rk *Rank }

// NewAtomicI64 creates the int64 atomic domain for this rank.
func NewAtomicI64(rk *Rank) *AtomicI64 { return &AtomicI64{rk: rk} }

// Load atomically reads the remote word.
func (a *AtomicI64) Load(p GPtr[int64]) Future[int64] {
	return Then(amoOpPtr(a.rk, p, gasnet.AMOLoad, 0, 0), u2i)
}

// Store atomically writes v to the remote word.
func (a *AtomicI64) Store(p GPtr[int64], v int64) Future[Unit] {
	return Then(amoOpPtr(a.rk, p, gasnet.AMOStore, uint64(v), 0), func(uint64) Unit { return Unit{} })
}

// FetchAdd atomically adds v, returning the previous value.
func (a *AtomicI64) FetchAdd(p GPtr[int64], v int64) Future[int64] {
	return Then(amoOpPtr(a.rk, p, gasnet.AMOAdd, uint64(v), 0), u2i)
}

// FetchMin atomically replaces the word with min(word, v), returning the
// previous value.
func (a *AtomicI64) FetchMin(p GPtr[int64], v int64) Future[int64] {
	return Then(amoOpPtr(a.rk, p, gasnet.AMOMin, uint64(v), 0), u2i)
}

// FetchMax atomically replaces the word with max(word, v), returning the
// previous value.
func (a *AtomicI64) FetchMax(p GPtr[int64], v int64) Future[int64] {
	return Then(amoOpPtr(a.rk, p, gasnet.AMOMax, uint64(v), 0), u2i)
}

// CompareExchange atomically stores desired if the word equals expected,
// returning the previous value.
func (a *AtomicI64) CompareExchange(p GPtr[int64], expected, desired int64) Future[int64] {
	return Then(amoOpPtr(a.rk, p, gasnet.AMOCompSwap, uint64(expected), uint64(desired)), u2i)
}

func u2i(v uint64) int64 { return int64(v) }
