package upcxx

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"upcxx/internal/obs"
)

// Personas (upcxx::persona, paper §II and the UPC++ v1.0 spec §10): a
// persona is an execution context that owns futures and receives LPCs —
// the unit of progress affinity within a rank. Every communication
// operation is initiated *by* a persona (the initiating goroutine's
// current persona) and its completion is delivered back *to* that
// persona, no matter which goroutine harvests it from the conduit. This
// is what lets a dedicated progress thread drive the network on behalf
// of many user goroutines: the progress thread observes completions and
// hands each one to the persona that initiated it through that persona's
// LPC queue, preserving the rule that futures are only ever touched from
// the goroutine holding their owning persona.
//
// Each rank has a distinguished master persona (held by the rank's SPMD
// goroutine during World.Run) and, in progress-thread mode, an internal
// progress persona owned by the progress goroutine (incoming RPC bodies
// and the collectives engine execute there). Any other goroutine that
// performs communication on a rank is bound a default persona
// automatically, or can create and activate personas explicitly with
// NewPersona and AcquirePersona (the analogue of upcxx::persona_scope).
// Collectives may be initiated from any persona: entry is handed off to
// the rank's execution persona and completions route back to the
// initiator (see coll.go).

// lpcNode is one entry of a persona's LPC queue: an intrusive
// multi-producer stack node. Producers push with a CAS; the owning
// goroutine detaches the whole stack and reverses it, which yields
// global FIFO order (the order in which the pushes linearized).
type lpcNode struct {
	fn   func()
	next *lpcNode
}

// Persona is a per-thread execution context: a lock-free LPC queue plus
// ownership bookkeeping. LPC may be called from any goroutine; draining
// (which happens inside user-level progress) only ever runs on the
// goroutine currently holding the persona.
type Persona struct {
	rk   *Rank
	name string

	holder atomic.Uint64 // goroutine id holding the persona; 0 when unheld
	head   atomic.Pointer[lpcNode]
	npend  atomic.Int64

	oc *obs.PersonaCount // per-persona LPC counters; nil = stats disabled
}

// NewPersona creates an unheld persona on rk. Activate it on a goroutine
// with AcquirePersona before initiating communication through it.
func NewPersona(rk *Rank, name string) *Persona {
	p := &Persona{rk: rk, name: name}
	if rk.ro != nil {
		p.oc = rk.ro.Persona(name)
	}
	return p
}

// Rank returns the rank this persona belongs to.
func (p *Persona) Rank() *Rank { return p.rk }

// Name returns the diagnostic name given at creation.
func (p *Persona) Name() string { return p.name }

// PendingLPCs returns the number of enqueued-but-unexecuted LPCs.
func (p *Persona) PendingLPCs() int { return int(p.npend.Load()) }

func (p *Persona) String() string {
	return fmt.Sprintf("persona %q (rank %d, %d pending)", p.name, p.rk.me, p.npend.Load())
}

// LPC enqueues fn for execution during a future user-level progress call
// of the goroutine holding this persona. Safe to call from any
// goroutine; delivery is FIFO in enqueue order.
func (p *Persona) LPC(fn func()) {
	if p.oc != nil {
		p.oc.Enq.Add(1)
	}
	// Count before publishing: PendingLPCs may transiently over-report,
	// never under-report, so quiescence checks stay conservative.
	p.npend.Add(1)
	nd := &lpcNode{fn: fn}
	for {
		old := p.head.Load()
		nd.next = old
		if p.head.CompareAndSwap(old, nd) {
			break
		}
	}
	// Wake a progress thread sleeping on the conduit doorbell: persona
	// deliveries bypass the endpoint queues it watches.
	p.rk.ep.Ring()
}

// LPCTo delivers fn to persona p — the cross-thread local procedure call
// of upcxx::persona::lpc (fire-and-forget form).
func LPCTo(p *Persona, fn func()) { p.LPC(fn) }

// LPCBatch enqueues fns as one pre-linked chain: a single CAS publishes
// the whole batch and the conduit doorbell rings once for all of it, so
// a batch of completions costs one progress-thread wakeup instead of one
// per delivery. Delivery order within the batch (and against concurrent
// pushes) is FIFO, exactly as if LPC had been called once per fn.
func (p *Persona) LPCBatch(fns []func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		p.LPC(fns[0])
		return
	}
	if p.oc != nil {
		p.oc.Enq.Add(uint64(len(fns)))
	}
	p.npend.Add(int64(len(fns)))
	// Pre-link the chain newest-first (drain's reversal restores FIFO):
	// fns[len-1] becomes the chain head, fns[0] the tail that splices
	// onto the old stack top.
	var chain *lpcNode
	tail := &lpcNode{fn: fns[0]}
	chain = tail
	for _, fn := range fns[1:] {
		chain = &lpcNode{fn: fn, next: chain}
	}
	for {
		old := p.head.Load()
		tail.next = old
		if p.head.CompareAndSwap(old, chain) {
			break
		}
	}
	p.rk.ep.Ring()
}

// drain executes every LPC enqueued before the call, in FIFO order, and
// returns the count. Must only be called by the goroutine holding p.
// LPCs enqueued by the drained functions themselves run at the next
// drain, mirroring the compQ snapshot semantics of user progress.
func (p *Persona) drain() int {
	top := p.head.Swap(nil)
	if top == nil {
		return 0
	}
	// Reverse the detached stack to recover enqueue order.
	var fifo *lpcNode
	n := 0
	for top != nil {
		next := top.next
		top.next = fifo
		fifo = top
		top = next
		n++
	}
	for fifo != nil {
		fifo.fn()
		p.npend.Add(-1) // after execution: PendingLPCs never under-reports
		fifo = fifo.next
	}
	if p.oc != nil {
		p.oc.Exec.Add(uint64(n))
	}
	return n
}

// onOwnerGoroutine reports whether the calling goroutine currently holds
// this persona.
func (p *Persona) onOwnerGoroutine() bool {
	h := p.holder.Load()
	return h != 0 && h == curGID()
}

// --- per-goroutine persona state ---------------------------------------

// goroutineState is the calling goroutine's persona stack: explicitly
// acquired personas (innermost last) plus lazily created default
// personas, one per rank the goroutine has touched without an explicit
// scope. Only the owning goroutine reads or writes its state; the
// registry map itself is the only cross-goroutine structure.
type goroutineState struct {
	gid        uint64 // the owning goroutine's id, derived once
	stack      []*Persona
	defaults   map[*Rank]*Persona
	restricted bool // inside user-level progress (callback/RPC body)
}

var tlsStates sync.Map // goroutine id -> *goroutineState

// gidLookups counts curGID invocations. The lookup parses runtime.Stack
// (~0.5–1µs, comparable to the modeled LogGP overheads), so hot paths —
// fulfill, execBody, the progress loop — must not re-derive it per call;
// TestGIDLookupsCached pins that property against regression.
var gidLookups atomic.Uint64

// curGID returns the calling goroutine's id, parsed from the
// runtime.Stack header ("goroutine N [status]:"). Go never reuses
// goroutine ids within a process.
func curGID() uint64 {
	gidLookups.Add(1)
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

func curState() *goroutineState {
	id := curGID()
	if v, ok := tlsStates.Load(id); ok {
		return v.(*goroutineState)
	}
	gs := &goroutineState{gid: id, defaults: make(map[*Rank]*Persona)}
	tlsStates.Store(id, gs)
	return gs
}

// currentPersona returns the calling goroutine's active persona for rk:
// the innermost acquired persona belonging to rk, or a default persona
// bound to this goroutine on first use.
func (rk *Rank) currentPersona() *Persona {
	gs := curState()
	for i := len(gs.stack) - 1; i >= 0; i-- {
		if gs.stack[i].rk == rk {
			return gs.stack[i]
		}
	}
	if p, ok := gs.defaults[rk]; ok {
		return p
	}
	p := NewPersona(rk, "default")
	p.holder.Store(curGID())
	gs.defaults[rk] = p
	return p
}

// CurrentPersona returns the calling goroutine's active persona for this
// rank (upcxx::current_persona).
func (rk *Rank) CurrentPersona() *Persona { return rk.currentPersona() }

// MasterPersona returns the rank's master persona
// (upcxx::master_persona): the persona World.Run activates on the rank's
// SPMD goroutine, and — outside progress-thread mode — the rank's
// durable execution persona (incoming RPC bodies and collective state
// advance there).
func (rk *Rank) MasterPersona() *Persona { return rk.master }

// ProgressPersona returns the persona owned by the rank's dedicated
// progress goroutine, or nil when Config.ProgressThread is off. Incoming
// RPC bodies run with it current in progress-thread mode.
func (rk *Rank) ProgressPersona() *Persona {
	if !rk.w.cfg.ProgressThread {
		return nil
	}
	return rk.progressP
}

// execPersona returns the rank's durable execution persona: the
// progress persona in progress-thread mode, the master persona
// otherwise. Incoming RPC bodies run on it (execBody) and the
// collectives engine advances on it, which is what lets any persona
// initiate a collective — the owner handoff replaces the old
// master-persona pin (and its panic) entirely.
func (rk *Rank) execPersona() *Persona {
	if rk.w.cfg.ProgressThread {
		return rk.progressP
	}
	return rk.master
}

// PersonaScope pins a persona to the calling goroutine for a region of
// code, like the RAII upcxx::persona_scope. Scopes nest (LIFO): the
// innermost scope's persona is the goroutine's current persona for its
// rank, and Release must be called in reverse acquisition order.
type PersonaScope struct {
	gid      uint64
	p        *Persona
	released bool
}

// AcquirePersona makes p current on the calling goroutine until the
// returned scope is released. Acquiring a persona held by another
// goroutine panics: a persona belongs to at most one thread at a time.
// Re-acquiring a persona the goroutine already holds is permitted
// (nested scopes of the same persona).
func AcquirePersona(p *Persona) *PersonaScope {
	id := curGID()
	if !p.holder.CompareAndSwap(0, id) && p.holder.Load() != id {
		panic(fmt.Sprintf("upcxx: %v is already held by another goroutine", p))
	}
	gs := curState()
	gs.stack = append(gs.stack, p)
	return &PersonaScope{gid: id, p: p}
}

// Release ends the scope. It must run on the goroutine that acquired it,
// and scopes must be released innermost-first.
func (sc *PersonaScope) Release() {
	if sc.released {
		panic("upcxx: PersonaScope released twice")
	}
	id := curGID()
	if id != sc.gid {
		panic("upcxx: PersonaScope released on a different goroutine than acquired")
	}
	gs := curState()
	if len(gs.stack) == 0 || gs.stack[len(gs.stack)-1] != sc.p {
		panic("upcxx: PersonaScope released out of LIFO order")
	}
	sc.released = true
	gs.stack = gs.stack[:len(gs.stack)-1]
	if !gs.holds(sc.p) {
		sc.p.holder.Store(0)
	}
	if len(gs.stack) == 0 && len(gs.defaults) == 0 {
		tlsStates.Delete(id)
	}
}

// holds reports whether the goroutine still holds p through a remaining
// scope or as one of its default personas (a default stays held by its
// goroutine even when an explicit re-acquisition of it is released).
func (gs *goroutineState) holds(p *Persona) bool {
	for _, q := range gs.stack {
		if q == p {
			return true
		}
	}
	for _, q := range gs.defaults {
		if q == p {
			return true
		}
	}
	return false
}

// DetachDefaultPersonas discards the calling goroutine's automatically
// bound default personas for every rank and, if no explicit scopes
// remain, removes the goroutine's persona state entirely. Long-lived
// applications that spawn a goroutine per task should defer this in
// every worker goroutine that communicates, after its operations have
// completed — otherwise the global persona registry grows with every
// goroutine ever used for communication. LPCs still queued on a
// detached persona are never delivered.
func DetachDefaultPersonas() {
	id := curGID()
	v, ok := tlsStates.Load(id)
	if !ok {
		return
	}
	gs := v.(*goroutineState)
	for rk, p := range gs.defaults {
		delete(gs.defaults, rk)
		if !gs.holds(p) {
			p.holder.Store(0)
		}
	}
	if len(gs.stack) == 0 {
		tlsStates.Delete(id)
	}
}

// drainPersonas runs the LPC queues of every persona of rk held by the
// calling goroutine (acquired scopes plus the default persona, if any),
// returning the number of LPCs executed.
func (rk *Rank) drainPersonas(gs *goroutineState) int {
	n := 0
	rk.forEachHeldPersona(gs, func(p *Persona) { n += p.drain() })
	return n
}

// forEachHeldPersona visits every persona of rk the calling goroutine
// holds: acquired scopes (snapshotted — visited functions may
// acquire/release scopes themselves) plus the default persona, if any.
func (rk *Rank) forEachHeldPersona(gs *goroutineState, visit func(*Persona)) {
	// Index-based, no snapshot allocation: visit callbacks run on this
	// same goroutine and may only append scopes (Acquire) or pop the
	// tail (Release enforces LIFO), so re-reading len each step keeps
	// the walk safe. This sits inside every Progress call — twice.
	for i := 0; i < len(gs.stack); i++ {
		if p := gs.stack[i]; p.rk == rk {
			visit(p)
		}
	}
	if p, ok := gs.defaults[rk]; ok {
		visit(p)
	}
}
