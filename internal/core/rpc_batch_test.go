package upcxx

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"upcxx/internal/gasnet"
)

// TestBatchRPCBasic exercises the batched round-trip surface: many
// requests accumulate into one batch, flush as one message, and every
// per-request future resolves with its own result — self- and cross-rank,
// with the batch reusable after each flush.
func TestBatchRPCBasic(t *testing.T) {
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			for _, target := range []Intrank{1, 0} {
				b := NewBatch(rk, target)
				if b.Target() != target {
					t.Errorf("Target() = %d, want %d", b.Target(), target)
				}
				const n = 32
				futs := make([]Future[int], n)
				for i := 0; i < n; i++ {
					futs[i] = BatchRPC(b, func(trk *Rank, x int) int { return x * x }, i)
				}
				if b.Len() != n {
					t.Errorf("Len() = %d before flush, want %d", b.Len(), n)
				}
				b.Flush()
				if b.Len() != 0 {
					t.Errorf("Len() = %d after flush, want 0", b.Len())
				}
				for i, f := range futs {
					if got := f.Wait(); got != i*i {
						t.Errorf("target %d entry %d = %d, want %d", target, i, got, i*i)
					}
				}
				// The batch is reusable: a second round on the same object.
				f := BatchRPC(b, func(trk *Rank, x int) int { return x + 1 }, 41)
				b.Flush()
				if got := f.Wait(); got != 42 {
					t.Errorf("reused batch result = %d, want 42", got)
				}
			}
			// An empty flush completes its plan immediately.
			fs := NewBatch(rk, 1).Flush(OpCxAsFuture())
			fs.Op.Wait()
		}
		rk.Barrier()
	})
}

// TestBatchRPCMixedFF covers a batch mixing round-trip and
// fire-and-forget entries: the ff bodies execute at the target, the
// round-trip futures resolve, and operation completion (gated on the
// reply batch) postdates every round-trip body.
func TestBatchRPCMixedFF(t *testing.T) {
	Run(2, func(rk *Rank) {
		ctr := MustNewArray[uint64](rk, 1)
		obj := NewDistObject(rk, ctr)
		rk.Barrier()
		if rk.Me() == 0 {
			rctr := FetchDist[GPtr[uint64]](rk, obj.ID(), 1).Wait()
			b := NewBatch(rk, 1)
			const nff = 5
			for i := 0; i < nff; i++ {
				BatchRPCFF(b, func(trk *Rank, c GPtr[uint64]) {
					Local(trk, c, 1)[0]++
				}, rctr)
			}
			sum := BatchRPC(b, func(trk *Rank, c GPtr[uint64]) uint64 {
				return Local(trk, c, 1)[0]
			}, rctr)
			fs := b.Flush(OpCxAsFuture())
			fs.Op.Wait()
			// The single execution-persona pass runs entries in order, so
			// the trailing read observes every preceding ff increment.
			if got := sum.Wait(); got != nff {
				t.Errorf("read after %d batched ffs = %d, want %d", nff, got, nff)
			}
		}
		rk.Barrier()
	})
}

// TestBatchRPCCxMatrix is the batched-RPC completion conformance matrix:
// {future, promise, LPC} × {self, cross-rank} operation completion on
// Flush, each cell proving the delivery fired and every per-entry future
// resolved. Runs under -race in CI (make race) like its un-batched
// counterpart TestCxRPCMatrix.
func TestBatchRPCCxMatrix(t *testing.T) {
	Run(2, func(rk *Rank) {
		rk.Barrier()
		if rk.Me() == 0 {
			for _, how := range []string{"future", "promise", "lpc"} {
				for _, cross := range []bool{false, true} {
					name := fmt.Sprintf("%s/cross=%v", how, cross)
					target := Intrank(0)
					if cross {
						target = 1
					}
					b := NewBatch(rk, target)
					futs := make([]Future[int], 8)
					for i := range futs {
						futs[i] = BatchRPC(b, func(trk *Rank, x int) int { return -x }, i)
					}
					var cx Cx
					var prom *Promise[Unit]
					fired := false
					switch how {
					case "future":
						cx = OpCxAsFuture()
					case "promise":
						prom = NewPromise[Unit](rk)
						cx = OpCxAsPromise(prom)
					case "lpc":
						cx = OpCxAsLPC(nil, func() { fired = true })
					}
					fs := b.Flush(cx)
					switch how {
					case "future":
						fs.Op.Wait()
					case "promise":
						prom.Finalize().Wait()
					case "lpc":
						spinProgress(t, rk, name+" lpc", func() bool { return fired })
					}
					// Operation completion means every reply landed; the
					// value futures must already be resolved.
					for i, f := range futs {
						if !f.Ready() {
							t.Errorf("%s: entry %d future not ready at op completion", name, i)
						}
						if got := f.Wait(); got != -i {
							t.Errorf("%s: entry %d = %d, want %d", name, i, got, -i)
						}
					}
				}
			}
		}
		rk.Barrier()
	})
}

// TestBatchRPCRemoteLanding: a RemoteCxAsRPC descriptor on Flush fires
// once at the target for the whole batch, when the message lands.
func TestBatchRPCRemoteLanding(t *testing.T) {
	Run(2, func(rk *Rank) {
		rk.Barrier()
		if rk.Me() == 0 {
			b := NewBatch(rk, 1)
			futs := make([]Future[int], 4)
			for i := range futs {
				futs[i] = BatchRPC(b, func(trk *Rank, x int) int { return x }, i)
			}
			fs := b.Flush(OpCxAsFuture(), RemoteCxAsRPC(func(trk *Rank, tag string) {
				landings.Add(1)
			}, "batch-landing"))
			fs.Op.Wait()
			for i, f := range futs {
				if got := f.Wait(); got != i {
					t.Errorf("entry %d = %d, want %d", i, got, i)
				}
			}
		}
		rk.Barrier()
		if rk.Me() == 1 {
			if got := landings.Load(); got != 1 {
				t.Errorf("remote landing fired %d times for one batch, want 1", got)
			}
			landings.Store(0)
		}
		rk.Barrier()
	})
}

// landings counts target-side batch landing events (RemoteCxAsRPC bodies
// run at the target, which cannot capture initiator-side test state).
var landings atomic.Int64

// TestBatchRPCSourceZeroCopy pins the zero-copy scatter-gather contract.
// A view argument is NOT copied when BatchRPC marshals it — the encoded
// entry borrows the caller's buffer — and IS captured exactly once, at
// the conduit's capture stage inside Flush. The proof mutates the buffer
// in both windows: a post-add/pre-flush mutation must be visible at the
// target (no marshal-time copy), and a post-source-cx mutation must NOT
// be (capture precedes the wire), with a fat simulated latency holding
// the message in flight while the second mutation happens.
func TestBatchRPCSourceZeroCopy(t *testing.T) {
	model := &gasnet.LogGP{O: time.Microsecond, L: 5 * time.Millisecond, Gp: time.Microsecond}
	RunConfig(Config{Ranks: 2, Model: model}, func(rk *Rank) {
		rk.Barrier()
		if rk.Me() == 0 {
			buf := bytes.Repeat([]byte{0xAA}, 4096)
			b := NewBatch(rk, 1)
			probe := BatchRPC(b, func(trk *Rank, v View[uint8]) [2]int {
				counts := [2]int{}
				for _, x := range v.Elements() {
					switch x {
					case 0xBB:
						counts[0]++
					case 0xCC:
						counts[1]++
					}
				}
				return counts
			}, MakeView(buf))
			// Window 1: the entry only borrows buf — this mutation must
			// reach the target.
			for i := range buf {
				buf[i] = 0xBB
			}
			fs := b.Flush(SourceCxAsFuture())
			// Source completion == conduit capture: buf is ours again.
			fs.Source.Wait()
			// Window 2: the message is still in flight (L = 5ms); this
			// mutation must NOT reach the target.
			for i := range buf {
				buf[i] = 0xCC
			}
			counts := probe.Wait()
			if counts[0] != len(buf) || counts[1] != 0 {
				t.Errorf("target saw %d×0xBB / %d×0xCC of %d bytes; want %d/0 — "+
					"argument was copied at marshal time or not captured at the capture stage",
					counts[0], counts[1], len(buf), len(buf))
			}
		}
		rk.Barrier()
	})
}

// TestBatchDoorbellCoalescing pins doorbell accounting: the 1-slot
// conduit doorbell counts a ring only when the deposit finds the slot
// empty, so a batched LPC delivery wakes (and counts) once, while the
// same deliveries rung one by one — each drained before the next — count
// once each. The obs DoorbellRings counter is the witness.
func TestBatchDoorbellCoalescing(t *testing.T) {
	RunConfig(Config{Ranks: 1, Stats: true}, func(rk *Rank) {
		p := NewPersona(rk, "db-worker")
		sc := AcquirePersona(p)
		defer sc.Release()
		rings := func() uint64 { return rk.Stats().DoorbellRings }
		// Leave the doorbell slot empty (drain any startup ring).
		rk.ep.WaitPending(time.Millisecond)

		ran := 0
		fns := make([]func(), 16)
		for i := range fns {
			fns[i] = func() { ran++ }
		}
		base := rings()
		p.LPCBatch(fns)
		if got := rings() - base; got != 1 {
			t.Errorf("batched delivery of 16 LPCs rang %d times, want 1", got)
		}
		rk.Progress()
		if ran != 16 {
			t.Fatalf("drained %d of 16 batched LPCs", ran)
		}

		// Baseline: per-op delivery rings per op when the slot is drained
		// between rings (an attentive progress thread). Drain the batch's
		// still-deposited ring first.
		rk.ep.WaitPending(50 * time.Millisecond)
		base = rings()
		for i := 0; i < 16; i++ {
			p.LPC(func() { ran++ })
			if !rk.ep.WaitPending(50 * time.Millisecond) {
				t.Fatal("LPC did not ring the doorbell")
			}
			rk.Progress()
		}
		if got := rings() - base; got != 16 {
			t.Errorf("16 drained per-op deliveries rang %d times, want 16", got)
		}
	})
}

// TestRPCBatchWireErrors rejects malformed batch frames at the decode
// boundary: empty batches, unknown kinds, sequence-carrying ffs, mixed
// request/reply direction, reply batches with landing payloads, and
// length fields disagreeing with the actual span.
func TestRPCBatchWireErrors(t *testing.T) {
	req := rpcBatchEntry{kind: rpcReqKind, seq: 1, args: []byte{1, 2}}
	rep := rpcBatchEntry{kind: rpcReplyKind, seq: 1, args: []byte{3}}
	cases := []struct {
		name string
		msg  []byte
	}{
		{"empty batch", encodeRPCBatchMsg(rpcBatchMsg{src: 0})},
		{"bad magic", append([]byte{0xC7}, encodeRPCBatchMsg(rpcBatchMsg{entries: []rpcBatchEntry{req}})[1:]...)},
		{"bad version", func() []byte {
			b := encodeRPCBatchMsg(rpcBatchMsg{entries: []rpcBatchEntry{req}})
			b[1] = 9
			return b
		}()},
		{"unknown kind", encodeRPCBatchMsg(rpcBatchMsg{entries: []rpcBatchEntry{{kind: 7}}})},
		{"ff with seq", encodeRPCBatchMsg(rpcBatchMsg{entries: []rpcBatchEntry{{kind: rpcFFKind, seq: 4}}})},
		{"mixed direction", encodeRPCBatchMsg(rpcBatchMsg{entries: []rpcBatchEntry{req, rep}})},
		{"reply with rem", encodeRPCBatchMsg(rpcBatchMsg{entries: []rpcBatchEntry{rep}, rem: []byte{1}})},
		{"truncated", encodeRPCBatchMsg(rpcBatchMsg{entries: []rpcBatchEntry{req}})[:8]},
		{"trailing bytes", append(encodeRPCBatchMsg(rpcBatchMsg{entries: []rpcBatchEntry{req}}), 0)},
	}
	for _, tc := range cases {
		if _, err := decodeRPCBatchMsg(tc.msg); err == nil {
			t.Errorf("%s: decode accepted % x", tc.name, tc.msg)
		}
	}
	// The happy path round-trips, mixing ff into a request batch.
	m := rpcBatchMsg{src: 3, entries: []rpcBatchEntry{
		req,
		{kind: rpcFFKind, args: []byte{9, 9, 9}},
	}, rem: encodeRemoteCx(3, []byte{5})}
	got, err := decodeRPCBatchMsg(encodeRPCBatchMsg(m))
	if err != nil {
		t.Fatalf("decode of valid batch: %v", err)
	}
	if got.src != 3 || len(got.entries) != 2 || !bytes.Equal(got.rem, m.rem) {
		t.Errorf("round trip mangled batch: %+v", got)
	}
}
