package upcxx

import (
	"fmt"

	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
	"upcxx/internal/serial"
)

// One-sided Remote Memory Access. All operations are non-blocking and
// asynchronous by default (paper principle #1); each returns a Future, and
// the …With variants accept arbitrary completion-descriptor sets (see
// completion.go) — operation, source, and remote events delivered as
// futures, promises, LPCs, or target-side RPCs. Source buffers are
// captured before the operation is in flight; destination buffers of gets
// must not be touched until the operation completes.
//
// Every entry point — RPut/RGet/CopyGG, the vector/indexed/strided
// variants, and the remote atomics in atomic.go — lowers its arguments to
// one or more rmaOp descriptors and hands them to Rank.inject, the single
// injection path. There is exactly one place where a conduit operation is
// born and exactly one shape of completion routing.

// opKind names the conduit operation class of an rmaOp.
type opKind uint8

const (
	opPut opKind = iota
	opGet
	opCopy
	opAMO
	// opAM is a one-way Active Message hop (collective headers, RPC
	// replies and fire-and-forget RPCs): captured and handed to the
	// conduit synchronously, so its operation edge fires at injection.
	opAM
	// opColl names a whole collective operation for completion-descriptor
	// validation; collectives resolve their cxPlan against it and lower
	// each round to opAM / opCopy operations.
	opColl
	// opRPC is a round-trip RPC request: it travels as an AM like opAM,
	// but its operation edge is deferred — the initiator's reply
	// continuation fires the plan (and releases actCount) when the reply
	// lands. Also the completion-validation kind of every RPC variant.
	opRPC
)

// String returns the kind mnemonic (used in completion-validation faults).
func (k opKind) String() string {
	switch k {
	case opPut:
		return "put"
	case opGet:
		return "get"
	case opCopy:
		return "copy"
	case opAMO:
		return "atomic"
	case opAM:
		return "am"
	case opColl:
		return "collective"
	case opRPC:
		return "rpc"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// rmaOp is one conduit operation in lowered, byte-addressed form. Puts
// fill the dst side and buf (source bytes); gets fill the src side and
// buf (destination bytes); copies fill both sides and nbytes; atomics
// fill the dst side plus the amo fields.
type rmaOp struct {
	kind opKind

	srcPeer Intrank
	srcSeg  gasnet.SegID
	srcOff  uint64

	dstPeer Intrank
	dstSeg  gasnet.SegID
	dstOff  uint64

	buf    []byte
	nbytes int

	amo        gasnet.AMOOp
	amoA, amoB uint64
	onOld      func(uint64) // runs with the previous value before op-cx fires

	amID  gasnet.HandlerID // opAM: handler; buf carries the payload
	amAux any              // opAM: opaque code-reference token

	// bufs is the scatter-gather alternative to buf for opAM/opRPC: the
	// payload travels as an iovec of fragments that the conduit flattens
	// at its capture stage. Until capture, fragment bytes alias caller
	// memory — the zero-copy window that makes source-cx meaningful for
	// serialized argument views.
	bufs [][]byte
}

// obsBytes returns the payload bytes the op moves, for the introspection
// counters and size-class histograms.
func (op *rmaOp) obsBytes() int {
	switch op.kind {
	case opCopy:
		return op.nbytes
	case opAMO:
		return 8
	default:
		if op.bufs != nil {
			n := 0
			for _, b := range op.bufs {
				n += len(b)
			}
			return n
		}
		return len(op.buf)
	}
}

// inject hands a batch of lowered operations to the conduit with the
// completion plan attached — the inject(op, cxSet) path every RMA, copy,
// and atomic entry point routes through. The batch is injected as one
// deferred unit (defQ → conduit), after which source completion fires;
// operation and remote completions aggregate across the batch (see
// cxPlan). An empty batch completes immediately.
func (rk *Rank) inject(ops []rmaOp, cx *cxPlan) {
	cx.nops.Store(int64(len(ops)) + 1)
	rk.deferOp(func() {
		// Remote-RPC notification: with one put/copy fragment the AM rides
		// that fragment's hop chain; with several (all to one destination,
		// validated at plan construction) the same AM is attached to every
		// fragment, counted, and the conduit enqueues it at the target when
		// the *last-landing* fragment arrives — destination-side timing,
		// no initiator gating round trip. A batch with no carrier leaves
		// it for the sentinel opDone to ship as a plain AM.
		var rem *gasnet.RemoteAM
		if n := remoteCarriers(ops); n > 0 {
			rem = cx.takeConduitAM()
			if rem != nil && n > 1 {
				rem.SetFragments(n)
			}
		}
		// One completion thunk serves every fragment. LPC deliveries
		// precede the actCount decrement: a quiescing owner must never
		// observe actQ empty while a completion is unqueued.
		onDone := func() {
			cx.opDone()
			rk.actCount.Add(-1)
		}
		ro := rk.ro
		var planBytes int
		for i := range ops {
			op := &ops[i]
			rk.actCount.Add(1)
			// Observability: count the op at the injection point and build
			// the tag its hop chain carries. The first fragment's tag also
			// becomes the plan's identity, so the inject→complete histogram
			// and the Delivered trace event fire on the plan's final edge.
			var tag obs.OpTag
			if ro != nil {
				b := op.obsBytes()
				tag = ro.OpStart(obs.OpKind(op.kind), b)
				planBytes += b
				if i == 0 {
					cx.obsArm(tag, 0)
				}
			}
			switch op.kind {
			case opPut:
				rk.ep.PutSegTag(gasnetRank(op.dstPeer), op.dstSeg, op.dstOff, op.buf, onDone, rem, tag)
			case opGet:
				rk.ep.GetSegTag(gasnetRank(op.srcPeer), op.srcSeg, op.srcOff, op.buf, onDone, tag)
			case opCopy:
				rk.ep.CopySegTag(gasnetRank(op.srcPeer), op.srcSeg, op.srcOff,
					gasnetRank(op.dstPeer), op.dstSeg, op.dstOff, op.nbytes, onDone, rem, tag)
			case opAMO:
				onOld := op.onOld
				rk.ep.AMOTag(gasnetRank(op.dstPeer), op.dstOff, op.amo, op.amoA, op.amoB, func(old uint64) {
					if onOld != nil {
						onOld(old)
					}
					onDone()
				}, tag)
			case opAM:
				// One-way message: the conduit captures the payload before
				// AM returns, so the operation edge fires at injection.
				if op.bufs != nil {
					rk.ep.AMTagV(gasnetRank(op.dstPeer), op.amID, op.bufs, op.amAux, tag)
				} else {
					rk.ep.AMTag(gasnetRank(op.dstPeer), op.amID, op.buf, op.amAux, tag)
				}
				onDone()
			case opRPC:
				// Round-trip request: the conduit captures the payload (so
				// source completion fires at injection), but the operation
				// edge waits for the reply — the pending-table continuation
				// registered by rpcRoundTrip fires the plan and releases
				// actCount when the reply lands.
				if op.bufs != nil {
					rk.ep.AMTagV(gasnetRank(op.dstPeer), op.amID, op.bufs, op.amAux, tag)
				} else {
					rk.ep.AMTag(gasnetRank(op.dstPeer), op.amID, op.buf, op.amAux, tag)
				}
			default:
				panic(fmt.Sprintf("upcxx: inject of unknown op kind %d", op.kind))
			}
		}
		if ro != nil && len(ops) > 0 {
			cx.obsBytes = planBytes
		}
		// Source completion: only puts carry source descriptors
		// (cxPlan.add), and PutSeg captures its source bytes before
		// returning on every path — a copy's source is read lazily when
		// the hop chain reaches it, which is why copies reject them.
		cx.sourceDone()
		// Discharge the batch sentinel: with zero operations this is the
		// edge that fires op/remote completion.
		cx.opDone()
	})
}

// remoteCarriers counts the operations of a batch whose hop chains can
// carry a remote-completion AM to the destination.
func remoteCarriers(ops []rmaOp) int {
	n := 0
	for i := range ops {
		if ops[i].kind == opPut || ops[i].kind == opCopy {
			n++
		}
	}
	return n
}

// injectCx builds the plan for cxs, injects ops under it, and returns the
// requested futures.
func (rk *Rank) injectCx(ops []rmaOp, kind opKind, remotePeer Intrank, cxs []Cx) CxFutures {
	cx := newCxPlan(rk, kind, remotePeer, cxs)
	rk.inject(ops, cx)
	return cx.futs
}

// lowerPut builds the rmaOp of one put fragment.
func lowerPut[T serial.Scalar](src []T, dst GPtr[T], opName string) rmaOp {
	if dst.IsNil() {
		panic("upcxx: " + opName + " to nil GPtr")
	}
	return rmaOp{
		kind:    opPut,
		dstPeer: dst.Owner,
		dstSeg:  dst.segID(opName),
		dstOff:  dst.Off,
		buf:     serial.AsBytes(src),
	}
}

// lowerGet builds the rmaOp of one get fragment.
func lowerGet[T serial.Scalar](src GPtr[T], dst []T, opName string) rmaOp {
	if src.IsNil() {
		panic("upcxx: " + opName + " from nil GPtr")
	}
	return rmaOp{
		kind:    opGet,
		srcPeer: src.Owner,
		srcSeg:  src.segID(opName),
		srcOff:  src.Off,
		buf:     serial.AsBytes(dst),
	}
}

// RPutWith copies src into the remote memory at dst with an explicit
// completion set; with no descriptors it defaults to operation completion
// as a future. dst may be of any memory kind; device destinations route
// through the target's DMA engine, and a RemoteCxAsRPC notification fires
// at dst.Owner only after that DMA hop lands.
func RPutWith[T serial.Scalar](rk *Rank, src []T, dst GPtr[T], cxs ...Cx) CxFutures {
	return rk.injectCx([]rmaOp{lowerPut(src, dst, "RPut")}, opPut, dst.Owner, cxs)
}

// RPut copies src into the remote memory at dst, returning a future that
// readies at operation completion (data globally visible at the target).
func RPut[T serial.Scalar](rk *Rank, src []T, dst GPtr[T]) Future[Unit] {
	return RPutWith(rk, src, dst).Op
}

// RPutPromise is RPut with promise-based completion
// (operation_cx::as_promise) — the paper's flood-bandwidth idiom.
func RPutPromise[T serial.Scalar](rk *Rank, src []T, dst GPtr[T], p *Promise[Unit]) {
	RPutWith(rk, src, dst, OpCxAsPromise(p))
}

// PutValue writes a single value to remote memory.
func PutValue[T serial.Scalar](rk *Rank, v T, dst GPtr[T]) Future[Unit] {
	return RPut(rk, []T{v}, dst)
}

// RGetWith copies from the remote memory at src into the local buffer dst
// with an explicit completion set. Gets expose only operation completion
// (there is no reusable source buffer and no destination-side event).
func RGetWith[T serial.Scalar](rk *Rank, src GPtr[T], dst []T, cxs ...Cx) CxFutures {
	return rk.injectCx([]rmaOp{lowerGet(src, dst, "RGet")}, opGet, -1, cxs)
}

// RGet copies from the remote memory at src into the local buffer dst,
// returning a future that readies once dst holds the data. dst may be
// ordinary private memory. Device-kind sources drain through the owning
// rank's DMA engine before crossing the wire.
func RGet[T serial.Scalar](rk *Rank, src GPtr[T], dst []T) Future[Unit] {
	return RGetWith(rk, src, dst).Op
}

// RGetPromise is RGet with promise-based completion.
func RGetPromise[T serial.Scalar](rk *Rank, src GPtr[T], dst []T, p *Promise[Unit]) {
	RGetWith(rk, src, dst, OpCxAsPromise(p))
}

// GetValue fetches a single value from remote memory.
func GetValue[T serial.Scalar](rk *Rank, src GPtr[T]) Future[T] {
	buf := make([]T, 1)
	return Then(RGet(rk, src, buf), func(Unit) T { return buf[0] })
}

// CopyWith copies n elements from one global location to another with an
// explicit completion set — upcxx::copy over any pair of memory kinds.
// The conduit executes the whole transfer as one operation: source-side
// DMA when the source is device memory, a wire hop when the ranks differ,
// destination-side DMA when the destination is device memory (same-rank
// device→device copies collapse to a single on-node DMA). The initiator
// may be a third party to both sides; initiator-side completions land on
// its chosen personas, and a RemoteCxAsRPC notification executes at
// dst.Owner once the destination bytes are in place.
func CopyWith[T serial.Scalar](rk *Rank, src GPtr[T], dst GPtr[T], n int, cxs ...Cx) CxFutures {
	if src.IsNil() {
		panic("upcxx: CopyGG from nil GPtr")
	}
	if dst.IsNil() {
		panic("upcxx: CopyGG to nil GPtr")
	}
	op := rmaOp{
		kind:    opCopy,
		srcPeer: src.Owner,
		srcSeg:  src.segID("CopyGG"),
		srcOff:  src.Off,
		dstPeer: dst.Owner,
		dstSeg:  dst.segID("CopyGG"),
		dstOff:  dst.Off,
		nbytes:  n * serial.SizeOf[T](),
	}
	return rk.injectCx([]rmaOp{op}, opCopy, dst.Owner, cxs)
}

// CopyGG copies n elements from one global location to another, returning
// a future that readies at operation completion.
func CopyGG[T serial.Scalar](rk *Rank, src GPtr[T], dst GPtr[T], n int) Future[Unit] {
	return CopyWith(rk, src, dst, n).Op
}

// CopyGGPromise is CopyGG with promise-based completion.
func CopyGGPromise[T serial.Scalar](rk *Rank, src GPtr[T], dst GPtr[T], n int, p *Promise[Unit]) {
	CopyWith(rk, src, dst, n, OpCxAsPromise(p))
}

// PutPair names one (local source, remote destination) fragment of a
// vector put.
type PutPair[T serial.Scalar] struct {
	Src []T
	Dst GPtr[T]
}

// GetPair names one (remote source, local destination) fragment of a
// vector get.
type GetPair[T serial.Scalar] struct {
	Src GPtr[T]
	Dst []T
}

// uniformDst returns the shared destination rank of a put batch, or -1
// when fragments target different ranks (remote completion then has no
// single destination to fire at).
func uniformDst(ops []rmaOp) Intrank {
	if len(ops) == 0 {
		return -1
	}
	dst := ops[0].dstPeer
	for _, op := range ops[1:] {
		if op.dstPeer != dst {
			return -1
		}
	}
	return dst
}

// RPutVWith issues a vector put with an explicit completion set: every
// fragment transfers independently, and operation/remote completion fire
// once all fragments have landed. This is the VIS (vector/indexed/strided)
// entry point the paper lists among UPC++'s non-contiguous RMA support.
func RPutVWith[T serial.Scalar](rk *Rank, frags []PutPair[T], cxs ...Cx) CxFutures {
	ops := make([]rmaOp, len(frags))
	for i, f := range frags {
		ops[i] = lowerPut(f.Src, f.Dst, "RPutV")
	}
	return rk.injectCx(ops, opPut, uniformDst(ops), cxs)
}

// RPutV issues a vector put; the returned future readies when all
// fragments have completed.
func RPutV[T serial.Scalar](rk *Rank, frags []PutPair[T]) Future[Unit] {
	return RPutVWith(rk, frags).Op
}

// RGetVWith issues a vector get with an explicit completion set.
func RGetVWith[T serial.Scalar](rk *Rank, frags []GetPair[T], cxs ...Cx) CxFutures {
	ops := make([]rmaOp, len(frags))
	for i, f := range frags {
		ops[i] = lowerGet(f.Src, f.Dst, "RGetV")
	}
	return rk.injectCx(ops, opGet, -1, cxs)
}

// RGetV issues a vector get; the future readies when every fragment has
// landed.
func RGetV[T serial.Scalar](rk *Rank, frags []GetPair[T]) Future[Unit] {
	return RGetVWith(rk, frags).Op
}

// RPutIndexedWith scatters equally-sized blocks of src to element offsets
// within a remote base pointer with an explicit completion set: block i
// (blockElems elements) lands at base.Add(indices[i]). len(src) must
// equal len(indices)*blockElems.
func RPutIndexedWith[T serial.Scalar](rk *Rank, src []T, base GPtr[T], indices []int, blockElems int, cxs ...Cx) CxFutures {
	if len(src) != len(indices)*blockElems {
		panic(fmt.Sprintf("upcxx: RPutIndexed size mismatch: %d src elems, %d blocks of %d",
			len(src), len(indices), blockElems))
	}
	ops := make([]rmaOp, len(indices))
	for i, idx := range indices {
		ops[i] = lowerPut(src[i*blockElems:(i+1)*blockElems], base.Add(idx), "RPutIndexed")
	}
	return rk.injectCx(ops, opPut, base.Owner, cxs)
}

// RPutIndexed scatters equally-sized blocks of src to element offsets
// within a remote base pointer.
func RPutIndexed[T serial.Scalar](rk *Rank, src []T, base GPtr[T], indices []int, blockElems int) Future[Unit] {
	return RPutIndexedWith(rk, src, base, indices, blockElems).Op
}

// RGetIndexedWith gathers equally-sized blocks from element offsets within
// a remote base pointer into dst, with an explicit completion set.
func RGetIndexedWith[T serial.Scalar](rk *Rank, base GPtr[T], indices []int, blockElems int, dst []T, cxs ...Cx) CxFutures {
	if len(dst) != len(indices)*blockElems {
		panic(fmt.Sprintf("upcxx: RGetIndexed size mismatch: %d dst elems, %d blocks of %d",
			len(dst), len(indices), blockElems))
	}
	ops := make([]rmaOp, len(indices))
	for i, idx := range indices {
		ops[i] = lowerGet(base.Add(idx), dst[i*blockElems:(i+1)*blockElems], "RGetIndexed")
	}
	return rk.injectCx(ops, opGet, -1, cxs)
}

// RGetIndexed gathers equally-sized blocks from element offsets within a
// remote base pointer into dst.
func RGetIndexed[T serial.Scalar](rk *Rank, base GPtr[T], indices []int, blockElems int, dst []T) Future[Unit] {
	return RGetIndexedWith(rk, base, indices, blockElems, dst).Op
}

// RPutStrided2DWith puts rows blocks of rowLen elements with an explicit
// completion set: block i is src[i*srcStride : i*srcStride+rowLen] and
// lands at dst.Add(i*dstStride). This expresses the regular sections
// multidimensional-array halo exchanges need.
func RPutStrided2DWith[T serial.Scalar](rk *Rank, src []T, srcStride int, dst GPtr[T], dstStride, rowLen, rows int, cxs ...Cx) CxFutures {
	ops := make([]rmaOp, rows)
	for i := 0; i < rows; i++ {
		lo := i * srcStride
		ops[i] = lowerPut(src[lo:lo+rowLen], dst.Add(i*dstStride), "RPutStrided2D")
	}
	return rk.injectCx(ops, opPut, dst.Owner, cxs)
}

// RPutStrided2D puts rows blocks of rowLen elements from a strided local
// buffer into a strided remote section.
func RPutStrided2D[T serial.Scalar](rk *Rank, src []T, srcStride int, dst GPtr[T], dstStride, rowLen, rows int) Future[Unit] {
	return RPutStrided2DWith(rk, src, srcStride, dst, dstStride, rowLen, rows).Op
}

// RGetStrided2DWith gathers rows blocks of rowLen elements from a strided
// remote section into a strided local buffer, with an explicit completion
// set.
func RGetStrided2DWith[T serial.Scalar](rk *Rank, src GPtr[T], srcStride int, dst []T, dstStride, rowLen, rows int, cxs ...Cx) CxFutures {
	ops := make([]rmaOp, rows)
	for i := 0; i < rows; i++ {
		lo := i * dstStride
		ops[i] = lowerGet(src.Add(i*srcStride), dst[lo:lo+rowLen], "RGetStrided2D")
	}
	return rk.injectCx(ops, opGet, -1, cxs)
}

// RGetStrided2D gathers rows blocks of rowLen elements from a strided
// remote section into a strided local buffer.
func RGetStrided2D[T serial.Scalar](rk *Rank, src GPtr[T], srcStride int, dst []T, dstStride, rowLen, rows int) Future[Unit] {
	return RGetStrided2DWith(rk, src, srcStride, dst, dstStride, rowLen, rows).Op
}
