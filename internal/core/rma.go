package upcxx

import (
	"fmt"

	"upcxx/internal/serial"
)

// One-sided Remote Memory Access. All operations are non-blocking and
// asynchronous by default (paper principle #1); each returns a Future or
// registers with a caller-supplied Promise (operation_cx::as_promise).
// Source buffers are captured before the call returns; destination buffers
// of gets must not be touched until the operation completes.

// RPut copies src into the remote memory at dst, returning a future that
// readies at operation completion (data globally visible at the target).
// dst may be of any memory kind; device destinations route through the
// target's DMA engine.
func RPut[T serial.Scalar](rk *Rank, src []T, dst GPtr[T]) Future[Unit] {
	p := NewPromise[Unit](rk)
	rputInto(rk, src, dst, p.c.pers, func() { p.fulfillOwnedResult(Unit{}) })
	return p.Future()
}

// RPutPromise is RPut with promise-based completion: the operation
// registers one anonymous dependency on p and fulfills it at completion —
// the paper's flood-bandwidth idiom.
func RPutPromise[T serial.Scalar](rk *Rank, src []T, dst GPtr[T], p *Promise[Unit]) {
	p.RequireAnonymous(1)
	rputInto(rk, src, dst, p.c.pers, func() { p.fulfillAnon(1, true) })
}

// rputInto injects the put; pers is the persona owning the completion
// (the promise's, already resolved — re-deriving it per op would pay the
// goroutine-id lookup again, and delivery to the promise's own persona is
// what makes the owned fulfill path sound).
func rputInto[T serial.Scalar](rk *Rank, src []T, dst GPtr[T], pers *Persona, onDone func()) {
	if dst.IsNil() {
		panic("upcxx: RPut to nil GPtr")
	}
	seg := dst.segID("RPut")
	bytes := serial.AsBytes(src)
	rk.deferOp(func() {
		rk.actCount.Add(1)
		rk.ep.PutSeg(gasnetRank(dst.Owner), seg, dst.Off, bytes, func() {
			// LPC before the actCount decrement: a quiescing owner must
			// never observe actQ empty while the completion is unqueued.
			pers.LPC(onDone)
			rk.actCount.Add(-1)
		})
	})
}

// PutValue writes a single value to remote memory.
func PutValue[T serial.Scalar](rk *Rank, v T, dst GPtr[T]) Future[Unit] {
	return RPut(rk, []T{v}, dst)
}

// RGet copies from the remote memory at src into the local buffer dst,
// returning a future that readies once dst holds the data. dst may be
// ordinary private memory. Device-kind sources drain through the owning
// rank's DMA engine before crossing the wire.
func RGet[T serial.Scalar](rk *Rank, src GPtr[T], dst []T) Future[Unit] {
	p := NewPromise[Unit](rk)
	rgetInto(rk, src, dst, p.c.pers, func() { p.fulfillOwnedResult(Unit{}) })
	return p.Future()
}

// RGetPromise is RGet with promise-based completion.
func RGetPromise[T serial.Scalar](rk *Rank, src GPtr[T], dst []T, p *Promise[Unit]) {
	p.RequireAnonymous(1)
	rgetInto(rk, src, dst, p.c.pers, func() { p.fulfillAnon(1, true) })
}

func rgetInto[T serial.Scalar](rk *Rank, src GPtr[T], dst []T, pers *Persona, onDone func()) {
	if src.IsNil() {
		panic("upcxx: RGet from nil GPtr")
	}
	seg := src.segID("RGet")
	bytes := serial.AsBytes(dst)
	rk.deferOp(func() {
		rk.actCount.Add(1)
		rk.ep.GetSeg(gasnetRank(src.Owner), seg, src.Off, bytes, func() {
			pers.LPC(onDone)
			rk.actCount.Add(-1)
		})
	})
}

// GetValue fetches a single value from remote memory.
func GetValue[T serial.Scalar](rk *Rank, src GPtr[T]) Future[T] {
	buf := make([]T, 1)
	return Then(RGet(rk, src, buf), func(Unit) T { return buf[0] })
}

// CopyGG copies n elements from one global location to another —
// upcxx::copy over any pair of memory kinds. The conduit executes the
// whole transfer as one operation: source-side DMA when the source is
// device memory, a wire hop when the ranks differ, destination-side DMA
// when the destination is device memory (same-rank device→device copies
// collapse to a single on-node DMA). The initiator may be a third party
// to both sides; completion lands on its current persona.
func CopyGG[T serial.Scalar](rk *Rank, src GPtr[T], dst GPtr[T], n int) Future[Unit] {
	p := NewPromise[Unit](rk)
	copyInto(rk, src, dst, n, p.c.pers, func() { p.fulfillOwnedResult(Unit{}) })
	return p.Future()
}

// CopyGGPromise is CopyGG with promise-based completion.
func CopyGGPromise[T serial.Scalar](rk *Rank, src GPtr[T], dst GPtr[T], n int, p *Promise[Unit]) {
	p.RequireAnonymous(1)
	copyInto(rk, src, dst, n, p.c.pers, func() { p.fulfillAnon(1, true) })
}

func copyInto[T serial.Scalar](rk *Rank, src, dst GPtr[T], n int, pers *Persona, onDone func()) {
	if src.IsNil() {
		panic("upcxx: CopyGG from nil GPtr")
	}
	if dst.IsNil() {
		panic("upcxx: CopyGG to nil GPtr")
	}
	ss := src.segID("CopyGG")
	ds := dst.segID("CopyGG")
	nb := n * serial.SizeOf[T]()
	rk.deferOp(func() {
		rk.actCount.Add(1)
		rk.ep.CopySeg(gasnetRank(src.Owner), ss, src.Off, gasnetRank(dst.Owner), ds, dst.Off, nb, func() {
			pers.LPC(onDone)
			rk.actCount.Add(-1)
		})
	})
}

// PutPair names one (local source, remote destination) fragment of a
// vector put.
type PutPair[T serial.Scalar] struct {
	Src []T
	Dst GPtr[T]
}

// GetPair names one (remote source, local destination) fragment of a
// vector get.
type GetPair[T serial.Scalar] struct {
	Src GPtr[T]
	Dst []T
}

// RPutV issues a vector put: every fragment transfers independently and
// the returned future readies when all have completed. This is the
// VIS (vector/indexed/strided) entry point the paper lists among UPC++'s
// non-contiguous RMA support.
func RPutV[T serial.Scalar](rk *Rank, frags []PutPair[T]) Future[Unit] {
	p := NewPromise[Unit](rk)
	for _, f := range frags {
		RPutPromise(rk, f.Src, f.Dst, p)
	}
	return p.Finalize()
}

// RGetV issues a vector get; the future readies when every fragment has
// landed.
func RGetV[T serial.Scalar](rk *Rank, frags []GetPair[T]) Future[Unit] {
	p := NewPromise[Unit](rk)
	for _, f := range frags {
		RGetPromise(rk, f.Src, f.Dst, p)
	}
	return p.Finalize()
}

// RPutIndexed scatters equally-sized blocks of src to element offsets
// within a remote base pointer: block i (blockElems elements) lands at
// base.Add(indices[i]). len(src) must equal len(indices)*blockElems.
func RPutIndexed[T serial.Scalar](rk *Rank, src []T, base GPtr[T], indices []int, blockElems int) Future[Unit] {
	if len(src) != len(indices)*blockElems {
		panic(fmt.Sprintf("upcxx: RPutIndexed size mismatch: %d src elems, %d blocks of %d",
			len(src), len(indices), blockElems))
	}
	p := NewPromise[Unit](rk)
	for i, idx := range indices {
		RPutPromise(rk, src[i*blockElems:(i+1)*blockElems], base.Add(idx), p)
	}
	return p.Finalize()
}

// RGetIndexed gathers equally-sized blocks from element offsets within a
// remote base pointer into dst.
func RGetIndexed[T serial.Scalar](rk *Rank, base GPtr[T], indices []int, blockElems int, dst []T) Future[Unit] {
	if len(dst) != len(indices)*blockElems {
		panic(fmt.Sprintf("upcxx: RGetIndexed size mismatch: %d dst elems, %d blocks of %d",
			len(dst), len(indices), blockElems))
	}
	p := NewPromise[Unit](rk)
	for i, idx := range indices {
		RGetPromise(rk, base.Add(idx), dst[i*blockElems:(i+1)*blockElems], p)
	}
	return p.Finalize()
}

// RPutStrided2D puts rows blocks of rowLen elements: block i is
// src[i*srcStride : i*srcStride+rowLen] and lands at dst.Add(i*dstStride).
// This expresses the regular sections multidimensional-array halo
// exchanges need.
func RPutStrided2D[T serial.Scalar](rk *Rank, src []T, srcStride int, dst GPtr[T], dstStride, rowLen, rows int) Future[Unit] {
	p := NewPromise[Unit](rk)
	for i := 0; i < rows; i++ {
		lo := i * srcStride
		RPutPromise(rk, src[lo:lo+rowLen], dst.Add(i*dstStride), p)
	}
	return p.Finalize()
}

// RGetStrided2D gathers rows blocks of rowLen elements from a strided
// remote section into a strided local buffer.
func RGetStrided2D[T serial.Scalar](rk *Rank, src GPtr[T], srcStride int, dst []T, dstStride, rowLen, rows int) Future[Unit] {
	p := NewPromise[Unit](rk)
	for i := 0; i < rows; i++ {
		lo := i * dstStride
		RGetPromise(rk, src.Add(i*srcStride), dst[lo:lo+rowLen], p)
	}
	return p.Finalize()
}
