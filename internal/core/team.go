package upcxx

import (
	"fmt"
	"hash/fnv"
	"sort"

	"upcxx/internal/gasnet"
	"upcxx/internal/serial"
)

// Team is an ordered subset of the job's ranks (cf. upcxx::team / an MPI
// communicator). Teams are the unit over which collectives run, and —
// unlike symmetric-heap designs the paper argues against — a team carries
// no per-rank storage anywhere except on its own members.
type Team struct {
	rk    *Rank
	id    uint64
	ranks []Intrank // world ranks indexed by team rank
	me    Intrank   // this process's team rank

	// identity marks a team whose team ranks equal world ranks (the world
	// team), making FromWorld a no-op; other teams carry the inverse map,
	// built once at construction so FromWorld is O(1) in collective and
	// completion hot paths instead of a linear scan.
	identity  bool
	fromWorld map[Intrank]Intrank
}

const worldTeamID uint64 = 0

func newWorldTeam(rk *Rank) *Team {
	ranks := make([]Intrank, rk.n)
	for i := range ranks {
		ranks[i] = Intrank(i)
	}
	return &Team{rk: rk, id: worldTeamID, ranks: ranks, me: rk.me, identity: true}
}

// buildIndex constructs the world→team rank map; called once per team at
// construction.
func (t *Team) buildIndex() {
	t.fromWorld = make(map[Intrank]Intrank, len(t.ranks))
	for i, wr := range t.ranks {
		t.fromWorld[wr] = Intrank(i)
	}
}

// WorldTeam returns the team containing every rank in the job.
func (rk *Rank) WorldTeam() *Team { return rk.worldTeam }

// RankMe returns this process's rank within the team.
func (t *Team) RankMe() Intrank { return t.me }

// RankN returns the team size.
func (t *Team) RankN() Intrank { return Intrank(len(t.ranks)) }

// WorldRank translates a team rank to a world rank (the paper's
// front_team[p_dest] indexing).
func (t *Team) WorldRank(i Intrank) Intrank { return t.ranks[i] }

// FromWorld translates a world rank to this team's rank, or -1 if the
// rank is not a member. O(1): the world team is the identity and every
// other team indexes the map built at construction.
func (t *Team) FromWorld(r Intrank) Intrank {
	if t.identity {
		if r < 0 || int(r) >= len(t.ranks) {
			return -1
		}
		return r
	}
	if tr, ok := t.fromWorld[r]; ok {
		return tr
	}
	return -1
}

// ID returns the team's job-wide identifier.
func (t *Team) ID() uint64 { return t.id }

func (t *Team) String() string {
	return fmt.Sprintf("team %#x (%d ranks, me=%d)", t.id, len(t.ranks), t.me)
}

// --- collective plumbing -------------------------------------------------

type collKey struct {
	team uint64
	seq  uint64
}

const (
	collBarrier uint8 = 1 + iota
	collBcast
	collReduce
	collGather
)

// collState holds one in-flight collective's per-rank state. A state is
// created either by local entry into the collective or by an early-arriving
// message from a teammate, and deleted at local completion.
type collState struct {
	// barrier (dissemination)
	arrived    map[uint8]bool
	barAdvance func()

	// broadcast (binomial)
	bcastData []byte
	hasBcast  bool
	onBcast   func([]byte)

	// reduction (binomial, toward team rank 0)
	contribBuf [][]byte
	onContrib  func([]byte)

	// gather (flat, toward team rank 0; used by Split only)
	parts  map[Intrank][]byte
	onPart func()
}

func (rk *Rank) getColl(key collKey) *collState {
	st, ok := rk.collStates[key]
	if !ok {
		st = &collState{arrived: make(map[uint8]bool), parts: make(map[Intrank][]byte)}
		rk.collStates[key] = st
	}
	return st
}

func (rk *Rank) nextCollSeq(team uint64) uint64 {
	s := rk.collSeqs[team]
	rk.collSeqs[team] = s + 1
	return s
}

// sendColl ships one collective message to a teammate.
func (rk *Rank) sendColl(t *Team, destTeamRank Intrank, seq uint64, kind, round uint8, data []byte) {
	e := serial.NewEncoder(make([]byte, 0, 22+len(data)))
	e.PutU64(t.id)
	e.PutU64(seq)
	e.PutU8(kind)
	e.PutU32(uint32(t.me))
	e.PutU8(round)
	e.PutRaw(data)
	payload := e.Bytes()
	world := t.ranks[destTeamRank]
	rk.deferOp(func() {
		rk.ep.AM(gasnetRank(world), rk.w.amColl, payload, nil)
	})
}

// handleColl is the conduit AM handler for collective traffic. The AM
// may be harvested by any goroutine making user-level progress (in
// progress-thread mode, the progress goroutine); the collective state
// machine itself always advances as an LPC on the master persona, which
// keeps collStates and the per-collective closures single-threaded —
// collectives are master-persona operations end to end. Message payload
// buffers are unique per message, so retaining sub-slices is safe.
func (w *World) handleColl(ep *gasnet.Endpoint, src gasnet.Rank, payload []byte, _ any) {
	rk := w.ranks[ep.Rank()]
	rk.master.LPC(func() { rk.applyColl(src, payload) })
}

// applyColl advances one collective's state machine with an arrived
// message. It runs only on the goroutine holding the master persona.
func (rk *Rank) applyColl(src gasnet.Rank, payload []byte) {
	d := serial.NewDecoder(payload)
	team := d.U64()
	seq := d.U64()
	kind := d.U8()
	srcTeamRank := Intrank(d.U32())
	round := d.U8()
	rest := d.Raw(d.Remaining())
	if d.Err() != nil {
		panic(fmt.Sprintf("upcxx: rank %d malformed collective message from %d", rk.me, src))
	}
	st := rk.getColl(collKey{team, seq})
	switch kind {
	case collBarrier:
		st.arrived[round] = true
		if st.barAdvance != nil {
			st.barAdvance()
		}
	case collBcast:
		st.bcastData = rest
		st.hasBcast = true
		if st.onBcast != nil {
			st.onBcast(rest)
		}
	case collReduce:
		if st.onContrib != nil {
			st.onContrib(rest)
		} else {
			st.contribBuf = append(st.contribBuf, rest)
		}
	case collGather:
		st.parts[srcTeamRank] = rest
		if st.onPart != nil {
			st.onPart()
		}
	default:
		panic(fmt.Sprintf("upcxx: unknown collective kind %d", kind))
	}
}

func ceilLog2(n int) int {
	r := 0
	for (1 << r) < n {
		r++
	}
	return r
}

// bcastChildren returns the binomial-tree children of relative rank rr in
// a team of size p (tree rooted at relative rank 0): rr + 2^k for every
// 2^k > rr with rr + 2^k < p. The parent of rr > 0 is rr with its highest
// set bit cleared.
func bcastChildren(rr, p int) []int {
	var out []int
	for k := 0; (1 << k) < p; k++ {
		step := 1 << k
		if step <= rr {
			continue
		}
		if c := rr + step; c < p {
			out = append(out, c)
		}
	}
	return out
}

// --- barrier --------------------------------------------------------------

// BarrierAsync begins a non-blocking dissemination barrier over the team
// and returns a future that readies once every member has entered it.
// At most one barrier per team may be in flight from each rank (they
// complete in order regardless).
func (t *Team) BarrierAsync() Future[Unit] {
	rk := t.rk
	rk.requireMaster("BarrierAsync")
	p := int(t.RankN())
	seq := rk.nextCollSeq(t.id)
	prom := NewPromise[Unit](rk)
	if p == 1 {
		prom.FulfillResult(Unit{})
		return prom.Future()
	}
	key := collKey{t.id, seq}
	st := rk.getColl(key)
	rounds := ceilLog2(p)
	round := 0
	send := func(r int) {
		peer := Intrank((int(t.me) + (1 << r)) % p)
		rk.sendColl(t, peer, seq, collBarrier, uint8(r), nil)
	}
	st.barAdvance = func() {
		for st.arrived[uint8(round)] {
			round++
			if round == rounds {
				delete(rk.collStates, key)
				prom.FulfillResult(Unit{})
				return
			}
			send(round)
		}
	}
	send(0)
	st.barAdvance()
	return prom.Future()
}

// Barrier blocks until every team member has entered it.
func (t *Team) Barrier() { t.BarrierAsync().Wait() }

// Barrier blocks until every rank in the job has entered it.
func (rk *Rank) Barrier() { rk.worldTeam.Barrier() }

// BarrierAsync is the job-wide non-blocking barrier.
func (rk *Rank) BarrierAsync() Future[Unit] { return rk.worldTeam.BarrierAsync() }

// --- broadcast -------------------------------------------------------------

// Broadcast distributes root's value to every team member along a binomial
// tree, returning a future for the value. Every member must call it (with
// its own val ignored except at root) in matching collective order. These
// non-blocking collectives are the "current work" the paper's conclusion
// describes, built from the same AM machinery.
func Broadcast[T any](t *Team, root Intrank, val T) Future[T] {
	rk := t.rk
	rk.requireMaster("Broadcast")
	p := int(t.RankN())
	seq := rk.nextCollSeq(t.id)
	prom := NewPromise[T](rk)
	if p == 1 {
		prom.FulfillResult(val)
		return prom.Future()
	}
	key := collKey{t.id, seq}
	st := rk.getColl(key)
	rr := (int(t.me) - int(root) + p) % p
	forward := func(data []byte) {
		for _, crel := range bcastChildren(rr, p) {
			child := Intrank((crel + int(root)) % p)
			rk.sendColl(t, child, seq, collBcast, 0, data)
		}
	}
	if int(t.me) == int(root) {
		data := mustMarshal(val)
		forward(data)
		delete(rk.collStates, key)
		prom.FulfillResult(val)
		return prom.Future()
	}
	st.onBcast = func(data []byte) {
		forward(data)
		var v T
		mustUnmarshal(data, &v)
		delete(rk.collStates, key)
		prom.FulfillResult(v)
	}
	if st.hasBcast {
		st.onBcast(st.bcastData)
	}
	return prom.Future()
}

// --- reduction ---------------------------------------------------------------

// ReduceOne combines every member's val with op along a binomial tree,
// delivering the result at team rank 0 (other ranks' futures ready with
// the zero value once their subtree contribution is sent). op must be
// associative and commutative.
func ReduceOne[T any](t *Team, val T, op func(T, T) T) Future[T] {
	rk := t.rk
	rk.requireMaster("ReduceOne")
	p := int(t.RankN())
	seq := rk.nextCollSeq(t.id)
	prom := NewPromise[T](rk)
	if p == 1 {
		prom.FulfillResult(val)
		return prom.Future()
	}
	key := collKey{t.id, seq}
	st := rk.getColl(key)
	rr := int(t.me)
	expect := len(bcastChildren(rr, p))
	acc := val
	got := 0
	finish := func() {
		delete(rk.collStates, key)
		if rr == 0 {
			prom.FulfillResult(acc)
		} else {
			parent := Intrank(rr &^ highestSetBit(rr))
			rk.sendColl(t, parent, seq, collReduce, 0, mustMarshal(acc))
			var zero T
			prom.FulfillResult(zero)
		}
	}
	st.onContrib = func(data []byte) {
		var v T
		mustUnmarshal(data, &v)
		acc = op(acc, v)
		got++
		if got == expect {
			finish()
		}
	}
	if expect == 0 {
		finish()
		return prom.Future()
	}
	buffered := st.contribBuf
	st.contribBuf = nil
	for _, b := range buffered {
		st.onContrib(b)
	}
	return prom.Future()
}

// AllReduce combines every member's val with op and delivers the result to
// every member (reduce to team rank 0, then broadcast).
func AllReduce[T any](t *Team, val T, op func(T, T) T) Future[T] {
	red := ReduceOne(t, val, op)
	return ThenFut(red, func(v T) Future[T] {
		return Broadcast(t, 0, v)
	})
}

func highestSetBit(x int) int {
	h := 1
	for h<<1 <= x {
		h <<= 1
	}
	return h
}

// --- gather (flat; split support) ------------------------------------------

// gatherBytes collects one byte payload per member at team rank 0. The
// root's future yields the payloads indexed by team rank; other members'
// futures ready immediately with nil. Flat and therefore non-scalable; the
// runtime uses it only for team construction.
func gatherBytes(t *Team, data []byte) Future[[][]byte] {
	rk := t.rk
	rk.requireMaster("gather")
	p := int(t.RankN())
	seq := rk.nextCollSeq(t.id)
	prom := NewPromise[[][]byte](rk)
	key := collKey{t.id, seq}
	if t.me != 0 {
		rk.sendColl(t, 0, seq, collGather, 0, data)
		prom.FulfillResult(nil)
		return prom.Future()
	}
	st := rk.getColl(key)
	check := func() {
		if len(st.parts) == p-1 {
			out := make([][]byte, p)
			out[0] = data
			for r, b := range st.parts {
				out[r] = b
			}
			delete(rk.collStates, key)
			prom.FulfillResult(out)
		}
	}
	st.onPart = check
	check()
	return prom.Future()
}

// --- split -------------------------------------------------------------------

type splitEntry struct {
	Color int64
	Key   int64
	World Intrank
}

type splitGroup struct {
	Color   int64
	Members []Intrank // world ranks in team order
}

// Split partitions the team: members passing equal colors form a new team,
// ordered by (key, world rank). It is a blocking collective over the
// parent team, like upcxx::team::split. All members must call it in
// matching order.
func (t *Team) Split(color, key int) *Team {
	rk := t.rk
	idx := rk.splitSeqs[t.id]
	rk.splitSeqs[t.id] = idx + 1

	me := splitEntry{Color: int64(color), Key: int64(key), World: rk.me}
	gathered := gatherBytes(t, mustMarshal(me)).Wait()

	var groups []splitGroup
	if t.me == 0 {
		entries := make([]splitEntry, len(gathered))
		for i, b := range gathered {
			mustUnmarshal(b, &entries[i])
		}
		sort.Slice(entries, func(i, j int) bool {
			a, b := entries[i], entries[j]
			if a.Color != b.Color {
				return a.Color < b.Color
			}
			if a.Key != b.Key {
				return a.Key < b.Key
			}
			return a.World < b.World
		})
		for _, e := range entries {
			if len(groups) == 0 || groups[len(groups)-1].Color != e.Color {
				groups = append(groups, splitGroup{Color: e.Color})
			}
			g := &groups[len(groups)-1]
			g.Members = append(g.Members, e.World)
		}
	}
	groups = Broadcast(t, 0, groups).Wait()

	for _, g := range groups {
		if g.Color != int64(color) {
			continue
		}
		nt := &Team{rk: rk, id: splitTeamID(t.id, idx, g.Color), ranks: g.Members}
		nt.buildIndex()
		nt.me = nt.FromWorld(rk.me)
		if nt.me < 0 {
			continue
		}
		rk.teams[nt.id] = nt
		return nt
	}
	panic(fmt.Sprintf("upcxx: rank %d not present in any split group", rk.me))
}

func splitTeamID(parent uint64, idx uint64, color int64) uint64 {
	h := fnv.New64a()
	var b [24]byte
	put := func(i int, v uint64) {
		for k := 0; k < 8; k++ {
			b[i+k] = byte(v >> (8 * k))
		}
	}
	put(0, parent)
	put(8, idx)
	put(16, uint64(color))
	_, _ = h.Write(b[:])
	id := h.Sum64()
	if id == worldTeamID {
		id++
	}
	return id
}
