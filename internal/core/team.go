package upcxx

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Team is an ordered subset of the job's ranks (cf. upcxx::team / an MPI
// communicator). Teams are the unit over which collectives run, and —
// unlike symmetric-heap designs the paper argues against — a team carries
// no per-rank storage anywhere except on its own members.
//
// The collective machinery itself lives in coll.go: a per-rank engine
// drives pluggable tree topologies and lowers every round through the
// single Rank.inject path. This file keeps the team structure and the
// blocking/default-completion wrappers.
type Team struct {
	rk    *Rank
	id    uint64
	ranks []Intrank // world ranks indexed by team rank
	me    Intrank   // this process's team rank

	// identity marks a team whose team ranks equal world ranks (the world
	// team), making FromWorld a no-op; other teams carry the inverse map,
	// built once at construction so FromWorld is O(1) in collective and
	// completion hot paths instead of a linear scan.
	identity  bool
	fromWorld map[Intrank]Intrank
}

const worldTeamID uint64 = 0

func newWorldTeam(rk *Rank) *Team {
	ranks := make([]Intrank, rk.n)
	for i := range ranks {
		ranks[i] = Intrank(i)
	}
	return &Team{rk: rk, id: worldTeamID, ranks: ranks, me: rk.me, identity: true}
}

// buildIndex constructs the world→team rank map; called once per team at
// construction.
func (t *Team) buildIndex() {
	t.fromWorld = make(map[Intrank]Intrank, len(t.ranks))
	for i, wr := range t.ranks {
		t.fromWorld[wr] = Intrank(i)
	}
}

// WorldTeam returns the team containing every rank in the job.
func (rk *Rank) WorldTeam() *Team { return rk.worldTeam }

// RankMe returns this process's rank within the team.
func (t *Team) RankMe() Intrank { return t.me }

// RankN returns the team size.
func (t *Team) RankN() Intrank { return Intrank(len(t.ranks)) }

// WorldRank translates a team rank to a world rank (the paper's
// front_team[p_dest] indexing).
func (t *Team) WorldRank(i Intrank) Intrank { return t.ranks[i] }

// FromWorld translates a world rank to this team's rank, or -1 if the
// rank is not a member. O(1): the world team is the identity and every
// other team indexes the map built at construction.
func (t *Team) FromWorld(r Intrank) Intrank {
	if t.identity {
		if r < 0 || int(r) >= len(t.ranks) {
			return -1
		}
		return r
	}
	if tr, ok := t.fromWorld[r]; ok {
		return tr
	}
	return -1
}

// ID returns the team's job-wide identifier.
func (t *Team) ID() uint64 { return t.id }

func (t *Team) String() string {
	return fmt.Sprintf("team %#x (%d ranks, me=%d)", t.id, len(t.ranks), t.me)
}

// --- default-completion wrappers ------------------------------------------

// BarrierAsync begins a non-blocking barrier over the team and returns a
// future that readies once every member has entered it. Collectives on
// one team complete in initiation order.
func (t *Team) BarrierAsync() Future[Unit] { return t.BarrierAsyncWith().Op }

// Barrier blocks until every team member has entered it.
func (t *Team) Barrier() { t.BarrierAsync().Wait() }

// Barrier blocks until every rank in the job has entered it.
func (rk *Rank) Barrier() { rk.worldTeam.Barrier() }

// BarrierAsync is the job-wide non-blocking barrier.
func (rk *Rank) BarrierAsync() Future[Unit] { return rk.worldTeam.BarrierAsync() }

// Broadcast distributes root's value to every team member along the
// team's tree, returning a future for the value. Every member must call
// it (with its own val ignored except at root) in matching collective
// order. These non-blocking collectives are the "current work" the
// paper's conclusion describes, built from the same injection machinery
// as RMA.
func Broadcast[T any](t *Team, root Intrank, val T) Future[T] {
	f, _ := BroadcastWith(t, root, val)
	return f
}

// ReduceOne combines every member's val with op along the team's tree,
// delivering the result at team rank 0 (other ranks' futures ready with
// the zero value once their subtree contribution is sent). op must be
// associative and commutative.
func ReduceOne[T any](t *Team, val T, op func(T, T) T) Future[T] {
	f, _ := ReduceOneWith(t, val, op)
	return f
}

// AllReduce combines every member's val with op and delivers the result
// to every member (up the tree, then back down within one collective).
func AllReduce[T any](t *Team, val T, op func(T, T) T) Future[T] {
	f, _ := AllReduceWith(t, val, op)
	return f
}

// --- split -------------------------------------------------------------------

type splitEntry struct {
	Color int64
	Key   int64
	World Intrank
}

type splitGroup struct {
	Color   int64
	Members []Intrank // world ranks in team order
}

// SplitAsync begins a non-blocking split of the team: members passing
// equal colors form a new team, ordered by (key, world rank). The
// color/key entries aggregate up the parent team's collective tree and
// the computed groups fan back down it (one exchangeBytesTree — O(tree
// degree) messages per member, never a flat gather at the root), so team
// construction scales with the same topology as every other collective
// and overlaps with unrelated work until the future is forced. All
// members must initiate it in matching collective order.
func (t *Team) SplitAsync(color, key int) Future[*Team] {
	rk := t.rk
	rk.teamMu.Lock()
	idx := rk.splitSeqs[t.id]
	rk.splitSeqs[t.id] = idx + 1
	rk.teamMu.Unlock()

	me := splitEntry{Color: int64(color), Key: int64(key), World: rk.me}
	grouped := exchangeBytesTree(t, mustMarshal(me), func(all [][]byte) []byte {
		entries := make([]splitEntry, len(all))
		for i, b := range all {
			mustUnmarshal(b, &entries[i])
		}
		sort.Slice(entries, func(i, j int) bool {
			a, b := entries[i], entries[j]
			if a.Color != b.Color {
				return a.Color < b.Color
			}
			if a.Key != b.Key {
				return a.Key < b.Key
			}
			return a.World < b.World
		})
		var groups []splitGroup
		for _, e := range entries {
			if len(groups) == 0 || groups[len(groups)-1].Color != e.Color {
				groups = append(groups, splitGroup{Color: e.Color})
			}
			g := &groups[len(groups)-1]
			g.Members = append(g.Members, e.World)
		}
		return mustMarshal(groups)
	})
	return Then(grouped, func(b []byte) *Team {
		var groups []splitGroup
		mustUnmarshal(b, &groups)
		for _, g := range groups {
			if g.Color != int64(color) {
				continue
			}
			nt := &Team{rk: rk, id: splitTeamID(t.id, idx, g.Color), ranks: g.Members}
			nt.buildIndex()
			nt.me = nt.FromWorld(rk.me)
			if nt.me < 0 {
				continue
			}
			return nt
		}
		panic(fmt.Sprintf("upcxx: rank %d not present in any split group", rk.me))
	})
}

// Split partitions the team, blocking until the new team is constructed,
// like upcxx::team::split. All members must call it in matching order.
func (t *Team) Split(color, key int) *Team { return t.SplitAsync(color, key).Wait() }

func splitTeamID(parent uint64, idx uint64, color int64) uint64 {
	h := fnv.New64a()
	var b [24]byte
	put := func(i int, v uint64) {
		for k := 0; k < 8; k++ {
			b[i+k] = byte(v >> (8 * k))
		}
	}
	put(0, parent)
	put(8, idx)
	put(16, uint64(color))
	_, _ = h.Write(b[:])
	id := h.Sum64()
	if id == worldTeamID {
		id++
	}
	return id
}
