package upcxx

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunSPMD(t *testing.T) {
	var count atomic.Int32
	Run(4, func(rk *Rank) {
		count.Add(1)
		if rk.N() != 4 {
			t.Errorf("N = %d", rk.N())
		}
		if rk.Me() < 0 || rk.Me() >= 4 {
			t.Errorf("Me = %d", rk.Me())
		}
	})
	if count.Load() != 4 {
		t.Fatalf("ran %d ranks", count.Load())
	}
}

func TestAllocLocalRoundTrip(t *testing.T) {
	Run(1, func(rk *Rank) {
		p := MustNewArray[float64](rk, 10)
		s := Local(rk, p, 10)
		for i := range s {
			s[i] = float64(i) * 1.5
		}
		// Arithmetic + Local must see the same memory.
		s2 := Local(rk, p.Add(5), 5)
		if s2[0] != 7.5 {
			t.Errorf("p+5 = %v", s2[0])
		}
		// Local-to-global inverse.
		back := ToGlobal(rk, s[5:])
		if back != p.Add(5) {
			t.Errorf("ToGlobal = %v, want %v", back, p.Add(5))
		}
		if p.Add(5).Diff(p) != 5 {
			t.Errorf("Diff = %d", p.Add(5).Diff(p))
		}
		if err := Delete(rk, p); err != nil {
			t.Error(err)
		}
	})
}

func TestGPtrNil(t *testing.T) {
	p := NilGPtr[int32]()
	if !p.IsNil() {
		t.Fatal("NilGPtr not nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arithmetic on nil GPtr should panic")
		}
	}()
	p.Add(1)
}

func TestRPutRGet(t *testing.T) {
	Run(2, func(rk *Rank) {
		// Rank 1 allocates; rank 0 learns the pointer by RPC, puts, gets.
		var remote GPtr[uint64]
		if rk.Me() == 1 {
			p := MustNewArray[uint64](rk, 4)
			d := NewDistObject(rk, p)
			_ = d
		} else {
			_ = NewDistObject(rk, NilGPtr[uint64]())
		}
		rk.Barrier()
		if rk.Me() == 0 {
			remote = FetchDist[GPtr[uint64]](rk, 0, 1).Wait()
			if remote.Where() != 1 {
				t.Errorf("remote owner = %d", remote.Where())
			}
			src := []uint64{10, 20, 30, 40}
			RPut(rk, src, remote).Wait()
			dst := make([]uint64, 4)
			RGet(rk, remote, dst).Wait()
			for i := range src {
				if dst[i] != src[i] {
					t.Errorf("elem %d = %d", i, dst[i])
				}
			}
			// Scalar convenience.
			PutValue(rk, uint64(99), remote.Add(2)).Wait()
			if got := GetValue(rk, remote.Add(2)).Wait(); got != 99 {
				t.Errorf("GetValue = %d", got)
			}
		}
		rk.Barrier()
	})
}

func TestFutureCombinators(t *testing.T) {
	Run(1, func(rk *Rank) {
		f := ReadyFuture(rk, 21)
		g := Then(f, func(v int) int { return v * 2 })
		if g.Wait() != 42 {
			t.Errorf("Then = %d", g.Result())
		}
		h := ThenFut(g, func(v int) Future[string] {
			return ReadyFuture(rk, "x")
		})
		if h.Wait() != "x" {
			t.Errorf("ThenFut = %q", h.Result())
		}
		pair := WhenAll2(ReadyFuture(rk, 1), ReadyFuture(rk, "a")).Wait()
		if pair.First != 1 || pair.Second != "a" {
			t.Errorf("WhenAll2 = %+v", pair)
		}
		all := WhenAllSlice(rk, []Future[int]{
			ReadyFuture(rk, 1), ReadyFuture(rk, 2), ReadyFuture(rk, 3),
		}).Wait()
		if len(all) != 3 || all[0]+all[1]+all[2] != 6 {
			t.Errorf("WhenAllSlice = %v", all)
		}
		if !WhenAll(rk).Ready() {
			t.Error("empty WhenAll not ready")
		}
	})
}

func TestPromiseCounter(t *testing.T) {
	Run(1, func(rk *Rank) {
		p := NewPromise[Unit](rk)
		p.RequireAnonymous(3)
		f := p.Finalize()
		if f.Ready() {
			t.Fatal("ready too early")
		}
		p.FulfillAnonymous(2)
		if f.Ready() {
			t.Fatal("ready after 2 of 3")
		}
		p.FulfillAnonymous(1)
		if !f.Ready() {
			t.Fatal("not ready after all fulfilled")
		}
	})
}

func TestPromiseOverFulfillPanics(t *testing.T) {
	Run(1, func(rk *Rank) {
		p := NewPromise[Unit](rk)
		p.Finalize()
		defer func() {
			if recover() == nil {
				t.Error("over-fulfill should panic")
			}
		}()
		p.FulfillAnonymous(1)
	})
}

func TestRPutAsPromise(t *testing.T) {
	// The paper's flood idiom: many puts tracked by one promise.
	Run(2, func(rk *Rank) {
		var remote GPtr[uint64]
		if rk.Me() == 1 {
			_ = NewDistObject(rk, MustNewArray[uint64](rk, 64))
		} else {
			_ = NewDistObject(rk, NilGPtr[uint64]())
		}
		rk.Barrier()
		if rk.Me() == 0 {
			remote = FetchDist[GPtr[uint64]](rk, 0, 1).Wait()
			p := NewPromise[Unit](rk)
			for i := 0; i < 64; i++ {
				RPutPromise(rk, []uint64{uint64(i)}, remote.Add(i), p)
			}
			p.Finalize().Wait()
			dst := make([]uint64, 64)
			RGet(rk, remote, dst).Wait()
			for i, v := range dst {
				if v != uint64(i) {
					t.Errorf("elem %d = %d", i, v)
				}
			}
		}
		rk.Barrier()
	})
}

func TestRPCBasic(t *testing.T) {
	Run(4, func(rk *Rank) {
		target := (rk.Me() + 1) % rk.N()
		got := RPC(rk, target, func(trk *Rank, x int64) int64 {
			if trk.Me() != target {
				t.Errorf("rpc ran on %d, want %d", trk.Me(), target)
			}
			return x * 10
		}, int64(rk.Me())).Wait()
		if got != int64(rk.Me())*10 {
			t.Errorf("rpc result = %d", got)
		}
		rk.Barrier()
	})
}

func TestRPCVariants(t *testing.T) {
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			r0 := RPC0(rk, 1, func(trk *Rank) Intrank { return trk.Me() }).Wait()
			if r0 != 1 {
				t.Errorf("RPC0 = %d", r0)
			}
			r2 := RPC2(rk, 1, func(trk *Rank, a int32, b string) string {
				if a != 7 {
					t.Errorf("a = %d", a)
				}
				return b + "!"
			}, int32(7), "hey").Wait()
			if r2 != "hey!" {
				t.Errorf("RPC2 = %q", r2)
			}
		}
		rk.Barrier()
	})
}

func TestRPCFF(t *testing.T) {
	Run(2, func(rk *Rank) {
		p := MustNewArray[uint64](rk, 1)
		_ = NewDistObject(rk, p)
		rk.Barrier()
		if rk.Me() == 0 {
			RPCFF(rk, 1, func(trk *Rank, v uint64) {
				d, _ := LookupDist[GPtr[uint64]](trk, 0)
				Local(trk, *d.Value(), 1)[0] = v
			}, uint64(777))
		}
		rk.Barrier() // barrier traffic forces delivery before check
		if rk.Me() == 1 {
			// Spin until the ff rpc lands (ordering vs barrier is not
			// guaranteed).
			for Local(rk, p, 1)[0] != 777 {
				rk.Progress()
			}
		}
		rk.Barrier()
	})
}

func TestRPCSelf(t *testing.T) {
	Run(1, func(rk *Rank) {
		got := RPC(rk, 0, func(trk *Rank, s string) string { return s + s }, "ab").Wait()
		if got != "abab" {
			t.Errorf("self rpc = %q", got)
		}
	})
}

func TestRPCChainedWithRPut(t *testing.T) {
	// The paper's DHT insert pattern: RPC returns a landing zone, a .then
	// callback rputs into it.
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			val := []uint64{5, 6, 7}
			fut := RPC(rk, 1, func(trk *Rank, n int64) GPtr[uint64] {
				return MustNewArray[uint64](trk, int(n))
			}, int64(len(val)))
			done := ThenFut(fut, func(dst GPtr[uint64]) Future[Unit] {
				return RPut(rk, val, dst)
			})
			done.Wait()
			// Validate at the target via another RPC round trip.
			lz := fut.Result()
			sum := RPC(rk, 1, func(trk *Rank, p GPtr[uint64]) uint64 {
				s := Local(trk, p, 3)
				return s[0] + s[1] + s[2]
			}, lz).Wait()
			if sum != 18 {
				t.Errorf("sum = %d", sum)
			}
		}
		rk.Barrier()
	})
}

func TestViewRPC(t *testing.T) {
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			data := []float64{1, 2, 3, 4}
			got := RPC(rk, 1, func(trk *Rank, v View[float64]) float64 {
				sum := 0.0
				for _, x := range v.Elements() {
					sum += x
				}
				return sum
			}, MakeView(data)).Wait()
			if got != 10 {
				t.Errorf("view sum = %v", got)
			}
		}
		rk.Barrier()
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	const ranks = 8
	var phase [ranks]atomic.Int32
	Run(ranks, func(rk *Rank) {
		phase[rk.Me()].Store(1)
		rk.Barrier()
		// After the barrier every rank must have reached phase 1.
		for r := 0; r < ranks; r++ {
			if phase[r].Load() != 1 {
				t.Errorf("rank %d saw rank %d at phase 0 after barrier", rk.Me(), r)
			}
		}
	})
}

func TestBarrierManyEpochs(t *testing.T) {
	var mu sync.Mutex
	counts := map[int]int{}
	Run(5, func(rk *Rank) {
		for epoch := 0; epoch < 20; epoch++ {
			mu.Lock()
			counts[epoch]++
			mine := counts[epoch]
			mu.Unlock()
			_ = mine
			rk.Barrier()
			mu.Lock()
			if counts[epoch] != 5 {
				t.Errorf("epoch %d: %d ranks at barrier exit", epoch, counts[epoch])
			}
			mu.Unlock()
			rk.Barrier()
		}
	})
}

func TestBroadcast(t *testing.T) {
	Run(7, func(rk *Rank) {
		team := rk.WorldTeam()
		val := ""
		if rk.Me() == 2 {
			val = "from-root"
		}
		got := Broadcast(team, 2, val).Wait()
		if got != "from-root" {
			t.Errorf("rank %d broadcast = %q", rk.Me(), got)
		}
		rk.Barrier()
	})
}

func TestReduceAndAllReduce(t *testing.T) {
	Run(6, func(rk *Rank) {
		team := rk.WorldTeam()
		sum := func(a, b int64) int64 { return a + b }
		got := ReduceOne(team, int64(rk.Me()+1), sum).Wait()
		if rk.Me() == 0 && got != 21 { // 1+2+...+6
			t.Errorf("reduce = %d", got)
		}
		all := AllReduce(team, int64(rk.Me()+1), sum).Wait()
		if all != 21 {
			t.Errorf("rank %d allreduce = %d", rk.Me(), all)
		}
		rk.Barrier()
	})
}

func TestTeamSplit(t *testing.T) {
	Run(8, func(rk *Rank) {
		team := rk.WorldTeam()
		color := int(rk.Me()) % 2
		sub := team.Split(color, int(rk.Me()))
		if sub.RankN() != 4 {
			t.Errorf("subteam size = %d", sub.RankN())
		}
		// Even ranks in color 0, odd in color 1, ordered by key.
		want := Intrank(2*int(sub.RankMe()) + color)
		if sub.WorldRank(sub.RankMe()) != rk.Me() || want != rk.Me() {
			t.Errorf("rank %d: team rank %d (want world %d)", rk.Me(), sub.RankMe(), want)
		}
		// Collectives work on the subteam.
		total := AllReduce(sub, int64(1), func(a, b int64) int64 { return a + b }).Wait()
		if total != 4 {
			t.Errorf("subteam allreduce = %d", total)
		}
		sub.Barrier()
		rk.Barrier()
	})
}

func TestAtomics(t *testing.T) {
	Run(4, func(rk *Rank) {
		var counter GPtr[uint64]
		if rk.Me() == 0 {
			counter = MustNewArray[uint64](rk, 1)
			_ = NewDistObject(rk, counter)
		} else {
			_ = NewDistObject(rk, NilGPtr[uint64]())
		}
		rk.Barrier()
		counter = FetchDist[GPtr[uint64]](rk, 0, 0).Wait()
		ad := NewAtomicU64(rk)
		const each = 50
		p := NewPromise[Unit](rk)
		for i := 0; i < each; i++ {
			p.RequireAnonymous(1)
			f := ad.FetchAdd(counter, 1)
			ThenDo(f, func(uint64) { p.FulfillAnonymous(1) })
		}
		p.Finalize().Wait()
		rk.Barrier()
		if rk.Me() == 0 {
			if got := ad.Load(counter).Wait(); got != 4*each {
				t.Errorf("counter = %d, want %d", got, 4*each)
			}
		}
		rk.Barrier()
	})
}

func TestAtomicsI64MinMax(t *testing.T) {
	Run(2, func(rk *Rank) {
		var cell GPtr[int64]
		if rk.Me() == 0 {
			cell = MustNewArray[int64](rk, 1)
			Local(rk, cell, 1)[0] = 10
			_ = NewDistObject(rk, cell)
		} else {
			_ = NewDistObject(rk, NilGPtr[int64]())
		}
		rk.Barrier()
		if rk.Me() == 1 {
			cell = FetchDist[GPtr[int64]](rk, 0, 0).Wait()
			ad := NewAtomicI64(rk)
			if old := ad.FetchMin(cell, -3).Wait(); old != 10 {
				t.Errorf("FetchMin old = %d", old)
			}
			if got := ad.Load(cell).Wait(); got != -3 {
				t.Errorf("after min = %d", got)
			}
			if old := ad.FetchMax(cell, 100).Wait(); old != -3 {
				t.Errorf("FetchMax old = %d", old)
			}
			prev := ad.CompareExchange(cell, 100, 55).Wait()
			if prev != 100 {
				t.Errorf("CAS prev = %d", prev)
			}
			if got := ad.Load(cell).Wait(); got != 55 {
				t.Errorf("after CAS = %d", got)
			}
		}
		rk.Barrier()
	})
}

func TestDistObjectFetchBeforeConstruction(t *testing.T) {
	// A fetch that races ahead of remote construction must defer, not fail.
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			// Fetch immediately; rank 1 constructs only after some delay
			// (its own progress loop) — no barrier beforehand.
			got := FetchDist[int64](rk, 0, 1).Wait()
			if got != 1234 {
				t.Errorf("fetch = %d", got)
			}
		} else {
			// Delay construction by handling some progress first.
			for i := 0; i < 100; i++ {
				rk.Progress()
			}
			_ = NewDistObject(rk, int64(1234))
		}
		rk.Barrier()
	})
}

func TestVectorIndexedStridedRMA(t *testing.T) {
	Run(2, func(rk *Rank) {
		var base GPtr[int32]
		if rk.Me() == 1 {
			base = MustNewArray[int32](rk, 64)
			_ = NewDistObject(rk, base)
		} else {
			_ = NewDistObject(rk, NilGPtr[int32]())
		}
		rk.Barrier()
		if rk.Me() == 0 {
			base = FetchDist[GPtr[int32]](rk, 0, 1).Wait()
			// Indexed put: blocks of 2 at offsets 0, 10, 20.
			src := []int32{1, 2, 3, 4, 5, 6}
			RPutIndexed(rk, src, base, []int{0, 10, 20}, 2).Wait()
			dst := make([]int32, 6)
			RGetIndexed(rk, base, []int{0, 10, 20}, 2, dst).Wait()
			for i := range src {
				if dst[i] != src[i] {
					t.Errorf("indexed elem %d = %d", i, dst[i])
				}
			}
			// Strided put: 3 rows of 4, source stride 8, dest stride 16.
			flat := make([]int32, 24)
			for i := range flat {
				flat[i] = int32(100 + i)
			}
			RPutStrided2D(rk, flat, 8, base, 16, 4, 3).Wait()
			row := make([]int32, 4)
			RGet(rk, base.Add(32), row).Wait() // third row at 2*16
			for j := 0; j < 4; j++ {
				if row[j] != int32(100+2*8+j) {
					t.Errorf("strided row elem %d = %d", j, row[j])
				}
			}
			// Vector get of two fragments.
			a := make([]int32, 2)
			b := make([]int32, 2)
			RGetV(rk, []GetPair[int32]{{base, a}, {base.Add(10), b}}).Wait()
			// The strided put above rewrote base[0..3] with 100..103;
			// the indexed put's block at offset 10 is untouched.
			if a[0] != 100 || b[0] != 3 {
				t.Errorf("vector get = %v %v", a, b)
			}
		}
		rk.Barrier()
	})
}

func TestCopyGG(t *testing.T) {
	Run(3, func(rk *Rank) {
		p := MustNewArray[uint64](rk, 4)
		s := Local(rk, p, 4)
		for i := range s {
			s[i] = uint64(rk.Me())*100 + uint64(i)
		}
		_ = NewDistObject(rk, p)
		rk.Barrier()
		if rk.Me() == 0 {
			p1 := FetchDist[GPtr[uint64]](rk, 0, 1).Wait()
			p2 := FetchDist[GPtr[uint64]](rk, 0, 2).Wait()
			// Third-party copy rank1 -> rank2.
			CopyGG(rk, p1, p2, 4).Wait()
			dst := make([]uint64, 4)
			RGet(rk, p2, dst).Wait()
			if dst[0] != 100 || dst[3] != 103 {
				t.Errorf("third-party copy = %v", dst)
			}
			// Local source -> remote.
			CopyGG(rk, p, p1, 4).Wait()
			RGet(rk, p1, dst).Wait()
			if dst[0] != 0 || dst[3] != 3 {
				t.Errorf("put-side copy = %v", dst)
			}
			// Remote -> local dest.
			CopyGG(rk, p2, p, 4).Wait()
			if s[0] != 100 {
				t.Errorf("get-side copy = %v", s[:4])
			}
		}
		rk.Barrier()
	})
}

func TestWaitInRestrictedContextPanics(t *testing.T) {
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			got := RPC0(rk, 1, func(trk *Rank) bool {
				defer func() { recover() }()
				// Waiting on an unready future inside an RPC body must
				// panic rather than deadlock.
				f := RPC0(trk, 0, func(*Rank) int { return 1 })
				if !f.Ready() {
					f.Wait()
					return false // unreachable if panic fired
				}
				return true
			}).Wait()
			_ = got
		}
		rk.Barrier()
	})
}

func TestProgressQueuesObservable(t *testing.T) {
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			f := RPC0(rk, 1, func(*Rank) int { return 1 })
			// After injection the op is active until the reply arrives.
			if rk.PendingOps() == 0 && !f.Ready() {
				t.Error("op not tracked in actQ")
			}
			f.Wait()
			if rk.PendingOps() != 0 {
				t.Errorf("actQ = %d after completion", rk.PendingOps())
			}
		}
		rk.Barrier()
	})
}

func TestLPC(t *testing.T) {
	Run(1, func(rk *Rank) {
		ran := false
		rk.LPC(func() { ran = true })
		if ran {
			t.Fatal("LPC ran synchronously")
		}
		rk.Progress()
		if !ran {
			t.Fatal("LPC did not run at progress")
		}
	})
}

func TestMultipleEpochs(t *testing.T) {
	w := NewWorld(Config{Ranks: 3})
	defer w.Close()
	var ptrs [3]GPtr[uint64]
	w.Run(func(rk *Rank) {
		ptrs[rk.Me()] = MustNewArray[uint64](rk, 1)
		Local(rk, ptrs[rk.Me()], 1)[0] = uint64(rk.Me()) + 1
	})
	// Segment state persists into the next epoch.
	w.Run(func(rk *Rank) {
		next := (rk.Me() + 1) % 3
		got := GetValue(rk, ptrs[next]).Wait()
		if got != uint64(next)+1 {
			t.Errorf("epoch 2: read %d", got)
		}
	})
}

func TestManyRanksSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	Run(64, func(rk *Rank) {
		team := rk.WorldTeam()
		sum := AllReduce(team, int64(1), func(a, b int64) int64 { return a + b }).Wait()
		if sum != 64 {
			t.Errorf("allreduce = %d", sum)
		}
		got := RPC(rk, (rk.Me()+17)%64, func(trk *Rank, x int64) int64 {
			return x + int64(trk.Me())
		}, int64(1)).Wait()
		if got != 1+int64((rk.Me()+17)%64) {
			t.Errorf("rpc = %d", got)
		}
		rk.Barrier()
	})
}
