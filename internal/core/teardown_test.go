package upcxx

import (
	"strings"
	"testing"
)

// --- Team.FromWorld index -------------------------------------------------

func TestFromWorldWorldTeamIdentity(t *testing.T) {
	Run(4, func(rk *Rank) {
		wt := rk.WorldTeam()
		for r := Intrank(0); r < rk.N(); r++ {
			if got := wt.FromWorld(r); got != r {
				t.Errorf("world team FromWorld(%d) = %d", r, got)
			}
		}
		if got := wt.FromWorld(-1); got != -1 {
			t.Errorf("FromWorld(-1) = %d, want -1", got)
		}
		if got := wt.FromWorld(rk.N()); got != -1 {
			t.Errorf("FromWorld(N) = %d, want -1", got)
		}
		rk.Barrier()
	})
}

func TestFromWorldSplitTeamIndex(t *testing.T) {
	Run(6, func(rk *Rank) {
		// Odd/even split with reversed key order: the map must agree with
		// the ranks slice exactly, members and non-members alike.
		sub := rk.WorldTeam().Split(int(rk.Me())%2, -int(rk.Me()))
		for i := Intrank(0); i < sub.RankN(); i++ {
			wr := sub.WorldRank(i)
			if got := sub.FromWorld(wr); got != i {
				t.Errorf("FromWorld(%d) = %d, want %d", wr, got, i)
			}
		}
		for r := Intrank(0); r < rk.N(); r++ {
			member := r%2 == rk.Me()%2
			if got := sub.FromWorld(r); (got >= 0) != member {
				t.Errorf("FromWorld(%d) = %d, membership should be %v", r, got, member)
			}
		}
		if sub.FromWorld(rk.Me()) != sub.RankMe() {
			t.Errorf("FromWorld(me) = %d, want %d", sub.FromWorld(rk.Me()), sub.RankMe())
		}
		rk.Barrier()
	})
}

// --- CloseDeviceAllocator -------------------------------------------------

// mustPanicContaining runs fn expecting a panic whose message contains
// want.
func mustPanicContaining(t *testing.T, what, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s: expected panic", what)
			return
		}
		var msg string
		switch v := r.(type) {
		case string:
			msg = v
		case error:
			msg = v.Error()
		}
		if !strings.Contains(msg, want) {
			t.Errorf("%s: panic %q does not mention %q", what, msg, want)
		}
	}()
	fn()
}

func TestCloseDeviceAllocatorPoisonsPointers(t *testing.T) {
	Run(2, func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<12)
		p := MustNewDeviceArray[uint64](da, 8)
		obj := NewDistObject(rk, p)
		rk.Barrier()

		// The segment works before close.
		if rk.Me() == 0 {
			remote := FetchDist[GPtr[uint64]](rk, obj.ID(), 1).Wait()
			RPut(rk, []uint64{1, 2, 3, 4, 5, 6, 7, 8}, remote).Wait()
		}
		rk.Barrier()

		da.Close()
		if !da.Closed() {
			t.Fatal("Closed() false after Close")
		}
		if rk.ep.DeviceSegments() != 0 {
			t.Fatalf("%d device segments still registered after close", rk.ep.DeviceSegments())
		}

		// Local use of a poisoned pointer faults with a use-after-close
		// message, not a wild-pointer one.
		mustPanicContaining(t, "RPut to closed segment", "closed", func() {
			RPut(rk, []uint64{1}, p)
		})
		mustPanicContaining(t, "RGet from closed segment", "closed", func() {
			RGet(rk, p, make([]uint64, 1))
		})
		mustPanicContaining(t, "RunKernel on closed allocator", "closed", func() {
			RunKernel(da, p, 8, func([]uint64) {})
		})
		mustPanicContaining(t, "Delete on closed segment", "closed", func() {
			if err := Delete(rk, p); err != nil {
				panic(err)
			}
		})
		if _, err := NewDeviceArray[uint64](da, 1); err == nil || !strings.Contains(err.Error(), "closed") {
			t.Errorf("NewDeviceArray after close: err = %v, want closed error", err)
		}
		mustPanicContaining(t, "double close", "twice", func() { da.Close() })
		rk.Barrier()

		// Cross-rank use of a poisoned pointer faults on the initiating
		// goroutine (eager segment resolution), with the same clear error.
		if rk.Me() == 0 {
			remote := FetchDist[GPtr[uint64]](rk, obj.ID(), 1).Wait()
			mustPanicContaining(t, "cross-rank put to closed segment", "closed", func() {
				RPut(rk, []uint64{9}, remote)
				rk.Quiesce()
			})
		}
		rk.Barrier()
	})
}

func TestCloseDeviceAllocatorLeavesOthersOpen(t *testing.T) {
	Run(1, func(rk *Rank) {
		da1 := NewDeviceAllocator(rk, 1<<12)
		da2 := NewDeviceAllocator(rk, 1<<12)
		p2 := MustNewDeviceArray[uint64](da2, 4)
		da1.Close()
		// Segment ids are positional and never reused: da2 keeps working.
		RPut(rk, []uint64{4, 3, 2, 1}, p2).Wait()
		got := make([]uint64, 4)
		RGet(rk, p2, got).Wait()
		if got[0] != 4 || got[3] != 1 {
			t.Errorf("surviving device segment corrupted: %v", got)
		}
		if rk.ep.DeviceSegments() != 1 {
			t.Errorf("DeviceSegments = %d, want 1", rk.ep.DeviceSegments())
		}
		// A fresh allocator opens a new id beyond the closed one.
		da3 := NewDeviceAllocator(rk, 1<<12)
		if da3.DeviceID() == da1.DeviceID() {
			t.Errorf("closed device id %d was reused", da1.DeviceID())
		}
	})
}
