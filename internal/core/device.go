package upcxx

import (
	"fmt"

	"upcxx/internal/gasnet"
	"upcxx/internal/serial"
)

// DeviceAllocator manages one device memory segment on a rank — the
// analogue of upcxx::device_allocator<cuda_device>. Opening an allocator
// registers a device-kind segment with the conduit; allocations from it
// yield device-kind global pointers, which every RMA path routes through
// the simulated DMA engine. Device memory is never host-addressable
// (Local panics); computation on it goes through RunKernel, the
// simulation's stand-in for launching a device kernel.
type DeviceAllocator struct {
	rk     *Rank
	id     uint16 // conduit segment id of this device segment
	size   int
	closed bool
}

// NewDeviceAllocator opens a device segment of the given size in bytes on
// this rank and returns its allocator. Device segments live until the
// world is torn down.
func NewDeviceAllocator(rk *Rank, size int) *DeviceAllocator {
	id := rk.ep.AddDeviceSegment(size)
	return &DeviceAllocator{rk: rk, id: uint16(id), size: size}
}

// Rank returns the owning rank.
func (da *DeviceAllocator) Rank() *Rank { return da.rk }

// DeviceID returns the rank-local device segment id (1-based; 0 is the
// host segment).
func (da *DeviceAllocator) DeviceID() uint16 { return da.id }

// Size returns the device segment size in bytes.
func (da *DeviceAllocator) Size() int { return da.size }

// FreeBytes returns the unallocated bytes remaining in the device segment.
func (da *DeviceAllocator) FreeBytes() int64 {
	da.requireOpen("FreeBytes")
	return da.rk.ep.SegByID(gasnet.SegID(da.id)).FreeBytes()
}

// Grow extends the device segment by extra bytes in place — the
// analogue of registering additional device memory with the NIC under
// an already-open allocator. Offsets are stable across growth, so every
// outstanding GPtr into the segment (local or fetched by peers) remains
// valid and keeps addressing the same allocation. The caller must have
// quiesced transfers touching the segment first, exactly as Close
// requires: in-flight hop chains hold views of the old backing store.
// Growing a closed allocator faults like any other use-after-close.
func (da *DeviceAllocator) Grow(extra int) {
	da.requireOpen("Grow")
	da.rk.ep.GrowDeviceSegment(gasnet.SegID(da.id), extra)
	da.size += extra
}

// requireOpen faults allocator operations after Close with an
// allocator-level message (pointer-level use-after-close faults come from
// the conduit's segment resolution).
func (da *DeviceAllocator) requireOpen(op string) {
	if da.closed {
		panic(fmt.Sprintf("upcxx: %s on %v: allocator is closed", op, da))
	}
}

func (da *DeviceAllocator) String() string {
	state := ""
	if da.closed {
		state = ", closed"
	}
	return fmt.Sprintf("device_allocator(rank %d, dev %d, %d B%s)", da.rk.me, da.id, da.size, state)
}

// Closed reports whether the allocator's segment has been torn down.
func (da *DeviceAllocator) Closed() bool { return da.closed }

// Close tears the device segment down — the analogue of destroying a
// upcxx::device_allocator, which unregisters the GPU segment from the
// network. The segment id is retired, never reused, so every outstanding
// GPtr into the segment is poisoned: any later RMA, copy, kernel launch,
// or Delete through one faults with a clear use-after-close error instead
// of silently addressing other memory. The caller must have quiesced
// transfers touching the segment first (close with puts in flight is a
// use-after-free, and faults as one). Close is local; like allocator
// construction on a single rank, it requires no collective.
func (da *DeviceAllocator) Close() {
	if da.closed {
		panic(fmt.Sprintf("upcxx: %v closed twice", da))
	}
	da.closed = true
	da.rk.ep.CloseDeviceSegment(gasnet.SegID(da.id))
}

// CloseDeviceAllocator is Close as a package-level function, matching the
// NewDeviceAllocator constructor.
func CloseDeviceAllocator(da *DeviceAllocator) { da.Close() }

// NewDeviceArray allocates n contiguous Ts in the device segment,
// zero-initialized, returning a device-kind global pointer.
func NewDeviceArray[T serial.Scalar](da *DeviceAllocator, n int) (GPtr[T], error) {
	if da.closed {
		return NilGPtr[T](), fmt.Errorf("upcxx: NewDeviceArray on %v: allocator is closed", da)
	}
	seg := da.rk.ep.SegByID(gasnet.SegID(da.id))
	sz := n * serial.SizeOf[T]()
	off, err := seg.Alloc(sz)
	if err != nil {
		return NilGPtr[T](), fmt.Errorf("upcxx: rank %d device %d: %w", da.rk.me, da.id, err)
	}
	b := seg.Bytes(off, sz)
	for i := range b {
		b[i] = 0
	}
	return GPtr[T]{Owner: da.rk.me, Kind: KindDevice, Dev: da.id, Off: off}, nil
}

// MustNewDeviceArray is NewDeviceArray, panicking on segment exhaustion.
func MustNewDeviceArray[T serial.Scalar](da *DeviceAllocator, n int) GPtr[T] {
	p, err := NewDeviceArray[T](da, n)
	if err != nil {
		panic(err)
	}
	return p
}

// RunKernel executes kernel over the n elements at p, which must be a
// device pointer into this allocator's segment. It models a synchronous
// device kernel launch: the only sanctioned way to compute on device
// memory, mirroring how real device segments are touched by CUDA kernels
// rather than host loads. The slice passed to kernel aliases device
// memory and must not escape the call.
func RunKernel[T serial.Scalar](da *DeviceAllocator, p GPtr[T], n int, kernel func([]T)) {
	if p.IsNil() {
		panic("upcxx: RunKernel on nil GPtr")
	}
	if p.Owner != da.rk.me || p.Kind != KindDevice || p.Dev != da.id {
		panic(fmt.Sprintf("upcxx: RunKernel on %v, which is not in %v", p, da))
	}
	da.requireOpen("RunKernel")
	seg := da.rk.ep.SegByID(gasnet.SegID(da.id))
	kernel(serial.FromBytes[T](seg.Bytes(p.Off, n*serial.SizeOf[T]())))
}
