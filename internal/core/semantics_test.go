package upcxx

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"upcxx/internal/gasnet"
)

// Tests for the paper's semantic fine print: attentiveness, restricted
// context, queue lifecycle, and failure behaviour.

func TestRPCStallsWithoutAttentiveness(t *testing.T) {
	// Paper §III: "if the target enters intensive, protracted computation
	// without calls to progress, incoming RPCs will stall."
	stopBusy := make(chan struct{})
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			executed := false
			RPCFF(rk, 1, func(trk *Rank, _ int) {}, 0)
			f := RPC0(rk, 1, func(trk *Rank) bool { return true })
			// Target is computing (not progressing): nothing can arrive.
			time.Sleep(20 * time.Millisecond)
			if f.Ready() || executed {
				t.Error("RPC completed while target was inattentive")
			}
			// Signal the busy loop to stop via shared memory (test-only
			// channel outside the PGAS model).
			close(stopBusy)
			if !f.Wait() {
				t.Error("rpc result")
			}
		} else {
			// Busy compute phase without progress.
			<-stopBusy
		}
		rk.Barrier()
	})
}

func TestSegmentExhaustionSurfacesAsError(t *testing.T) {
	RunConfig(Config{Ranks: 1, SegmentSize: 1 << 12}, func(rk *Rank) {
		if _, err := NewArray[float64](rk, 1<<20); err == nil {
			t.Fatal("oversized allocation should fail")
		}
		// The segment remains usable after a failed allocation.
		p, err := NewArray[float64](rk, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := Delete(rk, p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeleteRemotePointerRejected(t *testing.T) {
	Run(2, func(rk *Rank) {
		p := MustNewArray[uint64](rk, 1)
		_ = NewDistObject(rk, p)
		rk.Barrier()
		if rk.Me() == 0 {
			remote := FetchDist[GPtr[uint64]](rk, 0, 1).Wait()
			if err := Delete(rk, remote); err == nil {
				t.Error("deleting remote memory should fail")
			}
		}
		rk.Barrier()
	})
}

func TestLocalOnRemotePanics(t *testing.T) {
	Run(2, func(rk *Rank) {
		p := MustNewArray[uint64](rk, 1)
		_ = NewDistObject(rk, p)
		rk.Barrier()
		if rk.Me() == 0 {
			remote := FetchDist[GPtr[uint64]](rk, 0, 1).Wait()
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Local on a remote pointer should panic")
					}
				}()
				Local(rk, remote, 1)
			}()
		}
		rk.Barrier()
	})
}

func TestToGlobalOutsideSegmentPanics(t *testing.T) {
	Run(1, func(rk *Rank) {
		private := make([]float64, 4)
		defer func() {
			if recover() == nil {
				t.Error("ToGlobal of private memory should panic")
			}
		}()
		ToGlobal(rk, private)
	})
}

func TestDefQObservableBeforeProgress(t *testing.T) {
	// deferOp drains eagerly via internal progress, but the queue exists
	// and drains in FIFO order.
	Run(1, func(rk *Rank) {
		var order []int
		rk.defQ = append(rk.defQ, func() { order = append(order, 1) })
		rk.defQ = append(rk.defQ, func() { order = append(order, 2) })
		rk.InternalProgress()
		if len(order) != 2 || order[0] != 1 || order[1] != 2 {
			t.Fatalf("defQ order = %v", order)
		}
	})
}

func TestCompQDrainedOnlyByUserProgress(t *testing.T) {
	Run(1, func(rk *Rank) {
		ran := false
		rk.LPC(func() { ran = true })
		rk.InternalProgress()
		if ran {
			t.Fatal("internal progress must not run compQ actions")
		}
		rk.Progress()
		if !ran {
			t.Fatal("user progress must drain compQ")
		}
	})
}

func TestCallbackChainingDepth(t *testing.T) {
	// Long Then chains must neither stack-overflow nor reorder.
	Run(1, func(rk *Rank) {
		f := ReadyFuture(rk, 0)
		const depth = 10000
		for i := 0; i < depth; i++ {
			f = Then(f, func(v int) int { return v + 1 })
		}
		if got := f.Wait(); got != depth {
			t.Fatalf("chain result = %d", got)
		}
	})
}

func TestPutOrderingSameDestination(t *testing.T) {
	// Conduit FIFO: puts from one source to one destination complete in
	// order, so the last write wins.
	Run(2, func(rk *Rank) {
		p := MustNewArray[uint64](rk, 1)
		_ = NewDistObject(rk, p)
		rk.Barrier()
		if rk.Me() == 0 {
			dst := FetchDist[GPtr[uint64]](rk, 0, 1).Wait()
			pr := NewPromise[Unit](rk)
			for i := uint64(1); i <= 100; i++ {
				RPutPromise(rk, []uint64{i}, dst, pr)
			}
			pr.Finalize().Wait()
			if got := GetValue(rk, dst).Wait(); got != 100 {
				t.Errorf("last write = %d", got)
			}
		}
		rk.Barrier()
	})
}

func TestWorldsAreIsolated(t *testing.T) {
	// Two worlds in one process must not share segments or teams.
	w1 := NewWorld(Config{Ranks: 2})
	w2 := NewWorld(Config{Ranks: 2})
	defer w1.Close()
	defer w2.Close()
	var p1, p2 GPtr[uint64]
	w1.Run(func(rk *Rank) {
		if rk.Me() == 0 {
			p1 = MustNewArray[uint64](rk, 1)
			Local(rk, p1, 1)[0] = 111
		}
	})
	w2.Run(func(rk *Rank) {
		if rk.Me() == 0 {
			p2 = MustNewArray[uint64](rk, 1)
			Local(rk, p2, 1)[0] = 222
		}
	})
	w1.Run(func(rk *Rank) {
		if rk.Me() == 0 {
			if got := Local(rk, p1, 1)[0]; got != 111 {
				t.Errorf("world 1 segment = %d", got)
			}
		}
	})
}

func TestTeamSplitSingletons(t *testing.T) {
	Run(3, func(rk *Rank) {
		sub := rk.WorldTeam().Split(int(rk.Me()), 0) // all different colors
		if sub.RankN() != 1 || sub.RankMe() != 0 {
			t.Errorf("singleton team: n=%d me=%d", sub.RankN(), sub.RankMe())
		}
		// Collectives on singleton teams are immediate.
		if got := AllReduce(sub, int64(7), func(a, b int64) int64 { return a + b }).Wait(); got != 7 {
			t.Errorf("singleton allreduce = %d", got)
		}
		rk.Barrier()
	})
}

func TestNestedTeamSplit(t *testing.T) {
	Run(8, func(rk *Rank) {
		half := rk.WorldTeam().Split(int(rk.Me())/4, int(rk.Me()))
		quarter := half.Split(int(half.RankMe())/2, int(half.RankMe()))
		if quarter.RankN() != 2 {
			t.Errorf("quarter size = %d", quarter.RankN())
		}
		total := AllReduce(quarter, int64(1), func(a, b int64) int64 { return a + b }).Wait()
		if total != 2 {
			t.Errorf("quarter allreduce = %d", total)
		}
		rk.Barrier()
	})
}

func TestGPtrSerializationRoundTrip(t *testing.T) {
	// Global pointers travel through RPC intact (the DHT landing-zone
	// pattern depends on it).
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			sent := GPtr[float64]{Owner: 1, Off: 1024}
			got := RPC(rk, 1, func(trk *Rank, p GPtr[float64]) GPtr[float64] {
				return p.Add(2)
			}, sent).Wait()
			if got.Owner != 1 || got.Off != 1024+16 {
				t.Errorf("round-tripped gptr = %+v", got)
			}
		}
		rk.Barrier()
	})
}

// Property: promise dependency algebra — for any interleaving of
// require/fulfill with matching totals, the future readies exactly at the
// last fulfillment.
func TestQuickPromiseAlgebra(t *testing.T) {
	f := func(steps []bool) bool {
		ok := true
		Run(1, func(rk *Rank) {
			p := NewPromise[Unit](rk)
			outstanding := 0
			fut := p.Future()
			for _, require := range steps {
				if require {
					p.RequireAnonymous(1)
					outstanding++
				} else if outstanding > 0 {
					p.FulfillAnonymous(1)
					outstanding--
				}
				if fut.Ready() {
					ok = false // initial dep still held
					return
				}
			}
			for outstanding > 0 {
				p.FulfillAnonymous(1)
				outstanding--
				if fut.Ready() {
					ok = false
					return
				}
			}
			p.Finalize()
			if !fut.Ready() {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: WhenAll over random subsets readies exactly when all inputs
// have.
func TestQuickWhenAll(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%16) + 1
		ok := true
		Run(1, func(rk *Rank) {
			proms := make([]*Promise[Unit], count)
			futs := make([]AnyFuture, count)
			for i := range proms {
				proms[i] = NewPromise[Unit](rk)
				futs[i] = proms[i].Future()
			}
			all := WhenAll(rk, futs...)
			for i, p := range proms {
				if all.Ready() {
					ok = false
					return
				}
				_ = i
				p.FulfillResult(Unit{})
			}
			if !all.Ready() {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitTimeoutDiagnosesDeadlock(t *testing.T) {
	// A future that can never complete must panic with a diagnostic
	// rather than hang forever. The panic fires on the rank's goroutine,
	// so it is recovered inside the SPMD body.
	var recovered any
	RunConfig(Config{Ranks: 1, WaitTimeout: 100 * time.Millisecond}, func(rk *Rank) {
		defer func() { recovered = recover() }()
		p := NewPromise[Unit](rk)
		p.Future().Wait() // never fulfilled
	})
	if recovered == nil {
		t.Fatal("expected deadlock panic")
	}
	if msg := fmt.Sprint(recovered); msg == "" {
		t.Fatal("empty panic message")
	}
}

func TestRealtimeWorldSmoke(t *testing.T) {
	// The full runtime over the real-time engine with several ranks per
	// node: a sanity pass for the timing path.
	model := &gasnet.LogGP{O: time.Microsecond, L: 2 * time.Microsecond, Gp: time.Microsecond}
	RunConfig(Config{Ranks: 4, RanksPerNode: 2, Model: model}, func(rk *Rank) {
		sum := AllReduce(rk.WorldTeam(), int64(rk.Me()), func(a, b int64) int64 { return a + b }).Wait()
		if sum != 6 {
			t.Errorf("allreduce = %d", sum)
		}
		got := RPC(rk, (rk.Me()+1)%4, func(trk *Rank, x int32) int32 { return x * 2 }, int32(21)).Wait()
		if got != 42 {
			t.Errorf("rpc = %d", got)
		}
		rk.Barrier()
	})
}

func TestQuiesce(t *testing.T) {
	Run(2, func(rk *Rank) {
		p := MustNewArray[uint64](rk, 64)
		_ = NewDistObject(rk, p)
		rk.Barrier()
		if rk.Me() == 0 {
			dst := FetchDist[GPtr[uint64]](rk, 0, 1).Wait()
			// Fire many operations without retaining their futures.
			for i := 0; i < 64; i++ {
				_ = RPut(rk, []uint64{uint64(i)}, dst.Add(i))
			}
			rk.Quiesce()
			if rk.PendingOps() != 0 {
				t.Errorf("PendingOps = %d after Quiesce", rk.PendingOps())
			}
			buf := make([]uint64, 64)
			RGet(rk, dst, buf).Wait()
			for i, v := range buf {
				if v != uint64(i) {
					t.Errorf("elem %d = %d", i, v)
				}
			}
		}
		rk.Barrier()
	})
}
