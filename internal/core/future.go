// Package upcxx implements the UPC++ v1.0 programming model from the paper
// "UPC++: A High-Performance Communication Framework for Asynchronous
// Computation" (IPDPS 2019) on top of the gasnet conduit package.
//
// The package provides SPMD execution (World/Run), a partitioned global
// address space of per-rank segments addressed by global pointers (GPtr),
// one-sided RMA (RPut/RGet and the vector/indexed/strided variants),
// remote procedure calls (RPC/RPCFF) with view-based serialization,
// future/promise asynchrony, teams with non-blocking collectives,
// distributed objects and NIC-offloaded remote atomics.
//
// Asynchrony model (paper §II–III): every communication operation is
// non-blocking and returns a Future (or feeds a Promise). Completions and
// incoming RPCs execute only during user-level progress — Progress, Wait —
// on the goroutine holding the owning persona (see persona.go); the only
// hidden progress goroutines are the optional per-rank progress threads
// enabled by Config.ProgressThread. Futures and promises are deliberately
// NOT thread-safe: like their UPC++ counterparts they are owned by the
// persona that created them, and cross-thread interaction goes through
// persona LPC queues, never through shared future state.
package upcxx

import (
	"fmt"
	"runtime"
	"time"
)

// Unit is the empty payload of futures that convey only readiness, the
// analogue of upcxx::future<>.
type Unit = struct{}

// futCore is the shared state behind a Future/Promise pair. It is owned
// by the persona current on the creating goroutine: state is only
// touched from the goroutine holding that persona, and fulfillment
// arriving on any other goroutine is rerouted through the owner's LPC
// queue.
type futCore[T any] struct {
	rk    *Rank
	pers  *Persona
	ready bool
	val   T
	cbs   []func(T)
}

// newFutCore creates future state owned by the calling goroutine's
// current persona.
func newFutCore[T any](rk *Rank) *futCore[T] {
	return &futCore[T]{rk: rk, pers: rk.currentPersona()}
}

func (c *futCore[T]) fulfill(v T) {
	if c.pers != nil && !c.pers.onOwnerGoroutine() {
		// Fulfillment observed off the owning persona's goroutine (a
		// progress thread harvesting a completion, a teammate's LPC):
		// continuations must fire where the future lives.
		c.pers.LPC(func() { c.fulfillOwned(v) })
		return
	}
	c.fulfillOwned(v)
}

// fulfillOwned is fulfill for callers already known to be on the owning
// persona's goroutine — above all LPCs delivered to that persona, whose
// drain only ever runs on the owner. It skips the goroutine-id check
// (curGID parses runtime.Stack, ~1µs) that fulfill would otherwise pay on
// every harvested completion; the runtime's RMA/RPC/AMO completion LPCs
// all land here.
func (c *futCore[T]) fulfillOwned(v T) {
	if c.ready {
		panic("upcxx: future fulfilled twice")
	}
	c.val = v
	c.ready = true
	cbs := c.cbs
	c.cbs = nil
	for _, cb := range cbs {
		cb(v)
	}
}

// onReady runs cb when the value is available: immediately if already
// ready, otherwise at fulfillment (which happens during user progress for
// communication-backed futures).
func (c *futCore[T]) onReady(cb func(T)) {
	if c.ready {
		cb(c.val)
		return
	}
	c.cbs = append(c.cbs, cb)
}

// Future is the consumer side of a non-blocking operation: the interface
// through which status is queried, results retrieved, and callbacks
// chained. The zero Future is invalid; futures are created by
// communication operations, promises, and the combinators in this package.
//
// A future is owned by the persona current when it was created and must
// only be touched from the goroutine holding that persona; combinators
// (Then, WhenAll, ...) must conjoin futures of one persona.
type Future[T any] struct {
	c *futCore[T]
}

// Valid reports whether f refers to an operation (non-zero).
func (f Future[T]) Valid() bool { return f.c != nil }

// Ready reports whether the result is available.
func (f Future[T]) Ready() bool { return f.c.ready }

// Result returns the value; it panics if the future is not ready.
func (f Future[T]) Result() T {
	if !f.c.ready {
		panic("upcxx: Result on unready future")
	}
	return f.c.val
}

// Wait spins user-level progress until the future is ready and returns its
// value. It must not be called from inside a callback or RPC body
// (UPC++'s restricted context); doing so panics, since progress cannot
// recurse and the wait could never complete.
func (f Future[T]) Wait() T {
	c := f.c
	rk := c.rk
	gs := curState()
	if !c.ready && gs.restricted {
		panic("upcxx: Wait inside restricted context (callback or RPC body)")
	}
	// Ownership check against the cached gid: onOwnerGoroutine would
	// re-derive it (an unheld persona reads holder 0, which never equals
	// a gid, preserving the panic below).
	if !c.ready && c.pers != nil && c.pers.holder.Load() != gs.gid {
		// This goroutine cannot drain the owning persona, so the wait
		// could never complete (and the reads would race with the
		// owner); fail immediately instead of spinning to the timeout.
		panic("upcxx: Wait on a future owned by another goroutine's persona")
	}
	deadline := time.Time{}
	spins := 0
	for !c.ready {
		rk.progressWith(gs)
		if c.ready {
			break
		}
		if err := rk.w.failed(); err != nil {
			panic(err)
		}
		if rk.w.dist && spins > 128 {
			// Multi-process waits are dominated by real wire latency:
			// park in the conduit's notified wait instead of burning a
			// core spinning (the doorbell or socket reader rings us back).
			rk.ep.WaitPending(200 * time.Microsecond)
		}
		runtime.Gosched()
		spins++
		if spins%(1<<16) == 0 {
			if deadline.IsZero() {
				deadline = time.Now().Add(rk.w.cfg.WaitTimeout)
			} else if time.Now().After(deadline) {
				panic(fmt.Sprintf("upcxx: rank %d Wait exceeded %v (deadlock?)",
					rk.me, rk.w.cfg.WaitTimeout))
			}
		}
	}
	return c.val
}

// Then chains fn onto f: fn runs with f's value once ready (during user
// progress for communication-backed futures) and its return value readies
// the resulting future — upcxx's future::then.
func Then[T, U any](f Future[T], fn func(T) U) Future[U] {
	out := newFutCore[U](f.c.rk)
	f.c.onReady(func(v T) { out.fulfill(fn(v)) })
	return Future[U]{out}
}

// ThenDo chains a callback that produces no value; the result conveys
// readiness only.
func ThenDo[T any](f Future[T], fn func(T)) Future[Unit] {
	return Then(f, func(v T) Unit {
		fn(v)
		return Unit{}
	})
}

// ThenFut chains a future-returning callback, flattening the result: the
// returned future readies when the callback's future does. This is the
// paper's pattern of an RPC callback that launches an rput (§IV-C).
func ThenFut[T, U any](f Future[T], fn func(T) Future[U]) Future[U] {
	out := newFutCore[U](f.c.rk)
	f.c.onReady(func(v T) {
		inner := fn(v)
		inner.c.onReady(func(u U) { out.fulfill(u) })
	})
	return Future[U]{out}
}

// ReadyFuture returns an already-fulfilled future carrying v
// (upcxx::make_future with a value).
func ReadyFuture[T any](rk *Rank, v T) Future[T] {
	return Future[T]{&futCore[T]{rk: rk, ready: true, val: v}}
}

// EmptyFuture returns an already-fulfilled empty future — the starting
// point for conjoining chains, as in the paper's extend-add sketch
// (Fig 7, line 6).
func EmptyFuture(rk *Rank) Future[Unit] { return ReadyFuture(rk, Unit{}) }

// AnyFuture is the type-erased view of a Future, accepted by WhenAll.
type AnyFuture interface {
	Valid() bool
	anyOnReady(cb func())
	owner() *Rank
}

func (f Future[T]) anyOnReady(cb func()) { f.c.onReady(func(T) { cb() }) }
func (f Future[T]) owner() *Rank         { return f.c.rk }

// WhenAll conjoins futures: the result readies when all inputs have
// (upcxx::when_all, readiness only). With no inputs it is ready
// immediately.
func WhenAll(rk *Rank, fs ...AnyFuture) Future[Unit] {
	out := newFutCore[Unit](rk)
	remaining := len(fs)
	if remaining == 0 {
		out.fulfill(Unit{})
		return Future[Unit]{out}
	}
	for _, f := range fs {
		f.anyOnReady(func() {
			remaining--
			if remaining == 0 {
				out.fulfill(Unit{})
			}
		})
	}
	return Future[Unit]{out}
}

// Pair carries the two values produced by WhenAll2.
type Pair[A, B any] struct {
	First  A
	Second B
}

// WhenAll2 conjoins two value-carrying futures, preserving both values.
func WhenAll2[A, B any](fa Future[A], fb Future[B]) Future[Pair[A, B]] {
	out := newFutCore[Pair[A, B]](fa.c.rk)
	remaining := 2
	var p Pair[A, B]
	done := func() {
		remaining--
		if remaining == 0 {
			out.fulfill(p)
		}
	}
	fa.c.onReady(func(v A) { p.First = v; done() })
	fb.c.onReady(func(v B) { p.Second = v; done() })
	return Future[Pair[A, B]]{out}
}

// WhenAllSlice conjoins a homogeneous slice of futures into a future of
// the collected values (in input order).
func WhenAllSlice[T any](rk *Rank, fs []Future[T]) Future[[]T] {
	out := newFutCore[[]T](rk)
	vals := make([]T, len(fs))
	remaining := len(fs)
	if remaining == 0 {
		out.fulfill(vals)
		return Future[[]T]{out}
	}
	for i, f := range fs {
		i := i
		f.c.onReady(func(v T) {
			vals[i] = v
			remaining--
			if remaining == 0 {
				out.fulfill(vals)
			}
		})
	}
	return Future[[]T]{out}
}

// Promise is the producer side of a non-blocking operation. It carries a
// dependency counter: the promise's future readies when the count reaches
// zero. A fresh promise holds one dependency (consumed by FulfillResult or
// Finalize); communication operations register further dependencies via
// RequireAnonymous and discharge them as they complete. Passing one
// promise to many operations and waiting on its single future is the
// paper's flood-bandwidth idiom (§IV-B).
type Promise[T any] struct {
	c         *futCore[T]
	deps      int64
	resultSet bool
	finalized bool
}

// NewPromise creates a promise with one unfulfilled dependency, owned by
// the calling goroutine's current persona.
func NewPromise[T any](rk *Rank) *Promise[T] {
	return &Promise[T]{c: newFutCore[T](rk), deps: 1}
}

// NewPromiseOn creates a promise owned by the named persona pers instead
// of the caller's current one: fulfillments route to pers's LPC queue,
// and the promise (and its future) must only be consumed from the
// goroutine holding pers. This is how a completion descriptor addresses
// a promise to a non-initiating persona — create the promise on the
// target persona, then pass it to …CxAsPromise.
func NewPromiseOn[T any](rk *Rank, pers *Persona) *Promise[T] {
	if pers == nil {
		panic("upcxx: NewPromiseOn(nil persona)")
	}
	if pers.rk != rk {
		panic(fmt.Sprintf("upcxx: NewPromiseOn: %v belongs to rank %d, not rank %d", pers, pers.rk.me, rk.me))
	}
	return &Promise[T]{c: &futCore[T]{rk: rk, pers: pers}, deps: 1}
}

// Future returns a future associated with this promise. Multiple calls
// return futures sharing the same state.
func (p *Promise[T]) Future() Future[T] { return Future[T]{p.c} }

// RequireAnonymous registers n additional dependencies.
func (p *Promise[T]) RequireAnonymous(n int) {
	if p.c.ready {
		panic("upcxx: RequireAnonymous on satisfied promise")
	}
	p.deps += int64(n)
}

// FulfillAnonymous discharges n dependencies, readying the future when the
// count reaches zero.
func (p *Promise[T]) FulfillAnonymous(n int) { p.fulfillAnon(int64(n), false) }

func (p *Promise[T]) fulfillAnon(n int64, owned bool) {
	p.deps -= n
	if p.deps < 0 {
		panic("upcxx: promise over-fulfilled")
	}
	if p.deps == 0 {
		var zero T
		if p.resultSet {
			zero = p.c.val
		}
		p.c.val = zero
		if owned {
			p.c.fulfillOwned(zero)
		} else {
			p.c.fulfill(zero)
		}
	}
}

// FulfillResult supplies the result value and discharges the promise's
// original dependency.
func (p *Promise[T]) FulfillResult(v T) {
	if p.resultSet || p.finalized {
		panic("upcxx: FulfillResult after result/finalize")
	}
	p.resultSet = true
	p.c.val = v
	p.FulfillAnonymous(1)
}

// fulfillOwnedResult is FulfillResult for completion LPCs delivered to
// the promise's own persona (see futCore.fulfillOwned): the communication
// paths route completions through exactly that persona's LPC queue, so
// the per-call goroutine-id check is redundant there.
func (p *Promise[T]) fulfillOwnedResult(v T) {
	if p.resultSet || p.finalized {
		panic("upcxx: FulfillResult after result/finalize")
	}
	p.resultSet = true
	p.c.val = v
	p.fulfillAnon(1, true)
}

// Finalize discharges the promise's original dependency, declaring that no
// further dependencies will be registered, and returns the future
// (upcxx::promise::finalize). Used with empty promises that act as
// completion counters.
func (p *Promise[T]) Finalize() Future[T] {
	if !p.finalized && !p.resultSet {
		p.finalized = true
		p.FulfillAnonymous(1)
	}
	return Future[T]{p.c}
}
