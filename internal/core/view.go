package upcxx

import "upcxx/internal/serial"

// View is the analogue of upcxx::view<T>: a serializable window over a
// sequence of trivially-copyable elements. On the sending side, MakeView
// wraps a local slice without copying; serialization streams the elements
// directly into the message payload. On the receiving side the view is a
// non-owning window into the incoming network buffer — valid only for the
// duration of the RPC body, exactly as in UPC++ (paper §IV-D2). Copy out
// (CopyOut/append) anything that must persist.
type View[T serial.Scalar] struct {
	elems []T
}

// MakeView wraps s in a view; s is not copied until serialization.
func MakeView[T serial.Scalar](s []T) View[T] { return View[T]{elems: s} }

// Elements returns the viewed elements. For a received view the slice
// aliases the network buffer.
func (v View[T]) Elements() []T { return v.elems }

// Len returns the number of elements.
func (v View[T]) Len() int { return len(v.elems) }

// CopyOut returns a fresh slice with the view's contents, safe to retain
// after the RPC body returns.
func (v View[T]) CopyOut() []T { return serial.CopyScalars(v.elems) }

// MarshalSerial streams the element count and raw element bytes. On a
// gather-mode encoder (the batched-RPC injection path) large element
// payloads travel as borrowed iovec fragments — no copy until the conduit
// capture stage — so the viewed slice must stay unchanged until capture.
func (v View[T]) MarshalSerial(e *serial.Encoder) {
	e.PutUvarint(uint64(len(v.elems)))
	e.PutBorrowed(serial.AsBytes(v.elems))
}

// UnmarshalSerial reconstitutes the view as a window over the decoder's
// buffer (zero copy).
func (v *View[T]) UnmarshalSerial(d *serial.Decoder) {
	n := int(d.Uvarint())
	b := d.Raw(n * serial.SizeOf[T]())
	if b == nil {
		v.elems = nil
		return
	}
	v.elems = serial.FromBytes[T](b)
}
