package upcxx

import (
	"fmt"
	"time"

	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
	"upcxx/internal/serial"
)

// Collectives engine v2 (paper §III–§IV). Every collective — barrier,
// broadcast, reduction, allreduce, gather — is driven by a per-rank
// collEngine over pluggable tree topologies and routed through the same
// Rank.inject(ops, cxPlan) path as every RMA, copy and atomic: a
// collective round is a lowered operation (a header-carrying AM for
// value collectives, a kind-aware copy with the advance message
// piggybacked on the last landing hop for buffer collectives), never a
// bespoke side channel. That buys collectives the completion vocabulary
// for free: the …With entry points accept Cx descriptors, with
// operation completion delivered as futures/promises/LPCs to the
// *initiating* persona and RemoteCxAsRPC executed on the rank's
// execution persona the moment the collective's data has landed locally
// (for device operands, after the h2d DMA) — the barrier-free multicast
// signal.
//
// Personas: any persona may initiate a collective. Entry is handed off
// to the rank's execution persona (the progress persona in
// progress-thread mode, the master persona otherwise), which owns the
// engine state single-threadedly; completions route back to the
// initiating persona through its LPC queue, exactly like RMA
// completions. Collectives on one team must still be initiated in
// matching order across ranks — when several personas of one rank
// initiate on the same team, the application must order them.
//
// Topology is selected by Config.CollRadix: 0 picks a binomial tree
// (radix 2), k >= 2 a k-nomial tree of that radix, 1 the flat tree
// (root exchanges with every member directly); teams of at most
// collFlatMax ranks always use the flat tree, where one round beats
// tree depth.

// --- topologies ----------------------------------------------------------

// collTopo is one tree shape over the relative ranks 0..p-1 of a team
// (rooted at relative rank 0). Children and Parent must agree: c is in
// Children(rr, p) iff Parent(c, p) == rr, every non-root has exactly one
// parent, and every rank is reachable from the root — the properties
// TestCollTopologyTable pins for every shape and team size.
type collTopo interface {
	Name() string
	// Children returns the children of relative rank rr, each > rr.
	Children(rr, p int) []int
	// Parent returns the parent of relative rank rr > 0.
	Parent(rr, p int) int
}

// flatTopo is the one-round star: the root is every other rank's parent.
// Lowest latency for tiny teams; non-scalable fan-out for large ones.
type flatTopo struct{}

func (flatTopo) Name() string { return "flat" }

func (flatTopo) Children(rr, p int) []int {
	if rr != 0 {
		return nil
	}
	out := make([]int, 0, p-1)
	for c := 1; c < p; c++ {
		out = append(out, c)
	}
	return out
}

func (flatTopo) Parent(rr, p int) int { return 0 }

// knomialTopo is the k-nomial tree: relative rank rr's children are
// rr + d*k^i for every power k^i > rr and digit d in 1..k-1 that stays
// inside the team; the parent of rr > 0 clears rr's most significant
// base-k digit. Radix 2 is the binomial tree. Depth is the number of
// base-k digits of p-1, so larger radices trade tree depth for per-node
// fan-out (NIC gap serialization) — cmd/coll-bench sweeps the trade.
type knomialTopo struct{ radix int }

func (k knomialTopo) Name() string {
	if k.radix == 2 {
		return "binomial"
	}
	return fmt.Sprintf("%d-nomial", k.radix)
}

func (k knomialTopo) Children(rr, p int) []int {
	var out []int
	for step := 1; step < p; step *= k.radix {
		if step <= rr {
			continue
		}
		for d := 1; d < k.radix; d++ {
			c := rr + d*step
			if c >= p {
				break
			}
			out = append(out, c)
		}
	}
	return out
}

func (k knomialTopo) Parent(rr, p int) int {
	step := 1
	for step*k.radix <= rr {
		step *= k.radix
	}
	return rr - (rr/step)*step
}

// collFlatMax is the largest team that always uses the flat tree: at
// these sizes a single fan-out round beats any tree's depth.
const collFlatMax = 4

// topoForRadix maps a Config.CollRadix value and team size to the tree
// the engine uses. All ranks agree because the radix ships in Config.
func topoForRadix(radix, p int) collTopo {
	if radix == 1 || p <= collFlatMax {
		return flatTopo{}
	}
	if radix == 0 {
		radix = 2
	}
	return knomialTopo{radix: radix}
}

// CollTopoChildren exposes the engine's tree shape — the children of
// relative rank rr in a team of p under Config.CollRadix = radix — for
// tooling (cmd/coll-bench's closed-form LogGP model) and tests.
func CollTopoChildren(radix, rr, p int) []int {
	return topoForRadix(radix, p).Children(rr, p)
}

// autoRadixCandidates are the k-nomial radices AutoRadix compares. Radix
// 2 (binomial, maximal depth / minimal fan-out) anchors one end; 16
// (shallow, fan-out-heavy) the other.
var autoRadixCandidates = [...]int{2, 3, 4, 8, 16}

// CollTreeTime is the closed-form completion time of one small-message
// k-nomial broadcast round set over p ranks under model m: each parent
// serializes one (o + gap) per child on its NIC before the wire latency
// L, so larger radices trade tree depth against per-node fan-out. This
// is the same recurrence cmd/coll-bench plots against the measured
// engine; AutoRadix minimizes it.
func CollTreeTime(m gasnet.Model, radix, p, nbytes int) time.Duration {
	if p <= 1 {
		return 0
	}
	topo := topoForRadix(radix, p)
	// ready[rr] is when relative rank rr holds the payload; children of
	// rr receive at ready[rr] + (i+1)*(o+gap) + L in fan-out order. The
	// k-nomial child lists are ordered nearest-subtree-first, and every
	// child's relative rank exceeds its parent's, so one ascending pass
	// settles every rank.
	ready := make([]time.Duration, p)
	var last time.Duration
	for rr := 0; rr < p; rr++ {
		if ready[rr] > last {
			last = ready[rr]
		}
		t := ready[rr]
		for _, c := range topo.Children(rr, p) {
			t += m.Overhead(nbytes, false) + m.Gap(nbytes, false)
			ready[c] = t + m.Latency(nbytes, false)
		}
	}
	return last
}

// AutoRadix picks the collective radix for a job of p ranks from the
// machine model's o/g/L: the candidate k-nomial radix with the lowest
// modeled small-message broadcast completion time. Config.CollRadix = 0
// routes through here at world creation when a real-time model is
// configured, replacing the static binomial default; a model with no
// cost structure (every candidate ties at zero) keeps the default.
func AutoRadix(m gasnet.Model, p int) int {
	if m == nil || p <= collFlatMax {
		return 0
	}
	best, bestT := 0, time.Duration(-1)
	for _, k := range autoRadixCandidates {
		t := CollTreeTime(m, k, p, 8)
		if bestT < 0 || t < bestT {
			best, bestT = k, t
		}
	}
	if bestT == 0 {
		return 0 // zero-delay model: no trade to tune
	}
	return best
}

// --- wire format ---------------------------------------------------------

// Collective messages share one self-describing header, whether they
// travel as a lowered AM operation or piggybacked on a copy's last
// landing hop:
//
//	| magic 0xC6 | version 1 | team u64 | seq u64 | kind u8 | round u8 |
//	| src u32 LE | datalen uvarint | data |
//
// decodeCollMsg rejects anything malformed; FuzzCollWire hammers it with
// hostile bytes and checks the canonical round-trip property, exactly
// like FuzzRemoteCxWire does for the remote-cx header.

const (
	collMagic   = 0xC6
	collVersion = 1
)

// Collective message kinds.
const (
	collBarrier uint8 = 1 + iota // barrier arrive (up) / release (down)
	collBcast                    // broadcast payload, down the tree
	collReduce                   // reduction partial, up the tree
	collGather                   // flat gather part, to the root
	collAddr                     // operand/staging buffer address
	collLand                     // payload landed (piggybacked on a copy)
)

const collKindMax = collLand

// Rounds disambiguate direction within one kind.
const (
	collRoundUp uint8 = iota
	collRoundDown
)

func collKindName(k uint8) string {
	switch k {
	case collBarrier:
		return "barrier"
	case collBcast:
		return "bcast"
	case collReduce:
		return "reduce"
	case collGather:
		return "gather"
	case collAddr:
		return "addr"
	case collLand:
		return "land"
	default:
		return fmt.Sprintf("coll(%d)", k)
	}
}

// collMsg is one decoded collective message.
type collMsg struct {
	team  uint64
	seq   uint64
	kind  uint8
	round uint8
	src   uint32 // sender's team rank
	data  []byte
}

// encodeCollMsg builds the wire form.
func encodeCollMsg(m collMsg) []byte {
	e := serial.NewEncoder(make([]byte, 0, 28+len(m.data)))
	e.PutU8(collMagic)
	e.PutU8(collVersion)
	e.PutU64(m.team)
	e.PutU64(m.seq)
	e.PutU8(m.kind)
	e.PutU8(m.round)
	e.PutU32(m.src)
	e.PutUvarint(uint64(len(m.data)))
	e.PutRaw(m.data)
	return e.Bytes()
}

// decodeCollMsg parses and validates the wire form.
func decodeCollMsg(b []byte) (collMsg, error) {
	var m collMsg
	d := serial.NewDecoder(b)
	magic := d.U8()
	version := d.U8()
	m.team = d.U64()
	m.seq = d.U64()
	m.kind = d.U8()
	m.round = d.U8()
	m.src = d.U32()
	dlen := d.Uvarint()
	if d.Err() != nil {
		return m, d.Err()
	}
	if magic != collMagic {
		return m, fmt.Errorf("collective message: bad magic %#x", magic)
	}
	if version != collVersion {
		return m, fmt.Errorf("collective message: unsupported version %d", version)
	}
	if m.kind == 0 || m.kind > collKindMax {
		return m, fmt.Errorf("collective message: unknown kind %d", m.kind)
	}
	if m.round > collRoundDown {
		return m, fmt.Errorf("collective message: unknown round %d", m.round)
	}
	if m.src > 1<<31-1 {
		return m, fmt.Errorf("collective message: sender team rank %d out of range", m.src)
	}
	if dlen != uint64(d.Remaining()) {
		return m, fmt.Errorf("collective message: data length %d does not match remaining %d bytes",
			dlen, d.Remaining())
	}
	m.data = d.Raw(int(dlen))
	if err := d.Finish(); err != nil {
		return m, err
	}
	return m, nil
}

// collBufAddr is the byte-level address of one rank's collective operand
// or staging slot within its own segments — the payload of collAddr
// messages and of the landing notices of buffer collectives. The owner
// is implicit (the message's sender/receiver).
type collBufAddr struct {
	kind uint8
	dev  uint16
	off  uint64
}

func (a collBufAddr) segID() gasnet.SegID {
	if MemKind(a.kind) == KindDevice {
		return gasnet.SegID(a.dev)
	}
	return gasnet.HostSeg
}

func encodeCollAddr(a collBufAddr) []byte {
	e := serial.NewEncoder(make([]byte, 0, 11))
	e.PutU8(a.kind)
	e.PutU16(a.dev)
	e.PutU64(a.off)
	return e.Bytes()
}

func decodeCollAddr(rk *Rank, b []byte) collBufAddr {
	d := serial.NewDecoder(b)
	a := collBufAddr{kind: d.U8(), dev: d.U16(), off: d.U64()}
	if d.Err() != nil || d.Finish() != nil {
		panic(fmt.Sprintf("upcxx: rank %d malformed collective buffer address", rk.me))
	}
	return a
}

// --- engine --------------------------------------------------------------

// collKey names one in-flight collective: team id plus the team's
// per-rank collective sequence number (assigned in entry order on the
// execution persona, so matching calls across ranks share a key).
type collKey struct {
	team uint64
	seq  uint64
}

// collState is the one generic per-collective state shape: messages that
// arrive before the local rank enters the collective buffer in the
// inbox; once entered, the collective registers recv and every message
// (buffered or live) flows through it. The per-collective logic lives in
// the recv closures — there are no per-kind state machines.
type collState struct {
	inbox []collMsg
	recv  func(collMsg)
}

// collEngine drives every collective of one rank. All state is owned by
// the rank's execution persona: entry bodies and message arrivals both
// route there (execBody), so the maps and closures are single-threaded
// by construction no matter which persona initiates or which goroutine
// harvests the conduit.
type collEngine struct {
	rk     *Rank
	radix  int
	states map[collKey]*collState
	seqs   map[uint64]uint64 // per-team collective sequence numbers
}

func newCollEngine(rk *Rank, radix int) *collEngine {
	if radix < 0 {
		panic("upcxx: Config.CollRadix must be non-negative")
	}
	return &collEngine{
		rk:     rk,
		radix:  radix,
		states: make(map[collKey]*collState),
		seqs:   make(map[uint64]uint64),
	}
}

func (e *collEngine) topoFor(p int) collTopo { return topoForRadix(e.radix, p) }

func (e *collEngine) get(key collKey) *collState {
	st, ok := e.states[key]
	if !ok {
		st = &collState{}
		e.states[key] = st
	}
	return st
}

// enter hands one collective's entry to the execution persona: the
// sequence number is assigned there (in entry order), start installs the
// collective's recv, and any messages that arrived early are drained
// through it.
func (e *collEngine) enter(t *Team, start func(key collKey, st *collState)) {
	// Engine state must advance on exactly one goroutine. execBody's
	// inline fallback for worlds driven without Run would execute bodies
	// on arbitrary calling/harvesting goroutines — fine for independent
	// RPC bodies, racy for the engine's maps — so collectives require a
	// held execution persona; fail loud (as the seed's master-persona
	// check did) instead of corrupting state. In progress-thread mode
	// execBody always serializes onto the progress persona, held from
	// world construction.
	if !e.rk.w.cfg.ProgressThread && e.rk.master.holder.Load() == 0 {
		panic(fmt.Sprintf("upcxx: rank %d: collectives require a held master persona (use World.Run) or Config.ProgressThread", e.rk.me))
	}
	e.rk.execBody(func() {
		seq := e.seqs[t.id]
		e.seqs[t.id] = seq + 1
		key := collKey{t.id, seq}
		st := e.get(key)
		start(key, st)
		for st.recv != nil && len(st.inbox) > 0 {
			m := st.inbox[0]
			st.inbox = st.inbox[1:]
			st.recv(m)
		}
	})
}

// onMsg advances one collective with an arrived message; runs only on
// the execution persona (see handleColl).
func (e *collEngine) onMsg(m collMsg) {
	st := e.get(collKey{m.team, m.seq})
	if st.recv == nil {
		st.inbox = append(st.inbox, m)
		return
	}
	st.recv(m)
}

// finish retires one collective and fires its completion plan: the
// remote-RPC descriptor (if not already fired at payload landing), then
// the operation deliveries to their initiating personas.
func (e *collEngine) finish(key collKey, st *collState, plan *cxPlan) {
	st.recv = nil
	delete(e.states, key)
	plan.collRemoteLocal()
	plan.collOpDone()
}

// handleColl is the conduit AM handler for collective traffic — both
// header AMs lowered through inject and landing notices piggybacked on
// copy hop chains arrive here. The message may be harvested by any
// goroutine making progress; the engine always advances on the
// execution persona.
func (w *World) handleColl(ep *gasnet.Endpoint, src gasnet.Rank, payload []byte, _ any) {
	rk := w.ranks[ep.Rank()]
	m, err := decodeCollMsg(payload)
	if err != nil {
		panic(fmt.Sprintf("upcxx: rank %d malformed collective message from %d: %v", rk.me, src, err))
	}
	rk.execBody(func() { rk.coll.onMsg(m) })
}

// sendMsg lowers one collective header hop to an AM operation and hands
// it to the single injection path. dest is a team rank.
func (e *collEngine) sendMsg(t *Team, dest Intrank, m collMsg) {
	if e.rk.ro != nil {
		e.rk.ro.CountOp(obs.KindCollRound)
	}
	op := rmaOp{
		kind:    opAM,
		dstPeer: t.ranks[dest],
		amID:    e.rk.w.amColl,
		buf:     encodeCollMsg(m),
	}
	e.rk.inject([]rmaOp{op}, &cxPlan{rk: e.rk, remotePeer: t.ranks[dest]})
}

// copyTo lowers one collective data hop — a kind-aware copy of nbytes
// from this rank's src buffer into dst on team rank dest — through
// inject, with the advance message piggybacked on the hop chain's final
// landing (after the destination's h2d DMA for device memory: the
// receiver provably observes the payload) and onOpDone delivered to the
// execution persona at initiator-side operation completion (the source
// bytes are stable until then).
func (e *collEngine) copyTo(t *Team, dest Intrank, src, dst collBufAddr, nbytes int, land collMsg, onOpDone func()) {
	rk := e.rk
	if rk.ro != nil {
		rk.ro.CountOp(obs.KindCollRound)
	}
	world := t.ranks[dest]
	plan := &cxPlan{rk: rk, remotePeer: world}
	plan.remoteAM = &gasnet.RemoteAM{Handler: rk.w.amColl, Payload: encodeCollMsg(land)}
	plan.op = []cxDelivery{{pers: rk.execPersona(), fn: onOpDone}}
	op := rmaOp{
		kind:    opCopy,
		srcPeer: rk.me,
		srcSeg:  src.segID(),
		srcOff:  src.off,
		dstPeer: world,
		dstSeg:  dst.segID(),
		dstOff:  dst.off,
		nbytes:  nbytes,
	}
	rk.inject([]rmaOp{op}, plan)
}

// fulfillFromEngine routes a value-promise fulfillment from the engine
// back to the promise's owning persona (inline when the engine persona
// is the owner, by LPC otherwise — the same edge RMA completions ride).
func fulfillFromEngine[T any](p *Promise[T], v T) {
	pers := p.c.pers
	if pers == nil || pers.onOwnerGoroutine() {
		p.fulfillOwnedResult(v)
		return
	}
	pers.LPC(func() { p.fulfillOwnedResult(v) })
}

// --- barrier -------------------------------------------------------------

// BarrierAsyncWith begins a non-blocking barrier over the team with an
// explicit completion set: an arrive wave gossips up the team's tree and
// a release wave fans back down. Operation completion fires at local
// release; a RemoteCxAsRPC descriptor runs on this rank's execution
// persona at that same edge, delivered from the arrival path.
func (t *Team) BarrierAsyncWith(cxs ...Cx) CxFutures {
	rk := t.rk
	plan := newCxPlan(rk, opColl, rk.me, cxs)
	e := rk.coll
	e.enter(t, func(key collKey, st *collState) { e.barrier(t, key, st, plan) })
	return plan.futs
}

func (e *collEngine) barrier(t *Team, key collKey, st *collState, plan *cxPlan) {
	p := int(t.RankN())
	if p == 1 {
		e.finish(key, st, plan)
		return
	}
	topo := e.topoFor(p)
	rr := int(t.me)
	children := topo.Children(rr, p)
	need, got := len(children), 0
	release := func() {
		for _, c := range children {
			e.sendMsg(t, Intrank(c), collMsg{team: key.team, seq: key.seq,
				kind: collBarrier, round: collRoundDown, src: uint32(t.me)})
		}
		e.finish(key, st, plan)
	}
	arrive := func() {
		if rr == 0 {
			release()
			return
		}
		e.sendMsg(t, Intrank(topo.Parent(rr, p)), collMsg{team: key.team, seq: key.seq,
			kind: collBarrier, round: collRoundUp, src: uint32(t.me)})
	}
	st.recv = func(m collMsg) {
		if m.kind != collBarrier {
			panic(fmt.Sprintf("upcxx: rank %d: unexpected %s message in a barrier", e.rk.me, collKindName(m.kind)))
		}
		if m.round == collRoundUp {
			got++
			if got == need {
				arrive()
			}
		} else {
			release()
		}
	}
	if need == 0 {
		arrive()
	}
}

// --- broadcast (value) ---------------------------------------------------

// BroadcastWith distributes root's value to every team member down the
// team's tree with an explicit completion set, returning the value
// future plus the requested completion futures. A RemoteCxAsRPC
// descriptor runs on each member's execution persona the moment the
// payload arrives there — even if that member's user code is still
// computing past the call — which is the barrier-free multicast signal.
func BroadcastWith[T any](t *Team, root Intrank, val T, cxs ...Cx) (Future[T], CxFutures) {
	rk := t.rk
	if root < 0 || root >= t.RankN() {
		panic(fmt.Sprintf("upcxx: Broadcast root %d out of range for %v", root, t))
	}
	plan := newCxPlan(rk, opColl, rk.me, cxs)
	prom := NewPromise[T](rk)
	e := rk.coll
	e.enter(t, func(key collKey, st *collState) {
		p := int(t.RankN())
		if p == 1 {
			fulfillFromEngine(prom, val)
			e.finish(key, st, plan)
			return
		}
		topo := e.topoFor(p)
		rr := (int(t.me) - int(root) + p) % p
		forward := func(data []byte) {
			for _, c := range topo.Children(rr, p) {
				child := Intrank((c + int(root)) % p)
				e.sendMsg(t, child, collMsg{team: key.team, seq: key.seq,
					kind: collBcast, src: uint32(t.me), data: data})
			}
		}
		if rr == 0 {
			forward(mustMarshal(val))
			fulfillFromEngine(prom, val)
			e.finish(key, st, plan)
			return
		}
		st.recv = func(m collMsg) {
			if m.kind != collBcast {
				panic(fmt.Sprintf("upcxx: rank %d: unexpected %s message in a broadcast", rk.me, collKindName(m.kind)))
			}
			forward(m.data)
			var v T
			mustUnmarshal(m.data, &v)
			fulfillFromEngine(prom, v)
			e.finish(key, st, plan)
		}
	})
	return prom.Future(), plan.futs
}

// --- reduction (value) ---------------------------------------------------

// ReduceOneWith combines every member's val with op up the team's tree,
// delivering the result at team rank 0 (other members' value futures
// ready with the zero value once their subtree partial is sent), with an
// explicit completion set. op must be associative and commutative.
func ReduceOneWith[T any](t *Team, val T, op func(T, T) T, cxs ...Cx) (Future[T], CxFutures) {
	rk := t.rk
	plan := newCxPlan(rk, opColl, rk.me, cxs)
	prom := NewPromise[T](rk)
	e := rk.coll
	e.enter(t, func(key collKey, st *collState) {
		p := int(t.RankN())
		if p == 1 {
			fulfillFromEngine(prom, val)
			e.finish(key, st, plan)
			return
		}
		topo := e.topoFor(p)
		rr := int(t.me)
		need, got := len(topo.Children(rr, p)), 0
		acc := val
		done := func() {
			if rr == 0 {
				fulfillFromEngine(prom, acc)
			} else {
				e.sendMsg(t, Intrank(topo.Parent(rr, p)), collMsg{team: key.team, seq: key.seq,
					kind: collReduce, src: uint32(t.me), data: mustMarshal(acc)})
				var zero T
				fulfillFromEngine(prom, zero)
			}
			e.finish(key, st, plan)
		}
		st.recv = func(m collMsg) {
			if m.kind != collReduce {
				panic(fmt.Sprintf("upcxx: rank %d: unexpected %s message in a reduction", rk.me, collKindName(m.kind)))
			}
			var v T
			mustUnmarshal(m.data, &v)
			acc = op(acc, v)
			got++
			if got == need {
				done()
			}
		}
		if need == 0 {
			done()
		}
	})
	return prom.Future(), plan.futs
}

// AllReduceWith combines every member's val with op and delivers the
// result to every member, with an explicit completion set: partials flow
// up the team's tree and the result fans back down the same tree within
// one collective (no separate broadcast call). A RemoteCxAsRPC
// descriptor runs on each member's execution persona when the result
// arrives there.
func AllReduceWith[T any](t *Team, val T, op func(T, T) T, cxs ...Cx) (Future[T], CxFutures) {
	rk := t.rk
	plan := newCxPlan(rk, opColl, rk.me, cxs)
	prom := NewPromise[T](rk)
	e := rk.coll
	e.enter(t, func(key collKey, st *collState) {
		p := int(t.RankN())
		if p == 1 {
			fulfillFromEngine(prom, val)
			e.finish(key, st, plan)
			return
		}
		topo := e.topoFor(p)
		rr := int(t.me)
		children := topo.Children(rr, p)
		need, got := len(children), 0
		acc := val
		down := func(data []byte, v T) {
			for _, c := range children {
				e.sendMsg(t, Intrank(c), collMsg{team: key.team, seq: key.seq,
					kind: collBcast, src: uint32(t.me), data: data})
			}
			fulfillFromEngine(prom, v)
			e.finish(key, st, plan)
		}
		up := func() {
			if rr == 0 {
				down(mustMarshal(acc), acc)
				return
			}
			e.sendMsg(t, Intrank(topo.Parent(rr, p)), collMsg{team: key.team, seq: key.seq,
				kind: collReduce, src: uint32(t.me), data: mustMarshal(acc)})
		}
		st.recv = func(m collMsg) {
			switch m.kind {
			case collReduce:
				var v T
				mustUnmarshal(m.data, &v)
				acc = op(acc, v)
				got++
				if got == need {
					up()
				}
			case collBcast:
				var v T
				mustUnmarshal(m.data, &v)
				down(m.data, v)
			default:
				panic(fmt.Sprintf("upcxx: rank %d: unexpected %s message in an allreduce", rk.me, collKindName(m.kind)))
			}
		}
		if need == 0 {
			up()
		}
	})
	return prom.Future(), plan.futs
}

// --- gather (flat) -------------------------------------------------------

// gatherBytesAt collects one byte payload per member at team rank root.
// The root's future yields the payloads indexed by team rank; other
// members' futures ready immediately with nil. Flat and therefore
// non-scalable; the runtime uses it for team construction and the Gather
// convenience, the tree collectives cover the scalable cases.
func gatherBytesAt(t *Team, root Intrank, data []byte) Future[[][]byte] {
	rk := t.rk
	if root < 0 || root >= t.RankN() {
		panic(fmt.Sprintf("upcxx: Gather root %d out of range for %v", root, t))
	}
	prom := NewPromise[[][]byte](rk)
	e := rk.coll
	e.enter(t, func(key collKey, st *collState) {
		p := int(t.RankN())
		plan := &cxPlan{rk: rk, remotePeer: rk.me}
		if p == 1 {
			fulfillFromEngine(prom, [][]byte{data})
			e.finish(key, st, plan)
			return
		}
		if t.me != root {
			e.sendMsg(t, root, collMsg{team: key.team, seq: key.seq,
				kind: collGather, src: uint32(t.me), data: data})
			fulfillFromEngine[[][]byte](prom, nil)
			e.finish(key, st, plan)
			return
		}
		parts := make(map[Intrank][]byte, p-1)
		st.recv = func(m collMsg) {
			if m.kind != collGather {
				panic(fmt.Sprintf("upcxx: rank %d: unexpected %s message in a gather", rk.me, collKindName(m.kind)))
			}
			parts[Intrank(m.src)] = m.data
			if len(parts) == p-1 {
				out := make([][]byte, p)
				out[root] = data
				for r, b := range parts {
					out[r] = b
				}
				fulfillFromEngine(prom, out)
				e.finish(key, st, plan)
			}
		}
	})
	return prom.Future()
}

// --- tree exchange (gather up, result down) -------------------------------

// collFrames encodes a set of (team rank, payload) frames — the unit a
// tree gather aggregates hop by hop.
func encodeCollFrames(frames map[uint32][]byte) []byte {
	e := serial.NewEncoder(nil)
	e.PutUvarint(uint64(len(frames)))
	for r, b := range frames {
		e.PutU32(r)
		e.PutUvarint(uint64(len(b)))
		e.PutRaw(b)
	}
	return e.Bytes()
}

func decodeCollFrames(rk *Rank, data []byte, into map[uint32][]byte) {
	d := serial.NewDecoder(data)
	n := d.Uvarint()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		r := d.U32()
		l := d.Uvarint()
		into[r] = d.Raw(int(l))
	}
	if d.Err() != nil || d.Finish() != nil {
		panic(fmt.Sprintf("upcxx: rank %d malformed tree-gather frame set", rk.me))
	}
}

// exchangeBytesTree is the non-blocking tree exchange team construction
// rides: every member contributes one byte payload; payloads aggregate
// up the team's tree (collGather rounds, each hop concatenating its
// subtree's frames), the root applies reduce to all p payloads indexed
// by team rank, and the result fans back down the same tree (collBcast
// rounds). The returned future yields the result bytes on every member.
// Contrast gatherBytesAt: the root absorbs its tree degree in messages
// instead of p-1, so team churn scales with the topology like every
// other collective.
func exchangeBytesTree(t *Team, data []byte, reduce func([][]byte) []byte) Future[[]byte] {
	rk := t.rk
	prom := NewPromise[[]byte](rk)
	e := rk.coll
	e.enter(t, func(key collKey, st *collState) {
		p := int(t.RankN())
		plan := &cxPlan{rk: rk, remotePeer: rk.me}
		if p == 1 {
			fulfillFromEngine(prom, reduce([][]byte{data}))
			e.finish(key, st, plan)
			return
		}
		topo := e.topoFor(p)
		rr := int(t.me)
		children := topo.Children(rr, p)
		frames := map[uint32][]byte{uint32(rr): data}
		need, got := len(children), 0
		down := func(res []byte) {
			for _, c := range children {
				e.sendMsg(t, Intrank(c), collMsg{team: key.team, seq: key.seq,
					kind: collBcast, round: collRoundDown, src: uint32(t.me), data: res})
			}
			fulfillFromEngine(prom, res)
			e.finish(key, st, plan)
		}
		up := func() {
			if rr == 0 {
				all := make([][]byte, p)
				for r, b := range frames {
					all[r] = b
				}
				down(reduce(all))
				return
			}
			e.sendMsg(t, Intrank(topo.Parent(rr, p)), collMsg{team: key.team, seq: key.seq,
				kind: collGather, round: collRoundUp, src: uint32(t.me), data: encodeCollFrames(frames)})
		}
		st.recv = func(m collMsg) {
			switch m.kind {
			case collGather:
				decodeCollFrames(rk, m.data, frames)
				got++
				if got == need {
					up()
				}
			case collBcast:
				down(m.data)
			default:
				panic(fmt.Sprintf("upcxx: rank %d: unexpected %s message in a tree exchange", rk.me, collKindName(m.kind)))
			}
		}
		if need == 0 {
			up()
		}
	})
	return prom.Future()
}

// --- kind-aware buffer collectives ---------------------------------------

// Buffer collectives operate on each member's own local operand — a
// GPtr of either memory kind — instead of marshaled values. Payloads
// move as kind-aware conduit copies (device legs ride the DMA engine;
// device data never bounces through host serialization), folds run
// through RunKernel for device operands, and the advance message
// piggybacks on each copy's final landing hop, so a device receiver's
// notification fires only after its h2d DMA.

// checkBufOperand validates a buffer-collective operand and lowers it.
func checkBufOperand[T serial.Scalar](rk *Rank, buf GPtr[T], op string) collBufAddr {
	if buf.IsNil() {
		panic("upcxx: " + op + " on nil GPtr")
	}
	if buf.Owner != rk.me {
		panic(fmt.Sprintf("upcxx: %s operand %v is not local to rank %d (each member passes its own buffer)", op, buf, rk.me))
	}
	buf.segID(op) // kind/device consistency
	return collBufAddr{kind: uint8(buf.Kind), dev: buf.Dev, off: buf.Off}
}

// BroadcastBufWith distributes the root's n-element buffer into every
// member's own local buffer (any memory kind; kinds may differ across
// ranks) down the team's tree. Each hop is one kind-aware conduit copy
// with the landing notice piggybacked, so a RemoteCxAsRPC descriptor
// runs on this rank's execution persona strictly after the payload is
// visible in its buffer — for device buffers, after the h2d DMA.
// Operation completion additionally waits until this rank's buffer has
// been forwarded to its subtree (the buffer may then be reused).
func BroadcastBufWith[T serial.Scalar](t *Team, root Intrank, buf GPtr[T], n int, cxs ...Cx) CxFutures {
	rk := t.rk
	if root < 0 || root >= t.RankN() {
		panic(fmt.Sprintf("upcxx: BroadcastBuf root %d out of range for %v", root, t))
	}
	addr := checkBufOperand(rk, buf, "BroadcastBuf")
	plan := newCxPlan(rk, opColl, rk.me, cxs)
	nb := n * serial.SizeOf[T]()
	e := rk.coll
	e.enter(t, func(key collKey, st *collState) { e.broadcastBuf(t, key, st, root, addr, nb, plan) })
	return plan.futs
}

func (e *collEngine) broadcastBuf(t *Team, key collKey, st *collState, root Intrank, buf collBufAddr, nbytes int, plan *cxPlan) {
	p := int(t.RankN())
	if p == 1 {
		e.finish(key, st, plan)
		return
	}
	topo := e.topoFor(p)
	rr := (int(t.me) - int(root) + p) % p
	nchild := len(topo.Children(rr, p))
	have := rr == 0
	sent, inflight := 0, 0
	tryFinish := func() {
		if have && sent == nchild && inflight == 0 {
			e.finish(key, st, plan)
		}
	}
	push := func(child Intrank, caddr collBufAddr) {
		sent++
		inflight++
		land := collMsg{team: key.team, seq: key.seq, kind: collLand, round: collRoundDown, src: uint32(t.me)}
		e.copyTo(t, child, buf, caddr, nbytes, land, func() { inflight--; tryFinish() })
	}
	if rr != 0 {
		// Rendezvous: tell the parent where my landing buffer lives.
		parent := Intrank((topo.Parent(rr, p) + int(root)) % p)
		e.sendMsg(t, parent, collMsg{team: key.team, seq: key.seq,
			kind: collAddr, round: collRoundUp, src: uint32(t.me), data: encodeCollAddr(buf)})
	}
	pending := make(map[Intrank]collBufAddr)
	st.recv = func(m collMsg) {
		switch m.kind {
		case collAddr:
			caddr := decodeCollAddr(e.rk, m.data)
			if have {
				push(Intrank(m.src), caddr)
			} else {
				pending[Intrank(m.src)] = caddr
			}
		case collLand:
			have = true
			// The payload is visible in my buffer (post-DMA for device
			// kinds): fire the member-side signal now, before forwarding.
			plan.collRemoteLocal()
			for c, a := range pending {
				push(c, a)
			}
			pending = nil
			tryFinish()
		default:
			panic(fmt.Sprintf("upcxx: rank %d: unexpected %s message in a buffer broadcast", e.rk.me, collKindName(m.kind)))
		}
	}
}

// collFoldHooks carries the element-typed pieces of a buffer reduction
// into the byte-addressed engine: staging allocation in the operand's
// own memory kind, the elementwise fold of a round's landed staging
// slots into the operand, and teardown. foldAll receives every landed
// slot of the round at once: device kinds fold them in one fused
// kernel launch riding the last child's landing (counted and costed
// via ChargeFusedFold), not one launch per child.
type collFoldHooks struct {
	allocStage func(slots int) collBufAddr
	freeStage  func()
	foldAll    func(slots []int)
}

// ReduceOneBufWith combines every member's n-element buffer elementwise
// with op up the team's tree, leaving the result in team rank 0's
// buffer. Device operands reduce device-resident: children's partials
// arrive as DMA-costed conduit copies into staging allocated from da and
// fold via RunKernel — the payload never bounces through host
// serialization. Non-root buffers are working accumulators and hold
// their subtree's partial afterwards. da is required for device
// operands (the owning allocator) and ignored for host operands.
func ReduceOneBufWith[T serial.Scalar](t *Team, da *DeviceAllocator, buf GPtr[T], n int, op func(T, T) T, cxs ...Cx) CxFutures {
	return reduceBufWith(t, da, buf, n, op, false, cxs)
}

// AllReduceBufWith is ReduceOneBufWith with the result fanned back down
// the same tree, leaving it in every member's buffer. A RemoteCxAsRPC
// descriptor runs on each member's execution persona when the result
// has landed in its buffer (post-DMA for device kinds).
func AllReduceBufWith[T serial.Scalar](t *Team, da *DeviceAllocator, buf GPtr[T], n int, op func(T, T) T, cxs ...Cx) CxFutures {
	return reduceBufWith(t, da, buf, n, op, true, cxs)
}

func reduceBufWith[T serial.Scalar](t *Team, da *DeviceAllocator, buf GPtr[T], n int, op func(T, T) T, allreduce bool, cxs []Cx) CxFutures {
	rk := t.rk
	opName := "ReduceOneBuf"
	if allreduce {
		opName = "AllReduceBuf"
	}
	addr := checkBufOperand(rk, buf, opName)
	if buf.Kind == KindDevice {
		if da == nil {
			panic("upcxx: " + opName + " over a device operand needs its DeviceAllocator")
		}
		if da.rk != rk || da.id != buf.Dev {
			panic(fmt.Sprintf("upcxx: %s operand %v is not in %v", opName, buf, da))
		}
	}
	plan := newCxPlan(rk, opColl, rk.me, cxs)
	nb := n * serial.SizeOf[T]()
	stage := NilGPtr[T]()
	hooks := collFoldHooks{
		allocStage: func(slots int) collBufAddr {
			if buf.Kind == KindDevice {
				stage = MustNewDeviceArray[T](da, n*slots)
			} else {
				stage = MustNewArray[T](rk, n*slots)
			}
			return collBufAddr{kind: uint8(stage.Kind), dev: stage.Dev, off: stage.Off}
		},
		freeStage: func() {
			if !stage.IsNil() {
				_ = Delete(rk, stage)
				stage = NilGPtr[T]()
			}
		},
		foldAll: func(slots []int) {
			if len(slots) == 0 {
				return
			}
			if buf.Kind == KindDevice {
				// One fused kernel for the whole round: the launch reads
				// every landed slot against the accumulator in a single
				// pass, charged to the device as one FoldGap occupancy.
				rk.ep.ChargeFusedFold(nb, len(slots))
				RunKernel(da, buf, n, func(dst []T) {
					RunKernel(da, stage, n*len(slots), func(src []T) {
						for _, slot := range slots {
							base := slot * n
							for i := range dst {
								dst[i] = op(dst[i], src[base+i])
							}
						}
					})
				})
				return
			}
			dst := Local(rk, buf, n)
			for _, slot := range slots {
				src := Local(rk, stage.Add(slot*n), n)
				for i := range dst {
					dst[i] = op(dst[i], src[i])
				}
			}
		},
	}
	e := rk.coll
	e.enter(t, func(key collKey, st *collState) {
		e.reduceBuf(t, key, st, addr, nb, hooks, allreduce, plan)
	})
	return plan.futs
}

func (e *collEngine) reduceBuf(t *Team, key collKey, st *collState, buf collBufAddr, nbytes int, hooks collFoldHooks, allreduce bool, plan *cxPlan) {
	rk := e.rk
	p := int(t.RankN())
	if p == 1 {
		e.finish(key, st, plan)
		return
	}
	topo := e.topoFor(p)
	rr := int(t.me) // rooted at team rank 0
	children := topo.Children(rr, p)
	slotOf := make(map[Intrank]int, len(children))
	childBuf := make(map[Intrank]collBufAddr, len(children))
	if len(children) > 0 {
		// Rendezvous: allocate one staging slot per child in the operand's
		// own memory kind and tell each child where to push its partial.
		stage := hooks.allocStage(len(children))
		for i, c := range children {
			slotOf[Intrank(c)] = i
			slot := collBufAddr{kind: stage.kind, dev: stage.dev, off: stage.off + uint64(i*nbytes)}
			e.sendMsg(t, Intrank(c), collMsg{team: key.team, seq: key.seq,
				kind: collAddr, round: collRoundDown, src: uint32(t.me), data: encodeCollAddr(slot)})
		}
	}
	downInflight := 0
	landedSlots := make([]int, 0, len(children))
	var parentSlot *collBufAddr
	pushed, pushDone, resultSeen, subtreeHandled := false, false, false, false
	finishLocal := func() {
		hooks.freeStage()
		e.finish(key, st, plan)
	}
	tryFinish := func() {
		switch {
		case rr == 0:
			if resultSeen && downInflight == 0 {
				finishLocal()
			}
		case !allreduce:
			if pushed && pushDone {
				finishLocal()
			}
		default:
			if pushDone && resultSeen && downInflight == 0 {
				finishLocal()
			}
		}
	}
	fanDown := func() {
		for _, c := range children {
			ct := Intrank(c)
			downInflight++
			land := collMsg{team: key.team, seq: key.seq, kind: collLand, round: collRoundDown, src: uint32(t.me)}
			e.copyTo(t, ct, buf, childBuf[ct], nbytes, land, func() { downInflight--; tryFinish() })
		}
		tryFinish()
	}
	maybeAdvance := func() {
		if subtreeHandled || len(landedSlots) != len(children) {
			return
		}
		if rr != 0 && parentSlot == nil {
			return
		}
		subtreeHandled = true
		if rr == 0 {
			if !allreduce {
				finishLocal()
				return
			}
			// The result sits in my buffer: signal locally, fan it down.
			resultSeen = true
			plan.collRemoteLocal()
			fanDown()
			return
		}
		// Push my subtree's partial into the parent's staging slot; the
		// landing notice carries my buffer address so an allreduce can fan
		// the result straight back into it.
		pushed = true
		up := collMsg{team: key.team, seq: key.seq, kind: collLand, round: collRoundUp,
			src: uint32(t.me), data: encodeCollAddr(buf)}
		e.copyTo(t, Intrank(topo.Parent(rr, p)), buf, *parentSlot, nbytes, up,
			func() { pushDone = true; tryFinish() })
	}
	st.recv = func(m collMsg) {
		switch m.kind {
		case collAddr:
			a := decodeCollAddr(rk, m.data)
			parentSlot = &a
			maybeAdvance()
		case collLand:
			if m.round == collRoundUp {
				// A child's subtree partial landed in its staging slot.
				// Folds are deferred to the round's last landing and run
				// fused: one launch over every landed slot, not one per
				// child.
				c := Intrank(m.src)
				i, ok := slotOf[c]
				if !ok {
					panic(fmt.Sprintf("upcxx: rank %d: reduction partial from unexpected team rank %d", rk.me, c))
				}
				childBuf[c] = decodeCollAddr(rk, m.data)
				landedSlots = append(landedSlots, i)
				if len(landedSlots) == len(children) {
					hooks.foldAll(landedSlots)
				}
				maybeAdvance()
				return
			}
			// The allreduce result landed in my buffer (post-DMA): signal,
			// then forward it to my subtree.
			resultSeen = true
			plan.collRemoteLocal()
			fanDown()
		default:
			panic(fmt.Sprintf("upcxx: rank %d: unexpected %s message in a buffer reduction", rk.me, collKindName(m.kind)))
		}
	}
	maybeAdvance()
}
