package upcxx

import "upcxx/internal/serial"

// Remote completions (upcxx remote_cx::as_rpc): attach an RPC to the
// *remote* completion of a one-sided put — the target-side notification
// fires only after the transferred data is globally visible in its
// segment. The paper's §V-A singles this ability out ("attach an
// operation which effectively serves as a completion handler") as a key
// advantage of the v1.0 design over v0.1, where nothing could be chained
// to an RMA.
//
// These helpers are thin compositions over the completion-object system
// (completion.go): RemoteCxAsRPC rides the conduit put itself — the
// notification AM is enqueued at the destination the instant the final
// wire/DMA hop lands, one message total, no follow-up round trip. That is
// the GASNet-EX signaling put the paper's halo-exchange benchmarks lean
// on; EXPERIMENTS.md quantifies the round trip it saves over the put+RPC
// idiom.

// RPutSignal is the signaling put: the notification RPC runs at the
// target after the data lands, piggybacked on the transfer itself, with
// no acknowledgment of its execution (remote_cx::as_rpc). The returned
// future is the put's operation completion.
func RPutSignal[T serial.Scalar, A any](rk *Rank, src []T, dst GPtr[T], fn func(*Rank, A), arg A) Future[Unit] {
	return RPutWith(rk, src, dst, OpCxAsFuture(), RemoteCxAsRPC(fn, arg)).Op
}

// RPutThenRemote performs RPut(src, dst) and, once the data is remotely
// visible, invokes fn(arg) on dst's owner. Unlike RPutSignal, the
// returned future readies only when the remote notification has
// *executed* (its acknowledgment returned) — a stronger guarantee that
// costs an explicit RPC round trip after remote completion.
func RPutThenRemote[T serial.Scalar, A any](rk *Rank, src []T, dst GPtr[T], fn func(*Rank, A), arg A) Future[Unit] {
	put := RPutWith(rk, src, dst, RemoteCxAsFuture())
	return ThenFut(put.Remote, func(Unit) Future[Unit] {
		return RPC(rk, dst.Owner, func(trk *Rank, a A) Unit {
			fn(trk, a)
			return Unit{}
		}, arg)
	})
}

// Gather collects every team member's value at the root (flat, for
// modest team sizes; the tree collectives cover the scalable cases).
// The root's future yields values indexed by team rank; other members'
// futures ready once their contribution is sent.
func Gather[T any](t *Team, root Intrank, val T) Future[[]T] {
	g := gatherBytesAt(t, root, mustMarshal(val))
	return Then(g, func(bs [][]byte) []T {
		if bs == nil {
			return nil
		}
		out := make([]T, len(bs))
		for i, b := range bs {
			mustUnmarshal(b, &out[i])
		}
		return out
	})
}

// AllGather collects every member's value everywhere (gather to team
// rank 0, then broadcast).
func AllGather[T any](t *Team, val T) Future[[]T] {
	g := Gather(t, 0, val)
	return ThenFut(g, func(vals []T) Future[[]T] {
		return Broadcast(t, 0, vals)
	})
}
