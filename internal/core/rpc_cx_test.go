package upcxx

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// RPC completion conformance matrix:
//
//	{rpc, rpc_ff} × {future, promise, LPC} × {initiator-persona,
//	named-persona} × {self, cross-rank}
//
// plus persona-targeted variants of the RMA and collective rows. Every
// cell issues one RPC (or put/collective) whose operation completion is
// delivered through exactly that method to exactly that persona, blocks
// until the delivery demonstrably happened on the right context, and
// proves the body/transfer took effect. The matrix runs under -race in
// CI (make race): named-persona deliveries cross the persona LPC queues
// from whichever goroutine harvests the conduit, which is precisely the
// machinery the race gate exists to watch.

// cxWorker is a goroutine holding a named persona and executing
// submitted jobs with that persona current — the test stand-in for an
// application worker thread that consumes persona-addressed completions.
type cxWorker struct {
	p    *Persona
	jobs chan func()
	done chan struct{}
}

func startCxWorker(rk *Rank, name string) *cxWorker {
	w := &cxWorker{p: NewPersona(rk, name), jobs: make(chan func()), done: make(chan struct{})}
	ready := make(chan struct{})
	go func() {
		defer close(w.done)
		sc := AcquirePersona(w.p)
		defer sc.Release()
		close(ready)
		for fn := range w.jobs {
			fn()
		}
	}()
	<-ready
	return w
}

// run hands fn to the worker goroutine (executed with the worker persona
// current); it returns once the worker has accepted the job, not when the
// job finishes — the caller keeps progressing its own personas meanwhile.
func (w *cxWorker) run(fn func()) { w.jobs <- fn }

func (w *cxWorker) stop() {
	close(w.jobs)
	<-w.done
}

// spinProgress drives rk's progress on the calling goroutine until cond
// holds (bounded; reports failure through t, which is goroutine-safe).
func spinProgress(t *testing.T, rk *Rank, what string, cond func() bool) {
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if rk.Progress() == 0 {
			runtime.Gosched()
		}
		if time.Now().After(deadline) {
			t.Errorf("%s: never became true", what)
			return
		}
	}
}

func TestCxRPCMatrix(t *testing.T) {
	Run(2, func(rk *Rank) {
		ctr := MustNewArray[uint64](rk, 1)
		obj := NewDistObject(rk, ctr)
		rk.Barrier()
		if rk.Me() == 0 {
			ctrs := [2]GPtr[uint64]{
				FetchDist[GPtr[uint64]](rk, obj.ID(), 0).Wait(),
				FetchDist[GPtr[uint64]](rk, obj.ID(), 1).Wait(),
			}
			wk := startCxWorker(rk, "rpc-cx-worker")
			defer wk.stop()
			for _, ff := range []bool{false, true} {
				for _, how := range []string{"future", "promise", "lpc"} {
					for _, named := range []bool{false, true} {
						for _, cross := range []bool{false, true} {
							rctr := ctrs[0]
							if cross {
								rctr = ctrs[1]
							}
							name := fmt.Sprintf("ff=%v/%s/named=%v/cross=%v", ff, how, named, cross)
							runRPCOpCxCell(t, rk, name, ff, named, how, wk, rctr)
						}
					}
				}
			}
		}
		rk.Barrier()
	})
}

// runRPCOpCxCell executes one matrix cell: an RPC whose body bumps a
// counter at the target, with operation completion delivered by (how) to
// either the initiating master persona or the named worker persona.
func runRPCOpCxCell(t *testing.T, rk *Rank, name string, ff, named bool, how string, wk *cxWorker, rctr GPtr[uint64]) {
	resetFlag(rk, rctr)
	target := rctr.Owner

	var cx Cx
	var prom *Promise[Unit]
	fired := false      // initiator-persona LPC (master goroutine only)
	var hit atomic.Bool // named-persona LPC (set from the worker's drain)
	switch how {
	case "future":
		if named {
			cx = OpCxAsFutureOn(wk.p)
		} else {
			cx = OpCxAsFuture()
		}
	case "promise":
		if named {
			prom = NewPromiseOn[Unit](rk, wk.p)
			cx = OpCxAsPromise(prom).On(wk.p) // On must accept the owner
		} else {
			prom = NewPromise[Unit](rk)
			cx = OpCxAsPromise(prom)
		}
	case "lpc":
		if named {
			cx = OpCxAsLPC(wk.p, func() { hit.Store(true) })
		} else {
			cx = OpCxAsLPC(nil, func() { fired = true })
		}
	}

	var fs CxFutures
	if ff {
		fs = RPCFFWith(rk, target, func(trk *Rank, c GPtr[uint64]) {
			Local(trk, c, 1)[0]++
		}, rctr, cx)
	} else {
		_, fs = RPCWith(rk, target, func(trk *Rank, c GPtr[uint64]) Unit {
			Local(trk, c, 1)[0]++
			return Unit{}
		}, rctr, cx)
	}

	var consumed atomic.Bool
	switch {
	case how == "future" && !named:
		fs.Op.Wait()
	case how == "future" && named:
		wk.run(func() { fs.Op.Wait(); consumed.Store(true) })
		spinProgress(t, rk, name+" worker future", func() bool { return consumed.Load() })
	case how == "promise" && !named:
		prom.Finalize().Wait()
	case how == "promise" && named:
		wk.run(func() { prom.Finalize().Wait(); consumed.Store(true) })
		spinProgress(t, rk, name+" worker promise", func() bool { return consumed.Load() })
	case how == "lpc" && !named:
		spinProgress(t, rk, name+" lpc", func() bool { return fired })
	case how == "lpc" && named:
		wk.run(func() {
			deadline := time.Now().Add(20 * time.Second)
			for !hit.Load() && !time.Now().After(deadline) {
				if rk.Progress() == 0 {
					runtime.Gosched()
				}
			}
			consumed.Store(true)
		})
		spinProgress(t, rk, name+" worker lpc", func() bool { return consumed.Load() && hit.Load() })
	}

	// The body must take effect: a round-trip cell's op event already
	// implies it (the reply postdates the body); a fire-and-forget cell's
	// op event fires at injection, so poll for the landing.
	spinProgress(t, rk, name+" body effect", func() bool { return readFlag(rk, rctr) == 1 })
	if !ff {
		if got := readFlag(rk, rctr); got != 1 {
			t.Errorf("%s: counter = %d after op completion, want 1", name, got)
		}
	}
}

// TestCxRPCOpFutureNamedPersonaOnly is the acceptance pin for
// persona-addressed RPC completions: an operation-cx future addressed to
// a named worker persona is owned by that persona — consuming it from the
// initiating master goroutine fails loudly, and the worker (the only
// goroutine holding the persona) consumes it successfully.
func TestCxRPCOpFutureNamedPersonaOnly(t *testing.T) {
	Run(2, func(rk *Rank) {
		rk.Barrier()
		if rk.Me() == 0 {
			wp := NewPersona(rk, "op-consumer")
			acquired := make(chan struct{})
			consume := make(chan CxFutures)
			var got atomic.Bool
			go func() {
				sc := AcquirePersona(wp)
				defer sc.Release()
				close(acquired)
				fs := <-consume
				fs.Op.Wait()
				got.Store(true)
			}()
			<-acquired
			val, fs := RPCWith(rk, 1, func(trk *Rank, x int) int { return x + 1 }, 41,
				OpCxAsFutureOn(wp))
			// The op future belongs to the worker persona; the initiating
			// goroutine must not be able to consume it. (The worker is
			// parked on the consume channel, so this read cannot race its
			// drain.)
			expectPanic(t, "op future consumed off its owning persona", func() { fs.Op.Wait() })
			consume <- fs
			spinProgress(t, rk, "worker op future", func() bool { return got.Load() })
			// The value future stays with the initiator.
			if v := val.Wait(); v != 42 {
				t.Errorf("RPC result = %d, want 42", v)
			}
		}
		rk.Barrier()
	})
}

// TestCxRPCSourceReuse pins the RPC source-completion contract: once
// source_cx fires the argument serialization has been captured by the
// conduit, independent of (and no later than) the reply.
func TestCxRPCSourceReuse(t *testing.T) {
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			val, fs := RPCWith(rk, 1, func(trk *Rank, xs []uint64) uint64 {
				var s uint64
				for _, x := range xs {
					s += x
				}
				return s
			}, []uint64{1, 2, 3, 4}, OpCxAsFuture(), SourceCxAsFuture())
			fs.Source.Wait() // argument buffer reusable from here
			if got := val.Wait(); got != 10 {
				t.Errorf("RPC over captured args = %d, want 10", got)
			}
			fs.Op.Wait()
			if !fs.Source.Ready() {
				t.Error("source_cx not ready at operation completion")
			}
		}
		rk.Barrier()
	})
}

// TestCxRPCRemoteLanding: a remote_cx as_rpc descriptor on an RPC fires
// at the target when the request lands — including on a fire-and-forget
// message, which offers no other target-side hook — and may be addressed
// to a named target-rank persona, whose holder then harvests it.
func TestCxRPCRemoteLanding(t *testing.T) {
	var landed, bodyRan atomic.Int64
	var namedLanded, onNamed atomic.Bool
	var mu sync.Mutex
	var targetP *Persona
	stop := make(chan struct{})
	var wg sync.WaitGroup
	Run(2, func(rk *Rank) {
		if rk.Me() == 1 {
			wp := NewPersona(rk, "landing-consumer")
			mu.Lock()
			targetP = wp
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := AcquirePersona(wp)
				defer sc.Release()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if rk.Progress() == 0 {
						runtime.Gosched()
					}
				}
			}()
		}
		rk.Barrier()
		if rk.Me() == 0 {
			RPCFFWith(rk, 1, func(trk *Rank, _ int) { bodyRan.Add(1) }, 0,
				OpCxAsFuture(),
				RemoteCxAsRPC(func(trk *Rank, _ int) { landed.Add(1) }, 0))
			spinProgress(t, rk, "ff landing event", func() bool { return landed.Load() == 1 })
			spinProgress(t, rk, "ff body", func() bool { return bodyRan.Load() == 1 })

			// Named target-rank persona: the landing event of a round-trip
			// RPC routed to rank 1's worker persona instead of its
			// execution persona.
			mu.Lock()
			wp := targetP
			mu.Unlock()
			val, _ := RPCWith(rk, 1, func(trk *Rank, x int) int { return x * 2 }, 21,
				RemoteCxAsRPC(func(trk *Rank, _ int) {
					onNamed.Store(trk.CurrentPersona() == wp)
					namedLanded.Store(true)
				}, 0).On(wp))
			if got := val.Wait(); got != 42 {
				t.Errorf("RPC result = %d, want 42", got)
			}
			spinProgress(t, rk, "named landing event", func() bool { return namedLanded.Load() })
			if !onNamed.Load() {
				t.Error("named landing body did not run with the target's worker persona current")
			}
		}
		rk.Barrier()
		if rk.Me() == 1 {
			close(stop)
			wg.Wait()
		}
		rk.Barrier()
	})
}

// TestCxRPCInvalidCombos pins the RPC completion cells the model forbids.
func TestCxRPCInvalidCombos(t *testing.T) {
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			noop := func(trk *Rank, x int) int { return x }
			// An RPC has no initiator-side remote event (a fire-and-forget
			// message carries no ack to ride back).
			expectPanic(t, "remote_cx as_future on rpc", func() {
				RPCWith(rk, 1, noop, 0, RemoteCxAsFuture())
			})
			expectPanic(t, "remote_cx as_promise on rpc_ff", func() {
				RPCFFWith(rk, 1, func(*Rank, int) {}, 0, RemoteCxAsPromise(NewPromise[Unit](rk)))
			})
			// Persona addressing is rank-checked on both sides.
			other := NewPersona(rk.World().Rank(1), "other-rank")
			expectPanic(t, "op future on another rank's persona", func() {
				RPCWith(rk, 1, noop, 0, OpCxAsFutureOn(other))
			})
			expectPanic(t, "remote_cx as_rpc persona of a third rank", func() {
				mine := NewPersona(rk, "mine")
				RPCWith(rk, 1, noop, 0, RemoteCxAsRPC(func(*Rank, int) {}, 0).On(mine))
			})
			// A promise delivery may only be addressed to its owner.
			expectPanic(t, "promise addressed off its owner", func() {
				wp := NewPersona(rk, "wp")
				RPCWith(rk, 1, noop, 0, OpCxAsPromise(NewPromise[Unit](rk)).On(wp))
			})
			expectPanic(t, "NewPromiseOn with a foreign rank's persona", func() {
				NewPromiseOn[Unit](rk, other)
			})
			expectPanic(t, "On(nil)", func() { OpCxAsFuture().On(nil) })
			rk.Quiesce()
		}
		rk.Barrier()
	})
}

// TestCxPersonaTargetedRMA extends the RMA rows of the completion matrix
// with named-persona deliveries: operation, source, and remote events of
// one put, each delivered to a worker persona as future, promise, and
// LPC. The worker goroutine (the only holder of the persona) does the
// blocking; the master verifies the put's bytes afterwards.
func TestCxPersonaTargetedRMA(t *testing.T) {
	Run(2, func(rk *Rank) {
		dst := MustNewArray[uint64](rk, 4)
		obj := NewDistObject(rk, dst)
		rk.Barrier()
		if rk.Me() == 0 {
			rdst := FetchDist[GPtr[uint64]](rk, obj.ID(), 1).Wait()
			wk := startCxWorker(rk, "rma-cx-worker")
			defer wk.stop()
			src := []uint64{1, 2, 3, 4}

			for _, ev := range cxEvents {
				for _, how := range []string{"future", "promise", "lpc"} {
					name := fmt.Sprintf("rma/%v/%s/named", ev, how)
					var cx Cx
					var prom *Promise[Unit]
					var hit atomic.Bool
					switch how {
					case "future":
						switch ev {
						case OpDone:
							cx = OpCxAsFutureOn(wk.p)
						case SourceDone:
							cx = SourceCxAsFutureOn(wk.p)
						case RemoteDone:
							cx = RemoteCxAsFutureOn(wk.p)
						}
					case "promise":
						prom = NewPromiseOn[Unit](rk, wk.p)
						switch ev {
						case OpDone:
							cx = OpCxAsPromise(prom)
						case SourceDone:
							cx = SourceCxAsPromise(prom)
						case RemoteDone:
							cx = RemoteCxAsPromise(prom)
						}
					case "lpc":
						fn := func() { hit.Store(true) }
						switch ev {
						case OpDone:
							cx = OpCxAsLPC(wk.p, fn)
						case SourceDone:
							cx = SourceCxAsLPC(wk.p, fn)
						case RemoteDone:
							cx = RemoteCxAsLPC(wk.p, fn)
						}
					}
					fs := RPutWith(rk, src, rdst, cx)
					var consumed atomic.Bool
					wk.run(func() {
						switch how {
						case "future":
							switch ev {
							case OpDone:
								fs.Op.Wait()
							case SourceDone:
								fs.Source.Wait()
							case RemoteDone:
								fs.Remote.Wait()
							}
						case "promise":
							prom.Finalize().Wait()
						case "lpc":
							deadline := time.Now().Add(20 * time.Second)
							for !hit.Load() && !time.Now().After(deadline) {
								if rk.Progress() == 0 {
									runtime.Gosched()
								}
							}
						}
						consumed.Store(true)
					})
					spinProgress(t, rk, name, func() bool { return consumed.Load() })
					if how == "lpc" && !hit.Load() {
						t.Errorf("%s: LPC never ran on the worker persona", name)
					}
					// Bound the put (op edges ride the same conduit ack as
					// remote/source here) and verify the bytes landed.
					got := make([]uint64, 4)
					RGet(rk, rdst, got).Wait()
					for i, v := range src {
						if got[i] != v {
							t.Fatalf("%s: dst[%d] = %d, want %d", name, i, got[i], v)
						}
					}
				}
			}
		}
		rk.Barrier()
	})
}

// TestCollCxNamedPersona extends the collective rows: an allreduce whose
// operation completion is addressed to a named worker persona (future,
// promise, and LPC forms), initiated by the master persona.
func TestCollCxNamedPersona(t *testing.T) {
	for _, how := range []string{"future", "promise", "lpc"} {
		how := how
		t.Run(how, func(t *testing.T) {
			Run(3, func(rk *Rank) {
				team := rk.WorldTeam()
				if rk.Me() == 0 {
					wk := startCxWorker(rk, "coll-cx-worker")
					defer wk.stop()
					var cx Cx
					var prom *Promise[Unit]
					var hit atomic.Bool
					switch how {
					case "future":
						cx = OpCxAsFutureOn(wk.p)
					case "promise":
						prom = NewPromiseOn[Unit](rk, wk.p)
						cx = OpCxAsPromise(prom)
					case "lpc":
						cx = OpCxAsLPC(wk.p, func() { hit.Store(true) })
					}
					val, fs := AllReduceWith(team, int64(rk.Me()+1),
						func(a, b int64) int64 { return a + b }, cx)
					var consumed atomic.Bool
					wk.run(func() {
						switch how {
						case "future":
							fs.Op.Wait()
						case "promise":
							prom.Finalize().Wait()
						case "lpc":
							deadline := time.Now().Add(20 * time.Second)
							for !hit.Load() && !time.Now().After(deadline) {
								if rk.Progress() == 0 {
									runtime.Gosched()
								}
							}
						}
						consumed.Store(true)
					})
					spinProgress(t, rk, "coll named "+how, func() bool { return consumed.Load() })
					if got := val.Wait(); got != 6 {
						t.Errorf("allreduce = %d, want 6", got)
					}
				} else {
					AllReduce(team, int64(rk.Me()+1), func(a, b int64) int64 { return a + b }).Wait()
				}
				rk.Barrier()
			})
		})
	}
}

// TestCxSignalingPutNamedPersonaPT pins the progress-thread use case the
// redesign exists for: a signaling put whose RemoteCxAsRPC notification
// is addressed to a named *worker persona of the target rank*, so in
// progress-thread mode the landing event bypasses the execution persona
// and is harvested directly by the worker goroutine it concerns.
func TestCxSignalingPutNamedPersonaPT(t *testing.T) {
	var mu sync.Mutex
	var workerP *Persona
	var onWorker, landed atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	RunConfig(Config{Ranks: 2, ProgressThread: true}, func(rk *Rank) {
		dst := MustNewArray[uint64](rk, 4)
		obj := NewDistObject(rk, dst)
		if rk.Me() == 1 {
			wp := NewPersona(rk, "halo-worker")
			mu.Lock()
			workerP = wp
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := AcquirePersona(wp)
				defer sc.Release()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if rk.Progress() == 0 {
						runtime.Gosched()
					}
				}
			}()
		}
		rk.Barrier()
		if rk.Me() == 0 {
			mu.Lock()
			wp := workerP
			mu.Unlock()
			rdst := FetchDist[GPtr[uint64]](rk, obj.ID(), 1).Wait()
			fs := RPutWith(rk, []uint64{9, 9, 9, 9}, rdst,
				OpCxAsFuture(),
				RemoteCxAsRPC(func(trk *Rank, _ int) {
					onWorker.Store(trk.CurrentPersona() == wp)
					landed.Store(true)
				}, 0).On(wp))
			fs.Op.Wait()
			spinProgress(t, rk, "named-persona landing", func() bool { return landed.Load() })
			if !onWorker.Load() {
				t.Error("remote-cx body did not run with the named worker persona current")
			}
		}
		rk.Barrier()
		if rk.Me() == 1 {
			close(stop)
			wg.Wait()
		}
		rk.Barrier()
	})
}
