package upcxx

import (
	"encoding/binary"
	"fmt"

	"upcxx/internal/gasnet"
	"upcxx/internal/serial"
)

// Remote Procedure Call: ship a function with arguments to a target rank
// for execution there, optionally returning a result to the initiator
// (paper §II). The function value itself travels as a code reference —
// valid everywhere because SPMD ranks share one binary, the same property
// C++ UPC++ relies on for function pointers. Arguments are serialized into
// the message payload (a true deep copy across the "wire"); results travel
// back the same way. Closures are permitted, but anything they capture is
// shared by reference with the target execution — capture only immutable
// values, exactly as UPC++ requires lambda captures to be trivially
// serializable.
//
// The RPC executes at the target only during its user-level progress: an
// inattentive target (one computing without calling Progress) stalls
// incoming RPCs, as the paper emphasizes — unless the job runs dedicated
// progress threads (Config.ProgressThread), in which case the target's
// progress thread executes incoming RPCs with its own persona current,
// keeping every rank attentive while its user goroutines compute.

// rpcInvoker runs at the target inside the AM handler: decode arguments,
// call the user function, and send the reply (immediately, or when a
// returned future readies).
type rpcInvoker func(trk *Rank, src Intrank, seq uint64, args []byte)

// rpcFFInvoker is the fire-and-forget variant: no sequence, no reply.
type rpcFFInvoker func(trk *Rank, src Intrank, args []byte)

func mustMarshal(v any) []byte {
	b, err := serial.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("upcxx: RPC argument not serializable: %v", err))
	}
	return b
}

func mustUnmarshal(b []byte, ptr any) {
	if err := serial.Unmarshal(b, ptr); err != nil {
		panic(fmt.Sprintf("upcxx: RPC payload decode failed: %v", err))
	}
}

// execBody runs an incoming RPC body on the rank's durable execution
// persona: the progress persona in progress-thread mode, the master
// persona otherwise (the UPC++ rule that RPCs execute on the master
// persona). The harvesting goroutine may be any goroutine making
// user-level progress — a short-lived user goroutine's Wait, for
// example — and everything a body creates (promises, inner futures,
// deferred replies) binds to the current persona, so bodies must not
// execute on a persona that stops being drained when its goroutine
// exits. If the calling goroutine already holds the durable persona the
// body runs inline; otherwise it is delivered by LPC.
func (rk *Rank) execBody(fn func()) {
	// The harvesting goroutine's id rides along as the conduit poll
	// token (progressWith passes it to PollAMsAs), so a drain of many
	// AMs resolves it once instead of re-deriving it per message —
	// curGID costs ~1µs of runtime.Stack parsing. Outside an AM drain
	// (token 0) fall back to deriving it here.
	gid := rk.ep.PollerToken()
	if gid == 0 {
		gid = curGID()
	}
	if rk.w.cfg.ProgressThread {
		// Always route to the progress persona (inline only when the
		// progress thread itself harvested the AM). No unheld fallback:
		// during the startup window before progressLoop acquires its
		// persona, running inline would bind deferred state to a
		// transient harvester — queued bodies are drained as soon as
		// the thread comes up.
		if rk.progressP.holder.Load() == gid {
			fn()
			return
		}
		rk.progressP.LPC(fn)
		return
	}
	if h := rk.master.holder.Load(); h == gid || h == 0 {
		// Run inline when the caller holds the master persona — or when
		// nobody does (a World driven without Run): queuing to an unheld
		// master would stall every incoming RPC, and the harvesting
		// goroutine is by definition making progress.
		fn()
		return
	}
	rk.master.LPC(fn)
}

// handleRPC is the conduit AM handler for requests (runs at the target in
// user-level progress, on the rank's execution persona).
func (w *World) handleRPC(ep *gasnet.Endpoint, src gasnet.Rank, payload []byte, aux any) {
	trk := w.ranks[ep.Rank()]
	seq := binary.LittleEndian.Uint64(payload)
	trk.execBody(func() { aux.(rpcInvoker)(trk, src, seq, payload[8:]) })
}

// handleFF is the conduit AM handler for fire-and-forget RPCs.
func (w *World) handleFF(ep *gasnet.Endpoint, src gasnet.Rank, payload []byte, aux any) {
	trk := w.ranks[ep.Rank()]
	trk.execBody(func() { aux.(rpcFFInvoker)(trk, src, payload) })
}

// handleReply is the conduit AM handler for RPC results. It may run on
// any goroutine making user-level progress (the initiator's own, or the
// rank's progress thread); the continuation routes the result to the
// initiating persona's LPC queue.
func (w *World) handleReply(ep *gasnet.Endpoint, src gasnet.Rank, payload []byte, _ any) {
	rk := w.ranks[ep.Rank()]
	seq := binary.LittleEndian.Uint64(payload)
	rk.rpcMu.Lock()
	cont, ok := rk.rpcPending[seq]
	delete(rk.rpcPending, seq)
	rk.rpcMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("upcxx: rank %d received RPC reply for unknown sequence %d", rk.me, seq))
	}
	cont(payload[8:]) // enqueues the reply LPC before actCount drops
	rk.actCount.Add(-1)
}

// sendReply ships an RPC result back to the initiator. The result payload
// travels through the regular injection path (defQ → conduit), mirroring
// Fig 2's return flow through the target's queues.
func (rk *Rank) sendReply(dst Intrank, seq uint64, result []byte) {
	payload := make([]byte, 8+len(result))
	binary.LittleEndian.PutUint64(payload, seq)
	copy(payload[8:], result)
	rk.deferOp(func() {
		rk.ep.AM(gasnetRank(dst), rk.w.amReply, payload, nil)
	})
}

// rpcSend performs the initiator side shared by every RPC variant. The
// calling goroutine's current persona owns the returned future and
// receives the reply continuation, regardless of which goroutine's
// progress observes the reply AM.
func rpcSend[R any](rk *Rank, target Intrank, argBytes []byte, inv rpcInvoker) Future[R] {
	p := NewPromise[R](rk)
	pers := p.c.pers // the current persona, resolved once by NewPromise
	rk.rpcMu.Lock()
	seq := rk.rpcSeq
	rk.rpcSeq++
	rk.rpcPending[seq] = func(res []byte) {
		pers.LPC(func() {
			var r R
			mustUnmarshal(res, &r)
			p.fulfillOwnedResult(r)
		})
	}
	rk.rpcMu.Unlock()
	payload := make([]byte, 8+len(argBytes))
	binary.LittleEndian.PutUint64(payload, seq)
	copy(payload[8:], argBytes)
	rk.deferOp(func() {
		rk.actCount.Add(1)
		rk.ep.AM(gasnetRank(target), rk.w.amRPC, payload, inv)
	})
	return p.Future()
}

// RPC invokes fn(arg) on the target rank and returns a future for its
// result.
func RPC[A, R any](rk *Rank, target Intrank, fn func(*Rank, A) R, arg A) Future[R] {
	inv := rpcInvoker(func(trk *Rank, src Intrank, seq uint64, args []byte) {
		var a A
		mustUnmarshal(args, &a)
		trk.sendReply(src, seq, mustMarshal(fn(trk, a)))
	})
	return rpcSend[R](rk, target, mustMarshal(arg), inv)
}

// RPC0 invokes a no-argument fn on the target rank.
func RPC0[R any](rk *Rank, target Intrank, fn func(*Rank) R) Future[R] {
	inv := rpcInvoker(func(trk *Rank, src Intrank, seq uint64, _ []byte) {
		trk.sendReply(src, seq, mustMarshal(fn(trk)))
	})
	return rpcSend[R](rk, target, nil, inv)
}

// RPC2 invokes a two-argument fn on the target rank.
func RPC2[A, B, R any](rk *Rank, target Intrank, fn func(*Rank, A, B) R, a A, b B) Future[R] {
	argBytes := mustMarshal(a)
	argBytes = append(argBytes, mustMarshal(b)...)
	inv := rpcInvoker(func(trk *Rank, src Intrank, seq uint64, args []byte) {
		var av A
		var bv B
		n, err := serial.DecodeInto(args, &av)
		if err != nil {
			panic(fmt.Sprintf("upcxx: RPC2 first argument decode: %v", err))
		}
		mustUnmarshal(args[n:], &bv)
		trk.sendReply(src, seq, mustMarshal(fn(trk, av, bv)))
	})
	return rpcSend[R](rk, target, argBytes, inv)
}

// RPCFut invokes fn on the target; fn returns a future, and the reply is
// sent when that future readies — the deferred-reply form upcxx RPCs use
// when the callee must itself wait on asynchronous work.
func RPCFut[A, R any](rk *Rank, target Intrank, fn func(*Rank, A) Future[R], arg A) Future[R] {
	inv := rpcInvoker(func(trk *Rank, src Intrank, seq uint64, args []byte) {
		var a A
		mustUnmarshal(args, &a)
		inner := fn(trk, a)
		reply := func() {
			inner.c.onReady(func(r R) {
				trk.sendReply(src, seq, mustMarshal(r))
			})
		}
		if inner.c.pers == nil || inner.c.pers.onOwnerGoroutine() {
			reply()
		} else {
			// The body handed back a future owned by another persona
			// (e.g. a deferred dist-object fetch pinned to the master
			// persona); futures are persona-local, so the continuation
			// must be registered on the owner's goroutine.
			inner.c.pers.LPC(reply)
		}
	})
	return rpcSend[R](rk, target, mustMarshal(arg), inv)
}

// RPCFF invokes fn(arg) on the target rank with no acknowledgment or
// result (upcxx rpc_ff): its progression matches the one-way flow of
// rput/rget (paper footnote 5).
func RPCFF[A any](rk *Rank, target Intrank, fn func(*Rank, A), arg A) {
	inv := rpcFFInvoker(func(trk *Rank, src Intrank, args []byte) {
		var a A
		mustUnmarshal(args, &a)
		fn(trk, a)
	})
	argBytes := mustMarshal(arg)
	rk.deferOp(func() {
		rk.ep.AM(gasnetRank(target), rk.w.amFF, argBytes, inv)
	})
}

// RPCFF0 is RPCFF with no argument.
func RPCFF0(rk *Rank, target Intrank, fn func(*Rank)) {
	inv := rpcFFInvoker(func(trk *Rank, src Intrank, _ []byte) { fn(trk) })
	rk.deferOp(func() {
		rk.ep.AM(gasnetRank(target), rk.w.amFF, nil, inv)
	})
}

// RPCFF2 is RPCFF with two arguments.
func RPCFF2[A, B any](rk *Rank, target Intrank, fn func(*Rank, A, B), a A, b B) {
	argBytes := mustMarshal(a)
	argBytes = append(argBytes, mustMarshal(b)...)
	inv := rpcFFInvoker(func(trk *Rank, src Intrank, args []byte) {
		var av A
		var bv B
		n, err := serial.DecodeInto(args, &av)
		if err != nil {
			panic(fmt.Sprintf("upcxx: RPCFF2 first argument decode: %v", err))
		}
		mustUnmarshal(args[n:], &bv)
		fn(trk, av, bv)
	})
	rk.deferOp(func() {
		rk.ep.AM(gasnetRank(target), rk.w.amFF, argBytes, inv)
	})
}
