package upcxx

import (
	"fmt"

	"upcxx/internal/gasnet"
	"upcxx/internal/serial"
)

// Remote Procedure Call: ship a function with arguments to a target rank
// for execution there, optionally returning a result to the initiator
// (paper §II). The function value itself travels as a code reference —
// valid everywhere because SPMD ranks share one binary, the same property
// C++ UPC++ relies on for function pointers. Arguments are serialized into
// the message payload (a true deep copy across the "wire"); results travel
// back the same way. Closures are permitted, but anything they capture is
// shared by reference with the target execution — capture only immutable
// values, exactly as UPC++ requires lambda captures to be trivially
// serializable.
//
// RPC v2 speaks the same language as every other operation (paper §III):
// requests, replies, and fire-and-forget messages are lowered to
// operations on the single Rank.inject(ops, cxPlan) path, carrying the
// versioned wire header below, and the …With entry points accept the full
// completion-descriptor set —
//
//   - source completion: the argument serialization buffer has been
//     captured by the conduit and may be reused (the flood-insert idiom);
//   - operation completion: the reply has landed (for rpc_ff, the conduit
//     has accepted the one-way message);
//   - remote completion (as_rpc only): a target-side landing event fired
//     the moment the request message arrives, independent of — and
//     before — the body's execution on the target's execution persona.
//
// Every delivery may be persona-addressed (completion.go's On combinator):
// an RPC initiated by a master persona can hand its operation-completion
// future to a named worker persona, which is then the only context allowed
// to consume it.
//
// The RPC executes at the target only during its user-level progress: an
// inattentive target (one computing without calling Progress) stalls
// incoming RPCs, as the paper emphasizes — unless the job runs dedicated
// progress threads (Config.ProgressThread), in which case the target's
// progress thread executes incoming RPCs with its own persona current,
// keeping every rank attentive while its user goroutines compute.

// rpcInvoker runs at the target inside the AM handler: decode arguments,
// call the user function, and send the reply (immediately, or when a
// returned future readies).
type rpcInvoker func(trk *Rank, src Intrank, seq uint64, args []byte)

// rpcFFInvoker is the fire-and-forget variant: no sequence, no reply.
type rpcFFInvoker func(trk *Rank, src Intrank, args []byte)

// rpcAux is the opaque code-reference token that travels with every RPC
// wire message: the body invoker (request or fire-and-forget form), the
// remote-completion landing notification when one was attached, and the
// target-rank persona the body was addressed to with RPCBodyOn (nil: the
// target's execution persona). Like the invokers, the persona pointer is
// a code reference — no wire bytes are added for it.
type rpcAux struct {
	inv      rpcInvoker   // rpcReqKind body
	ffInv    rpcFFInvoker // rpcFFKind body
	rem      remoteCxAux  // target-side landing event (zero when absent)
	bodyPers *Persona     // execution persona named by RPCBodyOn (nil: default)
	invName  string       // registry name for cross-process dispatch ("" in-process)
}

func mustMarshal(v any) []byte {
	b, err := serial.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("upcxx: RPC argument not serializable: %v", err))
	}
	return b
}

func mustUnmarshal(b []byte, ptr any) {
	if err := serial.Unmarshal(b, ptr); err != nil {
		panic(fmt.Sprintf("upcxx: RPC payload decode failed: %v", err))
	}
}

// execBody runs an incoming RPC body on the rank's durable execution
// persona: the progress persona in progress-thread mode, the master
// persona otherwise (the UPC++ rule that RPCs execute on the master
// persona). The harvesting goroutine may be any goroutine making
// user-level progress — a short-lived user goroutine's Wait, for
// example — and everything a body creates (promises, inner futures,
// deferred replies) binds to the current persona, so bodies must not
// execute on a persona that stops being drained when its goroutine
// exits. If the calling goroutine already holds the durable persona the
// body runs inline; otherwise it is delivered by LPC.
func (rk *Rank) execBody(fn func()) {
	// The harvesting goroutine's id rides along as the conduit poll
	// token (progressWith passes it to PollAMsAs), so a drain of many
	// AMs resolves it once instead of re-deriving it per message —
	// curGID costs ~1µs of runtime.Stack parsing. Outside an AM drain
	// (token 0) fall back to deriving it here.
	gid := rk.ep.PollerToken()
	if gid == 0 {
		gid = curGID()
	}
	if rk.w.cfg.ProgressThread {
		// Always route to the progress persona (inline only when the
		// progress thread itself harvested the AM). No unheld fallback:
		// during the startup window before progressLoop acquires its
		// persona, running inline would bind deferred state to a
		// transient harvester — queued bodies are drained as soon as
		// the thread comes up.
		if rk.progressP.holder.Load() == gid {
			fn()
			return
		}
		rk.progressP.LPC(fn)
		return
	}
	if h := rk.master.holder.Load(); h == gid || h == 0 {
		// Run inline when the caller holds the master persona — or when
		// nobody does (a World driven without Run): queuing to an unheld
		// master would stall every incoming RPC, and the harvesting
		// goroutine is by definition making progress.
		fn()
		return
	}
	rk.master.LPC(fn)
}

// execBodyOn runs an incoming RPC body on the persona the initiator named
// with RPCBodyOn, or falls back to the rank's durable execution persona
// (execBody) when none was named. Like every persona delivery, the body
// runs inline only when the harvesting goroutine already holds the named
// persona; otherwise it lands in that persona's LPC queue, executed when
// the owning goroutine next makes progress.
func (rk *Rank) execBodyOn(p *Persona, fn func()) {
	if p == nil {
		rk.execBody(fn)
		return
	}
	if p.rk != rk {
		panic(fmt.Sprintf("upcxx: rank %d: rpc body persona %v belongs to rank %d",
			rk.me, p, p.rk.me))
	}
	if p.onOwnerGoroutine() {
		fn()
		return
	}
	p.LPC(fn)
}

// splitBodyPersona peels RPCBodyOn pseudo-descriptors off an RPC's
// completion set, returning the named target-rank persona (nil when none)
// and the remaining true completion descriptors. The persona must belong
// to the target rank — the body executes there — and at most one body
// address is meaningful per RPC.
func splitBodyPersona(target Intrank, cxs []Cx) (*Persona, []Cx) {
	var bp *Persona
	n := 0
	for _, cx := range cxs {
		if cx.kind != cxBody {
			cxs[n] = cx
			n++
			continue
		}
		if bp != nil {
			panic("upcxx: at most one RPCBodyOn descriptor per RPC")
		}
		if cx.pers.rk.me != target {
			panic(fmt.Sprintf("upcxx: RPCBodyOn persona %v belongs to rank %d, but the body executes at rank %d",
				cx.pers, cx.pers.rk.me, target))
		}
		bp = cx.pers
	}
	return bp, cxs[:n]
}

// --- RPC wire form -------------------------------------------------------

// Every RPC message — request, reply, and fire-and-forget — shares one
// self-describing versioned header:
//
//	| magic 0xC8 | version 1 | kind u8 | seq u64 | src u32 LE |
//	| arglen uvarint | args | remlen uvarint | rem |
//
// kind is rpcReqKind/rpcReplyKind/rpcFFKind; seq correlates requests with
// replies (fire-and-forget messages carry 0); src is the sender's world
// rank, riding in the payload (not only the conduit envelope) so the
// message stays self-describing when relayed. rem is an embedded
// remote-cx payload (the 0xC7 wire form of completion.go) carrying the
// target-side landing notification of a request — empty when none was
// attached, and required empty on replies. decodeRPCMsg rejects anything
// malformed; FuzzRPCWire hammers it with hostile bytes and checks the
// canonical round-trip property.

const (
	rpcMagic   = 0xC8
	rpcVersion = 1
)

// RPC message kinds.
const (
	rpcReqKind   uint8 = 1 + iota // round-trip request (expects a reply)
	rpcReplyKind                  // reply carrying the result bytes
	rpcFFKind                     // fire-and-forget (upcxx rpc_ff)
)

const rpcKindMax = rpcFFKind

// rpcMsg is one decoded RPC wire message.
type rpcMsg struct {
	kind uint8
	seq  uint64
	src  uint32
	args []byte
	rem  []byte // embedded remote-cx payload (encodeRemoteCx form)
}

// encodeRPCMsg builds the wire form.
func encodeRPCMsg(m rpcMsg) []byte {
	e := serial.NewEncoder(make([]byte, 0, 24+len(m.args)+len(m.rem)))
	e.PutU8(rpcMagic)
	e.PutU8(rpcVersion)
	e.PutU8(m.kind)
	e.PutU64(m.seq)
	e.PutU32(m.src)
	e.PutUvarint(uint64(len(m.args)))
	e.PutRaw(m.args)
	e.PutUvarint(uint64(len(m.rem)))
	e.PutRaw(m.rem)
	return e.Bytes()
}

// decodeRPCMsg parses and validates the wire form.
func decodeRPCMsg(b []byte) (rpcMsg, error) {
	var m rpcMsg
	d := serial.NewDecoder(b)
	magic := d.U8()
	version := d.U8()
	m.kind = d.U8()
	m.seq = d.U64()
	m.src = d.U32()
	alen := d.Uvarint()
	if d.Err() != nil {
		return m, d.Err()
	}
	if magic != rpcMagic {
		return m, fmt.Errorf("rpc message: bad magic %#x", magic)
	}
	if version != rpcVersion {
		return m, fmt.Errorf("rpc message: unsupported version %d", version)
	}
	if m.kind == 0 || m.kind > rpcKindMax {
		return m, fmt.Errorf("rpc message: unknown kind %d", m.kind)
	}
	if m.src > 1<<31-1 {
		return m, fmt.Errorf("rpc message: sender rank %d out of range", m.src)
	}
	if m.kind == rpcFFKind && m.seq != 0 {
		return m, fmt.Errorf("rpc message: fire-and-forget carries sequence %d", m.seq)
	}
	if alen > uint64(d.Remaining()) {
		return m, fmt.Errorf("rpc message: argument length %d exceeds remaining %d bytes", alen, d.Remaining())
	}
	m.args = d.Raw(int(alen))
	rlen := d.Uvarint()
	if d.Err() != nil {
		return m, d.Err()
	}
	if rlen != uint64(d.Remaining()) {
		return m, fmt.Errorf("rpc message: remote-cx length %d does not match remaining %d bytes", rlen, d.Remaining())
	}
	if rlen > 0 && m.kind == rpcReplyKind {
		return m, fmt.Errorf("rpc message: reply carries a remote-cx payload")
	}
	m.rem = d.Raw(int(rlen))
	if err := d.Finish(); err != nil {
		return m, err
	}
	return m, nil
}

// handleRPC is the single conduit AM handler for all RPC traffic. Requests
// and fire-and-forget bodies execute at the target during user-level
// progress, on the rank's execution persona (execBody); a request's
// embedded remote-cx landing event fires first — it signals the message's
// arrival, not the body's execution, and may be persona-addressed.
// Replies complete the initiator's pending operation: the continuation
// routes the result to the initiating persona's LPC queue and fires the
// operation's completion plan, no matter which goroutine's progress
// harvested the reply.
func (w *World) handleRPC(ep *gasnet.Endpoint, src gasnet.Rank, payload []byte, aux any) {
	trk := w.ranks[ep.Rank()]
	m, err := decodeRPCMsg(payload)
	if err != nil {
		panic(fmt.Sprintf("upcxx: rank %d malformed RPC message from %d: %v", trk.me, src, err))
	}
	switch m.kind {
	case rpcReqKind, rpcFFKind:
		a := aux.(rpcAux)
		if len(m.rem) > 0 {
			initiator, args, derr := decodeRemoteCx(m.rem)
			if derr != nil {
				panic(fmt.Sprintf("upcxx: rank %d corrupt RPC remote-cx payload from %d: %v", trk.me, src, derr))
			}
			trk.runRemoteBody(a.rem, initiator, args)
		}
		if m.kind == rpcReqKind {
			trk.execBodyOn(a.bodyPers, func() { a.inv(trk, Intrank(src), m.seq, m.args) })
		} else {
			trk.execBodyOn(a.bodyPers, func() { a.ffInv(trk, Intrank(src), m.args) })
		}
	case rpcReplyKind:
		trk.rpcMu.Lock()
		cont, ok := trk.rpcPending[m.seq]
		delete(trk.rpcPending, m.seq)
		trk.rpcMu.Unlock()
		if !ok {
			panic(fmt.Sprintf("upcxx: rank %d received RPC reply for unknown sequence %d", trk.me, m.seq))
		}
		cont(m.args)
	}
}

// --- lowering ------------------------------------------------------------

// rpcOpFor lowers one RPC wire message to an injectable operation,
// claiming the plan's remote-cx notification (if any) so it travels
// embedded in this message instead of as a separate AM: the target fires
// it at landing, exactly like the conduit does for put/copy hop chains.
func rpcOpFor(rk *Rank, target Intrank, kind uint8, seq uint64, argBytes []byte, aux rpcAux, plan *cxPlan) rmaOp {
	var rem []byte
	if am := plan.takeConduitAM(); am != nil {
		rem = am.Payload
		aux.rem = am.Aux.(remoteCxAux)
	}
	opK := opAM // one-way: the operation edge fires at injection
	if kind == rpcReqKind {
		opK = opRPC // the reply continuation fires the operation edge
	}
	return rmaOp{
		kind:    opK,
		dstPeer: target,
		amID:    rk.w.amRPC,
		buf:     encodeRPCMsg(rpcMsg{kind: kind, seq: seq, src: uint32(rk.me), args: argBytes, rem: rem}),
		amAux:   aux,
	}
}

// rpcRoundTrip is the one generic core entry every round-trip RPC variant
// wraps: pre-serialized argument bytes, a body invoker riding as a code
// reference, and the full completion-descriptor set. The request lowers
// through Rank.inject; the value future (and any operation-cx deliveries)
// fire when the reply lands, source-cx when the conduit has captured the
// argument bytes, and a remote-cx as_rpc descriptor at the target when the
// request arrives. The calling goroutine's current persona owns the
// returned value future regardless of which goroutine's progress observes
// the reply; completion descriptors may address other personas.
func rpcRoundTrip[R any](rk *Rank, target Intrank, argBytes []byte, inv rpcInvoker, name string, cxs []Cx) (Future[R], CxFutures) {
	bodyPers, cxs := splitBodyPersona(target, cxs)
	plan := &cxPlan{rk: rk, remotePeer: target}
	for _, cx := range cxs {
		plan.add(opRPC, cx)
	}
	p := NewPromise[R](rk)
	pers := p.c.pers // the current persona, resolved once by NewPromise
	rk.rpcMu.Lock()
	seq := rk.rpcSeq
	rk.rpcSeq++
	rk.rpcPending[seq] = func(res []byte) {
		pers.LPC(func() {
			var r R
			mustUnmarshal(res, &r)
			p.fulfillOwnedResult(r)
		})
		// Completion deliveries enqueue before actCount drops: a quiescing
		// owner must never observe actQ empty while a completion is
		// unqueued.
		plan.opDone()
		rk.actCount.Add(-1)
	}
	rk.rpcMu.Unlock()
	rk.inject([]rmaOp{rpcOpFor(rk, target, rpcReqKind, seq, argBytes, rpcAux{inv: inv, bodyPers: bodyPers, invName: name}, plan)}, plan)
	return p.Future(), plan.futs
}

// rpcOneWay is the generic fire-and-forget core entry: operation
// completion fires once the conduit has accepted the message (there is no
// acknowledgment to wait for), source completion when the argument bytes
// are captured, and a remote-cx as_rpc descriptor at the target on
// landing.
func rpcOneWay(rk *Rank, target Intrank, argBytes []byte, inv rpcFFInvoker, name string, cxs []Cx) CxFutures {
	bodyPers, cxs := splitBodyPersona(target, cxs)
	plan := &cxPlan{rk: rk, remotePeer: target}
	for _, cx := range cxs {
		plan.add(opRPC, cx)
	}
	rk.inject([]rmaOp{rpcOpFor(rk, target, rpcFFKind, 0, argBytes, rpcAux{ffInv: inv, bodyPers: bodyPers, invName: name}, plan)}, plan)
	return plan.futs
}

// replyTo ships an RPC result back to the initiator through the same
// injection path as every other operation (defQ → conduit), mirroring
// Fig 2's return flow through the target's queues.
func (rk *Rank) replyTo(dst Intrank, seq uint64, result []byte) {
	op := rmaOp{
		kind:    opAM,
		dstPeer: dst,
		amID:    rk.w.amRPC,
		buf:     encodeRPCMsg(rpcMsg{kind: rpcReplyKind, seq: seq, src: uint32(rk.me), args: result}),
	}
	rk.inject([]rmaOp{op}, &cxPlan{rk: rk, remotePeer: dst})
}

// --- public entry points -------------------------------------------------

// RPCWith invokes fn(arg) on the target rank with an explicit
// completion-descriptor set, returning the future for fn's result plus
// the requested completion futures. Operation completion fires when the
// reply lands (the same edge that readies the value future), source
// completion when the argument serialization buffer may be reused, and a
// RemoteCxAsRPC descriptor executes at the target the moment the request
// message arrives — before the body. Any delivery may be
// persona-addressed with On, and an RPCBodyOn descriptor addresses the
// *body itself* to a named persona of the target rank instead of the
// target's execution persona.
func RPCWith[A, R any](rk *Rank, target Intrank, fn func(*Rank, A) R, arg A, cxs ...Cx) (Future[R], CxFutures) {
	inv := rpcInvoker(func(trk *Rank, src Intrank, seq uint64, args []byte) {
		var a A
		mustUnmarshal(args, &a)
		trk.replyTo(src, seq, mustMarshal(fn(trk, a)))
	})
	return rpcRoundTrip[R](rk, target, mustMarshal(arg), inv, rk.wireName(fn), cxs)
}

// RPCFutWith is RPCWith for a future-returning fn: the reply is deferred
// until the body's future readies — the deferred-reply form upcxx RPCs
// use when the callee must itself wait on asynchronous work.
func RPCFutWith[A, R any](rk *Rank, target Intrank, fn func(*Rank, A) Future[R], arg A, cxs ...Cx) (Future[R], CxFutures) {
	inv := rpcInvoker(func(trk *Rank, src Intrank, seq uint64, args []byte) {
		var a A
		mustUnmarshal(args, &a)
		inner := fn(trk, a)
		reply := func() {
			inner.c.onReady(func(r R) {
				trk.replyTo(src, seq, mustMarshal(r))
			})
		}
		if inner.c.pers == nil || inner.c.pers.onOwnerGoroutine() {
			reply()
		} else {
			// The body handed back a future owned by another persona
			// (e.g. a deferred dist-object fetch pinned to the master
			// persona); futures are persona-local, so the continuation
			// must be registered on the owner's goroutine.
			inner.c.pers.LPC(reply)
		}
	})
	return rpcRoundTrip[R](rk, target, mustMarshal(arg), inv, rk.wireName(fn), cxs)
}

// RPCFFWith invokes fn(arg) on the target rank with no acknowledgment or
// result (upcxx rpc_ff) and an explicit completion set: operation
// completion fires when the conduit accepts the message, source completion
// when the argument buffer may be reused, and a RemoteCxAsRPC descriptor
// at the target on landing.
func RPCFFWith[A any](rk *Rank, target Intrank, fn func(*Rank, A), arg A, cxs ...Cx) CxFutures {
	inv := rpcFFInvoker(func(trk *Rank, src Intrank, args []byte) {
		var a A
		mustUnmarshal(args, &a)
		fn(trk, a)
	})
	return rpcOneWay(rk, target, mustMarshal(arg), inv, rk.wireName(fn), cxs)
}

// RPC invokes fn(arg) on the target rank and returns a future for its
// result.
func RPC[A, R any](rk *Rank, target Intrank, fn func(*Rank, A) R, arg A) Future[R] {
	f, _ := RPCWith(rk, target, fn, arg)
	return f
}

// RPC0 invokes a no-argument fn on the target rank.
func RPC0[R any](rk *Rank, target Intrank, fn func(*Rank) R) Future[R] {
	inv := rpcInvoker(func(trk *Rank, src Intrank, seq uint64, _ []byte) {
		trk.replyTo(src, seq, mustMarshal(fn(trk)))
	})
	f, _ := rpcRoundTrip[R](rk, target, nil, inv, "", nil)
	return f
}

// RPC2 invokes a two-argument fn on the target rank.
func RPC2[A, B, R any](rk *Rank, target Intrank, fn func(*Rank, A, B) R, a A, b B) Future[R] {
	argBytes := mustMarshal(a)
	argBytes = append(argBytes, mustMarshal(b)...)
	inv := rpcInvoker(func(trk *Rank, src Intrank, seq uint64, args []byte) {
		var av A
		var bv B
		n, err := serial.DecodeInto(args, &av)
		if err != nil {
			panic(fmt.Sprintf("upcxx: RPC2 first argument decode: %v", err))
		}
		mustUnmarshal(args[n:], &bv)
		trk.replyTo(src, seq, mustMarshal(fn(trk, av, bv)))
	})
	f, _ := rpcRoundTrip[R](rk, target, argBytes, inv, rk.wireName(fn), nil)
	return f
}

// RPCFut invokes fn on the target; fn returns a future, and the reply is
// sent when that future readies.
func RPCFut[A, R any](rk *Rank, target Intrank, fn func(*Rank, A) Future[R], arg A) Future[R] {
	f, _ := RPCFutWith(rk, target, fn, arg)
	return f
}

// RPCFF invokes fn(arg) on the target rank with no acknowledgment or
// result (upcxx rpc_ff): its progression matches the one-way flow of
// rput/rget (paper footnote 5).
func RPCFF[A any](rk *Rank, target Intrank, fn func(*Rank, A), arg A) {
	RPCFFWith(rk, target, fn, arg)
}

// RPCFF0 is RPCFF with no argument.
func RPCFF0(rk *Rank, target Intrank, fn func(*Rank)) {
	inv := rpcFFInvoker(func(trk *Rank, src Intrank, _ []byte) { fn(trk) })
	rpcOneWay(rk, target, nil, inv, "", nil)
}

// RPCFF2 is RPCFF with two arguments.
func RPCFF2[A, B any](rk *Rank, target Intrank, fn func(*Rank, A, B), a A, b B) {
	argBytes := mustMarshal(a)
	argBytes = append(argBytes, mustMarshal(b)...)
	inv := rpcFFInvoker(func(trk *Rank, src Intrank, args []byte) {
		var av A
		var bv B
		n, err := serial.DecodeInto(args, &av)
		if err != nil {
			panic(fmt.Sprintf("upcxx: RPCFF2 first argument decode: %v", err))
		}
		mustUnmarshal(args[n:], &bv)
		fn(trk, av, bv)
	})
	rpcOneWay(rk, target, argBytes, inv, "", nil)
}
