package upcxx

import (
	"sync/atomic"
	"testing"
)

// The goroutine-id lookup (curGID) parses runtime.Stack at ~0.5–1µs per
// call — comparable to the modeled LogGP overheads, so the hot paths must
// not re-derive it per operation. The fix caches it three ways: the
// per-goroutine state carries its gid (curState derives it once), AM
// drains pass it to execBody through the conduit poll token, and
// completion LPCs use the owned fulfill path (delivery on the owning
// persona's goroutine is guaranteed, so no check is needed). These tests
// pin the property with the gidLookups counter.

// TestGIDLookupsCachedFulfill: a flood of K puts must cost about one
// lookup per op (the initiation-side persona resolution), not the two to
// three a per-completion re-derivation would add.
func TestGIDLookupsCachedFulfill(t *testing.T) {
	const K = 512
	Run(1, func(rk *Rank) {
		dst := MustNewArray[uint64](rk, 8)
		src := make([]uint64, 8)
		RPut(rk, src, dst).Wait() // warm the persona state
		start := gidLookups.Load()
		p := NewPromise[Unit](rk)
		for i := 0; i < K; i++ {
			RPutPromise(rk, src, dst, p)
		}
		p.Finalize().Wait()
		delta := gidLookups.Load() - start
		// Initiation resolves the current persona once per op; the
		// completion side (conduit callback → persona LPC → owned
		// fulfill) must add none. Allow constant slack for the wait loop.
		if delta > K+K/4+64 {
			t.Errorf("%d puts cost %d gid lookups; completion path is re-deriving the id", K, delta)
		}
	})
}

// TestGIDLookupsCachedExecBody: executing K incoming RPCs in AM drains
// must not re-derive the harvester's id per message — it rides along as
// the conduit poll token.
func TestGIDLookupsCachedExecBody(t *testing.T) {
	const K = 512
	var hits atomic.Int64
	Run(2, func(rk *Rank) {
		rk.Barrier()
		start := gidLookups.Load()
		if rk.Me() == 0 {
			for i := 0; i < K; i++ {
				RPCFF(rk, 1, func(trk *Rank, _ int) { hits.Add(1) }, i)
			}
		}
		// Spin with the goroutine state hoisted, as Future.Wait does —
		// the public Progress() entry point resolves it once per call by
		// design, which is what this test must not conflate with the
		// per-message execBody cost.
		gs := curState()
		for hits.Load() < K {
			rk.progressWith(gs)
		}
		rk.Barrier()
		delta := gidLookups.Load() - start
		// Neither side resolves a persona per fire-and-forget RPC; the
		// whole exchange should cost a small constant number of lookups
		// (barrier machinery, default persona binding), far below K.
		if delta > K/4+64 {
			t.Errorf("%d RPCs cost %d gid lookups; execBody is re-deriving the id", K, delta)
		}
	})
}

// BenchmarkFulfillGIDLookups reports the lookups-per-op of the put
// completion path alongside its wall time (gidlookups/op should sit at
// ~1.0: initiation only).
func BenchmarkFulfillGIDLookups(b *testing.B) {
	w := NewWorld(Config{Ranks: 1, SegmentSize: 1 << 20})
	defer w.Close()
	w.Run(func(rk *Rank) {
		dst := MustNewArray[uint64](rk, 8)
		src := make([]uint64, 8)
		RPut(rk, src, dst).Wait()
		start := gidLookups.Load()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			RPut(rk, src, dst).Wait()
		}
		b.StopTimer()
		b.ReportMetric(float64(gidLookups.Load()-start)/float64(b.N), "gidlookups/op")
	})
}

// BenchmarkCurGID is the cost being avoided: one goroutine-id derivation.
func BenchmarkCurGID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curGID()
	}
}
