package upcxx

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"upcxx/internal/gasnet"
)

// Completion-object conformance matrix:
//
//	{operation, source, remote} × {future, promise, LPC, RPC}
//	  × {host, device destination} × {self, cross-rank}
//
// Each valid cell issues one put with exactly that descriptor (plus an
// op-future where the cell itself provides no way to block), proves the
// event fired, and proves the put's bytes are correct at the destination.
// The matrix runs under -race in CI (make race) — the deliveries cross
// the persona LPC queues, which is precisely the machinery the race gate
// exists to watch. The cells the type system cannot rule out but the
// model forbids (RPC delivery of op/source events; source/remote events
// on gets) are pinned to panic in TestCxInvalidCombos.

// cxDeliveries enumerates the delivery methods under test.
var cxDeliveries = []string{"future", "promise", "lpc", "rpc"}

// cxEvents enumerates the events under test.
var cxEvents = []CxEvent{OpDone, SourceDone, RemoteDone}

// cxSigArgs is the argument bundle of the matrix's remote-RPC cells.
type cxSigArgs struct {
	Dst  GPtr[uint64] // the put's destination
	Flag GPtr[uint64] // host flag at the target: 1 = data correct, 2 = wrong
	N    int64
}

// cxCheckLanded verifies at the target that the put's payload (the
// pattern i+1) is fully visible, using a direct segment read so
// device-kind destinations are checkable from inside a restricted
// context. Test-only: applications use RunKernel or kind-aware copies.
func cxCheckLanded(trk *Rank, a cxSigArgs) bool {
	seg := trk.ep.SegByID(a.Dst.segID("cxCheckLanded"))
	got := seg.Bytes(a.Dst.Off, int(a.N)*8)
	want := make([]byte, 0, a.N*8)
	for i := int64(0); i < a.N; i++ {
		want = append(want, byte(i+1), 0, 0, 0, 0, 0, 0, 0)
	}
	return bytes.Equal(got, want)
}

func cxSignalBody(trk *Rank, a cxSigArgs) {
	if cxCheckLanded(trk, a) {
		Local(trk, a.Flag, 1)[0] = 1
	} else {
		Local(trk, a.Flag, 1)[0] = 2
	}
}

// readFlag reads a flag word through an RPC at its owner: the read
// executes on the same execution persona as the remote-cx body that
// writes it, so polling never races the writer (one-sided gets of a word
// another rank's CPU is writing would, exactly as on real RDMA hardware).
func readFlag(rk *Rank, flag GPtr[uint64]) uint64 {
	return RPC(rk, flag.Owner, func(trk *Rank, f GPtr[uint64]) uint64 {
		return Local(trk, f, 1)[0]
	}, flag).Wait()
}

// resetFlag zeroes a flag word at its owner through the same RPC path.
func resetFlag(rk *Rank, flag GPtr[uint64]) {
	RPC(rk, flag.Owner, func(trk *Rank, f GPtr[uint64]) Unit {
		Local(trk, f, 1)[0] = 0
		return Unit{}
	}, flag).Wait()
}

// cxSlots holds one target rank's published buffers for the matrix.
type cxSlots struct {
	Host GPtr[uint64]
	Dev  GPtr[uint64]
	Flag GPtr[uint64]
}

const cxN = 16 // put payload elements

func TestCxMatrix(t *testing.T) {
	Run(2, func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<16)
		slots := cxSlots{
			Host: MustNewArray[uint64](rk, cxN),
			Dev:  MustNewDeviceArray[uint64](da, cxN),
			Flag: MustNewArray[uint64](rk, 1),
		}
		obj := NewDistObject(rk, slots)
		rk.Barrier()
		if rk.Me() == 0 {
			src := make([]uint64, cxN)
			for i := range src {
				src[i] = uint64(i + 1)
			}
			for _, cross := range []bool{false, true} {
				target := Intrank(0)
				if cross {
					target = 1
				}
				tgt := FetchDist[cxSlots](rk, obj.ID(), target).Wait()
				for _, dev := range []bool{false, true} {
					dst := tgt.Host
					if dev {
						dst = tgt.Dev
					}
					for _, ev := range cxEvents {
						for _, how := range cxDeliveries {
							name := fmt.Sprintf("%v/%s/dev=%v/cross=%v", ev, how, dev, cross)
							if how == "rpc" && ev != RemoteDone {
								continue // forbidden; pinned in TestCxInvalidCombos
							}
							runCxCell(t, rk, name, src, dst, tgt.Flag, ev, how)
						}
					}
				}
			}
		}
		rk.Barrier()
	})
}

// runCxCell executes one matrix cell: a put of src to dst carrying the
// descriptor (ev, how), blocking until both the put and the event have
// demonstrably completed, then verifying the destination bytes.
func runCxCell(t *testing.T, rk *Rank, name string, src []uint64, dst, flag GPtr[uint64], ev CxEvent, how string) {
	// Zero the destination and the flag so each cell stands alone.
	zero := make([]uint64, cxN)
	RPut(rk, zero, dst).Wait()
	resetFlag(rk, flag)

	var cx Cx
	fired := false
	var prom *Promise[Unit]
	switch how {
	case "future", "rpc":
	case "promise":
		prom = NewPromise[Unit](rk)
	case "lpc":
	}
	switch {
	case how == "rpc":
		cx = RemoteCxAsRPC(cxSignalBody, cxSigArgs{Dst: dst, Flag: flag, N: cxN})
	case how == "future" && ev == OpDone:
		cx = OpCxAsFuture()
	case how == "future" && ev == SourceDone:
		cx = SourceCxAsFuture()
	case how == "future" && ev == RemoteDone:
		cx = RemoteCxAsFuture()
	case how == "promise" && ev == OpDone:
		cx = OpCxAsPromise(prom)
	case how == "promise" && ev == SourceDone:
		cx = SourceCxAsPromise(prom)
	case how == "promise" && ev == RemoteDone:
		cx = RemoteCxAsPromise(prom)
	case how == "lpc" && ev == OpDone:
		cx = OpCxAsLPC(nil, func() { fired = true })
	case how == "lpc" && ev == SourceDone:
		cx = SourceCxAsLPC(nil, func() { fired = true })
	case how == "lpc" && ev == RemoteDone:
		cx = RemoteCxAsLPC(nil, func() { fired = true })
	}

	// Every cell also requests op-as-future so it can bound the put —
	// except the cell that *is* op-as-future.
	cxs := []Cx{cx}
	if !(ev == OpDone && how == "future") {
		cxs = append(cxs, OpCxAsFuture())
	}
	fs := RPutWith(rk, src, dst, cxs...)

	// Block on the cell's own delivery.
	switch how {
	case "future":
		var f Future[Unit]
		switch ev {
		case OpDone:
			f = fs.Op
		case SourceDone:
			f = fs.Source
		case RemoteDone:
			f = fs.Remote
		}
		if !f.Valid() {
			t.Fatalf("%s: requested future is invalid", name)
		}
		f.Wait()
	case "promise":
		prom.Finalize().Wait()
	case "lpc":
		waitUntil(t, rk, name+" lpc", func() bool { return fired })
	case "rpc":
		waitUntil(t, rk, name+" rpc flag", func() bool {
			return readFlag(rk, flag) != 0
		})
		if got := readFlag(rk, flag); got != 1 {
			t.Errorf("%s: remote RPC observed wrong/partial data (flag=%d)", name, got)
		}
	}
	// Operation completion always bounds the cell.
	fs.Op.Wait()

	// The put's bytes must be at the destination (read back through the
	// kind-aware path).
	got := make([]uint64, cxN)
	RGet(rk, dst, got).Wait()
	for i := range got {
		if got[i] != uint64(i+1) {
			t.Fatalf("%s: dst[%d] = %d, want %d", name, i, got[i], i+1)
		}
	}
}

// waitUntil spins user progress until cond holds, yielding on idle
// passes so peer-rank goroutines run on few-core hosts.
func waitUntil(t *testing.T, rk *Rank, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if rk.Progress() == 0 {
			runtime.Gosched()
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: never became true", what)
		}
	}
}

// TestCxSourceBufferReuse pins the source-completion contract: once
// source_cx fires, the initiator may scribble on the source buffer
// without affecting the data in flight.
func TestCxSourceBufferReuse(t *testing.T) {
	Run(2, func(rk *Rank) {
		dst := MustNewArray[uint64](rk, 4)
		obj := NewDistObject(rk, dst)
		rk.Barrier()
		if rk.Me() == 0 {
			rdst := FetchDist[GPtr[uint64]](rk, obj.ID(), 1).Wait()
			src := []uint64{10, 20, 30, 40}
			fs := RPutWith(rk, src, rdst, OpCxAsFuture(), SourceCxAsFuture())
			fs.Source.Wait()
			for i := range src {
				src[i] = 999 // reuse after source completion
			}
			fs.Op.Wait()
			got := make([]uint64, 4)
			RGet(rk, rdst, got).Wait()
			for i, v := range []uint64{10, 20, 30, 40} {
				if got[i] != v {
					t.Errorf("dst[%d] = %d, want %d (source buffer not captured)", i, got[i], v)
				}
			}
		}
		rk.Barrier()
	})
}

// TestCxVectorAggregation: a multi-fragment put with one completion set —
// operation and remote events must fire exactly once, after *all*
// fragments have landed, and the gated remote RPC must observe every
// fragment's bytes.
func TestCxVectorAggregation(t *testing.T) {
	Run(2, func(rk *Rank) {
		dst := MustNewArray[uint64](rk, cxN)
		flag := MustNewArray[uint64](rk, 1)
		obj := NewDistObject(rk, [2]GPtr[uint64]{dst, flag})
		rk.Barrier()
		if rk.Me() == 0 {
			tg := FetchDist[[2]GPtr[uint64]](rk, obj.ID(), 1).Wait()
			rdst, rflag := tg[0], tg[1]
			src := make([]uint64, cxN)
			for i := range src {
				src[i] = uint64(i + 1)
			}
			// Four fragments of four elements each, one shared cx set.
			var frags []PutPair[uint64]
			for f := 0; f < 4; f++ {
				frags = append(frags, PutPair[uint64]{Src: src[f*4 : (f+1)*4], Dst: rdst.Add(f * 4)})
			}
			lpcs := 0
			p := NewPromise[Unit](rk)
			fs := RPutVWith(rk, frags,
				OpCxAsFuture(),
				OpCxAsPromise(p),
				OpCxAsLPC(nil, func() { lpcs++ }),
				RemoteCxAsRPC(cxSignalBody, cxSigArgs{Dst: rdst, Flag: rflag, N: cxN}))
			fs.Op.Wait()
			p.Finalize().Wait()
			waitUntil(t, rk, "aggregated lpc", func() bool { return lpcs > 0 })
			if lpcs != 1 {
				t.Errorf("op LPC fired %d times for a 4-fragment put, want once", lpcs)
			}
			waitUntil(t, rk, "gated remote rpc", func() bool {
				return readFlag(rk, rflag) != 0
			})
			if got := readFlag(rk, rflag); got != 1 {
				t.Errorf("gated remote RPC saw partial data (flag=%d)", got)
			}
		}
		rk.Barrier()
	})
}

// TestCxEmptyVector: a zero-fragment vector put with completions must
// complete immediately rather than hang.
func TestCxEmptyVector(t *testing.T) {
	Run(1, func(rk *Rank) {
		p := NewPromise[Unit](rk)
		fs := RPutVWith(rk, []PutPair[uint64](nil), OpCxAsFuture(), OpCxAsPromise(p))
		fs.Op.Wait()
		p.Finalize().Wait()
	})
}

// TestCxInvalidCombos pins the cells of the matrix the model forbids.
func TestCxInvalidCombos(t *testing.T) {
	Run(2, func(rk *Rank) {
		dst := MustNewArray[uint64](rk, 4)
		obj := NewDistObject(rk, dst)
		rk.Barrier()
		if rk.Me() == 0 {
			rdst := FetchDist[GPtr[uint64]](rk, obj.ID(), 1).Wait()
			buf := make([]uint64, 4)
			expectPanic(t, "source_cx on get", func() {
				RGetWith(rk, rdst, buf, SourceCxAsFuture())
			})
			// A copy's source is a global pointer the conduit reads only
			// when the hop chain reaches it (lazily, in realtime mode) —
			// a source event at injection would license overwriting bytes
			// still to be read.
			expectPanic(t, "source_cx on copy", func() {
				CopyWith(rk, dst, rdst, 4, SourceCxAsFuture())
			})
			expectPanic(t, "remote_cx on get", func() {
				RGetWith(rk, rdst, buf, RemoteCxAsFuture())
			})
			expectPanic(t, "remote_cx as_rpc on get", func() {
				RGetWith(rk, rdst, buf, RemoteCxAsRPC(func(*Rank, int) {}, 0))
			})
			expectPanic(t, "duplicate op as_future", func() {
				RPutWith(rk, buf, rdst, OpCxAsFuture(), OpCxAsFuture())
			})
			expectPanic(t, "nil promise", func() {
				RPutWith(rk, buf, rdst, OpCxAsPromise(nil))
			})
			expectPanic(t, "mixed-destination remote_cx", func() {
				frags := []PutPair[uint64]{
					{Src: buf[:1], Dst: rdst},
					{Src: buf[1:2], Dst: dst}, // different owner
				}
				RPutVWith(rk, frags, RemoteCxAsRPC(func(*Rank, int) {}, 0))
			})
			rk.Quiesce()
		}
		rk.Barrier()
	})
}

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

// TestCxRemoteAfterDeviceDMA is the acceptance pin for the conduit's
// remote-completion hop placement: on a cross-rank put into *device*
// memory under a real-time model whose DMA hop is far slower than the
// wire, the remote RPC must still observe the complete payload — i.e. the
// notification is enqueued after the h2d DMA lands, not when the wire hop
// reaches the target's host side. An implementation that fired at wire
// landing would run the body ~milliseconds before the copy engine writes
// the bytes and reliably fail the content check.
func TestCxRemoteAfterDeviceDMA(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time model run")
	}
	cfg := Config{
		Ranks:        2,
		RanksPerNode: 1,
		Model:        &gasnet.LogGP{L: 20 * time.Microsecond, Gp: time.Microsecond},
		DMA:          &gasnet.PCIeDMA{L: 4 * time.Millisecond, Gp: 100 * time.Microsecond},
	}
	RunConfig(cfg, func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<16)
		slots := cxSlots{
			Dev:  MustNewDeviceArray[uint64](da, cxN),
			Flag: MustNewArray[uint64](rk, 1),
		}
		obj := NewDistObject(rk, slots)
		rk.Barrier()
		if rk.Me() == 0 {
			tgt := FetchDist[cxSlots](rk, obj.ID(), 1).Wait()
			src := make([]uint64, cxN)
			for i := range src {
				src[i] = uint64(i + 1)
			}
			RPutWith(rk, src, tgt.Dev,
				OpCxAsFuture(),
				RemoteCxAsRPC(cxSignalBody, cxSigArgs{Dst: tgt.Dev, Flag: tgt.Flag, N: cxN}))
			waitUntil(t, rk, "device remote rpc", func() bool {
				return readFlag(rk, tgt.Flag) != 0
			})
			if got := readFlag(rk, tgt.Flag); got != 1 {
				t.Errorf("remote RPC ran before the destination DMA completed (flag=%d)", got)
			}
		}
		rk.Barrier()
	})
}

// TestCxCopyRemoteRPC: remote completion on upcxx::copy, including a
// same-rank device destination and a third-party initiator.
func TestCxCopyRemoteRPC(t *testing.T) {
	Run(3, func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<16)
		slots := cxSlots{
			Host: MustNewArray[uint64](rk, cxN),
			Dev:  MustNewDeviceArray[uint64](da, cxN),
			Flag: MustNewArray[uint64](rk, 1),
		}
		obj := NewDistObject(rk, slots)
		rk.Barrier()
		if rk.Me() == 0 {
			src := make([]uint64, cxN)
			for i := range src {
				src[i] = uint64(i + 1)
			}
			// Stage the pattern into rank 1's host slot.
			s1 := FetchDist[cxSlots](rk, obj.ID(), 1).Wait()
			s2 := FetchDist[cxSlots](rk, obj.ID(), 2).Wait()
			RPut(rk, src, s1.Host).Wait()
			// Third-party copy rank1.host → rank2.dev with a remote RPC at
			// rank 2.
			CopyWith(rk, s1.Host, s2.Dev, cxN,
				OpCxAsFuture(),
				RemoteCxAsRPC(cxSignalBody, cxSigArgs{Dst: s2.Dev, Flag: s2.Flag, N: cxN}))
			waitUntil(t, rk, "third-party copy remote rpc", func() bool {
				return readFlag(rk, s2.Flag) != 0
			})
			if got := readFlag(rk, s2.Flag); got != 1 {
				t.Errorf("copy remote RPC saw wrong data (flag=%d)", got)
			}
		}
		rk.Barrier()
	})
}

// TestCxLPCToExplicitPersona: completions must land on the persona the
// descriptor names, not the initiating goroutine's.
func TestCxLPCToExplicitPersona(t *testing.T) {
	Run(2, func(rk *Rank) {
		dst := MustNewArray[uint64](rk, 1)
		obj := NewDistObject(rk, dst)
		rk.Barrier()
		if rk.Me() == 0 {
			rdst := FetchDist[GPtr[uint64]](rk, obj.ID(), 1).Wait()
			// The master persona is current on this goroutine; deliver the
			// op LPC to it explicitly and confirm it arrives through its
			// queue.
			hit := false
			fs := RPutWith(rk, []uint64{7}, rdst,
				OpCxAsFuture(),
				OpCxAsLPC(rk.MasterPersona(), func() { hit = true }))
			fs.Op.Wait()
			waitUntil(t, rk, "explicit persona lpc", func() bool { return hit })
		}
		rk.Barrier()
	})
}
