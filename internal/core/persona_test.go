package upcxx

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"upcxx/internal/gasnet"
)

// Tests for the persona subsystem: current/master personas, scope
// nesting, cross-thread LPC FIFO delivery, persona-owned completion
// routing, and the dedicated progress-thread mode. Run with -race: the
// whole point of personas is safe multithreaded sharing of one rank.

func TestPersonaCurrentIsMasterInsideRun(t *testing.T) {
	Run(2, func(rk *Rank) {
		if rk.CurrentPersona() != rk.MasterPersona() {
			t.Error("Run goroutine's current persona is not the master persona")
		}
		if rk.MasterPersona().Rank() != rk {
			t.Error("master persona rank mismatch")
		}
		rk.Barrier()
	})
}

func TestPersonaScopeNesting(t *testing.T) {
	Run(1, func(rk *Rank) {
		a := NewPersona(rk, "a")
		b := NewPersona(rk, "b")

		sa := AcquirePersona(a)
		if rk.CurrentPersona() != a {
			t.Fatal("inner scope a not current")
		}
		sb := AcquirePersona(b)
		if rk.CurrentPersona() != b {
			t.Fatal("inner scope b not current")
		}
		// Re-acquiring a persona this goroutine already holds nests.
		sa2 := AcquirePersona(a)
		if rk.CurrentPersona() != a {
			t.Fatal("re-acquired a not current")
		}
		sa2.Release()
		if rk.CurrentPersona() != b {
			t.Fatal("release did not restore b")
		}
		sb.Release()
		if rk.CurrentPersona() != a {
			t.Fatal("release did not restore a")
		}
		sa.Release()
		if rk.CurrentPersona() != rk.MasterPersona() {
			t.Fatal("release did not restore master")
		}
	})
}

func TestPersonaScopeLIFOEnforced(t *testing.T) {
	Run(1, func(rk *Rank) {
		a := NewPersona(rk, "a")
		b := NewPersona(rk, "b")
		sa := AcquirePersona(a)
		sb := AcquirePersona(b)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-order Release should panic")
				}
			}()
			sa.Release()
		}()
		sb.Release()
		sa.Release()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("double Release should panic")
				}
			}()
			sa.Release()
		}()
	})
}

func TestPersonaAcquireHeldElsewherePanics(t *testing.T) {
	Run(1, func(rk *Rank) {
		p := NewPersona(rk, "contested")
		sc := AcquirePersona(p)
		defer sc.Release()
		done := make(chan bool)
		go func() {
			defer func() { done <- recover() != nil }()
			AcquirePersona(p)
		}()
		if !<-done {
			t.Error("acquiring a persona held by another goroutine should panic")
		}
	})
}

func TestPersonaLPCFIFOCrossThread(t *testing.T) {
	// A producer goroutine floods LPCs at the master persona while the
	// owner drains concurrently; delivery must be FIFO in enqueue order.
	Run(1, func(rk *Rank) {
		const n = 20000
		var got []int
		master := rk.MasterPersona()
		go func() {
			for i := 0; i < n; i++ {
				i := i
				LPCTo(master, func() { got = append(got, i) })
			}
		}()
		for len(got) < n {
			rk.Progress()
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("LPC order broken at %d: got %d", i, v)
			}
		}
	})
}

func TestPersonaLPCFIFOManyProducers(t *testing.T) {
	// With several producers, global order is the CAS linearization, but
	// each producer's own sequence must stay FIFO.
	Run(1, func(rk *Rank) {
		const producers, per = 4, 5000
		type item struct{ who, seq int }
		var got []item
		master := rk.MasterPersona()
		for w := 0; w < producers; w++ {
			w := w
			go func() {
				for i := 0; i < per; i++ {
					i := i
					LPCTo(master, func() { got = append(got, item{w, i}) })
				}
			}()
		}
		for len(got) < producers*per {
			rk.Progress()
		}
		next := make([]int, producers)
		for _, it := range got {
			if it.seq != next[it.who] {
				t.Fatalf("producer %d out of order: got %d want %d", it.who, it.seq, next[it.who])
			}
			next[it.who]++
		}
	})
}

func TestPersonaDefaultBoundPerGoroutine(t *testing.T) {
	// A plain goroutine touching the rank gets its own default persona,
	// distinct from the master and stable across calls.
	Run(1, func(rk *Rank) {
		var p1, p2 *Persona
		done := make(chan struct{})
		go func() {
			defer close(done)
			p1 = rk.CurrentPersona()
			p2 = rk.CurrentPersona()
		}()
		<-done
		if p1 == nil || p1 != p2 {
			t.Error("default persona not stable within a goroutine")
		}
		if p1 == rk.MasterPersona() {
			t.Error("spawned goroutine must not get the master persona")
		}
	})
}

func TestPersonaCompletionDeliveredToInitiator(t *testing.T) {
	// Communication initiated from a non-master goroutine completes on
	// that goroutine's own persona: its future readies via its own
	// Progress, with the continuation running on the initiating persona.
	Run(2, func(rk *Rank) {
		dst := MustNewArray[uint64](rk, 4)
		_ = NewDistObject(rk, dst)
		rk.Barrier()
		if rk.Me() == 0 {
			remote := FetchDist[GPtr[uint64]](rk, 0, 1).Wait()
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				mine := rk.CurrentPersona()
				var onPersona *Persona
				f := ThenDo(RPut(rk, []uint64{7}, remote), func(Unit) {
					onPersona = rk.CurrentPersona()
				})
				f.Wait()
				if onPersona != mine {
					t.Errorf("continuation ran on %v, want initiator persona %v", onPersona, mine)
				}
				sum := RPC(rk, 1, func(trk *Rank, x uint64) uint64 { return x * 2 }, 21).Wait()
				if sum != 42 {
					t.Errorf("rpc from user goroutine = %d", sum)
				}
			}()
			// The master goroutine sits in wg.Wait without progressing:
			// the user goroutine's own Wait harvests the reply AM and
			// drains its persona, and rank 1 executes the RPC inside
			// its barrier progress.
			wg.Wait()
		}
		rk.Barrier()
	})
}

func TestPersonaCollectivesFromAnyPersona(t *testing.T) {
	// Collectives no longer pin to the master persona: any persona may
	// initiate, entry is handed off to the rank's execution persona, and
	// the completion routes back to the initiating persona. The master
	// keeps progressing (in non-progress-thread mode the engine advances
	// on the master persona, same attentiveness rule as incoming RPCs).
	Run(1, func(rk *Rank) {
		var done atomic.Bool
		go func() {
			defer done.Store(true)
			rk.Barrier()
			got := AllReduce(rk.WorldTeam(), int64(41),
				func(a, b int64) int64 { return a + b }).Wait()
			if got != 41 {
				t.Errorf("off-master allreduce = %d, want 41", got)
			}
		}()
		for !done.Load() {
			if rk.Progress() == 0 {
				runtime.Gosched()
			}
		}
	})
}

func TestPersonaProgressThreadServesInattentiveRank(t *testing.T) {
	// With Config.ProgressThread, a rank that never calls Progress still
	// executes incoming RPCs — the paper's motivation for a dedicated
	// progress thread.
	release := make(chan struct{})
	RunConfig(Config{Ranks: 2, ProgressThread: true}, func(rk *Rank) {
		if rk.Me() == 0 {
			got := RPC(rk, 1, func(trk *Rank, x int) int { return x + 1 }, 41).Wait()
			if got != 42 {
				t.Errorf("rpc to inattentive rank = %d", got)
			}
			close(release)
		} else {
			// Simulated compute phase: no Progress calls at all until
			// rank 0 has its answer.
			<-release
		}
		rk.Barrier()
	})
}

func TestPersonaProgressThreadRPCBodyRunsOnProgressPersona(t *testing.T) {
	release := make(chan struct{})
	RunConfig(Config{Ranks: 2, ProgressThread: true}, func(rk *Rank) {
		if rk.Me() == 0 {
			ok := RPC(rk, 1, func(trk *Rank, _ int) bool {
				return trk.CurrentPersona() == trk.ProgressPersona()
			}, 0).Wait()
			if !ok {
				t.Error("RPC body did not run on the target's progress persona")
			}
			close(release)
		} else {
			<-release
		}
		rk.Barrier()
	})
}

func TestPersonaProgressThreadManyUserGoroutines(t *testing.T) {
	// Several user goroutines share each rank: every goroutine initiates
	// RPCs and RPuts on its own (default) persona and waits for its own
	// completions, while the progress threads keep all ranks attentive.
	RunConfig(Config{Ranks: 2, ProgressThread: true}, func(rk *Rank) {
		const users, ops = 4, 50
		slab := MustNewArray[uint64](rk, users*ops)
		_ = NewDistObject(rk, slab)
		rk.Barrier()
		peer := (rk.Me() + 1) % rk.N()
		remote := FetchDist[GPtr[uint64]](rk, 0, peer).Wait()
		var wg sync.WaitGroup
		for u := 0; u < users; u++ {
			u := u
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer DetachDefaultPersonas()
				for i := 0; i < ops; i++ {
					val := uint64(rk.Me())<<32 | uint64(u)<<16 | uint64(i)
					RPut(rk, []uint64{val}, remote.Add(u*ops+i)).Wait()
					got := RPC(rk, peer, func(trk *Rank, x uint64) uint64 { return x ^ 0xff }, val).Wait()
					if got != val^0xff {
						t.Errorf("user %d op %d: rpc = %#x", u, i, got)
					}
				}
			}()
		}
		wg.Wait()
		rk.Barrier()
		for u := 0; u < users; u++ {
			for i := 0; i < ops; i++ {
				want := uint64(peer)<<32 | uint64(u)<<16 | uint64(i)
				if got := Local(rk, slab, users*ops)[u*ops+i]; got != want {
					t.Errorf("slab[%d,%d] = %#x want %#x", u, i, got, want)
				}
			}
		}
		rk.Barrier()
	})
}

func TestPersonaProgressThreadQuiesceAndReuse(t *testing.T) {
	// Progress-thread worlds support repeated epochs like plain worlds.
	w := NewWorld(Config{Ranks: 2, ProgressThread: true})
	defer w.Close()
	for epoch := 0; epoch < 3; epoch++ {
		w.Run(func(rk *Rank) {
			got := RPC(rk, (rk.Me()+1)%rk.N(), func(trk *Rank, x int) int { return x * 3 }, epoch).Wait()
			if got != epoch*3 {
				t.Errorf("epoch %d: rpc = %d", epoch, got)
			}
		})
	}
}

func TestPersonaProgressThreadWithRealtimeModel(t *testing.T) {
	// Progress threads and the LogGP delivery engine coexist: the engine
	// goroutine times deliveries while progress goroutines harvest them.
	model := &gasnet.LogGP{O: time.Microsecond, L: 5 * time.Microsecond, Gp: time.Microsecond}
	RunConfig(Config{Ranks: 2, ProgressThread: true, Model: model}, func(rk *Rank) {
		got := RPC(rk, (rk.Me()+1)%rk.N(), func(trk *Rank, x int) int { return -x }, 9).Wait()
		if got != -9 {
			t.Errorf("rpc over modeled conduit = %d", got)
		}
		rk.Barrier()
	})
}

func TestPersonaAddressedRPCBodyProgressThread(t *testing.T) {
	// RPCBodyOn conformance in progress-thread mode: the progress thread
	// harvests the request AM but must NOT execute the body itself — it
	// lands in the named worker persona's LPC queue and runs when the
	// worker goroutine makes progress, with the worker persona current.
	var workerP atomic.Pointer[Persona]
	ready := make(chan struct{})
	release := make(chan struct{})
	var ffOnWorker atomic.Int32 // 0 pending, 1 worker persona, -1 other
	RunConfig(Config{Ranks: 2, ProgressThread: true}, func(rk *Rank) {
		if rk.Me() == 1 {
			var done atomic.Bool
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer DetachDefaultPersonas()
				worker := NewPersona(rk, "worker")
				sc := AcquirePersona(worker)
				defer sc.Release()
				workerP.Store(worker)
				close(ready)
				for !done.Load() {
					if rk.Progress() == 0 {
						runtime.Gosched()
					}
				}
			}()
			<-release
			done.Store(true)
			wg.Wait()
		} else {
			<-ready
			worker := workerP.Load()
			// Round-trip body executes on the named worker persona, not
			// the target's progress persona.
			f, _ := RPCWith(rk, 1, func(trk *Rank, _ int) bool {
				return trk.CurrentPersona() == workerP.Load() &&
					trk.CurrentPersona() != trk.ProgressPersona()
			}, 0, RPCBodyOn(worker))
			if !f.Wait() {
				t.Error("RPCWith body did not run on the named worker persona")
			}
			// Fire-and-forget body routes the same way.
			RPCFFWith(rk, 1, func(trk *Rank, _ int) {
				if trk.CurrentPersona() == workerP.Load() {
					ffOnWorker.Store(1)
				} else {
					ffOnWorker.Store(-1)
				}
			}, 0, RPCBodyOn(worker))
			for ffOnWorker.Load() == 0 {
				rk.Progress()
				runtime.Gosched()
			}
			if ffOnWorker.Load() != 1 {
				t.Error("RPCFFWith body did not run on the named worker persona")
			}
			close(release)
		}
		rk.Barrier()
	})
}

func TestPersonaAddressedRPCBodyValidation(t *testing.T) {
	Run(2, func(rk *Rank) {
		if rk.Me() == 0 {
			mine := NewPersona(rk, "local")
			// The body executes at the target, so the named persona must
			// belong to the target rank.
			expectPanic(t, "RPCBodyOn persona of the wrong rank", func() {
				RPCWith(rk, 1, func(*Rank, int) int { return 0 }, 0, RPCBodyOn(mine))
			})
			expectPanic(t, "RPCBodyOn(nil)", func() { RPCBodyOn(nil) })
			// Only RPC entry points carry a body; everything else rejects
			// the pseudo-descriptor at plan resolution.
			expectPanic(t, "RPCBodyOn on a put plan", func() {
				(&cxPlan{rk: rk, remotePeer: 1}).add(opPut, RPCBodyOn(mine))
			})
		}
		rk.Barrier()
	})
}

func TestPersonaDeferredDistFetchSurvivesHandlerGoroutine(t *testing.T) {
	// A fetch that arrives before the target constructs its
	// representative defers the reply. The deferral is pinned to the
	// master persona, so it survives whichever goroutine happened to
	// execute the fetch RPC (here: rank 1's progress thread).
	RunConfig(Config{Ranks: 2, ProgressThread: true}, func(rk *Rank) {
		if rk.Me() == 0 {
			got := FetchDist[int](rk, 0, 1).Wait()
			if got != 123 {
				t.Errorf("deferred fetch = %d", got)
			}
		} else {
			// Let the fetch arrive (and defer) before constructing.
			time.Sleep(20 * time.Millisecond)
			_ = NewDistObject(rk, 123)
		}
		rk.Barrier()
	})
}

func TestPersonaDetachDefaultPersonas(t *testing.T) {
	Run(1, func(rk *Rank) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			p := rk.CurrentPersona()
			// Re-acquiring and releasing the default persona must keep
			// it held by this goroutine (regression: a released default
			// persona livelocked every later fulfill on the goroutine).
			sc := AcquirePersona(p)
			sc.Release()
			if got := RPC0(rk, 0, func(*Rank) int { return 5 }).Wait(); got != 5 {
				t.Errorf("rpc after default re-acquire/release = %d", got)
			}
			DetachDefaultPersonas()
			if rk.CurrentPersona() == p {
				t.Error("detach did not discard the default persona")
			}
			DetachDefaultPersonas()
		}()
		for {
			select {
			case <-done:
				return
			default:
				rk.Progress()
			}
		}
	})
}
