package upcxx

import (
	"fmt"
	"sync"
	"time"

	"upcxx/internal/gasnet"
)

// Intrank identifies a process within a job or team, mirroring
// upcxx::intrank_t.
type Intrank = int32

// Config describes a job.
type Config struct {
	// Ranks is the number of SPMD processes.
	Ranks int
	// RanksPerNode controls the simulated node boundary for the timing
	// model; 0 places all ranks on one node.
	RanksPerNode int
	// SegmentSize is the per-rank shared segment in bytes (0: 8 MiB).
	SegmentSize int
	// Model is the conduit timing model (nil: zero-delay).
	Model gasnet.Model
	// WaitTimeout bounds any single Future.Wait as a deadlock backstop
	// (0: 60s).
	WaitTimeout time.Duration
}

// World is one UPC++ job: a fixed set of ranks over one conduit instance.
// Several worlds may coexist in a process (used heavily by tests).
type World struct {
	cfg Config
	net *gasnet.Network

	amRPC   gasnet.HandlerID
	amReply gasnet.HandlerID
	amFF    gasnet.HandlerID
	amColl  gasnet.HandlerID

	ranks []*Rank
}

// NewWorld creates a job with cfg.Ranks ranks. The caller must Close it.
func NewWorld(cfg Config) *World {
	if cfg.Ranks <= 0 {
		panic("upcxx: Config.Ranks must be positive")
	}
	if cfg.WaitTimeout == 0 {
		cfg.WaitTimeout = 60 * time.Second
	}
	w := &World{cfg: cfg}
	w.net = gasnet.NewNetwork(gasnet.Config{
		Ranks:        cfg.Ranks,
		RanksPerNode: cfg.RanksPerNode,
		SegmentSize:  cfg.SegmentSize,
		Model:        cfg.Model,
	})
	w.amRPC = w.net.RegisterAM(w.handleRPC)
	w.amReply = w.net.RegisterAM(w.handleReply)
	w.amFF = w.net.RegisterAM(w.handleFF)
	w.amColl = w.net.RegisterAM(w.handleColl)
	w.ranks = make([]*Rank, cfg.Ranks)
	for r := range w.ranks {
		rk := &Rank{
			w:          w,
			ep:         w.net.Endpoint(Intrank(r)),
			me:         Intrank(r),
			n:          Intrank(cfg.Ranks),
			rpcPending: make(map[uint64]func([]byte)),
			collStates: make(map[collKey]*collState),
			collSeqs:   make(map[uint64]uint64),
			splitSeqs:  make(map[uint64]uint64),
			teams:      make(map[uint64]*Team),
			distObjs:   make(map[uint64]any),
			distWaits:  make(map[uint64][]func(any)),
		}
		rk.worldTeam = newWorldTeam(rk)
		rk.teams[worldTeamID] = rk.worldTeam
		w.ranks[r] = rk
	}
	return w
}

// Ranks returns the job size.
func (w *World) Ranks() int { return w.cfg.Ranks }

// Rank returns the runtime object for rank r (mostly for tests; SPMD code
// receives its Rank from Run).
func (w *World) Rank(r Intrank) *Rank { return w.ranks[r] }

// Network exposes the underlying conduit (for stats and tooling).
func (w *World) Network() *gasnet.Network { return w.net }

// Close shuts down the conduit. The job must have quiesced.
func (w *World) Close() { w.net.Close() }

// Run executes fn as an SPMD epoch: one goroutine per rank, returning when
// every rank's fn has returned and a final barrier has completed (the
// implicit barrier of upcxx::finalize). Run may be called repeatedly on
// one world; rank state (segments, teams, distributed objects) persists
// across epochs.
func (w *World) Run(fn func(rk *Rank)) {
	var wg sync.WaitGroup
	wg.Add(len(w.ranks))
	for _, rk := range w.ranks {
		rk := rk
		go func() {
			defer wg.Done()
			fn(rk)
			rk.Barrier()
		}()
	}
	wg.Wait()
}

// Run executes fn on a fresh n-rank zero-delay world and tears it down —
// the common entry point: upcxx.Run(4, func(rk *upcxx.Rank) { ... }).
func Run(n int, fn func(rk *Rank)) {
	RunConfig(Config{Ranks: n}, fn)
}

// RunConfig is Run with an explicit configuration.
func RunConfig(cfg Config, fn func(rk *Rank)) {
	w := NewWorld(cfg)
	defer w.Close()
	w.Run(fn)
}

// Rank is one process's runtime: its view of the world, its shared
// segment, and its progress engine. All methods must be called from the
// rank's own goroutine (the one Run invoked fn on) unless noted.
//
// The progress engine keeps the paper's three conceptual queues (§III):
// defQ holds operations not yet handed to the conduit, the conduit's
// in-flight set is actQ (tracked by actCount), and compQ holds completed
// operations' user-visible actions ("futures to satisfy"), drained only by
// user-level progress.
type Rank struct {
	w  *World
	ep *gasnet.Endpoint
	me Intrank
	n  Intrank

	defQ           []func() // deferred injections
	actCount       int      // operations handed to the conduit, incomplete
	compQ          []func() // fulfilled-operation actions awaiting user progress
	inUserProgress bool

	rpcSeq     uint64
	rpcPending map[uint64]func(payload []byte)

	collStates map[collKey]*collState
	collSeqs   map[uint64]uint64 // per-team collective sequence numbers
	splitSeqs  map[uint64]uint64 // per-team split counters
	teams      map[uint64]*Team
	worldTeam  *Team

	distSeq   uint64
	distObjs  map[uint64]any
	distWaits map[uint64][]func(any)
}

// Me returns this process's world rank.
func (rk *Rank) Me() Intrank { return rk.me }

// N returns the job size.
func (rk *Rank) N() Intrank { return rk.n }

// World returns the owning world.
func (rk *Rank) World() *World { return rk.w }

// InternalProgress advances runtime bookkeeping without executing user
// callbacks or incoming RPCs: deferred operations are injected (defQ →
// actQ) and conduit completions are harvested (actQ → compQ). Every
// communication call performs this implicitly.
func (rk *Rank) InternalProgress() {
	for len(rk.defQ) > 0 {
		q := rk.defQ
		rk.defQ = nil
		for _, inject := range q {
			inject()
		}
	}
	rk.ep.PollCompletions()
}

// Progress performs user-level progress: internal progress, then draining
// compQ (satisfying futures and running their callbacks) and executing
// incoming RPCs. It returns the number of user-level items processed.
// Progress from inside a callback or RPC body is a no-op (restricted
// context).
func (rk *Rank) Progress() int {
	rk.InternalProgress()
	if rk.inUserProgress {
		return 0
	}
	rk.inUserProgress = true
	done := 0
	q := rk.compQ
	rk.compQ = nil
	for _, f := range q {
		f()
	}
	done += len(q)
	done += rk.ep.PollAMs()
	rk.inUserProgress = false
	return done
}

// Discharge drives internal progress until every locally-initiated
// operation has been handed to the conduit (defQ empty) — cf.
// upcxx::discharge.
func (rk *Rank) Discharge() {
	for len(rk.defQ) > 0 {
		rk.InternalProgress()
	}
}

// PendingOps returns the number of operations in the active state (handed
// to the conduit, completion not yet observed). Exposed for tests and
// diagnostics.
func (rk *Rank) PendingOps() int { return rk.actCount }

// Quiesce drives progress until this rank has no operations in flight:
// defQ and actQ empty and compQ drained. It does not wait for other
// ranks (combine with Barrier for a job-wide quiescence point).
func (rk *Rank) Quiesce() {
	for {
		rk.Progress()
		if len(rk.defQ) == 0 && rk.actCount == 0 && len(rk.compQ) == 0 {
			return
		}
	}
}

// LPC schedules fn to run on this rank during a future user-level
// progress call (a local procedure call in UPC++ terms).
func (rk *Rank) LPC(fn func()) {
	rk.compQ = append(rk.compQ, fn)
}

// deferOp places an injection closure on defQ and immediately runs
// internal progress, which injects it. The indirection keeps the paper's
// deferred state observable while remaining eager in practice.
func (rk *Rank) deferOp(inject func()) {
	rk.defQ = append(rk.defQ, inject)
	rk.InternalProgress()
}

// enqueueCompletion registers a user-visible action for the next
// user-level progress (operation entering compQ).
func (rk *Rank) enqueueCompletion(fn func()) {
	rk.compQ = append(rk.compQ, fn)
}

func (rk *Rank) String() string {
	return fmt.Sprintf("rank %d/%d", rk.me, rk.n)
}
