package upcxx

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
)

// Intrank identifies a process within a job or team, mirroring
// upcxx::intrank_t.
type Intrank = int32

// Config describes a job.
type Config struct {
	// Ranks is the number of SPMD processes.
	Ranks int
	// RanksPerNode controls the simulated node boundary for the timing
	// model; 0 places all ranks on one node.
	RanksPerNode int
	// SegmentSize is the per-rank shared segment in bytes (0: 8 MiB).
	SegmentSize int
	// Model is the conduit timing model (nil: zero-delay).
	Model gasnet.Model
	// DMA is the device copy-engine timing model used for transfers
	// touching device-kind memory (see NewDeviceAllocator). nil defaults
	// to PCIe3 when Model is real-time, zero-delay otherwise.
	DMA gasnet.DMAModel
	// WaitTimeout bounds any single Future.Wait as a deadlock backstop
	// (0: 60s).
	WaitTimeout time.Duration
	// ProgressThread starts one dedicated progress goroutine per rank.
	// The progress thread drives the conduit (internal progress and
	// incoming RPC execution) so ranks stay attentive while their user
	// goroutines compute, and multiple user goroutines can share one
	// rank: each goroutine's completions are delivered to its own
	// persona and drained by its own Progress/Wait calls. The
	// collectives engine advances on the progress persona in this mode,
	// so collectives make headway even while every user goroutine of a
	// rank computes.
	ProgressThread bool
	// CollRadix selects the collective tree topology: 0 (the default)
	// auto-tunes the radix from the machine model when Config.Model is a
	// real-time LogGP model (AutoRadix picks the k-nomial radix whose
	// modeled o/g/L tree-completion time is lowest for this job size)
	// and otherwise uses a binomial tree (radix 2); k >= 2 forces a
	// k-nomial tree of that radix, and 1 the flat tree (the root
	// exchanges with every member directly). Teams of at most 4 ranks
	// always use the flat tree. All ranks share one Config, so the
	// shapes agree job-wide.
	CollRadix int
	// Stats enables the runtime introspection layer (internal/obs):
	// per-rank counters, latency histograms, and the op-lifecycle trace
	// ring. Disabled (the default), every instrumentation point is a nil
	// pointer check. Env fallback: UPCXX_STATS=1.
	Stats bool
	// TraceDepth, when > 0, arms op-lifecycle tracing at startup with a
	// per-rank ring of this many events (implies Stats). Tracing can
	// also be armed later via World.ArmTrace. Env fallback:
	// UPCXX_TRACE=<depth> (UPCXX_TRACE=1 uses the default depth).
	TraceDepth int
	// TraceSample records every Nth operation while tracing is armed
	// (1-in-N sampling bounds the armed hot-path cost); 0 or 1 traces
	// every operation. Env fallback: UPCXX_TRACE_SAMPLE=<n>.
	TraceSample int
}

// envObsConfig fills unset observability knobs from the environment, the
// way UPCXX_* variables configure the C++ runtime.
func (cfg *Config) envObsConfig() {
	if !cfg.Stats {
		switch strings.ToLower(os.Getenv("UPCXX_STATS")) {
		case "1", "true", "yes", "on":
			cfg.Stats = true
		}
	}
	if cfg.TraceDepth == 0 {
		if v := os.Getenv("UPCXX_TRACE"); v != "" {
			if d, err := strconv.Atoi(v); err == nil && d > 0 {
				cfg.TraceDepth = d
			} else if strings.EqualFold(v, "on") || strings.EqualFold(v, "true") {
				cfg.TraceDepth = 1
			}
		}
	}
	if cfg.TraceDepth == 1 {
		cfg.TraceDepth = obs.DefaultTraceDepth
	}
	if cfg.TraceSample == 0 {
		if n, err := strconv.Atoi(os.Getenv("UPCXX_TRACE_SAMPLE")); err == nil && n > 0 {
			cfg.TraceSample = n
		}
	}
	if cfg.TraceDepth > 0 {
		cfg.Stats = true
	}
}

// World is one UPC++ job: a fixed set of ranks over one conduit instance.
// Several worlds may coexist in a process (used heavily by tests).
type World struct {
	cfg Config
	net *gasnet.Network
	obs *obs.Obs // nil unless Config.Stats

	amRPC      gasnet.HandlerID // all RPC traffic: requests, replies, fire-and-forget
	amRPCBatch gasnet.HandlerID // batched RPC traffic: coalesced requests and replies
	amColl     gasnet.HandlerID
	amRemote   gasnet.HandlerID // remote-completion RPCs (remote_cx::as_rpc)

	ranks []*Rank

	// dist marks a multi-process world: this OS process hosts exactly one
	// rank (self); the others live in sibling processes reached over the
	// real conduit (see proc.go). ranks[r] is nil for every r != self.
	dist bool
	self Intrank

	ptStop chan struct{}
	ptWG   sync.WaitGroup
	closed atomic.Bool
}

// NewWorld creates a job with cfg.Ranks ranks. The caller must Close it.
func NewWorld(cfg Config) *World {
	if cfg.Ranks <= 0 {
		panic("upcxx: Config.Ranks must be positive")
	}
	if cfg.WaitTimeout == 0 {
		cfg.WaitTimeout = 60 * time.Second
	}
	cfg.envObsConfig()
	if cfg.CollRadix == 0 && cfg.Model != nil {
		cfg.CollRadix = AutoRadix(cfg.Model, cfg.Ranks)
	}
	w := &World{cfg: cfg}
	if cfg.Stats {
		w.obs = obs.New(cfg.Ranks, obs.Options{
			TraceDepth:  cfg.TraceDepth,
			TraceSample: cfg.TraceSample,
		})
	}
	w.net = gasnet.NewNetwork(gasnet.Config{
		Ranks:        cfg.Ranks,
		RanksPerNode: cfg.RanksPerNode,
		SegmentSize:  cfg.SegmentSize,
		Model:        cfg.Model,
		DMA:          cfg.DMA,
		Obs:          w.obs,
	})
	w.amRPC = w.net.RegisterAM(w.handleRPC)
	w.amRPCBatch = w.net.RegisterAM(w.handleRPCBatch)
	w.amColl = w.net.RegisterAM(w.handleColl)
	w.amRemote = w.net.RegisterAM(w.handleRemoteCx)
	w.ranks = make([]*Rank, cfg.Ranks)
	for r := range w.ranks {
		rk := &Rank{
			w:          w,
			ep:         w.net.Endpoint(Intrank(r)),
			me:         Intrank(r),
			n:          Intrank(cfg.Ranks),
			rpcPending: make(map[uint64]func([]byte)),
			splitSeqs:  make(map[uint64]uint64),
			distObjs:   make(map[uint64]any),
			distWaits:  make(map[uint64][]distWaiter),
		}
		if w.obs != nil {
			rk.ro = w.obs.Rank(r)
		}
		rk.coll = newCollEngine(rk, cfg.CollRadix)
		rk.master = NewPersona(rk, "master")
		rk.progressP = NewPersona(rk, "progress")
		rk.worldTeam = newWorldTeam(rk)
		w.ranks[r] = rk
	}
	if cfg.ProgressThread {
		w.ptStop = make(chan struct{})
		for _, rk := range w.ranks {
			w.ptWG.Add(1)
			go rk.progressLoop(w.ptStop, &w.ptWG)
		}
	}
	return w
}

// Ranks returns the job size.
func (w *World) Ranks() int { return w.cfg.Ranks }

// Rank returns the runtime object for rank r (mostly for tests; SPMD code
// receives its Rank from Run).
func (w *World) Rank(r Intrank) *Rank { return w.ranks[r] }

// Network exposes the underlying conduit (for stats and tooling).
func (w *World) Network() *gasnet.Network { return w.net }

// StatsEnabled reports whether the introspection layer is recording.
func (w *World) StatsEnabled() bool { return w.obs != nil }

// StatsAll snapshots every rank's observability state. It returns nil
// when the job was created without Config.Stats.
func (w *World) StatsAll() []obs.Snapshot {
	if w.obs == nil {
		return nil
	}
	return w.obs.SnapshotAll()
}

// StatsMerged snapshots every rank and merges them into one job-wide
// view (counters and histogram cells sum; traces concatenate). It
// returns the zero Snapshot when stats are disabled.
func (w *World) StatsMerged() obs.Snapshot {
	if w.obs == nil {
		return obs.Snapshot{Rank: -1}
	}
	return w.obs.Merged()
}

// ArmTrace arms (or disarms) op-lifecycle tracing on every rank,
// clearing prior events when arming. A no-op when stats are disabled.
func (w *World) ArmTrace(on bool) {
	if w.obs != nil {
		w.obs.ArmAll(on)
	}
}

// Stats snapshots this rank's observability state: counters, latency
// histograms, and (when tracing was armed) the buffered op-lifecycle
// events. It returns the zero Snapshot when the world was created
// without Config.Stats.
func (rk *Rank) Stats() obs.Snapshot {
	if rk.ro == nil {
		return obs.Snapshot{Rank: rk.me}
	}
	return rk.ro.Snapshot()
}

// StatsEnabled reports whether the introspection layer is recording.
func (rk *Rank) StatsEnabled() bool { return rk.ro != nil }

// RankObs exposes this rank's raw observability recorder for runtime
// layers built on the facade (the distributed task runtime records its
// lifecycle counters and trace hops through it). Nil when the world was
// created without Config.Stats — callers nil-check, like every internal
// instrumentation point does.
func (rk *Rank) RankObs() *obs.RankObs { return rk.ro }

// ArmTrace arms (or disarms) op-lifecycle tracing for operations this
// rank initiates. A no-op when stats are disabled.
func (rk *Rank) ArmTrace(on bool) {
	if rk.ro != nil {
		rk.ro.Arm(on)
	}
}

// ProgressThreaded reports whether the job runs dedicated progress
// goroutines.
func (w *World) ProgressThreaded() bool { return w.cfg.ProgressThread }

// Dist reports whether this world is one rank of a multi-process job
// over a real transport backend (RPC bodies must then be registered —
// see RegisterRPC).
func (w *World) Dist() bool { return w.dist }

// failed reports the conduit's peer-failure state: non-nil (wrapping
// gasnet.ErrPeerLost) once a sibling rank process died mid-job. Progress
// waits check it so a lost peer surfaces as a panic instead of a hang.
func (w *World) failed() error { return w.net.Failed() }

// Failed reports whether a peer rank process has been lost (multi-process
// worlds only; always nil in-process). The error wraps gasnet.ErrPeerLost.
func (w *World) Failed() error { return w.failed() }

// Close shuts down the progress threads and the conduit. The job must
// have quiesced.
func (w *World) Close() {
	if w.closed.Swap(true) {
		return
	}
	if w.ptStop != nil {
		close(w.ptStop)
		w.ptWG.Wait()
	}
	w.net.Close()
}

// Run executes fn as an SPMD epoch: one goroutine per rank, returning when
// every rank's fn has returned and a final barrier has completed (the
// implicit barrier of upcxx::finalize). Run may be called repeatedly on
// one world; rank state (segments, teams, distributed objects) persists
// across epochs. Each epoch goroutine holds its rank's master persona for
// the duration of fn.
func (w *World) Run(fn func(rk *Rank)) {
	if w.dist {
		// One process, one rank: the SPMD fan-out happened at the OS level
		// (upcxx-run / SpawnSelf); the epoch body runs on this goroutine.
		rk := w.ranks[w.self]
		sc := AcquirePersona(rk.master)
		defer sc.Release()
		fn(rk)
		rk.Barrier()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(w.ranks))
	for _, rk := range w.ranks {
		rk := rk
		go func() {
			defer wg.Done()
			sc := AcquirePersona(rk.master)
			defer sc.Release()
			fn(rk)
			rk.Barrier()
		}()
	}
	wg.Wait()
}

// Run executes fn on a fresh n-rank zero-delay world and tears it down —
// the common entry point: upcxx.Run(4, func(rk *upcxx.Rank) { ... }).
func Run(n int, fn func(rk *Rank)) {
	RunConfig(Config{Ranks: n}, fn)
}

// RunConfig is Run with an explicit configuration. With UPCXX_CONDUIT
// set to a real backend (tcp, shm) the in-process fan-out is replaced by
// OS processes: the first RunConfig of a parent process re-executes the
// binary once per rank and exits with the job's aggregate status, while
// each spawned rank runs the whole program with every RunConfig bound to
// its one rank — the SPMD model at the process level.
func RunConfig(cfg Config, fn func(rk *Rank)) {
	if DistActive() {
		if !distWorker() {
			os.Exit(SpawnSelf(cfg.Ranks))
		}
		w := NewWorldDist(cfg)
		defer w.Close()
		w.Run(fn)
		return
	}
	w := NewWorld(cfg)
	defer w.Close()
	w.Run(fn)
}

// Rank is one process's runtime: its view of the world, its shared
// segment, and its progress engine. Communication may be initiated from
// any goroutine; the initiating goroutine's current persona (see
// persona.go) receives the completion, and futures must only be touched
// from the goroutine holding their owning persona.
//
// The progress engine keeps the paper's three conceptual queues (§III):
// defQ holds operations not yet handed to the conduit, the conduit's
// in-flight set is actQ (tracked by actCount), and the per-persona LPC
// queues play the role of compQ — completed operations' user-visible
// actions, drained only by user-level progress of the owning persona.
type Rank struct {
	w  *World
	ep *gasnet.Endpoint
	me Intrank
	n  Intrank
	ro *obs.RankObs // this rank's observability recorder; nil = disabled

	defMu       sync.Mutex
	defQ        []func()     // deferred injections
	defInflight atomic.Int64 // injections detached from defQ, not yet run
	actCount    atomic.Int64 // operations handed to the conduit, incomplete

	master    *Persona // held by the SPMD goroutine during Run
	progressP *Persona // held by the progress goroutine (ProgressThread mode)

	rpcMu      sync.Mutex
	rpcSeq     uint64
	rpcPending map[uint64]func(payload []byte)

	coll *collEngine // per-rank collectives engine (coll.go)

	// teamMu guards the split counters: Split runs on the calling
	// goroutine (any persona may initiate collectives), so the map
	// needs its own exclusion — the engine handoff only covers the
	// engine's state.
	teamMu    sync.Mutex
	splitSeqs map[uint64]uint64 // per-team split counters
	worldTeam *Team

	distMu    sync.Mutex
	distSeq   uint64
	distObjs  map[uint64]any
	distWaits map[uint64][]distWaiter
}

// Me returns this process's world rank.
func (rk *Rank) Me() Intrank { return rk.me }

// N returns the job size.
func (rk *Rank) N() Intrank { return rk.n }

// World returns the owning world.
func (rk *Rank) World() *World { return rk.w }

// InternalProgress advances runtime bookkeeping without executing user
// callbacks or incoming RPCs: deferred operations are injected (defQ →
// actQ) and conduit completions are harvested (actQ → persona LPC
// queues). Every communication call performs this implicitly.
func (rk *Rank) InternalProgress() {
	for {
		rk.defMu.Lock()
		q := rk.defQ
		rk.defQ = nil
		// Count the detached batch before releasing the lock: an
		// operation must never be invisible to Quiesce/Discharge between
		// leaving defQ and its inject bumping actCount.
		rk.defInflight.Add(int64(len(q)))
		rk.defMu.Unlock()
		if len(q) == 0 {
			break
		}
		for _, inject := range q {
			inject()
			rk.defInflight.Add(-1)
		}
	}
	rk.ep.PollCompletions()
}

// Progress performs user-level progress: internal progress, then draining
// the LPC queues of every persona this goroutine holds for the rank
// (satisfying futures and running their callbacks) and executing incoming
// RPCs. It returns the number of user-level items processed. Progress
// from inside a callback or RPC body is a no-op (restricted context).
func (rk *Rank) Progress() int {
	return rk.progressWith(curState())
}

// ProgressWait runs one user-level progress pass and, when it finds no
// work, idles: multi-process worlds park in the conduit's notified wait
// for up to d (a doorbell or socket delivery wakes the rank early);
// in-process worlds yield the scheduler. Poll loops — waiting on a
// signaling put's arrival counter, say — should prefer this over bare
// Progress+Gosched spinning: on an oversubscribed host a spin loop can
// burn whole scheduler quanta before a sibling rank process ever runs.
func (rk *Rank) ProgressWait(d time.Duration) int {
	n := rk.Progress()
	if n == 0 {
		if rk.w.dist {
			rk.ep.WaitPending(d)
		} else {
			runtime.Gosched()
		}
	}
	return n
}

// progressWith is Progress with the goroutine's persona state already
// resolved; spin loops (Future.Wait) hoist the lookup out of their
// iterations.
func (rk *Rank) progressWith(gs *goroutineState) int {
	rk.InternalProgress()
	if gs.restricted {
		return 0
	}
	gs.restricted = true
	// Cleared via defer: a panicking (and recovered) callback or RPC
	// body must not leave the goroutine restricted forever.
	defer func() { gs.restricted = false }()
	done := rk.drainPersonas(gs)
	// The goroutine id rides along as the poll token so execBody resolves
	// the harvester once per drain instead of per message.
	done += rk.ep.PollAMsAs(gs.gid)
	// AM handlers deliver through persona LPCs (RPC replies, collective
	// advances); drain again so completions land in the same call.
	done += rk.drainPersonas(gs)
	if rk.ro != nil {
		rk.ro.Pass(done == 0)
	}
	return done
}

// Discharge drives internal progress until every locally-initiated
// operation has been handed to the conduit (defQ empty) — cf.
// upcxx::discharge.
func (rk *Rank) Discharge() {
	for {
		rk.defMu.Lock()
		n := len(rk.defQ)
		rk.defMu.Unlock()
		if n == 0 && rk.defInflight.Load() == 0 {
			return
		}
		if err := rk.w.failed(); err != nil {
			panic(err)
		}
		rk.InternalProgress()
	}
}

// PendingOps returns the number of operations in the active state (handed
// to the conduit, completion not yet observed). Exposed for tests and
// diagnostics.
func (rk *Rank) PendingOps() int { return int(rk.actCount.Load()) }

// Quiesce drives progress until this rank has no operations in flight:
// defQ and actQ empty and this goroutine's persona queues drained. It
// does not wait for other ranks (combine with Barrier for a job-wide
// quiescence point).
func (rk *Rank) Quiesce() {
	gs := curState()
	for {
		rk.progressWith(gs)
		rk.defMu.Lock()
		defEmpty := len(rk.defQ) == 0
		rk.defMu.Unlock()
		if defEmpty && rk.defInflight.Load() == 0 &&
			rk.actCount.Load() == 0 && rk.pendingLPCs(gs) == 0 {
			return
		}
		if err := rk.w.failed(); err != nil {
			panic(err)
		}
	}
}

// pendingLPCs counts undelivered LPCs across the personas this goroutine
// holds for the rank.
func (rk *Rank) pendingLPCs(gs *goroutineState) int {
	n := 0
	rk.forEachHeldPersona(gs, func(p *Persona) { n += p.PendingLPCs() })
	return n
}

// LPC schedules fn to run on the calling goroutine's current persona
// during a future user-level progress call (a local procedure call in
// UPC++ terms). To target another thread's persona use LPCTo.
func (rk *Rank) LPC(fn func()) {
	rk.currentPersona().LPC(fn)
}

// deferOp places an injection closure on defQ and immediately runs
// internal progress, which injects it. The indirection keeps the paper's
// deferred state observable while remaining eager in practice.
func (rk *Rank) deferOp(inject func()) {
	rk.defMu.Lock()
	rk.defQ = append(rk.defQ, inject)
	rk.defMu.Unlock()
	rk.InternalProgress()
}

// progressLoop is the dedicated progress thread: it continuously drives
// internal progress and incoming-RPC execution on its own persona, so
// the rank stays attentive while user goroutines compute or block. Idle
// periods back off to a conduit-notified wait.
func (rk *Rank) progressLoop(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	if rk.w.dist {
		// Pin the progress endpoint to an OS thread: the real conduit's
		// idle-wait parks in the scheduler, and a pinned thread keeps the
		// wakeup path (doorbell → Ring → WaitPending return) on one core.
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	sc := AcquirePersona(rk.progressP)
	defer sc.Release()
	gs := curState()
	idle := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		if rk.progressWith(gs) > 0 {
			idle = 0
			continue
		}
		idle++
		if idle < 128 {
			runtime.Gosched()
			continue
		}
		rk.ep.WaitPending(200 * time.Microsecond)
		idle = 0
	}
}

func (rk *Rank) String() string {
	return fmt.Sprintf("rank %d/%d", rk.me, rk.n)
}
