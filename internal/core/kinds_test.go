package upcxx

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"upcxx/internal/serial"
)

// Cross-kind conformance matrix: every {host,device} × {host,device} ×
// {same-rank,cross-rank} copy pair must move the right bytes, with
// completions on the initiating persona. The whole file runs under
// `go test -race` in CI (the DMA engine, device segments, and completion
// routing must be race-clean).

const kindsN = 256 // elements per transfer

// fillKind writes seed+i into the n elements at p, which must be owned by
// rk (device fills go through the sanctioned kernel-launch path).
func fillKind(rk *Rank, da *DeviceAllocator, p GPtr[int32], n int, seed int32) {
	if p.Kind == KindDevice {
		RunKernel(da, p, n, func(s []int32) {
			for i := range s {
				s[i] = seed + int32(i)
			}
		})
		return
	}
	s := Local(rk, p, n)
	for i := range s {
		s[i] = seed + int32(i)
	}
}

// readKind returns a copy of the n elements at p, owned by rk.
func readKind(rk *Rank, da *DeviceAllocator, p GPtr[int32], n int) []int32 {
	out := make([]int32, n)
	if p.Kind == KindDevice {
		RunKernel(da, p, n, func(s []int32) { copy(out, s) })
		return out
	}
	copy(out, Local(rk, p, n))
	return out
}

func allocKind(rk *Rank, da *DeviceAllocator, dev bool, n int) GPtr[int32] {
	if dev {
		return MustNewDeviceArray[int32](da, n)
	}
	return MustNewArray[int32](rk, n)
}

type kindCase struct {
	srcDev, dstDev   bool
	srcRank, dstRank Intrank
}

func (c kindCase) name() string {
	k := func(dev bool) string {
		if dev {
			return "device"
		}
		return "host"
	}
	loc := "same-rank"
	if c.srcRank != c.dstRank {
		loc = "cross-rank"
	}
	if c.srcRank != 0 && c.dstRank != 0 {
		loc = "third-party"
	}
	return fmt.Sprintf("%s-to-%s/%s", k(c.srcDev), k(c.dstDev), loc)
}

func kindMatrixCases() []kindCase {
	var cases []kindCase
	for _, srcDev := range []bool{false, true} {
		for _, dstDev := range []bool{false, true} {
			// Same-rank: both sides on the initiator.
			cases = append(cases, kindCase{srcDev, dstDev, 0, 0})
			// Cross-rank: source at the initiator, destination remote.
			cases = append(cases, kindCase{srcDev, dstDev, 0, 1})
		}
	}
	// Third-party copies: the initiator owns neither side.
	cases = append(cases,
		kindCase{true, true, 1, 2},
		kindCase{false, true, 1, 2},
	)
	return cases
}

// TestKindsCopyMatrix drives CopyGG over every kind pair and checks the
// payload from both the initiator (via RGet) and the destination owner
// (via Local / kernel access).
func TestKindsCopyMatrix(t *testing.T) {
	for _, tc := range kindMatrixCases() {
		tc := tc
		t.Run(tc.name(), func(t *testing.T) {
			Run(3, func(rk *Rank) {
				da := NewDeviceAllocator(rk, 1<<16)
				src := allocKind(rk, da, tc.srcDev, kindsN)
				dst := allocKind(rk, da, tc.dstDev, kindsN)
				srcObj := NewDistObject(rk, src)
				dstObj := NewDistObject(rk, dst)
				seed := int32(1000)
				if rk.Me() == tc.srcRank {
					fillKind(rk, da, src, kindsN, seed)
				}
				rk.Barrier()
				if rk.Me() == 0 {
					s := FetchDist[GPtr[int32]](rk, srcObj.ID(), tc.srcRank).Wait()
					d := FetchDist[GPtr[int32]](rk, dstObj.ID(), tc.dstRank).Wait()
					if s.Kind != src.Kind || d.Kind != dst.Kind {
						t.Errorf("kind lost on the wire: fetched %v / %v", s, d)
					}
					CopyGG(rk, s, d, kindsN).Wait()
					buf := make([]int32, kindsN)
					RGet(rk, d, buf).Wait()
					for i, v := range buf {
						if v != seed+int32(i) {
							t.Errorf("initiator readback [%d] = %d, want %d", i, v, seed+int32(i))
							break
						}
					}
				}
				rk.Barrier()
				if rk.Me() == tc.dstRank {
					got := readKind(rk, da, dst, kindsN)
					for i, v := range got {
						if v != seed+int32(i) {
							t.Errorf("owner readback [%d] = %d, want %d", i, v, seed+int32(i))
							break
						}
					}
				}
				rk.Barrier()
			})
		})
	}
}

// TestKindsRPutRGetDevice covers the put/get entry points (and thereby the
// V/Indexed/Strided2D variants, which compose them) against device
// destinations and sources, same-rank and cross-rank.
func TestKindsRPutRGetDevice(t *testing.T) {
	for _, cross := range []bool{false, true} {
		name := "same-rank"
		target := Intrank(0)
		if cross {
			name, target = "cross-rank", 1
		}
		t.Run(name, func(t *testing.T) {
			Run(2, func(rk *Rank) {
				da := NewDeviceAllocator(rk, 1<<16)
				dev := MustNewDeviceArray[int32](da, kindsN)
				obj := NewDistObject(rk, dev)
				rk.Barrier()
				if rk.Me() == 0 {
					d := FetchDist[GPtr[int32]](rk, obj.ID(), target).Wait()
					src := make([]int32, kindsN)
					for i := range src {
						src[i] = 42 + int32(i)
					}
					RPut(rk, src, d).Wait()
					got := make([]int32, kindsN)
					RGet(rk, d, got).Wait()
					for i, v := range got {
						if v != 42+int32(i) {
							t.Errorf("device rput/rget [%d] = %d, want %d", i, v, 42+int32(i))
							break
						}
					}
					// Strided section through the device path.
					rows, rowLen := 4, 8
					sec := make([]int32, rows*rowLen)
					for i := range sec {
						sec[i] = -int32(i)
					}
					RPutStrided2D(rk, sec, rowLen, d, 2*rowLen, rowLen, rows).Wait()
					back := make([]int32, rows*rowLen)
					RGetStrided2D(rk, d, 2*rowLen, back, rowLen, rowLen, rows).Wait()
					for i, v := range back {
						if v != -int32(i) {
							t.Errorf("device strided [%d] = %d, want %d", i, v, -int32(i))
							break
						}
					}
				}
				rk.Barrier()
			})
		})
	}
}

// TestKindsDeviceAllocatorGrow: DeviceAllocator.Grow extends the device
// segment without invalidating outstanding GPtrs — local ones and ones a
// peer fetched before the growth keep addressing the same allocation —
// and an allocation that exhausted the segment succeeds after growth.
// Growth on a closed allocator (and non-positive growth) faults.
func TestKindsDeviceAllocatorGrow(t *testing.T) {
	const n = 1024
	Run(2, func(rk *Rank) {
		da := NewDeviceAllocator(rk, n*4) // exactly one n-element int32 array
		a := MustNewDeviceArray[int32](da, n)
		fillKind(rk, da, a, n, 100)
		obj := NewDistObject(rk, a)
		rk.Barrier()
		peer := (rk.Me() + 1) % 2
		remote := FetchDist[GPtr[int32]](rk, obj.ID(), peer).Wait()
		rk.Barrier()

		if _, err := NewDeviceArray[int32](da, 16); err == nil {
			t.Error("allocation from the exhausted segment should fail")
		}
		da.Grow(n * 8)
		if da.Size() != n*12 {
			t.Errorf("grown allocator size = %d, want %d", da.Size(), n*12)
		}
		b := MustNewDeviceArray[int32](da, n) // fails before Grow, fits after
		fillKind(rk, da, b, n, 5000)
		rk.Barrier()

		// The pre-growth pointer still reads its values locally...
		for i, v := range readKind(rk, da, a, n) {
			if v != 100+int32(i) {
				t.Errorf("local pre-growth read [%d] = %d, want %d", i, v, 100+int32(i))
				break
			}
		}
		// ...and through the peer's pre-growth fetched GPtr.
		buf := make([]int32, n)
		RGet(rk, remote, buf).Wait()
		for i, v := range buf {
			if v != 100+int32(i) {
				t.Errorf("remote pre-growth read [%d] = %d, want %d", i, v, 100+int32(i))
				break
			}
		}
		rk.Barrier()

		mustPanicWith(t, "must be positive", func() { da.Grow(0) })
		da2 := NewDeviceAllocator(rk, 256)
		da2.Close()
		mustPanicWith(t, "allocator is closed", func() { da2.Grow(64) })
		rk.Barrier()
	})
}

func mustPanicWith(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("expected panic containing %q, got none", substr)
			return
		}
		if !strings.Contains(fmt.Sprint(r), substr) {
			t.Errorf("panic %v does not mention %q", r, substr)
		}
	}()
	f()
}

// TestKindsPanics: nil pointers, kind-mismatched (forged) pointers, wild
// device ids, out-of-bounds device offsets, host-only operations.
func TestKindsPanics(t *testing.T) {
	Run(1, func(rk *Rank) {
		if rk.Me() != 0 {
			return
		}
		da := NewDeviceAllocator(rk, 1<<12)
		dev := MustNewDeviceArray[int32](da, 8)
		buf := make([]int32, 8)

		mustPanicWith(t, "nil GPtr", func() { RPut(rk, buf, NilGPtr[int32]()) })
		mustPanicWith(t, "nil GPtr", func() { RGet(rk, NilGPtr[int32](), buf) })
		mustPanicWith(t, "nil GPtr", func() { CopyGG(rk, NilGPtr[int32](), dev, 8) })

		// Forged pointers: host kind carrying a device segment and vice versa.
		forgedHost := GPtr[int32]{Owner: 0, Kind: KindHost, Dev: 1}
		mustPanicWith(t, "kind mismatch", func() { RPut(rk, buf, forgedHost) })
		forgedDev := GPtr[int32]{Owner: 0, Kind: KindDevice, Dev: 0}
		mustPanicWith(t, "kind mismatch", func() { RGet(rk, forgedDev, buf) })
		unknownKind := GPtr[int32]{Owner: 0, Kind: MemKind(7), Dev: 0}
		mustPanicWith(t, "unknown memory kind", func() { RPut(rk, buf, unknownKind) })

		// Wild device id: no such segment registered.
		wild := GPtr[int32]{Owner: 0, Kind: KindDevice, Dev: 9}
		mustPanicWith(t, "wild device pointer", func() { RPut(rk, buf, wild) })

		// Out-of-bounds device access.
		mustPanicWith(t, "out of bounds", func() { RPut(rk, buf, dev.Add(1<<12)) })

		// Device memory is not host-addressable and has no AMO path.
		mustPanicWith(t, "not host-addressable", func() { Local(rk, dev, 8) })
		devWord := MustNewDeviceArray[uint64](da, 1)
		mustPanicWith(t, "host-kind memory", func() { NewAtomicU64(rk).FetchAdd(devWord, 1) })

		// Arithmetic across kinds is meaningless.
		host := MustNewArray[int32](rk, 8)
		mustPanicWith(t, "across memory kinds", func() { dev.Diff(host) })
	})
}

// TestKindsDeviceAlloc: allocator bookkeeping, Delete routing by kind,
// and pointer identity through Add.
func TestKindsDeviceAlloc(t *testing.T) {
	Run(1, func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<12)
		before := da.FreeBytes()
		p := MustNewDeviceArray[int64](da, 16)
		if p.Kind != KindDevice || p.Dev != da.DeviceID() {
			t.Errorf("device pointer mis-tagged: %v", p)
		}
		if da.FreeBytes() >= before {
			t.Errorf("device alloc did not consume segment space")
		}
		q := p.Add(4)
		if q.Diff(p) != 4 || q.Kind != KindDevice || q.Dev != p.Dev {
			t.Errorf("device pointer arithmetic lost the kind: %v", q)
		}
		if err := Delete(rk, p); err != nil {
			t.Errorf("Delete of device allocation: %v", err)
		}
		if da.FreeBytes() != before {
			t.Errorf("device Delete did not return space: %d != %d", da.FreeBytes(), before)
		}
		// A second allocator on the same rank gets a distinct segment.
		db := NewDeviceAllocator(rk, 1<<12)
		if db.DeviceID() == da.DeviceID() {
			t.Errorf("second device allocator reused id %d", da.DeviceID())
		}
	})
}

// TestKindsGPtrWire checks the kind-tagged wire form round-trips through
// the general serializer (the form RPC arguments use) and rejects forged
// encodings.
func TestKindsGPtrWire(t *testing.T) {
	Run(1, func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<12)
		for _, p := range []GPtr[float64]{
			NilGPtr[float64](),
			MustNewArray[float64](rk, 4),
			MustNewDeviceArray[float64](da, 4).Add(2),
		} {
			b, err := serial.Marshal(p)
			if err != nil {
				t.Fatalf("marshal %v: %v", p, err)
			}
			var q GPtr[float64]
			if err := serial.Unmarshal(b, &q); err != nil {
				t.Fatalf("unmarshal %v: %v", p, err)
			}
			if q != p {
				t.Errorf("wire round trip %v -> %v", p, q)
			}
		}
		// Forged pointers must not reach the wire, and forged bytes must
		// not decode.
		if _, err := serial.Marshal(GPtr[float64]{Owner: 0, Kind: KindHost, Dev: 3}); err == nil {
			t.Errorf("marshal of kind-mismatched pointer succeeded")
		}
		bad, _ := serial.Marshal(MustNewArray[float64](rk, 1))
		bad[8] = 9 // corrupt the kind byte
		var q GPtr[float64]
		if err := serial.Unmarshal(bad, &q); err == nil {
			t.Errorf("decode of unknown-kind wire form succeeded")
		}
	})
}

// TestKindsConcurrent shakes the DMA paths from many goroutines per rank
// with a dedicated progress thread — the configuration the persona layer
// exists for — and is the core of the -race matrix job.
func TestKindsConcurrent(t *testing.T) {
	const users, iters = 4, 16
	RunConfig(Config{Ranks: 2, ProgressThread: true}, func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<20)
		// One device strip per (user, rank) so transfers never alias.
		devs := make([]GPtr[int32], users)
		for u := range devs {
			devs[u] = MustNewDeviceArray[int32](da, kindsN)
		}
		obj := NewDistObject(rk, devs)
		rk.Barrier()
		peer := (rk.Me() + 1) % rk.N()
		remote := FetchDist[[]GPtr[int32]](rk, obj.ID(), peer).Wait()
		var wg sync.WaitGroup
		for u := 0; u < users; u++ {
			u := u
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer DetachDefaultPersonas()
				src := make([]int32, kindsN)
				got := make([]int32, kindsN)
				for it := 0; it < iters; it++ {
					seed := int32(u*1000 + it)
					for i := range src {
						src[i] = seed + int32(i)
					}
					// h2d to the peer's device strip, d2h back, then a
					// same-rank d2d between my strip and itself.
					RPut(rk, src, remote[u]).Wait()
					RGet(rk, remote[u], got).Wait()
					for i := range got {
						if got[i] != seed+int32(i) {
							t.Errorf("user %d iter %d: [%d] = %d, want %d", u, it, i, got[i], seed+int32(i))
							return
						}
					}
					CopyGG(rk, devs[u], devs[u].Add(0), kindsN).Wait()
				}
			}()
		}
		wg.Wait()
		rk.Barrier()
	})
}
