package upcxx

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"upcxx/internal/gasnet"
)

// Tests for the collectives engine: tree topologies (table-driven over
// every shape and team size), the completion conformance matrix
// ({barrier, bcast, reduce, allreduce} × {future, promise, LPC,
// remote-RPC} × {host, device} × {world, split-team}), persona handoff,
// the device-resident reduction path (zero host-staging copies, pinned
// by the DMA hop trace), the leaf-side broadcast RPC ordering against
// the h2d DMA, and the conduit's last-landing piggyback for
// multi-fragment remote completions. The matrix and handoff tests run
// under -race in CI (make race).

// --- topology table -------------------------------------------------------

// checkTopology verifies the collTopo contract for one shape and team
// size: children in range and strictly increasing, exactly one parent
// per non-root (Children and Parent agreeing), everything reachable
// from the root, and the depth bound of the shape.
func checkTopology(t *testing.T, name string, topo collTopo, p int) {
	t.Helper()
	parent := make([]int, p)
	for i := range parent {
		parent[i] = -1
	}
	seen := 0
	for rr := 0; rr < p; rr++ {
		prev := rr
		for _, c := range topo.Children(rr, p) {
			if c <= rr || c >= p {
				t.Fatalf("%s p=%d: child %d of %d out of range", name, p, c, rr)
			}
			if c <= prev && prev != rr {
				t.Fatalf("%s p=%d: children of %d not strictly increasing", name, p, rr)
			}
			prev = c
			if parent[c] != -1 {
				t.Fatalf("%s p=%d: rank %d has two parents (%d and %d)", name, p, c, parent[c], rr)
			}
			parent[c] = rr
			seen++
			if got := topo.Parent(c, p); got != rr {
				t.Fatalf("%s p=%d: Parent(%d) = %d, want %d", name, p, c, got, rr)
			}
		}
	}
	if seen != p-1 {
		t.Fatalf("%s p=%d: %d ranks have parents, want %d", name, p, seen, p-1)
	}
	maxDepth := 0
	for rr := 1; rr < p; rr++ {
		d, x := 0, rr
		for x != 0 {
			x = parent[x]
			d++
			if d > p {
				t.Fatalf("%s p=%d: cycle above rank %d", name, p, rr)
			}
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	switch topo := topo.(type) {
	case flatTopo:
		if p > 1 && maxDepth != 1 {
			t.Fatalf("flat p=%d: depth %d, want 1", p, maxDepth)
		}
	case knomialTopo:
		// Depth is bounded by the number of base-k digits of p-1.
		want := 0
		for x := p - 1; x > 0; x /= topo.radix {
			want++
		}
		if maxDepth > want {
			t.Fatalf("%s p=%d: depth %d exceeds digit bound %d", name, p, maxDepth, want)
		}
	}
}

// TestCollTopologyTable pins every tree shape for team sizes 1–17 and
// every radix — including the non-power-of-two and size-1 edges the old
// bcastChildren/ceilLog2 helpers were never table-tested on.
func TestCollTopologyTable(t *testing.T) {
	for p := 1; p <= 17; p++ {
		checkTopology(t, "flat", flatTopo{}, p)
		for _, r := range []int{2, 3, 4, 5, 8, 16} {
			checkTopology(t, fmt.Sprintf("knomial-%d", r), knomialTopo{radix: r}, p)
		}
		// The engine's selection (Config.CollRadix semantics, including
		// the flat cut-over for tiny teams) must itself be a valid shape.
		for _, r := range []int{0, 1, 2, 3, 4, 8} {
			checkTopology(t, fmt.Sprintf("radix-%d", r), topoForRadix(r, p), p)
		}
	}
}

// TestCollRadixSweepSemantics runs real collectives over non-power-of-two
// teams under every topology class: results must not depend on the tree.
func TestCollRadixSweepSemantics(t *testing.T) {
	for _, radix := range []int{0, 1, 3, 4} {
		for _, p := range []int{5, 7} {
			radix, p := radix, p
			t.Run(fmt.Sprintf("radix=%d/p=%d", radix, p), func(t *testing.T) {
				RunConfig(Config{Ranks: p, CollRadix: radix}, func(rk *Rank) {
					world := rk.WorldTeam()
					got := Broadcast(world, Intrank(p-1), int64(rk.Me())).Wait()
					if got != int64(p-1) {
						t.Errorf("rank %d: broadcast = %d, want %d", rk.Me(), got, p-1)
					}
					sum := AllReduce(world, int64(rk.Me())+1,
						func(a, b int64) int64 { return a + b }).Wait()
					if want := int64(p * (p + 1) / 2); sum != want {
						t.Errorf("rank %d: allreduce = %d, want %d", rk.Me(), sum, want)
					}
					red := ReduceOne(world, int64(rk.Me())+1,
						func(a, b int64) int64 { return a + b }).Wait()
					if rk.Me() == 0 {
						if want := int64(p * (p + 1) / 2); red != want {
							t.Errorf("reduce root = %d, want %d", red, want)
						}
					}
					rk.Barrier()
				})
			})
		}
	}
}

// --- conformance matrix ---------------------------------------------------

var collKinds = []string{"barrier", "bcast", "reduce", "allreduce"}

func addI64(a, b int64) int64 { return a + b }

// runCollCell executes one matrix cell: all team members run the same
// collective carrying the cell's delivery descriptor, block until that
// delivery demonstrably fired, and verify the collective's payload.
// Device cells use the buffer collectives over device operands (the
// barrier has no operands and is identical in both kind columns).
func runCollCell(t *testing.T, rk *Rank, team *Team, da *DeviceAllocator, dev bool, kind, how string) {
	name := fmt.Sprintf("%s/%s/dev=%v", kind, how, dev)
	const n = 8
	p := int64(team.RankN())
	tr := int64(team.RankMe())
	wantSum := p * (p + 1) / 2

	// The delivery under test. The remote-RPC descriptor runs on the
	// rank's execution persona — this goroutine in self-progress mode —
	// when the collective's data lands locally, so the plain flag is
	// race-free.
	fired := false
	var prom *Promise[Unit]
	var cxs []Cx
	switch how {
	case "future":
		cxs = []Cx{OpCxAsFuture()}
	case "promise":
		prom = NewPromise[Unit](rk)
		cxs = []Cx{OpCxAsPromise(prom)}
	case "lpc":
		cxs = []Cx{OpCxAsLPC(nil, func() { fired = true }), OpCxAsFuture()}
	case "rpc":
		cxs = []Cx{RemoteCxAsRPC(func(*Rank, int) { fired = true }, 0), OpCxAsFuture()}
	}

	var futs CxFutures
	buf := NilGPtr[int64]()
	root := team.RankN() - 1 // exercise non-zero roots where allowed
	switch {
	case kind == "barrier":
		futs = team.BarrierAsyncWith(cxs...)
	case !dev:
		switch kind {
		case "bcast":
			f, fs := BroadcastWith(team, root, 4242+tr, cxs...)
			futs = fs
			if got := f.Wait(); got != 4242+int64(root) {
				t.Errorf("%s: value = %d, want %d", name, got, 4242+int64(root))
			}
		case "reduce":
			f, fs := ReduceOneWith(team, tr+1, addI64, cxs...)
			futs = fs
			got := f.Wait()
			want := int64(0)
			if tr == 0 {
				want = wantSum
			}
			if got != want {
				t.Errorf("%s: value = %d, want %d", name, got, want)
			}
		case "allreduce":
			f, fs := AllReduceWith(team, tr+1, addI64, cxs...)
			futs = fs
			if got := f.Wait(); got != wantSum {
				t.Errorf("%s: value = %d, want %d", name, got, wantSum)
			}
		}
	default:
		buf = MustNewDeviceArray[int64](da, n)
		switch kind {
		case "bcast":
			if tr == int64(root) {
				RunKernel(da, buf, n, func(s []int64) {
					for i := range s {
						s[i] = int64(i) + 7
					}
				})
			}
			futs = BroadcastBufWith(team, root, buf, n, cxs...)
		case "reduce":
			fillCollBuf(da, buf, n, tr+1)
			futs = ReduceOneBufWith(team, da, buf, n, addI64, cxs...)
		case "allreduce":
			fillCollBuf(da, buf, n, tr+1)
			futs = AllReduceBufWith(team, da, buf, n, addI64, cxs...)
		}
	}

	// Block on the cell's own delivery.
	switch how {
	case "future":
		if !futs.Op.Valid() {
			t.Fatalf("%s: requested future is invalid", name)
		}
		futs.Op.Wait()
	case "promise":
		prom.Finalize().Wait()
	case "lpc", "rpc":
		futs.Op.Wait()
		waitUntil(t, rk, name+" delivery", func() bool { return fired })
	}

	// Verify device payloads landed device-resident.
	if dev && !buf.IsNil() {
		check := func(want func(i int) int64) {
			RunKernel(da, buf, n, func(s []int64) {
				for i, v := range s {
					if v != want(i) {
						t.Errorf("%s: buf[%d] = %d, want %d", name, i, v, want(i))
					}
				}
			})
		}
		switch kind {
		case "bcast":
			check(func(i int) int64 { return int64(i) + 7 })
		case "reduce":
			if tr == 0 {
				check(func(i int) int64 { return int64(i+1) * wantSum })
			}
		case "allreduce":
			check(func(i int) int64 { return int64(i+1) * wantSum })
		}
		if err := Delete(rk, buf); err != nil {
			t.Errorf("%s: free device operand: %v", name, err)
		}
	}
}

// fillCollBuf writes scale*(i+1) into the n elements at p.
func fillCollBuf(da *DeviceAllocator, p GPtr[int64], n int, scale int64) {
	RunKernel(da, p, n, func(s []int64) {
		for i := range s {
			s[i] = scale * int64(i+1)
		}
	})
}

// TestCollCxMatrix drives every collective × delivery × kind × team
// combination. Cells run back to back without barriers between them —
// the per-team collective sequence numbers keep them matched.
func TestCollCxMatrix(t *testing.T) {
	for _, dev := range []bool{false, true} {
		for _, split := range []bool{false, true} {
			dev, split := dev, split
			t.Run(fmt.Sprintf("dev=%v/split=%v", dev, split), func(t *testing.T) {
				Run(4, func(rk *Rank) {
					da := NewDeviceAllocator(rk, 1<<20)
					team := rk.WorldTeam()
					if split {
						team = rk.WorldTeam().Split(int(rk.Me())%2, int(rk.Me()))
					}
					for _, kind := range collKinds {
						for _, how := range cxDeliveries {
							runCollCell(t, rk, team, da, dev, kind, how)
						}
					}
					team.Barrier()
					rk.Barrier()
				})
			})
		}
	}
}

// TestCollInvalidCombos pins the descriptor combinations the model
// forbids on collectives.
func TestCollInvalidCombos(t *testing.T) {
	Run(2, func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<16)
		dbuf := MustNewDeviceArray[int64](da, 4)
		if rk.Me() == 0 {
			expectPanic(t, "source_cx on a collective", func() {
				rk.WorldTeam().BarrierAsyncWith(SourceCxAsFuture())
			})
			expectPanic(t, "remote_cx as_future on a collective", func() {
				rk.WorldTeam().BarrierAsyncWith(RemoteCxAsFuture())
			})
			expectPanic(t, "remote_cx as_promise on a collective", func() {
				rk.WorldTeam().BarrierAsyncWith(RemoteCxAsPromise(NewPromise[Unit](rk)))
			})
			expectPanic(t, "device operand without its allocator", func() {
				ReduceOneBufWith(rk.WorldTeam(), nil, dbuf, 4, addI64)
			})
			expectPanic(t, "non-local operand", func() {
				remote := dbuf
				remote.Owner = 1
				BroadcastBufWith(rk.WorldTeam(), 0, remote, 4)
			})
			expectPanic(t, "broadcast root out of range", func() {
				BroadcastWith(rk.WorldTeam(), 5, int64(0))
			})
			expectPanic(t, "buffer broadcast root out of range", func() {
				BroadcastBufWith(rk.WorldTeam(), 5, dbuf, 4)
			})
			expectPanic(t, "gather root out of range", func() {
				Gather(rk.WorldTeam(), 99, int64(0))
			})
		}
		rk.Barrier()
	})
}

// TestCollRequiresHeldExecPersona: a world driven without Run has no
// held master persona, so execBody's inline fallback would advance the
// engine on arbitrary goroutines; collectives must fail loud there (as
// the seed's master-persona check did) instead of racing on the engine
// maps.
func TestCollRequiresHeldExecPersona(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	defer w.Close()
	expectPanic(t, "collective without a held execution persona", func() {
		w.Rank(0).BarrierAsync()
	})
}

// --- persona handoff ------------------------------------------------------

// TestCollPersonaHandoffProgressThread: in progress-thread mode the
// engine advances on the progress persona, so collectives initiated by
// user goroutines complete even while every master sits blocked, and the
// completion routes back to the initiating persona.
func TestCollPersonaHandoffProgressThread(t *testing.T) {
	RunConfig(Config{Ranks: 4, ProgressThread: true}, func(rk *Rank) {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := rk.CurrentPersona()
			f, _ := AllReduceWith(rk.WorldTeam(), int64(1), addI64)
			var on *Persona
			ThenDo(f, func(int64) { on = rk.CurrentPersona() }).Wait()
			if got := f.Result(); got != 4 {
				t.Errorf("rank %d: allreduce from user goroutine = %d, want 4", rk.Me(), got)
			}
			if on != mine {
				t.Errorf("rank %d: completion ran on %v, want initiating persona %v", rk.Me(), on, mine)
			}
		}()
		// The master blocks without a single Progress call: the progress
		// thread must drive the whole collective.
		wg.Wait()
		rk.Barrier()
	})
}

// --- device-resident reduction -------------------------------------------

// TestCollDeviceAllReduceNoHostStaging proves the kind-aware reduction
// path: an allreduce over device operands moves its payload exclusively
// through the DMA channel — the hop trace shows exactly the tree's
// exchange copies (two descriptors per link per direction: d2h at the
// source engine, h2d at the destination engine) and nothing else, and
// the AM ledger stays at header size (no payload marshaled through host
// memory).
func TestCollDeviceAllReduceNoHostStaging(t *testing.T) {
	const p, n = 8, 64
	w := NewWorld(Config{Ranks: p})
	defer w.Close()
	das := make([]*DeviceAllocator, p)
	bufs := make([]GPtr[float64], p)
	w.Run(func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<20)
		buf := MustNewDeviceArray[float64](da, n)
		RunKernel(da, buf, n, func(s []float64) {
			for i := range s {
				s[i] = float64(rk.Me() + 1)
			}
		})
		das[rk.Me()], bufs[rk.Me()] = da, buf
	})

	amBytesBefore := uint64(0)
	for r := Intrank(0); r < p; r++ {
		amBytesBefore += w.Network().Endpoint(r).Stats().AMBytes
	}
	w.Network().TraceDMA(true)
	w.Run(func(rk *Rank) {
		AllReduceBufWith(rk.WorldTeam(), das[rk.Me()], bufs[rk.Me()], n,
			func(a, b float64) float64 { return a + b }).Op.Wait()
	})
	trace := w.Network().DMATrace()
	w.Network().TraceDMA(false)
	amBytesAfter := uint64(0)
	for r := Intrank(0); r < p; r++ {
		amBytesAfter += w.Network().Endpoint(r).Stats().AMBytes
	}

	// Correctness: every rank's buffer holds the elementwise global sum.
	want := float64(p * (p + 1) / 2)
	w.Run(func(rk *Rank) {
		RunKernel(das[rk.Me()], bufs[rk.Me()], n, func(s []float64) {
			for i, v := range s {
				if v != want {
					t.Errorf("rank %d: buf[%d] = %v, want %v", rk.Me(), i, v, want)
				}
			}
		})
	})

	// Hop trace: p-1 tree links, one cross-rank d2d copy up and one down
	// per link, two DMA descriptors each — and nothing more. Any host
	// staging (an RGet to host plus a host put / marshaled AM) would add
	// descriptors or payload-sized AM bytes and fail these bounds.
	links := p - 1
	wantHops := 4 * links
	if len(trace) != wantHops {
		t.Errorf("DMA trace has %d hops, want %d (2 per link per direction)", len(trace), wantHops)
	}
	for _, h := range trace {
		if h.Bytes != n*8 {
			t.Errorf("DMA hop on rank %d moved %d bytes, want %d (whole payload per hop)", h.Rank, h.Bytes, n*8)
		}
	}
	if delta := amBytesAfter - amBytesBefore; delta > 4096 {
		t.Errorf("collective moved %d AM bytes, want headers only (payload must ride the DMA channel)", delta)
	}
}

// --- leaf-side broadcast RPC vs the h2d DMA -------------------------------

// TestCollBcastLeafRPCAfterDeviceDMA is the collective analogue of
// TestCxRemoteAfterDeviceDMA: on a broadcast over device buffers under a
// real-time model whose DMA hop is far slower than the wire, each
// member's RemoteCxAsRPC descriptor must observe the complete payload in
// its device buffer — i.e. the landing notice rides the copy's final
// h2d DMA hop, not the wire arrival.
func TestCollBcastLeafRPCAfterDeviceDMA(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time model run")
	}
	cfg := Config{
		Ranks:        3,
		RanksPerNode: 1,
		Model:        &gasnet.LogGP{L: 20 * time.Microsecond, Gp: time.Microsecond},
		DMA:          &gasnet.PCIeDMA{L: 4 * time.Millisecond, Gp: 100 * time.Microsecond},
	}
	RunConfig(cfg, func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<16)
		buf := MustNewDeviceArray[uint64](da, cxN)
		if rk.Me() == 0 {
			RunKernel(da, buf, cxN, func(s []uint64) {
				for i := range s {
					s[i] = uint64(i + 1)
				}
			})
		}
		saw := 0 // 1 = payload complete when the RPC ran, 2 = premature
		fs := BroadcastBufWith(rk.WorldTeam(), 0, buf, cxN,
			OpCxAsFuture(),
			RemoteCxAsRPC(func(trk *Rank, dst GPtr[uint64]) {
				if cxCheckLanded(trk, cxSigArgs{Dst: dst, N: cxN}) {
					saw = 1
				} else {
					saw = 2
				}
			}, buf))
		fs.Op.Wait()
		waitUntil(t, rk, "leaf-side broadcast rpc", func() bool { return saw != 0 })
		if saw != 1 {
			t.Errorf("rank %d: broadcast RPC ran before the h2d DMA landed", rk.Me())
		}
		rk.Barrier()
	})
}

// --- last-landing piggyback -----------------------------------------------

// TestCollLastLandingPiggyback pins the conduit's counted remote AM: a
// multi-fragment put to one rank fires its remote RPC from the
// last-landing fragment, observing every fragment's bytes, and costs
// zero extra wire messages (the old implementation gated initiator-side
// and shipped a separate AM after all acks returned).
func TestCollLastLandingPiggyback(t *testing.T) {
	Run(2, func(rk *Rank) {
		dst := MustNewArray[uint64](rk, cxN)
		flag := MustNewArray[uint64](rk, 1)
		obj := NewDistObject(rk, [2]GPtr[uint64]{dst, flag})
		rk.Barrier()
		if rk.Me() == 0 {
			tg := FetchDist[[2]GPtr[uint64]](rk, obj.ID(), 1).Wait()
			src := make([]uint64, cxN)
			for i := range src {
				src[i] = uint64(i + 1)
			}
			var frags []PutPair[uint64]
			for f := 0; f < 4; f++ {
				frags = append(frags, PutPair[uint64]{Src: src[f*4 : (f+1)*4], Dst: tg[0].Add(f * 4)})
			}
			before := rk.World().Network().Endpoint(0).Stats().AMs
			fs := RPutVWith(rk, frags, OpCxAsFuture(),
				RemoteCxAsRPC(cxSignalBody, cxSigArgs{Dst: tg[0], Flag: tg[1], N: cxN}))
			fs.Op.Wait()
			after := rk.World().Network().Endpoint(0).Stats().AMs
			if after != before {
				t.Errorf("notification cost %d extra wire AMs, want 0 (piggyback on the last-landing fragment)", after-before)
			}
			waitUntil(t, rk, "last-landing rpc", func() bool { return readFlag(rk, tg[1]) != 0 })
			if got := readFlag(rk, tg[1]); got != 1 {
				t.Errorf("remote RPC observed partial data (flag=%d)", got)
			}
		}
		rk.Barrier()
	})
}

// --- team split over the tree exchange ------------------------------------

// TestCollSplitAsyncTree splits non-power-of-two teams under every
// topology class — including trees deep enough that the split's
// gather/fan-out genuinely aggregates hop by hop — and pins the
// (color, key, world) ordering contract plus nested splits of split
// teams.
func TestCollSplitAsyncTree(t *testing.T) {
	for _, radix := range []int{0, 1, 3} {
		for _, p := range []int{5, 7} {
			radix, p := radix, p
			t.Run(fmt.Sprintf("radix=%d/p=%d", radix, p), func(t *testing.T) {
				RunConfig(Config{Ranks: p, CollRadix: radix}, func(rk *Rank) {
					world := rk.WorldTeam()
					me := int(rk.Me())
					// Negated keys: team order must follow key, not world rank.
					sub := world.SplitAsync(me%2, -me).Wait()
					var want []Intrank
					for r := p - 1; r >= 0; r-- {
						if r%2 == me%2 {
							want = append(want, Intrank(r))
						}
					}
					if int(sub.RankN()) != len(want) {
						t.Errorf("rank %d: split size %d, want %d", me, sub.RankN(), len(want))
					}
					for i, wr := range want {
						if sub.WorldRank(Intrank(i)) != wr {
							t.Errorf("rank %d: split[%d] = %d, want %d", me, i, sub.WorldRank(Intrank(i)), wr)
						}
						if wr == rk.Me() && sub.RankMe() != Intrank(i) {
							t.Errorf("rank %d: RankMe = %d, want %d", me, sub.RankMe(), i)
						}
					}
					// Collectives on the split team, then a nested split back
					// to singletons: team IDs must stay distinct and usable.
					sum := AllReduce(sub, int64(1), func(a, b int64) int64 { return a + b }).Wait()
					if sum != int64(len(want)) {
						t.Errorf("rank %d: allreduce on split team = %d, want %d", me, sum, len(want))
					}
					solo := sub.Split(me, 0)
					if solo.RankN() != 1 || solo.RankMe() != 0 || solo.ID() == sub.ID() || solo.ID() == world.ID() {
						t.Errorf("rank %d: nested split %v invalid (parent %v)", me, solo, sub)
					}
					rk.Barrier()
				})
			})
		}
	}
}

// TestCollSplitAsyncOverlap pins the non-blocking contract: a member can
// initiate the split, run unrelated communication to completion, and
// only then force the team future.
func TestCollSplitAsyncOverlap(t *testing.T) {
	const p = 6
	RunConfig(Config{Ranks: p}, func(rk *Rank) {
		world := rk.WorldTeam()
		ft := world.SplitAsync(int(rk.Me())%3, int(rk.Me()))
		sum := AllReduce(world, int64(1), func(a, b int64) int64 { return a + b }).Wait()
		if sum != p {
			t.Errorf("rank %d: overlapped allreduce = %d, want %d", rk.Me(), sum, p)
		}
		sub := ft.Wait()
		if sub.RankN() != 2 {
			t.Errorf("rank %d: split size %d, want 2", rk.Me(), sub.RankN())
		}
		rk.Barrier()
	})
}

// --- LogGP radix auto-tuning ----------------------------------------------

// TestCollAutoRadix pins the auto-tuner: argmin of the closed-form tree
// time over the candidate set, flat/small-team and zero-cost-model
// guards, and the world-creation hook that routes CollRadix = 0 through
// it when a machine model is configured.
func TestCollAutoRadix(t *testing.T) {
	m := gasnet.Aries()
	if AutoRadix(nil, 64) != 0 {
		t.Errorf("AutoRadix(nil) must keep the static default")
	}
	if got := AutoRadix(m, collFlatMax); got != 0 {
		t.Errorf("AutoRadix(p=%d) = %d, want 0 (flat cut-over)", collFlatMax, got)
	}
	for _, p := range []int{8, 17, 64, 256} {
		got := AutoRadix(m, p)
		bestT := time.Duration(-1)
		best := 0
		for _, k := range autoRadixCandidates {
			tt := CollTreeTime(m, k, p, 8)
			if tt <= 0 {
				t.Fatalf("CollTreeTime(radix=%d, p=%d) = %v, want > 0", k, p, tt)
			}
			if bestT < 0 || tt < bestT {
				best, bestT = k, tt
			}
		}
		if got != best {
			t.Errorf("AutoRadix(p=%d) = %d, want argmin %d", p, got, best)
		}
	}
	// Deeper trees cost more rounds under a latency-dominated model:
	// binomial must beat flat for a latency-bound size, and the tuned
	// radix must never lose to the binomial default.
	for _, p := range []int{8, 64} {
		tuned := CollTreeTime(m, AutoRadix(m, p), p, 8)
		if bin := CollTreeTime(m, 2, p, 8); tuned > bin {
			t.Errorf("p=%d: tuned radix slower than binomial (%v > %v)", p, tuned, bin)
		}
	}
	// World-creation hook: a modeled world auto-tunes, an unmodeled one
	// keeps the default, and an explicit radix wins over the tuner.
	w := NewWorld(Config{Ranks: 8, Model: m})
	if want := AutoRadix(m, 8); w.Rank(0).coll.radix != want {
		t.Errorf("modeled world radix = %d, want auto-tuned %d", w.Rank(0).coll.radix, want)
	}
	w2 := NewWorld(Config{Ranks: 8})
	if w2.Rank(0).coll.radix != 0 {
		t.Errorf("unmodeled world radix = %d, want 0 (static default)", w2.Rank(0).coll.radix)
	}
	w3 := NewWorld(Config{Ranks: 8, Model: m, CollRadix: 3})
	if w3.Rank(0).coll.radix != 3 {
		t.Errorf("explicit radix = %d, want 3", w3.Rank(0).coll.radix)
	}
}
