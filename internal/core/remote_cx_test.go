package upcxx

import (
	"testing"
)

func TestRPutThenRemoteSeesData(t *testing.T) {
	// The defining property of remote_cx::as_rpc: when the notification
	// runs at the target, the put's data is already visible there.
	Run(2, func(rk *Rank) {
		p := MustNewArray[uint64](rk, 4)
		flag := MustNewArray[uint64](rk, 1)
		_ = NewDistObject(rk, p)
		_ = NewDistObject(rk, flag)
		rk.Barrier()
		if rk.Me() == 0 {
			dst := FetchDist[GPtr[uint64]](rk, 0, 1).Wait()
			remoteFlag := FetchDist[GPtr[uint64]](rk, 1, 1).Wait()
			// Captured pointers (dst, remoteFlag) refer to rank 1's
			// segment, so the notification body may use them there —
			// capturing rank-0-local state would be the closure hazard
			// the package documentation warns about.
			RPutThenRemote(rk, []uint64{7, 8, 9, 10}, dst,
				func(trk *Rank, n int) {
					s := Local(trk, dst, n) // runs at rank 1, after landing
					sum := uint64(0)
					for _, v := range s {
						sum += v
					}
					if sum != 34 {
						t.Errorf("notification saw sum %d, want 34", sum)
					}
					Local(trk, remoteFlag, 1)[0] = sum
				}, 4).Wait()
			// The future implies the notification already executed.
			if got := GetValue(rk, remoteFlag).Wait(); got != 34 {
				t.Errorf("flag = %d", got)
			}
		}
		rk.Barrier()
	})
}

func TestRPutSignalFireAndForget(t *testing.T) {
	Run(2, func(rk *Rank) {
		p := MustNewArray[uint64](rk, 1)
		done := MustNewArray[uint64](rk, 1)
		_ = NewDistObject(rk, p)
		_ = NewDistObject(rk, done)
		rk.Barrier()
		if rk.Me() == 0 {
			dst := FetchDist[GPtr[uint64]](rk, 0, 1).Wait()
			remoteDone := FetchDist[GPtr[uint64]](rk, 1, 1).Wait()
			RPutSignal(rk, []uint64{42}, dst, func(trk *Rank, _ struct{}) {
				Local(trk, remoteDone, 1)[0] = Local(trk, dst, 1)[0]
			}, struct{}{}).Wait()
		}
		if rk.Me() == 1 {
			for Local(rk, done, 1)[0] != 42 {
				rk.Progress()
			}
		}
		rk.Barrier()
	})
}

func TestGatherAllGather(t *testing.T) {
	Run(6, func(rk *Rank) {
		team := rk.WorldTeam()
		vals := Gather(team, 2, int64(rk.Me())*10).Wait()
		if rk.Me() == 2 {
			if len(vals) != 6 {
				t.Fatalf("gather len = %d", len(vals))
			}
			for r, v := range vals {
				if v != int64(r)*10 {
					t.Errorf("gather[%d] = %d", r, v)
				}
			}
		} else if vals != nil {
			t.Errorf("non-root gather = %v", vals)
		}
		rk.Barrier()

		all := AllGather(team, int64(rk.Me())+100).Wait()
		if len(all) != 6 {
			t.Fatalf("allgather len = %d", len(all))
		}
		for r, v := range all {
			if v != int64(r)+100 {
				t.Errorf("allgather[%d] = %d", r, v)
			}
		}
		rk.Barrier()
	})
}

func TestGatherSubteam(t *testing.T) {
	Run(4, func(rk *Rank) {
		sub := rk.WorldTeam().Split(int(rk.Me())%2, int(rk.Me()))
		all := AllGather(sub, rk.Me()).Wait()
		if len(all) != 2 {
			t.Fatalf("subteam allgather len = %d", len(all))
		}
		// Members of a color share parity.
		if all[0]%2 != all[1]%2 {
			t.Errorf("mixed parities: %v", all)
		}
		rk.Barrier()
	})
}
