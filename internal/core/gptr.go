package upcxx

import (
	"fmt"

	"upcxx/internal/gasnet"
	"upcxx/internal/serial"
)

// GPtr is a global pointer: a reference to an object of type T in some
// rank's shared segment. Like upcxx::global_ptr and unlike a raw pointer,
// it cannot be dereferenced — all access to remote memory is through
// explicit communication (RPut/RGet/atomics), keeping data motion visible
// in the source. Global pointers support arithmetic, comparison, passing
// by value, and serialization (they may travel inside RPC arguments, as
// the paper's distributed hash table does with landing zones).
//
// T is restricted to fixed-size scalar kinds: the element types that can
// legally cross the network as raw memory.
//
// A global pointer carries the memory kind of its referent (paper §VI
// "memory kinds"): host pointers address the owner's host segment, device
// pointers address one of its device segments (Dev names which), and the
// runtime routes transfers accordingly — device paths go through the
// simulated DMA engine. The kind travels with the pointer on the wire, so
// an RPC'd landing zone keeps its kind at the receiver.
type GPtr[T serial.Scalar] struct {
	Owner Intrank // rank whose segment holds the object; -1 for nil
	Kind  MemKind // memory kind of the referent (host or device)
	Dev   uint16  // device segment id; 0 for host-kind pointers
	Off   uint64  // byte offset within the owner's segment
}

// MemKind classifies the memory a global pointer references
// (upcxx::memory_kind).
type MemKind = gasnet.Kind

// Memory kinds.
const (
	KindHost   = gasnet.KindHost
	KindDevice = gasnet.KindDevice
)

// NilGPtr returns the null global pointer.
func NilGPtr[T serial.Scalar]() GPtr[T] { return GPtr[T]{Owner: -1} }

// IsNil reports whether p is the null global pointer.
func (p GPtr[T]) IsNil() bool { return p.Owner < 0 }

// segID validates the pointer's kind/device consistency and resolves the
// conduit segment it addresses. A host-kind pointer naming a device
// segment (or vice versa) is a corrupted or forged pointer; faulting here
// keeps the mismatch from silently reading the wrong memory.
func (p GPtr[T]) segID(op string) gasnet.SegID {
	switch p.Kind {
	case KindHost:
		if p.Dev != 0 {
			panic(fmt.Sprintf("upcxx: %s on %v: host-kind pointer carries device segment %d (kind mismatch)", op, p, p.Dev))
		}
		return gasnet.HostSeg
	case KindDevice:
		if p.Dev == 0 {
			panic(fmt.Sprintf("upcxx: %s on %v: device-kind pointer without a device segment (kind mismatch)", op, p))
		}
		return gasnet.SegID(p.Dev)
	default:
		panic(fmt.Sprintf("upcxx: %s on %v: unknown memory kind %d", op, p, uint8(p.Kind)))
	}
}

// Add returns p displaced by n elements (pointer arithmetic); the kind is
// preserved.
func (p GPtr[T]) Add(n int) GPtr[T] {
	if p.IsNil() {
		panic("upcxx: arithmetic on nil GPtr")
	}
	off := int64(p.Off) + int64(n)*int64(serial.SizeOf[T]())
	if off < 0 {
		panic("upcxx: GPtr arithmetic underflow")
	}
	return GPtr[T]{Owner: p.Owner, Kind: p.Kind, Dev: p.Dev, Off: uint64(off)}
}

// Diff returns the element distance p - q; both must point into the same
// segment of the same rank.
func (p GPtr[T]) Diff(q GPtr[T]) int {
	if p.Owner != q.Owner {
		panic("upcxx: GPtr difference across ranks")
	}
	if p.Kind != q.Kind || p.Dev != q.Dev {
		panic("upcxx: GPtr difference across memory kinds")
	}
	return int((int64(p.Off) - int64(q.Off)) / int64(serial.SizeOf[T]()))
}

// Where returns the rank with affinity to the referenced memory.
func (p GPtr[T]) Where() Intrank { return p.Owner }

func (p GPtr[T]) String() string {
	if p.IsNil() {
		return fmt.Sprintf("gptr<%s>(nil)", typeName[T]())
	}
	if p.Kind == KindDevice {
		return fmt.Sprintf("gptr<%s>(rank %d, dev %d, off %d)", typeName[T](), p.Owner, p.Dev, p.Off)
	}
	return fmt.Sprintf("gptr<%s>(rank %d, off %d)", typeName[T](), p.Owner, p.Off)
}

// MarshalSerial is the kind-tagged wire form of a global pointer: owner
// (8 bytes), kind (1), device id (2), offset (8), little-endian. Encoding
// an inconsistent pointer panics, which serial.Marshal surfaces as an
// error — a forged pointer must not reach the wire.
func (p GPtr[T]) MarshalSerial(e *serial.Encoder) {
	if !p.IsNil() {
		p.segID("marshal")
	}
	e.PutI64(int64(p.Owner))
	e.PutU8(uint8(p.Kind))
	e.PutU16(p.Dev)
	e.PutU64(p.Off)
}

// UnmarshalSerial decodes the wire form, rejecting kind-mismatched
// encodings and out-of-range owners (serial.Unmarshal converts the panic
// into an error). Accepted pointers re-encode to the identical bytes —
// the canonical-form property FuzzGPtrDecode pins.
func (p *GPtr[T]) UnmarshalSerial(d *serial.Decoder) {
	owner := d.I64()
	p.Kind = MemKind(d.U8())
	p.Dev = d.U16()
	p.Off = d.U64()
	if d.Err() != nil {
		return
	}
	p.Owner = Intrank(owner)
	if int64(p.Owner) != owner {
		panic(fmt.Sprintf("upcxx: GPtr wire form carries out-of-range owner %d", owner))
	}
	if !p.IsNil() {
		p.segID("unmarshal")
	}
}

func typeName[T any]() string {
	var z T
	return fmt.Sprintf("%T", z)
}

// New allocates one T in this rank's shared segment
// (upcxx::new_<T>), zero-initialized.
func New[T serial.Scalar](rk *Rank) (GPtr[T], error) {
	return NewArray[T](rk, 1)
}

// NewArray allocates n contiguous Ts in this rank's shared segment
// (upcxx::new_array<T>), zero-initialized.
func NewArray[T serial.Scalar](rk *Rank, n int) (GPtr[T], error) {
	sz := n * serial.SizeOf[T]()
	off, err := rk.ep.Segment().Alloc(sz)
	if err != nil {
		return NilGPtr[T](), fmt.Errorf("upcxx: rank %d: %w", rk.me, err)
	}
	b := rk.ep.Segment().Bytes(off, sz)
	for i := range b {
		b[i] = 0
	}
	return GPtr[T]{Owner: rk.me, Off: off}, nil
}

// MustNewArray is NewArray, panicking on segment exhaustion.
func MustNewArray[T serial.Scalar](rk *Rank, n int) GPtr[T] {
	p, err := NewArray[T](rk, n)
	if err != nil {
		panic(err)
	}
	return p
}

// Delete frees an allocation in one of this rank's own segments (host or
// device). Freeing remote memory requires an RPC to the owner, in keeping
// with explicit communication.
func Delete[T serial.Scalar](rk *Rank, p GPtr[T]) error {
	if p.Owner != rk.me {
		return fmt.Errorf("upcxx: rank %d cannot Delete memory owned by rank %d", rk.me, p.Owner)
	}
	return rk.ep.SegByID(p.segID("Delete")).Free(p.Off)
}

// Local converts a host-kind global pointer with affinity to this rank
// into a directly-usable slice of n elements (the global-to-local
// conversion the paper permits for the owning process). It panics if p is
// remote — or device-kind: device memory is never host-addressable, even
// by its owner; use RunKernel or kind-aware copies instead.
func Local[T serial.Scalar](rk *Rank, p GPtr[T], n int) []T {
	if p.Owner != rk.me {
		panic(fmt.Sprintf("upcxx: Local on %v from rank %d", p, rk.me))
	}
	if p.Kind != KindHost {
		panic(fmt.Sprintf("upcxx: Local on %v: device memory is not host-addressable", p))
	}
	b := rk.ep.Segment().Bytes(p.Off, n*serial.SizeOf[T]())
	return serial.FromBytes[T](b)
}

// ToGlobal converts a slice previously obtained from Local back into a
// global pointer rooted at its first element. It is the local-to-global
// conversion; s must alias this rank's segment.
func ToGlobal[T serial.Scalar](rk *Rank, s []T) GPtr[T] {
	if len(s) == 0 {
		return NilGPtr[T]()
	}
	seg := rk.ep.Segment()
	base := seg.Bytes(0, seg.Size())
	sb := serial.AsBytes(s)
	off := offsetWithin(base, sb)
	if off < 0 {
		panic("upcxx: ToGlobal of memory outside the shared segment")
	}
	return GPtr[T]{Owner: rk.me, Off: uint64(off)}
}

// offsetWithin returns the byte offset of sub within base, or -1 if sub
// does not alias base.
func offsetWithin(base, sub []byte) int {
	if len(sub) == 0 || len(base) == 0 {
		return -1
	}
	b0 := uintptrOf(base)
	s0 := uintptrOf(sub)
	if s0 < b0 || s0+uintptr(len(sub)) > b0+uintptr(len(base)) {
		return -1
	}
	return int(s0 - b0)
}

// gasnetRank converts for clarity at call sites.
func gasnetRank(r Intrank) gasnet.Rank { return r }
