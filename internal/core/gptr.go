package upcxx

import (
	"fmt"

	"upcxx/internal/gasnet"
	"upcxx/internal/serial"
)

// GPtr is a global pointer: a reference to an object of type T in some
// rank's shared segment. Like upcxx::global_ptr and unlike a raw pointer,
// it cannot be dereferenced — all access to remote memory is through
// explicit communication (RPut/RGet/atomics), keeping data motion visible
// in the source. Global pointers support arithmetic, comparison, passing
// by value, and serialization (they may travel inside RPC arguments, as
// the paper's distributed hash table does with landing zones).
//
// T is restricted to fixed-size scalar kinds: the element types that can
// legally cross the network as raw memory.
type GPtr[T serial.Scalar] struct {
	Owner Intrank // rank whose segment holds the object; -1 for nil
	Off   uint64  // byte offset within the owner's segment
}

// NilGPtr returns the null global pointer.
func NilGPtr[T serial.Scalar]() GPtr[T] { return GPtr[T]{Owner: -1} }

// IsNil reports whether p is the null global pointer.
func (p GPtr[T]) IsNil() bool { return p.Owner < 0 }

// Add returns p displaced by n elements (pointer arithmetic).
func (p GPtr[T]) Add(n int) GPtr[T] {
	if p.IsNil() {
		panic("upcxx: arithmetic on nil GPtr")
	}
	off := int64(p.Off) + int64(n)*int64(serial.SizeOf[T]())
	if off < 0 {
		panic("upcxx: GPtr arithmetic underflow")
	}
	return GPtr[T]{Owner: p.Owner, Off: uint64(off)}
}

// Diff returns the element distance p - q; both must point into the same
// rank's segment.
func (p GPtr[T]) Diff(q GPtr[T]) int {
	if p.Owner != q.Owner {
		panic("upcxx: GPtr difference across ranks")
	}
	return int((int64(p.Off) - int64(q.Off)) / int64(serial.SizeOf[T]()))
}

// Where returns the rank with affinity to the referenced memory.
func (p GPtr[T]) Where() Intrank { return p.Owner }

func (p GPtr[T]) String() string {
	if p.IsNil() {
		return fmt.Sprintf("gptr<%s>(nil)", typeName[T]())
	}
	return fmt.Sprintf("gptr<%s>(rank %d, off %d)", typeName[T](), p.Owner, p.Off)
}

func typeName[T any]() string {
	var z T
	return fmt.Sprintf("%T", z)
}

// New allocates one T in this rank's shared segment
// (upcxx::new_<T>), zero-initialized.
func New[T serial.Scalar](rk *Rank) (GPtr[T], error) {
	return NewArray[T](rk, 1)
}

// NewArray allocates n contiguous Ts in this rank's shared segment
// (upcxx::new_array<T>), zero-initialized.
func NewArray[T serial.Scalar](rk *Rank, n int) (GPtr[T], error) {
	sz := n * serial.SizeOf[T]()
	off, err := rk.ep.Segment().Alloc(sz)
	if err != nil {
		return NilGPtr[T](), fmt.Errorf("upcxx: rank %d: %w", rk.me, err)
	}
	b := rk.ep.Segment().Bytes(off, sz)
	for i := range b {
		b[i] = 0
	}
	return GPtr[T]{Owner: rk.me, Off: off}, nil
}

// MustNewArray is NewArray, panicking on segment exhaustion.
func MustNewArray[T serial.Scalar](rk *Rank, n int) GPtr[T] {
	p, err := NewArray[T](rk, n)
	if err != nil {
		panic(err)
	}
	return p
}

// Delete frees an allocation in this rank's own segment. Freeing remote
// memory requires an RPC to the owner, in keeping with explicit
// communication.
func Delete[T serial.Scalar](rk *Rank, p GPtr[T]) error {
	if p.Owner != rk.me {
		return fmt.Errorf("upcxx: rank %d cannot Delete memory owned by rank %d", rk.me, p.Owner)
	}
	return rk.ep.Segment().Free(p.Off)
}

// Local converts a global pointer with affinity to this rank into a
// directly-usable slice of n elements (the global-to-local conversion the
// paper permits for the owning process). It panics if p is remote.
func Local[T serial.Scalar](rk *Rank, p GPtr[T], n int) []T {
	if p.Owner != rk.me {
		panic(fmt.Sprintf("upcxx: Local on %v from rank %d", p, rk.me))
	}
	b := rk.ep.Segment().Bytes(p.Off, n*serial.SizeOf[T]())
	return serial.FromBytes[T](b)
}

// ToGlobal converts a slice previously obtained from Local back into a
// global pointer rooted at its first element. It is the local-to-global
// conversion; s must alias this rank's segment.
func ToGlobal[T serial.Scalar](rk *Rank, s []T) GPtr[T] {
	if len(s) == 0 {
		return NilGPtr[T]()
	}
	seg := rk.ep.Segment()
	base := seg.Bytes(0, seg.Size())
	sb := serial.AsBytes(s)
	off := offsetWithin(base, sb)
	if off < 0 {
		panic("upcxx: ToGlobal of memory outside the shared segment")
	}
	return GPtr[T]{Owner: rk.me, Off: uint64(off)}
}

// offsetWithin returns the byte offset of sub within base, or -1 if sub
// does not alias base.
func offsetWithin(base, sub []byte) int {
	if len(sub) == 0 || len(base) == 0 {
		return -1
	}
	b0 := uintptrOf(base)
	s0 := uintptrOf(sub)
	if s0 < b0 || s0+uintptr(len(sub)) > b0+uintptr(len(base)) {
		return -1
	}
	return int(s0 - b0)
}

// gasnetRank converts for clarity at call sites.
func gasnetRank(r Intrank) gasnet.Rank { return r }
