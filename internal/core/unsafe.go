package upcxx

import "unsafe"

// uintptrOf returns the address of the first byte of b. Isolated here so
// unsafe appears in exactly one file of this package.
func uintptrOf(b []byte) uintptr {
	return uintptr(unsafe.Pointer(&b[0]))
}
