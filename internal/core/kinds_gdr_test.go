package upcxx

import (
	"fmt"
	"testing"

	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
)

// GPU-direct conformance matrix: every RMA shape that touches device
// memory must move the right bytes on both datapaths — the GDR-capable
// direct chain (NIC reads/writes device memory, no host bounce) and the
// staged bounce chain — same-rank and cross-rank. The obs descriptor
// counters pin which path ran: cross-rank d2d traffic is d2d-direct
// under GDR and d2d-bounced without it; same-rank d2d collapses to one
// direct engine descriptor on either path. The whole file runs under
// `go test -race` in CI (names match the Kinds/Coll race patterns).

func gdrConfig(ranks int, gdr bool) Config {
	return Config{Ranks: ranks, Stats: true, DMA: gasnet.NoDelayDMA{GDR: gdr}}
}

func TestKindsGDRConformanceMatrix(t *testing.T) {
	for _, gdr := range []bool{false, true} {
		mode := "bounced"
		if gdr {
			mode = "gdr"
		}
		for _, cross := range []bool{false, true} {
			loc := "self"
			if cross {
				loc = "cross"
			}
			t.Run(fmt.Sprintf("%s/%s", mode, loc), func(t *testing.T) {
				w := NewWorld(gdrConfig(2, gdr))
				defer w.Close()
				target := Intrank(0)
				if cross {
					target = 1
				}
				w.Run(func(rk *Rank) {
					da := NewDeviceAllocator(rk, 1<<18)
					dev := MustNewDeviceArray[int32](da, kindsN)
					local := MustNewDeviceArray[int32](da, kindsN)
					obj := NewDistObject(rk, dev)
					rk.Barrier()
					if rk.Me() == 0 {
						d := FetchDist[GPtr[int32]](rk, obj.ID(), target).Wait()
						// put: host source into a device destination.
						hsrc := make([]int32, kindsN)
						for i := range hsrc {
							hsrc[i] = 7 + int32(i)
						}
						RPut(rk, hsrc, d).Wait()
						// get: device source back into host memory.
						got := make([]int32, kindsN)
						RGet(rk, d, got).Wait()
						for i, v := range got {
							if v != 7+int32(i) {
								t.Errorf("put/get [%d] = %d, want %d", i, v, 7+int32(i))
								break
							}
						}
						// copy: device-to-device, initiator's device to target's.
						fillKind(rk, da, local, kindsN, 500)
						CopyGG(rk, local, d, kindsN).Wait()
						RGet(rk, d, got).Wait()
						for i, v := range got {
							if v != 500+int32(i) {
								t.Errorf("d2d copy [%d] = %d, want %d", i, v, 500+int32(i))
								break
							}
						}
					}
					rk.Barrier()
				})
				s := w.StatsMerged()
				// The mixed pairs keep their staging kinds on both paths.
				if s.DMA[obs.DMAH2D] == 0 || s.DMA[obs.DMAD2H] == 0 {
					t.Errorf("h2d/d2h descriptors = %d/%d, want both nonzero", s.DMA[obs.DMAH2D], s.DMA[obs.DMAD2H])
				}
				direct, bounced := s.DMA[obs.DMAD2DDirect], s.DMA[obs.DMAD2DBounced]
				switch {
				case !cross:
					// Same-rank d2d is one direct engine descriptor always.
					if direct == 0 || bounced != 0 {
						t.Errorf("self d2d: direct=%d bounced=%d, want direct>0 bounced=0", direct, bounced)
					}
				case gdr:
					// Cross-rank GDR: one descriptor per engine, no bounce.
					if direct < 2 || bounced != 0 {
						t.Errorf("gdr cross d2d: direct=%d bounced=%d, want direct>=2 bounced=0", direct, bounced)
					}
				default:
					if bounced < 2 || direct != 0 {
						t.Errorf("bounced cross d2d: direct=%d bounced=%d, want bounced>=2 direct=0", direct, bounced)
					}
				}
			})
		}
	}
}

// TestCollGDRDeviceAllReduceMatrix runs the device-operand allreduce on
// both datapaths, self (one-rank team, no links) and cross, checking the
// reduced values and the descriptor-kind split.
func TestCollGDRDeviceAllReduceMatrix(t *testing.T) {
	for _, gdr := range []bool{false, true} {
		mode := "bounced"
		if gdr {
			mode = "gdr"
		}
		for _, ranks := range []int{1, 4} {
			loc := "self"
			if ranks > 1 {
				loc = "cross"
			}
			t.Run(fmt.Sprintf("%s/%s", mode, loc), func(t *testing.T) {
				const n = 32
				w := NewWorld(gdrConfig(ranks, gdr))
				defer w.Close()
				w.Run(func(rk *Rank) {
					da := NewDeviceAllocator(rk, 1<<16)
					buf := MustNewDeviceArray[float64](da, n)
					RunKernel(da, buf, n, func(s []float64) {
						for i := range s {
							s[i] = float64(rk.Me() + 1)
						}
					})
					AllReduceBufWith(rk.WorldTeam(), da, buf, n,
						func(a, b float64) float64 { return a + b }).Op.Wait()
					want := float64(ranks * (ranks + 1) / 2)
					RunKernel(da, buf, n, func(s []float64) {
						for i, v := range s {
							if v != want {
								t.Errorf("rank %d: buf[%d] = %v, want %v", rk.Me(), i, v, want)
								break
							}
						}
					})
					rk.Barrier()
				})
				s := w.StatsMerged()
				direct, bounced := s.DMA[obs.DMAD2DDirect], s.DMA[obs.DMAD2DBounced]
				links := uint64(ranks - 1)
				switch {
				case ranks == 1:
					if direct != 0 || bounced != 0 {
						t.Errorf("one-rank allreduce moved d2d descriptors: direct=%d bounced=%d", direct, bounced)
					}
				case gdr:
					// Two engines per link per direction, all direct.
					if direct != 4*links || bounced != 0 {
						t.Errorf("gdr allreduce: direct=%d bounced=%d, want direct=%d bounced=0", direct, bounced, 4*links)
					}
				default:
					if bounced != 4*links || direct != 0 {
						t.Errorf("bounced allreduce: direct=%d bounced=%d, want bounced=%d direct=0", direct, bounced, 4*links)
					}
				}
			})
		}
	}
}

// TestCollDeviceAllReduceGDRDirectPath is the GDR analogue of
// TestCollDeviceAllReduceNoHostStaging and the acceptance pin for the
// fused landing-hop reduction: under a GPUDirect-capable DMA model the
// device allreduce's hop trace contains *only* d2d-direct descriptors —
// zero host-staging hops of any kind — and each parent launches exactly
// one fused fold kernel per child round (counted by obs), folding all of
// that round's arrived children at once. A flat radix makes the fusion
// visible: the root folds p-1 children with a single launch.
func TestCollDeviceAllReduceGDRDirectPath(t *testing.T) {
	const p, n = 8, 64
	cfg := gdrConfig(p, true)
	cfg.CollRadix = p // flat tree: one round, p-1 children at the root
	w := NewWorld(cfg)
	defer w.Close()
	das := make([]*DeviceAllocator, p)
	bufs := make([]GPtr[float64], p)
	w.Run(func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<20)
		buf := MustNewDeviceArray[float64](da, n)
		RunKernel(da, buf, n, func(s []float64) {
			for i := range s {
				s[i] = float64(rk.Me() + 1)
			}
		})
		das[rk.Me()], bufs[rk.Me()] = da, buf
	})

	w.Network().TraceDMA(true)
	w.Run(func(rk *Rank) {
		AllReduceBufWith(rk.WorldTeam(), das[rk.Me()], bufs[rk.Me()], n,
			func(a, b float64) float64 { return a + b }).Op.Wait()
	})
	trace := w.Network().DMATrace()
	w.Network().TraceDMA(false)

	want := float64(p * (p + 1) / 2)
	w.Run(func(rk *Rank) {
		RunKernel(das[rk.Me()], bufs[rk.Me()], n, func(s []float64) {
			for i, v := range s {
				if v != want {
					t.Errorf("rank %d: buf[%d] = %v, want %v", rk.Me(), i, v, want)
				}
			}
		})
	})

	// Same hop budget as the bounced pin test — two engine descriptors per
	// link per direction — but every one of them direct: the staging DMAs
	// are gone, not relabeled.
	links := p - 1
	if wantHops := 4 * links; len(trace) != wantHops {
		t.Errorf("DMA trace has %d hops, want %d", len(trace), wantHops)
	}
	for _, h := range trace {
		if h.Kind != obs.DMAD2DDirect {
			t.Errorf("rank %d emitted a %s descriptor on the GDR path, want d2d-direct only", h.Rank, h.Kind)
		}
		if h.Bytes != n*8 {
			t.Errorf("DMA hop on rank %d moved %d bytes, want %d", h.Rank, h.Bytes, n*8)
		}
	}

	// Fused-fold pin: the flat tree has exactly one parent round (at the
	// root) with p-1 children, so the whole reduction costs one fused
	// kernel launch covering p-1 operands — not p-1 per-child launches.
	s := w.StatsMerged()
	if s.FusedFolds != 1 || s.FusedChildren != uint64(links) {
		t.Errorf("fused folds: launches=%d children=%d, want launches=1 children=%d",
			s.FusedFolds, s.FusedChildren, links)
	}
}
