package upcxx

// Distributed objects (upcxx::dist_object<T>): one logical object with one
// local representative per rank, identified by a job-wide ID with no
// non-scalable per-rank bookkeeping anywhere (paper §II). Construction is
// collective in ordering only: every rank must construct its distributed
// objects in the same sequence, which assigns matching IDs without
// communication. Fetching a remote representative is explicit
// communication (an RPC), honoring the no-implicit-communication principle.
//
// The registry is shared between the constructing goroutine and whichever
// goroutine executes incoming fetch RPCs (the rank's own in self-progress
// mode, the progress thread otherwise), so it is mutex-protected; waiters
// for not-yet-constructed representatives are resumed on the persona that
// registered them.

// DistID identifies a distributed object across the job.
type DistID uint64

// distWaiter is a deferred fetch reply: fn must run on pers, the persona
// current when the fetch RPC body executed.
type distWaiter struct {
	pers *Persona
	fn   func(obj any)
}

// DistObject is one rank's representative of a distributed object.
type DistObject[T any] struct {
	rk  *Rank
	id  DistID
	val T
}

// NewDistObject registers this rank's representative. Ranks must construct
// distributed objects in matching order (the UPC++ requirement).
func NewDistObject[T any](rk *Rank, val T) *DistObject[T] {
	rk.distMu.Lock()
	id := rk.distSeq
	rk.distSeq++
	d := &DistObject[T]{rk: rk, id: DistID(id), val: val}
	rk.distObjs[id] = d
	waiters := rk.distWaits[id]
	delete(rk.distWaits, id)
	rk.distMu.Unlock()
	for _, wtr := range waiters {
		wtr := wtr
		wtr.pers.LPC(func() { wtr.fn(d) })
	}
	return d
}

// ID returns the job-wide identifier.
func (d *DistObject[T]) ID() DistID { return d.id }

// Value returns a pointer to the local representative.
func (d *DistObject[T]) Value() *T { return &d.val }

// Fetch retrieves rank from's representative of this distributed object.
// If the remote rank has not yet constructed its representative the reply
// is deferred until it does, matching upcxx::dist_object::fetch semantics.
func (d *DistObject[T]) Fetch(from Intrank) Future[T] {
	return FetchDist[T](d.rk, d.id, from)
}

// distValueMarshaler erases DistObject's type parameter at the fetch
// protocol boundary: the target serializes its representative, and the
// initiator's FetchDist decodes into the concrete T it asked for. The
// byte-level protocol is what lets one non-generic, registered RPC body
// serve every instantiation — generic bodies cannot cross a process
// boundary (see fnreg.go).
type distValueMarshaler interface{ distValueBytes() []byte }

func (d *DistObject[T]) distValueBytes() []byte { return mustMarshal(d.val) }

// distFetchBody is the target-side half of every dist-object fetch: a
// deferred-reply RPC body that resolves the ID to the local
// representative's serialized value, waiting for construction if the
// target has not reached the matching NewDistObject yet.
func distFetchBody(trk *Rank, id uint64) Future[[]byte] {
	trk.distMu.Lock()
	if o, ok := trk.distObjs[id]; ok {
		trk.distMu.Unlock()
		return ReadyFuture(trk, o.(distValueMarshaler).distValueBytes())
	}
	// RPC bodies execute on the rank's durable execution persona
	// (master or progress thread — see Rank.execBody), so the
	// deferred promise and its waiter outlive whichever goroutine
	// harvested the message.
	p := NewPromise[[]byte](trk)
	trk.distWaits[id] = append(trk.distWaits[id], distWaiter{
		pers: trk.currentPersona(),
		fn:   func(obj any) { p.FulfillResult(obj.(distValueMarshaler).distValueBytes()) },
	})
	trk.distMu.Unlock()
	return p.Future()
}

func init() { RegisterRPCFut(distFetchBody) }

// FetchDist retrieves rank from's representative of the distributed object
// with the given ID. The fetch is a deferred-reply RPC on the single
// injection path (RPCFutWith); like every RPC it accepts the full
// completion vocabulary, though the value future is all a fetch needs.
func FetchDist[T any](rk *Rank, id DistID, from Intrank) Future[T] {
	f, _ := RPCFutWith(rk, from, distFetchBody, uint64(id))
	return Then(f, func(b []byte) T {
		var v T
		mustUnmarshal(b, &v)
		return v
	})
}

// LookupDist resolves a DistID to this rank's local representative, the
// binding an RPC body performs after receiving a DistID argument (the
// analogue of UPC++'s automatic dist_object translation).
func LookupDist[T any](rk *Rank, id DistID) (*DistObject[T], bool) {
	rk.distMu.Lock()
	o, ok := rk.distObjs[uint64(id)]
	rk.distMu.Unlock()
	if !ok {
		return nil, false
	}
	d, ok := o.(*DistObject[T])
	return d, ok
}
