package upcxx

import (
	"fmt"

	"upcxx/internal/gasnet"
	"upcxx/internal/serial"
)

// Batched RPC: coalesce many small same-target RPCs into one wire message.
//
// The paper's small-message story (§IV: the distributed hash table, §V's
// flood injection rates) lives or dies on per-message overhead — every AM
// pays the conduit's fixed injection cost (LogGP o and gap) regardless of
// payload. A Batch amortizes that cost: requests accumulate locally with
// zero conduit interaction, then Flush ships them as ONE message under one
// shared completion plan, and the target executes every body in a single
// execution-persona wakeup and returns all results in ONE reply batch. The
// per-request futures behave exactly as their un-batched counterparts —
// each reply is demultiplexed by sequence number to its own promise.
//
// Argument serialization is zero-copy end to end: BatchRPC marshals into a
// gather encoder, so large argument views (serial.View) travel as borrowed
// iovec fragments that alias caller memory until the conduit's capture
// stage flattens them (rmaOp.bufs → Endpoint.AMTagV). Source completion on
// Flush is therefore the first moment the argument buffers may be reused —
// the same contract as rput.
//
// A Batch is not goroutine-safe; it is an accumulator owned by the calling
// persona, like a promise.

// --- batch wire form -----------------------------------------------------

// A batch message coalesces entries that all travel in one direction:
//
//	| magic 0xC9 | version 1 | src u32 LE | count uvarint |
//	| count × { kind u8 | seq u64 LE | arglen uvarint | args } |
//	| remlen uvarint | rem |
//
// Entry kinds reuse the single-RPC vocabulary (rpcReqKind / rpcReplyKind /
// rpcFFKind). Request batches may mix round-trip and fire-and-forget
// entries; reply batches carry only replies, and — like single replies —
// must not embed a remote-cx payload. The rem field is one landing
// notification for the whole batch (the message arrived; independent of
// any body's execution). decodeRPCBatchMsg rejects anything malformed;
// FuzzRPCBatchWire hammers it with hostile bytes and checks the canonical
// round-trip property.

const (
	rpcBatchMagic   = 0xC9
	rpcBatchVersion = 1
)

// rpcBatchEntry is one decoded entry of a batch wire message.
type rpcBatchEntry struct {
	kind uint8
	seq  uint64
	args []byte
}

// rpcBatchMsg is one decoded batch wire message.
type rpcBatchMsg struct {
	src     uint32
	entries []rpcBatchEntry
	rem     []byte // embedded remote-cx payload (encodeRemoteCx form)
}

// encodeRPCBatchMsg builds the contiguous wire form — the reply path and
// tests use it; Flush builds the identical byte stream fragment-wise with
// a gather encoder so argument views stay borrowed.
func encodeRPCBatchMsg(m rpcBatchMsg) []byte {
	e := serial.NewEncoder(make([]byte, 0, 32))
	e.PutU8(rpcBatchMagic)
	e.PutU8(rpcBatchVersion)
	e.PutU32(m.src)
	e.PutUvarint(uint64(len(m.entries)))
	for _, en := range m.entries {
		e.PutU8(en.kind)
		e.PutU64(en.seq)
		e.PutBytes(en.args)
	}
	e.PutUvarint(uint64(len(m.rem)))
	e.PutRaw(m.rem)
	return e.Bytes()
}

// decodeRPCBatchMsg parses and validates the batch wire form.
func decodeRPCBatchMsg(b []byte) (rpcBatchMsg, error) {
	var m rpcBatchMsg
	d := serial.NewDecoder(b)
	magic := d.U8()
	version := d.U8()
	m.src = d.U32()
	count := d.Uvarint()
	if d.Err() != nil {
		return m, d.Err()
	}
	if magic != rpcBatchMagic {
		return m, fmt.Errorf("rpc batch: bad magic %#x", magic)
	}
	if version != rpcBatchVersion {
		return m, fmt.Errorf("rpc batch: unsupported version %d", version)
	}
	if m.src > 1<<31-1 {
		return m, fmt.Errorf("rpc batch: sender rank %d out of range", m.src)
	}
	if count == 0 {
		return m, fmt.Errorf("rpc batch: empty batch")
	}
	// Every entry occupies at least kind+seq+arglen = 10 bytes, so count
	// can never exceed the remaining byte count — checked before the
	// allocation it sizes.
	if count > uint64(d.Remaining()) {
		return m, fmt.Errorf("rpc batch: entry count %d exceeds remaining %d bytes", count, d.Remaining())
	}
	m.entries = make([]rpcBatchEntry, 0, count)
	replies, requests := 0, 0
	for i := uint64(0); i < count; i++ {
		var en rpcBatchEntry
		en.kind = d.U8()
		en.seq = d.U64()
		alen := d.Uvarint()
		if d.Err() != nil {
			return m, d.Err()
		}
		if en.kind == 0 || en.kind > rpcKindMax {
			return m, fmt.Errorf("rpc batch: entry %d has unknown kind %d", i, en.kind)
		}
		if en.kind == rpcFFKind && en.seq != 0 {
			return m, fmt.Errorf("rpc batch: fire-and-forget entry %d carries sequence %d", i, en.seq)
		}
		if en.kind == rpcReplyKind {
			replies++
		} else {
			requests++
		}
		if alen > uint64(d.Remaining()) {
			return m, fmt.Errorf("rpc batch: entry %d argument length %d exceeds remaining %d bytes", i, alen, d.Remaining())
		}
		en.args = d.Raw(int(alen))
		m.entries = append(m.entries, en)
	}
	if replies > 0 && requests > 0 {
		return m, fmt.Errorf("rpc batch: mixes %d replies with %d requests", replies, requests)
	}
	rlen := d.Uvarint()
	if d.Err() != nil {
		return m, d.Err()
	}
	if rlen != uint64(d.Remaining()) {
		return m, fmt.Errorf("rpc batch: remote-cx length %d does not match remaining %d bytes", rlen, d.Remaining())
	}
	if rlen > 0 && replies > 0 {
		return m, fmt.Errorf("rpc batch: reply batch carries a remote-cx payload")
	}
	m.rem = d.Raw(int(rlen))
	if err := d.Finish(); err != nil {
		return m, err
	}
	return m, nil
}

// --- target side ---------------------------------------------------------

// rpcBatchInvoker runs one round-trip entry's body at the target and
// returns the marshalled result bytes; the handler collects every entry's
// result into one reply batch instead of shipping per-entry replies.
type rpcBatchInvoker func(trk *Rank, src Intrank, args []byte) []byte

// batchBodyAux is one entry's code reference, request or fire-and-forget
// form — positionally matched to the wire entries.
type batchBodyAux struct {
	inv   rpcBatchInvoker // rpcReqKind body
	ffInv rpcFFInvoker    // rpcFFKind body
	name  string          // registry name for cross-process dispatch ("" in-process)
}

// rpcBatchAux is the opaque code-reference token riding a request batch.
type rpcBatchAux struct {
	bodies []batchBodyAux
	rem    remoteCxAux // target-side landing event (zero when absent)
}

// handleRPCBatch is the conduit AM handler for batched RPC traffic. A
// request batch executes every body in ONE execution-persona delivery —
// the doorbell-coalescing half of the bargain: the target's progress
// engine wakes once per batch, not once per RPC — and ships all results
// back as one reply batch. A reply batch pops every pending continuation
// under a single lock acquisition and runs them in order; the initiator's
// Flush plan fires its operation edge on the last one.
func (w *World) handleRPCBatch(ep *gasnet.Endpoint, src gasnet.Rank, payload []byte, aux any) {
	trk := w.ranks[ep.Rank()]
	m, err := decodeRPCBatchMsg(payload)
	if err != nil {
		panic(fmt.Sprintf("upcxx: rank %d malformed RPC batch from %d: %v", trk.me, src, err))
	}
	if m.entries[0].kind == rpcReplyKind {
		conts := make([]func([]byte), len(m.entries))
		trk.rpcMu.Lock()
		for i, en := range m.entries {
			cont, ok := trk.rpcPending[en.seq]
			if !ok {
				trk.rpcMu.Unlock()
				panic(fmt.Sprintf("upcxx: rank %d received batched RPC reply for unknown sequence %d", trk.me, en.seq))
			}
			delete(trk.rpcPending, en.seq)
			conts[i] = cont
		}
		trk.rpcMu.Unlock()
		for i, cont := range conts {
			cont(m.entries[i].args)
		}
		return
	}
	a := aux.(rpcBatchAux)
	if len(a.bodies) != len(m.entries) {
		panic(fmt.Sprintf("upcxx: rank %d RPC batch body count %d does not match wire count %d",
			trk.me, len(a.bodies), len(m.entries)))
	}
	if len(m.rem) > 0 {
		initiator, args, derr := decodeRemoteCx(m.rem)
		if derr != nil {
			panic(fmt.Sprintf("upcxx: rank %d corrupt RPC batch remote-cx payload from %d: %v", trk.me, src, derr))
		}
		trk.runRemoteBody(a.rem, initiator, args)
	}
	entries, bodies, from := m.entries, a.bodies, Intrank(src)
	trk.execBody(func() {
		var replies []rpcBatchEntry
		for i, en := range entries {
			if en.kind == rpcReqKind {
				replies = append(replies, rpcBatchEntry{
					kind: rpcReplyKind,
					seq:  en.seq,
					args: bodies[i].inv(trk, from, en.args),
				})
			} else {
				bodies[i].ffInv(trk, from, en.args)
			}
		}
		if len(replies) > 0 {
			trk.replyBatchTo(from, replies)
		}
	})
}

// replyBatchTo ships the results of a request batch back to the initiator
// as one message on the single injection path.
func (rk *Rank) replyBatchTo(dst Intrank, replies []rpcBatchEntry) {
	op := rmaOp{
		kind:    opAM,
		dstPeer: dst,
		amID:    rk.w.amRPCBatch,
		buf:     encodeRPCBatchMsg(rpcBatchMsg{src: uint32(rk.me), entries: replies}),
	}
	rk.inject([]rmaOp{op}, &cxPlan{rk: rk, remotePeer: dst})
}

// --- initiator side ------------------------------------------------------

// batchEntry is one accumulated, not-yet-flushed request.
type batchEntry struct {
	kind    uint8
	seq     uint64 // assigned at Flush
	argLen  int
	frags   [][]byte // gather-marshalled argument bytes (may borrow caller memory)
	body    batchBodyAux
	onReply func([]byte) // rpcReqKind: routes the reply to the entry's promise
}

// Batch accumulates RPCs bound for one target rank. Add requests with
// BatchRPC / BatchRPCFF, then Flush to ship them as one message. The
// zero-interaction accumulate phase means adding to a batch never touches
// the conduit, never rings a doorbell, and never takes a lock.
type Batch struct {
	rk      *Rank
	target  Intrank
	entries []batchEntry
}

// NewBatch returns an empty batch bound for target.
func NewBatch(rk *Rank, target Intrank) *Batch {
	return &Batch{rk: rk, target: target}
}

// Len returns the number of accumulated, un-flushed requests.
func (b *Batch) Len() int { return len(b.entries) }

// Target returns the destination rank every entry is bound for.
func (b *Batch) Target() Intrank { return b.target }

// BatchRPC appends a round-trip invocation of fn(arg) to the batch and
// returns the future for fn's result, owned by the calling persona exactly
// as RPC's would be. The argument is serialized immediately — large views
// as borrowed fragments aliasing caller memory, reusable only after the
// flushed batch's source completion. fn must be synchronous (the deferred
// future-returning form is not batchable: its reply would have to leave
// the batch's single reply message).
func BatchRPC[A, R any](b *Batch, fn func(*Rank, A) R, arg A) Future[R] {
	inv := rpcBatchInvoker(func(trk *Rank, src Intrank, args []byte) []byte {
		var a A
		mustUnmarshal(args, &a)
		return mustMarshal(fn(trk, a))
	})
	p := NewPromise[R](b.rk)
	pers := p.c.pers // the current persona, resolved once by NewPromise
	b.entries = append(b.entries, batchEntry{
		kind: rpcReqKind,
		body: batchBodyAux{inv: inv, name: b.rk.wireName(fn)},
		onReply: func(res []byte) {
			pers.LPC(func() {
				var r R
				mustUnmarshal(res, &r)
				p.fulfillOwnedResult(r)
			})
		},
	})
	b.gatherArg(arg)
	return p.Future()
}

// BatchRPCFF appends a fire-and-forget invocation of fn(arg) to the batch:
// no reply entry comes back for it, and the flushed batch's operation
// completion does not wait for its execution (matching rpc_ff).
func BatchRPCFF[A any](b *Batch, fn func(*Rank, A), arg A) {
	inv := rpcFFInvoker(func(trk *Rank, src Intrank, args []byte) {
		var a A
		mustUnmarshal(args, &a)
		fn(trk, a)
	})
	b.entries = append(b.entries, batchEntry{
		kind: rpcFFKind,
		body: batchBodyAux{ffInv: inv, name: b.rk.wireName(fn)},
	})
	b.gatherArg(arg)
}

// gatherArg serializes arg into the just-appended entry through a gather
// encoder, so view payloads stay borrowed until conduit capture.
func (b *Batch) gatherArg(arg any) {
	e := serial.NewEncoder(nil)
	e.EnableGather()
	if err := serial.MarshalInto(e, arg); err != nil {
		panic(fmt.Sprintf("upcxx: batched RPC argument not serializable: %v", err))
	}
	en := &b.entries[len(b.entries)-1]
	en.argLen = e.Len()
	en.frags = e.Fragments()
}

// Flush ships every accumulated request as ONE wire message under one
// shared completion plan and resets the batch for reuse. The descriptor
// set applies to the whole batch:
//
//   - source completion — the conduit captured the message (including
//     every borrowed argument fragment); all argument buffers are reusable;
//   - operation completion — every round-trip entry's reply has landed
//     (with only fire-and-forget entries, the conduit accepted the message);
//   - remote completion (as_rpc) — one target-side landing event for the
//     whole batch, firing when the message arrives.
//
// Flushing an empty batch completes the plan immediately. The per-entry
// value futures resolve independently as their replies are demultiplexed.
func (b *Batch) Flush(cxs ...Cx) CxFutures {
	rk := b.rk
	plan := &cxPlan{rk: rk, remotePeer: b.target}
	for _, cx := range cxs {
		plan.add(opRPC, cx)
	}
	entries := b.entries
	b.entries = nil
	if len(entries) == 0 {
		rk.inject(nil, plan)
		return plan.futs
	}
	nreq := 0
	for i := range entries {
		if entries[i].kind == rpcReqKind {
			nreq++
		}
	}
	// Round-trip entries defer the plan's operation edge to the reply
	// side: each pending continuation routes its result, and the last one
	// fires the plan and releases the activity count (replies of one batch
	// run sequentially on the harvesting goroutine, so a plain countdown
	// suffices). LPC deliveries precede the actCount decrement — a
	// quiescing owner must never observe actQ empty while a completion is
	// unqueued.
	if nreq > 0 {
		left := nreq
		rk.rpcMu.Lock()
		for i := range entries {
			en := &entries[i]
			if en.kind != rpcReqKind {
				continue
			}
			en.seq = rk.rpcSeq
			rk.rpcSeq++
			onReply := en.onReply
			rk.rpcPending[en.seq] = func(res []byte) {
				onReply(res)
				left--
				if left == 0 {
					plan.opDone()
					rk.actCount.Add(-1)
				}
			}
		}
		rk.rpcMu.Unlock()
	}
	// Build the wire fragments: header and per-entry framing are copied
	// into contiguous glue, argument fragments ride borrowed. The
	// concatenation is byte-identical to encodeRPCBatchMsg of the same
	// logical message (the fuzz target's canonical form).
	e := serial.NewEncoder(make([]byte, 0, 64))
	e.EnableGather()
	e.PutU8(rpcBatchMagic)
	e.PutU8(rpcBatchVersion)
	e.PutU32(uint32(rk.me))
	e.PutUvarint(uint64(len(entries)))
	bodies := make([]batchBodyAux, len(entries))
	for i := range entries {
		en := &entries[i]
		bodies[i] = en.body
		e.PutU8(en.kind)
		e.PutU64(en.seq)
		e.PutUvarint(uint64(en.argLen))
		for _, f := range en.frags {
			e.PutBorrowed(f)
		}
	}
	aux := rpcBatchAux{bodies: bodies}
	var rem []byte
	if am := plan.takeConduitAM(); am != nil {
		rem = am.Payload
		aux.rem = am.Aux.(remoteCxAux)
	}
	e.PutUvarint(uint64(len(rem)))
	e.PutRaw(rem)
	opK := opAM // all fire-and-forget: the operation edge fires at injection
	if nreq > 0 {
		opK = opRPC // the last reply continuation fires the operation edge
	}
	op := rmaOp{
		kind:    opK,
		dstPeer: b.target,
		amID:    rk.w.amRPCBatch,
		bufs:    e.Fragments(),
		amAux:   aux,
	}
	rk.inject([]rmaOp{op}, plan)
	return plan.futs
}
