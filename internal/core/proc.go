package upcxx

// Multi-process SPMD bootstrap: ranks as OS processes over the real
// transport conduit (internal/gasnet's tcp and shm backends).
//
// The launch protocol is environment-driven, mirroring how upcxx-run
// seeds GASNet jobs. A parent invocation (no UPCXX_RANK) spawns N
// copies of its own binary — each with UPCXX_RANK/UPCXX_NPROC/
// UPCXX_BOOT_DIR set — and waits; each child runs the same main() and
// its RunConfig builds a one-rank World wired to the real conduit.
// Repeated worlds in one process (tests, multi-epoch tools) bump a
// per-process epoch counter that namespaces the bootstrap directory;
// SPMD ordering makes the counters agree across ranks.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
)

// Bootstrap environment, set by LaunchWorld for every rank process.
const (
	envConduit = "UPCXX_CONDUIT"  // transport backend: tcp | shm (unset/model: in-process)
	envRank    = "UPCXX_RANK"     // this process's rank (workers only)
	envNProc   = "UPCXX_NPROC"    // job size
	envBootDir = "UPCXX_BOOT_DIR" // rendezvous directory (addr files, shm segments)
	envSegSize = "UPCXX_SEGSIZE"  // per-rank segment bytes override
)

// DistBackend returns the real transport backend selected by
// UPCXX_CONDUIT ("tcp" or "shm"), or "" when the in-process conduit is
// active (unset, empty, or "model").
func DistBackend() string {
	switch b := os.Getenv(envConduit); b {
	case "", "model":
		return ""
	default:
		return b
	}
}

// DistActive reports whether UPCXX_CONDUIT selects a real multi-process
// backend.
func DistActive() bool { return DistBackend() != "" }

// DistNProc returns the rank-process count of the active multi-process
// job (UPCXX_NPROC), or 0 when no real conduit is active or the count is
// not yet fixed (the parent launcher without an explicit override).
func DistNProc() int {
	if !DistActive() {
		return 0
	}
	return envInt(envNProc, 0)
}

// distWorker reports whether this process is a spawned rank (as opposed
// to the parent launcher).
func distWorker() bool { return os.Getenv(envRank) != "" }

// worldEpoch namespaces bootstrap directories when one process creates
// several distributed worlds in sequence.
var worldEpoch atomic.Uint64

func envInt(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// NewWorldDist builds this process's single-rank view of a multi-process
// job from the bootstrap environment. cfg.Ranks is ignored (UPCXX_NPROC
// is authoritative — the parent already spawned that many processes);
// timing models are meaningless against a real wire and must be nil.
// Bootstrap blocks until every rank has rendezvoused.
func NewWorldDist(cfg Config) *World {
	backend := DistBackend()
	if backend == "" {
		panic("upcxx: NewWorldDist without UPCXX_CONDUIT")
	}
	if !distWorker() {
		panic("upcxx: NewWorldDist in a non-worker process (no UPCXX_RANK — launch via RunConfig or upcxx-run)")
	}
	if cfg.Model != nil {
		panic("upcxx: network timing models are incompatible with a real transport backend")
	}
	rank := envInt(envRank, -1)
	nproc := envInt(envNProc, 0)
	dir := os.Getenv(envBootDir)
	if rank < 0 || nproc <= 0 || rank >= nproc || dir == "" {
		panic(fmt.Sprintf("upcxx: malformed bootstrap environment (rank %d, nproc %d, dir %q)", rank, nproc, dir))
	}
	if v := envInt(envSegSize, 0); v > 0 {
		cfg.SegmentSize = v
	}
	cfg.Ranks = nproc
	if cfg.WaitTimeout == 0 {
		cfg.WaitTimeout = 60 * time.Second
	}
	cfg.envObsConfig()
	wdir := filepath.Join(dir, fmt.Sprintf("w%d", worldEpoch.Add(1)))
	if err := os.MkdirAll(wdir, 0o777); err != nil {
		panic(fmt.Sprintf("upcxx: bootstrap dir: %v", err))
	}
	w := &World{cfg: cfg, dist: true, self: Intrank(rank)}
	if cfg.Stats {
		w.obs = obs.New(cfg.Ranks, obs.Options{
			TraceDepth:  cfg.TraceDepth,
			TraceSample: cfg.TraceSample,
		})
	}
	w.net = gasnet.NewNetwork(gasnet.Config{
		Ranks:       cfg.Ranks,
		SegmentSize: cfg.SegmentSize,
		DMA:         cfg.DMA,
		Obs:         w.obs,
		Real: &gasnet.RealConduit{
			Backend: backend,
			Rank:    rank,
			BootDir: wdir,
			Timeout: 30 * time.Second,
		},
		Aux: distAuxCodec{},
	})
	w.amRPC = w.net.RegisterAM(w.handleRPC)
	w.amRPCBatch = w.net.RegisterAM(w.handleRPCBatch)
	w.amColl = w.net.RegisterAM(w.handleColl)
	w.amRemote = w.net.RegisterAM(w.handleRemoteCx)
	w.ranks = make([]*Rank, cfg.Ranks)
	rk := &Rank{
		w:          w,
		ep:         w.net.Endpoint(Intrank(rank)),
		me:         Intrank(rank),
		n:          Intrank(cfg.Ranks),
		rpcPending: make(map[uint64]func([]byte)),
		splitSeqs:  make(map[uint64]uint64),
		distObjs:   make(map[uint64]any),
		distWaits:  make(map[uint64][]distWaiter),
	}
	if w.obs != nil {
		rk.ro = w.obs.Rank(rank)
	}
	rk.coll = newCollEngine(rk, cfg.CollRadix)
	rk.master = NewPersona(rk, "master")
	rk.progressP = NewPersona(rk, "progress")
	rk.worldTeam = newWorldTeam(rk)
	w.ranks[rank] = rk
	if cfg.ProgressThread {
		w.ptStop = make(chan struct{})
		w.ptWG.Add(1)
		go rk.progressLoop(w.ptStop, &w.ptWG)
	}
	return w
}

// SpawnSelf re-executes this binary as an n-rank job over the
// UPCXX_CONDUIT backend and returns the aggregate exit code. The rank
// count may be overridden by UPCXX_NPROC (so `UPCXX_NPROC=4 prog` scales
// a program whose source says Run(2, ...)).
func SpawnSelf(n int) int {
	n = envInt(envNProc, n)
	dir, err := os.MkdirTemp("", "upcxx-boot-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "upcxx-run: boot dir: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)
	return LaunchWorld(n, DistBackend(), dir, os.Args[0], os.Args[1:], nil)
}

// LaunchWorld spawns bin args... as an n-rank SPMD job over the given
// transport backend, rendezvousing through dir, and waits for every
// rank. Ranks inherit this process's stdio and environment (plus
// extraEnv and the bootstrap variables). The first rank to fail kills
// the rest; the return value is the first non-zero exit code, else 0.
func LaunchWorld(n int, backend, dir, bin string, args []string, extraEnv []string) int {
	if n <= 0 {
		fmt.Fprintf(os.Stderr, "upcxx-run: rank count must be positive (got %d)\n", n)
		return 2
	}
	if backend != "tcp" && backend != "shm" {
		fmt.Fprintf(os.Stderr, "upcxx-run: unknown conduit backend %q (want tcp or shm)\n", backend)
		return 2
	}
	cmds := make([]*exec.Cmd, n)
	for r := 0; r < n; r++ {
		cmd := exec.Command(bin, args...)
		cmd.Stdin = os.Stdin
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		cmd.Env = append(os.Environ(),
			envConduit+"="+backend,
			envRank+"="+strconv.Itoa(r),
			envNProc+"="+strconv.Itoa(n),
			envBootDir+"="+dir,
		)
		cmd.Env = append(cmd.Env, extraEnv...)
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "upcxx-run: rank %d: %v\n", r, err)
			for _, c := range cmds[:r] {
				c.Process.Kill()
			}
			return 1
		}
		cmds[r] = cmd
	}
	// Forward interrupts to the whole job so ^C tears down every rank.
	sig := make(chan os.Signal, 8)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		for s := range sig {
			for _, c := range cmds {
				if c.Process != nil {
					c.Process.Signal(s)
				}
			}
		}
	}()
	type result struct {
		rank int
		code int
	}
	results := make(chan result, n)
	for r, cmd := range cmds {
		r, cmd := r, cmd
		go func() {
			err := cmd.Wait()
			code := 0
			if err != nil {
				code = 1
				if cmd.ProcessState != nil {
					if c := cmd.ProcessState.ExitCode(); c > 0 {
						code = c
					}
				}
			}
			results <- result{r, code}
		}()
	}
	exit := 0
	for i := 0; i < n; i++ {
		res := <-results
		if res.code != 0 && exit == 0 {
			exit = res.code
			fmt.Fprintf(os.Stderr, "upcxx-run: rank %d exited with code %d; terminating job\n", res.rank, res.code)
			for _, c := range cmds {
				if c.Process != nil {
					c.Process.Kill()
				}
			}
		}
	}
	return exit
}

// --- cross-process stats ------------------------------------------------

// statsSnapBody is the registered fetch half of StatsMergedDist: each
// rank serializes its own observability snapshot.
func statsSnapBody(trk *Rank, _ uint8) []byte {
	b, err := json.Marshal(trk.Stats())
	if err != nil {
		panic(fmt.Sprintf("upcxx: stats snapshot marshal: %v", err))
	}
	return b
}

func init() { RegisterRPC(statsSnapBody) }

// StatsMergedDist is StatsMerged for any world shape: in-process worlds
// merge locally; multi-process worlds gather every sibling rank's
// snapshot by RPC (call it from rank 0, SPMD-collectively if every rank
// wants the result). The zero Snapshot comes back when stats are off.
func (w *World) StatsMergedDist(rk *Rank) obs.Snapshot {
	if !w.dist {
		return w.StatsMerged()
	}
	merged := rk.Stats()
	merged.Rank = -1
	for r := Intrank(0); r < rk.n; r++ {
		if r == rk.me {
			continue
		}
		b := RPC(rk, r, statsSnapBody, uint8(0)).Wait()
		var s obs.Snapshot
		if err := json.Unmarshal(b, &s); err != nil {
			panic(fmt.Sprintf("upcxx: stats snapshot from rank %d: %v", r, err))
		}
		merged.Merge(&s)
	}
	return merged
}
