package upcxx

import (
	"testing"

	"upcxx/internal/obs"
)

// Observability conformance: the counters the introspection layer
// reports must match the operations the program injected, exactly —
// across {put,get,copy,atomic,rpc,collective} × {host,device} ×
// {self,cross} and across the completion-via matrix. The file runs
// under -race in CI (obs-smoke), pinning the recording paths as
// race-clean against real runtime concurrency.

const obsN = 3  // ops per matrix cell
const obsB = 64 // payload bytes per RMA op (16 × int32)

func TestObsConformanceMatrix(t *testing.T) {
	RunConfig(Config{Ranks: 2, Stats: true}, func(rk *Rank) {
		da := NewDeviceAllocator(rk, 1<<20)
		host := MustNewArray[int32](rk, 16)
		dev := MustNewDeviceArray[int32](da, 16)
		ctr := MustNewArray[uint64](rk, 1)
		hObj := NewDistObject(rk, host)
		dObj := NewDistObject(rk, dev)
		cObj := NewDistObject(rk, ctr)
		ad := NewAtomicU64(rk)
		rk.Barrier()

		if rk.Me() == 0 {
			peerHost := FetchDist[GPtr[int32]](rk, hObj.ID(), 1).Wait()
			peerDev := FetchDist[GPtr[int32]](rk, dObj.ID(), 1).Wait()
			peerCtr := FetchDist[GPtr[uint64]](rk, cObj.ID(), 1).Wait()

			src := make([]int32, 16)
			buf := make([]int32, 16)
			base := rk.Stats()
			for i := 0; i < obsN; i++ {
				RPut(rk, src, host).Wait()                                    // put host self
				RPut(rk, src, peerHost).Wait()                                // put host cross
				RPut(rk, src, peerDev).Wait()                                 // put device cross
				RGet(rk, host, buf).Wait()                                    // get host self
				RGet(rk, peerHost, buf).Wait()                                // get host cross
				CopyGG(rk, host, dev, 16).Wait()                              // copy h2d self
				CopyGG(rk, host, peerDev, 16).Wait()                          // copy h2d cross
				CopyGG(rk, dev, peerHost, 16).Wait()                          // copy d2h cross
				ad.FetchAdd(ctr, 1).Wait()                                    // atomic self
				ad.FetchAdd(peerCtr, 1).Wait()                                // atomic cross
				RPC(rk, 0, func(trk *Rank, x int) int { return x }, i).Wait() // rpc self
				RPC(rk, 1, func(trk *Rank, x int) int { return x }, i).Wait() // rpc cross
			}
			// Promise-counted flood (operation_cx::as_promise).
			p := NewPromise[Unit](rk)
			for i := 0; i < obsN; i++ {
				RPutPromise(rk, src, peerHost, p)
			}
			p.Finalize().Wait()
			// Source + operation completion on one put.
			fs := RPutWith(rk, src, peerHost, SourceCxAsFuture(), OpCxAsFuture())
			fs.Source.Wait()
			fs.Op.Wait()
			// LPC-delivered operation completion on the current persona.
			lpcHit := false
			fsl := RPutWith(rk, src, peerHost,
				OpCxAsLPC(rk.CurrentPersona(), func() { lpcHit = true }),
				OpCxAsFuture())
			fsl.Op.Wait()
			for !lpcHit {
				rk.Progress()
			}

			d := rk.Stats().Delta(base)
			wantOps := [obs.NumOpKinds]uint64{}
			wantOps[obs.KindPut] = 3*obsN + obsN + 2 // matrix + flood + src-cx + lpc puts
			wantOps[obs.KindGet] = 2 * obsN
			wantOps[obs.KindCopy] = 3 * obsN
			wantOps[obs.KindAtomic] = 2 * obsN
			wantOps[obs.KindRPC] = 2 * obsN
			// Each RPC reply is a one-way AM issued by the responder; the
			// self-RPCs' replies are issued by this rank.
			wantOps[obs.KindAM] = obsN
			for k := obs.KindPut; k < obs.KindColl; k++ {
				if d.Ops[k] != wantOps[k] {
					t.Errorf("Ops[%v] = %d, want %d", k, d.Ops[k], wantOps[k])
				}
			}
			if want := (4*obsN + 2) * uint64(obsB); d.TxBytes[obs.KindPut] != want {
				t.Errorf("TxBytes[put] = %d, want %d", d.TxBytes[obs.KindPut], want)
			}
			if want := 2 * obsN * uint64(obsB); d.TxBytes[obs.KindGet] != want {
				t.Errorf("TxBytes[get] = %d, want %d", d.TxBytes[obs.KindGet], want)
			}
			if want := 3 * obsN * uint64(obsB); d.TxBytes[obs.KindCopy] != want {
				t.Errorf("TxBytes[copy] = %d, want %d", d.TxBytes[obs.KindCopy], want)
			}
			if want := 2 * obsN * uint64(8); d.TxBytes[obs.KindAtomic] != want {
				t.Errorf("TxBytes[atomic] = %d, want %d", d.TxBytes[obs.KindAtomic], want)
			}
			// Gets land at the initiator: rank 0 received every get payload.
			if want := 2 * obsN * uint64(obsB); d.RxBytes[obs.KindGet] != want {
				t.Errorf("RxBytes[get] = %d, want %d", d.RxBytes[obs.KindGet], want)
			}
			// Completion matrix: every future-completed op in the loop plus
			// the two op futures of the src-cx and LPC puts; the flood
			// delivered via promise; one source future; one LPC.
			if want := 10*uint64(obsN) + 2; d.Cx[obs.EvOp][obs.ViaFuture] != want {
				t.Errorf("Cx[op][future] = %d, want %d", d.Cx[obs.EvOp][obs.ViaFuture], want)
			}
			if d.Cx[obs.EvOp][obs.ViaPromise] != obsN {
				t.Errorf("Cx[op][promise] = %d, want %d", d.Cx[obs.EvOp][obs.ViaPromise], obsN)
			}
			if d.Cx[obs.EvSource][obs.ViaFuture] != 1 {
				t.Errorf("Cx[source][future] = %d, want 1", d.Cx[obs.EvSource][obs.ViaFuture])
			}
			if d.Cx[obs.EvOp][obs.ViaLPC] != 1 {
				t.Errorf("Cx[op][lpc] = %d, want 1", d.Cx[obs.EvOp][obs.ViaLPC])
			}
			// Device traffic ran through the DMA engine on this rank: the
			// self h2d copies and the d2h source drains at least.
			if d.DMA[obs.DMAH2D] < obsN || d.DMA[obs.DMAD2H] < obsN {
				t.Errorf("DMA h2d/d2h = %d/%d, want >= %d each", d.DMA[obs.DMAH2D], d.DMA[obs.DMAD2H], obsN)
			}
			// Latency histograms saw exactly the ops this rank injected
			// (absolute totals: nothing else in this world issues puts).
			s := rk.Stats()
			if got := s.HistCount(obs.HistDone, obs.KindPut); got != uint64(wantOps[obs.KindPut]) {
				t.Errorf("HistCount(done, put) = %d, want %d", got, wantOps[obs.KindPut])
			}
			if got := s.HistCount(obs.HistDone, obs.KindCopy); got != 3*obsN {
				t.Errorf("HistCount(done, copy) = %d, want %d", got, 3*obsN)
			}
		}
		rk.Barrier()

		// Collectives: every rank plans one whole-collective op per call,
		// lowered onto counted tree rounds.
		base := rk.Stats()
		for i := 0; i < obsN; i++ {
			AllReduce(rk.WorldTeam(), int64(1), func(a, b int64) int64 { return a + b }).Wait()
		}
		d := rk.Stats().Delta(base)
		if d.Ops[obs.KindColl] != obsN {
			t.Errorf("rank %d: Ops[collective] = %d, want %d", rk.Me(), d.Ops[obs.KindColl], obsN)
		}
		if d.Ops[obs.KindCollRound] < obsN {
			t.Errorf("rank %d: Ops[coll-round] = %d, want >= %d", rk.Me(), d.Ops[obs.KindCollRound], obsN)
		}
		rk.Barrier()
	})
}

// TestObsTraceTimeline arms tracing and checks a traced put's causal
// timeline: inject first, delivered last, monotone timestamps, and a
// landing recorded at the destination rank.
func TestObsTraceTimeline(t *testing.T) {
	RunConfig(Config{Ranks: 2, Stats: true, TraceDepth: 256}, func(rk *Rank) {
		host := MustNewArray[int32](rk, 16)
		hObj := NewDistObject(rk, host)
		rk.Barrier()
		if rk.Me() == 0 {
			peer := FetchDist[GPtr[int32]](rk, hObj.ID(), 1).Wait()
			RPut(rk, make([]int32, 16), peer).Wait()
			s := rk.Stats()
			var putTL []obs.Event
			for _, id := range s.TracedOps() {
				tl := s.Timeline(id)
				if len(tl) > 0 && tl[0].Kind == obs.KindPut {
					putTL = tl
				}
			}
			if putTL == nil {
				t.Fatalf("no traced put op in %d traced ops", len(s.TracedOps()))
			}
			if putTL[0].Stage != obs.StageInject {
				t.Errorf("timeline starts with %v, want inject", putTL[0].Stage)
			}
			if last := putTL[len(putTL)-1]; last.Stage != obs.StageDelivered {
				t.Errorf("timeline ends with %v, want delivered", last.Stage)
			}
			landed := false
			for i, ev := range putTL {
				if i > 0 && ev.T < putTL[i-1].T {
					t.Errorf("timeline not monotone at event %d", i)
				}
				if ev.Stage == obs.StageLanding && ev.At == 1 {
					landed = true
				}
			}
			if !landed {
				t.Error("no landing event at the destination rank")
			}
		}
		rk.Barrier()
	})
}

// TestObsEnvConfig checks the UPCXX_STATS / UPCXX_TRACE environment
// knobs reach a world built without explicit Config fields.
func TestObsEnvConfig(t *testing.T) {
	t.Setenv("UPCXX_STATS", "on")
	t.Setenv("UPCXX_TRACE", "1")
	RunConfig(Config{Ranks: 1}, func(rk *Rank) {
		if !rk.StatsEnabled() {
			t.Fatal("UPCXX_STATS=on ignored")
		}
		dst := MustNewArray[int32](rk, 4)
		RPut(rk, make([]int32, 4), dst).Wait()
		s := rk.Stats()
		if s.Ops[obs.KindPut] != 1 {
			t.Errorf("Ops[put] = %d, want 1", s.Ops[obs.KindPut])
		}
		if len(s.TracedOps()) == 0 {
			t.Error("UPCXX_TRACE=1 armed no tracing")
		}
	})
}

// TestObsDisabledZero checks the disabled runtime reports nothing and
// the introspection surfaces stay safe no-ops.
func TestObsDisabledZero(t *testing.T) {
	RunConfig(Config{Ranks: 2}, func(rk *Rank) {
		if rk.StatsEnabled() {
			t.Fatal("stats enabled without Config.Stats")
		}
		rk.ArmTrace(true) // no-op, must not panic
		dst := MustNewArray[int32](rk, 4)
		RPut(rk, make([]int32, 4), dst).Wait()
		s := rk.Stats()
		if s.Rank != rk.Me() || s.Ops[obs.KindPut] != 0 || len(s.Trace) != 0 {
			t.Errorf("disabled snapshot not empty: %+v", s)
		}
		if rk.World().StatsAll() != nil {
			t.Error("StatsAll != nil on a stats-disabled world")
		}
		rk.Barrier()
	})
}
