// Package dht implements the paper's first application motif (§IV-C): a
// distributed hash table whose insert operation composes RPC with
// one-sided RMA. Each rank owns a local map; a key's home rank is chosen
// by hash. Two variants are provided, exactly as the paper describes:
//
//   - RPCOnly: the value rides inside the insert RPC and the target stores
//     it in its local map — simple, one message, best for small values.
//   - LandingZone: the insert RPC carries only the key and size; the
//     target allocates a landing zone in its shared segment (make_lz) and
//     returns its global pointer, and the initiator then rputs the value
//     with zero-copy RMA — the paper's optimization for larger values.
//
// All operations are fully asynchronous and return futures; the
// latency-limited workload of Fig 4 blocks on each insert.
package dht

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"

	core "upcxx/internal/core"
)

// Mode selects the insert/find wire strategy.
type Mode int

const (
	// RPCOnly ships values inside RPCs.
	RPCOnly Mode = iota
	// LandingZone ships values with RMA into RPC-allocated landing zones.
	// The zone is published when it is allocated, before the data lands —
	// the paper's original recipe, which leaves a window where Find
	// returns a zone whose bytes are still in flight.
	LandingZone
	// SignalingPut is LandingZone with remote completion: the zone is
	// allocated by RPC but *published* by a remote_cx::as_rpc notification
	// that piggybacks on the value's rput, firing at the home rank only
	// after the bytes are visible there. Publication is race-free and the
	// follow-up publish round trip the put+RPC idiom would need is gone —
	// the notification costs no extra wire message.
	SignalingPut
)

func (m Mode) String() string {
	switch m {
	case RPCOnly:
		return "rpc-only"
	case LandingZone:
		return "landing-zone"
	case SignalingPut:
		return "signaling-put"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// lz is a landing zone: a global pointer to value bytes plus their length
// (the paper's lz_t).
type lz struct {
	Ptr core.GPtr[uint8]
	Len int64
}

// DHT is one rank's handle on the distributed hash table. Construction is
// collective (every rank must call New in matching order).
type DHT struct {
	rk   *core.Rank
	mode Mode
	id   core.DistID

	localVal map[uint64][]byte // RPCOnly storage
	localLZ  map[uint64]lz     // LandingZone storage
}

// New collectively creates a distributed hash table.
func New(rk *core.Rank, mode Mode) *DHT {
	d := &DHT{
		rk:       rk,
		mode:     mode,
		localVal: make(map[uint64][]byte),
		localLZ:  make(map[uint64]lz),
	}
	obj := core.NewDistObject(rk, d)
	d.id = obj.ID()
	return d
}

// Target returns the home rank of a key (the paper's get_target hash).
func (d *DHT) Target(key uint64) core.Intrank {
	// Fibonacci hashing for a well-spread assignment of sequential keys.
	h := key * 0x9e3779b97f4a7c15
	return core.Intrank(h % uint64(d.rk.N()))
}

// lookup binds the DistID to the target rank's DHT instance inside RPC
// bodies.
func lookup(trk *core.Rank, id core.DistID) *DHT {
	obj, ok := core.LookupDist[*DHT](trk, id)
	if !ok {
		panic(fmt.Sprintf("dht: rank %d has no table with id %d", trk.Me(), id))
	}
	return *obj.Value()
}

type insertArgs struct {
	ID  core.DistID
	Key uint64
	Val core.View[uint8]
}

type lzArgs struct {
	ID  core.DistID
	Key uint64
	Len int64
}

// Insert stores (key, val) in the table, returning a future that readies
// when the value is globally visible at the home rank. val is captured at
// call time.
func (d *DHT) Insert(key uint64, val []byte) core.Future[core.Unit] {
	target := d.Target(key)
	switch d.mode {
	case RPCOnly:
		// One RPC carrying the value; the view serializes it into the
		// message and the body copies it into the local map. The value
		// future is the reply landing — the insert is globally visible.
		f, _ := core.RPCWith(d.rk, target, storeRPC,
			insertArgs{ID: d.id, Key: key, Val: core.MakeView(val)})
		return f
	case LandingZone:
		// RPC of make_lz to obtain the landing zone, then a zero-copy
		// rput chained with .then — the paper's Fig in §IV-C verbatim.
		valCopy := val
		f := core.RPC(d.rk, target, makeLZRPC,
			lzArgs{ID: d.id, Key: key, Len: int64(len(val))})
		return core.ThenFut(f, func(dest core.GPtr[uint8]) core.Future[core.Unit] {
			return core.RPut(d.rk, valCopy, dest)
		})
	case SignalingPut:
		// RPC allocates the zone without publishing it; the rput carries a
		// remote-completion RPC that publishes (key → zone) at the home
		// rank once the bytes are visible — a signaling put in place of a
		// publish round trip.
		valCopy := val
		f := core.RPC(d.rk, target, allocLZRPC,
			lzArgs{ID: d.id, Key: key, Len: int64(len(val))})
		return core.ThenFut(f, func(dest core.GPtr[uint8]) core.Future[core.Unit] {
			pub := publishArgs{ID: d.id, Key: key, Zone: lz{Ptr: dest, Len: int64(len(valCopy))}}
			return core.RPutWith(d.rk, valCopy, dest,
				core.OpCxAsFuture(),
				core.RemoteCxAsRPC(publishLZ, pub)).Op
		})
	default:
		panic("dht: unknown mode")
	}
}

// makeLZRPC is the LandingZone insert body: allocate and publish the
// landing zone, returning its global pointer for the follow-up rput.
func makeLZRPC(trk *core.Rank, a lzArgs) core.GPtr[uint8] {
	return lookup(trk, a.ID).makeLZ(trk, a.Key, int(a.Len))
}

// allocLZRPC is the SignalingPut insert body: allocate without
// publishing (publishLZ publishes at remote completion).
func allocLZRPC(trk *core.Rank, a lzArgs) core.GPtr[uint8] {
	return lookup(trk, a.ID).allocLZ(trk, int(a.Len))
}

// Every RPC body crossing rank boundaries is registered by name so the
// table works identically over the in-process conduit and the real
// multi-process backends (tcp, shm).
func init() {
	core.RegisterRPC(storeRPC)
	core.RegisterRPC(makeLZRPC)
	core.RegisterRPC(allocLZRPC)
	core.RegisterRPC(findValRPC)
	core.RegisterRPC(findLZRPC)
	core.RegisterRPC(eraseRPC)
	core.RegisterRPC(mutateNamedRPC)
	core.RegisterRPCFF(publishLZ)
}

// storeRPC is the RPCOnly insert body: copy the viewed value into the
// home rank's local map. A named function so every insert variant ships
// the same code reference.
func storeRPC(trk *core.Rank, a insertArgs) core.Unit {
	t := lookup(trk, a.ID)
	t.localVal[a.Key] = a.Val.CopyOut()
	return core.Unit{}
}

// InsertAsync pipelines an RPCOnly insert using the unified completion
// vocabulary (the DHT hot-loop idiom): the returned future is the
// *source* completion — it readies as soon as the conduit has captured
// the argument serialization, at which point val's backing buffer may be
// reused for the next insert — while the insert's operation completion
// (the reply landing: value globally visible at the home rank) is
// registered on done. Issue many inserts against one promise and wait its
// single future, exactly like the paper's flood-bandwidth puts, with no
// per-insert round-trip wait in the loop.
func (d *DHT) InsertAsync(key uint64, val []byte, done *core.Promise[core.Unit]) core.Future[core.Unit] {
	if d.mode != RPCOnly {
		panic("dht: InsertAsync requires RPCOnly mode (values travel inside the RPC)")
	}
	_, fs := core.RPCWith(d.rk, d.Target(key), storeRPC,
		insertArgs{ID: d.id, Key: key, Val: core.MakeView(val)},
		core.SourceCxAsFuture(),
		core.OpCxAsPromise(done))
	return fs.Source
}

// BatchInserter coalesces RPCOnly inserts per home rank: each insert
// accumulates into the target rank's batch with zero conduit
// interaction, and FlushAll ships every non-empty batch as one wire
// message (core.Batch). The per-insert argument views borrow the caller's
// value buffers — a buffer may be reused only after the FlushAll that
// ships its insert — and every flushed insert's operation completion
// (value globally visible at its home rank) accumulates on the promise
// handed to FlushAll, the flood idiom of InsertAsync amortized over
// batch-sized messages.
type BatchInserter struct {
	d       *DHT
	batches []*core.Batch // indexed by home rank; nil until first use
	pending int
}

// NewBatchInserter returns an empty inserter for the table. RPCOnly mode
// only (values travel inside the batched RPCs).
func (d *DHT) NewBatchInserter() *BatchInserter {
	if d.mode != RPCOnly {
		panic("dht: BatchInserter requires RPCOnly mode (values travel inside the RPC)")
	}
	return &BatchInserter{d: d, batches: make([]*core.Batch, d.rk.N())}
}

// Insert appends (key, val) to the home rank's batch. val is borrowed,
// not copied: it must stay unchanged until the next FlushAll.
func (bi *BatchInserter) Insert(key uint64, val []byte) {
	t := bi.d.Target(key)
	b := bi.batches[t]
	if b == nil {
		b = core.NewBatch(bi.d.rk, t)
		bi.batches[t] = b
	}
	core.BatchRPC(b, storeRPC,
		insertArgs{ID: bi.d.id, Key: key, Val: core.MakeView(val)})
	bi.pending++
}

// Pending returns the number of accumulated, un-flushed inserts.
func (bi *BatchInserter) Pending() int { return bi.pending }

// FlushAll ships every non-empty batch, registering each batch's
// operation completion (all of its replies landed) on done. After it
// returns, every borrowed value buffer has been captured by the conduit
// and may be reused.
func (bi *BatchInserter) FlushAll(done *core.Promise[core.Unit]) {
	for _, b := range bi.batches {
		if b != nil && b.Len() > 0 {
			b.Flush(core.OpCxAsPromise(done))
		}
	}
	bi.pending = 0
}

type publishArgs struct {
	ID   core.DistID
	Key  uint64
	Zone lz
}

// publishLZ runs at the home rank as the remote completion of a
// signaling-put insert: the zone's bytes are already visible, so linking
// it into the table is race-free. An overwritten key's previous zone is
// reclaimed here, where the map lives.
func publishLZ(trk *core.Rank, a publishArgs) {
	t := lookup(trk, a.ID)
	if old, ok := t.localLZ[a.Key]; ok {
		if err := core.Delete(trk, old.Ptr); err != nil {
			panic(err)
		}
	}
	t.localLZ[a.Key] = a.Zone
}

// makeLZ allocates an uninitialized landing zone for a value of the given
// size, records it in the local map, and returns a global pointer suitable
// for RMA (the paper's make_lz).
func (d *DHT) makeLZ(trk *core.Rank, key uint64, size int) core.GPtr[uint8] {
	if old, ok := d.localLZ[key]; ok {
		// Overwrite: reclaim the previous zone.
		if err := core.Delete(trk, old.Ptr); err != nil {
			panic(err)
		}
	}
	dest := core.MustNewArray[uint8](trk, size)
	d.localLZ[key] = lz{Ptr: dest, Len: int64(size)}
	return dest
}

// allocLZ allocates a landing zone without publishing it; the
// signaling-put insert publishes at remote completion (publishLZ).
func (d *DHT) allocLZ(trk *core.Rank, size int) core.GPtr[uint8] {
	return core.MustNewArray[uint8](trk, size)
}

type findArgs struct {
	ID  core.DistID
	Key uint64
}

// Find retrieves the value for key, or nil if absent. In LandingZone mode
// the RPC returns the zone's global pointer and the value travels by
// one-sided rget.
func (d *DHT) Find(key uint64) core.Future[[]byte] {
	target := d.Target(key)
	switch d.mode {
	case RPCOnly:
		return core.RPC(d.rk, target, findValRPC, findArgs{ID: d.id, Key: key})
	case LandingZone, SignalingPut:
		f := core.RPC(d.rk, target, findLZRPC, findArgs{ID: d.id, Key: key})
		return core.ThenFut(f, func(z lz) core.Future[[]byte] {
			if z.Ptr.IsNil() {
				return core.ReadyFuture[[]byte](d.rk, nil)
			}
			buf := make([]byte, z.Len)
			return core.Then(core.RGet(d.rk, z.Ptr, buf), func(core.Unit) []byte {
				return buf
			})
		})
	default:
		panic("dht: unknown mode")
	}
}

// findValRPC is the RPCOnly find body.
func findValRPC(trk *core.Rank, a findArgs) []byte {
	return lookup(trk, a.ID).localVal[a.Key]
}

// findLZRPC is the landing-zone find body: the value itself travels by
// one-sided rget against the returned zone.
func findLZRPC(trk *core.Rank, a findArgs) lz {
	z, ok := lookup(trk, a.ID).localLZ[a.Key]
	if !ok {
		return lz{Ptr: core.NilGPtr[uint8]()}
	}
	return z
}

// Mutator registry: Mutate's transformation runs at the key's home rank,
// so over a real (multi-process) conduit it must travel by name like any
// RPC body. Register package-level mutators at init; in-process worlds
// also accept unregistered closures.
var mutReg = struct {
	sync.RWMutex
	byName map[string]func(old, arg []byte) []byte
	byPtr  map[uintptr]string
}{
	byName: make(map[string]func(old, arg []byte) []byte),
	byPtr:  make(map[uintptr]string),
}

// RegisterMutator registers fn for cross-process Mutate dispatch and
// returns its wire name. Call from init() with a package-level function.
func RegisterMutator(fn func(old, arg []byte) []byte) string {
	ptr := reflect.ValueOf(fn).Pointer()
	name := runtime.FuncForPC(ptr).Name()
	mutReg.Lock()
	mutReg.byName[name] = fn
	mutReg.byPtr[ptr] = name
	mutReg.Unlock()
	return name
}

type mutateArgs struct {
	ID  core.DistID
	Key uint64
	Fn  string // registered mutator name
	Arg []byte
}

// mutateNamedRPC is the registered Mutate body: resolve the mutator by
// name and apply it to the home rank's stored value.
func mutateNamedRPC(trk *core.Rank, a mutateArgs) core.Unit {
	mutReg.RLock()
	fn := mutReg.byName[a.Fn]
	mutReg.RUnlock()
	if fn == nil {
		panic(fmt.Sprintf("dht: rank %d has no mutator %q — every rank must RegisterMutator it at init time", trk.Me(), a.Fn))
	}
	t := lookup(trk, a.ID)
	t.localVal[a.Key] = fn(t.localVal[a.Key], a.Arg)
	return core.Unit{}
}

// Mutate applies fn(old, arg) to the value stored at key on its home
// rank, storing the result — the paper's graph-vertex neighbour update,
// which would take a lock/rget/modify/rput/unlock cycle without RPC. fn
// runs on the home rank; it must be a pure transformation of the
// supplied bytes. Over a real conduit fn must be registered with
// RegisterMutator; in-process any function (or closure) works.
func (d *DHT) Mutate(key uint64, fn func(old, arg []byte) []byte, arg []byte) core.Future[core.Unit] {
	if d.mode != RPCOnly {
		panic("dht: Mutate requires RPCOnly mode (values live in the local map)")
	}
	target := d.Target(key)
	mutReg.RLock()
	name := mutReg.byPtr[reflect.ValueOf(fn).Pointer()]
	mutReg.RUnlock()
	if name != "" {
		return core.RPC(d.rk, target, mutateNamedRPC,
			mutateArgs{ID: d.id, Key: key, Fn: name, Arg: arg})
	}
	if d.rk.World().Dist() {
		panic("dht: Mutate over a real conduit requires a mutator registered with dht.RegisterMutator")
	}
	return core.RPC(d.rk, target, func(trk *core.Rank, a findArgs) core.Unit {
		t := lookup(trk, a.ID)
		t.localVal[a.Key] = fn(t.localVal[a.Key], arg)
		return core.Unit{}
	}, findArgs{ID: d.id, Key: key})
}

// Erase removes key from the table, returning whether it was present.
// In LandingZone mode the zone's segment memory is reclaimed at the home
// rank.
func (d *DHT) Erase(key uint64) core.Future[bool] {
	return core.RPC(d.rk, d.Target(key), eraseRPC, findArgs{ID: d.id, Key: key})
}

// eraseRPC is the erase body, shared by every mode.
func eraseRPC(trk *core.Rank, a findArgs) bool {
	t := lookup(trk, a.ID)
	switch t.mode {
	case RPCOnly:
		_, ok := t.localVal[a.Key]
		delete(t.localVal, a.Key)
		return ok
	case LandingZone, SignalingPut:
		z, ok := t.localLZ[a.Key]
		if ok {
			if err := core.Delete(trk, z.Ptr); err != nil {
				panic(err)
			}
			delete(t.localLZ, a.Key)
		}
		return ok
	default:
		panic("dht: unknown mode")
	}
}

// LocalLen returns the number of entries homed on this rank.
func (d *DHT) LocalLen() int {
	if d.mode == RPCOnly {
		return len(d.localVal)
	}
	return len(d.localLZ)
}

// Mode returns the table's wire strategy.
func (d *DHT) Mode() Mode { return d.mode }
