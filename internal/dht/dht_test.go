package dht

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	core "upcxx/internal/core"
)

func testBothModes(t *testing.T, ranks int, fn func(t *testing.T, rk *core.Rank, d *DHT)) {
	for _, mode := range []Mode{RPCOnly, LandingZone, SignalingPut} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			core.Run(ranks, func(rk *core.Rank) {
				d := New(rk, mode)
				rk.Barrier()
				fn(t, rk, d)
				rk.Barrier()
			})
		})
	}
}

func TestInsertFind(t *testing.T) {
	testBothModes(t, 4, func(t *testing.T, rk *core.Rank, d *DHT) {
		key := uint64(rk.Me())*1000 + 7
		val := []byte(fmt.Sprintf("value-from-%d", rk.Me()))
		d.Insert(key, val).Wait()
		rk.Barrier()
		// Every rank looks up every other rank's key.
		for r := core.Intrank(0); r < rk.N(); r++ {
			k := uint64(r)*1000 + 7
			got := d.Find(k).Wait()
			want := fmt.Sprintf("value-from-%d", r)
			if string(got) != want {
				t.Errorf("rank %d find(%d) = %q, want %q", rk.Me(), k, got, want)
			}
		}
	})
}

func TestFindMissing(t *testing.T) {
	testBothModes(t, 2, func(t *testing.T, rk *core.Rank, d *DHT) {
		if got := d.Find(0xdeadbeef).Wait(); got != nil {
			t.Errorf("find(missing) = %v", got)
		}
	})
}

func TestOverwrite(t *testing.T) {
	testBothModes(t, 3, func(t *testing.T, rk *core.Rank, d *DHT) {
		if rk.Me() == 0 {
			d.Insert(42, []byte("first")).Wait()
			d.Insert(42, []byte("second-longer")).Wait()
			if got := d.Find(42).Wait(); string(got) != "second-longer" {
				t.Errorf("after overwrite: %q", got)
			}
		}
	})
}

func TestInsertAsyncPipeline(t *testing.T) {
	// Non-blocking inserts tracked by a conjoined future.
	testBothModes(t, 4, func(t *testing.T, rk *core.Rank, d *DHT) {
		conj := core.EmptyFuture(rk)
		base := uint64(rk.Me()) << 32
		for i := uint64(0); i < 50; i++ {
			conj = core.WhenAll(rk, conj, d.Insert(base+i, []byte{byte(i)}))
		}
		conj.Wait()
		rk.Barrier()
		for i := uint64(0); i < 50; i++ {
			got := d.Find(base + i).Wait()
			if len(got) != 1 || got[0] != byte(i) {
				t.Errorf("find(%d) = %v", base+i, got)
			}
		}
	})
}

func TestInsertAsyncSourceReuse(t *testing.T) {
	// The completion-vocabulary hot loop: ONE value buffer reused across
	// every insert — source completion licenses the reuse — with all
	// operation completions on a single promise. Each stored value must
	// be the bytes the buffer held at its insert, not a later scribble.
	core.Run(4, func(rk *core.Rank) {
		d := New(rk, RPCOnly)
		rk.Barrier()
		const n = 64
		buf := make([]byte, 8)
		base := uint64(rk.Me()) << 32
		done := core.NewPromise[core.Unit](rk)
		for i := uint64(0); i < n; i++ {
			for j := range buf {
				buf[j] = byte(i + uint64(j))
			}
			d.InsertAsync(base+i, buf, done).Wait() // source-cx: buffer reusable
		}
		done.Finalize().Wait() // op-cx of every insert: all globally visible
		rk.Barrier()
		for i := uint64(0); i < n; i++ {
			got := d.Find(base + i).Wait()
			if len(got) != 8 {
				t.Fatalf("find(%d): %d bytes", base+i, len(got))
			}
			for j, b := range got {
				if b != byte(i+uint64(j)) {
					t.Errorf("find(%d)[%d] = %d, want %d (buffer reuse corrupted an in-flight insert)",
						base+i, j, b, byte(i+uint64(j)))
				}
			}
		}
		rk.Barrier()
	})
}

func TestTargetDistribution(t *testing.T) {
	core.Run(8, func(rk *core.Rank) {
		if rk.Me() != 0 {
			return
		}
		d := &DHT{rk: rk}
		counts := make([]int, 8)
		for k := uint64(0); k < 8000; k++ {
			counts[d.Target(k)]++
		}
		for r, c := range counts {
			if c < 500 || c > 1500 {
				t.Errorf("rank %d owns %d of 8000 keys (poor spread)", r, c)
			}
		}
	})
}

func TestMutateVertex(t *testing.T) {
	// The paper's graph example: append neighbours to a vertex value.
	core.Run(4, func(rk *core.Rank) {
		d := New(rk, RPCOnly)
		rk.Barrier()
		const vertex = uint64(99)
		// All ranks append their id; home-rank execution serializes them.
		d.Mutate(vertex, func(old, arg []byte) []byte {
			return append(old, arg...)
		}, []byte{byte(rk.Me())}).Wait()
		rk.Barrier()
		got := d.Find(vertex).Wait()
		if len(got) != 4 {
			t.Errorf("rank %d: %d neighbours, want 4", rk.Me(), len(got))
		}
		seen := map[byte]bool{}
		for _, b := range got {
			seen[b] = true
		}
		if len(seen) != 4 {
			t.Errorf("duplicate neighbours: %v", got)
		}
		rk.Barrier()
	})
}

func TestLocalLenAccounting(t *testing.T) {
	testBothModes(t, 4, func(t *testing.T, rk *core.Rank, d *DHT) {
		base := uint64(rk.Me()) * 100
		for i := uint64(0); i < 25; i++ {
			d.Insert(base+i, []byte("x")).Wait()
		}
		rk.Barrier()
		total := core.AllReduce(rk.WorldTeam(), int64(d.LocalLen()),
			func(a, b int64) int64 { return a + b }).Wait()
		if total != 100 {
			t.Errorf("total entries = %d, want 100", total)
		}
	})
}

// Property: the DHT agrees with a plain map under random workloads.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const ops = 60
		type op struct {
			key uint64
			val []byte
		}
		plan := make([]op, ops)
		model := map[uint64][]byte{}
		for i := range plan {
			key := uint64(rng.Intn(20)) // few keys: exercise overwrites
			val := make([]byte, 1+rng.Intn(64))
			rng.Read(val)
			plan[i] = op{key, val}
			model[key] = val
		}
		ok := true
		for _, mode := range []Mode{RPCOnly, LandingZone} {
			core.Run(3, func(rk *core.Rank) {
				d := New(rk, mode)
				rk.Barrier()
				if rk.Me() == 0 {
					for _, o := range plan {
						d.Insert(o.key, o.val).Wait()
					}
					for k, want := range model {
						if got := d.Find(k).Wait(); !bytes.Equal(got, want) {
							ok = false
						}
					}
				}
				rk.Barrier()
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestBenchHarnessSmoke(t *testing.T) {
	core.Run(2, func(rk *core.Rank) {
		d := New(rk, LandingZone)
		rk.Barrier()
		res := RunInsertBench(rk, d, BenchConfig{ElemSize: 64, VolumePerRank: 64 * 20, Seed: 1})
		if res.Inserts != 20 {
			t.Errorf("inserts = %d", res.Inserts)
		}
		if res.InsertsPerSec() <= 0 {
			t.Errorf("rate = %v", res.InsertsPerSec())
		}
		rk.Barrier()
	})
	serial := RunSerialBench(BenchConfig{ElemSize: 64, VolumePerRank: 64 * 20, Seed: 1})
	if serial.Inserts != 20 {
		t.Errorf("serial inserts = %d", serial.Inserts)
	}
}

func TestErase(t *testing.T) {
	testBothModes(t, 3, func(t *testing.T, rk *core.Rank, d *DHT) {
		if rk.Me() == 0 {
			d.Insert(55, []byte("gone-soon")).Wait()
			if !d.Erase(55).Wait() {
				t.Error("erase of present key returned false")
			}
			if got := d.Find(55).Wait(); got != nil {
				t.Errorf("find after erase = %v", got)
			}
			if d.Erase(55).Wait() {
				t.Error("erase of absent key returned true")
			}
		}
	})
}

func TestEraseReclaimsSegmentMemory(t *testing.T) {
	// In LandingZone mode, insert/erase cycles must not leak segment
	// memory: a workload far larger than the segment succeeds only if
	// zones are reclaimed.
	core.RunConfig(core.Config{Ranks: 2, SegmentSize: 1 << 20}, func(rk *core.Rank) {
		d := New(rk, LandingZone)
		rk.Barrier()
		if rk.Me() == 0 {
			val := make([]byte, 64<<10)
			for i := 0; i < 100; i++ { // 6.4 MB total through a 1 MB segment
				key := uint64(i)
				d.Insert(key, val).Wait()
				if !d.Erase(key).Wait() {
					t.Fatalf("erase %d failed", i)
				}
			}
		}
		rk.Barrier()
	})
}

func TestBatchInserter(t *testing.T) {
	// Coalesced inserts: every rank floods batched inserts through the
	// per-home-rank batches, rotating buffers batch by batch; the shared
	// promise's future is all operation completions. Every stored value
	// must be the bytes its buffer held at insert time.
	core.Run(4, func(rk *core.Rank) {
		d := New(rk, RPCOnly)
		rk.Barrier()
		const n, batch = 96, 16
		bufs := make([][]byte, batch)
		for i := range bufs {
			bufs[i] = make([]byte, 128)
		}
		base := uint64(rk.Me()) << 32
		done := core.NewPromise[core.Unit](rk)
		bi := d.NewBatchInserter()
		for i := uint64(0); i < n; i++ {
			buf := bufs[i%batch]
			for j := range buf {
				buf[j] = byte(i + uint64(j))
			}
			bi.Insert(base+i, buf)
			if bi.Pending() >= batch {
				bi.FlushAll(done) // captures every borrowed buffer
			}
		}
		bi.FlushAll(done)
		done.Finalize().Wait() // op-cx of every insert: all globally visible
		rk.Barrier()
		for i := uint64(0); i < n; i++ {
			got := d.Find(base + i).Wait()
			if len(got) != 128 {
				t.Fatalf("find(%d): %d bytes", base+i, len(got))
			}
			for j, b := range got {
				if b != byte(i+uint64(j)) {
					t.Errorf("find(%d)[%d] = %d, want %d (batched insert shipped stale or scribbled bytes)",
						base+i, j, b, byte(i+uint64(j)))
				}
			}
		}
		rk.Barrier()
	})
}
