package dht

import (
	"math/rand"
	"time"

	core "upcxx/internal/core"
)

// The Fig 4 workload: every rank inserts randomly-keyed values of a fixed
// element size, blocking after each insertion (the benchmark is
// latency-limited, as the paper stresses). For each element size the same
// total volume is inserted, so halving the element size doubles the
// iteration count.

// BenchConfig describes one weak-scaling data point.
type BenchConfig struct {
	ElemSize      int // value bytes per insert
	VolumePerRank int // total value bytes inserted by each rank
	Seed          int64
}

// Iterations returns the per-rank insert count for the configured volume.
func (c BenchConfig) Iterations() int {
	n := c.VolumePerRank / c.ElemSize
	if n < 1 {
		n = 1
	}
	return n
}

// BenchResult reports one rank's measurement.
type BenchResult struct {
	Inserts int
	Elapsed time.Duration
}

// InsertsPerSec returns this rank's blocking-insert rate.
func (r BenchResult) InsertsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Inserts) / r.Elapsed.Seconds()
}

// RunInsertBench performs the paper's insert loop on one rank: random
// 8-byte keys, fixed-size values, one blocking insert at a time. The
// caller is responsible for barriers around it.
func RunInsertBench(rk *core.Rank, d *DHT, cfg BenchConfig) BenchResult {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(rk.Me())*1_000_003))
	val := make([]byte, cfg.ElemSize)
	rng.Read(val)
	iters := cfg.Iterations()
	start := time.Now()
	for i := 0; i < iters; i++ {
		key := rng.Uint64()
		d.Insert(key, val).Wait()
	}
	return BenchResult{Inserts: iters, Elapsed: time.Since(start)}
}

// RunInsertPipelinedBench is the completion-vocabulary variant of the
// insert loop: one value buffer is reused across every iteration — the
// loop waits only for *source* completion (the RPC's argument
// serialization captured by the conduit) before refilling it — while all
// operation completions accumulate on a single promise whose one future
// is waited at the end, like the paper's flood-bandwidth idiom. RPCOnly
// mode only.
func RunInsertPipelinedBench(rk *core.Rank, d *DHT, cfg BenchConfig) BenchResult {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(rk.Me())*1_000_003))
	val := make([]byte, cfg.ElemSize)
	iters := cfg.Iterations()
	done := core.NewPromise[core.Unit](rk)
	start := time.Now()
	for i := 0; i < iters; i++ {
		rng.Read(val) // reuse the same buffer every iteration
		key := rng.Uint64()
		src := d.InsertAsync(key, val, done)
		src.Wait() // buffer reusable; the op rides the shared promise
		if i%16 == 0 {
			rk.Progress()
		}
	}
	done.Finalize().Wait()
	return BenchResult{Inserts: iters, Elapsed: time.Since(start)}
}

// RunInsertBatchBench is the batched-message variant of the pipelined
// loop: inserts accumulate into per-home-rank batches and every
// batchSize inserts ship as (at most N) coalesced wire messages, with
// all operation completions on one promise waited at the end. batchSize
// value buffers rotate so each stays unchanged from its insert until the
// FlushAll that captures it. batchSize 1 degenerates to one message per
// insert — the per-AM floor the EXPERIMENTS sweep compares against.
// RPCOnly mode only.
func RunInsertBatchBench(rk *core.Rank, d *DHT, cfg BenchConfig, batchSize int) BenchResult {
	if batchSize < 1 {
		batchSize = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(rk.Me())*1_000_003))
	bufs := make([][]byte, batchSize)
	for i := range bufs {
		bufs[i] = make([]byte, cfg.ElemSize)
	}
	iters := cfg.Iterations()
	bi := d.NewBatchInserter()
	done := core.NewPromise[core.Unit](rk)
	start := time.Now()
	for i := 0; i < iters; i++ {
		val := bufs[i%batchSize]
		rng.Read(val)
		bi.Insert(rng.Uint64(), val)
		if bi.Pending() >= batchSize {
			bi.FlushAll(done)
			rk.Progress()
		}
	}
	bi.FlushAll(done)
	done.Finalize().Wait()
	return BenchResult{Inserts: iters, Elapsed: time.Since(start)}
}

// RunSerialBench is the paper's one-process baseline: the same loop with
// all UPC++ calls omitted — a plain map insert, "the best we can achieve
// with the underlying standard library".
func RunSerialBench(cfg BenchConfig) BenchResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	val := make([]byte, cfg.ElemSize)
	rng.Read(val)
	local := make(map[uint64][]byte)
	iters := cfg.Iterations()
	start := time.Now()
	for i := 0; i < iters; i++ {
		key := rng.Uint64()
		stored := make([]byte, len(val))
		copy(stored, val)
		local[key] = stored
	}
	_ = local
	return BenchResult{Inserts: iters, Elapsed: time.Since(start)}
}
