package dht

import (
	"fmt"
	"sync"
	"testing"

	core "upcxx/internal/core"
)

// The paper's DHT motif under the persona/progress-thread model: each
// rank runs several user goroutines issuing inserts and finds
// concurrently while a dedicated progress thread keeps the rank
// attentive. Every goroutine's completions are delivered to its own
// persona; run with -race to validate the cross-thread delivery paths.
func testDHTConcurrentUsers(t *testing.T, mode Mode) {
	const (
		ranks = 2
		users = 4
		keys  = 40
	)
	core.RunConfig(core.Config{Ranks: ranks, ProgressThread: true, SegmentSize: 16 << 20}, func(rk *core.Rank) {
		d := New(rk, mode)
		rk.Barrier()

		var wg sync.WaitGroup
		for u := 0; u < users; u++ {
			u := u
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer core.DetachDefaultPersonas()
				base := uint64(rk.Me())*1_000_000 + uint64(u)*10_000
				for i := 0; i < keys; i++ {
					key := base + uint64(i)
					val := []byte(fmt.Sprintf("rank%d-user%d-key%d", rk.Me(), u, i))
					d.Insert(key, val).Wait()
					got := d.Find(key).Wait()
					if string(got) != string(val) {
						t.Errorf("find(%d) = %q want %q", key, got, val)
					}
				}
			}()
		}
		wg.Wait()
		rk.Barrier()

		// Cross-check: every rank reads every other rank's keys.
		for r := core.Intrank(0); r < rk.N(); r++ {
			for u := 0; u < users; u++ {
				key := uint64(r)*1_000_000 + uint64(u)*10_000
				want := fmt.Sprintf("rank%d-user%d-key0", r, u)
				if got := d.Find(key).Wait(); string(got) != want {
					t.Errorf("cross find(%d) = %q want %q", key, got, want)
				}
			}
		}
		rk.Barrier()

		// All entries landed somewhere: the job-wide count matches.
		total := core.AllReduce(rk.WorldTeam(), int64(d.LocalLen()),
			func(a, b int64) int64 { return a + b }).Wait()
		if total != int64(ranks*users*keys) {
			t.Errorf("job-wide entries = %d want %d", total, ranks*users*keys)
		}
		rk.Barrier()
	})
}

func TestDHTConcurrentUsersRPCOnly(t *testing.T)     { testDHTConcurrentUsers(t, RPCOnly) }
func TestDHTConcurrentUsersLandingZone(t *testing.T) { testDHTConcurrentUsers(t, LandingZone) }
func TestDHTConcurrentUsersSignalingPut(t *testing.T) {
	testDHTConcurrentUsers(t, SignalingPut)
}
