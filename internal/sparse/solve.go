package sparse

import (
	"fmt"
	"math"

	"upcxx/internal/matgen"
)

// Triangular solves completing the solver: with the Cholesky factor
// A = L*L', solve A x = b by forward substitution (L y = b) and backward
// substitution (L' x = y). The distributed factor is gathered to a
// sparse column representation first — the solve itself is serial, which
// is how sparse direct solvers are typically validated (the paper
// benchmarks factorization only; the solve makes the pipeline usable and
// testable end to end).

// SparseL is a lower-triangular factor in column form.
type SparseL struct {
	N    int
	Cols [][]int32   // row indices per column, ascending, diagonal first
	Vals [][]float64 // matching values
}

// AssembleL builds a SparseL from the per-rank factor triples produced by
// CholV1/CholV01.
func AssembleL(n int, results []CholResult) (*SparseL, error) {
	l := &SparseL{N: n, Cols: make([][]int32, n), Vals: make([][]float64, n)}
	for _, res := range results {
		for _, tr := range res.L {
			i, j, v := int32(tr[0]), int(tr[1]), tr[2]
			l.Cols[j] = append(l.Cols[j], i)
			l.Vals[j] = append(l.Vals[j], v)
		}
	}
	for j := 0; j < n; j++ {
		// Insertion sort by row; panels arrive nearly sorted.
		rows, vals := l.Cols[j], l.Vals[j]
		for i := 1; i < len(rows); i++ {
			for k := i; k > 0 && rows[k] < rows[k-1]; k-- {
				rows[k], rows[k-1] = rows[k-1], rows[k]
				vals[k], vals[k-1] = vals[k-1], vals[k]
			}
		}
		if len(rows) == 0 || int(rows[0]) != j {
			return nil, fmt.Errorf("sparse: column %d missing its diagonal", j)
		}
		if vals[0] <= 0 {
			return nil, fmt.Errorf("sparse: column %d has non-positive pivot %g", j, vals[0])
		}
	}
	return l, nil
}

// NNZ returns the factor's stored entry count.
func (l *SparseL) NNZ() int {
	total := 0
	for _, c := range l.Cols {
		total += len(c)
	}
	return total
}

// Solve computes x with A x = b given the factor (two triangular solves).
// b is not modified.
func (l *SparseL) Solve(b []float64) []float64 {
	if len(b) != l.N {
		panic(fmt.Sprintf("sparse: Solve rhs length %d != n %d", len(b), l.N))
	}
	// Forward: L y = b (column-oriented).
	y := append([]float64(nil), b...)
	for j := 0; j < l.N; j++ {
		y[j] /= l.Vals[j][0]
		yj := y[j]
		for k := 1; k < len(l.Cols[j]); k++ {
			y[l.Cols[j][k]] -= l.Vals[j][k] * yj
		}
	}
	// Backward: L' x = y (dot products against columns).
	x := y
	for j := l.N - 1; j >= 0; j-- {
		s := x[j]
		for k := 1; k < len(l.Cols[j]); k++ {
			s -= l.Vals[j][k] * x[l.Cols[j][k]]
		}
		x[j] = s / l.Vals[j][0]
	}
	return x
}

// Residual returns ||A x - b||_inf / ||b||_inf for a solution check.
func Residual(a *matgen.SymCSC, x, b []float64) float64 {
	r := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		rows, vals := a.Col(j)
		for k, ri := range rows {
			i := int(ri)
			r[i] += vals[k] * x[j]
			if i != j {
				r[j] += vals[k] * x[i]
			}
		}
	}
	num, den := 0.0, 0.0
	for i := range r {
		num = math.Max(num, math.Abs(r[i]-b[i]))
		den = math.Max(den, math.Abs(b[i]))
	}
	if den == 0 {
		return num
	}
	return num / den
}
