package sparse

import (
	"fmt"
	"math"
	"time"

	core "upcxx/internal/core"
	"upcxx/internal/matgen"
	"upcxx/internal/upcxx01"
)

// Mini-symPACK (paper §IV-D4, Fig 9): a distributed multifrontal Cholesky
// factorization of a sparse SPD matrix, implemented twice over the same
// numeric kernels — once against the UPC++ v1.0 API (RPC + futures +
// promises) and once against the predecessor v0.1 API (asyncs + events) —
// to reproduce the paper's finding that the redesigned runtime adds no
// measurable overhead.
//
// Fronts are mapped one-owner-per-front by proportional mapping (1D);
// each owner assembles its fronts from the original matrix, waits for its
// children's contribution blocks, factors the dense front, and ships its
// own contribution block to the parent's owner.

// CholPlan is the structural plan of one factorization, shared read-only.
type CholPlan struct {
	A   *matgen.SymCSC
	T   *FrontTree
	Map *Mapping
	P   int
}

// NewCholPlan builds the plan over P processes.
func NewCholPlan(a *matgen.SymCSC, t *FrontTree, p int) *CholPlan {
	return &CholPlan{A: a, T: t, Map: ProportionalMap(t, p), P: p}
}

// denseFront is the dense working storage of one frontal matrix
// (dim x dim row-major; only the lower triangle is meaningful).
type denseFront struct {
	id   int
	dim  int
	w    int
	data []float64
}

func newDenseFront(t *FrontTree, id int) *denseFront {
	f := &t.Fronts[id]
	dim := len(f.Rows)
	return &denseFront{id: id, dim: dim, w: f.Width, data: make([]float64, dim*dim)}
}

// assemble adds the original matrix's panel columns into the front.
func (df *denseFront) assemble(a *matgen.SymCSC, f *Front) {
	for c := 0; c < f.Width; c++ {
		gc := f.Start + c
		rows, vals := a.Col(gc)
		for k, r := range rows {
			li := LocalIndex(f.Rows, r)
			if li < 0 {
				panic(fmt.Sprintf("sparse: A entry (%d,%d) outside front %d", r, gc, f.ID))
			}
			df.data[li*df.dim+c] += vals[k]
		}
	}
}

// factor eliminates the panel columns (dense right-looking Cholesky on
// the lower triangle), leaving the contribution block in the trailing
// (dim-w) x (dim-w) corner.
func (df *denseFront) factor() error {
	n, w, a := df.dim, df.w, df.data
	for k := 0; k < w; k++ {
		d := a[k*n+k]
		if d <= 0 {
			return fmt.Errorf("sparse: front %d not positive definite at panel column %d (pivot %g)",
				df.id, k, d)
		}
		p := math.Sqrt(d)
		a[k*n+k] = p
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= p
		}
		for j := k + 1; j < n; j++ {
			ljk := a[j*n+k]
			if ljk == 0 {
				continue
			}
			for i := j; i < n; i++ {
				a[i*n+j] -= a[i*n+k] * ljk
			}
		}
	}
	return nil
}

// cbPacked extracts the contribution block's lower triangle, row-major.
func (df *denseFront) cbPacked() []float64 {
	n, w := df.dim, df.w
	cb := make([]float64, 0, (n-w)*(n-w+1)/2)
	for i := w; i < n; i++ {
		for j := w; j <= i; j++ {
			cb = append(cb, df.data[i*df.dim+j])
		}
	}
	return cb
}

// extendAdd folds a child's packed contribution block into this front
// (the numeric e_add of Fig 5's red arrows).
func (df *denseFront) extendAdd(front *Front, childRows []int32, cb []float64) {
	k := 0
	loc := make([]int, len(childRows))
	for i, gr := range childRows {
		li := LocalIndex(front.Rows, gr)
		if li < 0 {
			panic(fmt.Sprintf("sparse: extend-add row %d missing from front %d", gr, front.ID))
		}
		loc[i] = li
	}
	for i := range childRows {
		for j := 0; j <= i; j++ {
			df.data[loc[i]*df.dim+loc[j]] += cb[k]
			k++
		}
	}
}

// panelL extracts the front's computed L columns as (global row, global
// col, value) triples.
func (df *denseFront) panelL(f *Front) [][3]float64 {
	var out [][3]float64
	for c := 0; c < df.w; c++ {
		for li := c; li < df.dim; li++ {
			v := df.data[li*df.dim+c]
			if v != 0 {
				out = append(out, [3]float64{float64(f.Rows[li]), float64(f.Start + c), v})
			}
		}
	}
	return out
}

// CholResult is one rank's output: its fronts' L panels and timing.
type CholResult struct {
	Elapsed time.Duration
	// L triples (row, col, value) for the columns this rank eliminated.
	L [][3]float64
}

// cholState is the per-rank distributed object shared by incoming RPCs.
type cholState struct {
	plan    *CholPlan
	fronts  map[int]*denseFront
	pending map[int]*core.Promise[core.Unit] // v1.0 child-arrival counters
	remain  map[int]int                      // v0.1 child-arrival counters
}

func newCholState(plan *CholPlan, me int32) *cholState {
	st := &cholState{
		plan:    plan,
		fronts:  make(map[int]*denseFront),
		pending: make(map[int]*core.Promise[core.Unit]),
		remain:  make(map[int]int),
	}
	for i := range plan.T.Fronts {
		if plan.Map.Owner(i) != me {
			continue
		}
		df := newDenseFront(plan.T, i)
		df.assemble(plan.A, &plan.T.Fronts[i])
		st.fronts[i] = df
		st.remain[i] = len(plan.T.Fronts[i].Children)
	}
	return st
}

type cbArgs struct {
	ID     core.DistID
	Parent int64
	Rows   core.View[int32]
	CB     core.View[float64]
}

// Registered by name so contribution blocks can land in sibling rank
// processes under a real transport conduit.
func init() { core.RegisterRPC(cholAccumRPC) }

// cholAccumRPC lands a child's contribution block at the parent's owner.
func cholAccumRPC(trk *core.Rank, a cbArgs) core.Unit {
	obj, ok := core.LookupDist[*cholState](trk, a.ID)
	if !ok {
		panic(fmt.Sprintf("sparse: rank %d missing chol state", trk.Me()))
	}
	st := *obj.Value()
	pf := int(a.Parent)
	df := st.fronts[pf]
	df.extendAdd(&st.plan.T.Fronts[pf], a.Rows.Elements(), a.CB.Elements())
	st.remain[pf]--
	if p, ok := st.pending[pf]; ok {
		p.FulfillAnonymous(1)
	}
	return core.Unit{}
}

// CholV1 runs the factorization against the v1.0 API: per-front counting
// promises gate factorization tasks chained with futures; contribution
// blocks travel as RPC views; completion is a conjunction of all local
// futures.
func CholV1(rk *core.Rank, plan *CholPlan) CholResult {
	me := rk.Me()
	st := newCholState(plan, me)
	obj := core.NewDistObject(rk, st)
	id := obj.ID()
	// One promise per owned front, counting its children.
	order := ownedAscending(plan, me)
	for _, i := range order {
		p := core.NewPromise[core.Unit](rk)
		p.RequireAnonymous(len(plan.T.Fronts[i].Children))
		st.pending[i] = p
	}
	rk.Barrier()

	start := time.Now()
	conj := core.EmptyFuture(rk)
	for _, i := range order {
		i := i
		ready := st.pending[i].Finalize()
		done := core.ThenFut(ready, func(core.Unit) core.Future[core.Unit] {
			df := st.fronts[i]
			if err := df.factor(); err != nil {
				panic(err)
			}
			f := &plan.T.Fronts[i]
			if f.Parent < 0 || df.dim == df.w {
				return core.EmptyFuture(rk)
			}
			owner := plan.Map.Owner(f.Parent)
			args := cbArgs{
				ID:     id,
				Parent: int64(f.Parent),
				Rows:   core.MakeView(f.CBRows()),
				CB:     core.MakeView(df.cbPacked()),
			}
			return core.ThenDo(core.RPC(rk, owner, cholAccumRPC, args), func(core.Unit) {})
		})
		conj = core.WhenAll(rk, conj, done)
	}
	conj.Wait()
	elapsed := time.Since(start)
	rk.Barrier()
	return CholResult{Elapsed: elapsed, L: collectL(plan, st)}
}

// CholV01 runs the same factorization against the v0.1 API: explicit
// events, in-order waiting on child counters, async() task shipping — the
// scheduling style of the original symPACK (paper §IV-D4).
func CholV01(rk *core.Rank, plan *CholPlan) CholResult {
	rt := upcxx01.Wrap(rk)
	me := rk.Me()
	st := newCholState(plan, me)
	obj := core.NewDistObject(rk, st)
	id := obj.ID()
	rt.Barrier()

	start := time.Now()
	sendEvt := upcxx01.NewEvent(rt)
	for _, i := range ownedAscending(plan, me) {
		// v0.1 style: spin on the arrival counter (events carry no
		// values, so the counter lives beside them), then factor.
		for st.remain[i] > 0 {
			rt.Advance()
		}
		df := st.fronts[i]
		if err := df.factor(); err != nil {
			panic(err)
		}
		f := &plan.T.Fronts[i]
		if f.Parent < 0 || df.dim == df.w {
			continue
		}
		owner := plan.Map.Owner(f.Parent)
		args := cbArgs{
			ID:     id,
			Parent: int64(f.Parent),
			Rows:   core.MakeView(f.CBRows()),
			CB:     core.MakeView(df.cbPacked()),
		}
		upcxx01.AsyncArg(rt, owner, sendEvt, func(trt *upcxx01.Runtime, a cbArgs) {
			cholAccumRPC(trt.Rank(), a)
		}, args)
	}
	sendEvt.Wait()
	elapsed := time.Since(start)
	rt.Barrier()
	return CholResult{Elapsed: elapsed, L: collectL(plan, st)}
}

// ownedAscending lists this rank's fronts in ascending (children-first)
// order.
func ownedAscending(plan *CholPlan, me int32) []int {
	var out []int
	for i := range plan.T.Fronts {
		if plan.Map.Owner(i) == me {
			out = append(out, i)
		}
	}
	return out
}

func collectL(plan *CholPlan, st *cholState) [][3]float64 {
	var out [][3]float64
	for i, df := range st.fronts {
		out = append(out, df.panelL(&plan.T.Fronts[i])...)
	}
	return out
}

// DenseCholesky factors a dense SPD matrix (row-major, n x n) in place
// into its lower Cholesky factor, zeroing the strict upper triangle —
// the verification reference for small problems.
func DenseCholesky(a []float64, n int) error {
	for k := 0; k < n; k++ {
		d := a[k*n+k]
		if d <= 0 {
			return fmt.Errorf("sparse: dense Cholesky pivot %d = %g", k, d)
		}
		p := math.Sqrt(d)
		a[k*n+k] = p
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= p
		}
		for j := k + 1; j < n; j++ {
			for i := j; i < n; i++ {
				a[i*n+j] -= a[i*n+k] * a[j*n+k]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a[i*n+j] = 0
		}
	}
	return nil
}
