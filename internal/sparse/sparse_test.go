package sparse

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	core "upcxx/internal/core"
	"upcxx/internal/matgen"
	"upcxx/internal/mpi"
)

func testProblem() *matgen.Problem {
	return matgen.Generate("test", matgen.Grid3D{NX: 6, NY: 6, NZ: 6}, 8)
}

func TestETreeProperties(t *testing.T) {
	p := testProblem()
	parent := ETree(p.A)
	n := p.A.N
	roots := 0
	for j := 0; j < n; j++ {
		if parent[j] == -1 {
			roots++
			continue
		}
		if int(parent[j]) <= j {
			t.Fatalf("parent[%d] = %d not greater than child", j, parent[j])
		}
	}
	if roots < 1 {
		t.Fatal("no roots")
	}
	// The etree parent must equal the first sub-diagonal pattern row.
	pat := colPatterns(p.A)
	for j := 0; j < n; j++ {
		if len(pat[j]) == 0 {
			if parent[j] != -1 {
				t.Fatalf("col %d: empty pattern but parent %d", j, parent[j])
			}
			continue
		}
		if parent[j] != pat[j][0] {
			t.Fatalf("col %d: etree parent %d != first pattern row %d", j, parent[j], pat[j][0])
		}
	}
}

func TestFrontTreeValidate(t *testing.T) {
	p := testProblem()
	for _, maxW := range []int{1, 4, 16, 0} {
		tree := BuildFrontTree(p.A, maxW)
		if err := tree.Validate(); err != nil {
			t.Fatalf("maxWidth %d: %v", maxW, err)
		}
		if maxW == 1 && len(tree.Fronts) != p.A.N {
			t.Errorf("width-1 fronts: %d fronts for %d columns", len(tree.Fronts), p.A.N)
		}
	}
}

func TestFrontTreeCoversMatrix(t *testing.T) {
	p := testProblem()
	tree := BuildFrontTree(p.A, 32)
	// Every sub-diagonal A entry must fall inside its column's front.
	for j := 0; j < p.A.N; j++ {
		f := &tree.Fronts[tree.ColFront[j]]
		rows, _ := p.A.Col(j)
		for _, r := range rows {
			if LocalIndex(f.Rows, r) < 0 {
				t.Fatalf("A entry (%d,%d) outside front %d", r, j, f.ID)
			}
		}
	}
}

func TestProportionalMapping(t *testing.T) {
	p := testProblem()
	tree := BuildFrontTree(p.A, 16)
	for _, P := range []int{1, 2, 3, 7, 16, 64} {
		m := ProportionalMap(tree, P)
		for i := range tree.Fronts {
			lo, hi := m.Range(i)
			if lo < 0 || hi > int32(P) || lo >= hi {
				t.Fatalf("P=%d front %d: bad range [%d,%d)", P, i, lo, hi)
			}
			// A child's range must nest within its parent's.
			if pf := tree.Fronts[i].Parent; pf >= 0 {
				plo, phi := m.Range(pf)
				if lo < plo || hi > phi {
					t.Fatalf("P=%d front %d range [%d,%d) outside parent [%d,%d)",
						P, i, lo, hi, plo, phi)
				}
			}
		}
		// Roots jointly cover all processes.
		covered := make([]bool, P)
		for _, r := range tree.Roots {
			lo, hi := m.Range(r)
			for q := lo; q < hi; q++ {
				covered[q] = true
			}
		}
		for q, ok := range covered {
			if !ok {
				t.Fatalf("P=%d process %d not covered by any root", P, q)
			}
		}
	}
}

func TestLayoutBlockCyclic(t *testing.T) {
	l := NewLayout(4, 10, 8) // 6 procs -> 2x3 grid, the paper's Fig 5 shape
	if l.PR != 2 || l.PC != 3 {
		t.Fatalf("grid = %dx%d", l.PR, l.PC)
	}
	seen := map[int32]bool{}
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			o := l.Owner(i, j)
			if o < 4 || o >= 10 {
				t.Fatalf("owner(%d,%d) = %d out of range", i, j, o)
			}
			seen[o] = true
			// Same block, same owner.
			if o2 := l.Owner(i-i%8, j-j%8); o2 != o {
				t.Fatalf("block ownership inconsistent at (%d,%d)", i, j)
			}
		}
	}
	if len(seen) != 6 {
		t.Fatalf("only %d owners used", len(seen))
	}
}

func TestEAddPlanAccounting(t *testing.T) {
	p := testProblem()
	tree := BuildFrontTree(p.A, 16)
	plan := NewEAddPlan(tree, 6, 4)
	// Sum of per-rank incoming equals total message count.
	totalMsgs := 0
	for _, m := range plan.Msgs {
		totalMsgs += len(m)
	}
	gotIncoming := 0
	for _, c := range plan.Incoming {
		gotIncoming += c
	}
	if gotIncoming != totalMsgs {
		t.Fatalf("incoming sum %d != message count %d", gotIncoming, totalMsgs)
	}
	// Entry conservation: per-child counts sum to the CB triangle sizes.
	wantEntries := 0
	for i := range tree.Fronts {
		if tree.Fronts[i].Parent < 0 {
			continue
		}
		cb := tree.Fronts[i].CBSize()
		wantEntries += cb * (cb + 1) / 2
	}
	if plan.TotalEntries != wantEntries {
		t.Fatalf("plan entries %d != CB triangles %d", plan.TotalEntries, wantEntries)
	}
}

// runEAddVariants executes all three variants at the given process count
// and checks each against the serial reference.
func runEAddVariants(t *testing.T, P int) {
	t.Helper()
	prob := testProblem()
	tree := BuildFrontTree(prob.A, 16)
	plan := NewEAddPlan(tree, P, 4)
	want := EAddSerial(plan)

	// UPC++ variant.
	stores := make([]*AccumStore, P)
	core.Run(P, func(rk *core.Rank) {
		st, _ := EAddUPCXX(rk, plan)
		stores[rk.Me()] = st
	})
	got := NewAccumStore()
	for _, s := range stores {
		got.Merge(s)
	}
	if err := want.Equal(got, 1e-9); err != nil {
		t.Fatalf("P=%d upcxx: %v", P, err)
	}

	// MPI variants.
	for name, run := range map[string]func(*mpi.Proc, *EAddPlan) (*AccumStore, float64){
		"alltoallv": func(p *mpi.Proc, pl *EAddPlan) (*AccumStore, float64) {
			s, d := EAddMPIAlltoallv(p, pl)
			return s, d.Seconds()
		},
		"p2p": func(p *mpi.Proc, pl *EAddPlan) (*AccumStore, float64) {
			s, d := EAddMPIP2P(p, pl)
			return s, d.Seconds()
		},
	} {
		stores := make([]*AccumStore, P)
		mpi.Run(P, func(p *mpi.Proc) {
			st, _ := run(p, plan)
			stores[p.Rank()] = st
		})
		got := NewAccumStore()
		for _, s := range stores {
			got.Merge(s)
		}
		if err := want.Equal(got, 1e-9); err != nil {
			t.Fatalf("P=%d %s: %v", P, name, err)
		}
	}
}

func TestEAddVariantsEquivalence(t *testing.T) {
	for _, P := range []int{1, 2, 6} {
		runEAddVariants(t, P)
	}
}

func TestEAddVariantsEquivalenceLargerP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runEAddVariants(t, 16)
}

func cholReference(t *testing.T, a *matgen.SymCSC) []float64 {
	t.Helper()
	dense := a.Dense()
	if err := DenseCholesky(dense, a.N); err != nil {
		t.Fatal(err)
	}
	return dense
}

func checkL(t *testing.T, n int, want []float64, results []CholResult) {
	t.Helper()
	got := make([]float64, n*n)
	for _, res := range results {
		for _, tr := range res.L {
			got[int(tr[0])*n+int(tr[1])] = tr[2]
		}
	}
	bad := 0
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-8*(1+math.Abs(want[i])) {
			bad++
			if bad < 5 {
				t.Errorf("L[%d,%d] = %g, want %g", i/n, i%n, got[i], want[i])
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d mismatched L entries", bad)
	}
}

func TestCholV1MatchesDense(t *testing.T) {
	prob := matgen.Generate("chol", matgen.Grid3D{NX: 5, NY: 5, NZ: 5}, 8)
	tree := BuildFrontTree(prob.A, 16)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	want := cholReference(t, prob.A)
	for _, P := range []int{1, 3, 8} {
		plan := NewCholPlan(prob.A, tree, P)
		results := make([]CholResult, P)
		core.Run(P, func(rk *core.Rank) {
			results[rk.Me()] = CholV1(rk, plan)
		})
		checkL(t, prob.A.N, want, results)
	}
}

func TestCholV01MatchesDense(t *testing.T) {
	prob := matgen.Generate("chol01", matgen.Grid3D{NX: 5, NY: 5, NZ: 5}, 8)
	tree := BuildFrontTree(prob.A, 16)
	want := cholReference(t, prob.A)
	for _, P := range []int{1, 4} {
		plan := NewCholPlan(prob.A, tree, P)
		results := make([]CholResult, P)
		core.Run(P, func(rk *core.Rank) {
			results[rk.Me()] = CholV01(rk, plan)
		})
		checkL(t, prob.A.N, want, results)
	}
}

func TestDenseCholeskySmall(t *testing.T) {
	// 2x2: [[4,2],[2,5]] -> L = [[2,0],[1,2]].
	a := []float64{4, 2, 2, 5}
	if err := DenseCholesky(a, 2); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 1, 2}
	for i := range want {
		if math.Abs(a[i]-want[i]) > 1e-12 {
			t.Fatalf("L = %v, want %v", a, want)
		}
	}
	// Indefinite matrix must fail.
	b := []float64{1, 2, 2, 1}
	if err := DenseCholesky(b, 2); err == nil {
		t.Fatal("indefinite matrix should fail")
	}
}

// Property: random grid shapes produce valid front trees whose eadd plans
// conserve entries at any process count.
func TestQuickFrontTreeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := matgen.Grid3D{NX: 2 + rng.Intn(5), NY: 2 + rng.Intn(5), NZ: 2 + rng.Intn(4)}
		prob := matgen.Generate("q", g, 1+rng.Intn(16))
		tree := BuildFrontTree(prob.A, 1+rng.Intn(20))
		if err := tree.Validate(); err != nil {
			t.Logf("grid %+v: %v", g, err)
			return false
		}
		P := 1 + rng.Intn(9)
		plan := NewEAddPlan(tree, P, 1+rng.Intn(6))
		want := 0
		for i := range tree.Fronts {
			if tree.Fronts[i].Parent < 0 {
				continue
			}
			cb := tree.Fronts[i].CBSize()
			want += cb * (cb + 1) / 2
		}
		return plan.TotalEntries == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: mini-symPACK matches the dense factor on random small grids.
func TestQuickCholCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := matgen.Grid3D{NX: 2 + rng.Intn(3), NY: 2 + rng.Intn(3), NZ: 2 + rng.Intn(3)}
		prob := matgen.Generate("qc", g, 1+rng.Intn(8))
		tree := BuildFrontTree(prob.A, 1+rng.Intn(8))
		dense := prob.A.Dense()
		if err := DenseCholesky(dense, prob.A.N); err != nil {
			return false
		}
		P := 1 + rng.Intn(4)
		plan := NewCholPlan(prob.A, tree, P)
		results := make([]CholResult, P)
		core.Run(P, func(rk *core.Rank) {
			results[rk.Me()] = CholV1(rk, plan)
		})
		n := prob.A.N
		got := make([]float64, n*n)
		for _, res := range results {
			for _, tr := range res.L {
				got[int(tr[0])*n+int(tr[1])] = tr[2]
			}
		}
		for i := range dense {
			if math.Abs(dense[i]-got[i]) > 1e-8*(1+math.Abs(dense[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalIndex(t *testing.T) {
	rows := []int32{2, 5, 9, 14}
	cases := map[int32]int{2: 0, 5: 1, 9: 2, 14: 3, 0: -1, 7: -1, 99: -1}
	for v, want := range cases {
		if got := LocalIndex(rows, v); got != want {
			t.Errorf("LocalIndex(%d) = %d, want %d", v, got, want)
		}
	}
	// Against sort.SearchInts semantics on a larger random case.
	big := make([]int32, 100)
	for i := range big {
		big[i] = int32(i * 3)
	}
	for v := int32(0); v < 300; v++ {
		want := -1
		if v%3 == 0 {
			want = int(v / 3)
		}
		if got := LocalIndex(big, v); got != want {
			t.Fatalf("LocalIndex(%d) = %d, want %d", v, got, want)
		}
	}
	sort.SliceIsSorted(big, func(i, j int) bool { return big[i] < big[j] })
}
