package sparse

import (
	"fmt"
	"math"
	"time"

	core "upcxx/internal/core"
	"upcxx/internal/mpi"
)

// The extend-add benchmark (paper §IV-D2/3, Figs 6–8): children's
// contribution blocks are accumulated into their parents' frontal
// matrices across a 2D block-cyclic distribution. As in the paper's
// benchmark, no numeric factorization is performed — contribution values
// are synthetic and static, every variant moves exactly the same entries,
// and only the communication strategy differs:
//
//   - UPC++ RPC: one RPC per (child process -> parent process) pair
//     carrying a view of packed entries, fully asynchronous across the
//     whole tree, completion via conjoined futures + a counting promise
//     (Fig 7's code structure).
//   - MPI Alltoallv: one collective per tree level (STRUMPACK's
//     strategy).
//   - MPI P2P: per-child Isend/Irecv with per-level Waitall (MUMPS's
//     strategy).

// cbValue is the deterministic synthetic value of contribution-block
// entry (gi, gj) of child front c: structure-independent so that every
// variant accumulates identical sums.
func cbValue(c int, gi, gj int32) float64 {
	h := uint64(c+1)*0x9e3779b97f4a7c15 ^ uint64(gi)*0x85ebca77c2b2ae63 ^ uint64(gj)*0xc2b2ae3d27d4eb4f
	return float64(h%4096)/64.0 - 32.0
}

// packEntry encodes one accumulation as (meta, value-bits): the meta word
// holds the parent front ID and the parent-local coordinates.
func packEntry(front int, pi, pj int) uint64 {
	return uint64(front)<<42 | uint64(pi)<<21 | uint64(pj)
}

func unpackEntry(meta uint64) (front, pi, pj int) {
	return int(meta >> 42), int(meta >> 21 & 0x1fffff), int(meta & 0x1fffff)
}

// AccumStore holds one process's accumulated fragments of parent frontal
// matrices: per front, a sparse map from packed local coordinates to the
// accumulated value.
type AccumStore struct {
	Data map[int]map[uint64]float64
}

// NewAccumStore returns an empty store.
func NewAccumStore() *AccumStore {
	return &AccumStore{Data: make(map[int]map[uint64]float64)}
}

// Add accumulates v at (pi, pj) of front f.
func (s *AccumStore) Add(f, pi, pj int, v float64) {
	m, ok := s.Data[f]
	if !ok {
		m = make(map[uint64]float64)
		s.Data[f] = m
	}
	m[uint64(pi)<<21|uint64(pj)] += v
}

// Merge folds other into s (used by tests to combine per-rank stores).
func (s *AccumStore) Merge(other *AccumStore) {
	for f, m := range other.Data {
		for k, v := range m {
			s.Add(f, int(k>>21), int(k&0x1fffff), v)
		}
	}
}

// Entries returns the total number of accumulated positions.
func (s *AccumStore) Entries() int {
	total := 0
	for _, m := range s.Data {
		total += len(m)
	}
	return total
}

// Equal compares two stores within tolerance.
func (s *AccumStore) Equal(other *AccumStore, tol float64) error {
	if len(s.Data) != len(other.Data) {
		return fmt.Errorf("front count %d != %d", len(s.Data), len(other.Data))
	}
	for f, m := range s.Data {
		om, ok := other.Data[f]
		if !ok {
			return fmt.Errorf("front %d missing", f)
		}
		if len(m) != len(om) {
			return fmt.Errorf("front %d entry count %d != %d", f, len(m), len(om))
		}
		for k, v := range m {
			if ov, ok := om[k]; !ok || math.Abs(v-ov) > tol {
				return fmt.Errorf("front %d pos (%d,%d): %g vs %g",
					f, k>>21, k&0x1fffff, v, ov)
			}
		}
	}
	return nil
}

// EAddPlan precomputes the structural (value-independent) side of the
// benchmark, shared read-only by every rank: front layouts, per-child
// message matrix, and per-rank expected incoming message counts.
type EAddPlan struct {
	T       *FrontTree
	Map     *Mapping
	Layouts []Layout
	P       int
	Block   int

	// Msgs[f] holds, for child front f, the entry count per (src, dst)
	// process pair.
	Msgs []map[[2]int32]int
	// Incoming[p] is the number of distinct (child, src) messages process
	// p will receive — the initializer of the paper's e_add_prom.
	Incoming []int
	// ByLevel[l] lists fronts at level l.
	ByLevel [][]int
	// TotalEntries is the number of accumulations in one full pass.
	TotalEntries int
}

// NewEAddPlan builds the plan for the tree over P processes with the
// given block-cyclic block size.
func NewEAddPlan(t *FrontTree, p, block int) *EAddPlan {
	m := ProportionalMap(t, p)
	plan := &EAddPlan{
		T: t, Map: m, P: p, Block: block,
		Layouts:  make([]Layout, len(t.Fronts)),
		Msgs:     make([]map[[2]int32]int, len(t.Fronts)),
		Incoming: make([]int, p),
		ByLevel:  make([][]int, t.MaxLevel()+1),
	}
	for i := range t.Fronts {
		lo, hi := m.Range(i)
		plan.Layouts[i] = NewLayout(lo, hi, block)
		plan.ByLevel[t.Fronts[i].Level] = append(plan.ByLevel[t.Fronts[i].Level], i)
	}
	for i := range t.Fronts {
		f := &t.Fronts[i]
		if f.Parent < 0 {
			continue
		}
		counts := make(map[[2]int32]int)
		forEachCBEntry(plan, i, func(src, dst int32, _ uint64, _ float64) {
			counts[[2]int32{src, dst}]++
		})
		plan.Msgs[i] = counts
		for k, c := range counts {
			plan.Incoming[k[1]]++
			plan.TotalEntries += c
		}
	}
	return plan
}

// forEachCBEntry visits every contribution-block entry of child front f
// (lower triangle), reporting the owning source process, destination
// process in the parent layout, packed meta word and value.
func forEachCBEntry(plan *EAddPlan, f int, visit func(src, dst int32, meta uint64, val float64)) {
	t := plan.T
	child := &t.Fronts[f]
	parent := &t.Fronts[child.Parent]
	cl := plan.Layouts[f]
	pl := plan.Layouts[child.Parent]
	w := child.Width
	dim := len(child.Rows)
	// Parent-local index of each child CB row, computed once (the paper's
	// index translation through Ip).
	ploc := make([]int, dim-w)
	for k, gr := range child.CBRows() {
		pi := LocalIndex(parent.Rows, gr)
		if pi < 0 {
			panic(fmt.Sprintf("sparse: child %d CB row %d missing from parent %d", f, gr, child.Parent))
		}
		ploc[k] = pi
	}
	for ci := w; ci < dim; ci++ {
		gi := child.Rows[ci]
		pi := ploc[ci-w]
		for cj := w; cj <= ci; cj++ {
			gj := child.Rows[cj]
			pj := ploc[cj-w]
			src := cl.Owner(ci, cj)
			dst := pl.Owner(pi, pj)
			visit(src, dst, packEntry(child.Parent, pi, pj), cbValue(f, gi, gj))
		}
	}
}

// pack bins this process's owned CB entries of child front f by
// destination process (the paper's pack() + make_view step). Buffers hold
// (meta, value-bits) pairs.
func pack(plan *EAddPlan, f int, me int32) map[int32][]uint64 {
	bufs := make(map[int32][]uint64)
	forEachCBEntry(plan, f, func(src, dst int32, meta uint64, val float64) {
		if src != me {
			return
		}
		bufs[dst] = append(bufs[dst], meta, math.Float64bits(val))
	})
	return bufs
}

// accumulate folds a packed buffer into the store.
func accumulate(store *AccumStore, pairs []uint64) {
	for k := 0; k+1 < len(pairs); k += 2 {
		front, pi, pj := unpackEntry(pairs[k])
		store.Add(front, pi, pj, math.Float64frombits(pairs[k+1]))
	}
}

// EAddSerial computes the reference accumulation on one process.
func EAddSerial(plan *EAddPlan) *AccumStore {
	store := NewAccumStore()
	for i := range plan.T.Fronts {
		if plan.T.Fronts[i].Parent < 0 {
			continue
		}
		forEachCBEntry(plan, i, func(_, _ int32, meta uint64, val float64) {
			front, pi, pj := unpackEntry(meta)
			store.Add(front, pi, pj, val)
		})
	}
	return store
}

// eaddDist is the per-rank distributed state of the UPC++ variant.
type eaddDist struct {
	store *AccumStore
	prom  *core.Promise[core.Unit]
}

// EAddUPCXX runs the UPC++ RPC variant on one rank, returning its
// accumulation store and the elapsed time of the communication phase.
// Matches Fig 7: pack, one RPC per destination with a view of the data,
// conjoined futures for acknowledgment, counting promise for incoming.
func EAddUPCXX(rk *core.Rank, plan *EAddPlan) (*AccumStore, time.Duration) {
	me := rk.Me()
	d := &eaddDist{store: NewAccumStore(), prom: core.NewPromise[core.Unit](rk)}
	d.prom.RequireAnonymous(plan.Incoming[me])
	obj := core.NewDistObject(rk, d)
	id := obj.ID()
	rk.Barrier()

	start := time.Now()
	fConj := core.EmptyFuture(rk)
	for i := range plan.T.Fronts {
		f := &plan.T.Fronts[i]
		if f.Parent < 0 {
			continue
		}
		if lo, hi := plan.Map.Range(i); me < lo || me >= hi {
			continue
		}
		bufs := pack(plan, i, me)
		// Launch an RPC to every destination, rotating the start as the
		// paper's loop does to avoid hotspots.
		plo, phi := plan.Map.Range(f.Parent)
		pn := phi - plo
		for lp := int32(0); lp < pn; lp++ {
			dst := plo + (me+1+lp)%pn
			buf, ok := bufs[dst]
			if !ok {
				continue
			}
			fut := core.RPC2(rk, dst, eaddAccumRPC, id, core.MakeView(buf))
			fConj = core.WhenAll(rk, fConj, fut)
		}
	}
	core.WhenAll(rk, fConj, d.prom.Finalize()).Wait()
	elapsed := time.Since(start)
	rk.Barrier()
	return d.store, elapsed
}

// Registered by name so the accum callback can be dispatched in sibling
// rank processes under a real transport conduit.
func init() { core.RegisterRPC2(eaddAccumRPC) }

// eaddAccumRPC is the accum callback of Fig 6/7: it runs at the
// destination, traverses the view (a window into the network buffer),
// accumulates into the local fragments, and signals the counting promise.
func eaddAccumRPC(trk *core.Rank, id core.DistID, v core.View[uint64]) core.Unit {
	obj, ok := core.LookupDist[*eaddDist](trk, id)
	if !ok {
		panic(fmt.Sprintf("sparse: rank %d missing eadd state %d", trk.Me(), id))
	}
	d := *obj.Value()
	accumulate(d.store, v.Elements())
	d.prom.FulfillAnonymous(1)
	return core.Unit{}
}

// EAddMPIAlltoallv runs the Alltoallv variant on one MPI process: one
// collective exchange per tree level, deepest first (STRUMPACK's
// strategy; the per-level synchronization is inherent to the collective).
func EAddMPIAlltoallv(p *mpi.Proc, plan *EAddPlan) (*AccumStore, time.Duration) {
	me := int32(p.Rank())
	store := NewAccumStore()
	p.Barrier()
	start := time.Now()
	for level := len(plan.ByLevel) - 1; level >= 1; level-- {
		send := make([][]byte, p.Size())
		for _, i := range plan.ByLevel[level] {
			if plan.T.Fronts[i].Parent < 0 {
				continue
			}
			if lo, hi := plan.Map.Range(i); me < lo || me >= hi {
				continue
			}
			for dst, buf := range pack(plan, i, me) {
				send[dst] = appendPairs(send[dst], buf)
			}
		}
		recv := p.Alltoallv(send)
		for _, buf := range recv {
			accumulate(store, pairsFromBytes(buf))
		}
	}
	elapsed := time.Since(start)
	p.Barrier()
	return store, elapsed
}

// EAddMPIP2P runs the point-to-point variant (MUMPS's strategy): per
// child front, one message per (source, destination) pair. The receiver
// knows only how many messages to expect per level (from the symbolic
// analysis) and discovers them with Probe + Recv — the serialized,
// unexpected-queue matching path that real probe-driven solvers pay.
func EAddMPIP2P(p *mpi.Proc, plan *EAddPlan) (*AccumStore, time.Duration) {
	me := int32(p.Rank())
	store := NewAccumStore()
	p.Barrier()
	start := time.Now()
	for level := len(plan.ByLevel) - 1; level >= 1; level-- {
		expect := 0
		for _, i := range plan.ByLevel[level] {
			for key := range plan.Msgs[i] {
				if key[1] == me {
					expect++
				}
			}
		}
		var reqs []*mpi.Request
		// Send. The tag identifies the level; the payload's meta words
		// identify the parent fronts.
		for _, i := range plan.ByLevel[level] {
			if lo, hi := plan.Map.Range(i); me < lo || me >= hi {
				continue
			}
			for dst, buf := range pack(plan, i, me) {
				reqs = append(reqs, p.Isend(appendPairs(nil, buf), int(dst), level))
			}
		}
		// Probe-driven receive loop.
		for k := 0; k < expect; k++ {
			st := p.Probe(mpi.AnySource, level)
			buf := make([]byte, st.Count)
			p.Recv(buf, st.Source, st.Tag)
			accumulate(store, pairsFromBytes(buf))
		}
		p.Waitall(reqs)
	}
	elapsed := time.Since(start)
	p.Barrier()
	return store, elapsed
}

// appendPairs appends packed (meta, bits) words to a byte buffer in
// little-endian order.
func appendPairs(dst []byte, pairs []uint64) []byte {
	for _, w := range pairs {
		for s := 0; s < 64; s += 8 {
			dst = append(dst, byte(w>>s))
		}
	}
	return dst
}

// pairsFromBytes decodes the wire form of appendPairs.
func pairsFromBytes(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		var w uint64
		for s := 0; s < 8; s++ {
			w |= uint64(b[i*8+s]) << (8 * s)
		}
		out[i] = w
	}
	return out
}
