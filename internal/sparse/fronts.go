// Package sparse implements the multifrontal sparse-solver substrate of
// the paper's second application motif (§IV-D): elimination trees,
// symbolic factorization into frontal matrices, the proportional-mapping
// heuristic, 2D block-cyclic front distribution, the extend-add (e_add)
// operation in the paper's three communication variants (UPC++ RPC with
// views, MPI Alltoallv, MPI point-to-point), and a miniature symPACK-style
// multifrontal Cholesky used for the v0.1-vs-v1.0 comparison of Fig 9.
package sparse

import (
	"fmt"
	"sort"

	"upcxx/internal/matgen"
)

// ETree computes the elimination tree of a symmetric matrix in
// lower-triangle CSC form (Liu's algorithm with path compression).
// parent[j] == -1 marks a root. The algorithm must visit node i's
// sub-row (entries a_ij with j < i) for i ascending, so the lower
// triangle is first bucketed by row.
func ETree(a *matgen.SymCSC) []int32 {
	n := a.N
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for i := range parent {
		parent[i] = -1
		ancestor[i] = -1
	}
	rowlists := make([][]int32, n)
	for j := 0; j < n; j++ {
		rows, _ := a.Col(j)
		for _, r := range rows {
			if int(r) > j {
				rowlists[r] = append(rowlists[r], int32(j))
			}
		}
	}
	for i := 0; i < n; i++ {
		for _, j := range rowlists[i] {
			// Walk from j to the root of its current subtree, compressing
			// paths into ancestor, then graft the subtree under i.
			r := j
			for ancestor[r] != -1 && ancestor[r] != int32(i) {
				next := ancestor[r]
				ancestor[r] = int32(i)
				r = next
			}
			if ancestor[r] == -1 {
				ancestor[r] = int32(i)
				parent[r] = int32(i)
			}
		}
	}
	return parent
}

// colPatterns computes the row pattern of every column of the Cholesky
// factor L: pat[j] holds the sorted row indices strictly below j in
// struct(L(:,j)). Memory is O(|L|).
func colPatterns(a *matgen.SymCSC) [][]int32 {
	n := a.N
	pat := make([][]int32, n)
	// children[j] = columns whose first sub-diagonal pattern row is j.
	children := make([][]int32, n)
	for j := 0; j < n; j++ {
		// Merge A's sub-diagonal rows of column j with every child's
		// pattern (minus j itself).
		var sources [][]int32
		rows, _ := a.Col(j)
		var acol []int32
		for _, r := range rows {
			if int(r) > j {
				acol = append(acol, r)
			}
		}
		sources = append(sources, acol)
		for _, c := range children[j] {
			sources = append(sources, pat[c])
		}
		merged := mergeSorted(sources, int32(j))
		pat[j] = merged
		if len(merged) > 0 {
			p := merged[0] // elimination-tree parent of j
			children[p] = append(children[p], int32(j))
		}
		// Children's patterns are no longer needed once merged, but they
		// are retained for the caller (front construction reuses them).
	}
	return pat
}

// mergeSorted merges sorted int32 slices, dropping duplicates and the
// value skip.
func mergeSorted(srcs [][]int32, skip int32) []int32 {
	switch len(srcs) {
	case 0:
		return nil
	case 1:
		// Fast path: drop skip only.
		out := make([]int32, 0, len(srcs[0]))
		for _, v := range srcs[0] {
			if v != skip {
				out = append(out, v)
			}
		}
		return out
	}
	total := 0
	for _, s := range srcs {
		total += len(s)
	}
	out := make([]int32, 0, total)
	for _, s := range srcs {
		out = append(out, s...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for _, v := range out {
		if v == skip {
			continue
		}
		if w > 0 && out[w-1] == v {
			continue
		}
		out[w] = v
		w++
	}
	return out[:w]
}

// Front is one frontal matrix (paper Fig 5): a supernode of Width
// consecutive columns starting at Start, with Rows holding the front's
// global row indices — the first Width entries are the panel columns
// themselves, the remainder the contribution-block (F22) rows, ascending.
// Rows plays the role of the index sets Ip / IlC / IrC.
type Front struct {
	ID       int
	Start    int // first column
	Width    int // number of eliminated columns
	Rows     []int32
	Parent   int // front index, -1 at roots
	Children []int
	Level    int     // root = 0
	Cost     float64 // dense factorization flops estimate
}

// CBRows returns the contribution-block row indices (beyond the panel).
func (f *Front) CBRows() []int32 { return f.Rows[f.Width:] }

// CBSize returns the contribution block dimension.
func (f *Front) CBSize() int { return len(f.Rows) - f.Width }

// FrontTree is the assembly tree of frontal matrices, ordered so that
// children precede parents (bottom-up traversal = ascending index).
type FrontTree struct {
	N      int
	Fronts []Front
	Roots  []int
	// ColFront maps a matrix column to the front eliminating it.
	ColFront []int32
}

// MaxLevel returns the deepest level in the tree.
func (t *FrontTree) MaxLevel() int {
	max := 0
	for i := range t.Fronts {
		if t.Fronts[i].Level > max {
			max = t.Fronts[i].Level
		}
	}
	return max
}

// BuildFrontTree performs symbolic factorization: column patterns,
// fundamental-supernode detection (bounded by maxWidth), and assembly-tree
// construction.
func BuildFrontTree(a *matgen.SymCSC, maxWidth int) *FrontTree {
	if maxWidth < 1 {
		maxWidth = 1 << 30
	}
	n := a.N
	pat := colPatterns(a)
	t := &FrontTree{N: n, ColFront: make([]int32, n)}

	// Group columns into fundamental supernodes: j+1 joins j's supernode
	// when parent(j) == j+1 and struct(L(:,j)) = {j+1} ∪ struct(L(:,j+1)).
	start := 0
	for start < n {
		width := 1
		for start+width < n && width < maxWidth {
			j := start + width - 1
			next := start + width
			if len(pat[j]) == 0 || int(pat[j][0]) != next {
				break
			}
			if len(pat[j]) != len(pat[next])+1 {
				break
			}
			width++
		}
		f := Front{ID: len(t.Fronts), Start: start, Width: width, Parent: -1}
		f.Rows = make([]int32, 0, width+len(pat[start+width-1]))
		for c := 0; c < width; c++ {
			f.Rows = append(f.Rows, int32(start+c))
		}
		f.Rows = append(f.Rows, pat[start+width-1]...)
		// Dense-panel flops estimate: eliminating column c of the panel
		// updates a trailing block of side (|Rows| - c).
		for c := 0; c < width; c++ {
			s := float64(len(f.Rows) - c)
			f.Cost += s * s
		}
		for c := 0; c < width; c++ {
			t.ColFront[start+c] = int32(f.ID)
		}
		t.Fronts = append(t.Fronts, f)
		start += width
	}

	// Parent link: the front owning the first contribution-block row.
	for i := range t.Fronts {
		f := &t.Fronts[i]
		if f.CBSize() == 0 {
			t.Roots = append(t.Roots, f.ID)
			continue
		}
		p := int(t.ColFront[f.CBRows()[0]])
		f.Parent = p
		t.Fronts[p].Children = append(t.Fronts[p].Children, f.ID)
	}
	// Levels, top-down. Parents always have higher indices than children
	// (supernodes ascend with column order), so iterate descending.
	for i := len(t.Fronts) - 1; i >= 0; i-- {
		f := &t.Fronts[i]
		if f.Parent >= 0 {
			f.Level = t.Fronts[f.Parent].Level + 1
		}
	}
	return t
}

// Amalgamate applies relaxed supernode amalgamation, the standard
// multifrontal post-pass: a front merges into its parent when it is the
// parent's only child, its columns are contiguous with the parent's, and
// the merge grows the child's row span by at most relax (fractional).
// This collapses the long single-child chains that fundamental supernodes
// leave inside nested-dissection separators, producing the compact
// assembly trees real solvers (and the paper's STRUMPACK-extracted trees)
// operate on.
func Amalgamate(t *FrontTree, relax float64) *FrontTree {
	n := len(t.Fronts)
	fr := make([]Front, n)
	copy(fr, t.Fronts)
	for i := range fr {
		fr[i].Children = append([]int(nil), t.Fronts[i].Children...)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		p := fr[i].Parent
		if p < 0 || len(fr[p].Children) != 1 {
			continue
		}
		if fr[p].Start != fr[i].Start+fr[i].Width {
			continue
		}
		mergedSpan := fr[i].Width + len(fr[p].Rows)
		growth := float64(mergedSpan-len(fr[i].Rows)) / float64(len(fr[i].Rows))
		if growth > relax {
			continue
		}
		// Merge i into p: p absorbs i's columns and children.
		rows := make([]int32, 0, mergedSpan)
		for c := 0; c < fr[i].Width; c++ {
			rows = append(rows, int32(fr[i].Start+c))
		}
		rows = append(rows, fr[p].Rows...)
		fr[p].Start = fr[i].Start
		fr[p].Width += fr[i].Width
		fr[p].Rows = rows
		fr[p].Children = fr[i].Children
		for _, c := range fr[i].Children {
			fr[c].Parent = p
		}
		alive[i] = false
	}
	// Compact into a fresh tree, preserving ascending (children-first)
	// order, recomputing ids, costs, levels and column ownership.
	out := &FrontTree{N: t.N, ColFront: make([]int32, t.N)}
	remap := make([]int, n)
	for i := 0; i < n; i++ {
		if !alive[i] {
			remap[i] = -1
			continue
		}
		nf := fr[i]
		nf.ID = len(out.Fronts)
		nf.Children = nil
		nf.Cost = 0
		for c := 0; c < nf.Width; c++ {
			s := float64(len(nf.Rows) - c)
			nf.Cost += s * s
			out.ColFront[nf.Start+c] = int32(nf.ID)
		}
		remap[i] = nf.ID
		out.Fronts = append(out.Fronts, nf)
	}
	for i := range out.Fronts {
		f := &out.Fronts[i]
		if f.Parent >= 0 {
			f.Parent = remap[f.Parent]
			out.Fronts[f.Parent].Children = append(out.Fronts[f.Parent].Children, f.ID)
		} else {
			out.Roots = append(out.Roots, f.ID)
		}
	}
	for i := len(out.Fronts) - 1; i >= 0; i-- {
		f := &out.Fronts[i]
		f.Level = 0
		if f.Parent >= 0 {
			f.Level = out.Fronts[f.Parent].Level + 1
		}
	}
	return out
}

// SubtreeCosts returns, per front, the total cost of its subtree.
func (t *FrontTree) SubtreeCosts() []float64 {
	costs := make([]float64, len(t.Fronts))
	for i := range t.Fronts { // children precede parents
		costs[i] += t.Fronts[i].Cost
		if p := t.Fronts[i].Parent; p >= 0 {
			costs[p] += costs[i]
		}
	}
	return costs
}

// Validate checks structural invariants, returning the first violation.
func (t *FrontTree) Validate() error {
	seen := make([]bool, t.N)
	for i := range t.Fronts {
		f := &t.Fronts[i]
		for c := 0; c < f.Width; c++ {
			col := f.Start + c
			if seen[col] {
				return fmt.Errorf("column %d eliminated twice", col)
			}
			seen[col] = true
		}
		for k := 1; k < len(f.Rows); k++ {
			if f.Rows[k] <= f.Rows[k-1] {
				return fmt.Errorf("front %d rows not strictly ascending at %d", f.ID, k)
			}
		}
		// Multifrontal invariant: CB rows must appear among the parent's
		// rows (the extend-add mapping of Fig 5 relies on it).
		if f.Parent >= 0 {
			p := &t.Fronts[f.Parent]
			for _, r := range f.CBRows() {
				if !containsSorted(p.Rows, r) {
					return fmt.Errorf("front %d CB row %d missing from parent %d", f.ID, r, p.ID)
				}
			}
		} else if f.CBSize() != 0 {
			return fmt.Errorf("root front %d has a contribution block", f.ID)
		}
	}
	for c, ok := range seen {
		if !ok {
			return fmt.Errorf("column %d never eliminated", c)
		}
	}
	return nil
}

func containsSorted(s []int32, v int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// LocalIndex returns the position of global row r within rows, or -1.
func LocalIndex(rows []int32, r int32) int {
	i := sort.Search(len(rows), func(i int) bool { return rows[i] >= r })
	if i < len(rows) && rows[i] == r {
		return i
	}
	return -1
}
