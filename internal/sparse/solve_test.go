package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	core "upcxx/internal/core"
	"upcxx/internal/matgen"
)

func TestSolveEndToEnd(t *testing.T) {
	// Factor distributedly, gather L, solve, check the residual — the
	// full solver pipeline on top of the motifs the paper benchmarks.
	prob := matgen.Generate("solve", matgen.Grid3D{NX: 6, NY: 6, NZ: 6}, 8)
	tree := Amalgamate(BuildFrontTree(prob.A, 0), 0.3)
	const P = 5
	plan := NewCholPlan(prob.A, tree, P)
	results := make([]CholResult, P)
	core.Run(P, func(rk *core.Rank) {
		results[rk.Me()] = CholV1(rk, plan)
	})
	l, err := AssembleL(prob.A.N, results)
	if err != nil {
		t.Fatal(err)
	}
	if l.NNZ() < prob.A.NNZ() {
		t.Fatalf("factor has fewer entries (%d) than the matrix (%d)", l.NNZ(), prob.A.NNZ())
	}
	rng := rand.New(rand.NewSource(1))
	b := make([]float64, prob.A.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := l.Solve(b)
	if res := Residual(prob.A, x, b); res > 1e-10 {
		t.Fatalf("residual = %g", res)
	}
}

func TestSolveIdentityLike(t *testing.T) {
	// Diagonal matrix: solve is exact division.
	a := &matgen.SymCSC{N: 3, ColPtr: []int64{0, 1, 2, 3},
		RowInd: []int32{0, 1, 2}, Val: []float64{4, 9, 16}}
	tree := BuildFrontTree(a, 0)
	plan := NewCholPlan(a, tree, 1)
	var results []CholResult
	core.Run(1, func(rk *core.Rank) {
		results = []CholResult{CholV1(rk, plan)}
	})
	l, err := AssembleL(3, results)
	if err != nil {
		t.Fatal(err)
	}
	x := l.Solve([]float64{4, 18, 48})
	want := []float64{1, 2, 3}
	for i := range want {
		if diff := x[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("x = %v", x)
		}
	}
}

// Property: random grids and process counts produce factors whose solves
// leave tiny residuals.
func TestQuickSolveResidual(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := matgen.Grid3D{NX: 2 + rng.Intn(4), NY: 2 + rng.Intn(4), NZ: 2 + rng.Intn(3)}
		prob := matgen.Generate("qs", g, 1+rng.Intn(10))
		tree := Amalgamate(BuildFrontTree(prob.A, 0), 0.3)
		p := 1 + rng.Intn(4)
		plan := NewCholPlan(prob.A, tree, p)
		results := make([]CholResult, p)
		core.Run(p, func(rk *core.Rank) {
			results[rk.Me()] = CholV1(rk, plan)
		})
		l, err := AssembleL(prob.A.N, results)
		if err != nil {
			return false
		}
		b := make([]float64, prob.A.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		return Residual(prob.A, l.Solve(b), b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
