package sparse

import "fmt"

// Mapping assigns each front a contiguous process range [Lo, Hi) using the
// proportional mapping heuristic (Pothen & Sun), exactly as the paper
// describes: subtrees receive process groups sized by their computational
// cost, the root front owning all processes.
type Mapping struct {
	P      int
	Ranges [][2]int32 // per front: {lo, hi}
}

// Range returns front f's process interval.
func (m *Mapping) Range(f int) (lo, hi int32) {
	r := m.Ranges[f]
	return r[0], r[1]
}

// GroupSize returns the number of processes assigned to front f.
func (m *Mapping) GroupSize(f int) int {
	return int(m.Ranges[f][1] - m.Ranges[f][0])
}

// Owner returns the designated single owner of front f (used by the 1D
// mini-symPACK mapping): the first process of its range.
func (m *Mapping) Owner(f int) int32 { return m.Ranges[f][0] }

// ProportionalMap computes the proportional mapping of the tree onto P
// processes. Every front receives at least one process; when a subtree
// has more children than processes, children share processes.
func ProportionalMap(t *FrontTree, P int) *Mapping {
	if P < 1 {
		panic("sparse: ProportionalMap needs P >= 1")
	}
	costs := t.SubtreeCosts()
	m := &Mapping{P: P, Ranges: make([][2]int32, len(t.Fronts))}

	var assign func(f int, lo, hi int32)
	assign = func(f int, lo, hi int32) {
		m.Ranges[f] = [2]int32{lo, hi}
		children := t.Fronts[f].Children
		if len(children) == 0 {
			return
		}
		g := hi - lo
		if g <= 1 {
			for _, c := range children {
				assign(c, lo, hi)
			}
			return
		}
		total := 0.0
		for _, c := range children {
			total += costs[c]
		}
		// Carve [lo, hi) by cumulative share, clamped so every child gets
		// a non-empty range.
		cum := 0.0
		for idx, c := range children {
			share0 := cum / total
			cum += costs[c]
			share1 := cum / total
			clo := lo + int32(share0*float64(g)+0.5)
			chi := lo + int32(share1*float64(g)+0.5)
			if clo >= hi {
				clo = hi - 1
			}
			if chi <= clo {
				chi = clo + 1
			}
			if chi > hi {
				chi = hi
			}
			if idx == len(children)-1 && chi < hi {
				// Avoid stranding trailing processes at the last child.
				chi = hi
			}
			assign(c, clo, chi)
		}
	}

	// Split the processes among the roots by cost.
	rootTotal := 0.0
	for _, r := range t.Roots {
		rootTotal += costs[r]
	}
	cum := 0.0
	for idx, r := range t.Roots {
		share0 := cum / rootTotal
		cum += costs[r]
		share1 := cum / rootTotal
		lo := int32(share0*float64(P) + 0.5)
		hi := int32(share1*float64(P) + 0.5)
		if lo >= int32(P) {
			lo = int32(P) - 1
		}
		if hi <= lo {
			hi = lo + 1
		}
		if hi > int32(P) {
			hi = int32(P)
		}
		if idx == len(t.Roots)-1 && hi < int32(P) {
			hi = int32(P)
		}
		assign(r, lo, hi)
	}
	return m
}

// Layout is the 2D block-cyclic distribution of one front over its
// process group (paper Fig 5: colored blocks on a 2-by-3 grid).
type Layout struct {
	Lo, Hi int32 // process range
	PR, PC int   // process grid dimensions, PR*PC == Hi-Lo
	B      int   // block size
}

// NewLayout shapes the process group [lo,hi) into the most square grid
// with PR*PC == group size, blocks of b elements on a side.
func NewLayout(lo, hi int32, b int) Layout {
	g := int(hi - lo)
	if g < 1 {
		panic(fmt.Sprintf("sparse: empty layout range [%d,%d)", lo, hi))
	}
	pr := 1
	for d := 1; d*d <= g; d++ {
		if g%d == 0 {
			pr = d
		}
	}
	return Layout{Lo: lo, Hi: hi, PR: pr, PC: g / pr, B: b}
}

// Owner returns the process owning element (i, j) of the front (front-
// local coordinates).
func (l Layout) Owner(i, j int) int32 {
	bi, bj := i/l.B, j/l.B
	return l.Lo + int32((bi%l.PR)*l.PC+(bj%l.PC))
}

// OwnsAny reports whether process p owns at least one block of an n x n
// front.
func (l Layout) OwnsAny(p int32, n int) bool {
	if p < l.Lo || p >= l.Hi {
		return false
	}
	nb := (n + l.B - 1) / l.B
	rel := int(p - l.Lo)
	pr, pc := rel/l.PC, rel%l.PC
	return pr < nb && pc < nb
}
