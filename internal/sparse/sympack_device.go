package sparse

import (
	"fmt"
	"time"

	core "upcxx/internal/core"
)

// Device-resident mini-symPACK: the same multifrontal Cholesky as CholV1,
// with every frontal matrix living in *device* memory. Assembly, panel
// factorization, contribution-block packing and extend-add all run as
// device kernels, and contribution blocks travel device-to-device as
// signaling puts into pre-carved landing slots at the parent's owner —
// on a GPUDirect-capable DMA model the push is a single direct NIC↔device
// chain with no host staging, and the remote-cx notification fires the
// extend-add kernel only after the bytes are visible in the target device
// segment. The only host crossing of the whole factorization is the final
// RGet of the computed L panels.
//
// The device segment is sized for the owned fronts alone; landing slots
// and send buffers are carved later and grow the segment on exhaustion
// (DeviceAllocator.Grow keeps every outstanding front pointer valid).

// devCholState is the per-rank distributed object shared by incoming
// slot lookups and arrival notifications.
type devCholState struct {
	plan    *CholPlan
	da      *core.DeviceAllocator
	fronts  map[int]core.GPtr[float64]         // owned fronts, dim*dim dense, device
	landing map[int]map[int]core.GPtr[float64] // owned front -> child -> packed-CB slot
	pending map[int]*core.Promise[core.Unit]   // child-arrival counters
}

// cbTriLen is the packed (lower-triangle, row-major) length of an s x s
// contribution block.
func cbTriLen(s int) int { return s * (s + 1) / 2 }

// devAlloc carves n float64s from the device segment, growing it in
// place when exhausted — offsets (and therefore every GPtr handed out
// before the growth) stay stable.
func devAlloc(da *core.DeviceAllocator, n int) core.GPtr[float64] {
	p, err := core.NewDeviceArray[float64](da, n)
	if err == nil {
		return p
	}
	da.Grow(8*n + 64)
	return core.MustNewDeviceArray[float64](da, n)
}

func devState(trk *core.Rank, id core.DistID) *devCholState {
	obj, ok := core.LookupDist[*devCholState](trk, id)
	if !ok {
		panic(fmt.Sprintf("sparse: rank %d missing device chol state", trk.Me()))
	}
	return *obj.Value()
}

type devSlotArgs struct {
	ID    core.DistID
	Child int64
}

func init() {
	core.RegisterRPC(devSlotRPC)
	core.RegisterRPCFF(devCBArrive)
}

// devSlotRPC returns the landing slot the parent's owner carved for this
// child's contribution block.
func devSlotRPC(trk *core.Rank, a devSlotArgs) core.GPtr[float64] {
	st := devState(trk, a.ID)
	child := int(a.Child)
	parent := st.plan.T.Fronts[child].Parent
	return st.landing[parent][child]
}

type devArriveArgs struct {
	ID    core.DistID
	Child int64
}

// devCBArrive is the remote completion of a child's signaling put: the
// packed block is already visible in this rank's device segment, so the
// extend-add runs as a kernel straight out of the landing slot.
func devCBArrive(trk *core.Rank, a devArriveArgs) {
	st := devState(trk, a.ID)
	child := int(a.Child)
	parent := st.plan.T.Fronts[child].Parent
	st.devExtendAdd(parent, child)
	st.pending[parent].FulfillAnonymous(1)
}

func (st *devCholState) devExtendAdd(parent, child int) {
	pf := &st.plan.T.Fronts[parent]
	rows := st.plan.T.Fronts[child].CBRows()
	dim := len(pf.Rows)
	core.RunKernel(st.da, st.fronts[parent], dim*dim, func(fd []float64) {
		core.RunKernel(st.da, st.landing[parent][child], cbTriLen(len(rows)), func(cb []float64) {
			df := &denseFront{id: parent, dim: dim, w: pf.Width, data: fd}
			df.extendAdd(pf, rows, cb)
		})
	})
}

func (st *devCholState) devFactor(i int) {
	f := &st.plan.T.Fronts[i]
	dim := len(f.Rows)
	var err error
	core.RunKernel(st.da, st.fronts[i], dim*dim, func(fd []float64) {
		df := &denseFront{id: i, dim: dim, w: f.Width, data: fd}
		err = df.factor()
	})
	if err != nil {
		panic(err)
	}
}

// devPackCB packs front i's contribution block into the device send
// buffer — device-to-device, no host copy.
func (st *devCholState) devPackCB(i int, send core.GPtr[float64]) {
	f := &st.plan.T.Fronts[i]
	dim := len(f.Rows)
	core.RunKernel(st.da, st.fronts[i], dim*dim, func(fd []float64) {
		df := &denseFront{id: i, dim: dim, w: f.Width, data: fd}
		cb := df.cbPacked()
		core.RunKernel(st.da, send, len(cb), func(sb []float64) {
			copy(sb, cb)
		})
	})
}

// CholV1Device runs the v1.0 factorization with device-resident fronts;
// see the package comment above. Task structure matches CholV1: per-front
// counting promises gate factorization, futures chain the CB push.
func CholV1Device(rk *core.Rank, plan *CholPlan) CholResult {
	me := rk.Me()
	order := ownedAscending(plan, me)

	frontBytes := 64
	for _, i := range order {
		d := len(plan.T.Fronts[i].Rows)
		frontBytes += 8 * d * d
	}
	da := core.NewDeviceAllocator(rk, frontBytes)

	st := &devCholState{
		plan:    plan,
		da:      da,
		fronts:  make(map[int]core.GPtr[float64]),
		landing: make(map[int]map[int]core.GPtr[float64]),
		pending: make(map[int]*core.Promise[core.Unit]),
	}
	for _, i := range order {
		f := &plan.T.Fronts[i]
		dim := len(f.Rows)
		fr := devAlloc(da, dim*dim)
		st.fronts[i] = fr
		core.RunKernel(da, fr, dim*dim, func(fd []float64) {
			df := &denseFront{id: i, dim: dim, w: f.Width, data: fd}
			df.assemble(plan.A, f)
		})
		// Landing slots for the children's packed blocks: these carve
		// past the front-only sizing and exercise segment growth. Every
		// child of a front has a non-empty contribution block (parents
		// exist only through CB rows).
		st.landing[i] = make(map[int]core.GPtr[float64])
		for _, c := range f.Children {
			st.landing[i][c] = devAlloc(da, cbTriLen(plan.T.Fronts[c].CBSize()))
		}
		p := core.NewPromise[core.Unit](rk)
		p.RequireAnonymous(len(f.Children))
		st.pending[i] = p
	}
	obj := core.NewDistObject(rk, st)
	id := obj.ID()
	rk.Barrier()

	start := time.Now()
	conj := core.EmptyFuture(rk)
	for _, i := range order {
		i := i
		f := &plan.T.Fronts[i]
		done := core.ThenFut(st.pending[i].Finalize(), func(core.Unit) core.Future[core.Unit] {
			st.devFactor(i)
			if f.Parent < 0 || f.CBSize() == 0 {
				return core.EmptyFuture(rk)
			}
			n := cbTriLen(f.CBSize())
			send := devAlloc(da, n)
			st.devPackCB(i, send)
			owner := plan.Map.Owner(f.Parent)
			slotF := core.RPC(rk, owner, devSlotRPC, devSlotArgs{ID: id, Child: int64(i)})
			return core.ThenFut(slotF, func(slot core.GPtr[float64]) core.Future[core.Unit] {
				op := core.NewPromise[core.Unit](rk)
				core.CopyWith(rk, send, slot, n,
					core.OpCxAsPromise(op),
					core.RemoteCxAsRPC(devCBArrive, devArriveArgs{ID: id, Child: int64(i)}))
				return op.Finalize()
			})
		})
		conj = core.WhenAll(rk, conj, done)
	}
	conj.Wait()
	elapsed := time.Since(start)
	rk.Barrier()

	var out [][3]float64
	for _, i := range order {
		f := &plan.T.Fronts[i]
		dim := len(f.Rows)
		host := make([]float64, dim*dim)
		core.RGet(rk, st.fronts[i], host).Wait()
		df := &denseFront{id: i, dim: dim, w: f.Width, data: host}
		out = append(out, df.panelL(f)...)
	}
	rk.Barrier()
	da.Close()
	return CholResult{Elapsed: elapsed, L: out}
}
