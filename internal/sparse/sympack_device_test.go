package sparse

import (
	"testing"

	core "upcxx/internal/core"
	"upcxx/internal/gasnet"
	"upcxx/internal/matgen"
	"upcxx/internal/obs"
)

// TestCholV1DeviceMatchesDense: the device-resident factorization matches
// the dense reference at several process counts, and on a GPUDirect world
// the runtime counters pin the datapath — every d2d descriptor (the CB
// pushes) is direct, none bounced, and the device segments grew past
// their front-only sizing without invalidating a single front pointer.
func TestCholV1DeviceMatchesDense(t *testing.T) {
	prob := matgen.Generate("chol-dev", matgen.Grid3D{NX: 5, NY: 5, NZ: 5}, 8)
	tree := BuildFrontTree(prob.A, 16)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	want := cholReference(t, prob.A)
	for _, P := range []int{1, 3, 8} {
		plan := NewCholPlan(prob.A, tree, P)
		results := make([]CholResult, P)
		var snap obs.Snapshot
		cfg := core.Config{Ranks: P, Stats: true, DMA: gasnet.NoDelayDMA{GDR: true}}
		core.RunConfig(cfg, func(rk *core.Rank) {
			results[rk.Me()] = CholV1Device(rk, plan)
			rk.Barrier()
			if rk.Me() == 0 {
				snap = rk.World().StatsMerged()
			}
		})
		checkL(t, prob.A.N, want, results)
		if snap.DMA[obs.DMAD2DBounced] != 0 {
			t.Fatalf("P=%d: %d bounced d2d descriptors on a GPUDirect world",
				P, snap.DMA[obs.DMAD2DBounced])
		}
		if snap.DMA[obs.DMAD2DDirect] == 0 {
			t.Fatalf("P=%d: no direct d2d descriptors — CB pushes left the device path", P)
		}
	}
}

// TestCholV1DeviceBouncedWorld: the same factorization on a non-GDR
// engine is numerically identical but routes every cross-rank CB push
// through the bounce path — the capability bit alone decides the chain.
func TestCholV1DeviceBouncedWorld(t *testing.T) {
	prob := matgen.Generate("chol-dev-b", matgen.Grid3D{NX: 4, NY: 4, NZ: 4}, 8)
	tree := BuildFrontTree(prob.A, 16)
	want := cholReference(t, prob.A)
	const P = 4
	plan := NewCholPlan(prob.A, tree, P)
	results := make([]CholResult, P)
	var snap obs.Snapshot
	core.RunConfig(core.Config{Ranks: P, Stats: true}, func(rk *core.Rank) {
		results[rk.Me()] = CholV1Device(rk, plan)
		rk.Barrier()
		if rk.Me() == 0 {
			snap = rk.World().StatsMerged()
		}
	})
	checkL(t, prob.A.N, want, results)
	if snap.DMA[obs.DMAD2DBounced] == 0 {
		t.Fatal("no bounced d2d descriptors — expected cross-rank CB pushes to stage")
	}
}
