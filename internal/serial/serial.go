// Package serial implements the binary serialization layer used by the
// UPC++ runtime to move RPC arguments and return values across the
// simulated network.
//
// Real UPC++ serializes C++ objects bytewise into GASNet-EX active-message
// payloads. This package plays the same role for Go values: a compact,
// reflection-driven binary codec with fast paths for the fixed-size scalar
// slices that dominate HPC payloads, plus a low-level Encoder/Decoder pair
// for hand-rolled wire formats inside the runtime itself.
//
// The format is little-endian and self-delimiting but NOT self-describing:
// both sides must agree on the Go type, exactly as both sides of a UPC++
// RPC share one binary and therefore one type layout.
package serial

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShortBuffer is returned when a decode runs off the end of its input.
var ErrShortBuffer = errors.New("serial: short buffer")

// Encoder appends primitive values to a byte buffer. The zero value is
// ready to use.
//
// An encoder may optionally run in gather mode (EnableGather), where large
// PutBorrowed payloads are recorded as borrowed fragments instead of being
// copied into the contiguous buffer. Fragments() then yields an iovec-style
// [][]byte whose concatenation is the encoded message; the borrowed pieces
// alias the caller's memory until whoever consumes the fragments copies
// them (for the runtime, the conduit capture stage).
type Encoder struct {
	buf    []byte
	gather bool
	frags  [][]byte // closed fragments, in order; borrowed or owned
	flen   int      // total bytes across closed fragments
}

// GatherMinBorrow is the smallest PutBorrowed payload worth recording as a
// borrowed fragment in gather mode; anything shorter is copied inline,
// since fragment bookkeeping costs more than a tiny memcpy.
const GatherMinBorrow = 64

// NewEncoder returns an encoder that appends to buf (which may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded buffer. If gather mode closed any fragments it
// returns a flattened copy of the full message.
func (e *Encoder) Bytes() []byte {
	if len(e.frags) == 0 {
		return e.buf
	}
	out := make([]byte, 0, e.Len())
	for _, f := range e.frags {
		out = append(out, f...)
	}
	return append(out, e.buf...)
}

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return e.flen + len(e.buf) }

// Reset discards the buffer contents but keeps the capacity.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.frags = e.frags[:0]
	e.flen = 0
}

// EnableGather switches the encoder into gather mode; see the type comment.
func (e *Encoder) EnableGather() { e.gather = true }

// closeFrag moves the open contiguous buffer onto the fragment list.
func (e *Encoder) closeFrag() {
	if len(e.buf) > 0 {
		e.frags = append(e.frags, e.buf)
		e.flen += len(e.buf)
		e.buf = nil
	}
}

// PutBorrowed appends b with no length prefix. In gather mode, payloads of
// at least GatherMinBorrow bytes are recorded as borrowed fragments that
// alias b — the caller must keep b unchanged until the fragments are
// consumed. Outside gather mode (or for short payloads) it copies like
// PutRaw.
func (e *Encoder) PutBorrowed(b []byte) {
	if !e.gather || len(b) < GatherMinBorrow {
		e.PutRaw(b)
		return
	}
	e.closeFrag()
	e.frags = append(e.frags, b)
	e.flen += len(b)
}

// Fragments closes the open buffer and returns the fragment list; the
// concatenation of the fragments is the encoded message. Borrowed
// fragments alias caller memory (see PutBorrowed).
func (e *Encoder) Fragments() [][]byte {
	e.closeFrag()
	return e.frags
}

func (e *Encoder) PutU8(v uint8)   { e.buf = append(e.buf, v) }
func (e *Encoder) PutBool(v bool)  { e.PutU8(map[bool]uint8{false: 0, true: 1}[v]) }
func (e *Encoder) PutU16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *Encoder) PutU32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *Encoder) PutU64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Encoder) PutI64(v int64)  { e.PutU64(uint64(v)) }
func (e *Encoder) PutF64(v float64) {
	e.PutU64(math.Float64bits(v))
}
func (e *Encoder) PutF32(v float32) {
	e.PutU32(math.Float32bits(v))
}

// PutUvarint appends v in unsigned varint form; used for lengths.
func (e *Encoder) PutUvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// PutRaw appends b with no length prefix.
func (e *Encoder) PutRaw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder consumes primitive values from a byte buffer. Errors are sticky:
// after the first failure every subsequent Get returns the zero value and
// Err reports the failure.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the number of consumed bytes.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrShortBuffer
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Decoder) Bool() bool { return d.U8() != 0 }

func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *Decoder) I64() int64   { return int64(d.U64()) }
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }
func (d *Decoder) F32() float32 { return math.Float32frombits(d.U32()) }

// Uvarint consumes an unsigned varint. Non-minimal encodings (a
// multi-byte form whose final byte contributes no bits, e.g. 0x80 0x00
// for zero) are rejected: every value has exactly one wire form, so
// decode∘encode is the identity on valid payloads.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 || (n > 1 && d.buf[d.off+n-1] == 0) {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Bytes consumes a length-prefixed byte slice. The result aliases the
// decoder's buffer; copy it if it must outlive the buffer.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail()
		return nil
	}
	return d.take(int(n))
}

// String consumes a length-prefixed string (copying out of the buffer).
func (d *Decoder) String() string { return string(d.Bytes()) }

// Raw consumes n bytes with no length prefix, aliasing the buffer.
func (d *Decoder) Raw(n int) []byte { return d.take(n) }

// Finish reports an error if the decoder failed or input remains.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("serial: %d trailing bytes", d.Remaining())
	}
	return nil
}
