// Package serial implements the binary serialization layer used by the
// UPC++ runtime to move RPC arguments and return values across the
// simulated network.
//
// Real UPC++ serializes C++ objects bytewise into GASNet-EX active-message
// payloads. This package plays the same role for Go values: a compact,
// reflection-driven binary codec with fast paths for the fixed-size scalar
// slices that dominate HPC payloads, plus a low-level Encoder/Decoder pair
// for hand-rolled wire formats inside the runtime itself.
//
// The format is little-endian and self-delimiting but NOT self-describing:
// both sides must agree on the Go type, exactly as both sides of a UPC++
// RPC share one binary and therefore one type layout.
package serial

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShortBuffer is returned when a decode runs off the end of its input.
var ErrShortBuffer = errors.New("serial: short buffer")

// Encoder appends primitive values to a byte buffer. The zero value is
// ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder that appends to buf (which may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents but keeps the capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

func (e *Encoder) PutU8(v uint8)   { e.buf = append(e.buf, v) }
func (e *Encoder) PutBool(v bool)  { e.PutU8(map[bool]uint8{false: 0, true: 1}[v]) }
func (e *Encoder) PutU16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *Encoder) PutU32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *Encoder) PutU64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Encoder) PutI64(v int64)  { e.PutU64(uint64(v)) }
func (e *Encoder) PutF64(v float64) {
	e.PutU64(math.Float64bits(v))
}
func (e *Encoder) PutF32(v float32) {
	e.PutU32(math.Float32bits(v))
}

// PutUvarint appends v in unsigned varint form; used for lengths.
func (e *Encoder) PutUvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// PutRaw appends b with no length prefix.
func (e *Encoder) PutRaw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder consumes primitive values from a byte buffer. Errors are sticky:
// after the first failure every subsequent Get returns the zero value and
// Err reports the failure.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the number of consumed bytes.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrShortBuffer
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Decoder) Bool() bool { return d.U8() != 0 }

func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *Decoder) I64() int64   { return int64(d.U64()) }
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }
func (d *Decoder) F32() float32 { return math.Float32frombits(d.U32()) }

// Uvarint consumes an unsigned varint. Non-minimal encodings (a
// multi-byte form whose final byte contributes no bits, e.g. 0x80 0x00
// for zero) are rejected: every value has exactly one wire form, so
// decode∘encode is the identity on valid payloads.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 || (n > 1 && d.buf[d.off+n-1] == 0) {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Bytes consumes a length-prefixed byte slice. The result aliases the
// decoder's buffer; copy it if it must outlive the buffer.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail()
		return nil
	}
	return d.take(int(n))
}

// String consumes a length-prefixed string (copying out of the buffer).
func (d *Decoder) String() string { return string(d.Bytes()) }

// Raw consumes n bytes with no length prefix, aliasing the buffer.
func (d *Decoder) Raw(n int) []byte { return d.take(n) }

// Finish reports an error if the decoder failed or input remains.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("serial: %d trailing bytes", d.Remaining())
	}
	return nil
}
