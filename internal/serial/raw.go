package serial

import "unsafe"

// This file isolates the unsafe slice reinterpretation used for bulk scalar
// payloads. RMA and view serialization of []float64 / []uint64 etc. must not
// pay a per-element encode loop: on the real system these transfers are raw
// RDMA of the in-memory representation. All uses are on fixed-size scalar
// element types on a single architecture within one process, so the
// reinterpretation is well-defined for our purposes.

// Scalar is the constraint for element types that may cross the simulated
// network as raw memory: fixed-size kinds with no pointers.
type Scalar interface {
	~bool |
		~int8 | ~int16 | ~int32 | ~int64 |
		~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64 |
		~complex64 | ~complex128
}

// SizeOf returns the in-memory (and wire) size of T in bytes.
func SizeOf[T Scalar]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// AsBytes reinterprets a scalar slice as its raw bytes without copying.
// The result aliases s.
func AsBytes[T Scalar](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*SizeOf[T]())
}

// FromBytes reinterprets raw bytes as a scalar slice without copying.
// len(b) must be a multiple of the element size; the result aliases b.
func FromBytes[T Scalar](b []byte) []T {
	es := SizeOf[T]()
	if len(b)%es != 0 {
		panic("serial: FromBytes length not a multiple of element size")
	}
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/es)
}

// CopyScalars copies a scalar slice through its byte representation,
// returning a fresh slice that shares no memory with s.
func CopyScalars[T Scalar](s []T) []T {
	out := make([]T, len(s))
	copy(out, s)
	return out
}
