package serial

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// Marshal/Unmarshal form the general-purpose codec used for RPC argument
// packs. Codecs are built once per concrete type with reflect and cached.
//
// Supported: booleans, all fixed-width and machine-sized integers, floats,
// complex numbers, strings, pointers (nil encoded as a flag byte), slices,
// arrays, maps (encoded in sorted key order so encoding is deterministic),
// and structs with exported fields. Unexported struct fields are skipped —
// they are the analogue of non-serialized lambda state. Channels, funcs and
// interfaces are rejected: they cannot cross a network.

type codec struct {
	enc func(e *Encoder, v reflect.Value)
	dec func(d *Decoder, v reflect.Value)
}

var codecCache sync.Map // reflect.Type -> *codec

// Marshaler lets a type define its own wire format (the analogue of a
// custom upcxx serialization specialization, used by views).
type Marshaler interface {
	MarshalSerial(e *Encoder)
}

// Unmarshaler is the decoding side of Marshaler; it is implemented on the
// pointer receiver. Decoded state may alias the decoder's buffer.
type Unmarshaler interface {
	UnmarshalSerial(d *Decoder)
}

var (
	marshalerType   = reflect.TypeOf((*Marshaler)(nil)).Elem()
	unmarshalerType = reflect.TypeOf((*Unmarshaler)(nil)).Elem()
)

// Marshal encodes v into a fresh buffer.
func Marshal(v any) ([]byte, error) {
	return AppendMarshal(nil, v)
}

// MarshalInto encodes v into an existing encoder. When the encoder is in
// gather mode, Marshaler implementations (views) may contribute borrowed
// fragments instead of copies — the zero-copy injection path.
func MarshalInto(e *Encoder, v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serial: marshal %T: %v", v, r)
		}
	}()
	rv := reflect.ValueOf(v)
	if !rv.IsValid() {
		return fmt.Errorf("serial: cannot marshal untyped nil")
	}
	c, err := codecFor(rv.Type())
	if err != nil {
		return err
	}
	c.enc(e, rv)
	return nil
}

// AppendMarshal encodes v, appending to buf.
func AppendMarshal(buf []byte, v any) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serial: marshal %T: %v", v, r)
		}
	}()
	rv := reflect.ValueOf(v)
	if !rv.IsValid() {
		return nil, fmt.Errorf("serial: cannot marshal untyped nil")
	}
	c, err := codecFor(rv.Type())
	if err != nil {
		return nil, err
	}
	e := NewEncoder(buf)
	c.enc(e, rv)
	return e.Bytes(), nil
}

// Unmarshal decodes data into the value pointed to by ptr, which must be a
// non-nil pointer to a supported type. The whole input must be consumed.
func Unmarshal(data []byte, ptr any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serial: unmarshal %T: %v", ptr, r)
		}
	}()
	rv := reflect.ValueOf(ptr)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("serial: unmarshal target must be a non-nil pointer, got %T", ptr)
	}
	c, err := codecFor(rv.Type().Elem())
	if err != nil {
		return err
	}
	d := NewDecoder(data)
	c.dec(d, rv.Elem())
	return d.Finish()
}

// DecodeInto is Unmarshal without the trailing-bytes check, for streaming
// several values out of one buffer. It returns the number of bytes consumed.
func DecodeInto(data []byte, ptr any) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serial: decode %T: %v", ptr, r)
		}
	}()
	rv := reflect.ValueOf(ptr)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return 0, fmt.Errorf("serial: decode target must be a non-nil pointer, got %T", ptr)
	}
	c, err := codecFor(rv.Type().Elem())
	if err != nil {
		return 0, err
	}
	d := NewDecoder(data)
	c.dec(d, rv.Elem())
	if d.Err() != nil {
		return d.Offset(), d.Err()
	}
	return d.Offset(), nil
}

// EncodedSize returns the number of bytes Marshal would produce for v.
// It is used for network cost accounting.
func EncodedSize(v any) (int, error) {
	b, err := Marshal(v)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

func codecFor(t reflect.Type) (*codec, error) {
	if c, ok := codecCache.Load(t); ok {
		return c.(*codec), nil
	}
	c, err := buildCodec(t, map[reflect.Type]*codec{})
	if err != nil {
		return nil, err
	}
	codecCache.Store(t, c)
	return c, nil
}

// buildCodec constructs a codec for t. The in-progress map breaks cycles in
// recursive types (e.g. linked lists via pointers).
func buildCodec(t reflect.Type, building map[reflect.Type]*codec) (*codec, error) {
	if c, ok := building[t]; ok {
		return c, nil
	}
	c := &codec{}
	building[t] = c

	// Custom wire formats take priority over the reflective encoding.
	if t.Implements(marshalerType) && reflect.PointerTo(t).Implements(unmarshalerType) {
		c.enc = func(e *Encoder, v reflect.Value) {
			v.Interface().(Marshaler).MarshalSerial(e)
		}
		c.dec = func(d *Decoder, v reflect.Value) {
			v.Addr().Interface().(Unmarshaler).UnmarshalSerial(d)
		}
		return c, nil
	}

	switch t.Kind() {
	case reflect.Bool:
		c.enc = func(e *Encoder, v reflect.Value) { e.PutBool(v.Bool()) }
		c.dec = func(d *Decoder, v reflect.Value) { v.SetBool(d.Bool()) }
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		c.enc = func(e *Encoder, v reflect.Value) { e.PutI64(v.Int()) }
		c.dec = func(d *Decoder, v reflect.Value) { v.SetInt(d.I64()) }
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		c.enc = func(e *Encoder, v reflect.Value) { e.PutU64(v.Uint()) }
		c.dec = func(d *Decoder, v reflect.Value) { v.SetUint(d.U64()) }
	case reflect.Float32, reflect.Float64:
		c.enc = func(e *Encoder, v reflect.Value) { e.PutF64(v.Float()) }
		c.dec = func(d *Decoder, v reflect.Value) { v.SetFloat(d.F64()) }
	case reflect.Complex64, reflect.Complex128:
		c.enc = func(e *Encoder, v reflect.Value) {
			x := v.Complex()
			e.PutF64(real(x))
			e.PutF64(imag(x))
		}
		c.dec = func(d *Decoder, v reflect.Value) {
			re := d.F64()
			im := d.F64()
			v.SetComplex(complex(re, im))
		}
	case reflect.String:
		c.enc = func(e *Encoder, v reflect.Value) { e.PutString(v.String()) }
		c.dec = func(d *Decoder, v reflect.Value) { v.SetString(d.String()) }
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			// Fast path: []byte and named variants.
			c.enc = func(e *Encoder, v reflect.Value) { e.PutBytes(v.Bytes()) }
			c.dec = func(d *Decoder, v reflect.Value) {
				b := d.Bytes()
				if len(b) == 0 {
					v.SetZero()
					return
				}
				out := reflect.MakeSlice(t, len(b), len(b))
				reflect.Copy(out, reflect.ValueOf(b))
				v.Set(out)
			}
			break
		}
		ec, err := buildCodec(t.Elem(), building)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", t, err)
		}
		c.enc = func(e *Encoder, v reflect.Value) {
			n := v.Len()
			e.PutUvarint(uint64(n))
			for i := 0; i < n; i++ {
				ec.enc(e, v.Index(i))
			}
		}
		c.dec = func(d *Decoder, v reflect.Value) {
			n64 := d.Uvarint()
			if d.Err() != nil {
				return
			}
			if n64 == 0 {
				v.SetZero()
				return
			}
			// Guard against hostile lengths before converting to int:
			// never pre-allocate more elements than bytes remaining (a
			// 2^64-scale length would wrap negative as an int and slip
			// past a post-conversion check).
			if n64 > uint64(d.Remaining())+1 {
				d.fail()
				return
			}
			n := int(n64)
			out := reflect.MakeSlice(t, n, n)
			for i := 0; i < n && d.Err() == nil; i++ {
				ec.dec(d, out.Index(i))
			}
			v.Set(out)
		}
	case reflect.Array:
		ec, err := buildCodec(t.Elem(), building)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", t, err)
		}
		n := t.Len()
		c.enc = func(e *Encoder, v reflect.Value) {
			for i := 0; i < n; i++ {
				ec.enc(e, v.Index(i))
			}
		}
		c.dec = func(d *Decoder, v reflect.Value) {
			for i := 0; i < n && d.Err() == nil; i++ {
				ec.dec(d, v.Index(i))
			}
		}
	case reflect.Map:
		kc, err := buildCodec(t.Key(), building)
		if err != nil {
			return nil, fmt.Errorf("%v key: %w", t, err)
		}
		vc, err := buildCodec(t.Elem(), building)
		if err != nil {
			return nil, fmt.Errorf("%v value: %w", t, err)
		}
		c.enc = func(e *Encoder, v reflect.Value) {
			n := v.Len()
			e.PutUvarint(uint64(n))
			// Deterministic order: encode each key, sort the encodings.
			type kv struct {
				kb  []byte
				val reflect.Value
			}
			pairs := make([]kv, 0, n)
			it := v.MapRange()
			for it.Next() {
				ke := NewEncoder(nil)
				kc.enc(ke, it.Key())
				pairs = append(pairs, kv{ke.Bytes(), it.Value()})
			}
			sort.Slice(pairs, func(i, j int) bool {
				return string(pairs[i].kb) < string(pairs[j].kb)
			})
			for _, p := range pairs {
				e.PutRaw(p.kb)
				vc.enc(e, p.val)
			}
		}
		c.dec = func(d *Decoder, v reflect.Value) {
			n64 := d.Uvarint()
			if d.Err() != nil {
				return
			}
			if n64 == 0 {
				v.SetZero()
				return
			}
			// Same pre-conversion hostile-length guard as the slice path.
			if n64 > uint64(d.Remaining())+1 {
				d.fail()
				return
			}
			n := int(n64)
			out := reflect.MakeMapWithSize(t, n)
			kt, vt := t.Key(), t.Elem()
			for i := 0; i < n && d.Err() == nil; i++ {
				kp := reflect.New(kt).Elem()
				vp := reflect.New(vt).Elem()
				kc.dec(d, kp)
				vc.dec(d, vp)
				if d.Err() == nil {
					out.SetMapIndex(kp, vp)
				}
			}
			v.Set(out)
		}
	case reflect.Pointer:
		ec, err := buildCodec(t.Elem(), building)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", t, err)
		}
		c.enc = func(e *Encoder, v reflect.Value) {
			if v.IsNil() {
				e.PutU8(0)
				return
			}
			e.PutU8(1)
			ec.enc(e, v.Elem())
		}
		c.dec = func(d *Decoder, v reflect.Value) {
			if d.U8() == 0 {
				v.SetZero()
				return
			}
			p := reflect.New(t.Elem())
			ec.dec(d, p.Elem())
			v.Set(p)
		}
	case reflect.Struct:
		type fieldCodec struct {
			idx int
			c   *codec
		}
		var fields []fieldCodec
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			fc, err := buildCodec(f.Type, building)
			if err != nil {
				return nil, fmt.Errorf("%v.%s: %w", t, f.Name, err)
			}
			fields = append(fields, fieldCodec{i, fc})
		}
		c.enc = func(e *Encoder, v reflect.Value) {
			for _, f := range fields {
				f.c.enc(e, v.Field(f.idx))
			}
		}
		c.dec = func(d *Decoder, v reflect.Value) {
			for _, f := range fields {
				if d.Err() != nil {
					return
				}
				f.c.dec(d, v.Field(f.idx))
			}
		}
	default:
		return nil, fmt.Errorf("serial: unsupported kind %v (%v)", t.Kind(), t)
	}
	return c, nil
}
