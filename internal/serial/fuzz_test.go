package serial

import (
	"bytes"
	"math"
	"testing"
)

// Fuzz targets for the codec layer: the Encoder/Decoder primitive pairs
// and the reflective Marshal/Unmarshal of the scalar-slice payloads RMA
// and views ship. Seed corpora run as plain tests in short mode; CI runs
// a -fuzz smoke window on top (Makefile fuzz-smoke).

// FuzzEncoderDecoder round-trips a mixed primitive sequence through the
// hand-rolled wire layer.
func FuzzEncoderDecoder(f *testing.F) {
	f.Add(uint64(0), int64(0), 0.0, "", []byte{})
	f.Add(uint64(1<<63), int64(-1), math.Inf(-1), "hello", []byte{1, 2, 3})
	f.Add(uint64(12345), int64(1<<40), 3.5e300, "unicode: héllo", bytes.Repeat([]byte{0xaa}, 100))
	f.Fuzz(func(t *testing.T, u uint64, i int64, fl float64, s string, b []byte) {
		e := NewEncoder(nil)
		e.PutU64(u)
		e.PutI64(i)
		e.PutF64(fl)
		e.PutString(s)
		e.PutBytes(b)
		e.PutUvarint(u)
		d := NewDecoder(e.Bytes())
		if got := d.U64(); got != u {
			t.Fatalf("U64: %d != %d", got, u)
		}
		if got := d.I64(); got != i {
			t.Fatalf("I64: %d != %d", got, i)
		}
		if got := d.F64(); got != fl && !(math.IsNaN(got) && math.IsNaN(fl)) {
			t.Fatalf("F64: %v != %v", got, fl)
		}
		if got := d.String(); got != s {
			t.Fatalf("String: %q != %q", got, s)
		}
		if got := d.Bytes(); !bytes.Equal(got, b) {
			t.Fatalf("Bytes: % x != % x", got, b)
		}
		if got := d.Uvarint(); got != u {
			t.Fatalf("Uvarint: %d != %d", got, u)
		}
		if err := d.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
	})
}

// FuzzScalarSliceRoundTrip reinterprets fuzzer bytes as the scalar slices
// RMA payloads use, marshals them through the reflective codec, and
// requires an exact round trip.
func FuzzScalarSliceRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := FromBytes[float64](data[:len(data)&^7])
		b, err := Marshal(fs)
		if err != nil {
			t.Fatalf("marshal []float64: %v", err)
		}
		var back []float64
		if err := Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal []float64: %v", err)
		}
		if len(back) != len(fs) {
			t.Fatalf("length %d != %d", len(back), len(fs))
		}
		for i := range fs {
			if math.Float64bits(back[i]) != math.Float64bits(fs[i]) {
				t.Fatalf("[%d] %x != %x", i, math.Float64bits(back[i]), math.Float64bits(fs[i]))
			}
		}
		us := FromBytes[uint32](data[:len(data)&^3])
		b2, err := Marshal(us)
		if err != nil {
			t.Fatalf("marshal []uint32: %v", err)
		}
		var back2 []uint32
		if err := Unmarshal(b2, &back2); err != nil {
			t.Fatalf("unmarshal []uint32: %v", err)
		}
		for i := range us {
			if back2[i] != us[i] {
				t.Fatalf("u32[%d] %d != %d", i, back2[i], us[i])
			}
		}
	})
}

// FuzzUnmarshalArbitrary throws raw bytes at decoders for the common
// payload shapes; they must fail cleanly (no crash, no huge allocation)
// or produce a value that re-encodes canonically.
func FuzzUnmarshalArbitrary(f *testing.F) {
	good, _ := Marshal([]float64{1, 2, 3})
	f.Add(good)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1}) // hostile length
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fs []float64
		if err := Unmarshal(data, &fs); err == nil {
			re, err := Marshal(fs)
			if err != nil || !bytes.Equal(re, data) {
				t.Fatalf("accepted []float64 not canonical: % x -> % x (%v)", data, re, err)
			}
		}
		// Maps are not byte-canonical on decode (duplicate keys in the
		// input collapse), but re-encoding must reach a fixed point.
		var m map[uint32]int64
		if err := Unmarshal(data, &m); err == nil {
			re, err := Marshal(m)
			if err != nil {
				t.Fatalf("re-encode of accepted map: %v", err)
			}
			var m2 map[uint32]int64
			if err := Unmarshal(re, &m2); err != nil {
				t.Fatalf("re-decode of accepted map: %v", err)
			}
			re2, err := Marshal(m2)
			if err != nil || !bytes.Equal(re, re2) {
				t.Fatalf("map encoding not a fixed point: % x -> % x (%v)", re, re2, err)
			}
		}
	})
}
