package serial

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.PutU8(0xab)
	e.PutBool(true)
	e.PutU16(0xbeef)
	e.PutU32(0xdeadbeef)
	e.PutU64(0x0123456789abcdef)
	e.PutI64(-42)
	e.PutF64(math.Pi)
	e.PutF32(2.5)
	e.PutUvarint(300)
	e.PutBytes([]byte("hello"))
	e.PutString("world")

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !d.Bool() {
		t.Error("Bool = false")
	}
	if got := d.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F32(); got != 2.5 {
		t.Errorf("F32 = %v", got)
	}
	if got := d.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Bytes = %q", got)
	}
	if got := d.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64()
	if d.Err() != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", d.Err())
	}
	// Sticky error: further reads keep failing without panicking.
	if got := d.U32(); got != 0 {
		t.Errorf("read after error = %d", got)
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	e := NewEncoder(nil)
	e.PutU32(7)
	d := NewDecoder(e.Bytes())
	_ = d.U16()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish should report trailing bytes")
	}
}

type testStruct struct {
	A int32
	B string
	C []float64
	D map[string]uint16
	E *testStruct
	F [3]byte
	G bool
	h int // unexported: skipped
}

func TestMarshalStructRoundTrip(t *testing.T) {
	in := testStruct{
		A: -7,
		B: "nested",
		C: []float64{1.5, -2.25, math.Inf(1)},
		D: map[string]uint16{"x": 1, "y": 2},
		E: &testStruct{A: 9, B: "inner"},
		F: [3]byte{1, 2, 3},
		G: true,
		h: 99,
	}
	b, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var out testStruct
	if err := Unmarshal(b, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	in.h = 0 // not serialized
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestMarshalNilPointerAndEmpty(t *testing.T) {
	var in *int
	b, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal(nil *int): %v", err)
	}
	out := new(int)
	var outp *int = out
	if err := Unmarshal(b, &outp); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if outp != nil {
		t.Errorf("want nil pointer, got %v", outp)
	}

	b, err = Marshal([]int(nil))
	if err != nil {
		t.Fatalf("Marshal(nil slice): %v", err)
	}
	var s []int
	if err := Unmarshal(b, &s); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(s) != 0 {
		t.Errorf("want empty slice, got %v", s)
	}
}

func TestMarshalRejectsChannels(t *testing.T) {
	if _, err := Marshal(make(chan int)); err == nil {
		t.Fatal("Marshal(chan) should fail")
	}
	if _, err := Marshal(struct{ F func() }{}); err == nil {
		t.Fatal("Marshal(func field) should fail")
	}
}

func TestMarshalDeterministicMaps(t *testing.T) {
	m := map[int]string{}
	for i := 0; i < 50; i++ {
		m[i] = "v"
	}
	a, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		b, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatal("map encoding is not deterministic")
		}
	}
}

func TestUnmarshalHostileLength(t *testing.T) {
	// A slice header claiming 2^60 elements must not allocate.
	e := NewEncoder(nil)
	e.PutUvarint(1 << 60)
	var s []uint32
	if err := Unmarshal(e.Bytes(), &s); err == nil {
		t.Fatal("hostile length should fail")
	}
}

func TestDecodeIntoStreaming(t *testing.T) {
	buf, err := Marshal(int32(5))
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := AppendMarshal(buf, "tail")
	if err != nil {
		t.Fatal(err)
	}
	var i int32
	n, err := DecodeInto(buf2, &i)
	if err != nil || i != 5 {
		t.Fatalf("DecodeInto int32: %v %d", err, i)
	}
	var s string
	if _, err := DecodeInto(buf2[n:], &s); err != nil || s != "tail" {
		t.Fatalf("DecodeInto string: %v %q", err, s)
	}
}

// Property: arbitrary struct payloads survive a round trip.
func TestQuickRoundTrip(t *testing.T) {
	type payload struct {
		I   int64
		U   uint32
		F   float64
		S   string
		Bs  []byte
		Fs  []float32
		M   map[uint8]int16
		Arr [4]uint64
		P   *int32
	}
	f := func(in payload) bool {
		b, err := Marshal(in)
		if err != nil {
			return false
		}
		var out payload
		if err := Unmarshal(b, &out); err != nil {
			return false
		}
		// Normalize nil vs empty for DeepEqual.
		if len(in.Bs) == 0 {
			in.Bs = nil
		}
		if len(out.Bs) == 0 {
			out.Bs = nil
		}
		if len(in.Fs) == 0 {
			in.Fs = nil
		}
		if len(out.Fs) == 0 {
			out.Fs = nil
		}
		if len(in.M) == 0 {
			in.M = nil
		}
		if len(out.M) == 0 {
			out.M = nil
		}
		return reflect.DeepEqual(in, out)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: encoded size equals EncodedSize.
func TestQuickEncodedSize(t *testing.T) {
	f := func(s string, xs []int32) bool {
		type rec struct {
			S  string
			Xs []int32
		}
		v := rec{s, xs}
		b, err := Marshal(v)
		if err != nil {
			return false
		}
		n, err := EncodedSize(v)
		return err == nil && n == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAsBytesFromBytes(t *testing.T) {
	fs := []float64{1, 2, 3.5}
	b := AsBytes(fs)
	if len(b) != 24 {
		t.Fatalf("AsBytes len = %d", len(b))
	}
	back := FromBytes[float64](b)
	if !reflect.DeepEqual(fs, back) {
		t.Errorf("FromBytes = %v", back)
	}
	// Mutation through the byte view is visible (aliasing).
	b[0] ^= 0xff
	if fs[0] == 1 {
		t.Error("AsBytes should alias the source")
	}

	if got := FromBytes[uint32](nil); got != nil {
		t.Errorf("FromBytes(nil) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("FromBytes with misaligned length should panic")
		}
	}()
	FromBytes[uint64](make([]byte, 12))
}

func TestCopyScalars(t *testing.T) {
	in := []int32{1, 2, 3}
	out := CopyScalars(in)
	out[0] = 99
	if in[0] != 1 {
		t.Error("CopyScalars should not alias")
	}
}

func TestSizeOf(t *testing.T) {
	cases := map[string]struct {
		got, want int
	}{
		"bool":    {SizeOf[bool](), 1},
		"int16":   {SizeOf[int16](), 2},
		"uint32":  {SizeOf[uint32](), 4},
		"float64": {SizeOf[float64](), 8},
		"cplx128": {SizeOf[complex128](), 16},
	}
	for name, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: SizeOf = %d, want %d", name, c.got, c.want)
		}
	}
}

type customWire struct {
	N int
}

func (c customWire) MarshalSerial(e *Encoder) { e.PutUvarint(uint64(c.N * 2)) }
func (c *customWire) UnmarshalSerial(d *Decoder) {
	c.N = int(d.Uvarint() / 2)
}

func TestCustomMarshaler(t *testing.T) {
	in := customWire{N: 21}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out customWire
	if err := Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 21 {
		t.Errorf("custom round trip = %d", out.N)
	}
	// Nested inside a struct.
	type holder struct{ C customWire }
	b2, err := Marshal(holder{customWire{7}})
	if err != nil {
		t.Fatal(err)
	}
	var h holder
	if err := Unmarshal(b2, &h); err != nil {
		t.Fatal(err)
	}
	if h.C.N != 7 {
		t.Errorf("nested custom round trip = %d", h.C.N)
	}
}
