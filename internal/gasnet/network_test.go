package gasnet

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"
)

func pollUntil(t *testing.T, ep *Endpoint, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		ep.Poll()
		if time.Now().After(deadline) {
			t.Fatal("pollUntil timed out")
		}
	}
}

func TestPutDelivers(t *testing.T) {
	n := NewNetwork(Config{Ranks: 2, SegmentSize: 1 << 12})
	defer n.Close()
	src := n.Endpoint(0)
	dst := n.Endpoint(1)
	off, err := dst.Segment().Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	acked := false
	src.Put(1, off, data, func() { acked = true })
	pollUntil(t, src, func() bool { return acked })
	got := dst.Segment().Bytes(off, 8)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
	st := src.Stats()
	if st.Puts != 1 || st.PutBytes != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutSourceReusableImmediately(t *testing.T) {
	n := NewNetwork(Config{Ranks: 2})
	defer n.Close()
	src := n.Endpoint(0)
	dst := n.Endpoint(1)
	off, _ := dst.Segment().Alloc(4)
	buf := []byte{9, 9, 9, 9}
	done := false
	src.Put(1, off, buf, func() { done = true })
	buf[0] = 0 // must not affect the transfer
	pollUntil(t, src, func() bool { return done })
	if dst.Segment().Bytes(off, 4)[0] != 9 {
		t.Fatal("put observed source mutation after injection")
	}
}

func TestGetDelivers(t *testing.T) {
	n := NewNetwork(Config{Ranks: 2})
	defer n.Close()
	a := n.Endpoint(0)
	b := n.Endpoint(1)
	off, _ := b.Segment().Alloc(8)
	binary.LittleEndian.PutUint64(b.Segment().Bytes(off, 8), 0xfeed)
	dst := make([]byte, 8)
	done := false
	a.Get(1, off, dst, func() { done = true })
	pollUntil(t, a, func() bool { return done })
	if got := binary.LittleEndian.Uint64(dst); got != 0xfeed {
		t.Fatalf("get = %#x", got)
	}
}

func TestAMRequiresAttentiveness(t *testing.T) {
	n := NewNetwork(Config{Ranks: 2})
	defer n.Close()
	executed := false
	h := n.RegisterAM(func(ep *Endpoint, src Rank, payload []byte, aux any) {
		executed = true
		if src != 0 {
			t.Errorf("src = %d", src)
		}
		if string(payload) != "ping" {
			t.Errorf("payload = %q", payload)
		}
		if aux.(int) != 42 {
			t.Errorf("aux = %v", aux)
		}
	})
	n.Endpoint(0).AM(1, h, []byte("ping"), 42)
	// The AM must not run until the target polls.
	time.Sleep(time.Millisecond)
	if executed {
		t.Fatal("AM executed without target attentiveness")
	}
	pollUntil(t, n.Endpoint(1), func() bool { return executed })
}

func TestAMPayloadCaptured(t *testing.T) {
	n := NewNetwork(Config{Ranks: 2})
	defer n.Close()
	var got []byte
	h := n.RegisterAM(func(ep *Endpoint, src Rank, payload []byte, _ any) {
		got = append([]byte(nil), payload...)
	})
	buf := []byte{7}
	n.Endpoint(0).AM(1, h, buf, nil)
	buf[0] = 0 // mutation after send must not be visible
	pollUntil(t, n.Endpoint(1), func() bool { return got != nil })
	if got[0] != 7 {
		t.Fatal("AM payload not captured at injection")
	}
}

func TestAMOFetchAdd(t *testing.T) {
	n := NewNetwork(Config{Ranks: 2})
	defer n.Close()
	a := n.Endpoint(0)
	b := n.Endpoint(1)
	off, _ := b.Segment().Alloc(8)
	b.Segment().WriteU64(off, 100)
	var old uint64
	done := false
	a.AMO(1, off, AMOAdd, 5, 0, func(o uint64) { old = o; done = true })
	pollUntil(t, a, func() bool { return done })
	if old != 100 {
		t.Errorf("old = %d", old)
	}
	if got := b.Segment().ReadU64(off); got != 105 {
		t.Errorf("value = %d", got)
	}
}

func TestAMOConcurrentFetchAdd(t *testing.T) {
	// Many ranks hammer one counter; the final value must be exact
	// (NIC-offloaded atomics are serialized at the target).
	const ranks = 8
	const each = 200
	n := NewNetwork(Config{Ranks: ranks})
	defer n.Close()
	tgt := n.Endpoint(0)
	off, _ := tgt.Segment().Alloc(8)
	var wg sync.WaitGroup
	for r := 1; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := n.Endpoint(Rank(r))
			remaining := each
			ep2 := ep
			for i := 0; i < each; i++ {
				ep.AMO(0, off, AMOAdd, 1, 0, func(uint64) { remaining-- })
			}
			for remaining > 0 {
				ep2.Poll()
			}
		}(r)
	}
	wg.Wait()
	if got := tgt.Segment().ReadU64(off); got != (ranks-1)*each {
		t.Fatalf("counter = %d, want %d", got, (ranks-1)*each)
	}
}

func TestPollCompletionsDoesNotRunAMs(t *testing.T) {
	n := NewNetwork(Config{Ranks: 2})
	defer n.Close()
	ran := false
	h := n.RegisterAM(func(*Endpoint, Rank, []byte, any) { ran = true })
	n.Endpoint(0).AM(1, h, nil, nil)
	tgt := n.Endpoint(1)
	deadline := time.Now().Add(time.Second)
	for !tgt.Pending() && time.Now().Before(deadline) {
	}
	tgt.PollCompletions()
	if ran {
		t.Fatal("PollCompletions executed an AM handler")
	}
	pollUntil(t, tgt, func() bool { return ran })
}

func TestRecursivePollAMsIsNoop(t *testing.T) {
	n := NewNetwork(Config{Ranks: 1})
	defer n.Close()
	ep := n.Endpoint(0)
	depth := 0
	var h HandlerID
	h = n.RegisterAM(func(ep *Endpoint, src Rank, payload []byte, _ any) {
		depth++
		if depth > 1 {
			t.Error("handler re-entered")
		}
		// A recursive poll from handler context must be a no-op.
		if got := ep.PollAMs(); got != 0 {
			t.Errorf("recursive PollAMs = %d", got)
		}
		depth--
	})
	ep.AM(0, h, nil, nil)
	ep.AM(0, h, nil, nil)
	pollUntil(t, ep, func() bool { return !ep.Pending() })
}

func TestNodeMapping(t *testing.T) {
	n := NewNetwork(Config{Ranks: 8, RanksPerNode: 4})
	defer n.Close()
	if n.Node(0) != 0 || n.Node(3) != 0 || n.Node(4) != 1 || n.Node(7) != 1 {
		t.Fatal("node mapping wrong")
	}
	if !n.Intra(0, 3) || n.Intra(3, 4) {
		t.Fatal("intra detection wrong")
	}
}

func TestRealtimeModelLatency(t *testing.T) {
	// With a LogGP model installed, a put round trip must take at least
	// o + gap + L + L(ack).
	model := &LogGP{O: 10 * time.Microsecond, L: 30 * time.Microsecond, Gp: 5 * time.Microsecond}
	n := NewNetwork(Config{Ranks: 2, RanksPerNode: 1, Model: model})
	defer n.Close()
	src := n.Endpoint(0)
	dst := n.Endpoint(1)
	off, _ := dst.Segment().Alloc(8)
	min := 10*time.Microsecond + 5*time.Microsecond + 2*30*time.Microsecond
	// The lower bound is a hard model property; the upper bound depends
	// on OS scheduling, so take the best of several round trips before
	// declaring the engine wildly slow.
	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		done := false
		t0 := time.Now()
		src.Put(1, off, make([]byte, 8), func() { done = true })
		for !done {
			src.Poll()
		}
		elapsed := time.Since(t0)
		if elapsed < min {
			t.Fatalf("round trip %v faster than model minimum %v", elapsed, min)
		}
		if elapsed < best {
			best = elapsed
		}
	}
	if best > 100*min {
		t.Fatalf("best round trip %v wildly slower than model minimum %v", best, min)
	}
}

func TestRealtimeBandwidthGap(t *testing.T) {
	// Flooding k messages must take at least k * gap at the source NIC.
	model := &LogGP{Gp: 20 * time.Microsecond, L: time.Microsecond}
	n := NewNetwork(Config{Ranks: 2, RanksPerNode: 1, Model: model})
	defer n.Close()
	src := n.Endpoint(0)
	dst := n.Endpoint(1)
	off, _ := dst.Segment().Alloc(8)
	const k = 10
	remaining := k
	t0 := time.Now()
	for i := 0; i < k; i++ {
		src.Put(1, off, make([]byte, 8), func() { remaining-- })
	}
	for remaining > 0 {
		src.Poll()
	}
	if elapsed := time.Since(t0); elapsed < k*20*time.Microsecond {
		t.Fatalf("flood of %d took %v, less than NIC serialization %v", k, elapsed, k*20*time.Microsecond)
	}
}

func TestRegisterAMAfterTrafficPanicsOnUnknown(t *testing.T) {
	n := NewNetwork(Config{Ranks: 1})
	defer n.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("unregistered handler should panic at dispatch")
		}
	}()
	n.Endpoint(0).AM(0, HandlerID(99), nil, nil)
	for i := 0; i < 100; i++ {
		n.Endpoint(0).Poll()
	}
}
