package gasnet

// Lock-free SPSC doorbell ring over shared memory.
//
// Each rank's mmap'd file holds one ring region per producer rank:
// ring i in rank r's file is written only by rank i (the producer) and
// drained only by rank r (the consumer). Within one producer process a
// local mutex serializes concurrent pushers, so cross-process access
// stays single-producer/single-consumer.
//
// Layout of a ring region (ringBytes total):
//
//	+0    head  u64   (producer cursor; monotonically increasing)
//	+64   tail  u64   (consumer cursor; separate cache line)
//	+128  data  [ringCap]byte
//
// Records are `u32 len | body` where body is a transport frame body
// (no socket length prefix). A wrapMark length means "skip to the next
// wrap"; a pad too small to hold the 4-byte marker is skipped
// implicitly by position arithmetic.
//
// Doorbell protocol (resolves the lost-wakeup race): the producer
// STORES the new head, then LOADS tail; if tail still equals the
// pre-push head, the consumer may have gone (or may be going) to
// sleep having seen no work, so the producer sends an fRing doorbell
// over the socket. Both sides use seq-cst atomics, so either the
// consumer's final head-load observes the new head, or the producer's
// tail-load observes the caught-up tail and rings.

import (
	"sync/atomic"
	"unsafe"
)

const (
	ringBytes  = 1 << 16
	ringHdr    = 128
	ringCap    = ringBytes - ringHdr
	ringMaxRec = 4096 // max body bytes per record; larger frames fall back to the socket
)

const wrapMark = ^uint32(0)

type shmRing struct {
	head *uint64
	tail *uint64
	data []byte
}

func mapRing(region []byte) *shmRing {
	if len(region) < ringBytes {
		panic("gasnet: shm ring region too small")
	}
	return &shmRing{
		head: (*uint64)(unsafe.Pointer(&region[0])),
		tail: (*uint64)(unsafe.Pointer(&region[64])),
		data: region[ringHdr:ringBytes],
	}
}

func ringPutU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func ringGetU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// push appends one record. Returns (pushed, needBell): pushed=false
// means the ring is full (caller falls back to the socket);
// needBell=true means the consumer may be idle and the caller must
// send a doorbell frame over the socket.
func (r *shmRing) push(body []byte) (pushed, needBell bool) {
	n := len(body)
	if n == 0 || n > ringMaxRec {
		return false, false
	}
	need := 4 + n
	h0 := atomic.LoadUint64(r.head)
	tail := atomic.LoadUint64(r.tail)
	free := ringCap - int(h0-tail)
	pos := int(h0 % ringCap)
	avail := ringCap - pos
	pad := 0
	if avail < need {
		// Not enough contiguous room: pad to the wrap point.
		pad = avail
		if free < pad+need {
			return false, false
		}
		if avail >= 4 {
			ringPutU32(r.data[pos:], wrapMark)
		}
		pos = 0
	} else if free < need {
		return false, false
	}
	ringPutU32(r.data[pos:], uint32(n))
	copy(r.data[pos+4:], body)
	atomic.StoreUint64(r.head, h0+uint64(pad+need))
	// Store-then-load: if the consumer has already drained everything
	// we pushed before (tail caught up to h0), it may be about to
	// sleep without seeing this record — ring the socket doorbell.
	if atomic.LoadUint64(r.tail) == h0 {
		needBell = true
	}
	return true, needBell
}

// drain consumes all available records, invoking fn on each body. The
// body slice aliases shared memory and is only valid during fn; fn
// must copy anything it retains (decodeFrameBody aliases, so drain
// copies records out first).
func (r *shmRing) drain(fn func(body []byte)) int {
	count := 0
	tail := atomic.LoadUint64(r.tail)
	for {
		head := atomic.LoadUint64(r.head)
		if tail == head {
			break
		}
		pos := int(tail % ringCap)
		avail := ringCap - pos
		if avail < 4 {
			// Implicit pad: too small for a marker.
			tail += uint64(avail)
			atomic.StoreUint64(r.tail, tail)
			continue
		}
		n := ringGetU32(r.data[pos:])
		if n == wrapMark {
			tail += uint64(avail)
			atomic.StoreUint64(r.tail, tail)
			continue
		}
		if n == 0 || n > ringMaxRec || pos+4+int(n) > ringCap {
			// Corrupt record: resynchronize by draining to head. The
			// transport layers a validity check on each decoded body,
			// so corruption surfaces as a transport failure there.
			atomic.StoreUint64(r.tail, head)
			return count
		}
		body := make([]byte, n)
		copy(body, r.data[pos+4:pos+4+int(n)])
		tail += uint64(4 + n)
		atomic.StoreUint64(r.tail, tail)
		fn(body)
		count++
	}
	return count
}
