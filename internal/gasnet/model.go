// Package gasnet is the communication substrate of this reproduction — the
// role GASNet-EX plays under UPC++ in the paper. It provides, per rank:
// a registered shared-memory segment, one-sided RMA put/get executed by a
// simulated NIC without target CPU involvement, Active Messages delivered
// into a queue that the target drains when it polls (attentiveness, §III of
// the paper), and NIC-offloaded remote atomics (as on Cray Aries).
//
// Ranks live in one OS process, but all traffic crosses the simulated
// network as bytes: the package never hands one rank a pointer into
// another rank's Go heap, only into registered segments (the PGAS memory),
// which is exactly the RDMA contract.
//
// Timing is pluggable. The NoDelay model delivers immediately and is meant
// for tests; the LogGP model charges Aries-calibrated injection overhead,
// per-message gap, per-byte cost and wire latency, enforced in real time by
// a delivery engine with sub-microsecond spin precision, so that
// microbenchmarks over this conduit exhibit the latency/bandwidth structure
// the paper measures.
package gasnet

import "time"

// Model describes the cost of moving a message of n payload bytes between
// two ranks. intra reports whether the ranks share a node (shared-memory
// bypass on the real system).
type Model interface {
	// Overhead is the initiator CPU time consumed injecting the message
	// (LogGP "o"). It is charged synchronously on the calling goroutine.
	Overhead(n int, intra bool) time.Duration
	// Gap is the NIC occupancy per message (LogGP "g" plus n*G): the
	// reciprocal of achievable message rate / bandwidth.
	Gap(n int, intra bool) time.Duration
	// Latency is the one-way wire time from NIC injection to delivery
	// (LogGP "L").
	Latency(n int, intra bool) time.Duration
}

// NoDelay is the zero-cost model: every operation is delivered as soon as
// the machinery can process it. Semantics-preserving, used by tests.
type NoDelay struct{}

func (NoDelay) Overhead(int, bool) time.Duration { return 0 }
func (NoDelay) Gap(int, bool) time.Duration      { return 0 }
func (NoDelay) Latency(int, bool) time.Duration  { return 0 }

// LogGP is a LogGP-family cost model with distinct inter- and intra-node
// parameters. Per-byte costs are fractional nanoseconds, so they are kept
// as float64 ns/byte rather than time.Duration.
type LogGP struct {
	// Inter-node (network) parameters.
	O       time.Duration // per-message send overhead (CPU)
	L       time.Duration // one-way wire latency
	GNsPerB float64       // per-byte time in ns (inverse bandwidth)
	Gp      time.Duration // per-message gap (inverse message rate)

	// Intra-node (shared memory) parameters.
	IntraO       time.Duration
	IntraL       time.Duration
	IntraGNsPerB float64
	IntraGp      time.Duration
}

func (m *LogGP) Overhead(n int, intra bool) time.Duration {
	if intra {
		return m.IntraO
	}
	return m.O
}

func (m *LogGP) Gap(n int, intra bool) time.Duration {
	if intra {
		return m.IntraGp + time.Duration(float64(n)*m.IntraGNsPerB)
	}
	return m.Gp + time.Duration(float64(n)*m.GNsPerB)
}

func (m *LogGP) Latency(n int, intra bool) time.Duration {
	if intra {
		return m.IntraL
	}
	return m.L
}

// Aries returns a LogGP model calibrated to the paper's testbed, the Cray
// Aries network of the Cori XC40 (Haswell partition), as seen through
// GASNet-EX's aries-conduit:
//
//   - small blocking put round trip ~1.5 microseconds,
//   - peak per-NIC put bandwidth ~10 GB/s,
//   - message rate ~8 M msg/s.
//
// The absolute values matter less than the structure (see DESIGN.md §4):
// both UPC++ and the MPI baseline run over this same model, and the
// differences the paper reports come from the software layered above it.
func Aries() *LogGP {
	return &LogGP{
		O:       180 * time.Nanosecond,
		L:       550 * time.Nanosecond,
		GNsPerB: 0.095, // ~10.5 GB/s
		Gp:      125 * time.Nanosecond,

		IntraO:       60 * time.Nanosecond,
		IntraL:       120 * time.Nanosecond,
		IntraGNsPerB: 0.025, // ~40 GB/s via shared memory
		IntraGp:      30 * time.Nanosecond,
	}
}

// AriesKNL returns the Aries model adjusted for the slower KNL cores of
// Cori's second partition: the wire is identical, but per-message CPU
// overheads roughly triple (1.4 GHz in-order cores vs 2.3 GHz Haswell).
func AriesKNL() *LogGP {
	m := Aries()
	m.O *= 3
	m.IntraO *= 3
	m.Gp *= 2
	m.IntraGp *= 2
	return m
}
