package gasnet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentAllocFree(t *testing.T) {
	s := NewSegment(1 << 12)
	a, err := s.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if s.LiveAllocs() != 2 {
		t.Fatalf("LiveAllocs = %d", s.LiveAllocs())
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(b); err != nil {
		t.Fatal(err)
	}
	if got := s.FreeBytes(); got != 1<<12 {
		t.Fatalf("FreeBytes after full free = %d", got)
	}
	if s.LiveAllocs() != 0 {
		t.Fatalf("LiveAllocs = %d", s.LiveAllocs())
	}
}

func TestSegmentAlignment(t *testing.T) {
	s := NewSegment(1 << 12)
	for i := 0; i < 10; i++ {
		off, err := s.Alloc(3)
		if err != nil {
			t.Fatal(err)
		}
		if off%segAlign != 0 {
			t.Fatalf("allocation %d misaligned: %d", i, off)
		}
	}
}

func TestSegmentExhaustion(t *testing.T) {
	s := NewSegment(64)
	if _, err := s.Alloc(65); err == nil {
		t.Fatal("over-size alloc should fail")
	}
	if _, err := s.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(1); err == nil {
		t.Fatal("alloc from full segment should fail")
	}
}

func TestSegmentDoubleFree(t *testing.T) {
	s := NewSegment(256)
	off, err := s.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(off); err == nil {
		t.Fatal("double free should fail")
	}
	if err := s.Free(9999); err == nil {
		t.Fatal("free of bogus offset should fail")
	}
}

func TestSegmentCoalescing(t *testing.T) {
	s := NewSegment(1 << 10)
	var offs []uint64
	for i := 0; i < 8; i++ {
		off, err := s.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// Free in interleaved order; blocks must coalesce back to one region.
	for _, i := range []int{1, 3, 5, 7, 0, 2, 4, 6} {
		if err := s.Free(offs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// After full coalescing a max-size allocation must succeed.
	if _, err := s.Alloc(1 << 10); err != nil {
		t.Fatalf("coalescing failed: %v", err)
	}
}

func TestSegmentBytesBounds(t *testing.T) {
	s := NewSegment(128)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds access should panic")
		}
	}()
	s.Bytes(120, 16)
}

// Property: a random alloc/free workload never hands out overlapping
// blocks and, once fully freed, restores the whole segment.
func TestQuickAllocatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const segSize = 1 << 14
		s := NewSegment(segSize)
		type alloc struct {
			off  uint64
			size int
		}
		var live []alloc
		overlaps := func(a, b alloc) bool {
			aEnd := a.off + uint64((a.size+segAlign-1)&^(segAlign-1))
			bEnd := b.off + uint64((b.size+segAlign-1)&^(segAlign-1))
			return a.off < bEnd && b.off < aEnd
		}
		for step := 0; step < 200; step++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				size := 1 + rng.Intn(500)
				off, err := s.Alloc(size)
				if err != nil {
					continue // exhaustion is legal
				}
				na := alloc{off, size}
				for _, a := range live {
					if overlaps(na, a) {
						return false
					}
				}
				live = append(live, na)
			} else {
				i := rng.Intn(len(live))
				if err := s.Free(live[i].off); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		for _, a := range live {
			if err := s.Free(a.off); err != nil {
				return false
			}
		}
		return s.FreeBytes() == segSize && s.LiveAllocs() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAMOOps(t *testing.T) {
	s := NewSegment(64)
	s.WriteU64(0, 10)
	cases := []struct {
		op       AMOOp
		a, b     uint64
		wantOld  uint64
		wantnext uint64
	}{
		{AMOLoad, 0, 0, 10, 10},
		{AMOAdd, 5, 0, 10, 15},
		{AMOAnd, 0b1100, 0, 15, 12},
		{AMOOr, 0b0001, 0, 12, 13},
		{AMOXor, 0b0100, 0, 13, 9},
		{AMOStore, 100, 0, 9, 100},
		{AMOCompSwap, 100, 7, 100, 7}, // matches: swap
		{AMOCompSwap, 100, 55, 7, 7},  // no match: unchanged
		{AMOMax, 50, 0, 7, 50},
		{AMOMin, 3, 0, 50, 3},
	}
	for i, c := range cases {
		old := s.applyAMO(0, c.op, c.a, c.b)
		if old != c.wantOld {
			t.Errorf("case %d (%v): old = %d, want %d", i, c.op, old, c.wantOld)
		}
		if got := s.ReadU64(0); got != c.wantnext {
			t.Errorf("case %d (%v): next = %d, want %d", i, c.op, got, c.wantnext)
		}
	}
}

func TestAMOSignedMinMax(t *testing.T) {
	s := NewSegment(64)
	neg5, neg7 := int64(-5), int64(-7)
	s.WriteU64(8, uint64(neg5))
	// Signed max(-5, 3) = 3.
	if old := s.applyAMO(8, AMOMax, uint64(int64(3)), 0); int64(old) != -5 {
		t.Errorf("old = %d", int64(old))
	}
	if got := int64(s.ReadU64(8)); got != 3 {
		t.Errorf("signed max result = %d", got)
	}
	// Signed min(3, -7) = -7.
	s.applyAMO(8, AMOMin, uint64(neg7), 0)
	if got := int64(s.ReadU64(8)); got != -7 {
		t.Errorf("signed min result = %d", got)
	}
}

func TestAMOStringer(t *testing.T) {
	names := map[AMOOp]string{
		AMOLoad: "load", AMOStore: "store", AMOAdd: "add",
		AMOCompSwap: "cswap", AMOOp(200): "amo(200)",
	}
	for op, want := range names {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
}
