package gasnet

import (
	"testing"
	"time"
)

// TestEngineSoonerEventInterruptsSleep pins the delivery loop's wait
// behaviour: an event injected while the loop is asleep waiting for a
// far-future event, but due much sooner, must be delivered near its own
// due time. Before the interruptible wait, waitUntil did one
// uninterruptible time.Sleep to just short of the far deadline and only
// observed the version bump after the sleep returned, so the sooner event
// was delivered ~far-deadline late (here: at ~250ms instead of ~40ms).
func TestEngineSoonerEventInterruptsSleep(t *testing.T) {
	e := newEngine(1)
	defer e.stop()

	start := time.Now()
	far := start.Add(250 * time.Millisecond)
	farDone := make(chan struct{})
	e.schedule(far, func(time.Time) { close(farDone) })

	// Let the loop burn through its 200µs spin window and park in the
	// long sleep toward the far deadline.
	time.Sleep(20 * time.Millisecond)

	soon := start.Add(40 * time.Millisecond)
	soonDelivered := make(chan time.Time, 1)
	e.schedule(soon, func(time.Time) { soonDelivered <- time.Now() })

	select {
	case at := <-soonDelivered:
		if late := at.Sub(soon); late > 100*time.Millisecond {
			t.Fatalf("sooner event delivered %v late (due +40ms, delivered +%v after start)",
				late, at.Sub(start))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sooner event never delivered")
	}

	select {
	case <-farDone:
	case <-time.After(2 * time.Second):
		t.Fatal("far event never delivered")
	}
}
