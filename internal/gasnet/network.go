package gasnet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"upcxx/internal/obs"
)

// Rank identifies a process in a job, 0..Ranks-1.
type Rank = int32

// HandlerID names a registered Active Message handler. Handler tables are
// identical on every rank (SPMD: one binary), so IDs are valid network-wide.
type HandlerID uint16

// AMHandler is an Active Message handler. It runs on the target rank's
// goroutine during Poll, with the payload aliasing a network buffer that is
// only valid for the duration of the call — copy what must persist (this is
// the property upcxx::view exposes to users).
//
// aux is an opaque token that travels with the message but contributes no
// payload bytes: it models a code address (C++ function pointer / lambda
// invoker) which is valid on every rank because SPMD ranks share one
// binary. The runtime ships RPC invoker functions this way; user data must
// go through the payload.
type AMHandler func(ep *Endpoint, src Rank, payload []byte, aux any)

// Config describes a job.
type Config struct {
	Ranks        int
	RanksPerNode int   // 0 means all ranks share one node
	SegmentSize  int   // per-rank segment bytes; 0 means 8 MiB
	Model        Model // nil means NoDelay
	// DMA is the device copy-engine model used for transfers touching
	// device-kind segments. nil defaults to PCIe3 when Model is a
	// real-time model, NoDelayDMA otherwise; with a zero-delay network
	// model device hops are always instantaneous.
	DMA DMAModel
	// Obs, when non-nil, is the job's observability recorder (sized to
	// Ranks): the conduit records wire messages per peer, DMA
	// descriptors by hop kind, doorbell wakeups, and op-lifecycle hops
	// into it. nil disables all conduit-side recording.
	Obs *obs.Obs
	// Real, when non-nil, selects a real multi-process transport
	// backend ("tcp" or "shm") instead of the in-process conduit. The
	// network then hosts only Real.Rank's endpoint; Model must be nil.
	Real *RealConduit
	// Aux serializes AM aux tokens across process boundaries (required
	// for RPC over a real backend). Ignored by in-process backends.
	Aux AuxCodec
}

// DefaultSegmentSize is the per-rank segment size when Config leaves it 0.
const DefaultSegmentSize = 8 << 20

// Network couples the endpoints of one job. It owns the AM handler table
// and, when a timing model is installed, the delivery engine.
type Network struct {
	cfg      Config
	model    Model
	dma      DMAModel
	realtime bool
	gdr      bool // every endpoint's engine is GPUDirect-capable
	eps      []*Endpoint
	eng      *engine
	trans    *transport // real transport backend; nil = in-process conduit

	hmu      sync.Mutex
	handlers []AMHandler

	// DMA hop trace: when armed, every device copy-engine descriptor is
	// recorded so tests can prove a transfer path (e.g. that a
	// device-resident collective moved its payload exclusively through
	// the DMA channel, with zero host-staging copies).
	dmaTraceOn atomic.Bool
	dmaMu      sync.Mutex
	dmaTrace   []DMAHop

	closed atomic.Bool
}

// DMAHop records one device copy-engine descriptor: the rank whose
// engine executed it, the bytes it moved, and the memory kinds it
// bridged. The trace predates the obs subsystem and is kept for tests
// that assert on transfer paths; the per-kind descriptor *counters* now
// live in obs (see countDMA, which feeds both).
type DMAHop struct {
	Rank  Rank
	Bytes int
	Kind  obs.DMAKind
}

// TraceDMA arms (or disarms) the DMA hop trace, clearing any prior
// record. Tracing is for tests and tooling; it serializes descriptor
// accounting while armed.
func (n *Network) TraceDMA(on bool) {
	n.dmaMu.Lock()
	n.dmaTrace = nil
	n.dmaMu.Unlock()
	n.dmaTraceOn.Store(on)
}

// DMATrace returns a copy of the hops recorded since TraceDMA(true).
func (n *Network) DMATrace() []DMAHop {
	n.dmaMu.Lock()
	defer n.dmaMu.Unlock()
	out := make([]DMAHop, len(n.dmaTrace))
	copy(out, n.dmaTrace)
	return out
}

// NewNetwork creates the conduit for a job.
func NewNetwork(cfg Config) *Network {
	if cfg.Ranks <= 0 {
		panic("gasnet: Config.Ranks must be positive")
	}
	if cfg.SegmentSize == 0 {
		cfg.SegmentSize = DefaultSegmentSize
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = cfg.Ranks
	}
	model := cfg.Model
	_, realtime := model.(*LogGP)
	if model == nil {
		model = NoDelay{}
	}
	dma := cfg.DMA
	if dma == nil {
		if realtime {
			dma = PCIe3()
		} else {
			dma = NoDelayDMA{}
		}
	}
	if cfg.Obs != nil && cfg.Obs.Ranks() != cfg.Ranks {
		panic("gasnet: Config.Obs sized for a different job")
	}
	n := &Network{cfg: cfg, model: model, dma: dma, realtime: realtime, gdr: dma.GPUDirect()}
	n.eps = make([]*Endpoint, cfg.Ranks)
	if cfg.Real != nil {
		// Real multi-process backend: this process hosts exactly one
		// endpoint; every other rank is a separate OS process reached
		// through the transport. A timing model makes no sense here.
		if realtime {
			panic("gasnet: Config.Model must be nil with a real transport backend")
		}
		self := cfg.Real.Rank
		if self < 0 || self >= cfg.Ranks {
			panic(fmt.Sprintf("gasnet: Real.Rank %d out of range [0,%d)", self, cfg.Ranks))
		}
		n.eps[self] = &Endpoint{
			rank:   Rank(self),
			net:    n,
			seg:    NewSegment(cfg.SegmentSize),
			notify: make(chan struct{}, 1),
		}
		if cfg.Obs != nil {
			n.eps[self].ro = cfg.Obs.Rank(self)
		}
		t, err := newTransport(n, cfg.Real)
		if err != nil {
			panic(fmt.Sprintf("gasnet: transport bootstrap failed: %v", err))
		}
		n.trans = t
		return n
	}
	for r := 0; r < cfg.Ranks; r++ {
		n.eps[r] = &Endpoint{
			rank:   Rank(r),
			net:    n,
			seg:    NewSegment(cfg.SegmentSize),
			notify: make(chan struct{}, 1),
		}
		if cfg.Obs != nil {
			n.eps[r].ro = cfg.Obs.Rank(r)
		}
	}
	if realtime {
		n.eng = newEngine(cfg.Ranks)
	}
	return n
}

// Conduit names the active conduit backend: "model" for the in-process
// simulated conduit, or the real backend name ("tcp", "shm").
func (n *Network) Conduit() string {
	if n.trans != nil {
		return n.trans.backend
	}
	return "model"
}

// ConduitInfo snapshots the real backend's identity and wire counters;
// the zero value (Backend "model") is returned for in-process conduits.
func (n *Network) ConduitInfo() ConduitInfo {
	if n.trans != nil {
		return n.trans.info()
	}
	return ConduitInfo{Backend: "model", Ranks: n.cfg.Ranks}
}

// Failed reports a transport-level job failure (a peer process died):
// nil while healthy, an error wrapping ErrPeerLost after a peer is
// lost. In-process conduits never fail.
func (n *Network) Failed() error {
	if n.trans != nil {
		return n.trans.failure()
	}
	return nil
}

// Ranks returns the job size.
func (n *Network) Ranks() int { return n.cfg.Ranks }

// RanksPerNode returns the number of ranks sharing each simulated node.
func (n *Network) RanksPerNode() int { return n.cfg.RanksPerNode }

// Node returns the node index hosting rank r.
func (n *Network) Node(r Rank) int { return int(r) / n.cfg.RanksPerNode }

// Intra reports whether ranks a and b share a node.
func (n *Network) Intra(a, b Rank) bool { return n.Node(a) == n.Node(b) }

// Endpoint returns rank r's endpoint.
func (n *Network) Endpoint(r Rank) *Endpoint { return n.eps[r] }

// DMAModel returns the device copy-engine cost model in effect.
func (n *Network) DMAModel() DMAModel { return n.dma }

// GPUDirect reports whether the job's direct NIC↔device datapath is in
// effect. The simulated conduit has one DMA model for the whole job, so
// "both endpoints capable" is a job-wide property.
func (n *Network) GPUDirect() bool { return n.gdr }

// RegisterAM installs a handler and returns its ID. All registration must
// happen before communication starts (the runtime registers its handlers at
// world creation, mirroring GASNet's static handler table).
func (n *Network) RegisterAM(h AMHandler) HandlerID {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	n.handlers = append(n.handlers, h)
	if len(n.handlers) > 1<<16 {
		panic("gasnet: AM handler table overflow")
	}
	return HandlerID(len(n.handlers) - 1)
}

func (n *Network) handler(id HandlerID) AMHandler {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	if int(id) >= len(n.handlers) {
		panic(fmt.Sprintf("gasnet: AM to unregistered handler %d", id))
	}
	return n.handlers[id]
}

// Close shuts the delivery engine down. Outstanding operations are dropped;
// call only after the job has quiesced.
func (n *Network) Close() {
	if n.closed.Swap(true) {
		return
	}
	if n.eng != nil {
		n.eng.stop()
	}
	if n.trans != nil {
		n.trans.close()
	}
}

// Stats aggregates traffic counters for one endpoint. DMAs counts device
// copy-engine descriptors issued against this rank's devices; DMABytes the
// bytes they moved.
type Stats struct {
	Puts     uint64
	PutBytes uint64
	Gets     uint64
	GetBytes uint64
	AMs      uint64
	AMBytes  uint64
	AMOs     uint64
	DMAs     uint64
	DMABytes uint64
}

// Endpoint is one rank's attachment to the network.
type Endpoint struct {
	rank Rank
	net  *Network
	seg  *Segment
	ro   *obs.RankObs // this rank's observability recorder; nil = disabled

	devMu sync.Mutex
	devs  []*Segment // device segments; SegID i+1 is devs[i]

	qmu     sync.Mutex
	compQ   []func()    // completions to run on the owner during Poll
	amQ     []inboundAM // delivered AMs awaiting handler execution
	polling bool        // guards against recursive progress (restricted context)
	pollTok uint64      // opaque token of the goroutine draining amQ

	notify chan struct{} // 1-slot doorbell for WaitPending

	puts, putBytes, gets, getBytes, ams, amBytes, amos atomic.Uint64
	dmas, dmaBytes                                     atomic.Uint64
}

type inboundAM struct {
	src     Rank
	handler HandlerID
	payload []byte
	aux     any
}

// Rank returns this endpoint's rank.
func (ep *Endpoint) Rank() Rank { return ep.rank }

// Network returns the owning network.
func (ep *Endpoint) Network() *Network { return ep.net }

// Segment returns this rank's registered host segment.
func (ep *Endpoint) Segment() *Segment { return ep.seg }

// AddDeviceSegment registers a device-kind segment of size bytes on this
// rank — the conduit half of opening a device allocator — and returns its
// SegID. Device segments live until the network is torn down, like GPU
// segments registered with GASNet-EX memory kinds.
func (ep *Endpoint) AddDeviceSegment(size int) SegID {
	ep.devMu.Lock()
	defer ep.devMu.Unlock()
	if len(ep.devs) >= 1<<16-1 {
		panic("gasnet: device segment table overflow")
	}
	ep.devs = append(ep.devs, NewSegmentKind(size, KindDevice))
	return SegID(len(ep.devs))
}

// CloseDeviceSegment unregisters a device segment — the conduit half of
// closing a device allocator. The id is retired, never reused: later
// resolutions of pointers into the segment fault with a use-after-close
// error rather than silently reading unrelated memory, which is the
// poisoning the runtime promises for GPtrs that outlive their allocator.
func (ep *Endpoint) CloseDeviceSegment(id SegID) {
	ep.devMu.Lock()
	defer ep.devMu.Unlock()
	if id == HostSeg || int(id) > len(ep.devs) {
		panic(fmt.Sprintf("gasnet: rank %d: CloseDeviceSegment(%d): no such device segment (%d registered)",
			ep.rank, id, len(ep.devs)))
	}
	if ep.devs[id-1] == nil {
		panic(fmt.Sprintf("gasnet: rank %d: device segment %d closed twice", ep.rank, id))
	}
	ep.devs[id-1] = nil
}

// GrowDeviceSegment extends device segment id by extra bytes in place.
// Offsets into the segment are stable across growth, so outstanding
// GPtrs stay valid; the caller must quiesce transfers touching the
// segment first (the same contract as CloseDeviceSegment), because
// in-flight hop chains hold byte slices resolved against the old
// backing store. Growing a closed or unknown segment faults like a
// wild/poisoned pointer would.
func (ep *Endpoint) GrowDeviceSegment(id SegID, extra int) {
	ep.devMu.Lock()
	defer ep.devMu.Unlock()
	if id == HostSeg || int(id) > len(ep.devs) {
		panic(fmt.Sprintf("gasnet: rank %d: GrowDeviceSegment(%d): no such device segment (%d registered)",
			ep.rank, id, len(ep.devs)))
	}
	seg := ep.devs[id-1]
	if seg == nil {
		panic(fmt.Sprintf("gasnet: rank %d device segment %d is closed — grow after CloseDeviceAllocator",
			ep.rank, id))
	}
	seg.Grow(extra)
}

// ChargeFusedFold accounts one fused reduction kernel launch on this
// rank's device: `ways` landed child operands of n bytes each folded
// into the accumulator by a single launch. The launch occupies the
// device for the model's FoldGap, charged synchronously (folds run on
// the rank's execution persona, like RunKernel).
func (ep *Endpoint) ChargeFusedFold(n, ways int) {
	if ep.ro != nil {
		ep.ro.FusedFold(ways)
	}
	if ep.net.realtime {
		spinFor(ep.net.dma.FoldGap(n, ways))
	}
}

// DeviceSegments returns the number of device segments currently
// registered (open) on this rank.
func (ep *Endpoint) DeviceSegments() int {
	ep.devMu.Lock()
	defer ep.devMu.Unlock()
	n := 0
	for _, s := range ep.devs {
		if s != nil {
			n++
		}
	}
	return n
}

// SegByID resolves a segment id: 0 is the host segment, 1.. are device
// segments. An unknown id panics — the analogue of dereferencing a wild
// device pointer — and a closed one panics with a use-after-close fault.
func (ep *Endpoint) SegByID(id SegID) *Segment {
	if id == HostSeg {
		return ep.seg
	}
	ep.devMu.Lock()
	defer ep.devMu.Unlock()
	if int(id) > len(ep.devs) {
		panic(fmt.Sprintf("gasnet: rank %d has no device segment %d (%d registered) — wild device pointer",
			ep.rank, id, len(ep.devs)))
	}
	seg := ep.devs[id-1]
	if seg == nil {
		panic(fmt.Sprintf("gasnet: rank %d device segment %d is closed — GPtr used after CloseDeviceAllocator",
			ep.rank, id))
	}
	return seg
}

// Stats returns a snapshot of this endpoint's traffic counters.
func (ep *Endpoint) Stats() Stats {
	return Stats{
		Puts:     ep.puts.Load(),
		PutBytes: ep.putBytes.Load(),
		Gets:     ep.gets.Load(),
		GetBytes: ep.getBytes.Load(),
		AMs:      ep.ams.Load(),
		AMBytes:  ep.amBytes.Load(),
		AMOs:     ep.amos.Load(),
		DMAs:     ep.dmas.Load(),
		DMABytes: ep.dmaBytes.Load(),
	}
}

// countDMA records one descriptor of hop kind k on this rank's device
// copy engine: the endpoint totals, the obs per-kind counters, and (when
// armed) the legacy DMA hop trace.
func (ep *Endpoint) countDMA(k obs.DMAKind, n int) {
	ep.dmas.Add(1)
	ep.dmaBytes.Add(uint64(n))
	if ep.ro != nil {
		ep.ro.DMA(k, n)
	}
	if ep.net.dmaTraceOn.Load() {
		ep.net.dmaMu.Lock()
		ep.net.dmaTrace = append(ep.net.dmaTrace, DMAHop{Rank: ep.rank, Bytes: n, Kind: k})
		ep.net.dmaMu.Unlock()
	}
}

// syncDirect runs fn — a delivery goroutine's direct touch of segment
// memory or a user buffer (a one-sided put landing, a get serving) —
// under the endpoint queue lock. Every polling goroutine acquires that
// lock each progress pass, so the access is ordered against user-code
// reads and writes of the same memory: the conduit's ack/barrier
// protocol already provides the real-time ordering, but it runs through
// *other processes*, where the race detector cannot follow it; the lock
// turns it into a happens-before edge it can. fn must not enqueue
// (enqueueComp/enqueueAM re-lock the same mutex).
func (ep *Endpoint) syncDirect(fn func()) {
	ep.qmu.Lock()
	defer ep.qmu.Unlock()
	fn()
}

func (ep *Endpoint) enqueueComp(f func()) {
	ep.qmu.Lock()
	ep.compQ = append(ep.compQ, f)
	ep.qmu.Unlock()
	ep.Ring()
}

func (ep *Endpoint) enqueueAM(am inboundAM) {
	ep.qmu.Lock()
	ep.amQ = append(ep.amQ, am)
	ep.qmu.Unlock()
	ep.Ring()
}

// Ring signals a blocked WaitPending without ever blocking the caller.
// The runtime rings it for deliveries that bypass the endpoint queues
// (persona LPCs), so a sleeping progress thread wakes for them too.
// Rings coalesce in the 1-slot doorbell: only a deposit that found the
// slot empty is counted (obs "rings"), so a batch of deliveries rung
// back-to-back causes — and counts as — one wakeup, not one per op.
func (ep *Endpoint) Ring() {
	select {
	case ep.notify <- struct{}{}:
		if ep.ro != nil {
			ep.ro.Ring()
		}
	default:
	}
}

// WaitPending blocks until a delivery is waiting for Poll or d elapses,
// reporting whether work is (or may be) pending. Progress threads use it
// to idle without burning a core; the doorbell is best-effort, so callers
// must still poll after a timeout.
func (ep *Endpoint) WaitPending(d time.Duration) bool {
	if ep.Pending() {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ep.notify:
		if ep.ro != nil {
			ep.ro.Wakeup()
		}
		return true
	case <-t.C:
		return ep.Pending()
	}
}

// PollCompletions drains delivered operation completions (put/get acks,
// AMO results) without executing any Active Message handlers. This is the
// conduit-level half of "internal progress" in the paper's terms: it
// advances actQ bookkeeping but runs no user code beyond the runtime's own
// completion thunks.
func (ep *Endpoint) PollCompletions() int {
	ep.qmu.Lock()
	comp := ep.compQ
	ep.compQ = nil
	ep.qmu.Unlock()
	for _, f := range comp {
		f()
	}
	return len(comp)
}

// PollAMs executes delivered Active Messages on the calling goroutine —
// the user-level-progress half. Any goroutine making progress for the
// endpoint may call it; concurrent and recursive calls coalesce through
// the qmu-guarded polling flag (which doubles as UPC++'s restricted
// progress context), so at most one goroutine executes handlers at a
// time and handlers arriving while draining run on the next call.
func (ep *Endpoint) PollAMs() int { return ep.PollAMsAs(0) }

// PollAMsAs is PollAMs carrying an opaque poller token (the runtime passes
// the harvesting goroutine's id). While the call is draining handlers,
// PollerToken returns tok — letting handler code learn which goroutine is
// executing it without re-deriving the id per message.
func (ep *Endpoint) PollAMsAs(tok uint64) int {
	ep.qmu.Lock()
	if ep.polling {
		ep.qmu.Unlock()
		return 0
	}
	ep.polling = true
	ep.pollTok = tok
	ams := ep.amQ
	ep.amQ = nil
	ep.qmu.Unlock()

	for _, am := range ams {
		h := ep.net.handler(am.handler)
		h(ep, am.src, am.payload, am.aux)
	}

	ep.qmu.Lock()
	ep.polling = false
	ep.pollTok = 0
	ep.qmu.Unlock()
	return len(ams)
}

// PollerToken returns the token passed to the PollAMsAs call currently
// executing handlers, or 0 outside a drain. Only meaningful when called
// from within an AM handler (where the draining claim is held).
func (ep *Endpoint) PollerToken() uint64 {
	ep.qmu.Lock()
	defer ep.qmu.Unlock()
	return ep.pollTok
}

// Poll drains completions then Active Messages, returning the number of
// items processed. An empty poll yields the processor so that delivery
// goroutines are never starved by poll loops on few-core hosts.
func (ep *Endpoint) Poll() int {
	n := ep.PollCompletions() + ep.PollAMs()
	if n == 0 {
		runtime.Gosched()
	}
	return n
}

// Pending reports whether deliveries are waiting for Poll.
func (ep *Endpoint) Pending() bool {
	ep.qmu.Lock()
	defer ep.qmu.Unlock()
	return len(ep.compQ) > 0 || len(ep.amQ) > 0
}

// spinFor burns CPU for d, modeling initiator software overhead.
func spinFor(d time.Duration) {
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

// RemoteAM describes an Active Message to deliver at the *destination*
// rank of a put or copy at the moment the transferred bytes become
// visible in the destination segment — the conduit half of remote
// completion (remote_cx), modeled on GASNet-EX's signaling put / remote
// completion events. The notification piggybacks on the transfer: it is
// enqueued on the destination at the landing timestamp of the final
// wire/DMA hop, costs no extra wire message, and the destination's AM
// handler is guaranteed to observe the transferred data.
//
// One RemoteAM may be shared by every fragment of a multi-fragment
// operation to a single destination (SetFragments): the conduit counts
// landings and enqueues the notification exactly once, when the
// last-landing fragment's bytes are in place — so the handler observes
// the whole operation without any initiator-side gating round trip.
type RemoteAM struct {
	Handler HandlerID
	Payload []byte
	Aux     any

	frags atomic.Int32 // shared landing countdown; 0 = single-shot
}

// SetFragments arms the AM to fire on the n'th landing instead of the
// first. Call before handing the AM to the conduit.
func (r *RemoteAM) SetFragments(n int) { r.frags.Store(int32(n)) }

// deliverRemote enqueues rem on dst's AM queue, attributed to this
// (initiating) endpoint. Callers invoke it only after the data of the
// owning transfer has been copied into dst's segment, so the enqueue's
// synchronization publishes the data to the handler. A counted AM
// (SetFragments) is enqueued only by the last-landing fragment.
func (ep *Endpoint) deliverRemote(dst Rank, rem *RemoteAM) {
	if rem == nil {
		return
	}
	if rem.frags.Load() > 0 && rem.frags.Add(-1) > 0 {
		return
	}
	ep.net.eps[dst].enqueueAM(inboundAM{src: ep.rank, handler: rem.Handler, payload: rem.Payload, aux: rem.Aux})
}

// Put starts a one-sided put of src into (dst, dstOff). The source buffer
// is captured before Put returns (source completion is synchronous, as with
// an eager-copy rput). onAck, if non-nil, is delivered to this endpoint's
// completion queue once the data is globally visible at the target
// (operation completion; requires initiator attentiveness to observe, but
// the transfer itself completes without it).
func (ep *Endpoint) Put(dst Rank, dstOff uint64, src []byte, onAck func()) {
	ep.put(dst, dstOff, src, onAck, nil, obs.OpTag{})
}

// put is Put with an optional remote-completion AM, fired at the target
// when the data lands (before the ack starts its trip back), and the
// initiator's observability tag.
func (ep *Endpoint) put(dst Rank, dstOff uint64, src []byte, onAck func(), rem *RemoteAM, tag obs.OpTag) {
	n := len(src)
	ep.puts.Add(1)
	ep.putBytes.Add(uint64(n))
	if t := ep.net.trans; t != nil && dst != ep.rank {
		t.put(dst, HostSeg, dstOff, src, onAck, rem, tag)
		return
	}
	tgt := ep.net.eps[dst]
	intra := ep.net.Intra(ep.rank, dst)
	tag.WireMsg(ep.rank, dst, n)
	if !ep.net.realtime {
		tag.Hop(obs.StageCapture, ep.rank, n)
		copy(tgt.seg.Bytes(dstOff, n), src)
		tag.Landing(dst, n)
		ep.deliverRemote(dst, rem)
		if onAck != nil {
			ep.enqueueComp(onAck)
		}
		return
	}
	m := ep.net.model
	spinFor(m.Overhead(n, intra))
	staged := append([]byte(nil), src...)
	tag.Hop(obs.StageCapture, ep.rank, n)
	eng := ep.net.eng
	gap := m.Gap(n, intra)
	lat := m.Latency(n, intra)
	ackLat := m.Latency(0, intra)
	eng.injectFrom(int(ep.rank), gap, lat, func(at time.Time) {
		copy(tgt.seg.Bytes(dstOff, n), staged)
		tag.Landing(dst, n)
		ep.deliverRemote(dst, rem)
		if onAck != nil {
			eng.schedule(at.Add(ackLat), func(time.Time) { ep.enqueueComp(onAck) })
		}
	})
}

// Get starts a one-sided get of len(dst) bytes from (src, srcOff) into dst.
// dst must not be read (or reused) until onDone is delivered via Poll.
func (ep *Endpoint) Get(src Rank, srcOff uint64, dst []byte, onDone func()) {
	ep.get(src, srcOff, dst, onDone, obs.OpTag{})
}

// get is Get carrying the initiator's observability tag. The payload
// lands at the *initiator* (that is where a get's data becomes visible),
// so the landing edge is recorded against ep.rank.
func (ep *Endpoint) get(src Rank, srcOff uint64, dst []byte, onDone func(), tag obs.OpTag) {
	n := len(dst)
	ep.gets.Add(1)
	ep.getBytes.Add(uint64(n))
	if t := ep.net.trans; t != nil && src != ep.rank {
		t.get(src, HostSeg, srcOff, dst, onDone, tag)
		return
	}
	rem := ep.net.eps[src]
	intra := ep.net.Intra(ep.rank, src)
	tag.WireMsg(ep.rank, src, 0)
	tag.WireMsg(src, ep.rank, n)
	if !ep.net.realtime {
		tag.Hop(obs.StageCapture, ep.rank, 0)
		copy(dst, rem.seg.Bytes(srcOff, n))
		tag.Landing(ep.rank, n)
		if onDone != nil {
			ep.enqueueComp(onDone)
		}
		return
	}
	m := ep.net.model
	spinFor(m.Overhead(0, intra))
	tag.Hop(obs.StageCapture, ep.rank, 0)
	eng := ep.net.eng
	reqGap := m.Gap(0, intra)
	reqLat := m.Latency(0, intra)
	// Request travels to the source NIC; the reply carries the payload.
	eng.injectFrom(int(ep.rank), reqGap, reqLat, func(at time.Time) {
		tag.Hop(obs.StageWire, src, 0)
		staged := append([]byte(nil), rem.seg.Bytes(srcOff, n)...)
		replyGap := m.Gap(n, intra)
		replyLat := m.Latency(n, intra)
		eng.injectFromAt(int(src), at, replyGap, replyLat, func(time.Time) {
			copy(dst, staged)
			tag.Landing(ep.rank, n)
			if onDone != nil {
				ep.enqueueComp(onDone)
			}
		})
	})
}

// AM sends an Active Message carrying payload to the handler h on dst. The
// payload is captured before AM returns. Delivery enqueues the handler on
// the target, which runs it at its next Poll — the target must be attentive
// for the message to execute, exactly as the paper describes for RPC.
//
// aux travels with the message as an opaque token (see AMHandler); pass nil
// when unused.
func (ep *Endpoint) AM(dst Rank, h HandlerID, payload []byte, aux any) {
	ep.AMTag(dst, h, payload, aux, obs.OpTag{})
}

// AMTag is AM carrying the initiator's observability tag; the landing
// edge fires when the message is enqueued at the target (handler
// execution still requires target attentiveness).
func (ep *Endpoint) AMTag(dst Rank, h HandlerID, payload []byte, aux any, tag obs.OpTag) {
	n := len(payload)
	ep.ams.Add(1)
	ep.amBytes.Add(uint64(n))
	if t := ep.net.trans; t != nil && dst != ep.rank {
		// The frame encode is the capture copy; no extra staging.
		t.am(dst, h, [][]byte{payload}, aux, tag)
		return
	}
	tgt := ep.net.eps[dst]
	intra := ep.net.Intra(ep.rank, dst)
	staged := append([]byte(nil), payload...)
	tag.WireMsg(ep.rank, dst, n)
	if !ep.net.realtime {
		tag.Hop(obs.StageCapture, ep.rank, n)
		tgt.enqueueAM(inboundAM{src: ep.rank, handler: h, payload: staged, aux: aux})
		tag.Landing(dst, n)
		return
	}
	m := ep.net.model
	spinFor(m.Overhead(n, intra))
	tag.Hop(obs.StageCapture, ep.rank, n)
	eng := ep.net.eng
	gap := m.Gap(n, intra)
	lat := m.Latency(n, intra)
	eng.injectFrom(int(ep.rank), gap, lat, func(time.Time) {
		tgt.enqueueAM(inboundAM{src: ep.rank, handler: h, payload: staged, aux: aux})
		tag.Landing(dst, n)
	})
}

// AMTagV is AMTag taking the payload as an iovec: the message is the
// concatenation of frags, which is gathered into one staged buffer at
// the conduit capture stage — the single copy on this path. Fragments
// may alias caller memory (borrowed view payloads from a gather-mode
// encoder); the caller must keep them unchanged until AMTagV returns,
// after which every fragment is reusable (source completion). In the
// real-time model the gather happens after the initiator overhead spin,
// and mutations made after return but before wire delivery are not
// observed by the target — the capture is exactly once, exactly here.
func (ep *Endpoint) AMTagV(dst Rank, h HandlerID, frags [][]byte, aux any, tag obs.OpTag) {
	n := 0
	for _, f := range frags {
		n += len(f)
	}
	ep.ams.Add(1)
	ep.amBytes.Add(uint64(n))
	if t := ep.net.trans; t != nil && dst != ep.rank {
		// Borrowed fragments are encoded straight into the frame
		// buffer — the single capture copy — and are reusable on
		// return, preserving the gather-capture contract.
		t.am(dst, h, frags, aux, tag)
		return
	}
	tgt := ep.net.eps[dst]
	intra := ep.net.Intra(ep.rank, dst)
	tag.WireMsg(ep.rank, dst, n)
	gather := func() []byte {
		staged := make([]byte, 0, n)
		for _, f := range frags {
			staged = append(staged, f...)
		}
		return staged
	}
	if !ep.net.realtime {
		staged := gather()
		tag.Hop(obs.StageCapture, ep.rank, n)
		tgt.enqueueAM(inboundAM{src: ep.rank, handler: h, payload: staged, aux: aux})
		tag.Landing(dst, n)
		return
	}
	m := ep.net.model
	spinFor(m.Overhead(n, intra))
	staged := gather()
	tag.Hop(obs.StageCapture, ep.rank, n)
	eng := ep.net.eng
	gap := m.Gap(n, intra)
	lat := m.Latency(n, intra)
	eng.injectFrom(int(ep.rank), gap, lat, func(time.Time) {
		tgt.enqueueAM(inboundAM{src: ep.rank, handler: h, payload: staged, aux: aux})
		tag.Landing(dst, n)
	})
}

// AMO issues a NIC-offloaded atomic on the 64-bit word at (dst, off). The
// operation executes at the target's segment without target CPU
// involvement; onResult (if non-nil) is delivered to this endpoint with the
// word's previous value.
func (ep *Endpoint) AMO(dst Rank, off uint64, op AMOOp, op1, op2 uint64, onResult func(old uint64)) {
	ep.AMOTag(dst, off, op, op1, op2, onResult, obs.OpTag{})
}

// AMOTag is AMO carrying the initiator's observability tag.
func (ep *Endpoint) AMOTag(dst Rank, off uint64, op AMOOp, op1, op2 uint64, onResult func(old uint64), tag obs.OpTag) {
	ep.amos.Add(1)
	if t := ep.net.trans; t != nil && dst != ep.rank {
		t.amo(dst, off, op, op1, op2, onResult, tag)
		return
	}
	tgt := ep.net.eps[dst]
	intra := ep.net.Intra(ep.rank, dst)
	tag.WireMsg(ep.rank, dst, 8)
	if !ep.net.realtime {
		tag.Hop(obs.StageCapture, ep.rank, 8)
		old := tgt.seg.applyAMO(off, op, op1, op2)
		tag.Landing(dst, 8)
		if onResult != nil {
			ep.enqueueComp(func() { onResult(old) })
		}
		return
	}
	m := ep.net.model
	spinFor(m.Overhead(8, intra))
	tag.Hop(obs.StageCapture, ep.rank, 8)
	eng := ep.net.eng
	gap := m.Gap(8, intra)
	lat := m.Latency(8, intra)
	eng.injectFrom(int(ep.rank), gap, lat, func(at time.Time) {
		old := tgt.seg.applyAMO(off, op, op1, op2)
		tag.Landing(dst, 8)
		if onResult != nil {
			eng.schedule(at.Add(lat), func(time.Time) {
				ep.enqueueComp(func() { onResult(old) })
			})
		}
	})
}
