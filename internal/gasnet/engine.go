package gasnet

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// engine is the real-time delivery engine: the simulated collection of
// NICs and wires. Operations are injected with a per-source-NIC
// serialization constraint (the LogGP gap) and delivered by a dedicated
// goroutine when their due time arrives, with spin-wait precision for the
// sub-microsecond delays an Aries-class network exhibits.
//
// The engine goroutine performs the actual data movement (segment writes)
// at delivery time, playing the role of the target NIC's DMA engine:
// transfers complete without any initiator or target CPU attentiveness,
// matching GASNet-EX semantics described in the paper (§III).
type engine struct {
	mu      sync.Mutex
	cond    *sync.Cond
	events  eventHeap
	seq     uint64
	nicFree []time.Time // per-rank NIC next-available time
	dmaFree []time.Time // per-rank device DMA engine next-available time
	done    bool
	version atomic.Uint64 // bumped on insert so the spin loop re-plans
	// wake is a 1-slot doorbell rung on every insert. The delivery loop's
	// long sleep selects on it so an event injected mid-wait with a sooner
	// due time interrupts the sleep instead of being delivered late.
	wake chan struct{}
}

type event struct {
	due time.Time
	seq uint64 // FIFO tiebreak
	run func(at time.Time)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

func newEngine(ranks int) *engine {
	e := &engine{
		nicFree: make([]time.Time, ranks),
		dmaFree: make([]time.Time, ranks),
		wake:    make(chan struct{}, 1),
	}
	e.cond = sync.NewCond(&e.mu)
	go e.loop()
	return e
}

// schedule queues run at the absolute time due.
func (e *engine) schedule(due time.Time, run func(at time.Time)) {
	e.mu.Lock()
	e.seq++
	heap.Push(&e.events, event{due: due, seq: e.seq, run: run})
	e.version.Add(1)
	e.cond.Signal()
	e.mu.Unlock()
	e.ring()
}

// injectFrom models rank src injecting a message now: the message occupies
// src's NIC for gap, then arrives lat later, at which point deliver runs.
func (e *engine) injectFrom(src int, gap, lat time.Duration, deliver func(at time.Time)) {
	e.injectFromAt(src, time.Now(), gap, lat, deliver)
}

// injectFromAt is injectFrom with an explicit earliest injection time (used
// for NIC-initiated traffic such as get replies).
func (e *engine) injectFromAt(src int, earliest time.Time, gap, lat time.Duration, deliver func(at time.Time)) {
	e.injectOn(e.nicFree, src, earliest, gap, lat, deliver)
}

// injectDMAAt models rank r's device copy engine accepting a DMA
// descriptor no earlier than earliest: the engine is occupied for gap
// (descriptors serialize, like NIC messages), and the transfer lands lat
// later, at which point deliver runs. The DMA engine and the NIC occupy
// independent channels: a rank can stream over the wire and across PCIe
// concurrently.
func (e *engine) injectDMAAt(r int, earliest time.Time, gap, lat time.Duration, deliver func(at time.Time)) {
	e.injectOn(e.dmaFree, r, earliest, gap, lat, deliver)
}

// injectOn serializes an operation on one channel of the free list
// (per-rank NIC or per-rank DMA engine) and schedules its delivery.
func (e *engine) injectOn(free []time.Time, idx int, earliest time.Time, gap, lat time.Duration, deliver func(at time.Time)) {
	e.mu.Lock()
	start := earliest
	if now := time.Now(); now.After(start) {
		start = now
	}
	if free[idx].After(start) {
		start = free[idx]
	}
	free[idx] = start.Add(gap)
	due := start.Add(gap + lat)
	e.seq++
	heap.Push(&e.events, event{due: due, seq: e.seq, run: deliver})
	e.version.Add(1)
	e.cond.Signal()
	e.mu.Unlock()
	e.ring()
}

// ring deposits a wakeup token; a no-op if one is already pending.
func (e *engine) ring() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

func (e *engine) stop() {
	e.mu.Lock()
	e.done = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

func (e *engine) loop() {
	for {
		e.mu.Lock()
		if len(e.events) == 0 && !e.done {
			// Spin briefly before sleeping: benchmarks issue operations
			// back-to-back, and a condvar wakeup costs microseconds —
			// far more than the sub-microsecond latencies being modeled.
			v := e.version.Load()
			e.mu.Unlock()
			spinDeadline := time.Now().Add(200 * time.Microsecond)
			for e.version.Load() == v && time.Now().Before(spinDeadline) {
				// Yield so injectors aren't starved on few-core hosts;
				// on an idle P this is nearly free.
				runtime.Gosched()
			}
			e.mu.Lock()
		}
		for len(e.events) == 0 && !e.done {
			e.cond.Wait()
		}
		if e.done {
			e.mu.Unlock()
			return
		}
		next := e.events[0].due
		now := time.Now()
		if now.Before(next) {
			v := e.version.Load()
			e.mu.Unlock()
			e.waitUntil(next, v)
			continue
		}
		ev := heap.Pop(&e.events).(event)
		e.mu.Unlock()
		ev.run(ev.due)
	}
}

// waitUntil blocks until t or until a new event is inserted (version bump),
// whichever comes first. For waits beyond ~100µs it parks on a timer that
// the wake doorbell can interrupt — a plain time.Sleep here would delay a
// sooner-due event injected mid-sleep until the full sleep elapsed — then
// spins for the final stretch to hit sub-microsecond accuracy.
func (e *engine) waitUntil(t time.Time, version uint64) {
	const spinWindow = 100 * time.Microsecond
	for {
		if e.version.Load() != version {
			return
		}
		remain := time.Until(t)
		if remain <= 0 {
			return
		}
		if remain > spinWindow {
			// A stale doorbell token (from an insert we already observed)
			// at worst costs one extra loop iteration; a token deposited
			// after the version check above ends the select immediately,
			// so a concurrent insert is never slept through.
			tm := time.NewTimer(remain - spinWindow)
			select {
			case <-e.wake:
				tm.Stop()
			case <-tm.C:
			}
			continue
		}
		// Spin for the final stretch, yielding so a single-core host can
		// still run the goroutines whose deliveries we are timing.
		for time.Until(t) > 0 {
			if e.version.Load() != version {
				return
			}
			runtime.Gosched()
		}
		return
	}
}
