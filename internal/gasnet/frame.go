package gasnet

// Transport frame codec for the real (socket/shm) conduit backends.
//
// Every message on a socket is `| u32 LE length | body |`; shm ring
// records carry the same body bytes without the length prefix (the ring
// record header supplies it). The body starts with a one-byte frame
// type. Higher-level payloads (0xC8 RPC, 0xC9 batch, coll, remote-cx)
// ride inside fAM/fPut frames verbatim — this layer never inspects
// them, so the already-fuzzed core wire formats port unchanged.

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"upcxx/internal/serial"
)

const (
	fHello  = 0x01 // proto u8 | rank u32 | nranks u32
	fAM     = 0x02 // src u32 | handler u16 | auxlen uvarint | aux | payload
	fPut    = 0x03 // src u32 | seg u16 | off u64 | ackRank u32 | ackID u64 | hasRem u8 | [rem] | data
	fPutAck = 0x04 // ackID u64
	fGet    = 0x05 // reqID u64 | seg u16 | off u64 | n u32
	fGetRep = 0x06 // reqID u64 | data
	fAMO    = 0x07 // reqID u64 | off u64 | op u8 | a u64 | b u64
	fAMORep = 0x08 // reqID u64 | old u64
	fCopy   = 0x09 // src u32 | srcSeg u16 | srcOff u64 | dstRank u32 | dstSeg u16 | dstOff u64 | n u32 | ackRank u32 | ackID u64 | hasRem u8 | [rem]
	fRing   = 0x0A // doorbell: drain my shm ring (empty body)
	fBye    = 0x0B // clean shutdown notice (empty body)
)

// frameProto is the transport bootstrap protocol version carried in
// fHello; bump on any incompatible frame change.
const frameProto = 1

// frameMaxBody bounds a single frame body; larger transfers must
// fragment above this layer (current ops never exceed segment sizes,
// which sit well under this).
const frameMaxBody = 64 << 20

var errFrameTooBig = errors.New("gasnet: transport frame exceeds max body size")

// frame is the decoded form of a transport frame body. Fields are a
// union across frame types; typ says which are meaningful.
type frame struct {
	typ byte

	// fHello
	proto  byte
	nranks uint32

	// common source rank (fAM, fPut, fCopy)
	rank uint32

	// fAM
	handler uint16
	aux     []byte
	payload []byte

	// fPut / fGet / fCopy addressing
	seg uint16
	off uint64
	n   uint32

	// acknowledgement routing (fPut, fCopy) and reply matching
	ackRank uint32
	ackID   uint64
	reqID   uint64

	// fAMO
	amoOp      byte
	amoA, amoB uint64
	amoOld     uint64

	// fCopy destination
	dstRank uint32
	dstSeg  uint16
	dstOff  uint64

	// optional piggybacked remote-completion AM (fPut, fCopy)
	hasRem     bool
	remHandler uint16
	remAux     []byte
	remPayload []byte
}

// remWire is the encode-side description of a piggybacked remote AM.
type remWire struct {
	handler uint16
	aux     []byte
	payload []byte
}

// beginFrame starts an encoder with a 4-byte length placeholder so the
// finished buffer is a complete socket frame; shm push skips the first
// 4 bytes.
func beginFrame(typ byte, sizeHint int) *serial.Encoder {
	e := serial.NewEncoder(make([]byte, 0, 4+1+sizeHint))
	e.PutU32(0) // length placeholder
	e.PutU8(typ)
	return e
}

// finishFrame fills the length prefix and returns the full frame bytes
// (length prefix + body).
func finishFrame(e *serial.Encoder) []byte {
	b := e.Bytes()
	body := len(b) - 4
	if body > frameMaxBody {
		panic(errFrameTooBig)
	}
	b[0] = byte(body)
	b[1] = byte(body >> 8)
	b[2] = byte(body >> 16)
	b[3] = byte(body >> 24)
	return b
}

func encodeHello(rank, nranks uint32) []byte {
	e := beginFrame(fHello, 16)
	e.PutU8(frameProto)
	e.PutU32(rank)
	e.PutU32(nranks)
	return finishFrame(e)
}

func encodeAM(src uint32, handler uint16, aux []byte, frags [][]byte) []byte {
	n := 0
	for _, f := range frags {
		n += len(f)
	}
	e := beginFrame(fAM, 16+len(aux)+n)
	e.PutU32(src)
	e.PutU16(handler)
	e.PutUvarint(uint64(len(aux)))
	e.PutRaw(aux)
	for _, f := range frags {
		e.PutRaw(f)
	}
	return finishFrame(e)
}

func putRem(e *serial.Encoder, rem *remWire) {
	if rem == nil {
		e.PutU8(0)
		return
	}
	e.PutU8(1)
	e.PutU16(rem.handler)
	e.PutUvarint(uint64(len(rem.aux)))
	e.PutRaw(rem.aux)
	e.PutUvarint(uint64(len(rem.payload)))
	e.PutRaw(rem.payload)
}

func encodePut(src uint32, seg uint16, off uint64, ackRank uint32, ackID uint64, rem *remWire, data []byte) []byte {
	hint := 40 + len(data)
	if rem != nil {
		hint += 8 + len(rem.aux) + len(rem.payload)
	}
	e := beginFrame(fPut, hint)
	e.PutU32(src)
	e.PutU16(seg)
	e.PutU64(off)
	e.PutU32(ackRank)
	e.PutU64(ackID)
	putRem(e, rem)
	e.PutRaw(data)
	return finishFrame(e)
}

func encodePutAck(ackID uint64) []byte {
	e := beginFrame(fPutAck, 8)
	e.PutU64(ackID)
	return finishFrame(e)
}

func encodeGet(reqID uint64, seg uint16, off uint64, n uint32) []byte {
	e := beginFrame(fGet, 24)
	e.PutU64(reqID)
	e.PutU16(seg)
	e.PutU64(off)
	e.PutU32(n)
	return finishFrame(e)
}

func encodeGetRep(reqID uint64, data []byte) []byte {
	e := beginFrame(fGetRep, 8+len(data))
	e.PutU64(reqID)
	e.PutRaw(data)
	return finishFrame(e)
}

func encodeAMO(reqID, off uint64, op byte, a, b uint64) []byte {
	e := beginFrame(fAMO, 40)
	e.PutU64(reqID)
	e.PutU64(off)
	e.PutU8(op)
	e.PutU64(a)
	e.PutU64(b)
	return finishFrame(e)
}

func encodeAMORep(reqID, old uint64) []byte {
	e := beginFrame(fAMORep, 16)
	e.PutU64(reqID)
	e.PutU64(old)
	return finishFrame(e)
}

func encodeCopy(src uint32, srcSeg uint16, srcOff uint64, dstRank uint32, dstSeg uint16, dstOff uint64, n uint32, ackRank uint32, ackID uint64, rem *remWire) []byte {
	hint := 64
	if rem != nil {
		hint += 8 + len(rem.aux) + len(rem.payload)
	}
	e := beginFrame(fCopy, hint)
	e.PutU32(src)
	e.PutU16(srcSeg)
	e.PutU64(srcOff)
	e.PutU32(dstRank)
	e.PutU16(dstSeg)
	e.PutU64(dstOff)
	e.PutU32(n)
	e.PutU32(ackRank)
	e.PutU64(ackID)
	putRem(e, rem)
	return finishFrame(e)
}

func encodeEmpty(typ byte) []byte {
	return finishFrame(beginFrame(typ, 0))
}

// decodeRem parses the optional piggybacked remote-AM section.
func decodeRem(d *serial.Decoder, f *frame) error {
	has := d.U8()
	if d.Err() != nil {
		return d.Err()
	}
	switch has {
	case 0:
		return nil
	case 1:
	default:
		return fmt.Errorf("gasnet: frame rem flag %#x invalid", has)
	}
	f.hasRem = true
	f.remHandler = d.U16()
	an := d.Uvarint()
	if d.Err() != nil {
		return d.Err()
	}
	if an > uint64(d.Remaining()) {
		return fmt.Errorf("gasnet: frame rem aux length %d exceeds remaining %d", an, d.Remaining())
	}
	f.remAux = d.Raw(int(an))
	pn := d.Uvarint()
	if d.Err() != nil {
		return d.Err()
	}
	if pn > uint64(d.Remaining()) {
		return fmt.Errorf("gasnet: frame rem payload length %d exceeds remaining %d", pn, d.Remaining())
	}
	f.remPayload = d.Raw(int(pn))
	return d.Err()
}

// decodeFrameBody strictly decodes one frame body. It never panics on
// hostile input (fuzzed by FuzzTransportFrame); returned slices alias
// the input buffer.
func decodeFrameBody(b []byte) (frame, error) {
	var f frame
	if len(b) == 0 {
		return f, errors.New("gasnet: empty transport frame")
	}
	d := serial.NewDecoder(b)
	f.typ = d.U8()
	switch f.typ {
	case fHello:
		f.proto = d.U8()
		f.rank = d.U32()
		f.nranks = d.U32()
		if err := d.Finish(); err != nil {
			return f, err
		}
		if f.proto != frameProto {
			return f, fmt.Errorf("gasnet: transport proto %d, want %d", f.proto, frameProto)
		}
		return f, nil
	case fAM:
		f.rank = d.U32()
		f.handler = d.U16()
		an := d.Uvarint()
		if d.Err() != nil {
			return f, d.Err()
		}
		if an > uint64(d.Remaining()) {
			return f, fmt.Errorf("gasnet: frame aux length %d exceeds remaining %d", an, d.Remaining())
		}
		f.aux = d.Raw(int(an))
		f.payload = d.Raw(d.Remaining())
		return f, d.Err()
	case fPut:
		f.rank = d.U32()
		f.seg = d.U16()
		f.off = d.U64()
		f.ackRank = d.U32()
		f.ackID = d.U64()
		if d.Err() != nil {
			return f, d.Err()
		}
		if err := decodeRem(d, &f); err != nil {
			return f, err
		}
		f.payload = d.Raw(d.Remaining())
		return f, d.Err()
	case fPutAck:
		f.ackID = d.U64()
		return f, d.Finish()
	case fGet:
		f.reqID = d.U64()
		f.seg = d.U16()
		f.off = d.U64()
		f.n = d.U32()
		return f, d.Finish()
	case fGetRep:
		f.reqID = d.U64()
		f.payload = d.Raw(d.Remaining())
		return f, d.Err()
	case fAMO:
		f.reqID = d.U64()
		f.off = d.U64()
		f.amoOp = d.U8()
		f.amoA = d.U64()
		f.amoB = d.U64()
		return f, d.Finish()
	case fAMORep:
		f.reqID = d.U64()
		f.amoOld = d.U64()
		return f, d.Finish()
	case fCopy:
		f.rank = d.U32()
		f.seg = d.U16()
		f.off = d.U64()
		f.dstRank = d.U32()
		f.dstSeg = d.U16()
		f.dstOff = d.U64()
		f.n = d.U32()
		f.ackRank = d.U32()
		f.ackID = d.U64()
		if d.Err() != nil {
			return f, d.Err()
		}
		if err := decodeRem(d, &f); err != nil {
			return f, err
		}
		return f, d.Finish()
	case fRing, fBye:
		return f, d.Finish()
	default:
		return f, fmt.Errorf("gasnet: unknown transport frame type %#x", f.typ)
	}
}

// readFrame reads one length-prefixed frame body from a buffered
// stream, allocating a fresh body buffer (bodies outlive the read —
// AM payloads are enqueued without copying again).
func readFrame(r *bufio.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if n == 0 {
		return nil, errors.New("gasnet: zero-length transport frame")
	}
	if n > max {
		return nil, fmt.Errorf("gasnet: transport frame length %d exceeds max %d", n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
