package gasnet

import (
	"testing"
	"time"
)

func TestDeviceSegmentRegistry(t *testing.T) {
	n := NewNetwork(Config{Ranks: 2})
	defer n.Close()
	ep := n.Endpoint(0)
	if ep.Segment().Kind() != KindHost {
		t.Fatal("host segment mis-kinded")
	}
	id := ep.AddDeviceSegment(1 << 12)
	if id != 1 || ep.DeviceSegments() != 1 {
		t.Fatalf("first device segment got id %d (%d registered)", id, ep.DeviceSegments())
	}
	if ep.SegByID(id).Kind() != KindDevice {
		t.Fatal("device segment mis-kinded")
	}
	if ep.SegByID(HostSeg) != ep.Segment() {
		t.Fatal("SegByID(0) is not the host segment")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wild device id should panic")
		}
	}()
	ep.SegByID(7)
}

// TestDeviceSegmentGrow: in-place growth keeps offsets (and therefore
// every outstanding global pointer) stable, appends the new capacity to
// the free list with coalescing, and satisfies an allocation that failed
// before growth. Growing the host segment id or a closed device segment
// faults.
func TestDeviceSegmentGrow(t *testing.T) {
	n := NewNetwork(Config{Ranks: 1})
	defer n.Close()
	ep := n.Endpoint(0)
	id := ep.AddDeviceSegment(64)
	seg := ep.SegByID(id)

	pat := make([]byte, 48)
	for i := range pat {
		pat[i] = byte(i*11 + 5)
	}
	off, err := seg.Alloc(48)
	if err != nil {
		t.Fatal(err)
	}
	copy(seg.Bytes(off, 48), pat)
	if _, err := seg.Alloc(48); err == nil {
		t.Fatal("second alloc should exhaust the 64-byte segment")
	}

	ep.GrowDeviceSegment(id, 128)
	if seg.Size() != 192 {
		t.Fatalf("grown segment size = %d, want 192", seg.Size())
	}
	// Offsets are stable: the pre-growth bytes sit where they were.
	got := seg.Bytes(off, 48)
	for i := range pat {
		if got[i] != pat[i] {
			t.Fatalf("pre-growth byte %d = %d after growth, want %d", i, got[i], pat[i])
		}
	}
	// The 16-byte tail fragment coalesced with the appended 128 bytes:
	// a 144-byte allocation fits only in the merged block.
	big, err := seg.Alloc(144)
	if err != nil {
		t.Fatalf("allocation spanning the coalesced growth failed: %v", err)
	}
	if big != 48 {
		t.Fatalf("coalesced block starts at %d, want 48", big)
	}

	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", what)
			}
		}()
		fn()
	}
	mustPanic("non-positive growth", func() { seg.Grow(0) })
	mustPanic("growing the host segment id", func() { ep.GrowDeviceSegment(HostSeg, 64) })
	mustPanic("growing a wild segment id", func() { ep.GrowDeviceSegment(9, 64) })
	ep.CloseDeviceSegment(id)
	mustPanic("growing a closed segment", func() { ep.GrowDeviceSegment(id, 64) })
}

// pollDone spins ep.Poll until done flips, with a deadline.
func pollDone(t *testing.T, ep *Endpoint, done *bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !*done {
		ep.Poll()
		if time.Now().After(deadline) {
			t.Fatal("transfer never completed")
		}
	}
}

// TestKindsDMATimingFloor: a same-rank h2d put must pay at least the DMA
// engine's gap+latency; back-to-back descriptors serialize on the engine.
// Lower bounds only — upper bounds depend on OS scheduling.
func TestKindsDMATimingFloor(t *testing.T) {
	net := &LogGP{L: time.Microsecond, Gp: time.Microsecond}
	dma := &PCIeDMA{L: 30 * time.Microsecond, Gp: 20 * time.Microsecond}
	n := NewNetwork(Config{Ranks: 1, Model: net, DMA: dma})
	defer n.Close()
	ep := n.Endpoint(0)
	id := ep.AddDeviceSegment(1 << 12)
	off, _ := ep.SegByID(id).Alloc(64)

	done := false
	t0 := time.Now()
	ep.PutSeg(0, id, off, make([]byte, 64), func() { done = true }, nil)
	pollDone(t, ep, &done)
	if elapsed := time.Since(t0); elapsed < 50*time.Microsecond {
		t.Fatalf("h2d put took %v, less than DMA gap+latency (50µs)", elapsed)
	}

	// Flood: k descriptors must occupy the copy engine for k*gap.
	const k = 8
	remaining := k
	t0 = time.Now()
	for i := 0; i < k; i++ {
		ep.PutSeg(0, id, off, make([]byte, 64), func() { remaining-- }, nil)
	}
	for remaining > 0 {
		ep.Poll()
	}
	if elapsed := time.Since(t0); elapsed < k*20*time.Microsecond {
		t.Fatalf("flood of %d DMAs took %v, less than engine serialization %v",
			k, elapsed, k*20*time.Microsecond)
	}
}

// TestKindsCrossRankChargesBothEngines: a cross-rank h2d put pays the wire
// and the target DMA engine; a d2d same-rank copy pays only one on-node
// DMA (no NIC hops), so it must be cheaper than the cross-rank path under
// a model where the wire dominates.
func TestKindsCrossRankChargesBothEngines(t *testing.T) {
	net := &LogGP{L: 40 * time.Microsecond, Gp: 5 * time.Microsecond}
	dma := &PCIeDMA{L: 25 * time.Microsecond, Gp: 5 * time.Microsecond}
	n := NewNetwork(Config{Ranks: 2, RanksPerNode: 1, Model: net, DMA: dma})
	defer n.Close()
	src := n.Endpoint(0)
	tgt := n.Endpoint(1)
	id := tgt.AddDeviceSegment(1 << 12)
	off, _ := tgt.SegByID(id).Alloc(64)

	// Cross-rank h2d: wire (gap+L) + DMA (gap+L) + ack (L) at minimum.
	done := false
	t0 := time.Now()
	src.PutSeg(1, id, off, make([]byte, 64), func() { done = true }, nil)
	pollDone(t, src, &done)
	minC := (5 + 40 + 5 + 25 + 40) * time.Microsecond
	if elapsed := time.Since(t0); elapsed < minC {
		t.Fatalf("cross-rank h2d took %v, less than wire+DMA floor %v", elapsed, minC)
	}

	// Same-rank d2d: one DMA descriptor, no wire.
	id0 := src.AddDeviceSegment(1 << 12)
	id0b := src.AddDeviceSegment(1 << 12)
	a, _ := src.SegByID(id0).Alloc(64)
	b, _ := src.SegByID(id0b).Alloc(64)
	done = false
	t0 = time.Now()
	src.CopySeg(0, id0, a, 0, id0b, b, 64, func() { done = true }, nil)
	pollDone(t, src, &done)
	if elapsed := time.Since(t0); elapsed < 30*time.Microsecond {
		t.Fatalf("same-rank d2d took %v, less than its DMA floor 30µs", elapsed)
	}
	// The h2d put charged the target rank's engine; the same-rank d2d
	// copy collapsed to exactly one descriptor on the initiator's.
	if got := tgt.Stats().DMAs; got != 1 {
		t.Fatalf("expected exactly 1 DMA descriptor on rank 1, got %d", got)
	}
	if got := src.Stats().DMAs; got != 1 {
		t.Fatalf("expected exactly 1 DMA descriptor on rank 0 (collapsed d2d), got %d", got)
	}
}

// TestKindsCopySegMatrixNoDelay: byte-level correctness of every CopySeg
// shape on the zero-delay conduit, including a third-party initiator.
func TestKindsCopySegMatrixNoDelay(t *testing.T) {
	n := NewNetwork(Config{Ranks: 3})
	defer n.Close()
	pat := make([]byte, 128)
	for i := range pat {
		pat[i] = byte(i*7 + 3)
	}
	type side struct {
		rank Rank
		dev  bool
	}
	cases := []struct{ src, dst side }{
		{side{0, false}, side{0, true}},  // h2d same
		{side{0, true}, side{0, false}},  // d2h same
		{side{0, true}, side{0, true}},   // d2d same
		{side{0, false}, side{0, false}}, // h2h same
		{side{0, true}, side{1, true}},   // d2d cross
		{side{0, false}, side{1, true}},  // h2d cross
		{side{1, true}, side{2, true}},   // d2d third-party
	}
	for _, tc := range cases {
		seg := func(s side) SegID {
			if !s.dev {
				return HostSeg
			}
			return n.Endpoint(s.rank).AddDeviceSegment(1 << 12)
		}
		ss, ds := seg(tc.src), seg(tc.dst)
		so, _ := n.Endpoint(tc.src.rank).SegByID(ss).Alloc(len(pat))
		do, _ := n.Endpoint(tc.dst.rank).SegByID(ds).Alloc(len(pat))
		copy(n.Endpoint(tc.src.rank).SegByID(ss).Bytes(so, len(pat)), pat)
		ep := n.Endpoint(0)
		done := false
		ep.CopySeg(tc.src.rank, ss, so, tc.dst.rank, ds, do, len(pat), func() { done = true }, nil)
		pollDone(t, ep, &done)
		got := n.Endpoint(tc.dst.rank).SegByID(ds).Bytes(do, len(pat))
		for i := range pat {
			if got[i] != pat[i] {
				t.Fatalf("copy %+v byte %d = %d, want %d", tc, i, got[i], pat[i])
			}
		}
	}
}
