package gasnet

// Real transport conduit: ranks as separate OS processes, AMs and RMA
// framed over TCP (backend "tcp") or Unix-domain sockets plus an
// mmap'd shared-memory datapath (backend "shm").
//
// Sockets carry length-prefixed frames (frame.go). The shm backend
// keeps the socket mesh as control path but moves the data path into
// shared memory: puts/gets against a peer's host segment are direct
// memcpys into the peer's mapped segment, small frames ride lock-free
// doorbell rings (ring.go), and idle peers are woken by an fRing
// doorbell frame over the socket — so an idle rank blocks in epoll
// (via the reader goroutine's Read) rather than spinning.
//
// Per peer there is one reader goroutine (blocks in Read, dispatches
// frames onto the endpoint's completion/AM queues, never writes) and
// one writer goroutine (drains a queue with one writev per batch —
// replies from the reader are routed through the writer queue, which
// is what makes reader-side acks deadlock-free). Both are pinned with
// LockOSThread.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"upcxx/internal/obs"
)

// ErrPeerLost reports that a peer process died or its connection broke
// while the job was still running. Surviving ranks observe it (wrapped
// with the peer rank) from Future.Wait / Quiesce rather than hanging.
var ErrPeerLost = errors.New("gasnet: peer process lost")

// RealConduit configures a real (multi-process) transport backend.
type RealConduit struct {
	Backend string        // "tcp" or "shm"
	Rank    int           // this process's rank
	BootDir string        // shared bootstrap directory (addr files, sockets, shm files)
	Timeout time.Duration // bootstrap deadline; 0 = 30s
}

// AuxCodec serializes AM aux tokens (RPC invoker descriptors) for the
// wire. In-process backends pass aux by reference; a real transport
// needs the runtime above to map them to registered-function names.
// Encoding nil must be representable as zero bytes.
type AuxCodec interface {
	EncodeAux(aux any) ([]byte, error)
	DecodeAux(b []byte) (any, error)
}

// ConduitInfo is a snapshot of the transport identity and wire counters
// for tooling (upcxx-info).
type ConduitInfo struct {
	Backend     string   `json:"backend"`
	Ranks       int      `json:"ranks"`
	Self        int      `json:"self"`
	PeerAddrs   []string `json:"peer_addrs,omitempty"`
	ShmSegBytes int      `json:"shm_seg_bytes,omitempty"`

	FramesOut       uint64 `json:"frames_out"`
	FramesIn        uint64 `json:"frames_in"`
	BytesOut        uint64 `json:"bytes_out"`
	BytesIn         uint64 `json:"bytes_in"`
	RingRecords     uint64 `json:"ring_records"`
	RingDoorbells   uint64 `json:"ring_doorbells"`
	SocketFallbacks uint64 `json:"socket_fallbacks"`
}

type pendingOp struct {
	onAck  func()       // fPutAck
	dst    []byte       // fGetRep destination
	onDone func()       // fGetRep completion
	onOld  func(uint64) // fAMORep result
}

type peerConn struct {
	rank Rank
	addr string
	conn net.Conn
	br   *bufio.Reader

	wmu     sync.Mutex
	wcnd    *sync.Cond
	wq      [][]byte
	wclosed bool

	bye atomic.Bool // peer announced clean shutdown

	// shm datapath (nil on tcp backend)
	rmu  sync.Mutex // serializes in-process producers of ring
	ring *shmRing   // ring I produce into, inside the peer's file
	seg  []byte     // peer's mapped host segment
}

func (p *peerConn) enqueue(fb []byte) {
	p.wmu.Lock()
	if !p.wclosed {
		p.wq = append(p.wq, fb)
		p.wcnd.Signal()
	}
	p.wmu.Unlock()
}

type shmWorld struct {
	my      *shmFile
	peers   []*shmFile
	inRings []*shmRing // ring i: records produced by rank i, in my file
}

type transport struct {
	net     *Network
	backend string
	self    Rank
	n       int
	aux     AuxCodec
	ep      *Endpoint
	peers   []*peerConn
	ln      net.Listener
	bell    []byte // pre-encoded fRing doorbell frame
	shm     *shmWorld

	seq     atomic.Uint64
	pmu     sync.Mutex
	pending map[uint64]pendingOp

	failMu  sync.Mutex
	failErr error
	hasFail atomic.Bool
	closing atomic.Bool
	wg      sync.WaitGroup

	framesOut, framesIn atomic.Uint64
	bytesOut, bytesIn   atomic.Uint64
	ringRecs, ringBells atomic.Uint64
	sockFalls           atomic.Uint64
}

// ---------------------------------------------------------------------------
// Bootstrap

func addrFile(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("addr.%d", rank))
}

func writeAddrFile(dir string, rank int, addr string) error {
	tmp := addrFile(dir, rank) + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr), 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, addrFile(dir, rank))
}

func pollAddrFile(dir string, rank int, deadline time.Time) (string, error) {
	for {
		b, err := os.ReadFile(addrFile(dir, rank))
		if err == nil && len(b) > 0 {
			return string(b), nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("gasnet: timeout waiting for rank %d address file", rank)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// newTransport bootstraps the socket mesh (and, for shm, the mapped
// world files) and starts the per-peer progress goroutines. It blocks
// until every peer connection is established.
func newTransport(nw *Network, rc *RealConduit) (*transport, error) {
	nranks := nw.cfg.Ranks
	self := Rank(rc.Rank)
	if rc.Rank < 0 || rc.Rank >= nranks {
		return nil, fmt.Errorf("gasnet: conduit rank %d out of range [0,%d)", rc.Rank, nranks)
	}
	timeout := rc.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)

	t := &transport{
		net:     nw,
		backend: rc.Backend,
		self:    self,
		n:       nranks,
		aux:     nw.cfg.Aux,
		peers:   make([]*peerConn, nranks),
		pending: make(map[uint64]pendingOp),
		bell:    encodeEmpty(fRing),
	}

	if rc.Backend == "shm" {
		my, err := createShm(rc.BootDir, rc.Rank, nranks, nw.cfg.SegmentSize)
		if err != nil {
			return nil, err
		}
		t.shm = &shmWorld{
			my:      my,
			peers:   make([]*shmFile, nranks),
			inRings: make([]*shmRing, nranks),
		}
		// The self segment must BE the mapped region so peers' direct
		// memcpys into it are locally visible.
		nw.eps[rc.Rank].seg = NewSegmentBacked(my.seg(nranks), true)
	}
	t.ep = nw.eps[rc.Rank]

	var ln net.Listener
	var err error
	if rc.Backend == "shm" {
		ln, err = net.Listen("unix", filepath.Join(rc.BootDir, fmt.Sprintf("sock.%d", rc.Rank)))
	} else {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		return nil, err
	}
	t.ln = ln
	if err := writeAddrFile(rc.BootDir, rc.Rank, ln.Addr().String()); err != nil {
		ln.Close()
		return nil, err
	}

	// Ranks above us dial in; ranks below us we dial. Each connection
	// opens with an fHello exchange identifying both sides.
	acceptErr := make(chan error, 1)
	go func() { acceptErr <- t.acceptPeers(nranks-1-rc.Rank, deadline) }()
	dialErr := t.dialPeers(rc.BootDir, deadline)
	aerr := <-acceptErr
	if dialErr != nil {
		return nil, dialErr
	}
	if aerr != nil {
		return nil, aerr
	}

	if t.shm != nil {
		for j := 0; j < nranks; j++ {
			if j == rc.Rank {
				continue
			}
			pf, err := openShm(rc.BootDir, j, nranks, nw.cfg.SegmentSize, time.Until(deadline))
			if err != nil {
				return nil, err
			}
			t.shm.peers[j] = pf
			t.shm.inRings[j] = mapRing(t.shm.my.ring(j))
			t.peers[j].ring = mapRing(pf.ring(rc.Rank))
			t.peers[j].seg = pf.seg(nranks)
		}
	}

	for _, p := range t.peers {
		if p == nil {
			continue
		}
		t.wg.Add(2)
		go t.readerLoop(p)
		go t.writerLoop(p)
	}
	return t, nil
}

func (t *transport) newPeer(rank Rank, conn net.Conn, br *bufio.Reader) *peerConn {
	p := &peerConn{rank: rank, addr: conn.RemoteAddr().String(), conn: conn, br: br}
	p.wcnd = sync.NewCond(&p.wmu)
	return p
}

func (t *transport) helloExchange(conn net.Conn, br *bufio.Reader, deadline time.Time) (Rank, error) {
	conn.SetDeadline(deadline)
	if _, err := conn.Write(encodeHello(uint32(t.self), uint32(t.n))); err != nil {
		return 0, err
	}
	body, err := readFrame(br, 64)
	if err != nil {
		return 0, err
	}
	f, err := decodeFrameBody(body)
	if err != nil {
		return 0, err
	}
	if f.typ != fHello {
		return 0, fmt.Errorf("gasnet: expected hello frame, got %#x", f.typ)
	}
	if int(f.nranks) != t.n {
		return 0, fmt.Errorf("gasnet: peer job size %d, want %d", f.nranks, t.n)
	}
	if int(f.rank) >= t.n {
		return 0, fmt.Errorf("gasnet: peer rank %d out of range", f.rank)
	}
	conn.SetDeadline(time.Time{})
	return Rank(f.rank), nil
}

func (t *transport) dialPeers(dir string, deadline time.Time) error {
	for j := 0; j < int(t.self); j++ {
		addr, err := pollAddrFile(dir, j, deadline)
		if err != nil {
			return err
		}
		network := "tcp"
		if t.backend == "shm" {
			network = "unix"
		}
		var conn net.Conn
		for {
			conn, err = net.DialTimeout(network, addr, time.Until(deadline))
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("gasnet: dial rank %d at %s: %w", j, addr, err)
			}
			time.Sleep(time.Millisecond)
		}
		br := bufio.NewReaderSize(conn, 1<<16)
		peer, err := t.helloExchange(conn, br, deadline)
		if err != nil {
			conn.Close()
			return fmt.Errorf("gasnet: handshake with rank %d: %w", j, err)
		}
		if peer != Rank(j) {
			conn.Close()
			return fmt.Errorf("gasnet: dialed rank %d but peer says it is rank %d", j, peer)
		}
		t.peers[j] = t.newPeer(peer, conn, br)
	}
	return nil
}

func (t *transport) acceptPeers(count int, deadline time.Time) error {
	for k := 0; k < count; k++ {
		type deadliner interface{ SetDeadline(time.Time) error }
		if d, ok := t.ln.(deadliner); ok {
			d.SetDeadline(deadline)
		}
		conn, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("gasnet: accept: %w", err)
		}
		br := bufio.NewReaderSize(conn, 1<<16)
		peer, err := t.helloExchange(conn, br, deadline)
		if err != nil {
			conn.Close()
			return fmt.Errorf("gasnet: handshake on accepted connection: %w", err)
		}
		if peer <= t.self || t.peers[peer] != nil {
			conn.Close()
			return fmt.Errorf("gasnet: unexpected connection from rank %d", peer)
		}
		t.peers[peer] = t.newPeer(peer, conn, br)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Progress goroutines

func (t *transport) readerLoop(p *peerConn) {
	runtime.LockOSThread()
	defer t.wg.Done()
	for {
		body, err := readFrame(p.br, frameMaxBody)
		if err != nil {
			if t.closing.Load() || p.bye.Load() {
				return
			}
			t.fail(p.rank, err)
			return
		}
		t.framesIn.Add(1)
		t.bytesIn.Add(uint64(4 + len(body)))
		t.handleFrame(p, body)
	}
}

func (t *transport) writerLoop(p *peerConn) {
	runtime.LockOSThread()
	defer t.wg.Done()
	for {
		p.wmu.Lock()
		for len(p.wq) == 0 && !p.wclosed {
			p.wcnd.Wait()
		}
		q := p.wq
		p.wq = nil
		closed := p.wclosed
		p.wmu.Unlock()
		if len(q) > 0 {
			bufs := net.Buffers(q)
			if _, err := bufs.WriteTo(p.conn); err != nil {
				if !t.closing.Load() && !p.bye.Load() {
					t.fail(p.rank, err)
				}
				// Stop writing; keep draining enqueues so senders never block.
				p.wmu.Lock()
				p.wclosed = true
				p.wq = nil
				p.wmu.Unlock()
				return
			}
		}
		if closed {
			if cw, ok := p.conn.(interface{ CloseWrite() error }); ok {
				cw.CloseWrite()
			}
			return
		}
	}
}

// send routes one pre-encoded frame (length prefix included) to dst:
// via the shm doorbell ring when it fits, else the socket writer queue.
func (t *transport) send(dst Rank, fb []byte) {
	p := t.peers[dst]
	if p == nil {
		return // self or torn down; self-sends never reach the transport
	}
	body := fb[4:]
	if p.ring != nil && len(body) <= ringMaxRec {
		p.rmu.Lock()
		pushed, bellNeeded := p.ring.push(body)
		p.rmu.Unlock()
		if pushed {
			t.ringRecs.Add(1)
			if bellNeeded {
				t.ringBells.Add(1)
				p.enqueue(t.bell)
			}
			return
		}
		t.sockFalls.Add(1)
	}
	t.framesOut.Add(1)
	t.bytesOut.Add(uint64(len(fb)))
	p.enqueue(fb)
}

// ---------------------------------------------------------------------------
// Pending-operation table

func (t *transport) newPending(op pendingOp) uint64 {
	id := t.seq.Add(1)
	t.pmu.Lock()
	t.pending[id] = op
	t.pmu.Unlock()
	return id
}

func (t *transport) takePending(id uint64) (pendingOp, bool) {
	t.pmu.Lock()
	op, ok := t.pending[id]
	if ok {
		delete(t.pending, id)
	}
	t.pmu.Unlock()
	return op, ok
}

// ---------------------------------------------------------------------------
// Aux and remote-AM helpers

func (t *transport) encodeAux(aux any) []byte {
	if aux == nil {
		return nil
	}
	if t.aux == nil {
		panic("gasnet: transport carries an aux token but no AuxCodec is configured")
	}
	b, err := t.aux.EncodeAux(aux)
	if err != nil {
		panic(err)
	}
	return b
}

func (t *transport) decodeAux(b []byte) any {
	if len(b) == 0 {
		return nil
	}
	if t.aux == nil {
		panic("gasnet: transport received an aux token but no AuxCodec is configured")
	}
	aux, err := t.aux.DecodeAux(b)
	if err != nil {
		panic(err)
	}
	return aux
}

// remArm reports whether this send must carry the remote-completion AM:
// for a counted (multi-fragment) AM only the last-sent fragment carries
// it — per-peer FIFO ordering makes that the last to land.
func remArm(rem *RemoteAM) bool {
	if rem == nil {
		return false
	}
	if rem.frags.Load() > 0 && rem.frags.Add(-1) > 0 {
		return false
	}
	return true
}

func (t *transport) remWireOf(rem *RemoteAM) *remWire {
	return &remWire{handler: uint16(rem.Handler), aux: t.encodeAux(rem.Aux), payload: rem.Payload}
}

// sendRemAM ships an armed remote-completion AM as a standalone fAM —
// used by the shm fast path, where the data moved by direct memcpy and
// there is no carrying frame.
func (t *transport) sendRemAM(dst Rank, rem *RemoteAM) {
	t.send(dst, encodeAM(uint32(t.self), uint16(rem.Handler), t.encodeAux(rem.Aux), [][]byte{rem.Payload}))
}

// ---------------------------------------------------------------------------
// Operations (called from the endpoint entry points when dst != self)

func (t *transport) put(dst Rank, seg SegID, off uint64, src []byte, onAck func(), rem *RemoteAM, tag obs.OpTag) {
	n := len(src)
	tag.WireMsg(t.self, dst, n)
	tag.Hop(obs.StageCapture, t.self, n)
	p := t.peers[dst]
	if seg == HostSeg && p != nil && p.seg != nil {
		// Same-host fast path: write straight into the peer's mapped
		// segment. The data is globally visible when copy returns, so
		// operation completion is immediate — no ack round trip.
		end := off + uint64(n)
		if end > uint64(len(p.seg)) || end < off {
			panic(fmt.Sprintf("gasnet: shm put [%d,%d) out of bounds (peer seg %d)", off, end, len(p.seg)))
		}
		copy(p.seg[off:end], src)
		tag.Landing(dst, n)
		if remArm(rem) {
			t.sendRemAM(dst, rem) // ring push's release-store publishes the memcpy
		}
		if onAck != nil {
			t.ep.enqueueComp(onAck)
		}
		return
	}
	var rw *remWire
	if remArm(rem) {
		rw = t.remWireOf(rem)
	}
	var ackID uint64
	if onAck != nil {
		ackID = t.newPending(pendingOp{onAck: onAck})
	}
	tag.Landing(dst, n)
	t.send(dst, encodePut(uint32(t.self), uint16(seg), off, uint32(t.self), ackID, rw, src))
}

func (t *transport) get(src Rank, seg SegID, off uint64, dst []byte, onDone func(), tag obs.OpTag) {
	n := len(dst)
	tag.WireMsg(t.self, src, 0)
	tag.WireMsg(src, t.self, n)
	tag.Hop(obs.StageCapture, t.self, 0)
	p := t.peers[src]
	if seg == HostSeg && p != nil && p.seg != nil {
		end := off + uint64(n)
		if end > uint64(len(p.seg)) || end < off {
			panic(fmt.Sprintf("gasnet: shm get [%d,%d) out of bounds (peer seg %d)", off, end, len(p.seg)))
		}
		copy(dst, p.seg[off:end])
		tag.Landing(t.self, n)
		if onDone != nil {
			t.ep.enqueueComp(onDone)
		}
		return
	}
	id := t.newPending(pendingOp{dst: dst, onDone: func() {
		tag.Landing(t.self, n)
		if onDone != nil {
			onDone()
		}
	}})
	t.send(src, encodeGet(id, uint16(seg), off, uint32(n)))
}

// am ships an Active Message whose payload is the concatenation of
// frags. The frame encode is the single capture copy (zero-copy gather:
// borrowed fragments go straight into the frame buffer, and are
// reusable when am returns).
func (t *transport) am(dst Rank, h HandlerID, frags [][]byte, aux any, tag obs.OpTag) {
	n := 0
	for _, f := range frags {
		n += len(f)
	}
	tag.WireMsg(t.self, dst, n)
	tag.Hop(obs.StageCapture, t.self, n)
	t.send(dst, encodeAM(uint32(t.self), uint16(h), t.encodeAux(aux), frags))
	tag.Landing(dst, n)
}

func (t *transport) amo(dst Rank, off uint64, op AMOOp, op1, op2 uint64, onResult func(old uint64), tag obs.OpTag) {
	tag.WireMsg(t.self, dst, 8)
	tag.Hop(obs.StageCapture, t.self, 8)
	p := t.peers[dst]
	if p != nil && p.seg != nil {
		// Same-host: execute the atomic directly on the peer's mapped
		// word — both sides use hardware atomics (shared segment), so
		// this serializes with the target's own AMOs.
		if off+8 > uint64(len(p.seg)) {
			panic(fmt.Sprintf("gasnet: shm AMO at %d out of bounds (peer seg %d)", off, len(p.seg)))
		}
		w := (*uint64)(unsafe.Pointer(&p.seg[off]))
		old := sharedAMO(w, op, op1, op2)
		tag.Landing(dst, 8)
		if onResult != nil {
			t.ep.enqueueComp(func() { onResult(old) })
		}
		return
	}
	var id uint64
	if onResult != nil {
		id = t.newPending(pendingOp{onOld: onResult})
	}
	t.send(dst, encodeAMO(id, off, byte(op), op1, op2))
	tag.Landing(dst, 8)
}

// copySeg implements third-party and device-aware copies over the
// transport.
func (t *transport) copySeg(srcRank Rank, srcSeg SegID, srcOff uint64, dstRank Rank, dstSeg SegID, dstOff uint64, n int, onDone func(), rem *RemoteAM, tag obs.OpTag) {
	switch {
	case srcRank == t.self:
		src := t.ep.SegByID(srcSeg).Bytes(srcOff, n)
		if srcSeg != HostSeg {
			t.ep.countDMA(obs.DMAD2H, n)
		}
		t.put(dstRank, dstSeg, dstOff, src, onDone, rem, tag)
	case dstRank == t.self:
		dst := t.ep.SegByID(dstSeg).Bytes(dstOff, n)
		wrapped := func() {
			if dstSeg != HostSeg {
				t.ep.countDMA(obs.DMAH2D, n)
			}
			t.ep.deliverRemote(t.self, rem)
			if onDone != nil {
				onDone()
			}
		}
		t.get(srcRank, srcSeg, srcOff, dst, wrapped, tag)
	default:
		sp, dp := t.peers[srcRank], t.peers[dstRank]
		if srcSeg == HostSeg && dstSeg == HostSeg && sp != nil && sp.seg != nil && dp != nil && dp.seg != nil {
			// Same-host third party: one direct memcpy peer to peer.
			tag.WireMsg(srcRank, dstRank, n)
			copy(dp.seg[dstOff:dstOff+uint64(n)], sp.seg[srcOff:srcOff+uint64(n)])
			tag.Landing(dstRank, n)
			if remArm(rem) {
				t.sendRemAM(dstRank, rem)
			}
			if onDone != nil {
				t.ep.enqueueComp(onDone)
			}
			return
		}
		// 2.5-hop relay: ask srcRank to put its bytes to dstRank; the
		// destination acks us directly (ackRank = initiator).
		var rw *remWire
		if remArm(rem) {
			rw = t.remWireOf(rem)
		}
		var ackID uint64
		if onDone != nil {
			ackID = t.newPending(pendingOp{onAck: onDone})
		}
		tag.WireMsg(t.self, srcRank, 0)
		tag.WireMsg(srcRank, dstRank, n)
		t.send(srcRank, encodeCopy(uint32(t.self), uint16(srcSeg), srcOff, uint32(dstRank), uint16(dstSeg), dstOff, uint32(n), uint32(t.self), ackID, rw))
	}
}

// ---------------------------------------------------------------------------
// Inbound dispatch

func (t *transport) handleFrame(p *peerConn, body []byte) {
	f, err := decodeFrameBody(body)
	if err != nil {
		t.fail(p.rank, err)
		return
	}
	switch f.typ {
	case fAM:
		t.ep.enqueueAM(inboundAM{src: Rank(f.rank), handler: HandlerID(f.handler), payload: f.payload, aux: t.decodeAux(f.aux)})
	case fPut:
		seg := t.ep.SegByID(SegID(f.seg))
		t.ep.syncDirect(func() { copy(seg.Bytes(f.off, len(f.payload)), f.payload) })
		if SegID(f.seg) != HostSeg {
			t.ep.countDMA(obs.DMAH2D, len(f.payload))
		}
		if f.hasRem {
			t.ep.enqueueAM(inboundAM{src: Rank(f.rank), handler: HandlerID(f.remHandler), payload: f.remPayload, aux: t.decodeAux(f.remAux)})
		}
		if f.ackID != 0 {
			t.send(Rank(f.ackRank), encodePutAck(f.ackID))
		}
	case fPutAck:
		if op, ok := t.takePending(f.ackID); ok && op.onAck != nil {
			t.ep.enqueueComp(op.onAck)
		}
	case fGet:
		seg := t.ep.SegByID(SegID(f.seg))
		var rep []byte
		t.ep.syncDirect(func() { rep = encodeGetRep(f.reqID, seg.Bytes(f.off, int(f.n))) })
		if SegID(f.seg) != HostSeg {
			t.ep.countDMA(obs.DMAD2H, int(f.n))
		}
		t.send(p.rank, rep)
	case fGetRep:
		if op, ok := t.takePending(f.reqID); ok {
			t.ep.syncDirect(func() { copy(op.dst, f.payload) })
			if op.onDone != nil {
				t.ep.enqueueComp(op.onDone)
			}
		}
	case fAMO:
		if f.amoOp > byte(AMOCompSwap) {
			t.fail(p.rank, fmt.Errorf("gasnet: invalid AMO op %d on the wire", f.amoOp))
			return
		}
		var old uint64
		t.ep.syncDirect(func() { old = t.ep.seg.applyAMO(f.off, AMOOp(f.amoOp), f.amoA, f.amoB) })
		if f.reqID != 0 {
			t.send(p.rank, encodeAMORep(f.reqID, old))
		}
	case fAMORep:
		if op, ok := t.takePending(f.reqID); ok && op.onOld != nil {
			old := f.amoOld
			t.ep.enqueueComp(func() { op.onOld(old) })
		}
	case fCopy:
		t.handleCopy(f)
	case fRing:
		t.drainRing(p)
	case fBye:
		p.bye.Store(true)
		t.drainRing(p)
	default:
		t.fail(p.rank, fmt.Errorf("gasnet: unexpected frame type %#x mid-stream", f.typ))
	}
}

// handleCopy runs at the copy's source rank: read the local bytes and
// relay them to the destination as a put whose ack goes straight back
// to the initiator.
func (t *transport) handleCopy(f frame) {
	seg := t.ep.SegByID(SegID(f.seg))
	if SegID(f.seg) != HostSeg {
		t.ep.countDMA(obs.DMAD2H, int(f.n))
	}
	if Rank(f.dstRank) == t.self {
		dseg := t.ep.SegByID(SegID(f.dstSeg))
		t.ep.syncDirect(func() {
			copy(dseg.Bytes(f.dstOff, int(f.n)), seg.Bytes(f.off, int(f.n)))
		})
		if SegID(f.dstSeg) != HostSeg {
			t.ep.countDMA(obs.DMAH2D, int(f.n))
		}
		if f.hasRem {
			t.ep.enqueueAM(inboundAM{src: Rank(f.rank), handler: HandlerID(f.remHandler), payload: f.remPayload, aux: t.decodeAux(f.remAux)})
		}
		if f.ackID != 0 {
			t.send(Rank(f.ackRank), encodePutAck(f.ackID))
		}
		return
	}
	var rw *remWire
	if f.hasRem {
		rw = &remWire{handler: f.remHandler, aux: f.remAux, payload: f.remPayload}
	}
	var relay []byte
	t.ep.syncDirect(func() {
		relay = encodePut(f.rank, f.dstSeg, f.dstOff, f.ackRank, f.ackID, rw, seg.Bytes(f.off, int(f.n)))
	})
	t.send(Rank(f.dstRank), relay)
}

func (t *transport) drainRing(p *peerConn) {
	if t.shm == nil {
		return
	}
	ring := t.shm.inRings[p.rank]
	if ring == nil {
		return
	}
	ring.drain(func(b []byte) { t.handleFrame(p, b) })
}

// ---------------------------------------------------------------------------
// Failure and teardown

func (t *transport) fail(peer Rank, err error) {
	if t.closing.Load() {
		return
	}
	t.failMu.Lock()
	if t.failErr == nil {
		t.failErr = fmt.Errorf("%w: rank %d: %v", ErrPeerLost, peer, err)
		t.hasFail.Store(true)
	}
	t.failMu.Unlock()
	t.ep.Ring()
}

func (t *transport) failure() error {
	if !t.hasFail.Load() {
		return nil
	}
	t.failMu.Lock()
	defer t.failMu.Unlock()
	return t.failErr
}

// close announces fBye to every peer, drains the writers, and reaps the
// progress goroutines. Callers quiesce first (World.Run's final
// barrier), so per-peer FIFO guarantees all useful traffic precedes the
// bye on the wire.
func (t *transport) close() {
	if t.closing.Swap(true) {
		return
	}
	bye := encodeEmpty(fBye)
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.enqueue(bye)
		p.wmu.Lock()
		p.wclosed = true
		p.wcnd.Signal()
		p.wmu.Unlock()
		// Guard against a hung peer: readers stop within the deadline
		// even if the peer never sends its bye.
		p.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	}
	t.wg.Wait()
	for _, p := range t.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	if t.ln != nil {
		t.ln.Close()
	}
	if t.shm != nil {
		for _, pf := range t.shm.peers {
			if pf != nil {
				pf.close()
			}
		}
		t.shm.my.close()
	}
}

func (t *transport) info() ConduitInfo {
	ci := ConduitInfo{
		Backend:         t.backend,
		Ranks:           t.n,
		Self:            int(t.self),
		FramesOut:       t.framesOut.Load(),
		FramesIn:        t.framesIn.Load(),
		BytesOut:        t.bytesOut.Load(),
		BytesIn:         t.bytesIn.Load(),
		RingRecords:     t.ringRecs.Load(),
		RingDoorbells:   t.ringBells.Load(),
		SocketFallbacks: t.sockFalls.Load(),
	}
	ci.PeerAddrs = make([]string, t.n)
	for r, p := range t.peers {
		if p != nil {
			ci.PeerAddrs[r] = p.addr
		} else if Rank(r) == t.self {
			ci.PeerAddrs[r] = "self"
		}
	}
	if t.shm != nil {
		ci.ShmSegBytes = t.shm.my.segN
	}
	return ci
}
