//go:build linux || darwin

package gasnet

// Shared-memory world file: one mmap'd file per rank under the boot
// directory. Rank r's file holds the doorbell rings other ranks
// produce into plus rank r's registered host segment, so same-host
// puts/gets are direct memcpys into the target's segment.
//
// File layout (all offsets fixed at create time):
//
//	+0   magic  u64  "UPCXSHM1"
//	+8   ready  u32  (owner stores 1 last; peers spin on it)
//	+12  nranks u32
//	+16  nranks × ringBytes   (ring i: producer = rank i)
//	+segOff (page-aligned)    segment bytes
//
// The owner creates the file O_EXCL, sizes it, maps it, initializes
// the header, and publishes ready=1; peers poll for the file, map it,
// and spin briefly on ready.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

const shmMagic = 0x314d485358435055 // "UPCXSHM1" little-endian

type shmFile struct {
	path string
	mem  []byte
	segN int
}

func shmPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("shm.%d", rank))
}

func shmSegOff(nranks int) int {
	off := 16 + nranks*ringBytes
	return (off + 4095) &^ 4095
}

// createShm builds and publishes this rank's world file.
func createShm(dir string, rank, nranks, segBytes int) (*shmFile, error) {
	path := shmPath(dir, rank)
	total := shmSegOff(nranks) + segBytes
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(total)); err != nil {
		f.Close()
		return nil, err
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("gasnet: mmap %s: %w", path, err)
	}
	binary.LittleEndian.PutUint64(mem[0:], shmMagic)
	binary.LittleEndian.PutUint32(mem[12:], uint32(nranks))
	// Ring cursors start zeroed courtesy of Truncate; publish last.
	atomic.StoreUint32((*uint32)(unsafe.Pointer(&mem[8])), 1)
	return &shmFile{path: path, mem: mem, segN: segBytes}, nil
}

// openShm maps a peer's world file, waiting for it to appear and
// become ready.
func openShm(dir string, rank, nranks, segBytes int, timeout time.Duration) (*shmFile, error) {
	path := shmPath(dir, rank)
	total := shmSegOff(nranks) + segBytes
	deadline := time.Now().Add(timeout)
	var f *os.File
	for {
		var err error
		f, err = os.OpenFile(path, os.O_RDWR, 0)
		if err == nil {
			if st, serr := f.Stat(); serr == nil && st.Size() >= int64(total) {
				break
			}
			f.Close()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("gasnet: timeout waiting for shm file %s", path)
		}
		time.Sleep(200 * time.Microsecond)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, total, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("gasnet: mmap %s: %w", path, err)
	}
	ready := (*uint32)(unsafe.Pointer(&mem[8]))
	for atomic.LoadUint32(ready) == 0 {
		if time.Now().After(deadline) {
			syscall.Munmap(mem)
			return nil, fmt.Errorf("gasnet: timeout waiting for shm ready %s", path)
		}
		time.Sleep(100 * time.Microsecond)
	}
	if binary.LittleEndian.Uint64(mem[0:]) != shmMagic {
		syscall.Munmap(mem)
		return nil, fmt.Errorf("gasnet: bad shm magic in %s", path)
	}
	if got := binary.LittleEndian.Uint32(mem[12:]); got != uint32(nranks) {
		syscall.Munmap(mem)
		return nil, fmt.Errorf("gasnet: shm nranks %d, want %d", got, nranks)
	}
	return &shmFile{path: path, mem: mem, segN: segBytes}, nil
}

// ring returns the region rank `producer` pushes into within this file.
func (s *shmFile) ring(producer int) []byte {
	off := 16 + producer*ringBytes
	return s.mem[off : off+ringBytes]
}

// seg returns the owner's registered segment bytes.
func (s *shmFile) seg(nranks int) []byte {
	off := shmSegOff(nranks)
	return s.mem[off : off+s.segN]
}

func (s *shmFile) close() {
	if s.mem != nil {
		syscall.Munmap(s.mem)
		s.mem = nil
	}
}
