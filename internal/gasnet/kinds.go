package gasnet

import (
	"fmt"
	"time"
)

// Memory kinds (UPC++ paper §VI future work; Choi et al., arXiv:2102.12416):
// a segment is either ordinary host memory or the memory of an accelerator
// device attached to the owning rank. Global addresses carry the kind, and
// transfers touching device memory route through a simulated DMA engine —
// the analogue of the GPU's copy engine moving data across PCIe — with its
// own bandwidth/latency model, distinct from the NIC/network path. A
// cross-rank device transfer therefore pays the device hop(s) *and* the
// wire, exactly the cost structure kind-aware runtimes exist to expose.

// Kind classifies the memory behind a segment (upcxx::memory_kind).
type Kind uint8

const (
	// KindHost is ordinary host DRAM: directly addressable by the owning
	// process, moved by the NIC alone.
	KindHost Kind = iota
	// KindDevice is accelerator memory: never host-addressable, reachable
	// only through DMA transfers scheduled on the owning rank's device
	// copy engine.
	KindDevice
)

// String returns the kind mnemonic.
func (k Kind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindDevice:
		return "device"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Valid reports whether k names a known memory kind.
func (k Kind) Valid() bool { return k <= KindDevice }

// SegID names one of a rank's registered segments: 0 is the host segment
// every rank owns, 1.. are device segments in registration order. IDs are
// rank-local, like device ordinals.
type SegID uint16

// HostSeg is the SegID of the rank's host segment.
const HostSeg SegID = 0

// DMAModel describes the cost of one device DMA hop of n payload bytes.
// d2d marks an on-node device-to-device copy (device↔device over the
// fabric or within one device), which bypasses the host bounce and runs at
// device-memory speed; otherwise the hop crosses the host interconnect
// (PCIe-class host↔device).
type DMAModel interface {
	// Overhead is the CPU time spent enqueueing the DMA descriptor,
	// charged synchronously on the initiating goroutine.
	Overhead(n int) time.Duration
	// Gap is the copy-engine occupancy per descriptor (inverse
	// bandwidth): the engine serializes descriptors the way a NIC
	// serializes messages.
	Gap(n int, d2d bool) time.Duration
	// Latency is the kickoff-to-first-byte delay of one DMA.
	Latency(n int, d2d bool) time.Duration
	// GPUDirect reports whether the NIC can read and write device
	// memory directly (GPUDirect RDMA). When every endpoint's engine has
	// the capability, cross-rank device transfers skip the d2h staging
	// DMA and the host bounce buffer: the wire hop is the landing hop.
	GPUDirect() bool
	// FoldGap is the device time one fused reduction fold occupies: a
	// single kernel launch reading `ways` landed operands of n bytes
	// each against the accumulator, charged at device-memory speed.
	FoldGap(n, ways int) time.Duration
}

// NoDelayDMA is the zero-cost DMA model: device hops are free. Used by
// tests and whenever the network model is itself zero-delay. GDR marks
// the engine GPUDirect-capable — cost stays zero, but the conduit
// routes (and counts) the direct chains.
type NoDelayDMA struct{ GDR bool }

func (NoDelayDMA) Overhead(int) time.Duration      { return 0 }
func (NoDelayDMA) Gap(int, bool) time.Duration     { return 0 }
func (NoDelayDMA) Latency(int, bool) time.Duration { return 0 }
func (m NoDelayDMA) GPUDirect() bool               { return m.GDR }
func (NoDelayDMA) FoldGap(int, int) time.Duration  { return 0 }

// PCIeDMA is a linear-cost DMA engine model. Per-byte costs are fractional
// nanoseconds, kept as float64 ns/byte like LogGP's.
type PCIeDMA struct {
	O         time.Duration // descriptor enqueue overhead (CPU)
	L         time.Duration // DMA kickoff latency
	Gp        time.Duration // per-descriptor engine gap
	GNsPerB   float64       // host↔device per-byte time in ns
	D2DNsPerB float64       // on-node device↔device per-byte time in ns
	GDR       bool          // NIC reads/writes device memory directly
}

func (m *PCIeDMA) Overhead(n int) time.Duration { return m.O }

func (m *PCIeDMA) Gap(n int, d2d bool) time.Duration {
	per := m.GNsPerB
	if d2d {
		per = m.D2DNsPerB
	}
	return m.Gp + time.Duration(float64(n)*per)
}

func (m *PCIeDMA) Latency(n int, d2d bool) time.Duration { return m.L }

func (m *PCIeDMA) GPUDirect() bool { return m.GDR }

// FoldGap charges one kernel launch (the per-descriptor gap) plus a
// device-speed pass over the ways×n operand bytes the fused fold reads.
func (m *PCIeDMA) FoldGap(n, ways int) time.Duration {
	return m.Gp + time.Duration(float64(n*ways)*m.D2DNsPerB)
}

// PCIe3 returns a DMA model calibrated to a PCIe Gen3 x16 attached
// accelerator of the paper's era:
//
//   - ~11.8 GB/s sustained host↔device copy bandwidth,
//   - ~1.2 µs kickoff latency (small cudaMemcpy),
//   - ~125 GB/s on-device copies (HBM-class memory).
//
// As with Aries(), the structure matters more than the absolute numbers:
// device paths must be bandwidth-limited by the copy engine, not the NIC,
// and small-transfer latency must be dominated by kickoff cost.
func PCIe3() *PCIeDMA {
	return &PCIeDMA{
		O:         150 * time.Nanosecond,
		L:         1200 * time.Nanosecond,
		Gp:        250 * time.Nanosecond,
		GNsPerB:   0.085, // ~11.8 GB/s over PCIe
		D2DNsPerB: 0.008, // ~125 GB/s on-device
	}
}

// PCIe3GDR is PCIe3 with GPUDirect RDMA enabled: same engine costs for
// the hops that remain, but cross-rank device transfers skip the host
// bounce (the NIC reads/writes device memory directly), so their
// bandwidth is NIC-bound instead of staging-bound.
func PCIe3GDR() *PCIeDMA {
	m := PCIe3()
	m.GDR = true
	return m
}
