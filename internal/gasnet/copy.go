package gasnet

import (
	"time"

	"upcxx/internal/obs"
)

// Kind-aware transfer paths. Transfers whose source or destination is a
// device segment route through the owning rank's simulated DMA engine
// (engine.injectDMAAt): a host↔device hop occupies the copy engine at
// DMAModel cost, while any inter-rank leg still crosses the NIC at network
// cost. The hop structure follows Choi et al. (arXiv:2102.12416):
//
//	put  host → remote device:  wire (NIC) → target DMA h2d
//	get  remote device → host:  source DMA d2h → wire (NIC)
//	copy device → device, one rank:  a single on-node d2d DMA
//	copy device → device, two ranks: d2h DMA → wire → h2d DMA
//
// When the DMA model is GPUDirect-capable (DMAModel.GPUDirect, a job-wide
// property of the simulated conduit), every cross-rank leg touching device
// memory drops its staging hops: the NIC reads the source device segment
// and writes the destination device segment directly, so the chains above
// collapse to a single wire hop between the endpoints — two fewer PCIe
// hops and one less host-bounce copy per fragment. Descriptor *counters*
// still record the device-memory traffic (split d2d-direct vs d2d-bounced
// for cross-rank d2d), but no copy-engine occupancy is charged and the
// wire landing becomes the last landing hop, from which remote-cx
// signaling and counted-fragment piggybacking fire.
//
// Completions are delivered to the initiating endpoint's completion queue
// exactly as for host transfers, so the runtime's persona routing applies
// unchanged. Each chain also accepts an optional RemoteAM, enqueued on the
// destination rank at the instant the final hop lands — after the h2d DMA
// for device destinations — which is what makes remote completion honest
// about device memory: the notification never races ahead of the copy
// engine.
//
// Every chain threads the initiator's obs.OpTag: each DMA hop records a
// StageDMA event at the executing rank, each wire leg a per-peer message,
// and the final copy the landing edge — so an armed trace shows the full
// hop structure above, and the DMA-kind counters (h2d/d2h/d2d) subsume
// what TraceDMA's test hook records.

// PutSeg is Put targeting an arbitrary segment of the destination rank:
// seg 0 is the host segment (identical to Put), higher ids are device
// segments reached through the target's DMA engine. The source buffer is
// captured before PutSeg returns; onAck, if non-nil, is delivered to this
// endpoint once the data is visible in the target segment. rem, if
// non-nil, is enqueued on the destination at that same instant.
func (ep *Endpoint) PutSeg(dst Rank, seg SegID, dstOff uint64, src []byte, onAck func(), rem *RemoteAM) {
	ep.PutSegTag(dst, seg, dstOff, src, onAck, rem, obs.OpTag{})
}

// PutSegTag is PutSeg carrying the initiator's observability tag.
func (ep *Endpoint) PutSegTag(dst Rank, seg SegID, dstOff uint64, src []byte, onAck func(), rem *RemoteAM, tag obs.OpTag) {
	if seg == HostSeg {
		ep.put(dst, dstOff, src, onAck, rem, tag)
		return
	}
	n := len(src)
	ep.puts.Add(1)
	ep.putBytes.Add(uint64(n))
	if t := ep.net.trans; t != nil && dst != ep.rank {
		// Device-segment puts cross the wire as frames even on shm;
		// the target counts the h2d descriptor when the data lands.
		t.put(dst, seg, dstOff, src, onAck, rem, tag)
		return
	}
	tgt := ep.net.eps[dst]
	tgt.countDMA(obs.DMAH2D, n)
	// Resolve eagerly: a wild device pointer or out-of-bounds range must
	// fault on the initiating goroutine, not inside the delivery engine.
	tb := tgt.SegByID(seg).Bytes(dstOff, n)
	if !ep.net.realtime {
		tag.Hop(obs.StageCapture, ep.rank, n)
		if dst != ep.rank {
			tag.WireMsg(ep.rank, dst, n)
		}
		if dst == ep.rank || !ep.net.gdr {
			tag.Hop(obs.StageDMA, dst, n)
		}
		copy(tb, src)
		tag.Landing(dst, n)
		ep.deliverRemote(dst, rem)
		if onAck != nil {
			ep.enqueueComp(onAck)
		}
		return
	}
	dm, eng := ep.net.dma, ep.net.eng
	staged := append([]byte(nil), src...)
	dgap, dlat := dm.Gap(n, false), dm.Latency(n, false)
	if dst == ep.rank {
		// Same-rank h2d: a pure copy-engine hop, no NIC involvement.
		spinFor(dm.Overhead(n))
		tag.Hop(obs.StageCapture, ep.rank, n)
		eng.injectDMAAt(int(dst), time.Now(), dgap, dlat, func(at time.Time) {
			tag.Hop(obs.StageDMA, dst, n)
			copy(tb, staged)
			tag.Landing(dst, n)
			ep.deliverRemote(dst, rem)
			if onAck != nil {
				eng.schedule(at, func(time.Time) { ep.enqueueComp(onAck) })
			}
		})
		return
	}
	m := ep.net.model
	intra := ep.net.Intra(ep.rank, dst)
	spinFor(m.Overhead(n, intra))
	tag.Hop(obs.StageCapture, ep.rank, n)
	tag.WireMsg(ep.rank, dst, n)
	ackLat := m.Latency(0, intra)
	if ep.net.gdr {
		// GPUDirect: the NIC writes device memory as the wire hop lands —
		// no target copy-engine descriptor, no host staging area. The
		// wire landing is the last landing hop: remote AMs fire here.
		eng.injectFrom(int(ep.rank), m.Gap(n, intra), m.Latency(n, intra), func(at time.Time) {
			tag.Hop(obs.StageWire, dst, n)
			copy(tb, staged)
			tag.Landing(dst, n)
			ep.deliverRemote(dst, rem)
			if onAck != nil {
				eng.schedule(at.Add(ackLat), func(time.Time) { ep.enqueueComp(onAck) })
			}
		})
		return
	}
	eng.injectFrom(int(ep.rank), m.Gap(n, intra), m.Latency(n, intra), func(at time.Time) {
		// Landed in the target's host staging area; the target's copy
		// engine now moves it into device memory, then the ack returns.
		// The remote AM waits for the DMA hop too: remote completion
		// means visible *in device memory*, not merely at the NIC.
		tag.Hop(obs.StageWire, dst, n)
		eng.injectDMAAt(int(dst), at, dgap, dlat, func(at2 time.Time) {
			tag.Hop(obs.StageDMA, dst, n)
			copy(tb, staged)
			tag.Landing(dst, n)
			ep.deliverRemote(dst, rem)
			if onAck != nil {
				eng.schedule(at2.Add(ackLat), func(time.Time) { ep.enqueueComp(onAck) })
			}
		})
	})
}

// GetSeg is Get reading from an arbitrary segment of the source rank.
// Device sources drain through the source rank's DMA engine before the
// payload crosses the wire.
func (ep *Endpoint) GetSeg(src Rank, seg SegID, srcOff uint64, dst []byte, onDone func()) {
	ep.GetSegTag(src, seg, srcOff, dst, onDone, obs.OpTag{})
}

// GetSegTag is GetSeg carrying the initiator's observability tag.
func (ep *Endpoint) GetSegTag(src Rank, seg SegID, srcOff uint64, dst []byte, onDone func(), tag obs.OpTag) {
	if seg == HostSeg {
		ep.get(src, srcOff, dst, onDone, tag)
		return
	}
	n := len(dst)
	ep.gets.Add(1)
	ep.getBytes.Add(uint64(n))
	if t := ep.net.trans; t != nil && src != ep.rank {
		t.get(src, seg, srcOff, dst, onDone, tag)
		return
	}
	rem := ep.net.eps[src]
	rem.countDMA(obs.DMAD2H, n)
	sb := rem.SegByID(seg).Bytes(srcOff, n)
	if !ep.net.realtime {
		tag.Hop(obs.StageCapture, ep.rank, 0)
		if src != ep.rank {
			tag.WireMsg(ep.rank, src, 0)
			tag.WireMsg(src, ep.rank, n)
		}
		if src == ep.rank || !ep.net.gdr {
			tag.Hop(obs.StageDMA, src, n)
		}
		copy(dst, sb)
		tag.Landing(ep.rank, n)
		if onDone != nil {
			ep.enqueueComp(onDone)
		}
		return
	}
	dm, eng := ep.net.dma, ep.net.eng
	dgap, dlat := dm.Gap(n, false), dm.Latency(n, false)
	if src == ep.rank {
		// Same-rank d2h: one copy-engine hop.
		spinFor(dm.Overhead(n))
		tag.Hop(obs.StageCapture, ep.rank, 0)
		eng.injectDMAAt(int(src), time.Now(), dgap, dlat, func(at time.Time) {
			tag.Hop(obs.StageDMA, src, n)
			copy(dst, sb)
			tag.Landing(ep.rank, n)
			if onDone != nil {
				eng.schedule(at, func(time.Time) { ep.enqueueComp(onDone) })
			}
		})
		return
	}
	m := ep.net.model
	intra := ep.net.Intra(ep.rank, src)
	spinFor(m.Overhead(0, intra))
	tag.Hop(obs.StageCapture, ep.rank, 0)
	tag.WireMsg(ep.rank, src, 0)
	tag.WireMsg(src, ep.rank, n)
	if ep.net.gdr {
		// GPUDirect: the source NIC reads device memory directly when it
		// injects the reply — no d2h descriptor, no host bounce buffer.
		eng.injectFrom(int(ep.rank), m.Gap(0, intra), m.Latency(0, intra), func(at time.Time) {
			tag.Hop(obs.StageWire, src, 0)
			staged := append([]byte(nil), sb...)
			eng.injectFromAt(int(src), at, m.Gap(n, intra), m.Latency(n, intra), func(time.Time) {
				copy(dst, staged)
				tag.Landing(ep.rank, n)
				if onDone != nil {
					ep.enqueueComp(onDone)
				}
			})
		})
		return
	}
	// Request hop to the source, d2h DMA into the host bounce buffer,
	// then the reply carries the payload back over the wire.
	eng.injectFrom(int(ep.rank), m.Gap(0, intra), m.Latency(0, intra), func(at time.Time) {
		tag.Hop(obs.StageWire, src, 0)
		eng.injectDMAAt(int(src), at, dgap, dlat, func(at2 time.Time) {
			tag.Hop(obs.StageDMA, src, n)
			staged := append([]byte(nil), sb...)
			eng.injectFromAt(int(src), at2, m.Gap(n, intra), m.Latency(n, intra), func(time.Time) {
				copy(dst, staged)
				tag.Landing(ep.rank, n)
				if onDone != nil {
					ep.enqueueComp(onDone)
				}
			})
		})
	})
}

// CopySeg copies n bytes from (srcRank, srcSeg, srcOff) to (dstRank,
// dstSeg, dstOff), initiated by this endpoint, which may be a third party
// to both sides (upcxx::copy). The hop chain is assembled from: a request
// hop when the source rank is not the initiator, a source-side d2h DMA
// when the source is device memory, a wire hop when the ranks differ, a
// destination-side h2d DMA when the destination is device memory, and an
// ack hop back to the initiator. Same-rank device→device copies collapse
// to a single on-node d2d DMA. onDone is delivered to this endpoint's
// completion queue; rem, if non-nil, is enqueued on dstRank the instant
// the final hop's bytes are in place.
func (ep *Endpoint) CopySeg(srcRank Rank, srcSeg SegID, srcOff uint64, dstRank Rank, dstSeg SegID, dstOff uint64, n int, onDone func(), rem *RemoteAM) {
	ep.CopySegTag(srcRank, srcSeg, srcOff, dstRank, dstSeg, dstOff, n, onDone, rem, obs.OpTag{})
}

// CopySegTag is CopySeg carrying the initiator's observability tag.
func (ep *Endpoint) CopySegTag(srcRank Rank, srcSeg SegID, srcOff uint64, dstRank Rank, dstSeg SegID, dstOff uint64, n int, onDone func(), rem *RemoteAM, tag obs.OpTag) {
	ep.puts.Add(1)
	ep.putBytes.Add(uint64(n))
	if t := ep.net.trans; t != nil && (srcRank != ep.rank || dstRank != ep.rank) {
		t.copySeg(srcRank, srcSeg, srcOff, dstRank, dstSeg, dstOff, n, onDone, rem, tag)
		return
	}
	srcEP, dstEP := ep.net.eps[srcRank], ep.net.eps[dstRank]
	srcDev, dstDev := srcSeg != HostSeg, dstSeg != HostSeg
	gdr := ep.net.gdr
	switch {
	case srcDev && dstDev && srcRank == dstRank:
		// Collapses to a single on-node d2d descriptor below.
		srcEP.countDMA(obs.DMAD2DDirect, n)
	case srcDev && dstDev && gdr:
		// GPUDirect cross-rank d2d: both NICs touch device memory
		// directly — device traffic on both ranks, zero host staging.
		srcEP.countDMA(obs.DMAD2DDirect, n)
		dstEP.countDMA(obs.DMAD2DDirect, n)
	case srcDev && dstDev:
		// Bounced cross-rank d2d: the d2h/h2d staging halves of one
		// device-to-device transfer, labeled as such so the split is
		// visible (byte totals match the pre-split d2h+h2d accounting).
		srcEP.countDMA(obs.DMAD2DBounced, n)
		dstEP.countDMA(obs.DMAD2DBounced, n)
	default:
		if srcDev {
			srcEP.countDMA(obs.DMAD2H, n)
		}
		if dstDev {
			dstEP.countDMA(obs.DMAH2D, n)
		}
	}
	if srcRank != ep.rank {
		tag.WireMsg(ep.rank, srcRank, 0)
	}
	if srcRank != dstRank {
		tag.WireMsg(srcRank, dstRank, n)
	}
	sb := srcEP.SegByID(srcSeg).Bytes(srcOff, n)
	db := dstEP.SegByID(dstSeg).Bytes(dstOff, n)
	if !ep.net.realtime {
		tag.Hop(obs.StageCapture, ep.rank, 0)
		if (srcDev || dstDev) && (srcRank == dstRank || !gdr) {
			tag.Hop(obs.StageDMA, srcRank, n)
		}
		copy(db, sb)
		tag.Landing(dstRank, n)
		ep.deliverRemote(dstRank, rem)
		if onDone != nil {
			ep.enqueueComp(onDone)
		}
		return
	}
	m, dm, eng := ep.net.model, ep.net.dma, ep.net.eng
	var staged []byte

	// landed: the destination bytes are in place — hand the remote
	// notification to dstRank before anything else is scheduled.
	landed := func() {
		tag.Landing(dstRank, n)
		ep.deliverRemote(dstRank, rem)
	}

	// finish: data visible at the destination at time at; return the
	// completion to the initiator.
	finish := func(at time.Time) {
		if onDone == nil {
			return
		}
		if dstRank == ep.rank {
			eng.schedule(at, func(time.Time) { ep.enqueueComp(onDone) })
			return
		}
		intra := ep.net.Intra(dstRank, ep.rank)
		eng.injectFromAt(int(dstRank), at, m.Gap(0, intra), m.Latency(0, intra),
			func(time.Time) { ep.enqueueComp(onDone) })
	}

	// dstSide: payload arrived at dstRank at time at — on the host side,
	// or (GPUDirect) written straight into the destination segment by
	// the NIC, making the wire landing the chain's last landing hop.
	dstSide := func(at time.Time) {
		tag.Hop(obs.StageWire, dstRank, n)
		if dstDev && !gdr {
			eng.injectDMAAt(int(dstRank), at, dm.Gap(n, false), dm.Latency(n, false), func(at2 time.Time) {
				tag.Hop(obs.StageDMA, dstRank, n)
				copy(db, staged)
				landed()
				finish(at2)
			})
			return
		}
		copy(db, staged)
		landed()
		finish(at)
	}

	// wire: payload staged at srcRank's host side at time at.
	wire := func(at time.Time) {
		intra := ep.net.Intra(srcRank, dstRank)
		eng.injectFromAt(int(srcRank), at, m.Gap(n, intra), m.Latency(n, intra), dstSide)
	}

	// srcSide: the copy begins executing at srcRank at time at.
	srcSide := func(at time.Time) {
		if srcRank == dstRank {
			switch {
			case srcDev && dstDev:
				// On-node d2d: one copy-engine descriptor at device speed.
				eng.injectDMAAt(int(srcRank), at, dm.Gap(n, true), dm.Latency(n, true), func(at2 time.Time) {
					tag.Hop(obs.StageDMA, srcRank, n)
					copy(db, sb)
					landed()
					finish(at2)
				})
			case srcDev || dstDev:
				// One h2d or d2h hop.
				eng.injectDMAAt(int(srcRank), at, dm.Gap(n, false), dm.Latency(n, false), func(at2 time.Time) {
					tag.Hop(obs.StageDMA, srcRank, n)
					copy(db, sb)
					landed()
					finish(at2)
				})
			default:
				// Host→host on one rank: a shared-memory move at intra cost.
				eng.injectFromAt(int(srcRank), at, m.Gap(n, true), m.Latency(n, true), func(at2 time.Time) {
					copy(db, sb)
					landed()
					finish(at2)
				})
			}
			return
		}
		if srcDev && !gdr {
			eng.injectDMAAt(int(srcRank), at, dm.Gap(n, false), dm.Latency(n, false), func(at2 time.Time) {
				tag.Hop(obs.StageDMA, srcRank, n)
				staged = append([]byte(nil), sb...)
				wire(at2)
			})
			return
		}
		// Host source, or (GPUDirect) the NIC reads the device segment
		// directly at wire injection: no d2h descriptor, no bounce.
		staged = append([]byte(nil), sb...)
		wire(at)
	}

	if srcRank == ep.rank {
		if (srcDev && (srcRank == dstRank || !gdr)) || (srcRank == dstRank && dstDev) {
			spinFor(dm.Overhead(n))
		} else {
			spinFor(m.Overhead(n, ep.net.Intra(ep.rank, dstRank)))
		}
		tag.Hop(obs.StageCapture, ep.rank, 0)
		srcSide(time.Now())
		return
	}
	// Third-party (or remote-source) copy: a request hop carries the
	// descriptor to the source rank, which executes the chain.
	intra := ep.net.Intra(ep.rank, srcRank)
	spinFor(m.Overhead(0, intra))
	tag.Hop(obs.StageCapture, ep.rank, 0)
	eng.injectFrom(int(ep.rank), m.Gap(0, intra), m.Latency(0, intra), srcSide)
}
