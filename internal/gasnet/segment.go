package gasnet

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Segment is one rank's registered shared-memory region: the slab of
// physically-local memory that participates in the global address space.
// Remote ranks address it by (rank, offset); the owning rank can also view
// allocations as ordinary slices (the paper's global-to-local pointer
// conversion).
//
// Allocation is served by a first-fit free list with coalescing. The
// allocator is safe for concurrent use; access to the memory itself is as
// synchronized as real RDMA, i.e. not at all — racing transfers race, and
// callers must order them, exactly as the paper requires of UPC++ users.
type Segment struct {
	buf    []byte
	kind   Kind // memory kind backing this segment (host or device)
	backed bool // backing store supplied by the caller (mmap); Grow forbidden
	shared bool // other processes access the words: atomics must use the hardware

	mu    sync.Mutex
	free  []block          // sorted by offset, coalesced
	sizes map[uint64]int64 // live allocation offset -> size

	amoMu sync.Mutex // serializes NIC-side atomics on this segment
}

type block struct {
	off  uint64
	size int64
}

// segAlign is the minimum alignment of every allocation, sufficient for any
// scalar element type.
const segAlign = 16

// NewSegment creates a host-kind segment of the given size in bytes.
func NewSegment(size int) *Segment { return NewSegmentKind(size, KindHost) }

// NewSegmentKind creates a segment of the given size and memory kind. The
// simulation backs every kind with process memory; the kind governs which
// engine (NIC or device DMA) may move its bytes and whether the owning
// rank may address it directly.
func NewSegmentKind(size int, kind Kind) *Segment {
	if size <= 0 {
		panic("gasnet: segment size must be positive")
	}
	if !kind.Valid() {
		panic(fmt.Sprintf("gasnet: unknown memory kind %d", kind))
	}
	return &Segment{
		buf:   make([]byte, size),
		kind:  kind,
		free:  []block{{0, int64(size)}},
		sizes: make(map[uint64]int64),
	}
}

// NewSegmentBacked wraps caller-supplied memory (an mmap'd shared region)
// as a host-kind segment. shared marks the words as cross-process visible:
// NIC-side atomics then use hardware atomic instructions instead of the
// in-process amoMu, so a remote rank's direct CAS on the mapped words and
// this rank's own AMOs serialize correctly.
func NewSegmentBacked(buf []byte, shared bool) *Segment {
	if len(buf) == 0 {
		panic("gasnet: backed segment must be non-empty")
	}
	return &Segment{
		buf:    buf,
		kind:   KindHost,
		backed: true,
		shared: shared,
		free:   []block{{0, int64(len(buf))}},
		sizes:  make(map[uint64]int64),
	}
}

// Size returns the total segment size in bytes.
func (s *Segment) Size() int { return len(s.buf) }

// Grow extends the segment by extra bytes. Offsets are stable — the old
// contents occupy the same offsets in the new backing store — so every
// outstanding (rank, offset) global pointer into the segment remains
// valid. The new capacity is appended to the free list, coalescing with
// a trailing free block.
//
// Growth swaps the backing store, and slices previously returned by
// Bytes alias the *old* store: the caller must quiesce transfers (and
// drop kernel views) touching this segment before growing, exactly as
// it must before close/teardown. Concurrent Alloc/Free are safe.
func (s *Segment) Grow(extra int) {
	if extra <= 0 {
		panic(fmt.Sprintf("gasnet: segment growth %d must be positive", extra))
	}
	if s.backed {
		panic("gasnet: cannot grow a backed (mmap'd) segment — its size is fixed at registration")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.buf
	s.buf = make([]byte, len(old)+extra)
	copy(s.buf, old)
	nb := block{uint64(len(old)), int64(extra)}
	if k := len(s.free) - 1; k >= 0 && s.free[k].off+uint64(s.free[k].size) == nb.off {
		s.free[k].size += nb.size
	} else {
		s.free = append(s.free, nb)
	}
}

// Kind returns the memory kind backing this segment.
func (s *Segment) Kind() Kind { return s.kind }

// Alloc reserves n bytes (n > 0) and returns the segment offset.
func (s *Segment) Alloc(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("gasnet: alloc size %d must be positive", n)
	}
	need := (int64(n) + segAlign - 1) &^ (segAlign - 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.free {
		b := &s.free[i]
		if b.size >= need {
			off := b.off
			b.off += uint64(need)
			b.size -= need
			if b.size == 0 {
				s.free = append(s.free[:i], s.free[i+1:]...)
			}
			s.sizes[off] = need
			return off, nil
		}
	}
	return 0, fmt.Errorf("gasnet: segment exhausted allocating %d bytes (%d free in %d blocks)",
		n, s.freeBytesLocked(), len(s.free))
}

// Free releases an allocation previously returned by Alloc.
func (s *Segment) Free(off uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	size, ok := s.sizes[off]
	if !ok {
		return fmt.Errorf("gasnet: free of unallocated offset %d", off)
	}
	delete(s.sizes, off)
	// Insert into the sorted free list and coalesce with neighbours.
	i := sort.Search(len(s.free), func(i int) bool { return s.free[i].off > off })
	nb := block{off, size}
	s.free = append(s.free, block{})
	copy(s.free[i+1:], s.free[i:])
	s.free[i] = nb
	// Coalesce with successor.
	if i+1 < len(s.free) && s.free[i].off+uint64(s.free[i].size) == s.free[i+1].off {
		s.free[i].size += s.free[i+1].size
		s.free = append(s.free[:i+1], s.free[i+2:]...)
	}
	// Coalesce with predecessor.
	if i > 0 && s.free[i-1].off+uint64(s.free[i-1].size) == s.free[i].off {
		s.free[i-1].size += s.free[i].size
		s.free = append(s.free[:i], s.free[i+1:]...)
	}
	return nil
}

// FreeBytes returns the number of free bytes in the segment.
func (s *Segment) FreeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.freeBytesLocked()
}

func (s *Segment) freeBytesLocked() int64 {
	var total int64
	for _, b := range s.free {
		total += b.size
	}
	return total
}

// LiveAllocs returns the number of outstanding allocations.
func (s *Segment) LiveAllocs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sizes)
}

// Bytes returns the n bytes at off as a slice aliasing the segment. It
// panics if the range is out of bounds, which indicates a runtime bug or a
// wild global pointer — the analogue of a segfault on the real system.
func (s *Segment) Bytes(off uint64, n int) []byte {
	end := off + uint64(n)
	if n < 0 || end > uint64(len(s.buf)) || end < off {
		panic(fmt.Sprintf("gasnet: segment access [%d,%d) out of bounds (size %d)", off, end, len(s.buf)))
	}
	return s.buf[off:end:end]
}

// wordAt returns the 8-byte word at off as an atomically-addressable
// *uint64. Allocations are segAlign(16)-aligned and the backing store is
// page- or heap-aligned, so any in-bounds 8-aligned offset is safe; the
// little-endian byte layout matches binary.LittleEndian on the supported
// platforms.
func (s *Segment) wordAt(off uint64) *uint64 {
	w := s.Bytes(off, 8)
	return (*uint64)(unsafe.Pointer(&w[0]))
}

// ReadU64 reads the 8-byte little-endian word at off under the segment's
// atomic domain (lock, or hardware atomic for shared segments).
func (s *Segment) ReadU64(off uint64) uint64 {
	if s.shared {
		return atomic.LoadUint64(s.wordAt(off))
	}
	s.amoMu.Lock()
	defer s.amoMu.Unlock()
	return binary.LittleEndian.Uint64(s.Bytes(off, 8))
}

// WriteU64 writes the 8-byte little-endian word at off under the segment's
// atomic domain (lock, or hardware atomic for shared segments).
func (s *Segment) WriteU64(off uint64, v uint64) {
	if s.shared {
		atomic.StoreUint64(s.wordAt(off), v)
		return
	}
	s.amoMu.Lock()
	defer s.amoMu.Unlock()
	binary.LittleEndian.PutUint64(s.Bytes(off, 8), v)
}

// AMOOp identifies a NIC-offloaded atomic memory operation, mirroring the
// GASNet-EX / Aries offloaded AMO set used by upcxx::atomic_domain.
type AMOOp uint8

const (
	AMOLoad AMOOp = iota
	AMOStore
	AMOAdd      // fetch-and-add, returns old value
	AMOAnd      // fetch-and-and
	AMOOr       // fetch-and-or
	AMOXor      // fetch-and-xor
	AMOMin      // fetch-and-min (signed)
	AMOMax      // fetch-and-max (signed)
	AMOCompSwap // compare-and-swap: operand2 stored if old == operand1
)

// String returns the operation mnemonic.
func (op AMOOp) String() string {
	switch op {
	case AMOLoad:
		return "load"
	case AMOStore:
		return "store"
	case AMOAdd:
		return "add"
	case AMOAnd:
		return "and"
	case AMOOr:
		return "or"
	case AMOXor:
		return "xor"
	case AMOMin:
		return "min"
	case AMOMax:
		return "max"
	case AMOCompSwap:
		return "cswap"
	default:
		return fmt.Sprintf("amo(%d)", uint8(op))
	}
}

// amoNext computes the stored value of op given the previous word value
// and the operands.
func amoNext(old uint64, op AMOOp, operand1, operand2 uint64) uint64 {
	switch op {
	case AMOLoad:
		return old
	case AMOStore:
		return operand1
	case AMOAdd:
		return old + operand1
	case AMOAnd:
		return old & operand1
	case AMOOr:
		return old | operand1
	case AMOXor:
		return old ^ operand1
	case AMOMin:
		if int64(operand1) < int64(old) {
			return operand1
		}
		return old
	case AMOMax:
		if int64(operand1) > int64(old) {
			return operand1
		}
		return old
	case AMOCompSwap:
		if old == operand1 {
			return operand2
		}
		return old
	default:
		panic(fmt.Sprintf("gasnet: unknown AMO op %d", op))
	}
}

// sharedAMO executes op on the atomically-addressable word w with a
// hardware CAS loop — the path for cross-process shared words, where an
// in-process mutex cannot serialize against other processes.
func sharedAMO(w *uint64, op AMOOp, operand1, operand2 uint64) uint64 {
	for {
		old := atomic.LoadUint64(w)
		next := amoNext(old, op, operand1, operand2)
		if next == old || atomic.CompareAndSwapUint64(w, old, next) {
			return old
		}
	}
}

// applyAMO executes op on the 64-bit word at off, returning the previous
// value. This is the "NIC-side" execution path: no target CPU
// involvement. Private segments serialize under the atomic domain lock;
// shared (cross-process mmap'd) segments use hardware atomics so remote
// processes' direct CAS on the same words stays correct.
func (s *Segment) applyAMO(off uint64, op AMOOp, operand1, operand2 uint64) uint64 {
	if s.shared {
		return sharedAMO(s.wordAt(off), op, operand1, operand2)
	}
	s.amoMu.Lock()
	defer s.amoMu.Unlock()
	w := s.Bytes(off, 8)
	old := binary.LittleEndian.Uint64(w)
	binary.LittleEndian.PutUint64(w, amoNext(old, op, operand1, operand2))
	return old
}
