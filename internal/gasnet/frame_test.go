package gasnet

import (
	"bufio"
	"bytes"
	"testing"
)

func TestFrameRoundTrips(t *testing.T) {
	cases := []struct {
		name string
		fb   []byte
		want func(t *testing.T, f frame)
	}{
		{"hello", encodeHello(3, 8), func(t *testing.T, f frame) {
			if f.typ != fHello || f.rank != 3 || f.nranks != 8 || f.proto != frameProto {
				t.Fatalf("hello = %+v", f)
			}
		}},
		{"am", encodeAM(2, 7, []byte("aux"), [][]byte{[]byte("pay"), []byte("load")}), func(t *testing.T, f frame) {
			if f.typ != fAM || f.rank != 2 || f.handler != 7 ||
				string(f.aux) != "aux" || string(f.payload) != "payload" {
				t.Fatalf("am = %+v", f)
			}
		}},
		{"put-no-rem", encodePut(1, 0, 64, 1, 99, nil, []byte("data")), func(t *testing.T, f frame) {
			if f.typ != fPut || f.rank != 1 || f.seg != 0 || f.off != 64 ||
				f.ackRank != 1 || f.ackID != 99 || f.hasRem || string(f.payload) != "data" {
				t.Fatalf("put = %+v", f)
			}
		}},
		{"put-rem", encodePut(1, 2, 64, 3, 0, &remWire{handler: 5, aux: []byte("a"), payload: []byte("rp")}, []byte("d")), func(t *testing.T, f frame) {
			if !f.hasRem || f.remHandler != 5 || string(f.remAux) != "a" ||
				string(f.remPayload) != "rp" || string(f.payload) != "d" {
				t.Fatalf("put+rem = %+v", f)
			}
		}},
		{"putack", encodePutAck(42), func(t *testing.T, f frame) {
			if f.typ != fPutAck || f.ackID != 42 {
				t.Fatalf("putack = %+v", f)
			}
		}},
		{"get", encodeGet(7, 1, 128, 256), func(t *testing.T, f frame) {
			if f.typ != fGet || f.reqID != 7 || f.seg != 1 || f.off != 128 || f.n != 256 {
				t.Fatalf("get = %+v", f)
			}
		}},
		{"getrep", encodeGetRep(7, []byte("xyz")), func(t *testing.T, f frame) {
			if f.typ != fGetRep || f.reqID != 7 || string(f.payload) != "xyz" {
				t.Fatalf("getrep = %+v", f)
			}
		}},
		{"amo", encodeAMO(9, 16, byte(AMOAdd), 5, 0), func(t *testing.T, f frame) {
			if f.typ != fAMO || f.reqID != 9 || f.off != 16 || f.amoOp != byte(AMOAdd) || f.amoA != 5 {
				t.Fatalf("amo = %+v", f)
			}
		}},
		{"amorep", encodeAMORep(9, 77), func(t *testing.T, f frame) {
			if f.typ != fAMORep || f.reqID != 9 || f.amoOld != 77 {
				t.Fatalf("amorep = %+v", f)
			}
		}},
		{"copy", encodeCopy(0, 1, 8, 2, 0, 16, 32, 0, 11, nil), func(t *testing.T, f frame) {
			if f.typ != fCopy || f.rank != 0 || f.seg != 1 || f.off != 8 ||
				f.dstRank != 2 || f.dstSeg != 0 || f.dstOff != 16 || f.n != 32 ||
				f.ackRank != 0 || f.ackID != 11 {
				t.Fatalf("copy = %+v", f)
			}
		}},
		{"ring", encodeEmpty(fRing), func(t *testing.T, f frame) {
			if f.typ != fRing {
				t.Fatalf("ring = %+v", f)
			}
		}},
		{"bye", encodeEmpty(fBye), func(t *testing.T, f frame) {
			if f.typ != fBye {
				t.Fatalf("bye = %+v", f)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Through the streaming reader first: length prefix honored.
			br := bufio.NewReader(bytes.NewReader(tc.fb))
			body, err := readFrame(br, frameMaxBody)
			if err != nil {
				t.Fatalf("readFrame: %v", err)
			}
			f, err := decodeFrameBody(body)
			if err != nil {
				t.Fatalf("decodeFrameBody: %v", err)
			}
			tc.want(t, f)
		})
	}
}

func TestReadFrameHostileLengths(t *testing.T) {
	// Oversized length prefix must error, not allocate/hang.
	big := []byte{0xff, 0xff, 0xff, 0x7f, 0x01}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(big)), frameMaxBody); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Zero length must error.
	zero := []byte{0, 0, 0, 0}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(zero)), frameMaxBody); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Truncated body must error.
	trunc := encodeAM(0, 1, nil, [][]byte{make([]byte, 100)})[:20]
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(trunc)), frameMaxBody); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// FuzzTransportFrame: hostile bodies must never panic the decoder —
// truncation, wild lengths, garbage types. Seeded with every valid
// frame type plus mutations.
func FuzzTransportFrame(f *testing.F) {
	seeds := [][]byte{
		encodeHello(0, 4),
		encodeAM(1, 2, []byte("x"), [][]byte{[]byte("payload")}),
		encodePut(0, 0, 8, 0, 1, &remWire{handler: 3, aux: []byte("a"), payload: []byte("p")}, []byte("data")),
		encodePutAck(1),
		encodeGet(2, 0, 0, 64),
		encodeGetRep(2, []byte("reply")),
		encodeAMO(3, 8, byte(AMOCompSwap), 1, 2),
		encodeAMORep(3, 9),
		encodeCopy(0, 1, 0, 1, 0, 0, 8, 0, 4, nil),
		encodeEmpty(fRing),
		encodeEmpty(fBye),
		{},
		{0xff},
	}
	for _, s := range seeds {
		if len(s) > 4 {
			f.Add(s[4:]) // frame bodies (strip the length prefix)
		} else {
			f.Add(s)
		}
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := decodeFrameBody(body)
		if err != nil {
			return
		}
		// A decoded frame's slices must stay in bounds of the input.
		total := len(fr.aux) + len(fr.payload) + len(fr.remAux) + len(fr.remPayload)
		if total > len(body) {
			t.Fatalf("decoded slices (%d bytes) exceed input (%d bytes)", total, len(body))
		}
	})
}

func TestRingRoundTrip(t *testing.T) {
	region := make([]byte, ringBytes)
	r := mapRing(region)
	var got [][]byte
	// Fill/drain repeatedly so the cursor wraps several times.
	rec := make([]byte, 1000)
	for i := 0; i < 500; i++ {
		rec[0] = byte(i)
		pushed, _ := r.push(rec)
		if !pushed {
			t.Fatalf("push %d failed with empty consumer backlog", i)
		}
		if i%3 == 2 {
			r.drain(func(b []byte) { got = append(got, b) })
		}
	}
	r.drain(func(b []byte) { got = append(got, b) })
	if len(got) != 500 {
		t.Fatalf("drained %d records, want 500", len(got))
	}
	for i, b := range got {
		if len(b) != 1000 || b[0] != byte(i) {
			t.Fatalf("record %d corrupt (len %d, head %d)", i, len(b), b[0])
		}
	}
}

func TestRingFullFallsBack(t *testing.T) {
	region := make([]byte, ringBytes)
	r := mapRing(region)
	rec := make([]byte, ringMaxRec)
	n := 0
	for {
		pushed, _ := r.push(rec)
		if !pushed {
			break
		}
		n++
		if n > ringCap {
			t.Fatal("ring never filled")
		}
	}
	if n == 0 {
		t.Fatal("ring accepted nothing")
	}
	// Drain, then pushes succeed again.
	drained := 0
	r.drain(func([]byte) { drained++ })
	if drained != n {
		t.Fatalf("drained %d, pushed %d", drained, n)
	}
	if pushed, _ := r.push(rec); !pushed {
		t.Fatal("push after drain failed")
	}
}

func TestRingDoorbellOnIdle(t *testing.T) {
	region := make([]byte, ringBytes)
	r := mapRing(region)
	// First push into an empty (caught-up) ring must request a bell.
	if _, bell := r.push([]byte("x")); !bell {
		t.Fatal("no doorbell for push into idle ring")
	}
	// Back-to-back push with backlog must not re-ring.
	if _, bell := r.push([]byte("y")); bell {
		t.Fatal("doorbell rung with consumer backlog present")
	}
	r.drain(func([]byte) {})
	if _, bell := r.push([]byte("z")); !bell {
		t.Fatal("no doorbell after consumer caught up")
	}
}
