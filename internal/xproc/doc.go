// Package xproc holds the cross-process conduit test matrix: race-enabled
// smoke tests that launch this test binary as real OS-process ranks over
// the tcp and shm backends (see xproc_test.go). The package itself has no
// library code — the tests re-exec the test executable through
// core.LaunchWorld and dispatch to worker scenarios in TestMain.
package xproc
