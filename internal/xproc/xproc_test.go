// Cross-process conduit matrix: every scenario here runs as a real
// multi-process job — the test re-executes its own binary once per rank
// through core.LaunchWorld, and TestMain dispatches the spawned copies
// (which arrive with UPCXX_RANK set) to a worker scenario instead of the
// test runner. Because the workers are the same race-instrumented
// executable, `go test -race ./internal/xproc` extends the race detector
// across every rank process of every scenario.
//
// Scenarios:
//
//	smoke — put, get, rpc, batch-rpc, signaling-put, allreduce, each
//	        verified at the wire's far side; run at 2 and 4 ranks on
//	        both backends.
//	idle  — ranks sit in ProgressWait for 600ms of wall time and assert
//	        (via getrusage) that the idle-wait parks instead of spinning:
//	        CPU burned must stay under a third of the wall time.
//	kill  — one rank vanishes mid-job (os.Exit with no shutdown
//	        handshake); the survivors must observe an error wrapping
//	        gasnet.ErrPeerLost instead of hanging, and prove it by
//	        dropping marker files the parent test asserts on.
//	task  — the async-task runtime across real processes: a skewed
//	        fire-and-forget workload (every task at rank 0) drained by
//	        work stealing, a result-bearing AsyncAt round trip, and a
//	        Finish whose termination count is verified by allreduce.
//	taskkill — one rank dies before joining the termination detector;
//	        the survivors' Finish must surface ErrPeerLost instead of
//	        spinning detector waves forever, proven by marker files.
package xproc

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"upcxx/internal/gasnet"
	"upcxx/internal/task"

	core "upcxx/internal/core"
)

// Registered RPC bodies for the smoke scenario (cross-process dispatch
// is by function name).

func xprocEcho(trk *core.Rank, x uint64) uint64 { return x + 1 }

func xprocBump(trk *core.Rank, c core.GPtr[uint64]) {
	core.Local(trk, c, 1)[0]++
}

// Task bodies for the task scenarios; xprocTaskRuns counts executions
// in this OS process, whichever rank they were spawned at.

var xprocTaskRuns atomic.Uint64

func xprocTaskWork(trk *core.Rank, us int64) {
	time.Sleep(time.Duration(us) * time.Microsecond)
	xprocTaskRuns.Add(1)
}

func xprocTaskEcho(trk *core.Rank, x uint64) uint64 { return x * 3 }

func init() {
	core.RegisterRPC(xprocEcho)
	core.RegisterRPCFF(xprocBump)
	task.RegisterFF(xprocTaskWork)
	task.Register(xprocTaskEcho)
}

// TestMain dispatches spawned rank processes to their worker scenario;
// the parent invocation (no UPCXX_RANK) runs the normal test binary.
func TestMain(m *testing.M) {
	if scen := os.Getenv("XPROC_SCENARIO"); scen != "" && os.Getenv("UPCXX_RANK") != "" {
		os.Exit(runWorker(scen))
	}
	os.Exit(m.Run())
}

// launch runs this test binary as an n-rank job over backend with the
// given scenario and returns the job's aggregate exit code.
func launch(t *testing.T, backend string, n int, scenario string, extraEnv ...string) int {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	dir := t.TempDir()
	env := append([]string{"XPROC_SCENARIO=" + scenario}, extraEnv...)
	return core.LaunchWorld(n, backend, dir, exe, nil, env)
}

var backends = []string{"tcp", "shm"}

func TestSmoke(t *testing.T) {
	for _, backend := range backends {
		for _, n := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/%dranks", backend, n), func(t *testing.T) {
				if code := launch(t, backend, n, "smoke"); code != 0 {
					t.Fatalf("smoke job over %s with %d ranks exited %d", backend, n, code)
				}
			})
		}
	}
}

func TestIdleWaitParks(t *testing.T) {
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			if code := launch(t, backend, 2, "idle"); code != 0 {
				t.Fatalf("idle job over %s exited %d (idle-wait burned too much CPU?)", backend, code)
			}
		})
	}
}

func TestKilledRankSurfacesPeerLost(t *testing.T) {
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			mark := t.TempDir()
			// The victim exits with status 0 so the launcher does not
			// tear the survivors down before they can observe the loss;
			// the assertion is the survivors' marker files, not the
			// job's exit code.
			if code := launch(t, backend, 3, "kill", "XPROC_MARK="+mark); code != 0 {
				t.Fatalf("kill job over %s exited %d (a survivor hung or saw the wrong error)", backend, code)
			}
			for _, r := range []int{0, 2} {
				b, err := os.ReadFile(filepath.Join(mark, fmt.Sprintf("survivor-%d", r)))
				if err != nil {
					t.Fatalf("surviving rank %d left no ErrPeerLost marker: %v", r, err)
				}
				t.Logf("rank %d observed: %s", r, b)
			}
		})
	}
}

func TestTaskRuntimeXProc(t *testing.T) {
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			if code := launch(t, backend, 4, "task"); code != 0 {
				t.Fatalf("task job over %s exited %d", backend, code)
			}
		})
	}
}

func TestTaskFinishSurfacesPeerLost(t *testing.T) {
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			mark := t.TempDir()
			if code := launch(t, backend, 3, "taskkill", "XPROC_MARK="+mark); code != 0 {
				t.Fatalf("taskkill job over %s exited %d (a survivor hung in Finish or saw the wrong error)", backend, code)
			}
			for _, r := range []int{0, 2} {
				b, err := os.ReadFile(filepath.Join(mark, fmt.Sprintf("survivor-%d", r)))
				if err != nil {
					t.Fatalf("surviving rank %d's Finish left no ErrPeerLost marker: %v", r, err)
				}
				t.Logf("rank %d Finish returned: %s", r, b)
			}
		})
	}
}

// --- worker side --------------------------------------------------------

func runWorker(scen string) (code int) {
	core.RunConfig(core.Config{SegmentSize: 32 << 20}, func(rk *core.Rank) {
		switch scen {
		case "smoke":
			smokeBody(rk)
		case "idle":
			code = idleBody(rk)
		case "kill":
			killBody(rk) // never returns
		case "task":
			taskBody(rk)
		case "taskkill":
			taskKillBody(rk) // never returns
		default:
			fmt.Fprintf(os.Stderr, "xproc: unknown scenario %q\n", scen)
			code = 2
		}
	})
	return code
}

func expect(cond bool, format string, args ...any) {
	if !cond {
		panic("xproc: " + fmt.Sprintf(format, args...))
	}
}

// smokeBody exercises one of each wire operation, verifying payloads at
// the receiving side.
func smokeBody(rk *core.Rank) {
	me, n := rk.Me(), rk.N()
	right, left := (me+1)%n, (me-1+n)%n

	arr := core.MustNewArray[uint64](rk, 8)
	cnt := core.MustNewArray[uint64](rk, 1)
	type slots struct {
		Arr core.GPtr[uint64]
		Cnt core.GPtr[uint64]
	}
	obj := core.NewDistObject(rk, slots{arr, cnt})
	rk.Barrier()
	rs := core.FetchDist[slots](rk, obj.ID(), right).Wait()
	ls := core.FetchDist[slots](rk, obj.ID(), left).Wait()
	loc := core.Local(rk, arr, 8)

	// put: stamp rank-tagged values into the right neighbour's slots.
	src := make([]uint64, 4)
	for i := range src {
		src[i] = uint64(me)*100 + uint64(i) + 1
	}
	core.RPut(rk, src, rs.Arr).Wait()
	rk.Barrier()
	for i := 0; i < 4; i++ {
		expect(loc[i] == uint64(left)*100+uint64(i)+1,
			"put: rank %d slot %d = %d, want from rank %d", me, i, loc[i], left)
	}

	// get: publish locally, then read the left neighbour's upper slots.
	for i := 0; i < 4; i++ {
		loc[4+i] = uint64(me)*1000 + uint64(i)
	}
	rk.Barrier()
	got := make([]uint64, 4)
	core.RGet(rk, ls.Arr.Add(4), got).Wait()
	for i := range got {
		expect(got[i] == uint64(left)*1000+uint64(i),
			"get: rank %d read %d from rank %d slot %d", me, got[i], left, 4+i)
	}

	// rpc: round trip with a registered body.
	r := core.RPC(rk, right, xprocEcho, uint64(me)*7).Wait()
	expect(r == uint64(me)*7+1, "rpc: echo(%d) = %d", me*7, r)

	// batch-rpc: one frame, many calls.
	b := core.NewBatch(rk, right)
	futs := make([]core.Future[uint64], 64)
	for i := range futs {
		futs[i] = core.BatchRPC(b, xprocEcho, uint64(i))
	}
	b.Flush()
	for i, f := range futs {
		expect(f.Wait() == uint64(i)+1, "batch-rpc: call %d", i)
	}

	// signaling-put: payload plus remote-cx notification in one message.
	core.RPutWith(rk, src[:1], rs.Arr, core.OpCxAsFuture(),
		core.RemoteCxAsRPC(xprocBump, rs.Cnt)).Op.Wait()
	myCnt := core.Local(rk, cnt, 1)
	for myCnt[0] < 1 {
		rk.ProgressWait(50 * time.Microsecond)
	}

	// allreduce: the collective's completion doubles as the epoch sync.
	sum := core.AllReduce(rk.WorldTeam(), int64(me)+1,
		func(a, b int64) int64 { return a + b }).Wait()
	expect(sum == int64(n)*(int64(n)+1)/2, "allreduce: sum %d over %d ranks", sum, n)
	rk.Barrier()
}

func tvDur(t syscall.Timeval) time.Duration {
	return time.Duration(t.Sec)*time.Second + time.Duration(t.Usec)*time.Microsecond
}

// idleBody asserts satellite 1: an idle rank parked in ProgressWait must
// not spin. 600ms of idle wall time may cost at most 200ms of CPU (a
// busy-poll loop would burn the full 600ms on its core).
func idleBody(rk *core.Rank) int {
	rk.Barrier() // bootstrap and connection setup excluded from the budget
	var ru0 syscall.Rusage
	syscall.Getrusage(syscall.RUSAGE_SELF, &ru0)
	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		rk.ProgressWait(5 * time.Millisecond)
	}
	var ru1 syscall.Rusage
	syscall.Getrusage(syscall.RUSAGE_SELF, &ru1)
	cpu := tvDur(ru1.Utime) + tvDur(ru1.Stime) - tvDur(ru0.Utime) - tvDur(ru0.Stime)
	rk.Barrier()
	if cpu > 200*time.Millisecond {
		fmt.Fprintf(os.Stderr, "xproc idle: rank %d burned %v CPU over 600ms of idle wait\n", rk.Me(), cpu)
		return 1
	}
	return 0
}

// taskBody runs the async-task runtime across real rank processes: a
// result-bearing AsyncAt round trip, then a skewed fire-and-forget
// workload — every task spawned at rank 0 with a sleep grain — that only
// drains in reasonable time if idle ranks steal across the wire. Finish
// certifies global quiescence; the allreduced execution count certifies
// no task was lost or duplicated in migration.
func taskBody(rk *core.Rank) {
	me, n := rk.Me(), rk.N()
	rt := task.New(rk, task.Config{Workers: 2, StealBatch: 4})
	defer rt.Stop()
	rk.Barrier()

	// Result-bearing round trip: the result leg crosses the wire back.
	r := task.HelpWait(rt, task.AsyncAt(rt, (me+1)%n, xprocTaskEcho, uint64(me)*5+1))
	expect(r == (uint64(me)*5+1)*3, "task: echo at rank %d returned %d", me, r)

	const total = 64
	if me == 0 {
		for i := 0; i < total; i++ {
			task.AsyncAtFF(rt, 0, xprocTaskWork, 500)
		}
	}
	if err := rt.Finish(); err != nil {
		panic(fmt.Sprintf("xproc task: rank %d Finish: %v", me, err))
	}
	sum := core.AllReduce(rk.WorldTeam(), xprocTaskRuns.Load(),
		func(a, b uint64) uint64 { return a + b }).Wait()
	expect(sum == total, "task: %d executions across ranks, want %d", sum, total)
	rk.Barrier()
}

// taskKillBody kills rank 1 before it joins the termination detector;
// the survivors' Finish must fail fast with ErrPeerLost rather than
// waiting forever on a detector wave the dead rank will never join.
// Like killBody, every path exits the process directly.
func taskKillBody(rk *core.Rank) {
	rt := task.New(rk, task.Config{Workers: 1})
	rk.Barrier()
	if rk.Me() == 1 {
		os.Exit(0) // see killBody: clean exit keeps the launcher away
	}
	go func() { // watchdog: a hung Finish must fail the job, not stall it
		time.Sleep(20 * time.Second)
		fmt.Fprintf(os.Stderr, "xproc taskkill: rank %d Finish never returned\n", rk.Me())
		os.Exit(1)
	}()
	for i := 0; i < 4; i++ {
		task.AsyncAtFF(rt, rk.Me(), xprocTaskWork, 100)
	}
	err := rt.Finish()
	if !errors.Is(err, gasnet.ErrPeerLost) {
		fmt.Fprintf(os.Stderr, "xproc taskkill: rank %d Finish returned %v, want ErrPeerLost\n", rk.Me(), err)
		os.Exit(1)
	}
	mark := filepath.Join(os.Getenv("XPROC_MARK"), fmt.Sprintf("survivor-%d", rk.Me()))
	if werr := os.WriteFile(mark, []byte(err.Error()), 0o666); werr != nil {
		fmt.Fprintf(os.Stderr, "xproc taskkill: rank %d marker: %v\n", rk.Me(), werr)
		os.Exit(1)
	}
	os.Exit(0)
}

// killBody makes rank 1 vanish mid-job; the survivors poll the conduit's
// failure state (plain progress passes — blocking waits would turn the
// loss into a panic) and prove they saw ErrPeerLost via marker files.
// Every path exits the process directly: with a rank gone there is no
// final barrier to return to.
func killBody(rk *core.Rank) {
	rk.Barrier() // every conduit connection is up before the loss
	if rk.Me() == 1 {
		// Exit 0 with no shutdown handshake: to the peers this is
		// indistinguishable from a crash, but the launcher (which kills
		// the job on the first non-zero exit) leaves the survivors
		// running long enough to observe it.
		os.Exit(0)
	}
	deadline := time.Now().Add(15 * time.Second)
	for rk.World().Failed() == nil {
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "xproc kill: rank %d never observed the lost peer\n", rk.Me())
			os.Exit(1)
		}
		rk.ProgressWait(time.Millisecond)
	}
	err := rk.World().Failed()
	if !errors.Is(err, gasnet.ErrPeerLost) {
		fmt.Fprintf(os.Stderr, "xproc kill: rank %d saw %v, want ErrPeerLost\n", rk.Me(), err)
		os.Exit(1)
	}
	mark := filepath.Join(os.Getenv("XPROC_MARK"), fmt.Sprintf("survivor-%d", rk.Me()))
	if werr := os.WriteFile(mark, []byte(err.Error()), 0o666); werr != nil {
		fmt.Fprintf(os.Stderr, "xproc kill: rank %d marker: %v\n", rk.Me(), werr)
		os.Exit(1)
	}
	os.Exit(0)
}
