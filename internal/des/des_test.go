package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestTiesFIFOBySchedulingOrder(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim()
	var times []float64
	s.At(1, func() {
		times = append(times, s.Now())
		s.After(2, func() { times = append(times, s.Now()) })
		// Scheduling in the past clamps to now, never moves time back.
		s.At(0, func() { times = append(times, s.Now()) })
	})
	s.Run()
	want := []float64{1, 1, 3}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	s1, e1 := r.Acquire(0, 5)
	if s1 != 0 || e1 != 5 {
		t.Fatalf("first acquire = [%v,%v]", s1, e1)
	}
	// Second job ready at time 2 must queue behind the first.
	s2, e2 := r.Acquire(2, 3)
	if s2 != 5 || e2 != 8 {
		t.Fatalf("second acquire = [%v,%v]", s2, e2)
	}
	// A job ready after the resource frees starts immediately.
	s3, _ := r.Acquire(10, 1)
	if s3 != 10 {
		t.Fatalf("third acquire start = %v", s3)
	}
	r.AdvanceTo(20)
	if r.FreeAt() != 20 {
		t.Fatalf("FreeAt = %v", r.FreeAt())
	}
	r.AdvanceTo(5) // never moves backward
	if r.FreeAt() != 20 {
		t.Fatalf("FreeAt after backward advance = %v", r.FreeAt())
	}
}

// Property: time never decreases across an arbitrary random event storm,
// and every event runs exactly once.
func TestQuickMonotoneTime(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		ran := 0
		var last float64
		monotone := true
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			at := rng.Float64() * 100
			s.At(at, func() {
				ran++
				if s.Now() < last {
					monotone = false
				}
				last = s.Now()
				// Sometimes cascade.
				if rng.Intn(4) == 0 {
					s.After(rng.Float64(), func() { ran++ })
				}
			})
		}
		total := s.Run()
		return monotone && ran == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: with FIFO resources, total busy time equals the sum of
// durations regardless of arrival pattern.
func TestQuickResourceConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var r Resource
		type iv struct{ s, e float64 }
		var ivs []iv
		total := 0.0
		ready := 0.0
		for i := 0; i < 50; i++ {
			ready += rng.Float64() // non-decreasing ready times
			d := rng.Float64()
			s, e := r.Acquire(ready, d)
			ivs = append(ivs, iv{s, e})
			total += d
		}
		// Intervals must not overlap and must sum to total.
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
		sum := 0.0
		for i, v := range ivs {
			sum += v.e - v.s
			if i > 0 && v.s < ivs[i-1].e-1e-12 {
				return false
			}
		}
		return sum > total-1e-9 && sum < total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
	// Intn stays in range and hits all buckets eventually.
	r := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(8)
		if v < 0 || v >= 8 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Intn coverage: %d/8", len(seen))
	}
}
