// Package des is a small deterministic discrete-event simulator used to
// evaluate the paper's experiments at scales a single machine cannot host
// (up to 34816 processes in Fig 4, 2048 in Figs 8–9). The experiment
// models in internal/expmodel run the real structural code (trees,
// mappings, message matrices) and charge calibrated costs inside this
// simulator; small-process-count points are cross-checked against real
// runs on the in-process runtime (see EXPERIMENTS.md).
//
// Virtual time is in seconds. Determinism: ties are broken by scheduling
// order, and the only randomness comes from the caller's seeded RNG.
package des

import "container/heap"

type event struct {
	t   float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is one simulation instance.
type Sim struct {
	now    float64
	events eventHeap
	seq    uint64
	count  int
}

// NewSim returns a simulator at time 0.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Run processes events until none remain, returning the number executed.
func (s *Sim) Run() int {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.t
		s.count++
		e.fn()
	}
	return s.count
}

// Events returns the number of events executed so far.
func (s *Sim) Events() int { return s.count }

// Resource is a serially-reusable facility (a rank's CPU, a NIC) with
// implicit FIFO queueing: work acquires the resource no earlier than both
// its ready time and the resource's free time.
type Resource struct {
	free float64
}

// Acquire books dur seconds starting no earlier than at, returning the
// booked interval.
func (r *Resource) Acquire(at, dur float64) (start, end float64) {
	start = at
	if r.free > start {
		start = r.free
	}
	end = start + dur
	r.free = end
	return start, end
}

// FreeAt returns the time the resource next becomes available.
func (r *Resource) FreeAt() float64 { return r.free }

// AdvanceTo moves the free time forward to t if it is earlier.
func (r *Resource) AdvanceTo(t float64) {
	if r.free < t {
		r.free = t
	}
}

// SplitMix64 is a tiny deterministic RNG for the models.
type SplitMix64 struct{ state uint64 }

// NewRNG seeds a SplitMix64.
func NewRNG(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64-bit value.
func (r *SplitMix64) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *SplitMix64) Intn(n int) int {
	return int(r.Next() % uint64(n))
}
