package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestCountersConcurrent hammers one rank's counters from many
// goroutines (as many personas would) and checks the totals are exact.
// Run under -race this also pins the recording paths as race-clean.
func TestCountersConcurrent(t *testing.T) {
	ob := New(2, Options{})
	ro := ob.Rank(0)
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	pcs := make([]*PersonaCount, workers)
	for i := range pcs {
		pcs[i] = ro.Persona("worker")
	}
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				tag := ro.OpStart(KindPut, 8)
				ro.OpDone(tag, 8)
				tag.Landing(1, 8)
				ro.Completion(EvOp, ViaFuture)
				ro.Pass(j%2 == 0)
				ro.DMA(DMAH2D, 16)
				pcs[i].Enq.Add(1)
				pcs[i].Exec.Add(1)
			}
		}()
	}
	wg.Wait()
	s := ro.Snapshot()
	total := uint64(workers * per)
	if s.Ops[KindPut] != total {
		t.Errorf("Ops[put] = %d, want %d", s.Ops[KindPut], total)
	}
	if s.TxBytes[KindPut] != 8*total {
		t.Errorf("TxBytes[put] = %d, want %d", s.TxBytes[KindPut], 8*total)
	}
	if s.Cx[EvOp][ViaFuture] != total {
		t.Errorf("Cx[op][future] = %d, want %d", s.Cx[EvOp][ViaFuture], total)
	}
	if s.ProgressPasses != total || s.EmptyPasses != total/2 {
		t.Errorf("passes = %d/%d empty, want %d/%d", s.ProgressPasses, s.EmptyPasses, total, total/2)
	}
	if s.DMA[DMAH2D] != total || s.DMABytes[DMAH2D] != 16*total {
		t.Errorf("DMA[h2d] = %d/%d B, want %d/%d B", s.DMA[DMAH2D], s.DMABytes[DMAH2D], total, 16*total)
	}
	// Landings were recorded at rank 1; its rx bytes carry the total.
	s1 := ob.Rank(1).Snapshot()
	if s1.RxBytes[KindPut] != 8*total {
		t.Errorf("rank 1 RxBytes[put] = %d, want %d", s1.RxBytes[KindPut], 8*total)
	}
	// The same-name persona counters aggregate into one snapshot line.
	if len(s.Personas) != 1 || s.Personas[0].Enq != total || s.Personas[0].Exec != total {
		t.Errorf("personas = %+v, want one 'worker' line with %d/%d", s.Personas, total, total)
	}
	// Exact means: every sample latency is tiny but nonzero; the count
	// must be exact in both histograms.
	if got := s.HistCount(HistDone, KindPut); got != total {
		t.Errorf("HistCount(done, put) = %d, want %d", got, total)
	}
	if got := s.HistCount(HistLand, KindPut); got != total {
		t.Errorf("HistCount(land, put) = %d, want %d", got, total)
	}
}

// TestTraceRingWraparound fills a small ring past capacity and checks
// events() returns the newest depth events oldest-first with the
// overwritten ones counted as dropped.
func TestTraceRingWraparound(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 20; i++ {
		r.record(Event{ID: uint64(i + 1), T: int64(i)})
	}
	evs := r.events()
	if len(evs) != 8 {
		t.Fatalf("len(events) = %d, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(12 + i + 1); ev.ID != want {
			t.Errorf("events[%d].ID = %d, want %d", i, ev.ID, want)
		}
	}
	if got := r.dropped(); got != 12 {
		t.Errorf("dropped = %d, want 12", got)
	}
	r.reset()
	if len(r.events()) != 0 || r.dropped() != 0 {
		t.Errorf("reset ring not empty: %d events, %d dropped", len(r.events()), r.dropped())
	}
}

// TestTraceSampling arms tracing with a 1-in-3 sampler and checks only
// every third operation carries a trace ID.
func TestTraceSampling(t *testing.T) {
	ob := New(1, Options{TraceDepth: 64, TraceSample: 3})
	ro := ob.Rank(0)
	traced := 0
	for i := 0; i < 9; i++ {
		tag := ro.OpStart(KindRPC, 0)
		if tag.ID != 0 {
			traced++
		}
		ro.OpDone(tag, 0)
	}
	if traced != 3 {
		t.Errorf("traced %d of 9 ops at 1-in-3 sampling, want 3", traced)
	}
	s := ro.Snapshot()
	if ids := s.TracedOps(); len(ids) != 3 {
		t.Errorf("TracedOps = %v, want 3 distinct ids", ids)
	}
}

// TestHistogramMerge records distinct latency profiles on two ranks and
// checks the merged snapshot sums cells and keeps the mean exact.
func TestHistogramMerge(t *testing.T) {
	ob := New(2, Options{})
	r0, r1 := ob.Rank(0), ob.Rank(1)
	r0.histDone.Record(KindPut, 8, 1000)
	r0.histDone.Record(KindPut, 8, 3000)
	r1.histDone.Record(KindPut, 8, 5000)
	r1.histDone.Record(KindGet, 1<<20, 7000)
	m := ob.Merged()
	if m.Rank != -1 || m.Ranks != 2 {
		t.Errorf("merged identity = rank %d over %d, want -1 over 2", m.Rank, m.Ranks)
	}
	if got := m.HistCount(HistDone, KindPut); got != 3 {
		t.Errorf("merged HistCount(done, put) = %d, want 3", got)
	}
	if got := m.HistMean(HistDone, KindPut); got != 3000 {
		t.Errorf("merged HistMean(done, put) = %v ns, want exactly 3000", got)
	}
	if got := m.HistCount(HistDone, KindGet); got != 1 {
		t.Errorf("merged HistCount(done, get) = %d, want 1", got)
	}
	// Quantiles come from the buckets: the p100 of the puts must sit in
	// the bucket holding 5000ns.
	if q := m.HistQuantile(HistDone, KindPut, 1.0); q < 4096 || q > 8192 {
		t.Errorf("merged p100 = %v ns, want within the 5000ns bucket", q)
	}
}

// TestMergeQualifiesTraceIDs pins the cross-rank merge rule: per-rank
// trace sequence numbers collide across ranks (both ranks' first traced
// op is ID 1), so Merge must qualify every event ID by its originating
// rank. A merged timeline looked up by a qualified ID must contain only
// that one rank's events, and the source snapshots must keep their raw
// IDs.
func TestMergeQualifiesTraceIDs(t *testing.T) {
	ob := New(2, Options{TraceDepth: 64})
	r0, r1 := ob.Rank(0), ob.Rank(1)
	// One traced op per rank: identical per-rank IDs, distinct payloads.
	t0 := r0.OpStart(KindRPC, 100)
	r0.OpDone(t0, 100)
	t1 := r1.OpStart(KindPut, 200)
	r1.OpDone(t1, 200)
	if t0.ID != 1 || t1.ID != 1 {
		t.Fatalf("per-rank trace IDs = %d/%d, want the colliding 1/1", t0.ID, t1.ID)
	}

	s0, s1 := r0.Snapshot(), r1.Snapshot()
	m := ob.Merged()
	ids := m.TracedOps()
	if len(ids) != 2 {
		t.Fatalf("merged TracedOps = %v, want 2 distinct ids", ids)
	}
	for rank, tag := range []OpTag{t0, t1} {
		qid := QualifyTraceID(int32(rank), tag.ID)
		tl := m.Timeline(qid)
		if len(tl) == 0 {
			t.Fatalf("merged Timeline(QualifyTraceID(%d, %d)) is empty", rank, tag.ID)
		}
		for _, ev := range tl {
			if ev.Kind != tag.Kind {
				t.Errorf("rank %d timeline interleaved foreign events: got kind %v, want %v",
					rank, ev.Kind, tag.Kind)
			}
		}
	}
	// Merge must not rewrite the per-rank snapshots it read from.
	for i, s := range []Snapshot{s0, s1} {
		if tl := s.Timeline(1); len(tl) == 0 {
			t.Errorf("rank %d snapshot lost its raw trace ID 1", i)
		}
	}
	// Merging an already-merged snapshot must not re-qualify.
	before := append([]Event(nil), m.Trace...)
	var extra Snapshot
	extra.Rank = 2
	m.Merge(&extra)
	for i, ev := range m.Trace {
		if ev.ID != before[i].ID {
			t.Errorf("re-merge changed event %d ID %d -> %d", i, before[i].ID, ev.ID)
		}
	}
}

// TestSnapshotDeltaAndJSON checks counter deltas and the JSON round
// trip of a snapshot.
func TestSnapshotDeltaAndJSON(t *testing.T) {
	ob := New(1, Options{})
	ro := ob.Rank(0)
	for i := 0; i < 5; i++ {
		ro.OpDone(ro.OpStart(KindAM, 32), 32)
	}
	before := ro.Snapshot()
	for i := 0; i < 3; i++ {
		ro.OpDone(ro.OpStart(KindAM, 32), 32)
	}
	d := ro.Snapshot().Delta(before)
	if d.Ops[KindAM] != 3 || d.TxBytes[KindAM] != 96 {
		t.Errorf("delta ops/bytes = %d/%d, want 3/96", d.Ops[KindAM], d.TxBytes[KindAM])
	}
	buf, err := ro.Snapshot().JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Ops[KindAM] != 8 || back.LatN[HistDone][KindAM] != 8 {
		t.Errorf("round-tripped ops/latN = %d/%d, want 8/8", back.Ops[KindAM], back.LatN[HistDone][KindAM])
	}
}

// TestSizeClassesAndBuckets pins the histogram key boundaries.
func TestSizeClassesAndBuckets(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want int
	}{{0, 0}, {64, 0}, {65, 1}, {512, 1}, {4 << 10, 2}, {32 << 10, 3}, {256 << 10, 4}, {2 << 20, 5}, {2<<20 + 1, 6}} {
		if got := SizeClass(tc.n); got != tc.want {
			t.Errorf("SizeClass(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	for _, tc := range []struct {
		ns   int64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {1 << 42, NumLatBuckets - 1}, {1 << 50, NumLatBuckets - 1}} {
		if got := latBucket(tc.ns); got != tc.want {
			t.Errorf("latBucket(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
}

// TestArmedConcurrentTracing records sampled ops from several goroutines
// while armed; under -race this pins the mutex-guarded ring.
func TestArmedConcurrentTracing(t *testing.T) {
	ob := New(1, Options{TraceDepth: 32})
	ro := ob.Rank(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tag := ro.OpStart(KindCopy, 256)
				tag.Hop(StageCapture, 0, 256)
				tag.Landing(0, 256)
				ro.OpDone(tag, 256)
			}
		}()
	}
	wg.Wait()
	s := ro.Snapshot()
	if s.Ops[KindCopy] != 400 {
		t.Errorf("Ops[copy] = %d, want 400", s.Ops[KindCopy])
	}
	if len(s.Trace) == 0 {
		t.Error("armed tracing buffered no events")
	}
	if s.TraceDropped == 0 {
		t.Error("expected drops from a 32-deep ring under 1600 events")
	}
}

// TestTaskCountersZeroValueOmission pins the task counters' back-compat
// contract: a rank that never touched the task runtime marshals with no
// "tasks" field at all (so pre-task-runtime decoders and Merge peers see
// exactly the shape they always did), while a rank that did records a
// dense TaskStat-indexed vector that Merge and Delta fold elementwise.
func TestTaskCountersZeroValueOmission(t *testing.T) {
	ob := New(2, Options{})
	idle := ob.Rank(0).Snapshot()
	b, err := json.Marshal(idle)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"tasks"`)) {
		t.Fatalf("idle snapshot leaked a tasks field: %s", b)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tasks != nil {
		t.Fatalf("decoded idle snapshot grew Tasks = %v", back.Tasks)
	}

	busy := ob.Rank(1)
	busy.CountTask(TaskSpawned, 3)
	busy.CountTask(TaskExecuted, 2)
	busy.CountTask(TaskStealFails, 1)
	bs := busy.Snapshot()
	if len(bs.Tasks) != int(NumTaskStats) || bs.Tasks[TaskSpawned] != 3 || bs.Tasks[TaskStealFails] != 1 {
		t.Fatalf("busy snapshot tasks = %v", bs.Tasks)
	}

	// Merging idle (no field) into busy and busy into idle both work.
	m := idle
	m.Merge(&bs)
	if m.Tasks[TaskExecuted] != 2 {
		t.Fatalf("merge idle←busy tasks = %v", m.Tasks)
	}
	m2 := bs
	m2.Merge(&idle)
	if m2.Tasks[TaskSpawned] != 3 {
		t.Fatalf("merge busy←idle tasks = %v", m2.Tasks)
	}

	busy.CountTask(TaskSpawned, 4)
	d := busy.Snapshot().Delta(bs)
	if d.Tasks[TaskSpawned] != 4 || d.Tasks[TaskExecuted] != 0 {
		t.Fatalf("delta tasks = %v", d.Tasks)
	}
}

// TestTaskTraceTimeline pins the task-lifecycle trace: a sampled task's
// spawn/enqueue/steal/execute/complete hops — recorded from two
// different ranks — reassemble into one timeline in the home rank's
// ring.
func TestTaskTraceTimeline(t *testing.T) {
	ob := New(2, Options{TraceDepth: 64})
	home, thief := ob.Rank(0), ob.Rank(1)
	id := home.TaskStart(16)
	if id == 0 {
		t.Fatal("armed tracing did not sample the task")
	}
	home.TaskHop(0, StageTaskEnq, id, 16)
	thief.TaskHop(0, StageTaskSteal, id, 16)
	thief.TaskHop(0, StageTaskExec, id, 16)
	thief.TaskHop(0, StageTaskDone, id, 0)
	tl := home.Snapshot().Timeline(id)
	want := []Stage{StageTaskSpawn, StageTaskEnq, StageTaskSteal, StageTaskExec, StageTaskDone}
	if len(tl) != len(want) {
		t.Fatalf("timeline has %d events, want %d: %v", len(tl), len(want), tl)
	}
	for i, ev := range tl {
		if ev.Stage != want[i] || ev.Kind != KindTask {
			t.Fatalf("event %d = %+v, want stage %s", i, ev, want[i])
		}
	}
	if tl[2].At != 1 {
		t.Fatalf("steal hop recorded at rank %d, want 1", tl[2].At)
	}
	// Hops recorded against an out-of-process home rank are dropped, not
	// misfiled.
	thief.TaskHop(7, StageTaskExec, id, 0)
}
