// Package obs is the runtime introspection layer: low-overhead,
// race-clean per-rank counters, op-lifecycle tracing, and latency
// histograms for every operation that crosses the single injection path.
//
// The design splits into three mechanisms with three cost profiles:
//
//   - Counters: padded atomic counters (one cache line each, so two
//     personas hammering different counters never false-share) for ops
//     injected by kind, bytes by kind×direction, completions delivered
//     by {event}×{flavor}, LPCs per persona, progress passes vs empty
//     spins, doorbell wakeups, DMA descriptors by hop kind, and wire
//     messages/bytes per peer. Counting is one atomic add; disabled, the
//     whole subsystem is a nil pointer and every hook is a single
//     pointer-load-and-branch.
//
//   - Op-lifecycle tracing: a fixed-size per-rank ring buffer of
//     timestamped events. Every operation the single injection path
//     accepts gets a per-rank sequence number; when tracing is armed
//     (per-rank or job-wide) a 1-in-N sample of operations carries a
//     nonzero trace ID through the conduit hop chains (OpTag), and each
//     hop appends an event — inject, conduit capture, wire landing, DMA
//     hop, destination landing, completion delivery — to the
//     *initiator's* ring, tagged with the rank where it physically
//     happened. Snapshot.Timeline(id) reassembles the causal timeline
//     of one operation.
//
//   - Latency histograms: fixed log₂-bucket histograms (no per-sample
//     allocation, plain atomic adds) over inject→operation-complete and
//     inject→remote-landing, keyed by op kind and payload size class.
//     Histograms are value-mergeable across ranks (Snapshot.Merge), so
//     job-wide distributions cost one reduction over the cells.
//
// The package depends only on the standard library: the conduit
// (internal/gasnet) and the runtime (internal/core) both record into it,
// and everything user-facing is exposed through Snapshot.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// OpKind classifies an injected operation. The first seven values mirror
// internal/core's lowered op kinds in order (the runtime converts by
// integer cast); KindCollRound counts individual collective tree rounds,
// which additionally appear as the AM/copy operations they lower to.
type OpKind uint8

const (
	KindPut OpKind = iota
	KindGet
	KindCopy
	KindAtomic
	KindAM
	KindColl
	KindRPC
	KindCollRound
	// KindTask classifies task-lifecycle trace events recorded by the
	// distributed task runtime (internal/task). Tasks are not injected
	// operations — their messages already count as the RPCs they lower
	// to — so the per-kind op/byte counters stay zero for this kind; it
	// exists to tag trace ring events.
	KindTask
	NumOpKinds
)

var opKindNames = [NumOpKinds]string{
	"put", "get", "copy", "atomic", "am", "collective", "rpc", "coll-round",
	"task",
}

// String returns the kind mnemonic.
func (k OpKind) String() string {
	if k < NumOpKinds {
		return opKindNames[k]
	}
	return "op?"
}

// CxEvent mirrors internal/core's completion events in order.
type CxEvent uint8

const (
	EvOp CxEvent = iota
	EvSource
	EvRemote
	NumCxEvents
)

var cxEventNames = [NumCxEvents]string{"op", "source", "remote"}

func (e CxEvent) String() string {
	if e < NumCxEvents {
		return cxEventNames[e]
	}
	return "ev?"
}

// CxVia mirrors internal/core's completion delivery flavors in order.
type CxVia uint8

const (
	ViaFuture CxVia = iota
	ViaPromise
	ViaLPC
	ViaRPC
	NumCxVias
)

var cxViaNames = [NumCxVias]string{"future", "promise", "lpc", "rpc"}

func (v CxVia) String() string {
	if v < NumCxVias {
		return cxViaNames[v]
	}
	return "via?"
}

// DMAKind classifies one device copy-engine descriptor by the memory
// kinds it bridges. Device↔device descriptors split by datapath: direct
// descriptors never touch host memory (the on-node fabric, or a
// GPUDirect NIC reading/writing device memory across ranks), while
// bounced descriptors are the halves of a cross-rank d2d transfer
// staged through a host bounce buffer (d2h at the source engine, h2d
// at the destination engine) on a non-GDR conduit.
type DMAKind uint8

const (
	DMAH2D DMAKind = iota
	DMAD2H
	DMAD2DDirect
	DMAD2DBounced
	NumDMAKinds
)

// DMAD2D is the pre-split name for the direct device↔device kind; the
// on-node collapse path still counts here.
const DMAD2D = DMAD2DDirect

var dmaKindNames = [NumDMAKinds]string{"h2d", "d2h", "d2d-direct", "d2d-bounced"}

func (k DMAKind) String() string {
	if k < NumDMAKinds {
		return dmaKindNames[k]
	}
	return "dma?"
}

// TaskStat indexes one counter of the distributed task runtime
// (internal/task). Spawned counts at the spawning rank, Executed at the
// executing rank (the pair the 4-counter termination detector sums
// job-wide); Stolen counts tasks a thief gained, Migrated tasks a victim
// gave up; StealReqs/StealFails are steal attempts issued and the subset
// that came back empty; DetectRounds counts termination-detector waves.
type TaskStat uint8

const (
	TaskSpawned TaskStat = iota
	TaskExecuted
	TaskStolen
	TaskMigrated
	TaskStealReqs
	TaskStealFails
	TaskDetectRounds
	NumTaskStats
)

var taskStatNames = [NumTaskStats]string{
	"spawned", "executed", "stolen", "migrated", "steal-reqs", "steal-fails", "detector-rounds",
}

// String returns the stat mnemonic.
func (s TaskStat) String() string {
	if s < NumTaskStats {
		return taskStatNames[s]
	}
	return "task-stat?"
}

// Count is a cache-line-padded atomic counter: hot counters incremented
// by different goroutines must not share a line.
type Count struct {
	v atomic.Uint64
	_ [56]byte
}

// Add increments the counter by n.
func (c *Count) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Count) Load() uint64 { return c.v.Load() }

// PersonaCount is one persona's LPC accounting, registered with the
// owning rank's recorder at persona creation.
type PersonaCount struct {
	Name string
	Enq  Count // LPCs enqueued onto this persona
	Exec Count // LPCs executed by this persona's drain
}

// Options configures a job's recorder.
type Options struct {
	// TraceDepth is the per-rank trace ring capacity in events; 0 keeps
	// tracing disarmed at creation with a default-capacity ring
	// (DefaultTraceDepth) available for later arming.
	TraceDepth int
	// TraceSample records every Nth sampled operation while armed
	// (1-in-N); 0 or 1 traces every operation.
	TraceSample int
}

// DefaultTraceDepth is the ring capacity used when tracing is armed
// without an explicit depth.
const DefaultTraceDepth = 1024

// Obs is one job's recorder: a RankObs per rank sharing one epoch.
type Obs struct {
	epoch  time.Time
	sample uint64
	ranks  []*RankObs
}

// New creates a recorder for a job of n ranks.
func New(n int, o Options) *Obs {
	depth := o.TraceDepth
	armed := depth > 0
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	sample := uint64(o.TraceSample)
	if sample == 0 {
		sample = 1
	}
	ob := &Obs{epoch: time.Now(), sample: sample}
	ob.ranks = make([]*RankObs, n)
	for r := range ob.ranks {
		ro := &RankObs{
			o:    ob,
			rank: int32(r),
			ring: newRing(depth),
		}
		ro.wireTxMsgs = make([]Count, n)
		ro.wireTxBytes = make([]Count, n)
		ro.wireRxMsgs = make([]Count, n)
		ro.wireRxBytes = make([]Count, n)
		ro.armed.Store(armed)
		ob.ranks[r] = ro
	}
	return ob
}

// Rank returns rank r's recorder.
func (ob *Obs) Rank(r int) *RankObs { return ob.ranks[r] }

// Ranks returns the job size.
func (ob *Obs) Ranks() int { return len(ob.ranks) }

// ArmAll arms (or disarms) op-lifecycle tracing on every rank.
func (ob *Obs) ArmAll(on bool) {
	for _, ro := range ob.ranks {
		ro.Arm(on)
	}
}

// RankObs records everything one rank observes. All mutation is atomic
// (counters, histograms) or mutex-guarded (trace ring, persona
// registry): concurrent recording from any number of goroutines is
// race-clean by construction.
type RankObs struct {
	o    *Obs
	rank int32

	// Ops injected by kind, with payload bytes by direction: tx at the
	// initiator when the op is handed to the conduit, rx at the
	// destination when the bytes land.
	ops     [NumOpKinds]Count
	txBytes [NumOpKinds]Count
	rxBytes [NumOpKinds]Count

	// Completions delivered, by event × flavor.
	cx [NumCxEvents][NumCxVias]Count

	// Progress accounting: user-level progress passes, the subset that
	// processed nothing (empty spins), conduit doorbell wakeups, and
	// doorbell deposits (rings that found the slot empty — coalesced, so
	// a batch of completions rings once, not once per op).
	passes  Count
	empties Count
	wakeups Count
	rings   Count

	// Device copy-engine descriptors executed by this rank's engine, by
	// hop kind.
	dma      [NumDMAKinds]Count
	dmaBytes [NumDMAKinds]Count

	// Fused reduction folds executed on this rank's device: kernel
	// launches and the child operands they consumed (a fused launch
	// folds every landed child of a tree round at once).
	fusedFolds    Count
	fusedChildren Count

	// Distributed task runtime counters (internal/task), by TaskStat.
	tasks [NumTaskStats]Count

	// Wire messages and payload bytes by peer, both directions.
	wireTxMsgs  []Count
	wireTxBytes []Count
	wireRxMsgs  []Count
	wireRxBytes []Count

	// Latency histograms: inject→operation-complete and
	// inject→remote-landing, by kind × size class.
	histDone Hist
	histLand Hist

	// Op-lifecycle trace.
	seq   atomic.Uint64
	armed atomic.Bool
	ring  *ring

	pmu      sync.Mutex
	personas []*PersonaCount
}

// RankID returns the rank this recorder belongs to.
func (ro *RankObs) RankID() int32 { return ro.rank }

// Arm arms (or disarms) op-lifecycle tracing on this rank, clearing the
// ring when arming.
func (ro *RankObs) Arm(on bool) {
	if on {
		ro.ring.reset()
	}
	ro.armed.Store(on)
}

// Armed reports whether tracing is armed on this rank.
func (ro *RankObs) Armed() bool { return ro.armed.Load() }

// Persona registers (and returns) the LPC counter pair of one persona.
func (ro *RankObs) Persona(name string) *PersonaCount {
	pc := &PersonaCount{Name: name}
	ro.pmu.Lock()
	ro.personas = append(ro.personas, pc)
	ro.pmu.Unlock()
	return pc
}

// CountOp counts one injected operation of kind k with no payload
// accounting (whole collectives, collective tree rounds).
func (ro *RankObs) CountOp(k OpKind) { ro.ops[k].Add(1) }

// Pass counts one user-level progress pass; empty marks a pass that
// processed nothing.
func (ro *RankObs) Pass(empty bool) {
	ro.passes.Add(1)
	if empty {
		ro.empties.Add(1)
	}
}

// Wakeup counts one doorbell wakeup (a WaitPending unblocked by Ring
// rather than its timeout).
func (ro *RankObs) Wakeup() { ro.wakeups.Add(1) }

// Ring counts one doorbell deposit: a Ring call that found the 1-slot
// doorbell empty. Rings while a token is already pending coalesce into
// the deposited one and are not counted, so the counter reads as
// progress-thread wakeups *caused*, per batch rather than per op.
func (ro *RankObs) Ring() { ro.rings.Add(1) }

// DMA counts one device copy-engine descriptor executed by this rank's
// engine.
func (ro *RankObs) DMA(k DMAKind, bytes int) {
	ro.dma[k].Add(1)
	ro.dmaBytes[k].Add(uint64(bytes))
}

// FusedFold counts one fused reduction kernel launch that folded
// `children` child operands on this rank's device.
func (ro *RankObs) FusedFold(children int) {
	ro.fusedFolds.Add(1)
	ro.fusedChildren.Add(uint64(children))
}

// CountTask adds n to one task-runtime counter.
func (ro *RankObs) CountTask(s TaskStat, n int) { ro.tasks[s].Add(uint64(n)) }

// TaskStart accounts one task spawned at this rank and, while tracing is
// armed and the 1-in-N sampler selects it, records the spawn event and
// returns the nonzero trace ID that rides the task's descriptor through
// enqueue/steal/execute/complete hops. Task trace IDs share the rank's
// op sequence space, so a task's timeline never collides with a traced
// operation's.
func (ro *RankObs) TaskStart(bytes int) uint64 {
	ro.tasks[TaskSpawned].Add(1)
	seq := ro.seq.Add(1)
	if ro.armed.Load() && seq%ro.o.sample == 0 {
		ro.ring.record(Event{ID: seq, Stage: StageTaskSpawn, Kind: KindTask, At: ro.rank, Bytes: int64(bytes), T: ro.now()})
		return seq
	}
	return 0
}

// TaskHop records one lifecycle event of a traced task into the task's
// *home* rank's ring (mirroring op hops, which record into the
// initiator's ring), tagged with this rank as the hop's location. No-op
// for untraced tasks (id 0) and, in multi-process worlds, for hops of
// tasks whose home rank lives in another process (its ring is not
// reachable; the home-side events still record there).
func (ro *RankObs) TaskHop(home int32, stage Stage, id uint64, bytes int) {
	if id == 0 || home < 0 || int(home) >= len(ro.o.ranks) {
		return
	}
	hro := ro.o.ranks[home]
	if !hro.armed.Load() {
		return
	}
	hro.ring.record(Event{ID: id, Stage: stage, Kind: KindTask, At: ro.rank, Bytes: int64(bytes), T: hro.now()})
}

// wire counts one wire message of n payload bytes from rank `from` to
// rank `to`: tx at the sender's recorder, rx at the receiver's. The
// from==to row is loopback traffic.
func (ob *Obs) wire(from, to int32, n int) {
	fro := ob.ranks[from]
	fro.wireTxMsgs[to].Add(1)
	fro.wireTxBytes[to].Add(uint64(n))
	tro := ob.ranks[to]
	tro.wireRxMsgs[from].Add(1)
	tro.wireRxBytes[from].Add(uint64(n))
}

// Completion counts one delivered completion.
func (ro *RankObs) Completion(ev CxEvent, via CxVia) { ro.cx[ev][via].Add(1) }

// now returns nanoseconds since the job epoch.
func (ro *RankObs) now() int64 { return int64(time.Since(ro.o.epoch)) }

// OpStart accounts one operation of kind k with n payload bytes handed
// to the conduit, and returns the tag that rides its hop chain: T0 for
// latency histograms always, a nonzero ID when tracing is armed and the
// 1-in-N sampler selects this op (the inject event is recorded here).
func (ro *RankObs) OpStart(k OpKind, n int) OpTag {
	ro.ops[k].Add(1)
	ro.txBytes[k].Add(uint64(n))
	seq := ro.seq.Add(1)
	tag := OpTag{Rec: ro, T0: ro.now(), Kind: k}
	if ro.armed.Load() && seq%ro.o.sample == 0 {
		tag.ID = seq
		ro.ring.record(Event{ID: seq, Stage: StageInject, Kind: k, At: ro.rank, Bytes: int64(n), T: tag.T0})
	}
	return tag
}

// OpDone records the operation-complete edge of one logical operation:
// the inject→complete latency histogram plus, for traced ops, the
// delivery event.
func (ro *RankObs) OpDone(tag OpTag, n int) {
	now := ro.now()
	ro.histDone.Record(tag.Kind, n, now-tag.T0)
	if tag.ID != 0 {
		ro.ring.record(Event{ID: tag.ID, Stage: StageDelivered, Kind: tag.Kind, At: ro.rank, Bytes: int64(n), T: now})
	}
}

// OpTag is the observability identity of one in-flight operation,
// threaded from Rank.inject through the conduit hop chains. The zero
// tag (Rec nil) is a no-op at every hop: when the subsystem is
// disabled, tags cost one nil check.
type OpTag struct {
	Rec  *RankObs // the initiator's recorder; nil = disabled
	ID   uint64   // nonzero = this op is traced
	T0   int64    // inject timestamp, ns since the job epoch
	Kind OpKind
}

// Hop records one lifecycle event of a traced operation: stage at rank
// `at`, moving n bytes. No-op unless the op carries a trace ID.
func (t OpTag) Hop(stage Stage, at int32, n int) {
	if t.Rec == nil || t.ID == 0 {
		return
	}
	t.Rec.ring.record(Event{ID: t.ID, Stage: stage, Kind: t.Kind, At: at, Bytes: int64(n), T: t.Rec.now()})
}

// WireMsg counts one wire message of n payload bytes from rank `from`
// to rank `to` on behalf of this operation. No-op on a zero tag.
func (t OpTag) WireMsg(from, to int32, n int) {
	if t.Rec == nil {
		return
	}
	t.Rec.o.wire(from, to, n)
}

// Landing records the destination-landing edge at rank `at`: rx bytes at
// the landing rank, the inject→landing latency histogram, and (for
// traced ops) the landing event. Callers invoke it at the instant the
// payload is visible at its destination (post-DMA for device memory).
func (t OpTag) Landing(at int32, n int) {
	if t.Rec == nil {
		return
	}
	t.Rec.o.ranks[at].rxBytes[t.Kind].Add(uint64(n))
	now := t.Rec.now()
	t.Rec.histLand.Record(t.Kind, n, now-t.T0)
	if t.ID != 0 {
		t.Rec.ring.record(Event{ID: t.ID, Stage: StageLanding, Kind: t.Kind, At: at, Bytes: int64(n), T: now})
	}
}
