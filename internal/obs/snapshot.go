package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// PersonaStat is one persona's LPC totals in a snapshot, aggregated by
// persona name (a rank may create many default personas, one per
// goroutine; they report as one line).
type PersonaStat struct {
	Name string `json:"name"`
	Enq  uint64 `json:"enq"`
	Exec uint64 `json:"exec"`
}

// PeerWire is one peer's wire traffic totals as seen from a snapshot's
// rank.
type PeerWire struct {
	Peer    int32  `json:"peer"`
	TxMsgs  uint64 `json:"tx_msgs"`
	TxBytes uint64 `json:"tx_bytes"`
	RxMsgs  uint64 `json:"rx_msgs"`
	RxBytes uint64 `json:"rx_bytes"`
}

// Snapshot is a point-in-time copy of one rank's observability state
// (or, after Merge, of several ranks'). It is a plain value: JSON-
// encodable, mergeable, and safe to hold after the world closes.
type Snapshot struct {
	// Rank is the snapshot's rank, or -1 after a merge.
	Rank int32 `json:"rank"`
	// Ranks is how many ranks' state this snapshot aggregates.
	Ranks int `json:"ranks"`

	Ops     [NumOpKinds]uint64 `json:"ops"`
	TxBytes [NumOpKinds]uint64 `json:"tx_bytes"`
	RxBytes [NumOpKinds]uint64 `json:"rx_bytes"`

	Cx [NumCxEvents][NumCxVias]uint64 `json:"cx"`

	Personas []PersonaStat `json:"personas,omitempty"`

	ProgressPasses uint64 `json:"progress_passes"`
	EmptyPasses    uint64 `json:"empty_passes"`
	Wakeups        uint64 `json:"wakeups"`
	DoorbellRings  uint64 `json:"doorbell_rings"`

	DMA      [NumDMAKinds]uint64 `json:"dma"`
	DMABytes [NumDMAKinds]uint64 `json:"dma_bytes"`

	// Fused reduction folds: device kernel launches that folded a whole
	// tree round's landed children at once, and the child operands they
	// consumed. Decoders of pre-split snapshots see zeros (omitempty).
	FusedFolds    uint64 `json:"fused_folds,omitempty"`
	FusedChildren uint64 `json:"fused_fold_children,omitempty"`

	// Tasks is the distributed task runtime's counters indexed by
	// TaskStat, present only when the rank ran tasks: a rank (or a
	// pre-task-runtime snapshot) that never touched the runtime omits the
	// field entirely, so decoders and Merge peers of either vintage
	// interoperate (the zero-value omission test pins this).
	Tasks []uint64 `json:"tasks,omitempty"`

	Wire []PeerWire `json:"wire,omitempty"`

	Hist []HistCell `json:"hist,omitempty"`

	// Exact latency totals per histogram (HistDone, HistLand) × kind,
	// backing quantization-free means; see Hist.
	LatSumNS [2][NumOpKinds]uint64 `json:"lat_sum_ns"`
	LatN     [2][NumOpKinds]uint64 `json:"lat_n"`

	Trace        []Event `json:"trace,omitempty"`
	TraceDropped uint64  `json:"trace_dropped,omitempty"`
}

// Snapshot captures the rank's current state, including a copy of the
// trace ring.
func (ro *RankObs) Snapshot() Snapshot {
	s := Snapshot{Rank: ro.rank, Ranks: 1}
	for k := range s.Ops {
		s.Ops[k] = ro.ops[k].Load()
		s.TxBytes[k] = ro.txBytes[k].Load()
		s.RxBytes[k] = ro.rxBytes[k].Load()
	}
	for e := range s.Cx {
		for v := range s.Cx[e] {
			s.Cx[e][v] = ro.cx[e][v].Load()
		}
	}
	s.ProgressPasses = ro.passes.Load()
	s.EmptyPasses = ro.empties.Load()
	s.Wakeups = ro.wakeups.Load()
	s.DoorbellRings = ro.rings.Load()
	for k := range s.DMA {
		s.DMA[k] = ro.dma[k].Load()
		s.DMABytes[k] = ro.dmaBytes[k].Load()
	}
	s.FusedFolds = ro.fusedFolds.Load()
	s.FusedChildren = ro.fusedChildren.Load()
	for st := TaskStat(0); st < NumTaskStats; st++ {
		if v := ro.tasks[st].Load(); v != 0 {
			if s.Tasks == nil {
				s.Tasks = make([]uint64, NumTaskStats)
			}
			s.Tasks[st] = v
		}
	}
	for p := range ro.wireTxMsgs {
		pw := PeerWire{
			Peer:    int32(p),
			TxMsgs:  ro.wireTxMsgs[p].Load(),
			TxBytes: ro.wireTxBytes[p].Load(),
			RxMsgs:  ro.wireRxMsgs[p].Load(),
			RxBytes: ro.wireRxBytes[p].Load(),
		}
		if pw.TxMsgs != 0 || pw.RxMsgs != 0 {
			s.Wire = append(s.Wire, pw)
		}
	}
	byName := map[string]*PersonaStat{}
	ro.pmu.Lock()
	pcs := append([]*PersonaCount(nil), ro.personas...)
	ro.pmu.Unlock()
	for _, pc := range pcs {
		ps := byName[pc.Name]
		if ps == nil {
			s.Personas = append(s.Personas, PersonaStat{Name: pc.Name})
			ps = &s.Personas[len(s.Personas)-1]
			byName[pc.Name] = ps
		}
		ps.Enq += pc.Enq.Load()
		ps.Exec += pc.Exec.Load()
	}
	s.Hist = ro.histDone.snapshot(HistDone, s.Hist)
	s.Hist = ro.histLand.snapshot(HistLand, s.Hist)
	ro.histDone.totalsInto(&s.LatSumNS[HistDone], &s.LatN[HistDone])
	ro.histLand.totalsInto(&s.LatSumNS[HistLand], &s.LatN[HistLand])
	s.Trace = ro.ring.events()
	s.TraceDropped = ro.ring.dropped()
	return s
}

// SnapshotAll captures every rank.
func (ob *Obs) SnapshotAll() []Snapshot {
	out := make([]Snapshot, len(ob.ranks))
	for i, ro := range ob.ranks {
		out[i] = ro.Snapshot()
	}
	return out
}

// Merged captures every rank and merges them into one job-wide snapshot.
func (ob *Obs) Merged() Snapshot {
	var m Snapshot
	first := true
	for _, ro := range ob.ranks {
		s := ro.Snapshot()
		if first {
			m = s
			first = false
			continue
		}
		m.Merge(&s)
	}
	if len(ob.ranks) != 1 {
		m.Rank = -1
	}
	return m
}

// QualifyTraceID maps a per-rank trace ID to a job-wide one. Trace IDs
// are per-rank sequence numbers, so two ranks' op #1 collide when their
// traces are concatenated; Merge rewrites every event ID through this
// mapping so merged timelines stay per-op. Callers that recorded an ID
// on a single rank (OpTag.ID) use this to look the op up in a merged
// snapshot's Timeline.
func QualifyTraceID(rank int32, id uint64) uint64 {
	return (uint64(rank)+1)<<40 | (id & (1<<40 - 1))
}

// qualifyTrace rewrites s's event IDs with QualifyTraceID when s still
// holds a single rank's unqualified trace (Rank >= 0). Merged snapshots
// (Rank == -1) are already qualified and pass through unchanged.
func (s *Snapshot) qualifyTrace() {
	if s.Rank < 0 {
		return
	}
	for i := range s.Trace {
		if s.Trace[i].ID != 0 {
			s.Trace[i].ID = QualifyTraceID(s.Rank, s.Trace[i].ID)
		}
	}
}

// Merge folds o into s: counters and histogram cells sum, per-peer wire
// and persona lines aggregate, traces concatenate in time order with
// every trace ID qualified by its originating rank (so per-rank sequence
// numbers from different ranks never collide in the merged timeline).
// Both snapshots are left usable; s becomes the merge.
func (s *Snapshot) Merge(o *Snapshot) {
	s.qualifyTrace()
	s.Rank = -1
	s.Ranks += o.Ranks
	for k := range s.Ops {
		s.Ops[k] += o.Ops[k]
		s.TxBytes[k] += o.TxBytes[k]
		s.RxBytes[k] += o.RxBytes[k]
	}
	for e := range s.Cx {
		for v := range s.Cx[e] {
			s.Cx[e][v] += o.Cx[e][v]
		}
	}
	s.ProgressPasses += o.ProgressPasses
	s.EmptyPasses += o.EmptyPasses
	s.Wakeups += o.Wakeups
	s.DoorbellRings += o.DoorbellRings
	for k := range s.DMA {
		s.DMA[k] += o.DMA[k]
		s.DMABytes[k] += o.DMABytes[k]
	}
	s.FusedFolds += o.FusedFolds
	s.FusedChildren += o.FusedChildren
	if len(o.Tasks) > 0 {
		if len(s.Tasks) < len(o.Tasks) {
			s.Tasks = append(s.Tasks, make([]uint64, len(o.Tasks)-len(s.Tasks))...)
		}
		for st, v := range o.Tasks {
			s.Tasks[st] += v
		}
	}
	wire := map[int32]*PeerWire{}
	for i := range s.Wire {
		wire[s.Wire[i].Peer] = &s.Wire[i]
	}
	for _, pw := range o.Wire {
		if have := wire[pw.Peer]; have != nil {
			have.TxMsgs += pw.TxMsgs
			have.TxBytes += pw.TxBytes
			have.RxMsgs += pw.RxMsgs
			have.RxBytes += pw.RxBytes
		} else {
			s.Wire = append(s.Wire, pw)
		}
	}
	sort.Slice(s.Wire, func(i, j int) bool { return s.Wire[i].Peer < s.Wire[j].Peer })
	pers := map[string]*PersonaStat{}
	for i := range s.Personas {
		pers[s.Personas[i].Name] = &s.Personas[i]
	}
	for _, ps := range o.Personas {
		if have := pers[ps.Name]; have != nil {
			have.Enq += ps.Enq
			have.Exec += ps.Exec
		} else {
			s.Personas = append(s.Personas, ps)
		}
	}
	cells := map[HistCell]uint64{}
	for _, c := range s.Hist {
		key := c
		key.N = 0
		cells[key] += c.N
	}
	for _, c := range o.Hist {
		key := c
		key.N = 0
		cells[key] += c.N
	}
	s.Hist = s.Hist[:0]
	for key, n := range cells {
		key.N = n
		s.Hist = append(s.Hist, key)
	}
	sort.Slice(s.Hist, func(i, j int) bool {
		a, b := s.Hist[i], s.Hist[j]
		if a.Which != b.Which {
			return a.Which < b.Which
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Bucket < b.Bucket
	})
	for w := range s.LatSumNS {
		for k := range s.LatSumNS[w] {
			s.LatSumNS[w][k] += o.LatSumNS[w][k]
			s.LatN[w][k] += o.LatN[w][k]
		}
	}
	ot := o.Trace
	if o.Rank >= 0 && len(ot) > 0 {
		// Qualify a copy: o must stay usable with its own raw IDs.
		q := make([]Event, len(ot))
		copy(q, ot)
		for i := range q {
			if q[i].ID != 0 {
				q[i].ID = QualifyTraceID(o.Rank, q[i].ID)
			}
		}
		ot = q
	}
	s.Trace = append(s.Trace, ot...)
	sort.SliceStable(s.Trace, func(i, j int) bool { return s.Trace[i].T < s.Trace[j].T })
	s.TraceDropped += o.TraceDropped
}

// Delta returns s minus prev over the monotone counters (ops, bytes,
// completions, progress, DMA, wire, personas). Histograms and traces are
// carried from s unchanged: deltas of sparse cells are rarely what a
// caller wants, and traces are already windowed by the ring.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := s
	for k := range d.Ops {
		d.Ops[k] -= prev.Ops[k]
		d.TxBytes[k] -= prev.TxBytes[k]
		d.RxBytes[k] -= prev.RxBytes[k]
	}
	for e := range d.Cx {
		for v := range d.Cx[e] {
			d.Cx[e][v] -= prev.Cx[e][v]
		}
	}
	d.ProgressPasses -= prev.ProgressPasses
	d.EmptyPasses -= prev.EmptyPasses
	d.Wakeups -= prev.Wakeups
	d.DoorbellRings -= prev.DoorbellRings
	for k := range d.DMA {
		d.DMA[k] -= prev.DMA[k]
		d.DMABytes[k] -= prev.DMABytes[k]
	}
	d.FusedFolds -= prev.FusedFolds
	d.FusedChildren -= prev.FusedChildren
	if len(s.Tasks) > 0 {
		d.Tasks = append([]uint64(nil), s.Tasks...)
		for st := range d.Tasks {
			if st < len(prev.Tasks) {
				d.Tasks[st] -= prev.Tasks[st]
			}
		}
	}
	d.Wire = append([]PeerWire(nil), s.Wire...)
	for i := range d.Wire {
		for _, pw := range prev.Wire {
			if pw.Peer == d.Wire[i].Peer {
				d.Wire[i].TxMsgs -= pw.TxMsgs
				d.Wire[i].TxBytes -= pw.TxBytes
				d.Wire[i].RxMsgs -= pw.RxMsgs
				d.Wire[i].RxBytes -= pw.RxBytes
			}
		}
	}
	d.Personas = append([]PersonaStat(nil), s.Personas...)
	for i := range d.Personas {
		for _, ps := range prev.Personas {
			if ps.Name == d.Personas[i].Name {
				d.Personas[i].Enq -= ps.Enq
				d.Personas[i].Exec -= ps.Exec
			}
		}
	}
	return d
}

// Timeline returns the causal timeline of one traced operation: all
// buffered events carrying id, in time order.
func (s Snapshot) Timeline(id uint64) []Event {
	var out []Event
	for _, ev := range s.Trace {
		if ev.ID == id {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// TracedOps returns the distinct traced op IDs in the snapshot, in
// first-appearance order.
func (s Snapshot) TracedOps() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, ev := range s.Trace {
		if !seen[ev.ID] {
			seen[ev.ID] = true
			out = append(out, ev.ID)
		}
	}
	return out
}

// HistCount returns the number of observations in histogram `which`
// (HistDone or HistLand) for kind k, summed over size classes.
func (s Snapshot) HistCount(which uint8, k OpKind) uint64 {
	var n uint64
	for _, c := range s.Hist {
		if c.Which == which && c.Kind == k {
			n += c.N
		}
	}
	return n
}

// HistMean returns the mean latency in nanoseconds of histogram `which`
// for kind k (all size classes), or NaN if empty. The mean comes from
// the exact per-kind totals, not the bucket mids, so it carries no
// quantization error.
func (s Snapshot) HistMean(which uint8, k OpKind) float64 {
	n := s.LatN[which][k]
	if n == 0 {
		return math.NaN()
	}
	return float64(s.LatSumNS[which][k]) / float64(n)
}

// HistQuantile returns the estimated q-quantile (0..1) latency in
// nanoseconds of histogram `which` for kind k, or NaN if empty.
func (s Snapshot) HistQuantile(which uint8, k OpKind, q float64) float64 {
	var cells []HistCell
	var total uint64
	for _, c := range s.Hist {
		if c.Which == which && c.Kind == k {
			cells = append(cells, c)
			total += c.N
		}
	}
	if total == 0 {
		return math.NaN()
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Bucket < cells[j].Bucket })
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, c := range cells {
		cum += c.N
		if cum >= target {
			return BucketMid(int(c.Bucket))
		}
	}
	return BucketMid(int(cells[len(cells)-1].Bucket))
}

// JSON returns the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// String renders the snapshot with Fprint.
func (s Snapshot) String() string {
	var b []byte
	w := &sliceWriter{&b}
	Fprint(w, s)
	return string(b)
}

type sliceWriter struct{ b *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

// Fprint writes a human-readable dump of the snapshot: counters that are
// nonzero, completion matrix, per-persona LPCs, wire traffic, histogram
// summaries, and (when tracing was armed) a sample causal timeline.
func Fprint(w io.Writer, s Snapshot) {
	if s.Rank >= 0 {
		fmt.Fprintf(w, "== obs: rank %d ==\n", s.Rank)
	} else {
		fmt.Fprintf(w, "== obs: %d ranks merged ==\n", s.Ranks)
	}
	fmt.Fprintf(w, "ops injected:")
	any := false
	for k := OpKind(0); k < NumOpKinds; k++ {
		if s.Ops[k] != 0 {
			fmt.Fprintf(w, " %s=%d", k, s.Ops[k])
			any = true
		}
	}
	if !any {
		fmt.Fprintf(w, " none")
	}
	fmt.Fprintln(w)
	for k := OpKind(0); k < NumOpKinds; k++ {
		if s.TxBytes[k] != 0 || s.RxBytes[k] != 0 {
			fmt.Fprintf(w, "bytes %-10s tx=%-10d rx=%d\n", k.String(), s.TxBytes[k], s.RxBytes[k])
		}
	}
	for e := CxEvent(0); e < NumCxEvents; e++ {
		for v := CxVia(0); v < NumCxVias; v++ {
			if s.Cx[e][v] != 0 {
				fmt.Fprintf(w, "cx %s×%s: %d\n", e, v, s.Cx[e][v])
			}
		}
	}
	for _, ps := range s.Personas {
		if ps.Enq != 0 || ps.Exec != 0 {
			fmt.Fprintf(w, "persona %-12s lpc enq=%-8d exec=%d\n", ps.Name, ps.Enq, ps.Exec)
		}
	}
	if s.ProgressPasses != 0 {
		fmt.Fprintf(w, "progress: passes=%d empty=%d wakeups=%d rings=%d\n",
			s.ProgressPasses, s.EmptyPasses, s.Wakeups, s.DoorbellRings)
	}
	for k := DMAKind(0); k < NumDMAKinds; k++ {
		if s.DMA[k] != 0 {
			fmt.Fprintf(w, "dma %s: descriptors=%d bytes=%d\n", k, s.DMA[k], s.DMABytes[k])
		}
	}
	if s.FusedFolds != 0 {
		fmt.Fprintf(w, "dma fused-folds: launches=%d children=%d\n", s.FusedFolds, s.FusedChildren)
	}
	if len(s.Tasks) > 0 {
		task := func(st TaskStat) uint64 {
			if int(st) < len(s.Tasks) {
				return s.Tasks[st]
			}
			return 0
		}
		fmt.Fprintf(w, "tasks: spawned=%d executed=%d stolen=%d migrated=%d\n",
			task(TaskSpawned), task(TaskExecuted), task(TaskStolen), task(TaskMigrated))
		fmt.Fprintf(w, "steals: reqs=%d fails=%d detector-rounds=%d\n",
			task(TaskStealReqs), task(TaskStealFails), task(TaskDetectRounds))
	}
	for _, pw := range s.Wire {
		fmt.Fprintf(w, "wire peer %-3d tx=%d msgs/%d B  rx=%d msgs/%d B\n",
			pw.Peer, pw.TxMsgs, pw.TxBytes, pw.RxMsgs, pw.RxBytes)
	}
	for _, which := range []uint8{HistDone, HistLand} {
		name := "inject→complete"
		if which == HistLand {
			name = "inject→landing "
		}
		for k := OpKind(0); k < NumOpKinds; k++ {
			n := s.HistCount(which, k)
			if n == 0 {
				continue
			}
			fmt.Fprintf(w, "lat %s %-10s n=%-8d mean=%s p50=%s p99=%s\n",
				name, k, n,
				fmtNS(s.HistMean(which, k)),
				fmtNS(s.HistQuantile(which, k, 0.5)),
				fmtNS(s.HistQuantile(which, k, 0.99)))
		}
	}
	if len(s.Trace) > 0 {
		fmt.Fprintf(w, "trace: %d events buffered (%d dropped), %d ops\n",
			len(s.Trace), s.TraceDropped, len(s.TracedOps()))
		if ids := s.TracedOps(); len(ids) > 0 {
			tl := s.Timeline(ids[0])
			fmt.Fprintf(w, "sample op timeline (%d events): op %d %s\n", len(tl), ids[0], tl[0].Kind)
			t0 := tl[0].T
			for _, ev := range tl {
				fmt.Fprintf(w, "  +%-12s %-9s at rank %-3d %d B\n",
					fmtNS(float64(ev.T-t0)), ev.Stage, ev.At, ev.Bytes)
			}
		}
	}
}

// fmtNS renders nanoseconds with an adaptive unit.
func fmtNS(ns float64) string {
	switch {
	case math.IsNaN(ns):
		return "-"
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
