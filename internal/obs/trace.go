package obs

import "sync"

// Stage names one hop in an operation's lifecycle. Events are recorded
// into the initiator's ring (so a timeline needs no cross-rank
// reassembly) with At naming the rank where the hop physically happened.
type Stage uint8

const (
	// StageInject: the op entered the single injection path at the
	// initiator.
	StageInject Stage = iota
	// StageCapture: the conduit accepted the op (source buffer staged /
	// descriptor built); source-completion becomes deliverable.
	StageCapture
	// StageWire: a wire message carrying (part of) the op arrived at a
	// peer NIC.
	StageWire
	// StageDMA: a device copy-engine descriptor for the op executed.
	StageDMA
	// StageLanding: the payload became visible at its destination
	// segment (post-DMA for device memory) or the AM was enqueued at the
	// target.
	StageLanding
	// StageDelivered: the operation-complete edge fired back at the
	// initiator and completions were delivered.
	StageDelivered

	// Task-lifecycle stages, recorded by the distributed task runtime
	// (internal/task) through RankObs.TaskStart/TaskHop. A task's hops
	// record into its *home* rank's ring (like op hops record into the
	// initiator's), so one spawn→enqueue→[steal→enqueue→]execute→complete
	// chain reassembles with Snapshot.Timeline.

	// StageTaskSpawn: AsyncAt/AsyncAtFF accepted the task at its home rank.
	StageTaskSpawn
	// StageTaskEnq: the task entered a rank's ready deque (home or remote).
	StageTaskEnq
	// StageTaskSteal: a thief migrated the task out of a victim's deque.
	StageTaskSteal
	// StageTaskExec: a worker began executing the task body.
	StageTaskExec
	// StageTaskDone: the body returned (and any result was shipped home).
	StageTaskDone
	NumStages
)

var stageNames = [NumStages]string{
	"inject", "capture", "wire", "dma", "landing", "delivered",
	"spawn", "enqueue", "steal", "execute", "complete",
}

// String returns the stage mnemonic.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "stage?"
}

// Event is one timestamped lifecycle hop of a traced operation.
type Event struct {
	ID    uint64 `json:"id"`    // per-initiator op sequence number
	T     int64  `json:"t"`     // ns since the job epoch
	Stage Stage  `json:"stage"` //
	Kind  OpKind `json:"kind"`  //
	At    int32  `json:"at"`    // rank where the hop happened
	Bytes int64  `json:"bytes"` //
}

// ring is a fixed-size mutex-guarded event buffer. A mutex (rather than
// an atomic cursor with racy slot writes) keeps the ring race-clean
// under the race detector; the lock is only ever taken for sampled ops
// while tracing is armed, so the hot path stays bounded by the 1-in-N
// sampling rate.
type ring struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64 // total events ever recorded; next%len(buf) is the write slot
	wraps bool
}

func newRing(depth int) *ring {
	return &ring{buf: make([]Event, depth)}
}

func (r *ring) record(ev Event) {
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
	if r.next >= uint64(len(r.buf)) {
		r.wraps = r.next > uint64(len(r.buf))
	}
	r.mu.Unlock()
}

func (r *ring) reset() {
	r.mu.Lock()
	r.next = 0
	r.wraps = false
	r.mu.Unlock()
}

// events returns the buffered events oldest-first.
func (r *ring) events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	cap64 := uint64(len(r.buf))
	if n <= cap64 {
		return append([]Event(nil), r.buf[:n]...)
	}
	out := make([]Event, 0, cap64)
	start := n % cap64
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// dropped returns how many events were overwritten by wraparound.
func (r *ring) dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next <= uint64(len(r.buf)) {
		return 0
	}
	return r.next - uint64(len(r.buf))
}
