package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Latency histograms: fixed log₂ buckets over nanoseconds, keyed by op
// kind and payload size class. Recording is one atomic add into a flat
// array — no allocation, no lock — and the bucket layout is identical on
// every rank, so histograms merge across ranks by summing cells.

// NumSizeClasses partitions payload sizes into log-spaced classes; see
// SizeClass for the boundaries.
const NumSizeClasses = 7

// NumLatBuckets is the number of log₂ latency buckets: bucket b holds
// latencies in [2^(b-1), 2^b) ns, with bucket 0 holding sub-ns and the
// last bucket open-ended (≈ 2.3 hours and beyond).
const NumLatBuckets = 44

var sizeClassNames = [NumSizeClasses]string{
	"<=64B", "<=512B", "<=4KB", "<=32KB", "<=256KB", "<=2MB", ">2MB",
}

// SizeClass maps a payload byte count to its size class index.
func SizeClass(n int) int {
	switch {
	case n <= 64:
		return 0
	case n <= 512:
		return 1
	case n <= 4<<10:
		return 2
	case n <= 32<<10:
		return 3
	case n <= 256<<10:
		return 4
	case n <= 2<<20:
		return 5
	default:
		return 6
	}
}

// SizeClassName returns the human label of a size class index.
func SizeClassName(c int) string {
	if c >= 0 && c < NumSizeClasses {
		return sizeClassNames[c]
	}
	return "size?"
}

// latBucket maps a latency in nanoseconds to its bucket index.
func latBucket(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= NumLatBuckets {
		b = NumLatBuckets - 1
	}
	return b
}

// BucketMid returns a representative latency (ns) for bucket b: the
// geometric-ish midpoint 1.5·2^(b-1) of its [2^(b-1), 2^b) range.
func BucketMid(b int) float64 {
	if b <= 0 {
		return 0.5
	}
	return 1.5 * math.Exp2(float64(b-1))
}

// Hist is one set of latency histograms: kind × size class × latency
// bucket. Cells are plain atomics (not padded: the array is large and
// adjacent cells are rarely contended).
type Hist struct {
	cells [NumOpKinds][NumSizeClasses][NumLatBuckets]atomic.Uint64

	// Exact per-kind totals recorded alongside the bucketed cells: the
	// buckets answer quantile queries, these answer mean queries without
	// the log₂ quantization error (which can reach ±40% when latencies
	// cluster inside one bucket). Still allocation-free atomic adds.
	sumNS [NumOpKinds]atomic.Uint64
	n     [NumOpKinds]atomic.Uint64
}

// Record adds one latency observation for kind k with an n-byte payload.
func (h *Hist) Record(k OpKind, n int, ns int64) {
	h.cells[k][SizeClass(n)][latBucket(ns)].Add(1)
	if ns > 0 {
		h.sumNS[k].Add(uint64(ns))
	}
	h.n[k].Add(1)
}

// totalsInto copies the exact per-kind sums and counts into the given
// snapshot arrays.
func (h *Hist) totalsInto(sum, n *[NumOpKinds]uint64) {
	for k := 0; k < int(NumOpKinds); k++ {
		sum[k] = h.sumNS[k].Load()
		n[k] = h.n[k].Load()
	}
}

// snapshot appends the non-zero cells to dst and returns it.
func (h *Hist) snapshot(which uint8, dst []HistCell) []HistCell {
	for k := 0; k < int(NumOpKinds); k++ {
		for c := 0; c < NumSizeClasses; c++ {
			for b := 0; b < NumLatBuckets; b++ {
				if n := h.cells[k][c][b].Load(); n != 0 {
					dst = append(dst, HistCell{
						Which: which, Kind: OpKind(k), Class: uint8(c), Bucket: uint8(b), N: n,
					})
				}
			}
		}
	}
	return dst
}

// Histogram identity for snapshot cells: HistDone is inject→operation-
// complete, HistLand is inject→remote-landing.
const (
	HistDone = uint8(0)
	HistLand = uint8(1)
)

// HistCell is one non-zero histogram cell in a Snapshot: sparse,
// value-typed, and mergeable by summing N across equal keys.
type HistCell struct {
	Which  uint8  `json:"which"` // HistDone or HistLand
	Kind   OpKind `json:"kind"`
	Class  uint8  `json:"class"` // size class index
	Bucket uint8  `json:"bucket"`
	N      uint64 `json:"n"`
}
