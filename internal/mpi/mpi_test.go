package mpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"upcxx/internal/serial"
)

func TestSendRecvEager(t *testing.T) {
	Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send([]byte("hello"), 1, 7)
		} else {
			buf := make([]byte, 16)
			st := p.Recv(buf, 0, 7)
			if st.Count != 5 || string(buf[:5]) != "hello" {
				t.Errorf("recv = %q (%+v)", buf[:st.Count], st)
			}
		}
	})
}

func TestSendRecvRendezvous(t *testing.T) {
	Run(2, func(p *Proc) {
		const n = 64 << 10 // above EagerMax
		if p.Rank() == 0 {
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(i * 7)
			}
			p.Send(data, 1, 1)
			// Staging buffer must be reclaimed after DONE.
			if len(p.rendStage) != 0 {
				t.Errorf("rendezvous staging leaked: %d", len(p.rendStage))
			}
		} else {
			buf := make([]byte, n)
			st := p.Recv(buf, 0, 1)
			if st.Count != n {
				t.Errorf("count = %d", st.Count)
			}
			for i := 0; i < n; i += 4097 {
				if buf[i] != byte(i*7) {
					t.Errorf("byte %d = %d", i, buf[i])
				}
			}
		}
	})
}

func TestUnexpectedMessages(t *testing.T) {
	Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			// Send before the receiver posts anything.
			for i := 0; i < 5; i++ {
				p.Send([]byte{byte(i)}, 1, i)
			}
		} else {
			// Give the messages time to arrive unexpected.
			time.Sleep(10 * time.Millisecond)
			for p.ep.Poll() > 0 {
			}
			// Receive out of tag order: matching is by tag, not arrival.
			for _, tag := range []int{4, 0, 2, 1, 3} {
				var b [1]byte
				p.Recv(b[:], 0, tag)
				if int(b[0]) != tag {
					t.Errorf("tag %d got payload %d", tag, b[0])
				}
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	Run(3, func(p *Proc) {
		if p.Rank() != 0 {
			p.Send([]byte{byte(p.Rank())}, 0, int(p.Rank())*10)
		} else {
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				var b [1]byte
				st := p.Recv(b[:], AnySource, AnyTag)
				if st.Tag != st.Source*10 || int(b[0]) != st.Source {
					t.Errorf("status %+v payload %d", st, b[0])
				}
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				t.Errorf("sources seen: %v", seen)
			}
		}
	})
}

func TestNonOvertaking(t *testing.T) {
	// Messages between one (src,dst) pair with the same tag must match in
	// send order.
	Run(2, func(p *Proc) {
		const k = 50
		if p.Rank() == 0 {
			for i := 0; i < k; i++ {
				p.Send([]byte{byte(i)}, 1, 5)
			}
		} else {
			for i := 0; i < k; i++ {
				var b [1]byte
				p.Recv(b[:], 0, 5)
				if int(b[0]) != i {
					t.Fatalf("message %d arrived out of order (payload %d)", i, b[0])
				}
			}
		}
	})
}

func TestIsendIrecvOverlap(t *testing.T) {
	Run(2, func(p *Proc) {
		const k = 20
		peer := 1 - p.Rank()
		var reqs []*Request
		recvBufs := make([][]byte, k)
		for i := 0; i < k; i++ {
			recvBufs[i] = make([]byte, 8)
			reqs = append(reqs, p.Irecv(recvBufs[i], peer, i))
		}
		for i := 0; i < k; i++ {
			msg := fmt.Sprintf("%08d", i)
			reqs = append(reqs, p.Isend([]byte(msg), peer, i))
		}
		p.Waitall(reqs)
		for i := 0; i < k; i++ {
			want := fmt.Sprintf("%08d", i)
			if string(recvBufs[i]) != want {
				t.Errorf("msg %d = %q", i, recvBufs[i])
			}
		}
	})
}

func TestProbe(t *testing.T) {
	Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(make([]byte, 33), 1, 9)
		} else {
			st := p.Probe(0, AnyTag)
			if st.Count != 33 || st.Tag != 9 {
				t.Errorf("probe = %+v", st)
			}
			buf := make([]byte, st.Count)
			p.Recv(buf, st.Source, st.Tag)
		}
	})
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			flags := make([]int32, n)
			Run(n, func(p *Proc) {
				flags[p.Rank()] = 1
				p.Barrier()
				for r := 0; r < n; r++ {
					if flags[r] != 1 {
						t.Errorf("rank %d saw rank %d unflagged", p.Rank(), r)
					}
				}
			})
		})
	}
}

func TestAlltoall8(t *testing.T) {
	const n = 5
	Run(n, func(p *Proc) {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(p.Rank()*100 + i)
		}
		out := p.Alltoall8(vals)
		for src := 0; src < n; src++ {
			want := uint64(src*100 + p.Rank())
			if out[src] != want {
				t.Errorf("from %d: %d, want %d", src, out[src], want)
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const n = 4
	Run(n, func(p *Proc) {
		send := make([][]byte, n)
		for dst := 0; dst < n; dst++ {
			// Variable sizes, including empty.
			size := (p.Rank() + dst) % 3 * 10
			send[dst] = bytes.Repeat([]byte{byte(p.Rank()*16 + dst)}, size)
		}
		out := p.Alltoallv(send)
		for src := 0; src < n; src++ {
			wantSize := (src + p.Rank()) % 3 * 10
			if len(out[src]) != wantSize {
				t.Errorf("from %d: %d bytes, want %d", src, len(out[src]), wantSize)
				continue
			}
			for _, b := range out[src] {
				if b != byte(src*16+p.Rank()) {
					t.Errorf("from %d: wrong fill %d", src, b)
					break
				}
			}
		}
	})
}

func TestBcast(t *testing.T) {
	Run(6, func(p *Proc) {
		var data []byte
		if p.Rank() == 2 {
			data = []byte("payload-from-2")
		}
		got := p.Bcast(2, data)
		if string(got) != "payload-from-2" {
			t.Errorf("rank %d bcast = %q", p.Rank(), got)
		}
	})
}

func TestAllreduceF64(t *testing.T) {
	Run(7, func(p *Proc) {
		sum := p.AllreduceF64(float64(p.Rank()+1), func(a, b float64) float64 { return a + b })
		if sum != 28 { // 1+..+7
			t.Errorf("rank %d allreduce = %v", p.Rank(), sum)
		}
		max := p.AllreduceF64(float64(p.Rank()), func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
		if max != 6 {
			t.Errorf("rank %d max = %v", p.Rank(), max)
		}
	})
}

func TestWinPutGetFlush(t *testing.T) {
	Run(3, func(p *Proc) {
		win := CreateWin(p, 1024)
		local := win.LocalF64()
		for i := range local {
			local[i] = float64(p.Rank())
		}
		p.Barrier()
		// Put our rank into slot Rank() of the right neighbour.
		right := (p.Rank() + 1) % p.Size()
		v := []float64{float64(p.Rank()) * 10}
		win.Put(serial.AsBytes(v), right, p.Rank()*8)
		win.Flush(right)
		p.Barrier()
		left := (p.Rank() - 1 + p.Size()) % p.Size()
		if local[left] != float64(left)*10 {
			t.Errorf("rank %d window slot %d = %v", p.Rank(), left, local[left])
		}
		// One-sided get of an untouched slot from the left neighbour: it
		// still holds the neighbour's initial fill.
		buf := make([]byte, 8)
		win.Get(buf, left, p.Rank()*8)
		win.Flush(left)
		got := serial.FromBytes[float64](buf)[0]
		if got != float64(left) {
			t.Errorf("rank %d get = %v, want %v", p.Rank(), got, float64(left))
		}
		win.Free()
	})
}

func TestWinLargePutChunks(t *testing.T) {
	Run(2, func(p *Proc) {
		const n = 256 << 10 // forces chunking at RMAChunk=64K
		win := CreateWin(p, n)
		p.Barrier()
		if p.Rank() == 0 {
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(i)
			}
			win.Put(data, 1, 0)
			win.Flush(1)
		}
		p.Barrier()
		if p.Rank() == 1 {
			local := win.LocalData()
			for i := 0; i < n; i += 9973 {
				if local[i] != byte(i) {
					t.Errorf("byte %d = %d", i, local[i])
				}
			}
		}
		win.Free()
	})
}

func TestPutCPUBytesBands(t *testing.T) {
	pr := DefaultProtocol()
	// Monotone and continuous across knees.
	prev := time.Duration(0)
	for _, n := range []int{0, 1, 100, 1 << 10, 1<<10 + 1, 8 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		got := pr.PutCPUBytes(n)
		if got < prev {
			t.Errorf("PutCPUBytes not monotone at %d: %v < %v", n, got, prev)
		}
		prev = got
	}
	// Spot values: first band is 0.06 ns/B.
	if got := pr.PutCPUBytes(1000); got != time.Duration(60) {
		t.Errorf("PutCPUBytes(1000) = %v", got)
	}
}

// Property: random message storms between random pairs always deliver
// every payload intact and in per-pair order.
func TestQuickMessageStorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 4
		const msgs = 30
		type msg struct {
			dst  int
			size int
		}
		plans := make([][]msg, n)
		for r := 0; r < n; r++ {
			for m := 0; m < msgs; m++ {
				plans[r] = append(plans[r], msg{dst: rng.Intn(n), size: 1 + rng.Intn(20000)})
			}
		}
		counts := make([][]int, n) // counts[dst][src]
		for i := range counts {
			counts[i] = make([]int, n)
		}
		for r := 0; r < n; r++ {
			for _, m := range plans[r] {
				counts[m.dst][r]++
			}
		}
		ok := true
		w := NewWorld(Config{Ranks: n, SegmentSize: 16 << 20})
		defer w.Close()
		w.Run(func(p *Proc) {
			me := p.Rank()
			var reqs []*Request
			type exp struct {
				buf []byte
				src int
				idx int
			}
			var exps []exp
			// Post all receives: from src, the i-th message has tag i.
			for src := 0; src < n; src++ {
				for i := 0; i < counts[me][src]; i++ {
					buf := make([]byte, 20001)
					reqs = append(reqs, p.Irecv(buf, src, i))
					exps = append(exps, exp{buf, src, i})
				}
			}
			seq := make([]int, n)
			for _, m := range plans[me] {
				payload := bytes.Repeat([]byte{byte(me*31 + seq[m.dst])}, m.size)
				reqs = append(reqs, p.Isend(payload, m.dst, seq[m.dst]))
				seq[m.dst]++
			}
			p.Waitall(reqs)
			for _, e := range exps {
				want := byte(e.src*31 + e.idx)
				if e.buf[0] != want {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
