package mpi

import (
	"fmt"
	"math"

	"upcxx/internal/serial"
)

func mathFloat64bits(v float64) uint64     { return math.Float64bits(v) }
func mathFloat64frombits(u uint64) float64 { return math.Float64frombits(u) }

// MPI-3 one-sided RMA with passive-target synchronization: the mode the
// paper's microbenchmarks compare against (IMB-RMA Unidir_put with
// MPI_Win_flush). A window exposes a region of each rank's shared
// segment; Put/Get move data one-sidedly over the conduit and Flush waits
// for remote completion at a target.
//
// The software costs layered on the conduit model Cray MPICH's documented
// protocol structure on Aries: FMA-style CPU-driven injection for small
// and mid sizes (banded per-byte CPU cost — the source of the Fig 3b
// mid-size bandwidth dip) and a completion-synchronization charge on
// flushes of non-trivial transfers (the source of the Fig 3a 256B+ latency
// gap). See Protocol and EXPERIMENTS.md for the calibration.

// Win is one rank's handle on a window.
type Win struct {
	p     *Proc
	size  int
	local uint64   // offset of our exposure in our segment
	bases []uint64 // exposure offset on every rank

	pending []winTarget // per-target outstanding-put state
}

type winTarget struct {
	outstanding int
	maxSize     int
}

// CreateWin collectively creates a window exposing size bytes on every
// rank.
func CreateWin(p *Proc, size int) *Win {
	off, err := p.ep.Segment().Alloc(size)
	if err != nil {
		panic(fmt.Sprintf("mpi: rank %d window allocation: %v", p.me, err))
	}
	w := &Win{p: p, size: size, local: off}
	w.bases = p.Allgather8(off)
	w.pending = make([]winTarget, p.n)
	p.winSeq++
	return w
}

// LocalData returns the window's local exposure for initialization.
func (w *Win) LocalData() []byte {
	return w.p.ep.Segment().Bytes(w.local, w.size)
}

// LocalF64 views the local exposure as float64s.
func (w *Win) LocalF64() []float64 {
	return serial.FromBytes[float64](w.LocalData())
}

// Put starts a one-sided put of src into the window at (target, disp
// bytes). Completion at the target is observed via Flush.
func (w *Win) Put(src []byte, target, disp int) {
	p := w.p
	n := len(src)
	if disp+n > w.size {
		panic(fmt.Sprintf("mpi: Put of %d bytes at disp %d exceeds window size %d", n, disp, w.size))
	}
	// Software injection path: base cost plus the banded FMA per-byte
	// CPU cost.
	p.charge(p.w.proto.RMAPutBase + p.w.proto.PutCPUBytes(n))
	t := &w.pending[target]
	if n > t.maxSize {
		t.maxSize = n
	}
	base := w.bases[target] + uint64(disp)
	chunk := p.w.proto.RMAChunk
	for off := 0; off < n; off += chunk {
		end := off + chunk
		if end > n {
			end = n
		}
		t.outstanding++
		p.ep.Put(int32(target), base+uint64(off), src[off:end], func() {
			t.outstanding--
		})
	}
}

// Get starts a one-sided get from the window at (target, disp) into dst;
// completion is observed via Flush.
func (w *Win) Get(dst []byte, target, disp int) {
	p := w.p
	n := len(dst)
	if disp+n > w.size {
		panic(fmt.Sprintf("mpi: Get of %d bytes at disp %d exceeds window size %d", n, disp, w.size))
	}
	p.charge(p.w.proto.RMAPutBase + p.w.proto.PutCPUBytes(n))
	t := &w.pending[target]
	if n > t.maxSize {
		t.maxSize = n
	}
	t.outstanding++
	p.ep.Get(int32(target), w.bases[target]+uint64(disp), dst, func() {
		t.outstanding--
	})
}

// Flush blocks until every outstanding Put/Get to target has completed
// remotely (MPI_Win_flush in a passive-target epoch). The completion-
// synchronization work (descriptor retirement, FMA completion wait) is
// serial CPU time spent after the network acknowledges — it cannot hide
// under the wire time, which is what costs MPI the paper's 256B+ latency
// gap (Fig 3a).
func (w *Win) Flush(target int) {
	p := w.p
	t := &w.pending[target]
	hadWork := t.outstanding > 0
	sync := hadWork && t.maxSize >= 256
	for t.outstanding > 0 {
		p.ep.Poll()
	}
	cost := p.w.proto.RMAFlushBase
	if sync {
		cost += p.w.proto.RMAFlushSync
	}
	p.charge(cost)
	t.maxSize = 0
}

// FlushAll flushes every target (MPI_Win_flush_all).
func (w *Win) FlushAll() {
	for target := range w.pending {
		if w.pending[target].outstanding > 0 || target == w.p.me {
			w.Flush(target)
		}
	}
}

// Free collectively destroys the window.
func (w *Win) Free() {
	w.FlushAll()
	w.p.Barrier()
	if err := w.p.ep.Segment().Free(w.local); err != nil {
		panic(err)
	}
}
