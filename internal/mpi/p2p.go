package mpi

import (
	"fmt"
	"time"

	"upcxx/internal/gasnet"
)

// Two-sided point-to-point messaging.
//
// Eager protocol (size <= Protocol.EagerMax): the payload rides in the
// message. If no receive is posted, the target copies it to an
// unexpected-message buffer — the extra copy that makes unexpected eager
// traffic expensive on real MPIs.
//
// Rendezvous protocol (larger): the sender stages the data in its shared
// segment and sends a ready-to-send (RTS) control message; when the target
// matches it, the target pulls the payload with a one-sided get and sends
// DONE back, completing the send. Matching therefore costs an extra round
// trip — the handshake UPC++'s one-sided rput avoids, central to the
// paper's Fig 8 P2P-variant comparison.

// Isend begins a non-blocking tagged send of buf to dst.
func (p *Proc) Isend(buf []byte, dst, tag int) *Request {
	p.charge(p.w.proto.SendOverhead)
	req := &Request{}
	if len(buf) <= p.w.proto.EagerMax {
		payload := append(packHeader(p.me, tag, 0, 0, len(buf)), buf...)
		p.ep.AM(int32(dst), p.w.amEager, payload, nil)
		// Eager sends complete locally once the payload is captured.
		req.done = true
		req.Status = Status{Source: p.me, Tag: tag, Count: len(buf)}
		return req
	}
	// Rendezvous: stage in our segment so the target can get() it.
	off, err := p.ep.Segment().Alloc(len(buf))
	if err != nil {
		panic(fmt.Sprintf("mpi: rank %d rendezvous staging: %v", p.me, err))
	}
	copy(p.ep.Segment().Bytes(off, len(buf)), buf)
	seq := p.rendSeq
	p.rendSeq++
	if p.rendStage == nil {
		p.rendStage = make(map[uint64]*rendSend)
	}
	p.rendStage[seq] = &rendSend{req: req, segOff: off, nbytes: len(buf)}
	p.ep.AM(int32(dst), p.w.amRTS, packHeader(p.me, tag, seq, off, len(buf)), nil)
	return req
}

// Irecv posts a non-blocking receive into buf from src (or AnySource) with
// tag (or AnyTag). buf must be large enough for the matched message.
func (p *Proc) Irecv(buf []byte, src, tag int) *Request {
	p.charge(p.w.proto.RecvOverhead)
	req := &Request{}
	rr := &recvReq{req: req, buf: buf, src: src, tag: tag}
	// Check the unexpected queue first (FIFO).
	for i := range p.unexpected {
		m := p.unexpected[i]
		if matches(src, tag, m.src, m.tag) {
			p.unexpected = append(p.unexpected[:i], p.unexpected[i+1:]...)
			p.deliver(rr, m)
			return req
		}
	}
	p.postedRecvs = append(p.postedRecvs, rr)
	return req
}

// Send is a blocking send.
func (p *Proc) Send(buf []byte, dst, tag int) {
	p.Wait(p.Isend(buf, dst, tag))
}

// Recv is a blocking receive, returning the matched status.
func (p *Proc) Recv(buf []byte, src, tag int) Status {
	return p.Wait(p.Irecv(buf, src, tag))
}

type recvReq struct {
	req      *Request
	buf      []byte
	src, tag int
}

// deliver completes a matched receive from an arrived message.
func (p *Proc) deliver(rr *recvReq, m inMsg) {
	p.charge(p.w.proto.MatchCost)
	if m.rts == nil {
		if len(m.eager) > len(rr.buf) {
			panic(fmt.Sprintf("mpi: rank %d truncation: %d-byte message into %d-byte buffer",
				p.me, len(m.eager), len(rr.buf)))
		}
		copy(rr.buf, m.eager)
		rr.req.Status = Status{Source: m.src, Tag: m.tag, Count: len(m.eager)}
		rr.req.done = true
		return
	}
	// Rendezvous: pull the payload from the sender's staging area.
	rts := m.rts
	if rts.nbytes > len(rr.buf) {
		panic(fmt.Sprintf("mpi: rank %d truncation: %d-byte rendezvous into %d-byte buffer",
			p.me, rts.nbytes, len(rr.buf)))
	}
	dst := rr.buf[:rts.nbytes]
	p.ep.Get(int32(rts.src), rts.segOff, dst, func() {
		rr.req.Status = Status{Source: m.src, Tag: m.tag, Count: rts.nbytes}
		rr.req.done = true
		// Tell the sender its staging buffer is free and the send done.
		p.ep.AM(int32(rts.src), p.w.amDone, packHeader(p.me, m.tag, rts.seq, 0, 0), nil)
	})
}

// handleEager runs at the target when an eager message arrives.
func (w *World) handleEager(ep *gasnet.Endpoint, _ gasnet.Rank, payload []byte, _ any) {
	p := w.procs[ep.Rank()]
	src, tag, _, _, nbytes, rest := unpackHeader(payload)
	m := inMsg{src: src, tag: tag, eager: rest[:nbytes]}
	if rr := p.matchPosted(src, tag); rr != nil {
		p.deliver(rr, m)
		return
	}
	// Unexpected: the implementation must copy the payload aside — the
	// cost real MPIs pay (charged per KB).
	cp := append([]byte(nil), m.eager...)
	m.eager = cp
	p.charge(time.Duration(w.proto.UnexpectedPer) * time.Duration(1+nbytes/1024))
	p.unexpected = append(p.unexpected, m)
}

// handleRTS runs at the target when a rendezvous envelope arrives.
func (w *World) handleRTS(ep *gasnet.Endpoint, _ gasnet.Rank, payload []byte, _ any) {
	p := w.procs[ep.Rank()]
	src, tag, seq, segOff, nbytes, _ := unpackHeader(payload)
	m := inMsg{src: src, tag: tag, rts: &rtsInfo{src: src, seq: seq, segOff: segOff, nbytes: nbytes}}
	if rr := p.matchPosted(src, tag); rr != nil {
		p.deliver(rr, m)
		return
	}
	p.unexpected = append(p.unexpected, m)
}

// handleDone runs at the sender when the target finishes pulling a
// rendezvous payload.
func (w *World) handleDone(ep *gasnet.Endpoint, _ gasnet.Rank, payload []byte, _ any) {
	p := w.procs[ep.Rank()]
	_, _, seq, _, _, _ := unpackHeader(payload)
	rs, ok := p.rendStage[seq]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d DONE for unknown rendezvous %d", p.me, seq))
	}
	delete(p.rendStage, seq)
	if err := p.ep.Segment().Free(rs.segOff); err != nil {
		panic(err)
	}
	rs.req.done = true
	rs.req.Status = Status{Source: p.me, Count: rs.nbytes}
}

// matchPosted removes and returns the first posted receive matching
// (src, tag), or nil.
func (p *Proc) matchPosted(src, tag int) *recvReq {
	for i, rr := range p.postedRecvs {
		if matches(rr.src, rr.tag, src, tag) {
			p.postedRecvs = append(p.postedRecvs[:i], p.postedRecvs[i+1:]...)
			return rr
		}
	}
	return nil
}
