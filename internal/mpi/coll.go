package mpi

import "encoding/binary"

// Collectives, implemented over the two-sided layer the way MPICH's
// "generic" algorithms are: dissemination barrier, ring/pairwise
// exchanges, binomial trees. Collective traffic uses a reserved tag space
// (tags >= collTagBase); user code must stay below it.

const collTagBase = 1 << 30

// collTag derives a unique tag for one collective instance and round.
func (p *Proc) collTag(seq uint64, round int) int {
	return collTagBase + int(seq)*64 + round
}

func (p *Proc) nextCollSeq() uint64 {
	s := p.collSeq
	p.collSeq++
	return s
}

// Barrier blocks until all ranks enter it (dissemination algorithm,
// ceil(log2 P) rounds).
func (p *Proc) Barrier() {
	if p.n == 1 {
		return
	}
	seq := p.nextCollSeq()
	var empty [1]byte
	buf := make([]byte, 1)
	for round := 0; (1 << round) < p.n; round++ {
		dst := (p.me + (1 << round)) % p.n
		src := (p.me - (1 << round) + p.n) % p.n
		tag := p.collTag(seq, round)
		sreq := p.Isend(empty[:], dst, tag)
		rreq := p.Irecv(buf, src, tag)
		p.Wait(sreq)
		p.Wait(rreq)
	}
}

// Alltoall8 exchanges one 8-byte word with every rank; entry i of the
// result came from rank i. This is the size-exchange that precedes an
// Alltoallv, as in STRUMPACK's extend-add.
func (p *Proc) Alltoall8(vals []uint64) []uint64 {
	if len(vals) != p.n {
		panic("mpi: Alltoall8 needs one value per rank")
	}
	seq := p.nextCollSeq()
	tag := p.collTag(seq, 0)
	out := make([]uint64, p.n)
	out[p.me] = vals[p.me]
	sendBufs := make([][]byte, p.n)
	recvBufs := make([][]byte, p.n)
	var reqs []*Request
	for k := 1; k < p.n; k++ {
		dst := (p.me + k) % p.n
		src := (p.me - k + p.n) % p.n
		sendBufs[dst] = binary.LittleEndian.AppendUint64(nil, vals[dst])
		recvBufs[src] = make([]byte, 8)
		reqs = append(reqs, p.Irecv(recvBufs[src], src, tag))
		reqs = append(reqs, p.Isend(sendBufs[dst], dst, tag))
	}
	p.Waitall(reqs)
	for src := 0; src < p.n; src++ {
		if src != p.me {
			out[src] = binary.LittleEndian.Uint64(recvBufs[src])
		}
	}
	return out
}

// Alltoallv exchanges variable-size byte buffers: send[i] goes to rank i,
// and the result's entry i holds rank i's buffer for us. Counts are
// exchanged internally with Alltoall8 first (the usual usage pattern).
// Empty buffers are not transmitted. The call completes only when all of
// this rank's exchanges are done — the implicit synchronization the
// paper's MPI Alltoallv extend-add variant pays per tree level.
func (p *Proc) Alltoallv(send [][]byte) [][]byte {
	if len(send) != p.n {
		panic("mpi: Alltoallv needs one buffer per rank")
	}
	sizes := make([]uint64, p.n)
	for i, b := range send {
		sizes[i] = uint64(len(b))
	}
	recvSizes := p.Alltoall8(sizes)

	seq := p.nextCollSeq()
	tag := p.collTag(seq, 0)
	out := make([][]byte, p.n)
	if len(send[p.me]) > 0 {
		out[p.me] = append([]byte(nil), send[p.me]...)
	}
	var reqs []*Request
	for k := 1; k < p.n; k++ {
		src := (p.me - k + p.n) % p.n
		if recvSizes[src] > 0 {
			out[src] = make([]byte, recvSizes[src])
			reqs = append(reqs, p.Irecv(out[src], src, tag))
		}
	}
	for k := 1; k < p.n; k++ {
		dst := (p.me + k) % p.n
		if len(send[dst]) > 0 {
			reqs = append(reqs, p.Isend(send[dst], dst, tag))
		}
	}
	p.Waitall(reqs)
	return out
}

// Allgather8 collects one 8-byte word from every rank (entry i from
// rank i) — used for window base exchange.
func (p *Proc) Allgather8(v uint64) []uint64 {
	vals := make([]uint64, p.n)
	for i := range vals {
		vals[i] = v
	}
	return p.Alltoall8(vals)
}

// Bcast distributes root's buffer to all ranks along a binomial tree and
// returns it (the root returns data unchanged).
func (p *Proc) Bcast(root int, data []byte) []byte {
	if p.n == 1 {
		return data
	}
	seq := p.nextCollSeq()
	rr := (p.me - root + p.n) % p.n
	if rr != 0 {
		// Receive the size, then the payload, from the parent.
		parent := ((rr &^ lowestClear(rr)) + root) % p.n
		var szBuf [8]byte
		p.Recv(szBuf[:], parent, p.collTag(seq, 0))
		size := binary.LittleEndian.Uint64(szBuf[:])
		data = make([]byte, size)
		if size > 0 {
			p.Recv(data, parent, p.collTag(seq, 1))
		}
	}
	for k := 0; (1 << k) < p.n; k++ {
		step := 1 << k
		if step <= rr {
			continue
		}
		crel := rr + step
		if crel >= p.n {
			continue
		}
		child := (crel + root) % p.n
		var szBuf [8]byte
		binary.LittleEndian.PutUint64(szBuf[:], uint64(len(data)))
		p.Send(szBuf[:], child, p.collTag(seq, 0))
		if len(data) > 0 {
			p.Send(data, child, p.collTag(seq, 1))
		}
	}
	return data
}

// lowestClear returns the highest set bit of x (the bit cleared to find a
// binomial parent).
func lowestClear(x int) int {
	h := 1
	for h<<1 <= x {
		h <<= 1
	}
	return h
}

// AllreduceF64 combines one float64 from every rank with op and returns
// the result everywhere (binomial reduce to rank 0, then broadcast).
func (p *Proc) AllreduceF64(v float64, op func(a, b float64) float64) float64 {
	seq := p.nextCollSeq()
	rr := p.me
	acc := v
	var buf [8]byte
	// Receive from binomial children.
	for k := 0; (1 << k) < p.n; k++ {
		step := 1 << k
		if step <= rr {
			continue
		}
		if rr+step >= p.n {
			continue
		}
		p.Recv(buf[:], rr+step, p.collTag(seq, k))
		acc = op(acc, f64FromBits(buf[:]))
	}
	if rr != 0 {
		parent := rr &^ lowestClear(rr)
		k := log2(lowestClear(rr))
		putF64(buf[:], acc)
		p.Send(buf[:], parent, p.collTag(seq, k))
	}
	out := p.Bcast(0, f64Bytes(acc))
	return f64FromBits(out)
}

func log2(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

func f64Bytes(v float64) []byte {
	var b [8]byte
	putF64(b[:], v)
	return b[:]
}

func putF64(b []byte, v float64) {
	binary.LittleEndian.PutUint64(b, mathFloat64bits(v))
}

func f64FromBits(b []byte) float64 {
	return mathFloat64frombits(binary.LittleEndian.Uint64(b))
}
