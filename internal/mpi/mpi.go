// Package mpi implements the subset of MPI the paper benchmarks against:
// two-sided point-to-point with tag matching and eager/rendezvous
// protocols, the collectives the sparse-solver baselines use (Barrier,
// Alltoall/Alltoallv, Allgather, Allreduce, Bcast), and MPI-3 passive-
// target one-sided RMA (Win/Put/Get/Flush).
//
// It is the stand-in for Cray MPICH (closed source) in this reproduction:
// it runs over the same gasnet conduit as the UPC++ runtime, so every
// byte crosses the same simulated wire. The performance differences the
// paper measures come from the software MPI layers on top — matching
// queues, unexpected-message copies, rendezvous handshakes, window flush
// synchronization — which are implemented (not faked) here, plus
// CPU-overhead constants calibrated to the published behaviour of Cray
// MPICH on Aries (see Protocol and EXPERIMENTS.md).
package mpi

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"upcxx/internal/gasnet"
	"upcxx/internal/serial"
)

// Wildcards for Irecv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Protocol holds the tunable software-cost model of the MPI
// implementation. Costs are charged as real CPU spin time when the
// underlying conduit has a timing model, and skipped entirely otherwise.
type Protocol struct {
	EagerMax int // largest eager (payload-in-message) send, bytes

	SendOverhead  time.Duration // per-Isend software cost
	RecvOverhead  time.Duration // per-Irecv software cost
	MatchCost     time.Duration // per-message matching work at the target
	UnexpectedPer int           // extra ns per KB for unexpected-queue copy

	RMAPutBase   time.Duration // per-Put software cost
	RMAFlushBase time.Duration // per-Flush software cost
	RMAFlushSync time.Duration // extra flush cost for messages >= 256B (FMA completion wait)
	RMAChunk     int           // internal pipelining chunk for large puts

	// FMA/BTE-style per-byte CPU cost bands for one-sided puts,
	// reproducing the mid-size bandwidth dip of Fig 3b. Band i applies to
	// bytes in (Knee[i-1], Knee[i]].
	Knees  []int     // ascending byte thresholds; implicit +inf at end
	NsPerB []float64 // len(Knees)+1 rates, ns per byte
}

// DefaultProtocol returns constants calibrated for the Aries conduit model
// (gasnet.Aries), reproducing the relative UPC++/MPI gaps of Fig 3.
func DefaultProtocol() Protocol {
	return Protocol{
		EagerMax:      8 << 10,
		SendOverhead:  150 * time.Nanosecond,
		RecvOverhead:  100 * time.Nanosecond,
		MatchCost:     250 * time.Nanosecond,
		UnexpectedPer: 120, // ns per KB copied

		RMAPutBase:   60 * time.Nanosecond,
		RMAFlushBase: 100 * time.Nanosecond,
		RMAFlushSync: 300 * time.Nanosecond,
		RMAChunk:     64 << 10,

		// The last band is zero: transfers beyond 256KB ride the BTE
		// offload engine and cost no per-byte CPU.
		Knees:  []int{1 << 10, 16 << 10, 256 << 10},
		NsPerB: []float64{0.06, 0.13, 0.095, 0.0},
	}
}

// PutCPUBytes integrates the banded per-byte CPU rate over n bytes.
func (pr *Protocol) PutCPUBytes(n int) time.Duration {
	total := 0.0
	prev := 0
	for i, knee := range pr.Knees {
		if n <= prev {
			break
		}
		hi := n
		if hi > knee {
			hi = knee
		}
		total += float64(hi-prev) * pr.NsPerB[i]
		prev = knee
	}
	if n > prev {
		total += float64(n-prev) * pr.NsPerB[len(pr.NsPerB)-1]
	}
	return time.Duration(total)
}

// Config describes an MPI job.
type Config struct {
	Ranks        int
	RanksPerNode int
	SegmentSize  int
	Model        gasnet.Model
	Protocol     *Protocol // nil: DefaultProtocol
}

// World is one MPI job over its own conduit instance.
type World struct {
	net   *gasnet.Network
	procs []*Proc
	proto Protocol
	timed bool // charge software costs (model installed)

	amEager gasnet.HandlerID
	amRTS   gasnet.HandlerID
	amDone  gasnet.HandlerID
}

// NewWorld creates an MPI job.
func NewWorld(cfg Config) *World {
	proto := DefaultProtocol()
	if cfg.Protocol != nil {
		proto = *cfg.Protocol
	}
	w := &World{proto: proto, timed: cfg.Model != nil}
	w.net = gasnet.NewNetwork(gasnet.Config{
		Ranks:        cfg.Ranks,
		RanksPerNode: cfg.RanksPerNode,
		SegmentSize:  cfg.SegmentSize,
		Model:        cfg.Model,
	})
	w.amEager = w.net.RegisterAM(w.handleEager)
	w.amRTS = w.net.RegisterAM(w.handleRTS)
	w.amDone = w.net.RegisterAM(w.handleDone)
	w.procs = make([]*Proc, cfg.Ranks)
	for r := range w.procs {
		w.procs[r] = &Proc{
			w:  w,
			ep: w.net.Endpoint(int32(r)),
			me: r,
			n:  cfg.Ranks,
		}
	}
	return w
}

// Close tears down the conduit.
func (w *World) Close() { w.net.Close() }

// Proc returns rank r's process object.
func (w *World) Proc(r int) *Proc { return w.procs[r] }

// Network exposes the conduit (stats, tooling).
func (w *World) Network() *gasnet.Network { return w.net }

// Run executes fn SPMD across all ranks and waits for completion.
func (w *World) Run(fn func(p *Proc)) {
	var wg sync.WaitGroup
	wg.Add(len(w.procs))
	for _, p := range w.procs {
		p := p
		go func() {
			defer wg.Done()
			fn(p)
			p.Barrier()
		}()
	}
	wg.Wait()
}

// Run creates an n-rank zero-delay MPI world, executes fn, and tears it
// down.
func Run(n int, fn func(p *Proc)) {
	w := NewWorld(Config{Ranks: n})
	defer w.Close()
	w.Run(fn)
}

// charge burns CPU for d when the job has a timing model.
func (p *Proc) charge(d time.Duration) {
	if !p.w.timed || d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

// Proc is one MPI process. All methods must be called from the process's
// own goroutine.
type Proc struct {
	w  *World
	ep *gasnet.Endpoint
	me int
	n  int

	postedRecvs []*recvReq // posted receives, FIFO
	unexpected  []inMsg    // unmatched arrivals, FIFO

	rendSeq   uint64
	rendStage map[uint64]*rendSend // outstanding rendezvous sends by seq

	collSeq uint64
	winSeq  uint64
}

// Rank returns this process's rank.
func (p *Proc) Rank() int { return p.me }

// Size returns the job size.
func (p *Proc) Size() int { return p.n }

type inMsg struct {
	src, tag int
	eager    []byte // non-nil for eager messages
	rts      *rtsInfo
}

type rtsInfo struct {
	src    int
	seq    uint64
	segOff uint64
	nbytes int
}

type rendSend struct {
	req    *Request
	segOff uint64
	nbytes int
}

// Request tracks one non-blocking operation.
type Request struct {
	done   bool
	Status Status
}

// Status reports the source, tag and byte count of a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Done reports completion without progressing.
func (r *Request) Done() bool { return r.done }

// Wait progresses until the request completes.
func (p *Proc) Wait(r *Request) Status {
	deadline := time.Now().Add(60 * time.Second)
	for !r.done {
		if p.ep.Poll() == 0 {
			runtime.Gosched()
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("mpi: rank %d Wait exceeded 60s (deadlock?)", p.me))
		}
	}
	return r.Status
}

// Waitall progresses until every request completes.
func (p *Proc) Waitall(rs []*Request) {
	for _, r := range rs {
		p.Wait(r)
	}
}

// Test progresses once and reports completion.
func (p *Proc) Test(r *Request) bool {
	p.ep.Poll()
	return r.done
}

// Probe progresses until a message matching (src, tag) is available
// without receiving it, returning its envelope.
func (p *Proc) Probe(src, tag int) Status {
	for {
		for i := range p.unexpected {
			m := &p.unexpected[i]
			if matches(src, tag, m.src, m.tag) {
				n := len(m.eager)
				if m.rts != nil {
					n = m.rts.nbytes
				}
				return Status{Source: m.src, Tag: m.tag, Count: n}
			}
		}
		p.ep.Poll()
	}
}

func matches(wantSrc, wantTag, src, tag int) bool {
	if wantSrc != AnySource && wantSrc != src {
		return false
	}
	if wantTag == AnyTag {
		// Wildcards never match the reserved collective tag space — the
		// analogue of MPI keeping collective traffic in a separate
		// communicator context.
		return tag < collTagBase
	}
	return wantTag == tag
}

// header encodes the match envelope preceding each message payload.
func packHeader(src, tag int, seq uint64, segOff uint64, nbytes int) []byte {
	e := serial.NewEncoder(make([]byte, 0, 36))
	e.PutU32(uint32(src))
	e.PutI64(int64(tag))
	e.PutU64(seq)
	e.PutU64(segOff)
	e.PutU64(uint64(nbytes))
	return e.Bytes()
}

func unpackHeader(b []byte) (src, tag int, seq uint64, segOff uint64, nbytes int, rest []byte) {
	d := serial.NewDecoder(b)
	src = int(d.U32())
	tag = int(d.I64())
	seq = d.U64()
	segOff = d.U64()
	nbytes = int(d.U64())
	rest = d.Raw(d.Remaining())
	if d.Err() != nil {
		panic("mpi: malformed message header")
	}
	return
}
