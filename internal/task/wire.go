package task

// Task frame wire format. Every task that leaves its spawning rank —
// the initial AsyncAt ship and every later steal migration — travels as
// one versioned frame inside a registered fire-and-forget RPC (the
// steal/migrate protocol lowers onto the batched RPC wire rather than
// adding a conduit message type; cf. the paper's position that the
// runtime composes from one injection path). The frame is versioned and
// magic-tagged independently of the RPC envelope because it is
// re-encoded mid-flight: a victim decodes an enqueued frame, sets the
// stolen flag, and re-ships it, so both ends of a migration must agree
// on this layout even across runtime revisions.
//
//	u8  magic (0xCA)   u8 version (1)
//	u64 id             spawn sequence number, scoped to the home rank
//	u64 trace          home-ring trace id (0 = unsampled)
//	u32 home           world rank that spawned the task (owns id/trace/group)
//	u64 group          TaskGroup id on the home rank (0 = none)
//	u8  flags          fire-and-forget, stolen
//	uvarint-len bytes  registered function name
//	uvarint-len bytes  serialized argument
//
// decodeRec returns errors (not panics) for malformed input: frames
// cross trust boundaries between processes, and FuzzTaskWire drives this
// decoder directly.

import (
	"fmt"

	"upcxx/internal/serial"
)

const (
	taskMagic   = 0xCA
	taskWireVer = 1

	// taskMaxFrame bounds a single frame; a decoder rejects anything
	// claiming more, so a corrupt length prefix cannot drive allocation.
	taskMaxFrame = 1 << 30
)

const (
	// flagFF marks a fire-and-forget task: no result frame returns to the
	// home rank, and the executing rank counts its completion.
	flagFF = 1 << iota
	// flagStolen marks a migrated task, so the executing rank attributes
	// it to the steal path in counters and traces.
	flagStolen
)

// rec is one shippable task: everything a rank needs to execute a spawn
// that happened elsewhere.
type rec struct {
	ID    uint64
	Trace uint64
	Home  int32
	Group uint64
	Flags uint8
	Name  string
	Args  []byte
}

func encodeRec(r rec) []byte {
	e := serial.NewEncoder(make([]byte, 0, 32+len(r.Name)+len(r.Args)))
	e.PutU8(taskMagic)
	e.PutU8(taskWireVer)
	e.PutU64(r.ID)
	e.PutU64(r.Trace)
	e.PutU32(uint32(r.Home))
	e.PutU64(r.Group)
	e.PutU8(r.Flags)
	e.PutUvarint(uint64(len(r.Name)))
	e.PutRaw([]byte(r.Name))
	e.PutUvarint(uint64(len(r.Args)))
	e.PutRaw(r.Args)
	return e.Bytes()
}

func decodeRec(b []byte) (rec, error) {
	var r rec
	d := serial.NewDecoder(b)
	if m := d.U8(); d.Err() == nil && m != taskMagic {
		return r, fmt.Errorf("task: frame magic %#x, want %#x", m, taskMagic)
	}
	if v := d.U8(); d.Err() == nil && v != taskWireVer {
		return r, fmt.Errorf("task: frame version %d, want %d", v, taskWireVer)
	}
	r.ID = d.U64()
	r.Trace = d.U64()
	r.Home = int32(d.U32())
	r.Group = d.U64()
	r.Flags = d.U8()
	nn := d.Uvarint()
	if d.Err() == nil && nn > taskMaxFrame {
		return r, fmt.Errorf("task: frame name length %d exceeds bound", nn)
	}
	r.Name = string(d.Raw(int(nn)))
	na := d.Uvarint()
	if d.Err() == nil && na > taskMaxFrame {
		return r, fmt.Errorf("task: frame argument length %d exceeds bound", na)
	}
	r.Args = d.Raw(int(na))
	if err := d.Err(); err != nil {
		return r, fmt.Errorf("task: truncated frame: %w", err)
	}
	if err := d.Finish(); err != nil {
		return r, fmt.Errorf("task: trailing bytes after frame: %w", err)
	}
	if r.Home < 0 {
		return r, fmt.Errorf("task: frame home rank %d negative", r.Home)
	}
	if r.Name == "" {
		return r, fmt.Errorf("task: frame names no function")
	}
	return r, nil
}
