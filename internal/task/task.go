// Package task is the distributed async-task runtime layered on the
// UPC++-style core: AsyncAt ships a registered function and serialized
// argument to any rank and hands back a future for the result, per-rank
// worker personas drain a shared local queue, idle ranks steal batched
// work from remote victims over one-way RPCs, and a Mattern-style
// four-counter detector decides global quiescence (Finish) without a
// barrier per wave of spawns.
//
// The package adds no conduit machinery: spawns, migrations, results and
// steal control all lower onto the registered-RPC and batched-RPC paths
// the core already routes through Rank.inject, so tasks inherit the
// transports (in-process, tcp, shm), the failure detector (ErrPeerLost),
// and the introspection layer for free.
//
// Attentiveness follows the UPC++ model: task frames arrive during
// progress (worker personas call ProgressWait while idle, and
// Finish/Wait help execute), and every future returned by AsyncAt is
// owned by the spawning persona, readied via an LPC exactly like an RPC
// reply.
package task

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	core "upcxx/internal/core"
	"upcxx/internal/obs"
	"upcxx/internal/serial"
)

// Config tunes one rank's task runtime.
type Config struct {
	// Workers is the number of worker goroutines (each with its own
	// persona) pulling from the rank's task queue. 0 means 2.
	Workers int
	// NoSteal disables work stealing: idle workers only wait for local
	// spawns. The imbalance-recovery baseline in cmd/task-bench.
	NoSteal bool
	// StealBatch caps how many tasks one steal request migrates. 0 means
	// 8. Batching amortizes the per-message overhead o over several
	// migrated tasks — the same o/G trade the paper's rput_v makes.
	StealBatch int
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 2
	}
	return c.Workers
}

func (c Config) stealBatch() int {
	if c.StealBatch <= 0 {
		return 8
	}
	return c.StealBatch
}

// Runtime is one rank's task engine. Create one per rank with New; every
// rank of the job must create it (with matching steal configuration)
// before any task crosses ranks, since the RPC bodies resolve the
// receiving rank's runtime through a process-global registry.
type Runtime struct {
	rk  *core.Rank
	cfg Config

	mu sync.Mutex
	dq []rec // shared deque: workers pop newest, steals take oldest

	pmu     sync.Mutex
	pending map[uint64]func([]byte) // result routes by spawn id (home side)

	gmu    sync.Mutex
	groups map[uint64]*Group
	gseq   uint64

	seq      atomic.Uint64 // spawn ids, scoped to this home rank
	spawned  atomic.Uint64 // S: tasks spawned by this rank
	executed atomic.Uint64 // C: spawns of this rank fully retired

	stealing  atomic.Bool   // at most one outstanding steal request
	victimSeq atomic.Uint32 // round-robin victim rotation

	stop chan struct{}
	wg   sync.WaitGroup
}

// runtimes maps each rank to its task runtime so the registered RPC
// bodies (which receive only *core.Rank) can find it.
var runtimes sync.Map // *core.Rank -> *Runtime

// New creates and starts the rank's task runtime. At most one per rank.
func New(rk *core.Rank, cfg Config) *Runtime {
	rt := &Runtime{
		rk:      rk,
		cfg:     cfg,
		pending: make(map[uint64]func([]byte)),
		groups:  make(map[uint64]*Group),
		stop:    make(chan struct{}),
	}
	if _, loaded := runtimes.LoadOrStore(rk, rt); loaded {
		panic(fmt.Sprintf("task: %v already has a runtime", rk))
	}
	rt.wg.Add(cfg.workers())
	for i := 0; i < cfg.workers(); i++ {
		go rt.worker(i)
	}
	return rt
}

// Of returns the rank's runtime, or nil when New has not run.
func Of(rk *core.Rank) *Runtime {
	v, ok := runtimes.Load(rk)
	if !ok {
		return nil
	}
	return v.(*Runtime)
}

func of(rk *core.Rank, why string) *Runtime {
	rt := Of(rk)
	if rt == nil {
		panic(fmt.Sprintf("task: %s reached %v, which has no task runtime (every rank must task.New before tasks cross ranks)", why, rk))
	}
	return rt
}

// Rank returns the rank the runtime serves.
func (rt *Runtime) Rank() *core.Rank { return rt.rk }

// Stop shuts the worker goroutines down and unregisters the runtime.
// Call after quiescence (Finish); queued tasks are abandoned.
func (rt *Runtime) Stop() {
	close(rt.stop)
	rt.wg.Wait()
	runtimes.Delete(rt.rk)
}

// --- task function registry ----------------------------------------------

// Task bodies cross process boundaries by stable runtime name, exactly
// like the core's RPC registry (fnreg.go): register package-level,
// non-generic functions from init(). The task registry is separate
// because task signatures carry their own result path — a result frame
// back to the home rank, not an RPC reply.
type fnEntry struct {
	run   func(trk *core.Rank, args []byte) []byte // result-bearing
	runFF func(trk *core.Rank, args []byte)        // fire-and-forget
}

var fnReg = struct {
	sync.RWMutex
	byName map[string]*fnEntry
	byPtr  map[uintptr]string
}{
	byName: make(map[string]*fnEntry),
	byPtr:  make(map[uintptr]string),
}

func registerEntry(fn any, ent fnEntry) string {
	v := reflect.ValueOf(fn)
	rf := runtime.FuncForPC(v.Pointer())
	if rf == nil {
		panic("task: Register of unresolvable function")
	}
	name := rf.Name()
	fnReg.Lock()
	fnReg.byName[name] = &ent
	fnReg.byPtr[v.Pointer()] = name
	fnReg.Unlock()
	return name
}

func nameOf(fn any) string {
	fnReg.RLock()
	name := fnReg.byPtr[reflect.ValueOf(fn).Pointer()]
	fnReg.RUnlock()
	if name == "" {
		panic(fmt.Sprintf("task: AsyncAt of unregistered function %T — task.Register it at init time on every rank", fn))
	}
	return name
}

func lookup(name string) *fnEntry {
	fnReg.RLock()
	ent := fnReg.byName[name]
	fnReg.RUnlock()
	if ent == nil {
		panic(fmt.Sprintf("task: frame names unregistered function %q — every rank must task.Register it at init time", name))
	}
	return ent
}

// Register registers a result-bearing task body for cross-rank dispatch
// and returns its wire name. Call from init() with a package-level,
// non-generic function.
func Register[A, R any](fn func(*core.Rank, A) R) string {
	return registerEntry(fn, fnEntry{
		run: func(trk *core.Rank, args []byte) []byte {
			var a A
			unmarshal(args, &a)
			return marshal(fn(trk, a))
		},
	})
}

// RegisterFF registers a fire-and-forget task body (no result frame).
func RegisterFF[A any](fn func(*core.Rank, A)) string {
	return registerEntry(fn, fnEntry{
		runFF: func(trk *core.Rank, args []byte) {
			var a A
			unmarshal(args, &a)
			fn(trk, a)
		},
	})
}

func marshal(v any) []byte {
	b, err := serial.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("task: argument/result not serializable: %v", err))
	}
	return b
}

func unmarshal(b []byte, ptr any) {
	if err := serial.Unmarshal(b, ptr); err != nil {
		panic(fmt.Sprintf("task: argument/result decode: %v", err))
	}
}

// --- spawning -------------------------------------------------------------

// AsyncAt spawns fn(arg) on the target rank and returns a future for the
// result, owned by the calling persona (ready it via that persona's
// progress, like any RPC reply). The task lands in the target's queue —
// not inline in its AM handler — so any worker there, or a thief
// elsewhere, may run it. fn must be task.Registered on every rank.
func AsyncAt[A, R any](rt *Runtime, target core.Intrank, fn func(*core.Rank, A) R, arg A) core.Future[R] {
	name := nameOf(fn)
	prom := core.NewPromise[R](rt.rk)
	pers := rt.rk.CurrentPersona()
	if pers == nil {
		panic("task: AsyncAt requires a current persona to own the result future")
	}
	id := rt.seq.Add(1)
	rt.pmu.Lock()
	rt.pending[id] = func(res []byte) {
		pers.LPC(func() {
			var r R
			unmarshal(res, &r)
			prom.FulfillResult(r)
		})
	}
	rt.pmu.Unlock()
	rt.ship(target, rec{ID: id, Home: int32(rt.rk.Me()), Name: name, Args: marshal(arg)})
	return prom.Future()
}

// AsyncAtFF spawns fn(arg) on the target rank fire-and-forget: no result
// returns, and Finish (not a future) is the way to await it.
func AsyncAtFF[A any](rt *Runtime, target core.Intrank, fn func(*core.Rank, A), arg A) {
	rt.ship(target, rec{Home: int32(rt.rk.Me()), Flags: flagFF, Name: nameOf(fn), Args: marshal(arg)})
}

// ship counts the spawn, stamps the trace id, and routes the frame: the
// local queue for self-targets, the enqueue RPC otherwise.
func (rt *Runtime) ship(target core.Intrank, r rec) {
	if target < 0 || target >= rt.rk.N() {
		panic(fmt.Sprintf("task: AsyncAt target %d out of range [0,%d)", target, rt.rk.N()))
	}
	rt.spawned.Add(1)
	if ro := rt.rk.RankObs(); ro != nil {
		r.Trace = ro.TaskStart(len(r.Args))
	}
	if target == rt.rk.Me() {
		rt.enqueue(r)
		return
	}
	core.RPCFF(rt.rk, target, taskEnqueueBody, encodeRec(r))
}

// enqueue appends a runnable task to the shared local queue.
func (rt *Runtime) enqueue(r rec) {
	rt.mu.Lock()
	rt.dq = append(rt.dq, r)
	rt.mu.Unlock()
	if ro := rt.rk.RankObs(); ro != nil {
		ro.TaskHop(r.Home, obs.StageTaskEnq, r.Trace, len(r.Args))
	}
}

// popLocal takes the newest task (LIFO keeps the working set warm;
// thieves take the oldest end, where the biggest unexplored subtrees of
// a divide-and-conquer spawn pattern sit).
func (rt *Runtime) popLocal() (rec, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.dq) == 0 {
		return rec{}, false
	}
	r := rt.dq[len(rt.dq)-1]
	rt.dq = rt.dq[:len(rt.dq)-1]
	return r, true
}

// popOldest takes up to n tasks from the victim end of the queue.
func (rt *Runtime) popOldest(n int) []rec {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if n > len(rt.dq) {
		n = len(rt.dq)
	}
	if n == 0 {
		return nil
	}
	out := make([]rec, n)
	copy(out, rt.dq[:n])
	rt.dq = append(rt.dq[:0], rt.dq[n:]...)
	return out
}

// Queued returns the number of runnable tasks waiting locally.
func (rt *Runtime) Queued() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.dq)
}

// --- execution ------------------------------------------------------------

// execute runs one task on the calling goroutine and retires it: result
// frame home for result-bearing tasks, completion counting at the home
// rank (so Finish's S==C also covers the result leg), group credit back
// to the home group, trace hops into the home ring.
func (rt *Runtime) execute(r rec) {
	rk := rt.rk
	ro := rk.RankObs()
	if ro != nil {
		ro.TaskHop(r.Home, obs.StageTaskExec, r.Trace, len(r.Args))
	}
	ent := lookup(r.Name)
	home := core.Intrank(r.Home)
	if r.Flags&flagFF != 0 {
		ent.runFF(rk, r.Args)
		rt.retire(home, retireMsg{ID: r.ID, Group: r.Group})
	} else {
		res := ent.run(rk, r.Args)
		rt.retire(home, retireMsg{ID: r.ID, Group: r.Group, Res: res, HasRes: true})
	}
	if ro != nil {
		ro.CountTask(obs.TaskExecuted, 1)
		ro.TaskHop(r.Home, obs.StageTaskDone, r.Trace, 0)
	}
}

// retireMsg carries a task's completion back to its home rank: the
// executed-counter credit, the result bytes (when the spawn wants one),
// and the group credit.
type retireMsg struct {
	ID     uint64
	Group  uint64
	Res    []byte
	HasRes bool
}

func (rt *Runtime) retire(home core.Intrank, m retireMsg) {
	if home == rt.rk.Me() {
		taskRetireBody(rt.rk, m)
		return
	}
	core.RPCFF(rt.rk, home, taskRetireBody, m)
}

// retireLocal is the home side of a completion: the C counter moves here
// — not at the executing rank — so the detector's S==C quiescence also
// certifies that every result and group credit has landed, not merely
// that bodies ran somewhere.
func (rt *Runtime) retireLocal(m retireMsg) {
	if m.HasRes {
		rt.pmu.Lock()
		deliver := rt.pending[m.ID]
		delete(rt.pending, m.ID)
		rt.pmu.Unlock()
		if deliver != nil {
			deliver(m.Res)
		}
	}
	if m.Group != 0 {
		rt.gmu.Lock()
		g := rt.groups[m.Group]
		rt.gmu.Unlock()
		if g != nil {
			g.n.Add(-1)
		}
	}
	rt.executed.Add(1)
}

// --- workers --------------------------------------------------------------

// worker is one puller persona: execute local work; when the queue runs
// dry, try a steal and lend the goroutine to progress (delivering
// incoming frames, results and steal replies) until work appears.
func (rt *Runtime) worker(i int) {
	defer rt.wg.Done()
	pers := core.NewPersona(rt.rk, fmt.Sprintf("task-worker-%d", i))
	sc := core.AcquirePersona(pers)
	defer sc.Release()
	idle := 0
	for {
		select {
		case <-rt.stop:
			return
		default:
		}
		if r, ok := rt.popLocal(); ok {
			idle = 0
			rt.execute(r)
			// Stay attentive between executions: polling here hands
			// arriving frames and steal requests to the exec persona
			// instead of letting them sit until the queue drains.
			rt.rk.Progress()
			continue
		}
		idle++
		rt.maybeSteal()
		if idle < 64 {
			rt.rk.ProgressWait(200 * time.Microsecond)
		} else {
			// Deep idle: progress once, then sleep off-CPU so parked
			// worker fleets don't starve rank goroutines on small hosts.
			rt.rk.Progress()
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// --- quiescence -----------------------------------------------------------

// tally is one detector wave's payload: job-wide spawned and retired
// counts.
type tally struct{ S, C uint64 }

// Finish drives the four-counter termination detector: waves of
// AllReduce over (spawned, retired) counters, terminating when two
// consecutive waves agree on identical totals with S == C. The allreduce
// ordering guarantees every wave-k read happens before every wave-k+1
// read, so agreement across one full wave gap proves no spawn, steal,
// execution or result was in flight anywhere — quiescence without a
// stop-the-world barrier. Finish is collective: every rank calls it (in
// matching collective order) and helps execute tasks while it waits. It
// fails fast with the world's error (wrapping gasnet.ErrPeerLost) if a
// rank dies before quiescence.
func (rt *Runtime) Finish() error {
	rk := rt.rk
	var prev tally
	prevQuiet := false
	for {
		f := core.AllReduce(rk.WorldTeam(), tally{S: rt.spawned.Load(), C: rt.executed.Load()},
			func(a, b tally) tally { return tally{S: a.S + b.S, C: a.C + b.C} })
		if err := rt.helpUntil(f.Ready); err != nil {
			return err
		}
		tot := f.Result()
		if ro := rk.RankObs(); ro != nil {
			ro.CountTask(obs.TaskDetectRounds, 1)
		}
		quiet := tot.S == tot.C
		if quiet && prevQuiet && tot == prev {
			return nil
		}
		prev, prevQuiet = tot, quiet
	}
}

// helpUntil executes queued tasks (stealing when idle) and progresses
// the rank until done() holds, failing fast if the world loses a rank.
// Progress runs every iteration — not only when the queue is dry — so a
// rank grinding through a deep queue stays attentive: steal requests
// against it land between task executions, which is what lets thieves
// drain a skewed queue while its owner is still busy.
func (rt *Runtime) helpUntil(done func() bool) error {
	for !done() {
		if err := rt.rk.World().Failed(); err != nil {
			return err
		}
		rt.rk.Progress()
		if r, ok := rt.popLocal(); ok {
			rt.execute(r)
			continue
		}
		rt.maybeSteal()
		rt.rk.ProgressWait(time.Millisecond)
	}
	return nil
}

// HelpWait blocks on f like Future.Wait, but lends the calling goroutine
// to the task queue while it waits, so a rank awaiting one result keeps
// executing (and stealing) tasks. It panics on world failure, matching
// Wait.
func HelpWait[T any](rt *Runtime, f core.Future[T]) T {
	if err := rt.helpUntil(f.Ready); err != nil {
		panic(err)
	}
	return f.Result()
}

// --- task groups ----------------------------------------------------------

// Group awaits a set of fire-and-forget spawns by credit counting:
// every GroupAsyncAt increments the home-side balance before the frame
// ships, every completion returns one credit with the task's retire
// frame, and Wait drains to zero. Unlike Finish it is local — only the
// home rank waits, nobody else participates — so spawning through a
// Group is restricted to the rank that created it.
type Group struct {
	rt *Runtime
	id uint64
	n  atomic.Int64
}

// NewGroup creates a task group homed on this rank.
func (rt *Runtime) NewGroup() *Group {
	rt.gmu.Lock()
	rt.gseq++
	g := &Group{rt: rt, id: rt.gseq}
	rt.groups[g.id] = g
	rt.gmu.Unlock()
	return g
}

// GroupAsyncAt spawns fn(arg) on the target rank under the group.
func GroupAsyncAt[A any](g *Group, target core.Intrank, fn func(*core.Rank, A), arg A) {
	g.n.Add(1) // credit out before the frame can possibly retire
	g.rt.ship(target, rec{Home: int32(g.rt.rk.Me()), Group: g.id, Flags: flagFF, Name: nameOf(fn), Args: marshal(arg)})
}

// Outstanding returns the group's current credit balance.
func (g *Group) Outstanding() int64 { return g.n.Load() }

// Wait blocks until every spawn under the group has retired, helping
// execute tasks meanwhile. It fails fast on world failure. The group
// stays usable for further rounds of spawns after Wait returns.
func (g *Group) Wait() error {
	return g.rt.helpUntil(func() bool { return g.n.Load() == 0 })
}

// --- registered RPC bodies ------------------------------------------------

// The cross-rank protocol is four registered fire-and-forget bodies —
// task frames, retire frames, steal requests and steal replies — all
// riding the core's RPC wire (and, for migrations, its batched wire).

var (
	_ = core.RegisterRPCFF(taskEnqueueBody)
	_ = core.RegisterRPCFF(taskRetireBody)
	_ = core.RegisterRPCFF(stealReqBody)
	_ = core.RegisterRPCFF(stealAckBody)
)

// taskEnqueueBody lands a shipped task frame in the receiving rank's
// queue. Runs on the exec persona like every RPC body.
func taskEnqueueBody(trk *core.Rank, frame []byte) {
	r, err := decodeRec(frame)
	if err != nil {
		panic(fmt.Sprintf("task: rank %d received malformed task frame: %v", trk.Me(), err))
	}
	rt := of(trk, "a task frame")
	if r.Flags&flagStolen != 0 {
		// Thief-side mirror of the victim's TaskMigrated: both count per
		// migration hop, so job-wide stolen == migrated at quiescence
		// even when loot is re-stolen onward.
		if ro := trk.RankObs(); ro != nil {
			ro.CountTask(obs.TaskStolen, 1)
			ro.TaskHop(r.Home, obs.StageTaskSteal, r.Trace, len(r.Args))
		}
	}
	rt.enqueue(r)
}

// taskRetireBody lands a completion at the task's home rank.
func taskRetireBody(trk *core.Rank, m retireMsg) {
	of(trk, "a retire frame").retireLocal(m)
}

// rng gives each steal decision an independent jitter source; victim
// selection must not need coordination.
var rng = struct {
	sync.Mutex
	r *rand.Rand
}{r: rand.New(rand.NewSource(1))}

func jitter(n int) int {
	rng.Lock()
	defer rng.Unlock()
	return rng.r.Intn(n)
}
