package task

// Work stealing. A rank whose queue runs dry picks a victim and sends a
// one-way steal request; the victim pops a batch of its oldest tasks and
// ships them back — every migrated frame plus the steal reply — as ONE
// batched-RPC message (core.NewBatch), so a successful steal costs the
// thief one request AM and the victim one reply AM regardless of batch
// size. At most one steal is outstanding per rank: steal traffic stays
// bounded by the number of idle ranks, and a failed steal (empty reply)
// backs off through the worker's idle progression rather than hammering
// the next victim in a tight loop.

import (
	core "upcxx/internal/core"
	"upcxx/internal/obs"
)

// stealReq asks a victim for up to Max tasks on behalf of Thief.
type stealReq struct {
	Thief int32
	Max   uint32
}

// stealAck closes the thief's outstanding steal; N tasks were migrated
// in the same batch, ordered before the ack.
type stealAck struct {
	Victim int32
	N      uint32
}

// maybeSteal sends one steal request if stealing is enabled, the local
// queue is empty, and no request is already outstanding.
func (rt *Runtime) maybeSteal() {
	if rt.cfg.NoSteal || rt.rk.N() < 2 {
		return
	}
	if !rt.stealing.CompareAndSwap(false, true) {
		return
	}
	victim := rt.nextVictim()
	if ro := rt.rk.RankObs(); ro != nil {
		ro.CountTask(obs.TaskStealReqs, 1)
	}
	core.RPCFF(rt.rk, victim, stealReqBody, stealReq{
		Thief: int32(rt.rk.Me()),
		Max:   uint32(rt.cfg.stealBatch()),
	})
}

// nextVictim rotates through the other ranks from a jittered start, so
// a fleet of simultaneously-idle thieves fans out instead of mobbing
// rank (me+1).
func (rt *Runtime) nextVictim() core.Intrank {
	n := int(rt.rk.N())
	me := int(rt.rk.Me())
	if rt.victimSeq.Load() == 0 {
		rt.victimSeq.Store(uint32(jitter(n-1) + 1))
	}
	step := int(rt.victimSeq.Add(1))
	v := (me + 1 + step%(n-1)) % n
	if v == me {
		v = (v + 1) % n
	}
	return core.Intrank(v)
}

// stealReqBody runs at the victim (exec persona): pop the oldest batch,
// mark each frame stolen, and flush frames + ack as one wire message.
func stealReqBody(trk *core.Rank, req stealReq) {
	thief := core.Intrank(req.Thief)
	var recs []rec
	if rt := Of(trk); rt != nil {
		recs = rt.popOldest(int(req.Max))
	}
	b := core.NewBatch(trk, thief)
	for _, r := range recs {
		r.Flags |= flagStolen
		core.BatchRPCFF(b, taskEnqueueBody, encodeRec(r))
	}
	core.BatchRPCFF(b, stealAckBody, stealAck{Victim: int32(trk.Me()), N: uint32(len(recs))})
	b.Flush()
	if len(recs) > 0 {
		if ro := trk.RankObs(); ro != nil {
			ro.CountTask(obs.TaskMigrated, len(recs))
		}
	}
}

// stealAckBody runs at the thief (exec persona): the migrated frames in
// the same batch have already been enqueued (the batch executes in
// order), so clearing the outstanding flag here means a worker that
// immediately re-steals has already seen this batch's loot.
func stealAckBody(trk *core.Rank, ack stealAck) {
	rt := Of(trk)
	if rt == nil {
		// A request sent by a since-stopped runtime; its ack (necessarily
		// empty: Stop follows quiescence) has nothing to close.
		return
	}
	if ack.N == 0 {
		if ro := trk.RankObs(); ro != nil {
			ro.CountTask(obs.TaskStealFails, 1)
		}
	}
	rt.stealing.Store(false)
}
