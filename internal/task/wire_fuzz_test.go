package task

// FuzzTaskWire drives the task-frame decoder with arbitrary bytes: it
// must never panic (frames cross process boundaries), and any frame it
// accepts must survive a re-encode/re-decode round trip unchanged — the
// property steal migration relies on when a victim re-ships a decoded
// frame. Wired into make fuzz-smoke.

import (
	"bytes"
	"testing"
)

func FuzzTaskWire(f *testing.F) {
	f.Add(encodeRec(rec{ID: 1, Home: 0, Name: "pkg.fn", Args: []byte{1, 2, 3}}))
	f.Add(encodeRec(rec{ID: 1 << 60, Trace: 99, Home: 3, Group: 7, Flags: flagFF | flagStolen,
		Name: "upcxx/internal/task.tChain", Args: bytes.Repeat([]byte{0xAB}, 300)}))
	f.Add(encodeRec(rec{ID: 2, Home: 1, Name: "n", Args: nil}))
	f.Add([]byte{})
	f.Add([]byte{taskMagic})
	f.Add([]byte{taskMagic, taskWireVer, 0, 0, 0})
	f.Add([]byte{taskMagic, taskWireVer + 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeRec(data)
		if err != nil {
			return
		}
		// Accepted frames must round-trip: re-encoding a decoded frame is
		// exactly what a steal victim does before re-shipping it.
		b2 := encodeRec(r)
		r2, err2 := decodeRec(b2)
		if err2 != nil {
			t.Fatalf("re-encoded frame rejected: %v", err2)
		}
		if r2.ID != r.ID || r2.Trace != r.Trace || r2.Home != r.Home ||
			r2.Group != r.Group || r2.Flags != r.Flags || r2.Name != r.Name ||
			!bytes.Equal(r2.Args, r.Args) {
			t.Fatalf("round trip mismatch: %+v != %+v", r2, r)
		}
	})
}
