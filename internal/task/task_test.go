package task

// Race-conformance matrix and semantics tests for the distributed task
// runtime: {AsyncAt, AsyncAtFF, Finish} × {self, cross} × {steal-on,
// steal-off} × {zero-delay, LogGP real-time} worlds, plus steal
// migration placement, cascade termination (no premature Finish, no
// missed quiescence), task groups, and the observability counters. The
// whole package runs under -race in CI (make race).

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	core "upcxx/internal/core"
	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
)

// --- registered task bodies (package-level, init-time, like production) ---

var (
	execBy    [64]atomic.Int64 // executions per executing rank
	ffHits    atomic.Int64     // fire-and-forget bodies run
	groupHits atomic.Int64     // group bodies run
	chainHits atomic.Int64     // cascade bodies run
)

func resetCounters() {
	for i := range execBy {
		execBy[i].Store(0)
	}
	ffHits.Store(0)
	groupHits.Store(0)
	chainHits.Store(0)
}

func tDouble(trk *core.Rank, x int64) int64 {
	execBy[trk.Me()].Add(1)
	return x * 2
}

type tPair struct {
	A, B  int64
	Label string
}

func tSwap(trk *core.Rank, p tPair) tPair {
	return tPair{A: p.B, B: p.A, Label: p.Label + fmt.Sprintf("@%d", trk.Me())}
}

func tBump(trk *core.Rank, _ int64) {
	execBy[trk.Me()].Add(1)
	ffHits.Add(1)
}

// tChain re-spawns itself around the ring until depth runs out: the
// in-flight cascade the four-counter detector must not cut short.
func tChain(trk *core.Rank, depth int64) {
	chainHits.Add(1)
	if depth > 0 {
		rt := Of(trk)
		AsyncAtFF(rt, (trk.Me()+1)%trk.N(), tChain, depth-1)
	}
}

// tSleep holds a worker long enough that a skewed queue outlives the
// thieves' first steal round.
func tSleep(trk *core.Rank, us int64) {
	time.Sleep(time.Duration(us) * time.Microsecond)
	execBy[trk.Me()].Add(1)
}

func tGroupBump(trk *core.Rank, _ int64) {
	execBy[trk.Me()].Add(1)
	groupHits.Add(1)
}

var (
	_ = Register(tDouble)
	_ = Register(tSwap)
	_ = RegisterFF(tBump)
	_ = RegisterFF(tChain)
	_ = RegisterFF(tSleep)
	_ = RegisterFF(tGroupBump)
)

// matrixWorlds enumerates the conformance matrix's world axis.
func matrixWorlds() map[string]core.Config {
	return map[string]core.Config{
		"nodelay": {Ranks: 4},
		"loggp": {Ranks: 4, RanksPerNode: 2,
			Model: &gasnet.LogGP{O: time.Microsecond, L: 5 * time.Microsecond, Gp: time.Microsecond}},
	}
}

// TestTaskMatrix drives the conformance matrix. Each cell spawns
// result-bearing tasks at self and cross targets, fire-and-forget tasks
// at self and cross targets, a cascading chain, and then Finish — which
// must return only after every body anywhere has run and every result
// has landed.
func TestTaskMatrix(t *testing.T) {
	for wname, wcfg := range matrixWorlds() {
		for _, steal := range []bool{false, true} {
			wname, wcfg, steal := wname, wcfg, steal
			t.Run(fmt.Sprintf("%s/steal=%v", wname, steal), func(t *testing.T) {
				resetCounters()
				const chainDepth = 12
				core.RunConfig(wcfg, func(rk *core.Rank) {
					rt := New(rk, Config{NoSteal: !steal, Workers: 2})
					defer rt.Stop()
					me, n := rk.Me(), rk.N()

					fSelf := AsyncAt(rt, me, tDouble, int64(me))
					fCross := AsyncAt(rt, (me+1)%n, tDouble, int64(me)+100)
					fStruct := AsyncAt(rt, (me+2)%n, tSwap, tPair{A: 1, B: 2, Label: "x"})
					AsyncAtFF(rt, me, tBump, 0)
					AsyncAtFF(rt, (me+3)%n, tBump, 0)
					if me == 0 {
						AsyncAtFF(rt, me, tChain, chainDepth)
					}

					if got := HelpWait(rt, fSelf); got != int64(me)*2 {
						t.Errorf("rank %d: self AsyncAt = %d, want %d", me, got, me*2)
					}
					if got := HelpWait(rt, fCross); got != (int64(me)+100)*2 {
						t.Errorf("rank %d: cross AsyncAt = %d, want %d", me, got, (int64(me)+100)*2)
					}
					if got := HelpWait(rt, fStruct); got.A != 2 || got.B != 1 || got.Label == "x" {
						t.Errorf("rank %d: struct AsyncAt = %+v", me, got)
					}
					if err := rt.Finish(); err != nil {
						t.Errorf("rank %d: Finish: %v", me, err)
					}
					rk.Barrier()
				})
				if got, want := ffHits.Load(), int64(2*4); got != want {
					t.Errorf("fire-and-forget bodies after Finish = %d, want %d", got, want)
				}
				if got, want := chainHits.Load(), int64(chainDepth+1); got != want {
					t.Errorf("cascade bodies after Finish = %d, want %d (premature quiescence)", got, want)
				}
			})
		}
	}
}

// TestTaskStealMovesWork pins migration placement on a skewed workload:
// every task spawns at rank 0 targeting itself. With stealing the other
// ranks must end up executing some of them; with NoSteal none may move.
func TestTaskStealMovesWork(t *testing.T) {
	const tasks = 48
	for _, steal := range []bool{true, false} {
		steal := steal
		t.Run(fmt.Sprintf("steal=%v", steal), func(t *testing.T) {
			resetCounters()
			var stolen, migrated uint64
			core.RunConfig(core.Config{Ranks: 4, Stats: true}, func(rk *core.Rank) {
				rt := New(rk, Config{NoSteal: !steal, Workers: 1, StealBatch: 4})
				defer rt.Stop()
				if rk.Me() == 0 {
					for i := 0; i < tasks; i++ {
						AsyncAtFF(rt, 0, tSleep, 300)
					}
				}
				if err := rt.Finish(); err != nil {
					t.Errorf("rank %d: Finish: %v", rk.Me(), err)
				}
				rk.Barrier()
				if rk.Me() == 0 {
					s := rk.World().StatsMerged()
					if len(s.Tasks) > 0 {
						stolen = s.Tasks[obs.TaskStolen]
						migrated = s.Tasks[obs.TaskMigrated]
					}
				}
			})
			total := int64(0)
			remote := int64(0)
			for r := range execBy {
				total += execBy[r].Load()
				if r != 0 {
					remote += execBy[r].Load()
				}
			}
			if total != tasks {
				t.Fatalf("executed %d tasks, want %d", total, tasks)
			}
			if steal {
				if remote == 0 {
					t.Errorf("stealing on: all %d tasks ran at rank 0, want some migrated", tasks)
				}
				if stolen == 0 || migrated != stolen {
					t.Errorf("steal counters: stolen=%d migrated=%d, want equal and nonzero", stolen, migrated)
				}
			} else {
				if remote != 0 {
					t.Errorf("stealing off: %d tasks ran away from rank 0", remote)
				}
				if stolen != 0 || migrated != 0 {
					t.Errorf("steal counters with NoSteal: stolen=%d migrated=%d, want 0", stolen, migrated)
				}
			}
		})
	}
}

// TestTaskGroup pins credit-counting completion: Wait drains exactly the
// group's spawns (tasks outside the group don't count), and the group is
// reusable for further rounds.
func TestTaskGroup(t *testing.T) {
	resetCounters()
	core.RunConfig(core.Config{Ranks: 4}, func(rk *core.Rank) {
		rt := New(rk, Config{})
		defer rt.Stop()
		if rk.Me() == 0 {
			g := rt.NewGroup()
			for round := 1; round <= 2; round++ {
				for r := core.Intrank(0); r < rk.N(); r++ {
					GroupAsyncAt(g, r, tGroupBump, 0)
				}
				if err := g.Wait(); err != nil {
					t.Errorf("group Wait round %d: %v", round, err)
				}
				if g.Outstanding() != 0 {
					t.Errorf("round %d: Outstanding = %d after Wait", round, g.Outstanding())
				}
				if got := groupHits.Load(); got != int64(round)*4 {
					t.Errorf("round %d: group bodies = %d, want %d", round, got, round*4)
				}
			}
		}
		if err := rt.Finish(); err != nil {
			t.Errorf("rank %d: Finish: %v", rk.Me(), err)
		}
		rk.Barrier()
	})
}

// TestTaskObsCounters pins the introspection contract: spawned ==
// executed globally after Finish, detector rounds counted, and the
// trace ring holds task-stage events attributed to the home ring.
func TestTaskObsCounters(t *testing.T) {
	resetCounters()
	var merged obs.Snapshot
	var homeEvents []obs.Event
	// TraceSample 1 also records every RPC op the protocol lowers onto,
	// and idle thieves may bounce loot between detector waves; the ring
	// must be deep enough that the early spawn events survive the churn.
	core.RunConfig(core.Config{Ranks: 4, Stats: true, TraceDepth: 8192, TraceSample: 1}, func(rk *core.Rank) {
		rt := New(rk, Config{})
		defer rt.Stop()
		for i := 0; i < 4; i++ {
			AsyncAtFF(rt, (rk.Me()+core.Intrank(i))%rk.N(), tBump, 0)
		}
		if err := rt.Finish(); err != nil {
			t.Errorf("rank %d: Finish: %v", rk.Me(), err)
		}
		rk.Barrier()
		if rk.Me() == 0 {
			merged = rk.World().StatsMerged()
			homeEvents = rk.Stats().Trace
		}
	})
	if len(merged.Tasks) == 0 {
		t.Fatal("merged snapshot has no task counters")
	}
	if got, want := merged.Tasks[obs.TaskSpawned], uint64(16); got != want {
		t.Errorf("spawned = %d, want %d", got, want)
	}
	if got := merged.Tasks[obs.TaskExecuted]; got != 16 {
		t.Errorf("executed = %d, want 16", got)
	}
	if merged.Tasks[obs.TaskDetectRounds] < 2*4 {
		t.Errorf("detector rounds = %d, want >= 8 (two waves × four ranks)", merged.Tasks[obs.TaskDetectRounds])
	}
	stages := map[obs.Stage]int{}
	for _, ev := range homeEvents {
		if ev.Kind == obs.KindTask {
			stages[ev.Stage]++
		}
	}
	for _, st := range []obs.Stage{obs.StageTaskSpawn, obs.StageTaskEnq, obs.StageTaskExec, obs.StageTaskDone} {
		if stages[st] == 0 {
			t.Errorf("home trace ring has no %v events (got %v)", st, stages)
		}
	}
}

// TestTaskWorkersExecuteConcurrently pins that worker personas give a
// rank intra-rank parallelism: with 4 workers, 4 sleeping tasks finish
// in clearly less than 4× the task grain.
func TestTaskWorkersExecuteConcurrently(t *testing.T) {
	resetCounters()
	core.RunConfig(core.Config{Ranks: 1}, func(rk *core.Rank) {
		rt := New(rk, Config{Workers: 4})
		defer rt.Stop()
		const grain = 20 * time.Millisecond
		start := time.Now()
		for i := 0; i < 4; i++ {
			AsyncAtFF(rt, 0, tSleep, int64(grain/time.Microsecond))
		}
		if err := rt.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
		if el := time.Since(start); el > 3*grain {
			t.Errorf("4 tasks × %v on 4 workers took %v, want < %v", grain, el, 3*grain)
		}
	})
}

// TestTaskErrors pins the guard rails: spawning an unregistered function
// and out-of-range targets panic with actionable messages.
func TestTaskErrors(t *testing.T) {
	core.Run(1, func(rk *core.Rank) {
		rt := New(rk, Config{})
		defer rt.Stop()
		mustPanic(t, "unregistered", func() {
			AsyncAt(rt, 0, func(*core.Rank, int) int { return 0 }, 1)
		})
		mustPanic(t, "out-of-range target", func() {
			AsyncAtFF(rt, 5, tBump, 0)
		})
		mustPanic(t, "double New", func() { New(rk, Config{}) })
		if err := rt.Finish(); err != nil {
			t.Errorf("Finish: %v", err)
		}
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}
