package matgen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLaplacianStructure(t *testing.T) {
	g := Grid3D{NX: 3, NY: 3, NZ: 3}
	a := Laplacian3D(g, 0.5)
	if a.N != 27 {
		t.Fatalf("N = %d", a.N)
	}
	// Interior node has 3 forward neighbours; the last node none.
	wantNNZ := 27 + 2*9*3 // diag + 18 edges per axis * 3 axes
	if a.NNZ() != wantNNZ {
		t.Fatalf("NNZ = %d, want %d", a.NNZ(), wantNNZ)
	}
	// Symmetric accessor.
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Errorf("At(0,1) = %v", a.At(0, 1))
	}
	if a.At(0, 0) != 6.5 {
		t.Errorf("diag = %v", a.At(0, 0))
	}
	if a.At(0, 2) != 0 {
		t.Errorf("non-neighbour = %v", a.At(0, 2))
	}
	// Rows ascending within each column.
	for j := 0; j < a.N; j++ {
		rows, _ := a.Col(j)
		for k := 1; k < len(rows); k++ {
			if rows[k] <= rows[k-1] {
				t.Fatalf("col %d rows not ascending", j)
			}
		}
		if len(rows) == 0 || int(rows[0]) != j {
			t.Fatalf("col %d missing diagonal", j)
		}
	}
}

func TestLaplacianDiagonallyDominant(t *testing.T) {
	// Strict diagonal dominance (shift > 0) implies SPD.
	g := Grid3D{NX: 4, NY: 3, NZ: 2}
	a := Laplacian3D(g, 0.5)
	rowSums := make([]float64, a.N)
	diag := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		rows, vals := a.Col(j)
		for k, r := range rows {
			if int(r) == j {
				diag[j] = vals[k]
			} else {
				rowSums[j] += -vals[k]
				rowSums[r] += -vals[k]
			}
		}
	}
	for i := 0; i < a.N; i++ {
		if diag[i] <= rowSums[i] {
			t.Fatalf("row %d not strictly dominant: %v vs %v", i, diag[i], rowSums[i])
		}
	}
}

func TestNestedDissectionIsPermutation(t *testing.T) {
	g := Grid3D{NX: 7, NY: 5, NZ: 6}
	perm := NestedDissection(g, 4)
	seen := make([]bool, g.N())
	for _, p := range perm {
		if p < 0 || int(p) >= g.N() {
			t.Fatalf("perm value %d out of range", p)
		}
		if seen[p] {
			t.Fatalf("perm value %d duplicated", p)
		}
		seen[p] = true
	}
}

func TestPermutePreservesEntries(t *testing.T) {
	g := Grid3D{NX: 3, NY: 3, NZ: 2}
	a := Laplacian3D(g, 0.5)
	perm := NestedDissection(g, 2)
	b := Permute(a, perm)
	if b.NNZ() != a.NNZ() {
		t.Fatalf("NNZ changed: %d -> %d", a.NNZ(), b.NNZ())
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j <= i; j++ {
			if got, want := b.At(int(perm[i]), int(perm[j])), a.At(i, j); got != want {
				t.Fatalf("entry (%d,%d): %v != %v", i, j, got, want)
			}
		}
	}
}

func TestQuickPermuteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Grid3D{NX: 2 + rng.Intn(4), NY: 2 + rng.Intn(4), NZ: 1 + rng.Intn(3)}
		a := Laplacian3D(g, 1)
		// Random permutation.
		perm := make([]int32, g.N())
		for i := range perm {
			perm[i] = int32(i)
		}
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		b := Permute(a, perm)
		// Spot-check a handful of entries.
		for k := 0; k < 20; k++ {
			i, j := rng.Intn(g.N()), rng.Intn(g.N())
			if b.At(int(perm[i]), int(perm[j])) != a.At(i, j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestProxies(t *testing.T) {
	au := AudikwProxy(1)
	if au.A.N != 27000 {
		t.Errorf("audikw proxy N = %d", au.A.N)
	}
	fl := FlanProxy(1)
	if fl.A.N != 24*24*48 {
		t.Errorf("flan proxy N = %d", fl.A.N)
	}
	if au.Name == "" || fl.Name == "" {
		t.Error("proxies must be named")
	}
}

func TestDenseSmall(t *testing.T) {
	g := Grid3D{NX: 2, NY: 1, NZ: 1}
	a := Laplacian3D(g, 0)
	d := a.Dense()
	want := []float64{6, -1, -1, 6}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dense = %v", d)
		}
	}
}
