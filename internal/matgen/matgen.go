// Package matgen generates the sparse symmetric positive-definite inputs
// for the solver experiments. The paper uses audikw_1 and Flan_1565 from
// the Suite Sparse collection — large 3D finite-element stiffness
// matrices. Those files are not redistributable here and exceed a
// single-machine budget, so this package builds scaled-down structural
// proxies: 3D Laplacian/elasticity-stencil matrices on bricks, reordered
// by geometric nested dissection. They share the properties that drive
// the paper's experiments: a deep elimination tree whose separator fronts
// grow toward the root, producing the extend-add communication pattern of
// Fig 5–8 (see DESIGN.md §4, substitution 3).
package matgen

import "fmt"

// SymCSC is a sparse symmetric matrix stored as the lower triangle
// (including the diagonal) in compressed sparse column form.
type SymCSC struct {
	N      int
	ColPtr []int64   // len N+1
	RowInd []int32   // row indices, ascending within a column, >= column
	Val    []float64 // matching values
}

// NNZ returns the stored (lower-triangle) entry count.
func (a *SymCSC) NNZ() int { return len(a.RowInd) }

// Col returns the row indices and values of column j.
func (a *SymCSC) Col(j int) ([]int32, []float64) {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	return a.RowInd[lo:hi], a.Val[lo:hi]
}

// At returns the matrix entry (i, j) (either triangle), or 0.
func (a *SymCSC) At(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	rows, vals := a.Col(j)
	for k, r := range rows {
		if int(r) == i {
			return vals[k]
		}
		if int(r) > i {
			break
		}
	}
	return 0
}

// Dense expands the matrix into a full dense n*n slice (row-major), for
// small-problem verification only.
func (a *SymCSC) Dense() []float64 {
	out := make([]float64, a.N*a.N)
	for j := 0; j < a.N; j++ {
		rows, vals := a.Col(j)
		for k, r := range rows {
			out[int(r)*a.N+j] = vals[k]
			out[j*a.N+int(r)] = vals[k]
		}
	}
	return out
}

// Grid3D describes a brick of nx*ny*nz cells.
type Grid3D struct {
	NX, NY, NZ int
}

// N returns the number of grid points.
func (g Grid3D) N() int { return g.NX * g.NY * g.NZ }

// ID maps grid coordinates to a linear index.
func (g Grid3D) ID(x, y, z int) int { return x + g.NX*(y+g.NY*z) }

// Laplacian3D builds the 7-point Laplacian on the grid with Dirichlet
// boundary: diagonal 6+shift, off-diagonal -1 to each axis neighbour.
// shift > 0 guarantees positive definiteness with margin.
func Laplacian3D(g Grid3D, shift float64) *SymCSC {
	n := g.N()
	a := &SymCSC{N: n, ColPtr: make([]int64, n+1)}
	// Lower triangle: for column j, rows are j and the neighbours with
	// larger linear index (+x, +y, +z).
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				j := g.ID(x, y, z)
				a.RowInd = append(a.RowInd, int32(j))
				a.Val = append(a.Val, 6+shift)
				if x+1 < g.NX {
					a.RowInd = append(a.RowInd, int32(g.ID(x+1, y, z)))
					a.Val = append(a.Val, -1)
				}
				if y+1 < g.NY {
					a.RowInd = append(a.RowInd, int32(g.ID(x, y+1, z)))
					a.Val = append(a.Val, -1)
				}
				if z+1 < g.NZ {
					a.RowInd = append(a.RowInd, int32(g.ID(x, y, z+1)))
					a.Val = append(a.Val, -1)
				}
				a.ColPtr[j+1] = int64(len(a.RowInd))
			}
		}
	}
	// Columns were appended in linear order, but the +y/+z neighbour rows
	// are already ascending (x+1 < y-step < z-step). ColPtr was filled
	// per column; prefix property holds by construction.
	return a
}

// Permute returns P*A*P' in lower-triangle CSC, where perm[old] = new.
func Permute(a *SymCSC, perm []int32) *SymCSC {
	n := a.N
	if len(perm) != n {
		panic(fmt.Sprintf("matgen: perm length %d != n %d", len(perm), n))
	}
	type entry struct {
		row int32
		val float64
	}
	cols := make([][]entry, n)
	for j := 0; j < n; j++ {
		rows, vals := a.Col(j)
		for k, r := range rows {
			ni, nj := perm[r], perm[j]
			if ni < nj {
				ni, nj = nj, ni
			}
			cols[nj] = append(cols[nj], entry{ni, vals[k]})
		}
	}
	out := &SymCSC{N: n, ColPtr: make([]int64, n+1)}
	for j := 0; j < n; j++ {
		es := cols[j]
		// Insertion sort by row: column degrees are small and nearly
		// sorted.
		for i := 1; i < len(es); i++ {
			for k := i; k > 0 && es[k].row < es[k-1].row; k-- {
				es[k], es[k-1] = es[k-1], es[k]
			}
		}
		for _, e := range es {
			out.RowInd = append(out.RowInd, e.row)
			out.Val = append(out.Val, e.val)
		}
		out.ColPtr[j+1] = int64(len(out.RowInd))
	}
	return out
}

// NestedDissection computes a geometric nested-dissection ordering of the
// grid: recursively split the longest axis, numbering the two halves
// first and the separating plane last. leafSize bounds the cell count
// below which a subdomain is numbered consecutively. Returns perm with
// perm[old] = new.
func NestedDissection(g Grid3D, leafSize int) []int32 {
	perm := make([]int32, g.N())
	next := int32(0)
	var dissect func(x0, x1, y0, y1, z0, z1 int)
	number := func(x0, x1, y0, y1, z0, z1 int) {
		for z := z0; z < z1; z++ {
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					perm[g.ID(x, y, z)] = next
					next++
				}
			}
		}
	}
	dissect = func(x0, x1, y0, y1, z0, z1 int) {
		dx, dy, dz := x1-x0, y1-y0, z1-z0
		size := dx * dy * dz
		if size <= leafSize || (dx <= 1 && dy <= 1 && dz <= 1) {
			number(x0, x1, y0, y1, z0, z1)
			return
		}
		switch {
		case dx >= dy && dx >= dz:
			mid := x0 + dx/2
			dissect(x0, mid, y0, y1, z0, z1)
			dissect(mid+1, x1, y0, y1, z0, z1)
			number(mid, mid+1, y0, y1, z0, z1) // separator plane
		case dy >= dx && dy >= dz:
			mid := y0 + dy/2
			dissect(x0, x1, y0, mid, z0, z1)
			dissect(x0, x1, mid+1, y1, z0, z1)
			number(x0, x1, mid, mid+1, z0, z1)
		default:
			mid := z0 + dz/2
			dissect(x0, x1, y0, y1, z0, mid)
			dissect(x0, x1, y0, y1, mid+1, z1)
			number(x0, x1, y0, y1, mid, mid+1)
		}
	}
	dissect(0, g.NX, 0, g.NY, 0, g.NZ)
	if int(next) != g.N() {
		panic("matgen: nested dissection did not number every cell")
	}
	return perm
}

// Problem bundles a generated matrix with its fill-reducing ordering.
type Problem struct {
	Name string
	Grid Grid3D
	A    *SymCSC // already permuted by nested dissection
	Perm []int32
}

// Generate builds a nested-dissection-ordered Laplacian problem.
func Generate(name string, g Grid3D, leafSize int) *Problem {
	a := Laplacian3D(g, 0.5)
	perm := NestedDissection(g, leafSize)
	return &Problem{Name: name, Grid: g, A: Permute(a, perm), Perm: perm}
}

// AudikwProxy is the scaled-down stand-in for audikw_1 (943k dofs, 77M
// nonzeros): a 3D brick with the same qualitative elimination-tree shape.
// scale 1 yields ~27k dofs — sized for a single machine; the DES-driven
// strong-scaling experiment reuses the same generator at larger scale.
func AudikwProxy(scale int) *Problem {
	if scale < 1 {
		scale = 1
	}
	d := 30 * scale
	return Generate(fmt.Sprintf("audikw_1-proxy-%dx%dx%d", d, d, d),
		Grid3D{NX: d, NY: d, NZ: d}, 64)
}

// FlanProxy is the scaled-down stand-in for Flan_1565 (1.56M dofs): a
// taller brick (shell-like aspect ratio).
func FlanProxy(scale int) *Problem {
	if scale < 1 {
		scale = 1
	}
	d := 24 * scale
	return Generate(fmt.Sprintf("Flan_1565-proxy-%dx%dx%d", d, d, 2*d),
		Grid3D{NX: d, NY: d, NZ: 2 * d}, 64)
}
