// Benchmarks regenerating the measured quantity behind every figure of
// the paper's evaluation (one benchmark family per figure; see DESIGN.md
// §3 and EXPERIMENTS.md for the full sweeps produced by the cmd/ tools).
//
// Real-runtime benchmarks run on the zero-delay conduit, so they measure
// the software path of this implementation (injection, progress,
// serialization, matching) rather than the modeled wire; the model
// benchmarks evaluate the calibrated machine models used for the
// at-scale figures.
package upcxx_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"upcxx"
	"upcxx/internal/dht"
	"upcxx/internal/expmodel"
	"upcxx/internal/gasnet"
	"upcxx/internal/matgen"
	"upcxx/internal/mpi"
	"upcxx/internal/sparse"
)

// --- Fig 3a: blocking put latency (software path) ---------------------

func benchRPutLatency(b *testing.B, size int) {
	w := upcxx.NewWorld(upcxx.Config{Ranks: 2, SegmentSize: 64 << 20})
	defer w.Close()
	w.Run(func(rk *upcxx.Rank) {
		var dst upcxx.GPtr[uint8]
		if rk.Me() == 1 {
			dst = upcxx.MustNewArray[uint8](rk, size)
		}
		obj := upcxx.NewDistObject(rk, dst)
		rk.Barrier()
		if rk.Me() == 0 {
			dst = upcxx.FetchDist[upcxx.GPtr[uint8]](rk, obj.ID(), 1).Wait()
			src := make([]uint8, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				upcxx.RPut(rk, src, dst).Wait()
			}
			b.StopTimer()
			b.SetBytes(int64(size))
		}
		rk.Barrier()
	})
}

func BenchmarkFig3aRPut8B(b *testing.B)   { benchRPutLatency(b, 8) }
func BenchmarkFig3aRPut1KB(b *testing.B)  { benchRPutLatency(b, 1<<10) }
func BenchmarkFig3aRPut64KB(b *testing.B) { benchRPutLatency(b, 64<<10) }

func benchMPIPutFlush(b *testing.B, size int) {
	w := mpi.NewWorld(mpi.Config{Ranks: 2, SegmentSize: 64 << 20})
	defer w.Close()
	w.Run(func(p *mpi.Proc) {
		win := mpi.CreateWin(p, size)
		p.Barrier()
		if p.Rank() == 0 {
			src := make([]byte, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				win.Put(src, 1, 0)
				win.Flush(1)
			}
			b.StopTimer()
			b.SetBytes(int64(size))
		}
		p.Barrier()
	})
}

func BenchmarkFig3aMPIPut8B(b *testing.B)  { benchMPIPutFlush(b, 8) }
func BenchmarkFig3aMPIPut1KB(b *testing.B) { benchMPIPutFlush(b, 1<<10) }

// --- Fig 3b: flood bandwidth (software path) ---------------------------

func BenchmarkFig3bRPutFlood4KB(b *testing.B) {
	const size = 4 << 10
	w := upcxx.NewWorld(upcxx.Config{Ranks: 2, SegmentSize: 64 << 20})
	defer w.Close()
	w.Run(func(rk *upcxx.Rank) {
		var dst upcxx.GPtr[uint8]
		if rk.Me() == 1 {
			dst = upcxx.MustNewArray[uint8](rk, size)
		}
		obj := upcxx.NewDistObject(rk, dst)
		rk.Barrier()
		if rk.Me() == 0 {
			dst = upcxx.FetchDist[upcxx.GPtr[uint8]](rk, obj.ID(), 1).Wait()
			src := make([]uint8, size)
			b.ResetTimer()
			p := upcxx.NewPromise[upcxx.Unit](rk)
			for i := 0; i < b.N; i++ {
				upcxx.RPutPromise(rk, src, dst, p)
				if i%10 == 0 {
					rk.Progress()
				}
			}
			p.Finalize().Wait()
			b.StopTimer()
			b.SetBytes(size)
		}
		rk.Barrier()
	})
}

// --- Fig 3 model evaluation --------------------------------------------

func BenchmarkFig3Model(b *testing.B) {
	m := expmodel.Haswell()
	for i := 0; i < b.N; i++ {
		for _, n := range expmodel.Fig3Sizes() {
			_ = m.UPCXXPutLatency(n)
			_ = m.MPIPutLatency(n)
			_ = m.UPCXXFloodBW(n)
			_ = m.MPIFloodBW(n)
		}
	}
}

// --- Fig 4: DHT insertion ------------------------------------------------

func benchDHTInsert(b *testing.B, mode dht.Mode, valSize int) {
	w := upcxx.NewWorld(upcxx.Config{Ranks: 4, SegmentSize: 256 << 20})
	defer w.Close()
	var rate float64
	w.Run(func(rk *upcxx.Rank) {
		d := dht.New(rk, mode)
		rk.Barrier()
		if rk.Me() == 0 {
			val := make([]byte, valSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Insert(uint64(i)*2654435761, val).Wait()
			}
			b.StopTimer()
			rate = float64(b.N)
		}
		rk.Barrier()
	})
	_ = rate
	b.SetBytes(int64(valSize))
}

func BenchmarkFig4InsertRPCOnly64B(b *testing.B)     { benchDHTInsert(b, dht.RPCOnly, 64) }
func BenchmarkFig4InsertLandingZone4KB(b *testing.B) { benchDHTInsert(b, dht.LandingZone, 4<<10) }

func BenchmarkFig4SerialBaseline(b *testing.B) {
	res := dht.RunSerialBench(dht.BenchConfig{ElemSize: 4 << 10, VolumePerRank: (4 << 10) * b.N, Seed: 1})
	b.ReportMetric(res.InsertsPerSec(), "inserts/s")
}

func BenchmarkFig4Model1024Procs(b *testing.B) {
	m := expmodel.Haswell()
	for i := 0; i < b.N; i++ {
		expmodel.SimulateDHT(expmodel.DHTConfig{
			M: m, P: 1024, ElemSize: 2048, InsertsPerRank: 32, Seed: uint64(i),
		})
	}
}

// --- Fig 8: extend-add ----------------------------------------------------

var fig8Tree *sparse.FrontTree

func fig8BenchPlan(p int) *sparse.EAddPlan {
	if fig8Tree == nil {
		prob := matgen.Generate("bench", matgen.Grid3D{NX: 10, NY: 10, NZ: 10}, 16)
		fig8Tree = sparse.Amalgamate(sparse.BuildFrontTree(prob.A, 0), 0.3)
	}
	return sparse.NewEAddPlan(fig8Tree, p, 8)
}

func BenchmarkFig8EAddUPCXX(b *testing.B) {
	plan := fig8BenchPlan(4)
	for i := 0; i < b.N; i++ {
		w := upcxx.NewWorld(upcxx.Config{Ranks: 4, SegmentSize: 64 << 20})
		w.Run(func(rk *upcxx.Rank) {
			_, _ = sparse.EAddUPCXX(rk, plan)
		})
		w.Close()
	}
	b.ReportMetric(float64(plan.TotalEntries), "entries")
}

func BenchmarkFig8EAddMPIAlltoallv(b *testing.B) {
	plan := fig8BenchPlan(4)
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(mpi.Config{Ranks: 4, SegmentSize: 64 << 20})
		w.Run(func(p *mpi.Proc) {
			_, _ = sparse.EAddMPIAlltoallv(p, plan)
		})
		w.Close()
	}
}

func BenchmarkFig8EAddMPIP2P(b *testing.B) {
	plan := fig8BenchPlan(4)
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(mpi.Config{Ranks: 4, SegmentSize: 64 << 20})
		w.Run(func(p *mpi.Proc) {
			_, _ = sparse.EAddMPIP2P(p, plan)
		})
		w.Close()
	}
}

func BenchmarkFig8Model256Procs(b *testing.B) {
	plan := fig8BenchPlan(256)
	m := expmodel.Haswell()
	for i := 0; i < b.N; i++ {
		_ = expmodel.SimulateEAddUPCXX(m, plan)
		_ = expmodel.SimulateEAddA2A(m, plan)
		_ = expmodel.SimulateEAddP2P(m, plan)
	}
}

// --- Fig 9: mini-symPACK ----------------------------------------------------

func benchChol(b *testing.B, variant string) {
	prob := matgen.Generate("cholbench", matgen.Grid3D{NX: 6, NY: 6, NZ: 6}, 8)
	tree := sparse.Amalgamate(sparse.BuildFrontTree(prob.A, 0), 0.3)
	plan := sparse.NewCholPlan(prob.A, tree, 4)
	for i := 0; i < b.N; i++ {
		w := upcxx.NewWorld(upcxx.Config{Ranks: 4, SegmentSize: 128 << 20})
		w.Run(func(rk *upcxx.Rank) {
			if variant == "v1" {
				_ = sparse.CholV1(rk, plan)
			} else {
				_ = sparse.CholV01(rk, plan)
			}
		})
		w.Close()
	}
}

func BenchmarkFig9CholV1(b *testing.B)  { benchChol(b, "v1") }
func BenchmarkFig9CholV01(b *testing.B) { benchChol(b, "v01") }

func BenchmarkFig9Model(b *testing.B) {
	prob := matgen.Generate("f9m", matgen.Grid3D{NX: 8, NY: 8, NZ: 8}, 16)
	tree := sparse.Amalgamate(sparse.BuildFrontTree(prob.A, 0), 0.3)
	m := expmodel.Haswell()
	for i := 0; i < b.N; i++ {
		_ = expmodel.SimulateSymPACK(m, tree, 64, expmodel.V1)
		_ = expmodel.SimulateSymPACK(m, tree, 64, expmodel.V01)
	}
}

// --- runtime primitives (supporting microbenchmarks) ---------------------

func BenchmarkRPCRoundTrip(b *testing.B) {
	w := upcxx.NewWorld(upcxx.Config{Ranks: 2})
	defer w.Close()
	w.Run(func(rk *upcxx.Rank) {
		if rk.Me() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				upcxx.RPC(rk, 1, func(trk *upcxx.Rank, x int64) int64 { return x + 1 }, int64(i)).Wait()
			}
			b.StopTimer()
		}
		rk.Barrier()
	})
}

func BenchmarkRPCFFThroughput(b *testing.B) {
	w := upcxx.NewWorld(upcxx.Config{Ranks: 2})
	defer w.Close()
	w.Run(func(rk *upcxx.Rank) {
		if rk.Me() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				upcxx.RPCFF(rk, 1, func(trk *upcxx.Rank, x int64) {}, int64(i))
			}
			b.StopTimer()
		}
		rk.Barrier()
	})
}

func BenchmarkAtomicFetchAdd(b *testing.B) {
	w := upcxx.NewWorld(upcxx.Config{Ranks: 2})
	defer w.Close()
	w.Run(func(rk *upcxx.Rank) {
		var cell upcxx.GPtr[uint64]
		if rk.Me() == 1 {
			cell = upcxx.MustNewArray[uint64](rk, 1)
		}
		obj := upcxx.NewDistObject(rk, cell)
		rk.Barrier()
		if rk.Me() == 0 {
			cell = upcxx.FetchDist[upcxx.GPtr[uint64]](rk, obj.ID(), 1).Wait()
			ad := upcxx.NewAtomicU64(rk)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ad.FetchAdd(cell, 1).Wait()
			}
			b.StopTimer()
		}
		rk.Barrier()
	})
}

func BenchmarkBarrier8Ranks(b *testing.B) {
	w := upcxx.NewWorld(upcxx.Config{Ranks: 8})
	defer w.Close()
	w.Run(func(rk *upcxx.Rank) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rk.Barrier()
		}
	})
}

func BenchmarkViewSerializationRPC(b *testing.B) {
	for _, n := range []int{128, 4096} {
		b.Run(fmt.Sprintf("floats=%d", n), func(b *testing.B) {
			w := upcxx.NewWorld(upcxx.Config{Ranks: 2})
			defer w.Close()
			w.Run(func(rk *upcxx.Rank) {
				if rk.Me() == 0 {
					data := make([]float64, n)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						upcxx.RPC(rk, 1, func(trk *upcxx.Rank, v upcxx.View[float64]) int {
							return v.Len()
						}, upcxx.MakeView(data)).Wait()
					}
					b.StopTimer()
					b.SetBytes(int64(8 * n))
				}
				rk.Barrier()
			})
		})
	}
}

// --- personas: self-progress vs dedicated progress thread -----------------
//
// Four user goroutines per rank flood the peer with RPCs (or RPuts),
// each waiting on its own persona's completions. Incoming RPCs execute
// on the rank's master persona in self-progress mode — so the master
// goroutine polls Progress while its users flood, the classic
// main-thread-as-poller structure — and on the dedicated progress
// persona in progress-thread mode, where the master goroutine idles
// and the progress goroutine serves. ns/op is per operation completed
// at rank 0.

const benchPersonaUsers = 4

func benchPersonaRPCFlood(b *testing.B, progressThread bool) {
	w := upcxx.NewWorld(upcxx.Config{Ranks: 2, ProgressThread: progressThread})
	defer w.Close()
	w.Run(func(rk *upcxx.Rank) {
		peer := (rk.Me() + 1) % rk.N()
		rk.Barrier()
		if rk.Me() == 0 {
			b.ResetTimer()
		}
		var done atomic.Bool
		var wg sync.WaitGroup
		per := (b.N + benchPersonaUsers - 1) / benchPersonaUsers
		for u := 0; u < benchPersonaUsers; u++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer upcxx.DetachDefaultPersonas()
				for i := 0; i < per; i++ {
					upcxx.RPC(rk, peer, func(trk *upcxx.Rank, x int) int { return x + 1 }, i).Wait()
				}
			}()
		}
		go func() { wg.Wait(); done.Store(true) }()
		for !done.Load() {
			if progressThread {
				runtime.Gosched() // master idles; the progress thread serves
			} else {
				rk.Progress() // master polls; incoming RPCs run here
			}
		}
		rk.Barrier()
		if rk.Me() == 0 {
			b.StopTimer()
		}
	})
}

func BenchmarkPersonaRPCFloodSelfProgress(b *testing.B)   { benchPersonaRPCFlood(b, false) }
func BenchmarkPersonaRPCFloodProgressThread(b *testing.B) { benchPersonaRPCFlood(b, true) }

func benchPersonaRPutFlood(b *testing.B, progressThread bool) {
	w := upcxx.NewWorld(upcxx.Config{Ranks: 2, ProgressThread: progressThread, SegmentSize: 16 << 20})
	defer w.Close()
	w.Run(func(rk *upcxx.Rank) {
		slab := upcxx.MustNewArray[uint64](rk, benchPersonaUsers)
		obj := upcxx.NewDistObject(rk, slab)
		rk.Barrier()
		peer := (rk.Me() + 1) % rk.N()
		remote := upcxx.FetchDist[upcxx.GPtr[uint64]](rk, obj.ID(), peer).Wait()
		rk.Barrier()
		if rk.Me() == 0 {
			b.ResetTimer()
		}
		var wg sync.WaitGroup
		per := (b.N + benchPersonaUsers - 1) / benchPersonaUsers
		for u := 0; u < benchPersonaUsers; u++ {
			u := u
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer upcxx.DetachDefaultPersonas()
				src := []uint64{0}
				for i := 0; i < per; i++ {
					src[0] = uint64(i)
					upcxx.RPut(rk, src, remote.Add(u)).Wait()
				}
			}()
		}
		wg.Wait()
		rk.Barrier()
		if rk.Me() == 0 {
			b.StopTimer()
			b.SetBytes(8)
		}
	})
}

func BenchmarkPersonaRPutFloodSelfProgress(b *testing.B)   { benchPersonaRPutFlood(b, false) }
func BenchmarkPersonaRPutFloodProgressThread(b *testing.B) { benchPersonaRPutFlood(b, true) }

// --- Signaling put vs put+RPC notification -----------------------------
//
// The halo-exchange pattern: move a block and make the receiver act on
// it. The signaling put delivers data and notification in ONE one-way
// message (remote_cx::as_rpc piggybacks on the transfer); the
// pre-completion-object idiom needs the put's full round trip before the
// initiator may send the (second) notification message. The benchmark
// ping-pongs a notification between two ranks and reports ns per hop; on
// the zero-delay conduit it measures the software-path saving (one
// conduit op instead of put+ack+AM), while cmd/rma-bench -mode signal
// measures the modeled-wire round trip saved (EXPERIMENTS.md §7).

func signalBump(trk *upcxx.Rank, counter upcxx.GPtr[uint64]) {
	upcxx.Local(trk, counter, 1)[0]++
}

func benchNotifyPingPong(b *testing.B, signaling bool) {
	const size = 1 << 10
	w := upcxx.NewWorld(upcxx.Config{Ranks: 2, SegmentSize: 16 << 20})
	defer w.Close()
	w.Run(func(rk *upcxx.Rank) {
		type slots struct {
			Buf upcxx.GPtr[uint64]
			Ctr upcxx.GPtr[uint64]
		}
		mine := slots{
			Buf: upcxx.MustNewArray[uint64](rk, size/8),
			Ctr: upcxx.MustNewArray[uint64](rk, 1),
		}
		obj := upcxx.NewDistObject(rk, mine)
		rk.Barrier()
		peer := (rk.Me() + 1) % 2
		theirs := upcxx.FetchDist[slots](rk, obj.ID(), peer).Wait()
		ctr := upcxx.Local(rk, mine.Ctr, 1)
		src := make([]uint64, size/8)
		rk.Barrier()
		if rk.Me() == 0 {
			b.ResetTimer()
		}
		hop := func() {
			if signaling {
				// Data + notification in one message; nothing to wait on
				// locally — the next event is the peer's reply signal.
				upcxx.RPutSignal(rk, src, theirs.Buf, signalBump, theirs.Ctr)
				return
			}
			// Old idiom: wait out the put's round trip, then notify.
			upcxx.RPut(rk, src, theirs.Buf).Wait()
			upcxx.RPCFF(rk, peer, signalBump, theirs.Ctr)
		}
		for i := 0; i < b.N; i++ {
			if rk.Me() == 0 {
				hop()
			}
			for ctr[0] < uint64(i+1) {
				// Yield on idle progress so the peer rank's goroutine can
				// run on few-core hosts.
				if rk.Progress() == 0 {
					runtime.Gosched()
				}
			}
			if rk.Me() == 1 {
				hop()
			}
		}
		rk.Barrier()
		if rk.Me() == 0 {
			b.StopTimer()
			b.SetBytes(size)
		}
	})
}

func BenchmarkSignalingPutPingPong(b *testing.B) { benchNotifyPingPong(b, true) }
func BenchmarkPutPlusRPCPingPong(b *testing.B)   { benchNotifyPingPong(b, false) }

// BenchmarkDHTInsertSignalingPut completes the Fig 4 family with the
// signaling-put insert strategy (landing zone published at remote
// completion).
func BenchmarkDHTInsertSignalingPut4KB(b *testing.B) {
	benchDHTInsert(b, dht.SignalingPut, 4<<10)
}

// --- Memory kinds: DMA-engine vs network bandwidth ---------------------

// benchKindsCopy measures blocking CopyGG bandwidth for one kind pair on
// the real-time Aries + PCIe3 models. The reported MB/s must follow the
// engine that bounds the path: ~40 GB/s for same-node host memmoves,
// ~11.8 GB/s when a PCIe h2d/d2h hop bounds it, ~125 GB/s for on-device
// d2d, and the serial sum of wire + DMA hops for cross-rank device pairs
// — not the network curve alone.
func benchKindsCopy(b *testing.B, size int, srcDev, dstDev, cross bool) {
	w := upcxx.NewWorld(upcxx.Config{
		Ranks: 2, RanksPerNode: 1, SegmentSize: 16 << 20,
		Model: gasnet.Aries(), DMA: gasnet.PCIe3(),
	})
	defer w.Close()
	w.Run(func(rk *upcxx.Rank) {
		da := upcxx.NewDeviceAllocator(rk, 16<<20)
		alloc := func(dev bool) upcxx.GPtr[uint8] {
			if dev {
				return upcxx.MustNewDeviceArray[uint8](da, size)
			}
			return upcxx.MustNewArray[uint8](rk, size)
		}
		src := alloc(srcDev)
		dst := alloc(dstDev)
		dstObj := upcxx.NewDistObject(rk, dst)
		rk.Barrier()
		if rk.Me() == 0 {
			d := dst
			if cross {
				d = upcxx.FetchDist[upcxx.GPtr[uint8]](rk, dstObj.ID(), 1).Wait()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				upcxx.CopyGG(rk, src, d, size).Wait()
			}
			b.StopTimer()
			b.SetBytes(int64(size))
		}
		rk.Barrier()
	})
}

const kindsBenchSize = 1 << 20

func BenchmarkKindsCopyH2HSame1MB(b *testing.B) {
	benchKindsCopy(b, kindsBenchSize, false, false, false)
}
func BenchmarkKindsCopyH2DSame1MB(b *testing.B) {
	benchKindsCopy(b, kindsBenchSize, false, true, false)
}
func BenchmarkKindsCopyD2HSame1MB(b *testing.B) {
	benchKindsCopy(b, kindsBenchSize, true, false, false)
}
func BenchmarkKindsCopyD2DSame1MB(b *testing.B) { benchKindsCopy(b, kindsBenchSize, true, true, false) }
func BenchmarkKindsCopyH2HCross1MB(b *testing.B) {
	benchKindsCopy(b, kindsBenchSize, false, false, true)
}
func BenchmarkKindsCopyH2DCross1MB(b *testing.B) {
	benchKindsCopy(b, kindsBenchSize, false, true, true)
}
func BenchmarkKindsCopyD2DCross1MB(b *testing.B) { benchKindsCopy(b, kindsBenchSize, true, true, true) }
