// Package upcxx is a Go implementation of the UPC++ v1.0 programming
// model from "UPC++: A High-Performance Communication Framework for
// Asynchronous Computation" (Bachan et al., IPDPS 2019): Partitioned
// Global Address Space (PGAS) programming with global pointers, one-sided
// Remote Memory Access, Remote Procedure Calls, future/promise
// asynchrony, teams with non-blocking collectives, distributed objects
// and NIC-offloaded remote atomics.
//
// A job is a fixed set of SPMD ranks running in one process over a
// simulated GASNet-EX-style conduit (see internal/gasnet): each rank owns
// a shared segment addressed globally by (rank, offset), and all
// inter-rank communication crosses the conduit as bytes. The three design
// principles of the paper hold throughout: communication is asynchronous
// by default, data motion is syntactically explicit (global pointers
// cannot be dereferenced), and no feature requires non-scalable state.
//
// Quick start:
//
//	upcxx.Run(4, func(rk *upcxx.Rank) {
//		ptr := upcxx.MustNewArray[float64](rk, 8) // in my shared segment
//		obj := upcxx.NewDistObject(rk, ptr)       // publish it
//		rk.Barrier()
//		remote := upcxx.FetchDist[upcxx.GPtr[float64]](rk, obj.ID(), (rk.Me()+1)%rk.N()).Wait()
//		upcxx.RPut(rk, []float64{1, 2, 3}, remote).Wait() // one-sided RMA
//		sum := upcxx.RPC(rk, remote.Where(), func(trk *upcxx.Rank, n int) float64 {
//			s := 0.0
//			for _, v := range upcxx.Local(trk, ptr, n) {
//				s += v
//			}
//			return s
//		}, 3).Wait() // remote procedure call
//		_ = sum
//		rk.Barrier()
//	})
//
// This package is a facade: the implementation lives in internal/core
// (runtime), internal/gasnet (conduit) and internal/serial (wire
// formats). Application motifs from the paper are under internal/dht and
// internal/sparse; every figure of the paper's evaluation can be
// regenerated with the tools under cmd/ (see DESIGN.md and
// EXPERIMENTS.md).
package upcxx

import (
	core "upcxx/internal/core"
	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
	"upcxx/internal/serial"
	"upcxx/internal/task"
)

// Scalar constrains element types that may cross the network as raw
// memory (fixed-size kinds with no pointers).
type Scalar = serial.Scalar

// Core runtime types.
type (
	// Rank is one process's runtime handle; see core.Rank.
	Rank = core.Rank
	// World is one UPC++ job; see core.World.
	World = core.World
	// Config configures a job (rank count, segment size, timing model).
	Config = core.Config
	// Intrank identifies a process (upcxx::intrank_t).
	Intrank = core.Intrank
	// Unit is the empty future payload (upcxx::future<>).
	Unit = core.Unit
	// Team is an ordered subset of ranks (upcxx::team).
	Team = core.Team
	// DistID identifies a distributed object job-wide.
	DistID = core.DistID
	// Persona is a per-thread execution context owning futures and
	// receiving LPCs (upcxx::persona).
	Persona = core.Persona
	// PersonaScope pins a persona to a goroutine (upcxx::persona_scope).
	PersonaScope = core.PersonaScope
	// AtomicU64 is the uint64 remote-atomics domain.
	AtomicU64 = core.AtomicU64
	// AtomicI64 is the int64 remote-atomics domain.
	AtomicI64 = core.AtomicI64
	// MemKind classifies the memory a global pointer references
	// (upcxx::memory_kind): host or device.
	MemKind = core.MemKind
	// DeviceAllocator manages one device memory segment on a rank
	// (upcxx::device_allocator).
	DeviceAllocator = core.DeviceAllocator
	// Cx is a completion descriptor: one of the three completion events
	// of a communication operation (operation, source, remote) paired
	// with a delivery method (future, promise, LPC, or target-side RPC).
	Cx = core.Cx
	// CxEvent identifies a completion event.
	CxEvent = core.CxEvent
	// CxFutures carries the futures requested with …AsFuture descriptors.
	CxFutures = core.CxFutures
)

// Memory kinds (paper §VI): device-kind pointers route RMA through the
// simulated device DMA engine instead of the NIC alone.
const (
	KindHost   = core.KindHost
	KindDevice = core.KindDevice
)

// Generic runtime types (aliases; Go 1.24).
type (
	// Future is the consumer side of an asynchronous operation.
	Future[T any] = core.Future[T]
	// Promise is the producer side: a fulfillable dependency counter.
	Promise[T any] = core.Promise[T]
	// GPtr is a global pointer to T in some rank's shared segment.
	GPtr[T Scalar] = core.GPtr[T]
	// View is a serializable window over a slice (upcxx::view).
	View[T Scalar] = core.View[T]
	// DistObject is one rank's representative of a distributed object.
	DistObject[T any] = core.DistObject[T]
	// Pair carries the two values of WhenAll2.
	Pair[A, B any] = core.Pair[A, B]
	// AnyFuture is the type-erased future accepted by WhenAll.
	AnyFuture = core.AnyFuture
	// PutPair and GetPair name vector-RMA fragments.
	PutPair[T Scalar] = core.PutPair[T]
	GetPair[T Scalar] = core.GetPair[T]
)

// Job control.
var (
	// Run executes fn on a fresh n-rank zero-delay world.
	Run = core.Run
	// RunConfig is Run with an explicit configuration.
	RunConfig = core.RunConfig
	// NewWorld creates a job for repeated epochs; Close it when done.
	NewWorld = core.NewWorld
)

// Real transport conduit (multi-process ranks; see internal/gasnet's
// tcp/shm backends and internal/core/proc.go's bootstrap).
type (
	// ConduitInfo identifies the active real backend: peer addresses,
	// shm segment size, and wire counters (World.Network().ConduitInfo).
	ConduitInfo = gasnet.ConduitInfo
)

var (
	// ErrPeerLost is wrapped by every error World.Failed reports after a
	// sibling rank process dies mid-job.
	ErrPeerLost = gasnet.ErrPeerLost
	// DistActive reports whether UPCXX_CONDUIT selects a real
	// multi-process backend for this process.
	DistActive = core.DistActive
	// DistBackend names the selected real backend ("tcp", "shm"), or ""
	// for the in-process conduit.
	DistBackend = core.DistBackend
	// DistNProc returns the rank-process count of the active
	// multi-process job, or 0 for in-process worlds (and in the parent
	// launcher before UPCXX_NPROC is fixed).
	DistNProc = core.DistNProc
	// LaunchWorld spawns a binary as an n-rank SPMD job over a real
	// backend and waits (the upcxx-run entry point).
	LaunchWorld = core.LaunchWorld
	// SpawnSelf re-executes this binary as an n-rank job (what RunConfig
	// does automatically when UPCXX_CONDUIT is set).
	SpawnSelf = core.SpawnSelf
	// NewWorldDist builds this process's single-rank view of a
	// multi-process job from the bootstrap environment.
	NewWorldDist = core.NewWorldDist
)

// RegisterRPC registers a round-trip RPC body for cross-process dispatch
// (real transport backends ship function *names*, not code pointers).
// Register package-level, non-generic functions from init().
func RegisterRPC[A, R any](fn func(*Rank, A) R) string { return core.RegisterRPC(fn) }

// RegisterRPC2 registers a two-argument round-trip RPC body for
// cross-process dispatch.
func RegisterRPC2[A, B, R any](fn func(*Rank, A, B) R) string { return core.RegisterRPC2(fn) }

// RegisterRPCFF registers a fire-and-forget RPC body (also the
// RemoteCxAsRPC form) for cross-process dispatch.
func RegisterRPCFF[A any](fn func(*Rank, A)) string { return core.RegisterRPCFF(fn) }

// RegisterRPCFut registers a future-returning (deferred-reply) RPC body
// for cross-process dispatch.
func RegisterRPCFut[A, R any](fn func(*Rank, A) Future[R]) string { return core.RegisterRPCFut(fn) }

// Device DMA timing models for Config.DMA (see internal/gasnet). A
// model's GPUDirect capability decides the cross-rank device datapath:
// GDR-capable engines let the NIC address device memory directly, so
// device payloads skip the staging DMA hops and the host bounce buffer.
type (
	// DMAModel prices the device copy engine's descriptors.
	DMAModel = gasnet.DMAModel
	// NoDelayDMA is the zero-cost engine; set GDR to flip the
	// capability bit without adding timing.
	NoDelayDMA = gasnet.NoDelayDMA
	// PCIeDMA is the calibrated real-time engine.
	PCIeDMA = gasnet.PCIeDMA
)

var (
	// PCIe3 returns the calibrated PCIe gen3 engine (staged copies).
	PCIe3 = gasnet.PCIe3
	// PCIe3GDR returns PCIe3 with GPUDirect RDMA enabled.
	PCIe3GDR = gasnet.PCIe3GDR
)

// Runtime introspection (Config.Stats; see internal/obs).
type (
	// StatsSnapshot is a point-in-time copy of one rank's counters, as
	// returned by World.StatsMerged (job-wide merge).
	StatsSnapshot = obs.Snapshot
	// DMAKind classifies DMA descriptors in StatsSnapshot.DMA.
	DMAKind = obs.DMAKind
)

// DMA descriptor kinds: cross-rank device-to-device traffic splits by
// datapath — direct (GPUDirect, NIC↔device) vs bounced (staged through
// host bounce buffers).
const (
	DMAH2D        = obs.DMAH2D
	DMAD2H        = obs.DMAD2H
	DMAD2DDirect  = obs.DMAD2DDirect
	DMAD2DBounced = obs.DMAD2DBounced
)

// Personas and cross-thread progress (paper §II; spec §10). A rank's
// communication may be driven by many goroutines: each goroutine's
// current persona owns the futures it creates and receives their
// completions, and Config.ProgressThread adds a dedicated per-rank
// progress goroutine that executes incoming RPCs while user goroutines
// compute. Rank.CurrentPersona, Rank.MasterPersona and
// Rank.ProgressPersona are available on the Rank alias directly.

// NewPersona creates an unheld persona on rk; activate it with
// AcquirePersona.
func NewPersona(rk *Rank, name string) *Persona { return core.NewPersona(rk, name) }

// AcquirePersona makes p current on the calling goroutine until the
// returned scope is released (scopes nest LIFO).
func AcquirePersona(p *Persona) *PersonaScope { return core.AcquirePersona(p) }

// LPCTo delivers fn to persona p from any goroutine; it runs during a
// user-level progress call of the goroutine holding p, FIFO in enqueue
// order.
func LPCTo(p *Persona, fn func()) { core.LPCTo(p, fn) }

// DetachDefaultPersonas discards the calling goroutine's automatically
// bound default personas; defer it in short-lived worker goroutines
// (after their operations complete) to keep the persona registry from
// growing with every goroutine ever used for communication.
func DetachDefaultPersonas() { core.DetachDefaultPersonas() }

// Memory management (upcxx::new_, new_array, delete_, global/local
// conversion).

// New allocates one zero-initialized T in this rank's shared segment.
func New[T Scalar](rk *Rank) (GPtr[T], error) { return core.New[T](rk) }

// NewArray allocates n contiguous zero-initialized Ts in this rank's
// shared segment.
func NewArray[T Scalar](rk *Rank, n int) (GPtr[T], error) { return core.NewArray[T](rk, n) }

// MustNewArray is NewArray, panicking on segment exhaustion.
func MustNewArray[T Scalar](rk *Rank, n int) GPtr[T] { return core.MustNewArray[T](rk, n) }

// Delete frees an allocation owned by this rank.
func Delete[T Scalar](rk *Rank, p GPtr[T]) error { return core.Delete(rk, p) }

// NilGPtr returns the null global pointer.
func NilGPtr[T Scalar]() GPtr[T] { return core.NilGPtr[T]() }

// Local converts a host-kind global pointer with local affinity into a
// directly usable slice (device memory is never host-addressable).
func Local[T Scalar](rk *Rank, p GPtr[T], n int) []T { return core.Local(rk, p, n) }

// ToGlobal converts a slice obtained from Local back to a global pointer.
func ToGlobal[T Scalar](rk *Rank, s []T) GPtr[T] { return core.ToGlobal(rk, s) }

// Memory kinds (upcxx::device_allocator / global_ptr<T, memory_kind>).
// A device allocator opens a device segment on a rank; pointers into it
// carry KindDevice, and every RMA entry point (RPut/RGet/CopyGG and the
// V/Indexed/Strided2D variants) routes their transfers through the
// simulated device DMA engine, whose bandwidth/latency model is distinct
// from the network's (Config.DMA).

// NewDeviceAllocator opens a device segment of size bytes on this rank.
func NewDeviceAllocator(rk *Rank, size int) *DeviceAllocator {
	return core.NewDeviceAllocator(rk, size)
}

// CloseDeviceAllocator tears the device segment down. Outstanding GPtrs
// into it are poisoned: later use faults with a clear use-after-close
// error.
func CloseDeviceAllocator(da *DeviceAllocator) { core.CloseDeviceAllocator(da) }

// NewDeviceArray allocates n zero-initialized Ts in the device segment.
func NewDeviceArray[T Scalar](da *DeviceAllocator, n int) (GPtr[T], error) {
	return core.NewDeviceArray[T](da, n)
}

// MustNewDeviceArray is NewDeviceArray, panicking on exhaustion.
func MustNewDeviceArray[T Scalar](da *DeviceAllocator, n int) GPtr[T] {
	return core.MustNewDeviceArray[T](da, n)
}

// RunKernel executes kernel over n device elements at p — the simulation's
// stand-in for a device kernel launch, and the only sanctioned way to
// compute on device memory.
func RunKernel[T Scalar](da *DeviceAllocator, p GPtr[T], n int, kernel func([]T)) {
	core.RunKernel(da, p, n, kernel)
}

// Completion descriptors (paper §III; spec §7). Every communication
// operation — RMA, collectives, and RPC — exposes operation, source, and
// remote completion events; the …With entry points below accept any
// combination of descriptors, and the requested futures come back in
// CxFutures. RemoteCxAsRPC is the signaling put: the function executes at
// the destination rank strictly after the transferred data is visible
// there (for device destinations, after the final DMA hop), piggybacked
// on the transfer with no extra round trip.
//
// Deliveries are persona-addressed: the Cx.On combinator (and the …On
// constructors below) redirect any future/promise/LPC to a *named*
// persona instead of the initiator's, and address a RemoteCxAsRPC body to
// a named persona of the target rank — so in progress-thread mode a
// signaling-put notification can land directly on the worker persona it
// concerns.

// OpCxAsFuture requests operation completion as a future (the default).
func OpCxAsFuture() Cx { return core.OpCxAsFuture() }

// OpCxAsPromise registers operation completion on p.
func OpCxAsPromise(p *Promise[Unit]) Cx { return core.OpCxAsPromise(p) }

// OpCxAsLPC delivers operation completion by running fn on persona pers.
func OpCxAsLPC(pers *Persona, fn func()) Cx { return core.OpCxAsLPC(pers, fn) }

// OpCxAsFutureOn requests operation completion as a future owned by the
// named persona p — only the goroutine holding p may consume it.
func OpCxAsFutureOn(p *Persona) Cx { return core.OpCxAsFutureOn(p) }

// SourceCxAsFutureOn requests source completion as a future owned by the
// named persona p (puts and RPC argument buffers only).
func SourceCxAsFutureOn(p *Persona) Cx { return core.SourceCxAsFutureOn(p) }

// RemoteCxAsFutureOn requests remote completion as an initiator-side
// future owned by the named persona p.
func RemoteCxAsFutureOn(p *Persona) Cx { return core.RemoteCxAsFutureOn(p) }

// SourceCxAsFuture requests source-buffer completion as a future
// (puts only — copies read their global-pointer source lazily).
func SourceCxAsFuture() Cx { return core.SourceCxAsFuture() }

// SourceCxAsPromise registers source completion on p (puts only).
func SourceCxAsPromise(p *Promise[Unit]) Cx { return core.SourceCxAsPromise(p) }

// SourceCxAsLPC delivers source completion by running fn on persona
// pers (puts only).
func SourceCxAsLPC(pers *Persona, fn func()) Cx { return core.SourceCxAsLPC(pers, fn) }

// RemoteCxAsFuture requests remote completion as an initiator-side future.
func RemoteCxAsFuture() Cx { return core.RemoteCxAsFuture() }

// RemoteCxAsPromise registers remote completion on p.
func RemoteCxAsPromise(p *Promise[Unit]) Cx { return core.RemoteCxAsPromise(p) }

// RemoteCxAsLPC delivers remote completion by running fn on persona pers.
func RemoteCxAsLPC(pers *Persona, fn func()) Cx { return core.RemoteCxAsLPC(pers, fn) }

// RemoteCxAsRPC executes fn(arg) at the destination rank once the data is
// visible there — the signaling put.
func RemoteCxAsRPC[A any](fn func(*Rank, A), arg A) Cx { return core.RemoteCxAsRPC(fn, arg) }

// RPCBodyOn addresses the *body* of an RPC to the named persona p of the
// target rank: instead of executing on whichever goroutine drives that
// rank's progress, the invocation is delivered to p as an LPC and runs
// during p's own progress/wait calls. Accepted only by the RPC entry
// points (RPCWith, RPCFFWith), at most once per call; p must belong to
// the target rank.
func RPCBodyOn(p *Persona) Cx { return core.RPCBodyOn(p) }

// One-sided RMA (upcxx::rput/rget and the VIS variants). Every entry
// point routes through one internal injection path; the …With variants
// take explicit completion sets.

// RPut copies src into remote memory; the future readies at operation
// completion.
func RPut[T Scalar](rk *Rank, src []T, dst GPtr[T]) Future[Unit] { return core.RPut(rk, src, dst) }

// RPutWith is RPut with an explicit completion-descriptor set.
func RPutWith[T Scalar](rk *Rank, src []T, dst GPtr[T], cxs ...Cx) CxFutures {
	return core.RPutWith(rk, src, dst, cxs...)
}

// RPutPromise is RPut with completion registered on a promise
// (operation_cx::as_promise).
func RPutPromise[T Scalar](rk *Rank, src []T, dst GPtr[T], p *Promise[Unit]) {
	core.RPutPromise(rk, src, dst, p)
}

// RGet copies remote memory into the local buffer dst.
func RGet[T Scalar](rk *Rank, src GPtr[T], dst []T) Future[Unit] { return core.RGet(rk, src, dst) }

// RGetWith is RGet with an explicit completion-descriptor set.
func RGetWith[T Scalar](rk *Rank, src GPtr[T], dst []T, cxs ...Cx) CxFutures {
	return core.RGetWith(rk, src, dst, cxs...)
}

// RGetPromise is RGet with promise-based completion.
func RGetPromise[T Scalar](rk *Rank, src GPtr[T], dst []T, p *Promise[Unit]) {
	core.RGetPromise(rk, src, dst, p)
}

// PutValue writes one value to remote memory.
func PutValue[T Scalar](rk *Rank, v T, dst GPtr[T]) Future[Unit] { return core.PutValue(rk, v, dst) }

// GetValue fetches one value from remote memory.
func GetValue[T Scalar](rk *Rank, src GPtr[T]) Future[T] { return core.GetValue(rk, src) }

// CopyGG copies between two global locations of any memory kinds
// (upcxx::copy); the initiator may be a third party to both sides.
func CopyGG[T Scalar](rk *Rank, src, dst GPtr[T], n int) Future[Unit] {
	return core.CopyGG(rk, src, dst, n)
}

// CopyCx is upcxx::copy with an explicit completion-descriptor set — the
// kind-aware completion variants (remote_cx on device puts) ride here.
func CopyCx[T Scalar](rk *Rank, src, dst GPtr[T], n int, cxs ...Cx) CxFutures {
	return core.CopyWith(rk, src, dst, n, cxs...)
}

// CopyGGPromise is CopyGG with promise-based completion.
func CopyGGPromise[T Scalar](rk *Rank, src, dst GPtr[T], n int, p *Promise[Unit]) {
	core.CopyGGPromise(rk, src, dst, n, p)
}

// RPutV / RGetV issue vector RMA over fragment lists; the With variants
// take completion sets (operation/remote fire once all fragments land).
func RPutV[T Scalar](rk *Rank, frags []PutPair[T]) Future[Unit] { return core.RPutV(rk, frags) }
func RGetV[T Scalar](rk *Rank, frags []GetPair[T]) Future[Unit] { return core.RGetV(rk, frags) }
func RPutVWith[T Scalar](rk *Rank, frags []PutPair[T], cxs ...Cx) CxFutures {
	return core.RPutVWith(rk, frags, cxs...)
}
func RGetVWith[T Scalar](rk *Rank, frags []GetPair[T], cxs ...Cx) CxFutures {
	return core.RGetVWith(rk, frags, cxs...)
}

// RPutIndexed scatters fixed-size blocks to element offsets of a remote
// base pointer; RGetIndexed gathers them.
func RPutIndexed[T Scalar](rk *Rank, src []T, base GPtr[T], indices []int, blockElems int) Future[Unit] {
	return core.RPutIndexed(rk, src, base, indices, blockElems)
}
func RGetIndexed[T Scalar](rk *Rank, base GPtr[T], indices []int, blockElems int, dst []T) Future[Unit] {
	return core.RGetIndexed(rk, base, indices, blockElems, dst)
}
func RPutIndexedWith[T Scalar](rk *Rank, src []T, base GPtr[T], indices []int, blockElems int, cxs ...Cx) CxFutures {
	return core.RPutIndexedWith(rk, src, base, indices, blockElems, cxs...)
}
func RGetIndexedWith[T Scalar](rk *Rank, base GPtr[T], indices []int, blockElems int, dst []T, cxs ...Cx) CxFutures {
	return core.RGetIndexedWith(rk, base, indices, blockElems, dst, cxs...)
}

// RPutStrided2D / RGetStrided2D move regular 2D sections.
func RPutStrided2D[T Scalar](rk *Rank, src []T, srcStride int, dst GPtr[T], dstStride, rowLen, rows int) Future[Unit] {
	return core.RPutStrided2D(rk, src, srcStride, dst, dstStride, rowLen, rows)
}
func RGetStrided2D[T Scalar](rk *Rank, src GPtr[T], srcStride int, dst []T, dstStride, rowLen, rows int) Future[Unit] {
	return core.RGetStrided2D(rk, src, srcStride, dst, dstStride, rowLen, rows)
}
func RPutStrided2DWith[T Scalar](rk *Rank, src []T, srcStride int, dst GPtr[T], dstStride, rowLen, rows int, cxs ...Cx) CxFutures {
	return core.RPutStrided2DWith(rk, src, srcStride, dst, dstStride, rowLen, rows, cxs...)
}
func RGetStrided2DWith[T Scalar](rk *Rank, src GPtr[T], srcStride int, dst []T, dstStride, rowLen, rows int, cxs ...Cx) CxFutures {
	return core.RGetStrided2DWith(rk, src, srcStride, dst, dstStride, rowLen, rows, cxs...)
}

// Remote procedure calls (upcxx::rpc / rpc_ff). The function value ships
// as a code reference (SPMD ranks share one binary); arguments are
// serialized into the message. RPCs lower through the same injection
// path as RMA and collectives, under the same versioned wire header
// discipline, and the …With variants accept the full completion
// vocabulary: source-cx when the argument buffer may be reused, op-cx
// when the reply lands (for rpc_ff, when the conduit accepts the
// message), and RemoteCxAsRPC as a target-side landing event.

// RPC invokes fn(arg) on the target rank, returning a future for the
// result.
func RPC[A, R any](rk *Rank, target Intrank, fn func(*Rank, A) R, arg A) Future[R] {
	return core.RPC(rk, target, fn, arg)
}

// RPCWith is RPC with an explicit completion-descriptor set, returning
// the result future plus the requested completion futures.
func RPCWith[A, R any](rk *Rank, target Intrank, fn func(*Rank, A) R, arg A, cxs ...Cx) (Future[R], CxFutures) {
	return core.RPCWith(rk, target, fn, arg, cxs...)
}

// RPCFutWith is RPCWith for a future-returning body: the reply is
// deferred until the body's future readies.
func RPCFutWith[A, R any](rk *Rank, target Intrank, fn func(*Rank, A) Future[R], arg A, cxs ...Cx) (Future[R], CxFutures) {
	return core.RPCFutWith(rk, target, fn, arg, cxs...)
}

// RPCFFWith is RPCFF with an explicit completion-descriptor set.
func RPCFFWith[A any](rk *Rank, target Intrank, fn func(*Rank, A), arg A, cxs ...Cx) CxFutures {
	return core.RPCFFWith(rk, target, fn, arg, cxs...)
}

// RPC0 invokes a no-argument function remotely.
func RPC0[R any](rk *Rank, target Intrank, fn func(*Rank) R) Future[R] {
	return core.RPC0(rk, target, fn)
}

// RPC2 invokes a two-argument function remotely.
func RPC2[A, B, R any](rk *Rank, target Intrank, fn func(*Rank, A, B) R, a A, b B) Future[R] {
	return core.RPC2(rk, target, fn, a, b)
}

// RPCFut invokes a future-returning function remotely; the reply is
// deferred until that future readies.
func RPCFut[A, R any](rk *Rank, target Intrank, fn func(*Rank, A) Future[R], arg A) Future[R] {
	return core.RPCFut(rk, target, fn, arg)
}

// RPCFF is fire-and-forget rpc_ff: no acknowledgment, no result.
func RPCFF[A any](rk *Rank, target Intrank, fn func(*Rank, A), arg A) {
	core.RPCFF(rk, target, fn, arg)
}

// RPCFF0 / RPCFF2 are rpc_ff with zero / two arguments.
func RPCFF0(rk *Rank, target Intrank, fn func(*Rank)) { core.RPCFF0(rk, target, fn) }
func RPCFF2[A, B any](rk *Rank, target Intrank, fn func(*Rank, A, B), a A, b B) {
	core.RPCFF2(rk, target, fn, a, b)
}

// Batch accumulates RPCs bound for one target rank; Flush ships them
// as a single coalesced wire message under one completion plan
// (DESIGN §12).
type Batch = core.Batch

// NewBatch starts an empty RPC batch for target.
func NewBatch(rk *Rank, target Intrank) *Batch { return core.NewBatch(rk, target) }

// BatchRPC appends a round-trip RPC to the batch and returns the
// value future its reply will fulfill after Flush. View-typed fields
// of arg ≥64 bytes are captured zero-copy: the caller must not mutate
// them between this call and the flushed op's source-cx event.
func BatchRPC[A, R any](b *Batch, fn func(*Rank, A) R, arg A) Future[R] {
	return core.BatchRPC(b, fn, arg)
}

// BatchRPCFF appends a fire-and-forget RPC to the batch.
func BatchRPCFF[A any](b *Batch, fn func(*Rank, A), arg A) {
	core.BatchRPCFF(b, fn, arg)
}

// Futures and promises.

// ReadyFuture returns an already-fulfilled future carrying v.
func ReadyFuture[T any](rk *Rank, v T) Future[T] { return core.ReadyFuture(rk, v) }

// EmptyFuture returns a ready empty future (conjunction seed).
func EmptyFuture(rk *Rank) Future[Unit] { return core.EmptyFuture(rk) }

// Then chains a callback producing a value (future::then).
func Then[T, U any](f Future[T], fn func(T) U) Future[U] { return core.Then(f, fn) }

// ThenDo chains a callback producing no value.
func ThenDo[T any](f Future[T], fn func(T)) Future[Unit] { return core.ThenDo(f, fn) }

// ThenFut chains a future-returning callback, flattening the result.
func ThenFut[T, U any](f Future[T], fn func(T) Future[U]) Future[U] { return core.ThenFut(f, fn) }

// WhenAll conjoins futures into a readiness-only future (upcxx::when_all).
func WhenAll(rk *Rank, fs ...AnyFuture) Future[Unit] { return core.WhenAll(rk, fs...) }

// WhenAll2 conjoins two futures, preserving both values.
func WhenAll2[A, B any](fa Future[A], fb Future[B]) Future[Pair[A, B]] {
	return core.WhenAll2(fa, fb)
}

// WhenAllSlice conjoins a homogeneous slice of futures.
func WhenAllSlice[T any](rk *Rank, fs []Future[T]) Future[[]T] { return core.WhenAllSlice(rk, fs) }

// NewPromise creates a promise with one unfulfilled dependency.
func NewPromise[T any](rk *Rank) *Promise[T] { return core.NewPromise[T](rk) }

// NewPromiseOn creates a promise owned by the named persona pers: pass it
// to a …CxAsPromise descriptor to address that completion to pers.
func NewPromiseOn[T any](rk *Rank, pers *Persona) *Promise[T] { return core.NewPromiseOn[T](rk, pers) }

// Views.

// MakeView wraps a slice for zero-copy serialization into an RPC.
func MakeView[T Scalar](s []T) View[T] { return core.MakeView(s) }

// Teams and collectives. The collectives engine (internal/core/coll.go)
// drives every collective over pluggable tree topologies — binomial by
// default, k-nomial via Config.CollRadix, flat for tiny teams — and
// lowers every round through the same injection path as RMA, so the
// …With variants accept the full completion vocabulary: operation
// completion as futures/promises/LPCs delivered to the initiating
// persona, and RemoteCxAsRPC executed on each member's execution persona
// the moment the collective's data lands there (for device operands,
// after the h2d DMA) — barrier-free multicast/convergence signals.
// Collectives may be initiated from any persona; completion routes back
// to the initiator.

// Broadcast distributes root's value over the team's tree.
func Broadcast[T any](t *Team, root Intrank, val T) Future[T] { return core.Broadcast(t, root, val) }

// BroadcastWith is Broadcast with an explicit completion set, returning
// the value future plus the requested completion futures.
func BroadcastWith[T any](t *Team, root Intrank, val T, cxs ...Cx) (Future[T], CxFutures) {
	return core.BroadcastWith(t, root, val, cxs...)
}

// ReduceOne combines values toward team rank 0.
func ReduceOne[T any](t *Team, val T, op func(T, T) T) Future[T] { return core.ReduceOne(t, val, op) }

// ReduceOneWith is ReduceOne with an explicit completion set.
func ReduceOneWith[T any](t *Team, val T, op func(T, T) T, cxs ...Cx) (Future[T], CxFutures) {
	return core.ReduceOneWith(t, val, op, cxs...)
}

// AllReduce combines values and delivers the result everywhere.
func AllReduce[T any](t *Team, val T, op func(T, T) T) Future[T] { return core.AllReduce(t, val, op) }

// AllReduceWith is AllReduce with an explicit completion set.
func AllReduceWith[T any](t *Team, val T, op func(T, T) T, cxs ...Cx) (Future[T], CxFutures) {
	return core.AllReduceWith(t, val, op, cxs...)
}

// BroadcastBufWith distributes the root's n-element buffer into every
// member's own local buffer (any memory kind) as kind-aware conduit
// copies; a RemoteCxAsRPC descriptor fires at each member once the
// payload is visible in its buffer (device: after the h2d DMA).
func BroadcastBufWith[T Scalar](t *Team, root Intrank, buf GPtr[T], n int, cxs ...Cx) CxFutures {
	return core.BroadcastBufWith(t, root, buf, n, cxs...)
}

// ReduceOneBufWith combines every member's n-element buffer elementwise
// toward team rank 0's buffer. Device operands reduce device-resident:
// partials move as DMA-costed copies and fold via RunKernel — no host
// staging. da is the owning allocator for device operands (nil for host).
func ReduceOneBufWith[T Scalar](t *Team, da *DeviceAllocator, buf GPtr[T], n int, op func(T, T) T, cxs ...Cx) CxFutures {
	return core.ReduceOneBufWith(t, da, buf, n, op, cxs...)
}

// AllReduceBufWith is ReduceOneBufWith with the result fanned back down
// into every member's buffer.
func AllReduceBufWith[T Scalar](t *Team, da *DeviceAllocator, buf GPtr[T], n int, op func(T, T) T, cxs ...Cx) CxFutures {
	return core.AllReduceBufWith(t, da, buf, n, op, cxs...)
}

// Distributed objects.

// NewDistObject registers this rank's representative (collective
// ordering).
func NewDistObject[T any](rk *Rank, val T) *DistObject[T] { return core.NewDistObject(rk, val) }

// FetchDist retrieves another rank's representative by ID.
func FetchDist[T any](rk *Rank, id DistID, from Intrank) Future[T] {
	return core.FetchDist[T](rk, id, from)
}

// LookupDist resolves a DistID to the local representative (RPC-side
// binding).
func LookupDist[T any](rk *Rank, id DistID) (*DistObject[T], bool) {
	return core.LookupDist[T](rk, id)
}

// Remote atomics.

// NewAtomicU64 creates the uint64 atomic domain.
func NewAtomicU64(rk *Rank) *AtomicU64 { return core.NewAtomicU64(rk) }

// NewAtomicI64 creates the int64 atomic domain.
func NewAtomicI64(rk *Rank) *AtomicI64 { return core.NewAtomicI64(rk) }

// Remote completions (remote_cx::as_rpc): attach work to the target-side
// completion of a put. Built on the completion-object system; see also
// RPutWith/CopyCx with RemoteCxAsRPC for composed forms.

// RPutSignal is the signaling put: the notification runs at the target
// once the data lands, piggybacked on the transfer (no extra round trip,
// no execution acknowledgment). The future is the put's operation
// completion.
func RPutSignal[T Scalar, A any](rk *Rank, src []T, dst GPtr[T], fn func(*Rank, A), arg A) Future[Unit] {
	return core.RPutSignal(rk, src, dst, fn, arg)
}

// RPutThenRemote puts src to dst and, once remotely visible, runs fn at
// dst's owner; the future readies only when the notification has
// *executed* (stronger than RPutSignal, at the cost of an explicit RPC
// round trip after remote completion).
func RPutThenRemote[T Scalar, A any](rk *Rank, src []T, dst GPtr[T], fn func(*Rank, A), arg A) Future[Unit] {
	return core.RPutThenRemote(rk, src, dst, fn, arg)
}

// Gather collects every team member's value at root (root's future holds
// the values by team rank).
func Gather[T any](t *Team, root Intrank, val T) Future[[]T] { return core.Gather(t, root, val) }

// AllGather collects every member's value on every member.
func AllGather[T any](t *Team, val T) Future[[]T] { return core.AllGather(t, val) }

// Distributed async-task runtime (internal/task): AsyncAt ships a
// registered function and its serialized argument to any rank and
// returns a future for the result; per-rank worker personas execute,
// idle ranks steal batched work from busy ones, and Finish detects
// global quiescence with a four-counter wave protocol instead of a
// barrier. Everything lowers onto the registered-RPC wire, so tasks run
// over every conduit and show up in the introspection layer
// (StatsSnapshot.Tasks, task-stage trace events).

type (
	// TaskRuntime is one rank's task engine; create it on every rank
	// with NewTaskRuntime before tasks cross ranks.
	TaskRuntime = task.Runtime
	// TaskConfig tunes workers and stealing for one rank's runtime.
	TaskConfig = task.Config
	// TaskGroup awaits a set of fire-and-forget spawns by credit
	// counting, locally to the spawning rank (TaskRuntime.NewGroup).
	TaskGroup = task.Group
)

var (
	// NewTaskRuntime creates and starts a rank's task runtime.
	NewTaskRuntime = task.New
	// TaskRuntimeOf returns a rank's runtime (nil before NewTaskRuntime).
	TaskRuntimeOf = task.Of
)

// RegisterTask registers a result-bearing task body for cross-rank
// dispatch. Like RegisterRPC: package-level, non-generic, from init().
func RegisterTask[A, R any](fn func(*Rank, A) R) string { return task.Register(fn) }

// RegisterTaskFF registers a fire-and-forget task body.
func RegisterTaskFF[A any](fn func(*Rank, A)) string { return task.RegisterFF(fn) }

// AsyncAt spawns fn(arg) on the target rank and returns a future for
// the result, owned by the calling persona. The task may execute on any
// of the target's workers — or on a thief rank that steals it.
func AsyncAt[A, R any](rt *TaskRuntime, target Intrank, fn func(*Rank, A) R, arg A) Future[R] {
	return task.AsyncAt(rt, target, fn, arg)
}

// AsyncAtFF spawns fn(arg) on the target rank fire-and-forget; await it
// through TaskRuntime.Finish (collective) or a TaskGroup (local).
func AsyncAtFF[A any](rt *TaskRuntime, target Intrank, fn func(*Rank, A), arg A) {
	task.AsyncAtFF(rt, target, fn, arg)
}

// GroupAsyncAt spawns fn(arg) on the target rank under a task group
// created on this rank; g.Wait drains the group's credit balance.
func GroupAsyncAt[A any](g *TaskGroup, target Intrank, fn func(*Rank, A), arg A) {
	task.GroupAsyncAt(g, target, fn, arg)
}

// TaskHelpWait blocks on f like Future.Wait while lending the calling
// goroutine to the task queue (executing and stealing work meanwhile).
func TaskHelpWait[T any](rt *TaskRuntime, f Future[T]) T { return task.HelpWait(rt, f) }

// TaskStat indexes StatsSnapshot.Tasks.
type TaskStat = obs.TaskStat

// Task-runtime counters (StatsSnapshot.Tasks, present once any task ran).
const (
	TaskSpawned      = obs.TaskSpawned
	TaskExecuted     = obs.TaskExecuted
	TaskStolen       = obs.TaskStolen
	TaskMigrated     = obs.TaskMigrated
	TaskStealReqs    = obs.TaskStealReqs
	TaskStealFails   = obs.TaskStealFails
	TaskDetectRounds = obs.TaskDetectRounds
)
