package upcxx_test

import (
	"testing"

	"upcxx"
)

// The facade test exercises the public API surface end to end the way a
// downstream user would — everything through the root package.

func TestFacadeEndToEnd(t *testing.T) {
	upcxx.Run(4, func(rk *upcxx.Rank) {
		// Memory + distributed object handshake.
		mine := upcxx.MustNewArray[float64](rk, 8)
		obj := upcxx.NewDistObject(rk, mine)
		rk.Barrier()

		right := (rk.Me() + 1) % rk.N()
		remote := upcxx.FetchDist[upcxx.GPtr[float64]](rk, obj.ID(), right).Wait()
		if remote.Where() != right {
			t.Errorf("owner = %d", remote.Where())
		}

		// RMA round trip.
		upcxx.RPut(rk, []float64{float64(rk.Me()) + 0.5}, remote).Wait()
		rk.Barrier()
		left := (rk.Me() - 1 + rk.N()) % rk.N()
		if got := upcxx.Local(rk, mine, 1)[0]; got != float64(left)+0.5 {
			t.Errorf("rank %d: segment holds %v", rk.Me(), got)
		}

		// RPC with a view and a chained continuation.
		sum := upcxx.ThenFut(
			upcxx.RPC(rk, right, func(trk *upcxx.Rank, v upcxx.View[int32]) int64 {
				var s int64
				for _, x := range v.Elements() {
					s += int64(x)
				}
				return s
			}, upcxx.MakeView([]int32{1, 2, 3})),
			func(s int64) upcxx.Future[int64] {
				return upcxx.ReadyFuture(rk, s*10)
			}).Wait()
		if sum != 60 {
			t.Errorf("chained rpc = %d", sum)
		}

		// Promise counters + vector RMA.
		p := upcxx.NewPromise[upcxx.Unit](rk)
		upcxx.RPutPromise(rk, []float64{1}, remote.Add(1), p)
		upcxx.RPutPromise(rk, []float64{2}, remote.Add(2), p)
		p.Finalize().Wait()

		// Strided RMA.
		upcxx.RPutStrided2D(rk, []float64{9, 9, 9, 9}, 2, remote.Add(4), 2, 1, 2).Wait()

		// Collectives + teams.
		total := upcxx.AllReduce(rk.WorldTeam(), int64(1),
			func(a, b int64) int64 { return a + b }).Wait()
		if total != 4 {
			t.Errorf("allreduce = %d", total)
		}
		sub := rk.WorldTeam().Split(int(rk.Me())%2, int(rk.Me()))
		if sub.RankN() != 2 {
			t.Errorf("split team size = %d", sub.RankN())
		}
		bval := upcxx.Broadcast(sub, 0, int(rk.Me())).Wait()
		_ = bval

		// Atomics.
		var cell upcxx.GPtr[uint64]
		if rk.Me() == 0 {
			cell = upcxx.MustNewArray[uint64](rk, 1)
		}
		cobj := upcxx.NewDistObject(rk, cell)
		rk.Barrier()
		cell = upcxx.FetchDist[upcxx.GPtr[uint64]](rk, cobj.ID(), 0).Wait()
		upcxx.NewAtomicU64(rk).FetchAdd(cell, 1).Wait()
		rk.Barrier()
		if rk.Me() == 0 {
			if got := upcxx.Local(rk, cell, 1)[0]; got != 4 {
				t.Errorf("counter = %d", got)
			}
		}
		rk.Barrier()

		// Cleanup.
		if err := upcxx.Delete(rk, mine); err != nil {
			t.Error(err)
		}
		rk.Barrier()
	})
}

func TestFacadeCombinators(t *testing.T) {
	upcxx.Run(1, func(rk *upcxx.Rank) {
		pair := upcxx.WhenAll2(upcxx.ReadyFuture(rk, 1), upcxx.ReadyFuture(rk, "x")).Wait()
		if pair.First != 1 || pair.Second != "x" {
			t.Errorf("pair = %+v", pair)
		}
		vals := upcxx.WhenAllSlice(rk, []upcxx.Future[int]{
			upcxx.ReadyFuture(rk, 1), upcxx.ReadyFuture(rk, 2),
		}).Wait()
		if len(vals) != 2 {
			t.Errorf("vals = %v", vals)
		}
		done := upcxx.ThenDo(upcxx.EmptyFuture(rk), func(upcxx.Unit) {})
		if !done.Ready() {
			t.Error("ThenDo on ready future should be ready")
		}
		if upcxx.NilGPtr[int32]().IsNil() != true {
			t.Error("NilGPtr")
		}
	})
}
