module upcxx

go 1.24
