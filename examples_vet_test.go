package upcxx_test

import (
	"os/exec"
	"testing"
)

// TestExamplesVetClean is the smoke test that the example programs keep
// compiling cleanly against the facade: `go vet` both type-checks and
// lints every main under examples/.
func TestExamplesVetClean(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	out, err := exec.Command(gobin, "vet", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("go vet ./examples/... failed: %v\n%s", err, out)
	}
}
