// Tree search: task-parallel traversal of a deterministic, unbalanced
// tree with the distributed async-task runtime — the paper's
// asynchrony-by-default model applied to irregular work.
//
// Every node visit is a fire-and-forget task spawned on the *executing*
// rank, and the root spawns at rank 0, so the entire tree initially
// lives in one queue: the worst imbalance a scheduler can face. Load
// spreads exclusively by work stealing (idle ranks pull batches of the
// oldest — largest — subtrees over one-way RPCs), and the run ends with
// TaskRuntime.Finish, the four-counter termination detector that proves
// every spawn anywhere has executed without a stop-the-world barrier.
// The node count is verified against a sequential walk of the same
// tree.
//
// Run with:
//
//	go run ./examples/tree-search
//
// or as real OS-process ranks over a transport backend:
//
//	UPCXX_CONDUIT=shm UPCXX_NPROC=4 go run ./examples/tree-search
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"upcxx"
	"upcxx/internal/gasnet"
)

const (
	ranks    = 4
	maxDepth = 14
	rootID   = uint64(7)
)

// node is one unit of search work; IDs derive from the parent so the
// tree is identical in every process.
type node struct {
	ID    uint64
	Depth int64
}

// splitmix64 is the tree's shape oracle.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// kids returns the node's child count: skewed so some subtrees explode
// while most fizzle — the imbalance stealing exists for.
func kids(n node) int {
	if n.Depth >= maxDepth {
		return 0
	}
	if n.Depth < 3 {
		return 3 // guaranteed initial fan-out
	}
	switch h := splitmix64(n.ID) % 100; {
	case h < 26:
		return 3
	case h < 56:
		return 1
	default:
		return 0
	}
}

func child(n node, i int) node {
	return node{ID: splitmix64(n.ID ^ (uint64(i)+1)<<17), Depth: n.Depth + 1}
}

// countSeq walks the tree sequentially — the verification oracle.
func countSeq(n node) uint64 {
	total := uint64(1)
	for i := 0; i < kids(n); i++ {
		total += countSeq(child(n, i))
	}
	return total
}

// visited counts the nodes this process's ranks executed.
var visited atomic.Uint64

// visit is the task body: "evaluate" the node (a fixed work grain — in
// a real search this is the position scoring), count it, and spawn one
// task per child on the executing rank. Only steals move work between
// ranks.
func visit(trk *upcxx.Rank, n node) {
	time.Sleep(50 * time.Microsecond)
	visited.Add(1)
	rt := upcxx.TaskRuntimeOf(trk)
	for i := 0; i < kids(n); i++ {
		upcxx.AsyncAtFF(rt, trk.Me(), visit, child(n, i))
	}
}

// subtreeSeq is a result-bearing task: a remote rank counts one subtree
// sequentially and the answer rides back to the spawner's future.
func subtreeSeq(trk *upcxx.Rank, n node) uint64 { return countSeq(n) }

func init() {
	upcxx.RegisterTaskFF(visit)
	upcxx.RegisterTask(subtreeSeq)
}

func main() {
	cfg := upcxx.Config{Ranks: ranks, Stats: true}
	if !upcxx.DistActive() {
		// In-process demo runs over the modeled conduit; real transports
		// bring their own timing.
		cfg.Model = &gasnet.LogGP{O: 200 * time.Nanosecond, L: 2 * time.Microsecond, Gp: 100 * time.Nanosecond}
	}
	want := countSeq(node{ID: rootID})
	upcxx.RunConfig(cfg, func(rk *upcxx.Rank) {
		rt := upcxx.NewTaskRuntime(rk, upcxx.TaskConfig{Workers: 2, StealBatch: 4})
		defer rt.Stop()
		me := rk.Me()

		// Result-bearing warm-up: the last rank counts the root's first
		// subtree sequentially; the spawner helps execute while waiting.
		if me == 0 && kids(node{ID: rootID}) > 0 {
			f := upcxx.AsyncAt(rt, rk.N()-1, subtreeSeq, child(node{ID: rootID}, 0))
			fmt.Printf("rank 0: subtree(child 0) = %d nodes (computed at rank %d)\n",
				upcxx.TaskHelpWait(rt, f), rk.N()-1)
		}
		rk.Barrier()

		start := time.Now()
		if me == 0 {
			upcxx.AsyncAtFF(rt, 0, visit, node{ID: rootID})
		}
		if err := rt.Finish(); err != nil {
			fmt.Fprintf(os.Stderr, "rank %d: Finish: %v\n", me, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)

		// Every spawn landed in the count: sum per-process visit counters
		// (in-process worlds share one counter; real conduits hold one
		// per OS process) and compare against the sequential oracle.
		mine := uint64(0)
		if me == 0 || upcxx.DistActive() {
			mine = visited.Load()
		}
		total := upcxx.AllReduce(rk.WorldTeam(), mine,
			func(a, b uint64) uint64 { return a + b }).Wait()
		s := rk.Stats()
		stolen, reqs := uint64(0), uint64(0)
		if len(s.Tasks) > 0 {
			stolen, reqs = s.Tasks[upcxx.TaskStolen], s.Tasks[upcxx.TaskStealReqs]
		}
		fmt.Printf("rank %d: stole %d tasks (%d requests)\n", me, stolen, reqs)
		rk.Barrier()
		if me == 0 {
			if total != want {
				fmt.Fprintf(os.Stderr, "tree search visited %d nodes, want %d\n", total, want)
				os.Exit(1)
			}
			fmt.Printf("searched %d nodes across %d ranks in %v — count verified\n", total, rk.N(), elapsed)
		}
		rk.Barrier()
	})
}
