// Stencil example: a 2D Jacobi iteration with halo exchange over
// one-sided RMA — the regular-section data movement the paper's VIS
// (vector/indexed/strided) support exists for — made *barrier-free* by
// the completion-object system:
//
//   - halo pushes are signaling puts (RemoteCxAsRPC): the notification
//     rides the transfer and bumps a per-iteration arrival counter at
//     the receiver, so a rank sweeps the moment both ghosts have
//     provably landed — no exchange barrier;
//   - the residual allreduce doubles as the iteration's only
//     synchronization point: its completion implies every neighbour has
//     finished reading this iteration's ghosts (their sweep precedes
//     their contribution), so the next iteration's puts can never race a
//     reader, and the uniform result gives a consistent early exit.
//
// The global (N x N) grid is split into P horizontal slabs. Each rank
// stores its slab plus two ghost rows in its shared segment; neighbours
// write their boundary rows directly into the ghost rows with rput
// (one-sided: the receiver's CPU never participates in the transfer).
//
// Run with:
//
//	go run ./examples/stencil
//
// or as real OS-process ranks over a transport backend:
//
//	UPCXX_CONDUIT=shm UPCXX_NPROC=4 go run ./examples/stencil
package main

import (
	"fmt"
	"math"
	"time"

	"upcxx"
)

const (
	ranks    = 4
	n        = 64 // global rows (and columns)
	maxIters = 200
	// tol is the residual early-exit threshold — loose, because Jacobi
	// with a fixed hot edge converges slowly at this demo scale; it is
	// reached around iteration 180, so the barrier-free early exit is
	// actually exercised.
	tol = 100.0
)

// arrive runs at the halo's receiving rank as the remote completion of a
// neighbour's signaling put: the boundary row is already visible in the
// ghost slot when the counter bumps.
func arrive(trk *upcxx.Rank, counter upcxx.GPtr[uint64]) {
	upcxx.Local(trk, counter, 1)[0]++
}

// Registered by name so the signaling put's remote completion can be
// dispatched in a sibling rank process under a real transport conduit.
func init() { upcxx.RegisterRPCFF(arrive) }

func main() {
	upcxx.Run(ranks, func(rk *upcxx.Rank) {
		me := int(rk.Me())
		nr := int(rk.N()) // == ranks in-process; UPCXX_NPROC over a real conduit
		rows := n / nr
		// Slab with ghost rows at local row 0 and rows+1, in the shared
		// segment so neighbours can rput into it, plus per-iteration
		// arrival counters for the signaling puts.
		field := upcxx.MustNewArray[float64](rk, (rows+2)*n)
		arrivals := upcxx.MustNewArray[uint64](rk, maxIters)
		type slots struct {
			Field upcxx.GPtr[float64]
			Arr   upcxx.GPtr[uint64]
		}
		ptrs := upcxx.NewDistObject(rk, slots{field, arrivals})
		rk.Barrier()

		g := upcxx.Local(rk, field, (rows+2)*n)
		arr := upcxx.Local(rk, arrivals, maxIters)
		scratch := make([]float64, (rows+2)*n) // private compute buffer
		// Boundary condition: the global top edge is hot.
		if me == 0 {
			for j := 0; j < n; j++ {
				g[1*n+j] = 100
			}
		}

		var up, down slots
		nNbr := uint64(0)
		if me > 0 {
			up = upcxx.FetchDist[slots](rk, ptrs.ID(), rk.Me()-1).Wait()
			nNbr++
		}
		if me < nr-1 {
			down = upcxx.FetchDist[slots](rk, ptrs.ID(), rk.Me()+1).Wait()
			nNbr++
		}
		rk.Barrier() // everyone fetched; the loop below is barrier-free

		var residual float64
		iters := 0
		for it := 0; it < maxIters; it++ {
			iters = it + 1
			// Halo exchange: push my boundary rows into the neighbours'
			// ghost rows as signaling puts — data plus per-iteration
			// arrival bump in one one-way message each. One promise
			// tracks my own sends' operation completion.
			p := upcxx.NewPromise[upcxx.Unit](rk)
			if me > 0 {
				upcxx.RPutWith(rk, g[1*n:2*n], up.Field.Add((rows+1)*n),
					upcxx.OpCxAsPromise(p),
					upcxx.RemoteCxAsRPC(arrive, up.Arr.Add(it)))
			}
			if me < nr-1 {
				upcxx.RPutWith(rk, g[rows*n:(rows+1)*n], down.Field.Add(0),
					upcxx.OpCxAsPromise(p),
					upcxx.RemoteCxAsRPC(arrive, down.Arr.Add(it)))
			}
			// Sweep only once both neighbours' boundary rows have landed
			// in my ghosts (per-iteration counters: a fast neighbour on
			// it+1 can never be confused with this iteration).
			for arr[it] < nNbr {
				// One progress pass, then a bounded idle-wait: over a real
				// conduit this parks until a doorbell instead of burning
				// the core the neighbour process needs.
				rk.ProgressWait(50 * time.Microsecond)
			}
			p.Finalize().Wait() // my own pushes drained; source rows reusable

			// Jacobi sweep into the private buffer (skip the global
			// boundary, which is held fixed).
			diff := 0.0
			for i := 1; i <= rows; i++ {
				gi := me*rows + i - 1
				if gi == 0 || gi == n-1 {
					copy(scratch[i*n:(i+1)*n], g[i*n:(i+1)*n])
					continue
				}
				for j := 1; j < n-1; j++ {
					v := 0.25 * (g[(i-1)*n+j] + g[(i+1)*n+j] + g[i*n+j-1] + g[i*n+j+1])
					scratch[i*n+j] = v
					diff += math.Abs(v - g[i*n+j])
				}
			}
			for i := 1; i <= rows; i++ {
				gi := me*rows + i - 1
				if gi == 0 || gi == n-1 {
					continue
				}
				copy(g[i*n+1:(i+1)*n-1], scratch[i*n+1:(i+1)*n-1])
			}

			// Barrier-free convergence check: the allreduce is the
			// iteration's only synchronization (my completion implies
			// every rank contributed, hence finished reading this
			// iteration's ghosts), and the uniform result makes the
			// early exit consistent across ranks.
			resFut, _ := upcxx.AllReduceWith(rk.WorldTeam(), diff,
				func(a, b float64) float64 { return a + b })
			residual = resFut.Wait()
			if residual < tol {
				break
			}
		}
		if rk.Me() == 0 {
			state := "converged"
			if residual >= tol {
				state = "stopped"
			}
			fmt.Printf("%s after %d iterations: residual %.6f\n", state, iters, residual)
		}

		// Sanity: heat diffuses downward, so the first interior row's sum
		// must not increase with distance from the hot edge. Rank 0 reads
		// every slab's first interior row with one-sided gets.
		rk.Barrier()
		if rk.Me() == 0 {
			prev := math.Inf(1)
			ok := true
			for r := int32(0); r < int32(nr); r++ {
				gp := upcxx.FetchDist[slots](rk, ptrs.ID(), r).Wait()
				buf := make([]float64, n)
				upcxx.RGet(rk, gp.Field.Add(1*n), buf).Wait()
				s := 0.0
				for _, v := range buf {
					s += v
				}
				if s > prev+1e-9 {
					ok = false
				}
				prev = s
			}
			fmt.Printf("monotone diffusion check: %v\n", ok)
		}
		rk.Barrier()
	})
}
