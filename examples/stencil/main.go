// Stencil example: a 2D Jacobi iteration with halo exchange over
// one-sided RMA — the regular-section data movement the paper's VIS
// (vector/indexed/strided) support exists for — using promise-based
// completion to overlap both halo directions, and a non-blocking
// allreduce for the residual.
//
// The global (N x N) grid is split into P horizontal slabs. Each rank
// stores its slab plus two ghost rows in its shared segment; neighbours
// write their boundary rows directly into the ghost rows with rput
// (one-sided: the receiver's CPU never participates in the transfer).
//
// Run with:
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"math"

	"upcxx"
)

const (
	ranks = 4
	n     = 64 // global rows (and columns)
	iters = 200
)

func main() {
	rows := n / ranks
	upcxx.Run(ranks, func(rk *upcxx.Rank) {
		me := int(rk.Me())
		// Slab with ghost rows at local row 0 and rows+1, in the shared
		// segment so neighbours can rput into it.
		field := upcxx.MustNewArray[float64](rk, (rows+2)*n)
		ptrs := upcxx.NewDistObject(rk, field)
		rk.Barrier()

		g := upcxx.Local(rk, field, (rows+2)*n)
		scratch := make([]float64, (rows+2)*n) // private compute buffer
		// Boundary condition: the global top edge is hot.
		if me == 0 {
			for j := 0; j < n; j++ {
				g[1*n+j] = 100
			}
		}

		var up, down upcxx.GPtr[float64]
		if me > 0 {
			up = upcxx.FetchDist[upcxx.GPtr[float64]](rk, ptrs.ID(), rk.Me()-1).Wait()
		}
		if me < ranks-1 {
			down = upcxx.FetchDist[upcxx.GPtr[float64]](rk, ptrs.ID(), rk.Me()+1).Wait()
		}
		rk.Barrier()

		var residual float64
		for it := 0; it < iters; it++ {
			// Halo exchange: push my boundary rows into the neighbours'
			// ghost rows, both directions tracked by one promise.
			p := upcxx.NewPromise[upcxx.Unit](rk)
			if me > 0 {
				upcxx.RPutPromise(rk, g[1*n:2*n], up.Add((rows+1)*n), p)
			}
			if me < ranks-1 {
				upcxx.RPutPromise(rk, g[rows*n:(rows+1)*n], down.Add(0), p)
			}
			p.Finalize().Wait()
			rk.Barrier() // all ghosts stable before reading

			// Jacobi sweep into the private buffer (skip the global
			// boundary, which is held fixed).
			diff := 0.0
			for i := 1; i <= rows; i++ {
				gi := me*rows + i - 1
				if gi == 0 || gi == n-1 {
					copy(scratch[i*n:(i+1)*n], g[i*n:(i+1)*n])
					continue
				}
				for j := 1; j < n-1; j++ {
					v := 0.25 * (g[(i-1)*n+j] + g[(i+1)*n+j] + g[i*n+j-1] + g[i*n+j+1])
					scratch[i*n+j] = v
					diff += math.Abs(v - g[i*n+j])
				}
			}
			for i := 1; i <= rows; i++ {
				gi := me*rows + i - 1
				if gi == 0 || gi == n-1 {
					continue
				}
				copy(g[i*n+1:(i+1)*n-1], scratch[i*n+1:(i+1)*n-1])
			}
			// Non-blocking allreduce of the residual.
			residual = upcxx.AllReduce(rk.WorldTeam(), diff,
				func(a, b float64) float64 { return a + b }).Wait()
			rk.Barrier()
		}
		if rk.Me() == 0 {
			fmt.Printf("after %d iterations: residual %.6f\n", iters, residual)
		}

		// Sanity: heat diffuses downward, so the first interior row's sum
		// must not increase with distance from the hot edge. Rank 0 reads
		// every slab's first interior row with one-sided gets.
		rk.Barrier()
		if rk.Me() == 0 {
			prev := math.Inf(1)
			ok := true
			for r := int32(0); r < int32(ranks); r++ {
				gp := upcxx.FetchDist[upcxx.GPtr[float64]](rk, ptrs.ID(), r).Wait()
				buf := make([]float64, n)
				upcxx.RGet(rk, gp.Add(1*n), buf).Wait()
				s := 0.0
				for _, v := range buf {
					s += v
				}
				if s > prev+1e-9 {
					ok = false
				}
				prev = s
			}
			fmt.Printf("monotone diffusion check: %v\n", ok)
		}
		rk.Barrier()
	})
}
