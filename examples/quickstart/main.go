// Quickstart: the core UPC++ vocabulary in one runnable program —
// shared-segment allocation, global pointers, distributed objects,
// one-sided RMA (rput/rget), RPC with a chained completion handler,
// promises as completion counters, remote atomics, and a collective.
//
// Run with:
//
//	go run ./examples/quickstart
//
// or as real OS-process ranks over a transport backend:
//
//	UPCXX_CONDUIT=shm UPCXX_NPROC=4 go run ./examples/quickstart
//
// RPC bodies that cross process boundaries are package-level functions
// registered in init (closures cannot travel between processes).
package main

import (
	"fmt"
	"sync"

	"upcxx"
)

// Cross-process RPC bodies: registered by name so a real transport
// backend can dispatch them in sibling rank processes.

func allocLanding(trk *upcxx.Rank, n int) upcxx.GPtr[float64] {
	return upcxx.MustNewArray[float64](trk, n)
}

func sumU64(trk *upcxx.Rank, xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

func square(trk *upcxx.Rank, x int) int { return x * x }

func incr(trk *upcxx.Rank, x int) int { return x + 1 }

func init() {
	upcxx.RegisterRPC(allocLanding)
	upcxx.RegisterRPC(sumU64)
	upcxx.RegisterRPC(square)
	upcxx.RegisterRPC(incr)
}

func main() {
	const ranks = 4
	var mu sync.Mutex
	say := func(format string, args ...any) {
		mu.Lock()
		fmt.Printf(format+"\n", args...)
		mu.Unlock()
	}

	upcxx.Run(ranks, func(rk *upcxx.Rank) {
		n := int(rk.N()) // == ranks in-process; UPCXX_NPROC over a real conduit
		// --- Global memory -------------------------------------------
		// Every rank allocates an array in its shared segment and
		// publishes the global pointer through a distributed object.
		mine := upcxx.MustNewArray[uint64](rk, n)
		ptrs := upcxx.NewDistObject(rk, mine)
		rk.Barrier()

		// --- One-sided RMA -------------------------------------------
		// Write my rank id into slot Me() of my right neighbour, with a
		// blocking put (future.Wait), then read it back with rget.
		right := (rk.Me() + 1) % rk.N()
		remote := upcxx.FetchDist[upcxx.GPtr[uint64]](rk, ptrs.ID(), right).Wait()
		upcxx.RPut(rk, []uint64{uint64(rk.Me())}, remote.Add(int(rk.Me()))).Wait()
		rk.Barrier()

		left := (rk.Me() - 1 + rk.N()) % rk.N()
		got := upcxx.GetValue(rk, upcxx.ToGlobal(rk, upcxx.Local(rk, mine, n)).Add(int(left))).Wait()
		say("rank %d: left neighbour %d deposited %d", rk.Me(), left, got)

		// --- RPC with completion chaining ------------------------------
		// Ask the right neighbour to allocate a landing zone, then rput
		// into it once the pointer arrives (the paper's DHT idiom).
		lzf := upcxx.RPC(rk, right, allocLanding, 3)
		done := upcxx.ThenFut(lzf, func(lz upcxx.GPtr[float64]) upcxx.Future[upcxx.Unit] {
			return upcxx.RPut(rk, []float64{1.5, 2.5, 3.5}, lz)
		})
		done.Wait()

		// --- One completion vocabulary for every operation --------------
		// RPCs speak the same completion language as RMA and collectives:
		// source-cx fires when the argument buffer may be reused, op-cx
		// when the reply lands. Here the same args buffer feeds several
		// RPCs back to back, with all replies counted on one promise.
		args := make([]uint64, 4)
		replies := upcxx.NewPromise[upcxx.Unit](rk)
		for round := uint64(0); round < 3; round++ {
			for i := range args {
				args[i] = round*10 + uint64(i)
			}
			_, fs := upcxx.RPCWith(rk, right, sumU64, args,
				upcxx.SourceCxAsFuture(),
				upcxx.OpCxAsPromise(replies))
			fs.Source.Wait() // args is reusable for the next round
		}
		replies.Finalize().Wait()

		// --- Promises as completion counters ---------------------------
		// Issue many puts tracked by one promise (the flood idiom).
		p := upcxx.NewPromise[upcxx.Unit](rk)
		for i := 0; i < n; i++ {
			upcxx.RPutPromise(rk, []uint64{uint64(100 + i)}, remote.Add(i), p)
		}
		p.Finalize().Wait()
		rk.Barrier()

		// --- Remote atomics --------------------------------------------
		// Everybody increments a counter on rank 0.
		var counter upcxx.GPtr[uint64]
		if rk.Me() == 0 {
			counter = upcxx.MustNewArray[uint64](rk, 1)
		}
		cobj := upcxx.NewDistObject(rk, counter)
		rk.Barrier()
		counter = upcxx.FetchDist[upcxx.GPtr[uint64]](rk, cobj.ID(), 0).Wait()
		ad := upcxx.NewAtomicU64(rk)
		old := ad.FetchAdd(counter, 1).Wait()
		say("rank %d: fetch-add observed %d", rk.Me(), old)
		rk.Barrier()

		// --- Collectives ------------------------------------------------
		total := upcxx.AllReduce(rk.WorldTeam(), int64(rk.Me()+1),
			func(a, b int64) int64 { return a + b }).Wait()
		if rk.Me() == 0 {
			say("allreduce(1..%d) = %d; counter = %d",
				n, total, ad.Load(counter).Wait())
		}
		rk.Barrier()

		// --- Runtime introspection --------------------------------------
		// With UPCXX_STATS=1 (or Config.Stats) the runtime keeps per-rank
		// op/byte/completion counters and latency histograms; UPCXX_TRACE=1
		// additionally arms sampled op-lifecycle timelines. The snapshot is
		// a plain value — printable, JSON-encodable, mergeable across ranks.
		if rk.Me() == 0 && rk.StatsEnabled() {
			fmt.Println("\n-- final runtime stats, rank 0 --")
			fmt.Print(rk.Stats().String())
		}
		rk.Barrier()
	})

	// --- Personas and the dedicated progress thread -------------------
	// With Config.ProgressThread each rank runs a progress goroutine
	// that executes incoming RPCs, so several user goroutines can share
	// one rank: each goroutine's futures complete on its own persona.
	upcxx.RunConfig(upcxx.Config{Ranks: 2, ProgressThread: true}, func(rk *upcxx.Rank) {
		if rk.Me() == 0 {
			var wg sync.WaitGroup
			for u := 0; u < 2; u++ {
				u := u
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer upcxx.DetachDefaultPersonas() // registry hygiene for per-task goroutines
					sq := upcxx.RPC(rk, 1, square, u+2).Wait()
					say("rank 0 user goroutine %d (persona %q): %d² = %d",
						u, rk.CurrentPersona().Name(), u+2, sq)
				}()
			}
			wg.Wait()

			// --- Persona-addressed completions -------------------------
			// Any completion can be delivered to a *named* persona: the
			// master initiates an RPC whose operation-cx future belongs
			// to a worker persona, and only the worker goroutine holding
			// it may consume the future.
			worker := upcxx.NewPersona(rk, "consumer")
			handoff := make(chan upcxx.CxFutures, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := upcxx.AcquirePersona(worker)
				defer sc.Release()
				fs := <-handoff
				fs.Op.Wait()
				say("worker persona %q consumed the RPC's operation-cx", worker.Name())
			}()
			_, fs := upcxx.RPCWith(rk, 1, incr, 1,
				upcxx.OpCxAsFutureOn(worker))
			handoff <- fs
			wg.Wait()
		}
		// Rank 1 never calls Progress here; its progress thread serves
		// the RPCs while its master goroutine idles into the barrier.
		rk.Barrier()
	})
}
