// Multifrontal extend-add example (paper §IV-D): generate a 3D FEM-style
// sparse matrix, run the full symbolic pipeline (elimination tree,
// supernode fronts, amalgamation, proportional mapping, 2D block-cyclic
// layouts), execute the extend-add in all three communication variants,
// verify they agree with the serial reference, and then run the
// mini-symPACK distributed Cholesky and verify it against a dense
// factorization.
//
// Run with:
//
//	go run ./examples/sparse-eadd
//
// or as real OS-process ranks over a transport backend:
//
//	UPCXX_CONDUIT=shm UPCXX_NPROC=4 go run ./examples/sparse-eadd
//
// Over a real conduit the UPC++ variants run cross-process (rank 0
// gathers every sibling's result by RPC for verification); the MPI
// emulation variants are an in-process comparison study and only run on
// the in-process conduit.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"upcxx"
	"upcxx/internal/matgen"
	"upcxx/internal/mpi"
	"upcxx/internal/sparse"
)

const ranks = 6

// Per-process results of the distributed phases, published for the
// rank-0 verification gather (each rank process holds exactly one).
var (
	myStore *sparse.AccumStore
	myChol  sparse.CholResult
)

func fetchStore(trk *upcxx.Rank, _ uint8) []byte {
	b, err := json.Marshal(myStore)
	if err != nil {
		panic(err)
	}
	return b
}

func fetchChol(trk *upcxx.Rank, _ uint8) []byte {
	b, err := json.Marshal(myChol)
	if err != nil {
		panic(err)
	}
	return b
}

func init() {
	upcxx.RegisterRPC(fetchStore)
	upcxx.RegisterRPC(fetchChol)
}

func main() {
	nr := ranks
	if n := upcxx.DistNProc(); n > 0 {
		nr = n
	}
	dist := upcxx.DistActive()
	// Over a real conduit the whole main runs in every rank process (and
	// once in the parent launcher, which exits into the spawn at the
	// first Run); print the SPMD-redundant headlines from rank 0 only.
	headline := !dist || os.Getenv("UPCXX_RANK") == "0"

	prob := matgen.Generate("demo", matgen.Grid3D{NX: 8, NY: 8, NZ: 8}, 16)
	tree := sparse.Amalgamate(sparse.BuildFrontTree(prob.A, 0), 0.3)
	if err := tree.Validate(); err != nil {
		panic(err)
	}
	if headline {
		fmt.Printf("matrix %s: n=%d nnz=%d -> %d fronts, depth %d\n",
			prob.Name, prob.A.N, prob.A.NNZ(), len(tree.Fronts), tree.MaxLevel())
	}

	plan := sparse.NewEAddPlan(tree, nr, 8)
	if headline {
		fmt.Printf("extend-add plan over %d processes: %d accumulations, %d expected messages on rank 0\n",
			nr, plan.TotalEntries, plan.Incoming[0])
	}

	want := sparse.EAddSerial(plan)

	// UPC++ RPC variant. In-process, every rank's store is reachable
	// through the shared slice; over a real conduit each rank process
	// keeps its own and rank 0 gathers them by RPC.
	stores := make([]*sparse.AccumStore, nr)
	upcxx.Run(nr, func(rk *upcxx.Rank) {
		st, el := sparse.EAddUPCXX(rk, plan)
		if rk.World().Dist() {
			myStore = st
			rk.Barrier() // every sibling's store is published
			if rk.Me() == 0 {
				fmt.Printf("  UPC++ RPC      : %v\n", el)
				checkStores(rk, want, fetchStore, "UPC++")
			}
			rk.Barrier()
			return
		}
		stores[rk.Me()] = st
		if rk.Me() == 0 {
			fmt.Printf("  UPC++ RPC      : %v\n", el)
		}
	})
	if !dist {
		check(want, stores, "UPC++")
	}

	// MPI variants on a fresh MPI world — an in-process emulation used as
	// the comparison baseline, so it stays on the in-process conduit.
	if !dist {
		for _, variant := range []struct {
			name string
			run  func(*mpi.Proc) *sparse.AccumStore
		}{
			{"MPI Alltoallv", func(p *mpi.Proc) *sparse.AccumStore {
				st, el := sparse.EAddMPIAlltoallv(p, plan)
				if p.Rank() == 0 {
					fmt.Printf("  MPI Alltoallv  : %v\n", el)
				}
				return st
			}},
			{"MPI P2P", func(p *mpi.Proc) *sparse.AccumStore {
				st, el := sparse.EAddMPIP2P(p, plan)
				if p.Rank() == 0 {
					fmt.Printf("  MPI P2P        : %v\n", el)
				}
				return st
			}},
		} {
			stores := make([]*sparse.AccumStore, nr)
			mpi.Run(nr, func(p *mpi.Proc) {
				stores[p.Rank()] = variant.run(p)
			})
			check(want, stores, variant.name)
		}
		fmt.Println("all three extend-add variants match the serial reference")
	} else if headline {
		fmt.Println("extend-add UPC++ variant matches the serial reference (MPI emulation variants are in-process only)")
	}

	// Mini-symPACK: distributed multifrontal Cholesky, verified against a
	// dense factorization.
	cholProb := matgen.Generate("chol-demo", matgen.Grid3D{NX: 5, NY: 5, NZ: 5}, 8)
	cholTree := sparse.Amalgamate(sparse.BuildFrontTree(cholProb.A, 0), 0.3)
	plan2 := sparse.NewCholPlan(cholProb.A, cholTree, nr)
	results := make([]sparse.CholResult, nr)
	upcxx.Run(nr, func(rk *upcxx.Rank) {
		res := sparse.CholV1(rk, plan2)
		if rk.World().Dist() {
			myChol = res
			rk.Barrier()
			if rk.Me() == 0 {
				all := []sparse.CholResult{res}
				for r := int32(1); r < rk.N(); r++ {
					var remote sparse.CholResult
					b := upcxx.RPC(rk, r, fetchChol, uint8(0)).Wait()
					if err := json.Unmarshal(b, &remote); err != nil {
						panic(err)
					}
					all = append(all, remote)
				}
				verifyChol(cholProb, all, nr)
			}
			rk.Barrier()
			return
		}
		results[rk.Me()] = res
	})
	if !dist {
		verifyChol(cholProb, results, nr)
	}
}

// checkStores gathers every sibling rank's accumulation store by RPC,
// merges them with rank 0's own, and compares against the serial
// reference (real-conduit analogue of check below).
func checkStores(rk *upcxx.Rank, want *sparse.AccumStore, fetch func(*upcxx.Rank, uint8) []byte, name string) {
	got := sparse.NewAccumStore()
	got.Merge(myStore)
	for r := int32(1); r < rk.N(); r++ {
		var remote sparse.AccumStore
		b := upcxx.RPC(rk, r, fetch, uint8(0)).Wait()
		if err := json.Unmarshal(b, &remote); err != nil {
			panic(err)
		}
		got.Merge(&remote)
	}
	if err := want.Equal(got, 1e-9); err != nil {
		panic(fmt.Sprintf("%s mismatch: %v", name, err))
	}
}

func check(want *sparse.AccumStore, stores []*sparse.AccumStore, name string) {
	got := sparse.NewAccumStore()
	for _, s := range stores {
		got.Merge(s)
	}
	if err := want.Equal(got, 1e-9); err != nil {
		panic(fmt.Sprintf("%s mismatch: %v", name, err))
	}
}

// verifyChol checks every rank's eliminated columns against a dense
// factorization of the same matrix.
func verifyChol(cholProb *matgen.Problem, results []sparse.CholResult, nr int) {
	dense := cholProb.A.Dense()
	if err := sparse.DenseCholesky(dense, cholProb.A.N); err != nil {
		panic(err)
	}
	n := cholProb.A.N
	worst := 0.0
	for _, res := range results {
		for _, tr := range res.L {
			diff := math.Abs(dense[int(tr[0])*n+int(tr[1])] - tr[2])
			if diff > worst {
				worst = diff
			}
		}
	}
	fmt.Printf("mini-symPACK over %d ranks: max |L - L_dense| = %.2e (n=%d)\n", nr, worst, n)
}
