// Multifrontal extend-add example (paper §IV-D): generate a 3D FEM-style
// sparse matrix, run the full symbolic pipeline (elimination tree,
// supernode fronts, amalgamation, proportional mapping, 2D block-cyclic
// layouts), execute the extend-add in all three communication variants,
// verify they agree with the serial reference, and then run the
// mini-symPACK distributed Cholesky and verify it against a dense
// factorization.
//
// Run with:
//
//	go run ./examples/sparse-eadd
package main

import (
	"fmt"
	"math"

	"upcxx"
	"upcxx/internal/matgen"
	"upcxx/internal/mpi"
	"upcxx/internal/sparse"
)

const ranks = 6

func main() {
	prob := matgen.Generate("demo", matgen.Grid3D{NX: 8, NY: 8, NZ: 8}, 16)
	tree := sparse.Amalgamate(sparse.BuildFrontTree(prob.A, 0), 0.3)
	if err := tree.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("matrix %s: n=%d nnz=%d -> %d fronts, depth %d\n",
		prob.Name, prob.A.N, prob.A.NNZ(), len(tree.Fronts), tree.MaxLevel())

	plan := sparse.NewEAddPlan(tree, ranks, 8)
	fmt.Printf("extend-add plan over %d processes: %d accumulations, %d expected messages on rank 0\n",
		ranks, plan.TotalEntries, plan.Incoming[0])

	want := sparse.EAddSerial(plan)

	// UPC++ RPC variant.
	stores := make([]*sparse.AccumStore, ranks)
	upcxx.Run(ranks, func(rk *upcxx.Rank) {
		st, el := sparse.EAddUPCXX(rk, plan)
		stores[rk.Me()] = st
		if rk.Me() == 0 {
			fmt.Printf("  UPC++ RPC      : %v\n", el)
		}
	})
	check(want, stores, "UPC++")

	// MPI variants on a fresh MPI world.
	for _, variant := range []struct {
		name string
		run  func(*mpi.Proc) *sparse.AccumStore
	}{
		{"MPI Alltoallv", func(p *mpi.Proc) *sparse.AccumStore {
			st, el := sparse.EAddMPIAlltoallv(p, plan)
			if p.Rank() == 0 {
				fmt.Printf("  MPI Alltoallv  : %v\n", el)
			}
			return st
		}},
		{"MPI P2P", func(p *mpi.Proc) *sparse.AccumStore {
			st, el := sparse.EAddMPIP2P(p, plan)
			if p.Rank() == 0 {
				fmt.Printf("  MPI P2P        : %v\n", el)
			}
			return st
		}},
	} {
		stores := make([]*sparse.AccumStore, ranks)
		mpi.Run(ranks, func(p *mpi.Proc) {
			stores[p.Rank()] = variant.run(p)
		})
		check(want, stores, variant.name)
	}
	fmt.Println("all three extend-add variants match the serial reference")

	// Mini-symPACK: distributed multifrontal Cholesky, verified against a
	// dense factorization.
	cholProb := matgen.Generate("chol-demo", matgen.Grid3D{NX: 5, NY: 5, NZ: 5}, 8)
	cholTree := sparse.Amalgamate(sparse.BuildFrontTree(cholProb.A, 0), 0.3)
	plan2 := sparse.NewCholPlan(cholProb.A, cholTree, ranks)
	results := make([]sparse.CholResult, ranks)
	upcxx.Run(ranks, func(rk *upcxx.Rank) {
		results[rk.Me()] = sparse.CholV1(rk, plan2)
	})
	dense := cholProb.A.Dense()
	if err := sparse.DenseCholesky(dense, cholProb.A.N); err != nil {
		panic(err)
	}
	n := cholProb.A.N
	worst := 0.0
	for _, res := range results {
		for _, tr := range res.L {
			diff := math.Abs(dense[int(tr[0])*n+int(tr[1])] - tr[2])
			if diff > worst {
				worst = diff
			}
		}
	}
	fmt.Printf("mini-symPACK over %d ranks: max |L - L_dense| = %.2e (n=%d)\n", ranks, worst, n)
}

func check(want *sparse.AccumStore, stores []*sparse.AccumStore, name string) {
	got := sparse.NewAccumStore()
	for _, s := range stores {
		got.Merge(s)
	}
	if err := want.Equal(got, 1e-9); err != nil {
		panic(fmt.Sprintf("%s mismatch: %v", name, err))
	}
}
